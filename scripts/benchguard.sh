#!/bin/sh
# benchguard.sh - benchstat-style regression guard for the engine
# micro-benchmarks. Runs the guarded benchmarks a few times, takes the
# minimum ns/op per benchmark (the noise-robust estimator), and compares
# it against the recorded baseline in BENCH_sweep.json
# (soa_router_core.Step*_after_ns).
#
# CI runners are not the machine that recorded the baseline, so the
# default mode warns when a benchmark lands more than WARN_PCT above
# baseline and fails only beyond FAIL_RATIO (a regression that big is an
# algorithmic break, not runner variance). Set BENCHGUARD_STRICT=1 to
# fail at the warn threshold too, for runs on the baseline hardware.
set -eu

cd "$(dirname "$0")/.."

WARN_PCT="${BENCHGUARD_WARN_PCT:-15}"
FAIL_RATIO="${BENCHGUARD_FAIL_RATIO:-2.5}"
COUNT="${BENCHGUARD_COUNT:-3}"
# The sub-benchmark pattern after the slash selects only the sharded
# sweep's 1- and 4-shard points; the guarded baselines were recorded on
# one hardware thread, so on any multicore runner the sharded cases can
# only come in at or under baseline (they parallelize), never falsely
# fail.
BENCHES='BenchmarkStepLowRate$|BenchmarkStepHighRate$|BenchmarkStepTelemetryOff$|BenchmarkStepChiplet$|BenchmarkStepSharded$/^shards=(1|4)$'

command -v jq >/dev/null || { echo "benchguard: jq not found" >&2; exit 1; }

out=$(go test -run '^$' -bench "$BENCHES" -benchtime 1s -count "$COUNT" .)
echo "$out"

status=0
# StepTelemetryOff shares StepHighRate's baseline: it is the same
# workload with the engine-meter nil checks compiled in, and the
# detached-telemetry contract says those checks are free.
for spec in \
    'StepLowRate|.soa_router_core.StepLowRate_after_ns' \
    'StepHighRate|.soa_router_core.StepHighRate_after_ns' \
    'StepTelemetryOff|.soa_router_core.StepHighRate_after_ns' \
    'StepChiplet|.chiplet_step.StepChiplet_ns' \
    'StepSharded/shards=1|.sharded_step.shards_1_ns' \
    'StepSharded/shards=4|.sharded_step.shards_4_ns'; do
    name=${spec%%|*}
    base=$(jq -r "${spec#*|}" BENCH_sweep.json)
    [ "$base" = null ] && { echo "benchguard: no baseline for $name" >&2; exit 1; }
    # go test names the benchmark "BenchmarkX-<GOMAXPROCS>" on multi-core
    # machines and plain "BenchmarkX" only when GOMAXPROCS=1; accept both
    # (exact match on field 1, so StepHighRate never picks up
    # StepHighRateLargeMesh).
    cur=$(echo "$out" | awk -v b="Benchmark${name}" \
        '$1 == b || index($1, b "-") == 1 { if (min == "" || $3 + 0 < min + 0) min = $3 } END { print min }')
    [ -n "$cur" ] || { echo "benchguard: Benchmark${name} produced no result" >&2; exit 1; }
    verdict=$(awk -v c="$cur" -v b="$base" -v w="$WARN_PCT" -v f="$FAIL_RATIO" 'BEGIN {
        pct = (c / b - 1) * 100
        printf "Benchmark%s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n", "'"$name"'", c, b, pct
        if (c > b * f) print "FAIL"
        else if (pct > w) print "WARN"
        else print "OK"
    }')
    echo "$verdict" | head -1
    case "$verdict" in
        *FAIL)
            echo "benchguard: Benchmark${name} regressed past ${FAIL_RATIO}x baseline" >&2
            status=1 ;;
        *WARN)
            echo "benchguard: Benchmark${name} more than ${WARN_PCT}% over baseline" >&2
            [ "${BENCHGUARD_STRICT:-0}" = 1 ] && status=1 ;;
    esac
done
exit $status
