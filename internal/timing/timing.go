// Package timing models router stage delays for the pipeline-combination
// analysis of §3.4.1 (Tables 2 and 3): whether the switch-traversal (ST)
// and link-traversal (LT) stages fit together in one 500 ps cycle of a
// 2 GHz router.
//
// Links use optimally repeated (buffered) wires, giving a delay linear
// in length; the rate constant reproduces the paper's 3.1 mm / 309.48 ps
// design point. Crossbar delay is fixed logic plus an RC wire term,
// fitted exactly through the paper's three synthesized design points
// (480 um -> 378.57 ps, 120 um -> 142.86 ps, 216 um -> 182.85 ps).
package timing

// Design constants from Table 2 and the 2 GHz clock target.
const (
	// ClockGHz is the router/core clock of the evaluation.
	ClockGHz = 2.0
	// StageBudgetPS is the maximum per-stage delay (one cycle at 2 GHz).
	StageBudgetPS = 500.0
	// UnbufferedLinkPSPerMM is the raw wire delay of Table 2 (254 ps/mm,
	// before optimal repeater insertion).
	UnbufferedLinkPSPerMM = 254.0
	// InverterDelayPS is the HSPICE FO4-style inverter delay (Table 2).
	InverterDelayPS = 9.81
	// BufferedLinkPSPerMM is the repeated-wire delay rate implied by
	// Table 3's 2DB row: 309.48 ps over 3.1 mm.
	BufferedLinkPSPerMM = 309.48 / 3.1
)

// Crossbar delay fit t(L) = a + b*L + c*L^2 (L: per-layer crossbar side
// in um). The quadratic term is unrepeated RC wire; the constant is
// arbiter-to-output logic.
const (
	xbarLogicPS  = 116.2575
	xbarLinPSUM  = 0.1133861
	xbarQuadPSUM = 0.00090226
)

// LinkDelayPS returns the buffered inter-router link delay for a length
// in mm.
func LinkDelayPS(lengthMM float64) float64 {
	return BufferedLinkPSPerMM * lengthMM
}

// CrossbarDelayPS returns the switch-traversal delay for a crossbar of
// the given per-layer side length in um.
func CrossbarDelayPS(sideUM float64) float64 {
	return xbarLogicPS + xbarLinPSUM*sideUM + xbarQuadPSUM*sideUM*sideUM
}

// StageDelays is one row of Table 3.
type StageDelays struct {
	XbarPS     float64
	LinkPS     float64
	CombinedPS float64
	// Combinable reports whether ST and LT fit in one cycle, enabling
	// the shorter 3DM pipeline of Figure 8 (d).
	Combinable bool
}

// Evaluate computes the ST+LT combination feasibility for a design with
// the given per-layer crossbar side (um) and link length (mm).
func Evaluate(xbarSideUM, linkLenMM float64) StageDelays {
	d := StageDelays{
		XbarPS: CrossbarDelayPS(xbarSideUM),
		LinkPS: LinkDelayPS(linkLenMM),
	}
	d.CombinedPS = d.XbarPS + d.LinkPS
	d.Combinable = d.CombinedPS <= StageBudgetPS
	return d
}

// STLTCycles returns the pipeline cycles to charge from switch
// allocation to the downstream buffer write: 1 when ST and LT combine,
// otherwise 2. This feeds noc.Config.STLTCycles.
func STLTCycles(xbarSideUM, linkLenMM float64) int {
	if Evaluate(xbarSideUM, linkLenMM).Combinable {
		return 1
	}
	return 2
}
