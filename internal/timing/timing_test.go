package timing

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f", name, got, want)
	}
}

// TestTable3 pins the model to the paper's delay validation numbers.
func TestTable3(t *testing.T) {
	// 2DB: 480 um crossbar, 3.1 mm link -> 378.57 + 309.48 = 688.05, no.
	d2 := Evaluate(480, 3.1)
	approx(t, "2DB xbar", d2.XbarPS, 378.57, 0.05)
	approx(t, "2DB link", d2.LinkPS, 309.48, 0.05)
	approx(t, "2DB combined", d2.CombinedPS, 688.05, 0.1)
	if d2.Combinable {
		t.Errorf("2DB must not combine ST and LT (688 ps > 500 ps)")
	}

	// 3DM: 120 um crossbar, half-pitch link -> combinable.
	dm := Evaluate(120, 1.58)
	approx(t, "3DM xbar", dm.XbarPS, 142.86, 0.05)
	// The paper tabulates 154.74 ps (computed at exactly half of
	// 3.1 mm); at the stated 1.58 mm pitch the model gives 157.7 ps.
	approx(t, "3DM link", dm.LinkPS, 157.74, 1.0)
	if !dm.Combinable {
		t.Errorf("3DM must combine ST and LT")
	}

	// 3DM-E: 216 um crossbar; the express link spans two 1.58 mm hops.
	de := Evaluate(216, 3.16)
	approx(t, "3DM-E xbar", de.XbarPS, 182.85, 0.05)
	approx(t, "3DM-E combined", de.CombinedPS, 182.85+315.47, 1.0)
	if !de.Combinable {
		t.Errorf("3DM-E must combine ST and LT (~498 ps <= 500 ps)")
	}
}

func TestTable3_3DBNotCombinable(t *testing.T) {
	// 3DB keeps the 2DB link pitch with a larger (672 um) crossbar.
	d := Evaluate(672, 3.1)
	if d.Combinable {
		t.Errorf("3DB must not combine: %.1f ps", d.CombinedPS)
	}
	if d.XbarPS <= 378.57 {
		t.Errorf("7-port crossbar should be slower than 5-port: %.2f", d.XbarPS)
	}
}

func TestSTLTCycles(t *testing.T) {
	if c := STLTCycles(480, 3.1); c != 2 {
		t.Errorf("2DB STLT cycles = %d, want 2", c)
	}
	if c := STLTCycles(120, 1.58); c != 1 {
		t.Errorf("3DM STLT cycles = %d, want 1", c)
	}
	if c := STLTCycles(216, 3.16); c != 1 {
		t.Errorf("3DM-E STLT cycles = %d, want 1", c)
	}
	if c := STLTCycles(672, 3.1); c != 2 {
		t.Errorf("3DB STLT cycles = %d, want 2", c)
	}
}

func TestLinkDelayLinear(t *testing.T) {
	if d := LinkDelayPS(0); d != 0 {
		t.Errorf("zero-length link delay = %v", d)
	}
	if d1, d2 := LinkDelayPS(1), LinkDelayPS(2); math.Abs(d2-2*d1) > 1e-9 {
		t.Errorf("link delay not linear: %v, %v", d1, d2)
	}
	// Buffered wire must beat the unbuffered rate.
	if BufferedLinkPSPerMM >= UnbufferedLinkPSPerMM {
		t.Errorf("buffered rate %v should be below unbuffered %v",
			BufferedLinkPSPerMM, UnbufferedLinkPSPerMM)
	}
}

func TestCrossbarDelayMonotone(t *testing.T) {
	prev := 0.0
	for side := 50.0; side <= 1000; side += 50 {
		d := CrossbarDelayPS(side)
		if d <= prev {
			t.Errorf("crossbar delay not monotone at %v um", side)
		}
		prev = d
	}
}

func TestCrossbarQuadraticDominatesLong(t *testing.T) {
	// Unrepeated crossbar wire: doubling a long side should more than
	// double the wire delay portion.
	short := CrossbarDelayPS(480) - xbarLogicPS
	long := CrossbarDelayPS(960) - xbarLogicPS
	if long <= 2*short {
		t.Errorf("quadratic wire term missing: %v vs %v", long, short)
	}
}

func TestStageBudgetMatchesClock(t *testing.T) {
	if StageBudgetPS != 1000.0/ClockGHz {
		t.Errorf("stage budget %v inconsistent with %v GHz clock", StageBudgetPS, ClockGHz)
	}
}
