// Package obs is the simulator's observability layer, the per-cycle
// visibility behind the paper's time-averaged headline numbers
// (Figs. 11-13): where backlog builds while an architecture approaches
// saturation, when the short-flit layer shutdown of §3.2.1 actually
// bites, and which routers and VCs stall on credits first.
//
// It has three cooperating parts:
//
//   - a Collector implementing noc.Probe, fed by the nil-checked probe
//     hooks compiled into the router pipeline (inject, RC, VA, SA, link
//     and eject events at zero cost when detached);
//   - a metric Registry plus cycle-windowed Sampler that snapshots
//     per-router/per-VC gauges (buffer occupancy, credit stalls, active
//     layers, express usage) into time series exportable as text, CSV
//     or JSON through stats.Table;
//   - a JSONL flit-event TraceWriter with a bounded ring buffer, and a
//     deterministic Replay reader that reproduces the live collector's
//     per-flit latency statistics byte for byte from the recorded file.
//
// Scenarios opt in through their Observe block (internal/scenario);
// mirasim -trace writes traces, miratrace flits replays them, and
// mirabench -obs measures the probe overhead.
package obs

import (
	"encoding/json"
	"io"
	"time"

	"mira/internal/noc"
	"mira/internal/stats"
)

// Config parameterizes a Collector. The zero value samples on
// DefaultWindow boundaries with no trace attached.
type Config struct {
	// Window is the gauge sample window in cycles (0 = DefaultWindow).
	Window int64
	// PerVCNodes lists routers whose individual VC occupancies are
	// sampled (empty: per-router totals only).
	PerVCNodes []int
	// TraceNodes restricts trace output to events at these routers
	// (empty: all). TraceClass restricts to one message class
	// ("control" or "data"; empty: both). Filters apply to the trace
	// file only — summaries and time series always cover everything.
	TraceNodes []int
	TraceClass string
	// RingSize bounds the trace writer's in-memory event batch
	// (0 = DefaultRingSize).
	RingSize int
	// Spans enables live per-flit span building: every probe event is
	// folded into per-hop stage spans and the latency attribution
	// aggregate (see SpanBuilder). Costs memory proportional to the
	// completed flit count.
	Spans bool
	// Engine enables engine self-telemetry (engine.go): a wall-clock
	// ticker sampling per-shard step timings, throughput and Go runtime
	// stats. Strictly out-of-band — simulated results are bit-identical
	// with it on or off. EngineInterval overrides the ticker period
	// (0 = DefaultEngineInterval); EngineLabel tags progress lines and
	// series from this run.
	Engine         bool
	EngineInterval time.Duration
	EngineLabel    string
}

// LatencyStats are per-flit and per-packet latency statistics derived
// purely from inject/eject probe events, so the identical numbers are
// recomputable from a recorded trace (Replay). Flit latency is
// inject-to-eject network time; packet latency is creation-to-tail-eject
// and therefore includes source queueing, matching noc.Result.
type LatencyStats struct {
	Flits      int64            `json:"flits"`
	Packets    int64            `json:"packets"`
	FlitMean   float64          `json:"flit_mean"`
	FlitP50    int              `json:"flit_p50"`
	FlitP95    int              `json:"flit_p95"`
	FlitP99    int              `json:"flit_p99"`
	FlitMax    int64            `json:"flit_max"`
	PacketMean float64          `json:"packet_mean"`
	PacketP50  int              `json:"packet_p50"`
	PacketP95  int              `json:"packet_p95"`
	PacketP99  int              `json:"packet_p99"`
	PacketMax  int64            `json:"packet_max"`
	PerClass   map[string]int64 `json:"per_class,omitempty"` // ejected packets by class
}

// JSON renders the stats in a canonical form; byte equality of two
// renderings is the replay-determinism check.
func (l LatencyStats) JSON() []byte {
	data, err := json.Marshal(l)
	if err != nil {
		panic(err) // plain struct always marshals
	}
	return data
}

// latencyAcc accumulates LatencyStats from an event stream. It is fed
// either live probe events (Collector) or serialized ones (Replay);
// both paths reduce to feed(), so the two produce identical stats for
// identical streams.
type latencyAcc struct {
	flitHist *stats.Histogram
	pktHist  *stats.Histogram
	inject   map[flitKey]int64 // flit -> inject cycle
	flitMax  int64
	pktMax   int64
	flitSum  float64
	pktSum   float64
	flits    int64
	packets  int64
	perClass map[string]int64
}

type flitKey struct {
	pkt int64
	seq int
}

// histBins sizes the latency histograms; latencies beyond it land in
// the overflow bin (matching noc.Result's 4096-bin packet histogram).
const histBins = 4096

func (a *latencyAcc) init() {
	if a.flitHist == nil {
		a.flitHist = stats.NewHistogram(histBins)
		a.pktHist = stats.NewHistogram(histBins)
		a.inject = make(map[flitKey]int64)
		a.perClass = make(map[string]int64)
	}
}

// feed consumes one event; only inject and eject contribute to latency.
func (a *latencyAcc) feed(kind string, cycle int64, pkt int64, seq int, tail bool, class string, created int64) {
	a.init()
	k := flitKey{pkt, seq}
	switch kind {
	case "inject":
		a.inject[k] = cycle
	case "eject":
		inj, ok := a.inject[k]
		if !ok {
			return // filtered or truncated trace: unmatched eject
		}
		delete(a.inject, k)
		lat := cycle - inj
		a.flitHist.Add(int(lat))
		a.flitSum += float64(lat)
		a.flits++
		if lat > a.flitMax {
			a.flitMax = lat
		}
		if tail {
			plat := cycle - created
			a.pktHist.Add(int(plat))
			a.pktSum += float64(plat)
			a.packets++
			if plat > a.pktMax {
				a.pktMax = plat
			}
			a.perClass[class]++
		}
	}
}

func (a *latencyAcc) feedLive(ev noc.ProbeEvent) {
	if ev.Kind != noc.ProbeInject && ev.Kind != noc.ProbeEject {
		return
	}
	a.feed(ev.Kind.String(), ev.Cycle, ev.Flit.Pkt.ID, int(ev.Flit.Seq),
		ev.Flit.Type.IsTail(), ev.Flit.Pkt.Class.String(), ev.Flit.Pkt.CreatedAt)
}

func (a *latencyAcc) feedSerialized(e Event) {
	a.feed(e.Kind, e.Cycle, e.Pkt, e.Seq,
		e.Type == "tail" || e.Type == "headtail", e.Class, e.Created)
}

func (a *latencyAcc) stats() LatencyStats {
	a.init()
	l := LatencyStats{
		Flits:   a.flits,
		Packets: a.packets,
		FlitMax: a.flitMax,
	}
	if a.flits > 0 {
		l.FlitMean = a.flitSum / float64(a.flits)
		l.FlitP50 = a.flitHist.Percentile(0.50)
		l.FlitP95 = a.flitHist.Percentile(0.95)
		l.FlitP99 = a.flitHist.Percentile(0.99)
	}
	if a.packets > 0 {
		l.PacketMean = a.pktSum / float64(a.packets)
		l.PacketP50 = a.pktHist.Percentile(0.50)
		l.PacketP95 = a.pktHist.Percentile(0.95)
		l.PacketP99 = a.pktHist.Percentile(0.99)
		l.PacketMax = a.pktMax
	}
	if len(a.perClass) > 0 {
		l.PerClass = a.perClass
	}
	return l
}

// Summarize computes latency statistics from a recorded trace without
// the per-flit protocol verification Replay performs — the right tool
// for filtered traces, where unmatched events are expected.
func Summarize(events []Event) LatencyStats {
	var acc latencyAcc
	for _, e := range events {
		acc.feedSerialized(e)
	}
	return acc.stats()
}

// Collector is the live observability pipeline of one simulation run:
// it implements noc.Probe (event counting, latency accumulation, trace
// writing) and exposes an OnCycle hook for the gauge sampler. Attach
// wires both into a Sim.
type Collector struct {
	net     *noc.Network
	reg     *Registry
	sampler *Sampler
	tw      *TraceWriter
	spans   *SpanBuilder
	engine  *EngineCollector
	cfg     Config

	counts    [noc.NumProbeKinds]int64
	lat       latencyAcc
	lastCycle int64
	finished  bool
}

// New builds a collector over net with the standard network gauge set.
func New(net *noc.Network, cfg Config) *Collector {
	reg := NewRegistry()
	RegisterNetwork(reg, net, cfg.PerVCNodes)
	c := &Collector{net: net, reg: reg, sampler: NewSampler(reg, cfg.Window), cfg: cfg}
	if cfg.Spans {
		c.spans = NewSpanBuilder(true)
	}
	return c
}

// Registry returns the collector's metric registry, for registering
// additional gauges before the run starts.
func (c *Collector) Registry() *Registry { return c.reg }

// SetTraceWriter attaches a JSONL event sink (applying the collector's
// node/class filter). Call before the run; the caller must Close the
// collector (or the writer) afterwards to flush the ring.
func (c *Collector) SetTraceWriter(w io.Writer) *TraceWriter {
	c.tw = NewTraceWriter(w, c.cfg.RingSize, NodeClassFilter(c.cfg.TraceNodes, c.cfg.TraceClass))
	return c.tw
}

// Attach installs the collector on the simulation: probe events from
// the network and the sampler on the per-cycle hook. With Config.Engine
// set it also attaches the engine meter and starts the telemetry ticker
// (stopped by Close).
func (c *Collector) Attach(sim *noc.Sim) {
	sim.Net.SetProbe(c)
	sim.OnCycle = c.OnCycle
	if c.cfg.Engine && c.engine == nil {
		c.engine = newEngineCollector(sim, c.cfg)
	}
}

// Engine returns the engine telemetry collector, or nil when
// Config.Engine is off (or Attach has not run).
func (c *Collector) Engine() *EngineCollector { return c.engine }

// ProbeEvent implements noc.Probe.
func (c *Collector) ProbeEvent(ev noc.ProbeEvent) {
	c.counts[ev.Kind]++
	c.lat.feedLive(ev)
	if c.spans != nil {
		c.spans.FeedProbe(ev)
	}
	if c.tw != nil {
		c.tw.ProbeEvent(ev)
	}
}

// OnCycle drives the gauge sampler (window boundaries only) and tracks
// the last simulated cycle for the trailing partial window.
func (c *Collector) OnCycle(cycle int64) {
	c.lastCycle = cycle
	c.sampler.OnCycle(cycle)
}

// Finish marks the end of the observed run: the trailing partial sample
// window (if the run stopped off a window boundary) is emitted, flagged
// partial in the series. Idempotent; Close calls it.
func (c *Collector) Finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.sampler.Final(c.lastCycle)
}

// Close finishes sampling, stops the engine telemetry ticker and
// flushes the trace writer, if any.
func (c *Collector) Close() error {
	c.Finish()
	if c.engine != nil {
		c.engine.Close()
	}
	if c.tw == nil {
		return nil
	}
	return c.tw.Close()
}

// EventCount returns how many events of kind k were observed.
func (c *Collector) EventCount(k noc.ProbeKind) int64 { return c.counts[k] }

// Latency returns the per-flit/per-packet latency statistics observed
// so far.
func (c *Collector) Latency() LatencyStats { return c.lat.stats() }

// Sampler returns the gauge sampler (time series access).
func (c *Collector) Sampler() *Sampler { return c.sampler }

// Spans returns the live span builder, or nil when Config.Spans is off.
func (c *Collector) Spans() *SpanBuilder { return c.spans }

// SeriesTable exports the sampled time series.
func (c *Collector) SeriesTable() stats.Table { return c.sampler.Table() }

// Summary is the JSON-serializable digest of one observed run: event
// counts, latency statistics and the sampled window count. exp-level
// sweeps aggregate these per point.
type Summary struct {
	Events  map[string]int64 `json:"events"`
	Latency LatencyStats     `json:"latency"`
	Windows int              `json:"windows"`
	Window  int64            `json:"window"`
	Traced  int64            `json:"traced_events,omitempty"`
}

// Summary digests the collector's current state.
func (c *Collector) Summary() Summary {
	s := Summary{
		Events:  make(map[string]int64, int(noc.NumProbeKinds)),
		Latency: c.Latency(),
		Windows: c.sampler.Samples(),
		Window:  c.sampler.Window(),
	}
	for k := noc.ProbeKind(0); k < noc.NumProbeKinds; k++ {
		s.Events[k.String()] = c.counts[k]
	}
	if c.tw != nil {
		s.Traced = c.tw.Written()
	}
	return s
}
