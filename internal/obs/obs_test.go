package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/topology"
	"mira/internal/traffic"
)

func testConfig() noc.Config {
	return noc.Config{
		Topo: topology.NewMesh2D(4, 4, 3.1), Alg: routing.XY{},
		VCs: 2, BufDepth: 8, STLTCycles: 2, Layers: 4,
		Policy: noc.AnyFree, Seed: 42,
	}
}

// runObserved runs a short uniform-random simulation with a collector
// (and optional trace buffer) attached.
func runObserved(t *testing.T, cfg Config, buf *bytes.Buffer) (*Collector, noc.Result) {
	t.Helper()
	nc := testConfig()
	net := noc.NewNetwork(nc)
	c := New(net, cfg)
	if buf != nil {
		c.SetTraceWriter(buf)
	}
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	res := sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}
	if res.Ejected == 0 {
		t.Fatal("no traffic simulated")
	}
	return c, res
}

// TestReplayByteIdentical is the acceptance check for the trace format:
// a recorded JSONL trace, read back and replayed through the latency
// accumulator, must reproduce the live collector's per-flit statistics
// byte for byte.
func TestReplayByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	c, _ := runObserved(t, Config{RingSize: 64}, &buf)

	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if int64(len(events)) != c.tw.Written() {
		t.Fatalf("read %d events, writer reports %d", len(events), c.tw.Written())
	}
	replayed, err := Replay(events)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	live := c.Latency()
	if lb, rb := live.JSON(), replayed.JSON(); !bytes.Equal(lb, rb) {
		t.Errorf("replayed stats differ from live:\nlive   %s\nreplay %s", lb, rb)
	}
	if live.Flits == 0 || live.Packets == 0 {
		t.Errorf("no latency samples collected: %s", live.JSON())
	}
	if live.FlitP50 > live.FlitP95 || live.FlitP95 > live.FlitP99 {
		t.Errorf("percentiles not monotonic: %s", live.JSON())
	}
}

// TestTraceDeterministicAcrossRuns: two runs of the same scenario write
// byte-identical trace files.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	runObserved(t, Config{}, &a)
	runObserved(t, Config{}, &b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same scenario produced different traces")
	}
	if a.Len() == 0 {
		t.Error("empty trace")
	}
}

// TestCollectorCountsMatchResult cross-checks collector event counts
// against the simulation's own accounting.
func TestCollectorCountsMatchResult(t *testing.T) {
	c, res := runObserved(t, Config{}, nil)
	// Fully drained run: every injected flit ejects.
	if in, out := c.EventCount(noc.ProbeInject), c.EventCount(noc.ProbeEject); in != out {
		t.Errorf("inject %d != eject %d", in, out)
	}
	lat := c.Latency()
	// The collector sees warm-up and unmeasured packets too, so it can
	// only have more packets than the measured result, never fewer.
	if lat.Packets < res.Ejected {
		t.Errorf("collector packets %d < measured ejected %d", lat.Packets, res.Ejected)
	}
	sum := c.Summary()
	if sum.Events["inject"] != c.EventCount(noc.ProbeInject) {
		t.Errorf("summary events mismatch")
	}
	if sum.Windows != c.Sampler().Samples() {
		t.Errorf("summary windows mismatch")
	}
	data, err := json.Marshal(sum)
	if err != nil || len(data) == 0 {
		t.Errorf("summary not serializable: %v", err)
	}
}

// TestSamplerSeries verifies window boundaries, series lengths, and the
// table export.
func TestSamplerSeries(t *testing.T) {
	c, _ := runObserved(t, Config{Window: 100, PerVCNodes: []int{5}}, nil)
	s := c.Sampler()
	if s.Window() != 100 {
		t.Fatalf("window = %d, want 100", s.Window())
	}
	if s.Samples() < 6 {
		t.Fatalf("only %d samples for a >=600-cycle run with window 100", s.Samples())
	}
	occ := s.Series("net.occ")
	if len(occ) != s.Samples() {
		t.Fatalf("series length %d != samples %d", len(occ), s.Samples())
	}
	if s.Series("no.such.metric") != nil {
		t.Error("unknown metric should return nil series")
	}
	if s.Series("r5.p0.vc1.occ") == nil {
		t.Error("per-VC series for node 5 missing")
	}
	// Link-flit deltas over all windows cannot exceed the counter total.
	var links float64
	for _, v := range s.Series("net.link_flits") {
		links += v
	}
	if int64(links) > c.EventCount(noc.ProbeLink) {
		t.Errorf("windowed link flits %v exceed total %d", links, c.EventCount(noc.ProbeLink))
	}

	tbl := c.SeriesTable()
	if tbl.Header[0] != "cycle" || tbl.Header[len(tbl.Header)-1] != "partial" ||
		len(tbl.Header) != c.Registry().Len()+2 {
		t.Fatalf("table header wrong: %v", tbl.Header)
	}
	if len(tbl.Rows) != s.Samples() {
		t.Fatalf("table rows %d != samples %d", len(tbl.Rows), s.Samples())
	}
	if !strings.Contains(tbl.String(), "net.occ") {
		t.Error("table text missing metric column")
	}
}

// TestTraceFilters: node and class filters restrict the trace without
// touching the collector's own statistics.
func TestTraceFilters(t *testing.T) {
	var full, filtered bytes.Buffer
	cFull, _ := runObserved(t, Config{}, &full)
	cFilt, _ := runObserved(t, Config{TraceNodes: []int{0, 1}, TraceClass: "data"}, &filtered)

	if !bytes.Equal(cFull.Latency().JSON(), cFilt.Latency().JSON()) {
		t.Error("trace filter changed collector statistics")
	}
	events, err := ReadTrace(&filtered)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("filter removed everything")
	}
	fullEvents, _ := ReadTrace(&full)
	if len(events) >= len(fullEvents) {
		t.Error("filter did not shrink the trace")
	}
	for _, e := range events {
		if e.Router != 0 && e.Router != 1 {
			t.Fatalf("event at router %d escaped node filter", e.Router)
		}
		if e.Class != "data" {
			t.Fatalf("class %q escaped class filter", e.Class)
		}
	}
	// A node-filtered trace is partial per flit; Summarize handles it,
	// strict Replay is expected to reject it.
	if _, err := Replay(events); err == nil {
		t.Error("Replay accepted a node-filtered (partial) trace")
	}
	sum := Summarize(events)
	if sum.Flits < 0 {
		t.Errorf("Summarize produced negative counts: %s", sum.JSON())
	}
}

// TestRegistryDuplicatePanics guards the metric namespace.
func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Gauge("x", func() float64 { return 0 })
	r.Gauge("x", func() float64 { return 0 })
}
