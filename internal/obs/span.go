package obs

import (
	"fmt"
	"sort"
	"strconv"

	"mira/internal/noc"
	"mira/internal/stats"
)

// Span-level tracing: the six probe event kinds of one flit's life fold
// into a sequence of per-hop spans, each decomposed into the pipeline
// stages of §3.2 — the wait for route computation, the VA stall, the SA
// stall and the switch(+link) traversal — plus the source-queue wait
// before injection. Because every stage boundary is the difference of
// two consecutive event cycles, the stages of a flit telescope exactly
// to its inject-to-eject latency: the decomposition cannot drift from
// the live collector's per-flit numbers (pinned by TestSpanTotals*).
//
// This is the latency analogue of Orion-style per-component energy
// models: instead of one end-to-end percentile, every cycle of latency
// is attributed to a router, a stage, a traffic class and a datapath
// layer count, which is exactly where 3DM's merged ST+LT stage and the
// §3.2.1 layer shutdown are supposed to pay off against 2DB/3DB.

// Stage indexes one latency component of a flit's journey.
type Stage int

// Latency stages, in the order a flit experiences them at each hop.
// StageQueue occurs once per flit (source NI queueing before inject);
// the remaining four occur once per router visit.
const (
	// StageQueue is creation-to-inject source queueing (NI backlog).
	StageQueue Stage = iota
	// StageRoute is arrival-to-RC-done: buffer wait behind earlier
	// packets plus the route computation itself (zero for body flits
	// and for look-ahead routed heads).
	StageRoute
	// StageVA is the stall between route computation and winning an
	// output virtual channel.
	StageVA
	// StageSA is the stall between VC allocation (or, for body/tail
	// flits, arrival) and winning the crossbar.
	StageSA
	// StageXfer is switch(+link) traversal: SA grant to arrival at the
	// next router or the destination NI. It equals the architecture's
	// ST+LT depth — 1 cycle for the merged 3DM stage, 2 for 2DB/3DB —
	// times the hop count.
	StageXfer
	// NumStages is the number of distinct stages.
	NumStages
)

var stageNames = [NumStages]string{"queue", "route", "va_stall", "sa_stall", "st_lt"}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// HopSpan is one router visit of one flit, expressed as the cycles at
// which the flit crossed each stage boundary. Durations are differences
// of adjacent fields; Depart of hop h equals Arrive of hop h+1 (or the
// eject cycle on the final hop), so a flit's hops tile its network
// latency with no gaps.
type HopSpan struct {
	Router int    `json:"router"`
	Arrive int64  `json:"arrive"` // cycle the flit entered this router's input buffer
	Route  int64  `json:"route"`  // RC done (== Arrive for body/tail flits)
	Alloc  int64  `json:"alloc"`  // output VC won (== Route for body/tail flits)
	Grant  int64  `json:"grant"`  // crossbar won, traversal begins
	Depart int64  `json:"depart"` // arrival downstream, or ejection at the NI
	Dir    string `json:"dir"`    // granted output direction ("local" on the ejection hop)
	VC     int    `json:"vc"`     // granted output VC
}

// Wait returns the duration of stage s at this hop (0 for StageQueue,
// which is a flit-level, not hop-level, component).
func (h HopSpan) Wait(s Stage) int64 {
	switch s {
	case StageRoute:
		return h.Route - h.Arrive
	case StageVA:
		return h.Alloc - h.Route
	case StageSA:
		return h.Grant - h.Alloc
	case StageXfer:
		return h.Depart - h.Grant
	}
	return 0
}

// FlitSpan is the complete stage-resolved trajectory of one flit.
type FlitSpan struct {
	Pkt     int64     `json:"pkt"`
	Seq     int       `json:"seq"`
	Type    string    `json:"type"`
	Class   string    `json:"class"`
	Src     int       `json:"src"`
	Dst     int       `json:"dst"`
	Layers  int       `json:"layers"` // active datapath layers (0 = all)
	Created int64     `json:"created"`
	Inject  int64     `json:"inject"`
	Eject   int64     `json:"eject"`
	Hops    []HopSpan `json:"hops"`
}

// QueueWait is the source-NI queueing delay (creation to injection).
func (s FlitSpan) QueueWait() int64 { return s.Inject - s.Created }

// Network is the inject-to-eject latency — identical to the live
// collector's per-flit latency and to the sum of the hop stages.
func (s FlitSpan) Network() int64 { return s.Eject - s.Inject }

// StageTotal sums stage st across the flit's hops (or returns the queue
// wait for StageQueue).
func (s FlitSpan) StageTotal(st Stage) int64 {
	if st == StageQueue {
		return s.QueueWait()
	}
	var sum int64
	for _, h := range s.Hops {
		sum += h.Wait(st)
	}
	return sum
}

// openFlit is the under-construction span of a flit still in the
// network. Route/Alloc/Grant are -1 until their events arrive; Arrive
// and Depart are resolved at eject, when the ST+LT depth becomes known.
type openFlit struct {
	span FlitSpan
}

// SpanBuilder folds a stream of probe events into FlitSpans and an
// Attribution aggregate. It accepts either live noc.ProbeEvents
// (FeedProbe, used by the Collector when Config.Spans is set) or
// serialized trace Events (Feed, used by "miratrace spans"); both paths
// reduce to the same state machine, so a span built from an unfiltered
// recorded trace is byte-identical to the live one.
//
// The builder requires a complete, unfiltered event stream: a
// node/class-filtered trace truncates flit histories and Feed reports
// the first inconsistency it proves (an event for a flit never
// injected, an eject with no SA grant).
type SpanBuilder struct {
	retain bool
	open   map[flitKey]*openFlit
	spans  []FlitSpan
	agg    *Attribution
	err    error
}

// NewSpanBuilder returns a builder that aggregates attribution totals.
// When retain is true, completed FlitSpans are also kept (required for
// the Perfetto and heatmap exports; costs memory proportional to the
// flit count rather than the in-flight window).
func NewSpanBuilder(retain bool) *SpanBuilder {
	return &SpanBuilder{
		retain: retain,
		open:   make(map[flitKey]*openFlit),
		agg:    newAttribution(),
	}
}

// Err returns the first protocol inconsistency encountered, or nil.
// Events after the first error are ignored, so a partial trace fails
// loudly instead of producing a silently wrong decomposition.
func (b *SpanBuilder) Err() error { return b.err }

// Spans returns the completed spans in flit-completion (eject) order,
// which is deterministic for a fixed scenario across step modes. Only
// populated when the builder retains spans.
func (b *SpanBuilder) Spans() []FlitSpan { return b.spans }

// Attribution returns the running latency decomposition aggregate.
func (b *SpanBuilder) Attribution() *Attribution { return b.agg }

// InFlight returns the number of flits with an open, unejected span.
func (b *SpanBuilder) InFlight() int { return len(b.open) }

// FeedProbe consumes one live probe event.
func (b *SpanBuilder) FeedProbe(ev noc.ProbeEvent) { b.feed(eventOf(ev)) }

// Feed consumes one serialized trace event, returning the builder's
// sticky error state (nil while the stream stays consistent).
func (b *SpanBuilder) Feed(e Event) error {
	b.feed(e)
	return b.err
}

func (b *SpanBuilder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("obs: span "+format, args...)
	}
}

// lastHop returns the flit's current (open) hop, or nil.
func lastHop(o *openFlit) *HopSpan {
	if len(o.span.Hops) == 0 {
		return nil
	}
	return &o.span.Hops[len(o.span.Hops)-1]
}

func (b *SpanBuilder) feed(e Event) {
	if b.err != nil {
		return
	}
	k := flitKey{e.Pkt, e.Seq}
	o := b.open[k]
	switch e.Kind {
	case "inject":
		if o == nil {
			o = &openFlit{}
			b.open[k] = o
		} else if o.span.Inject != 0 || len(o.span.Hops) > 1 {
			// A same-cycle look-ahead route may legitimately precede the
			// inject event; anything more means a duplicated inject.
			b.fail("flit %d.%d injected twice", e.Pkt, e.Seq)
			return
		}
		o.span.Pkt, o.span.Seq = e.Pkt, e.Seq
		o.span.Type, o.span.Class = e.Type, e.Class
		o.span.Src, o.span.Dst = e.Src, e.Dst
		o.span.Layers = e.Layers
		o.span.Created, o.span.Inject = e.Created, e.Cycle
		if len(o.span.Hops) == 0 {
			o.span.Hops = append(o.span.Hops, HopSpan{Router: e.Router, Route: -1, Alloc: -1, Grant: -1})
		}
	case "route":
		if o == nil {
			// Look-ahead routing computes the output port as the flit is
			// written into the source buffer, one emission site before
			// the inject event of the same cycle.
			o = &openFlit{}
			b.open[k] = o
		}
		h := lastHop(o)
		if h == nil || h.Grant >= 0 || h.Router != e.Router {
			o.span.Hops = append(o.span.Hops, HopSpan{Router: e.Router, Route: e.Cycle, Alloc: -1, Grant: -1})
		} else if h.Route >= 0 {
			b.fail("flit %d.%d routed twice at router %d", e.Pkt, e.Seq, e.Router)
		} else {
			h.Route = e.Cycle
		}
	case "vcalloc":
		if o == nil {
			b.fail("flit %d.%d VC-allocated before inject (trace filtered or truncated?)", e.Pkt, e.Seq)
			return
		}
		h := lastHop(o)
		if h == nil || h.Grant >= 0 || h.Router != e.Router {
			b.fail("flit %d.%d VC grant at router %d without a routed hop", e.Pkt, e.Seq, e.Router)
			return
		}
		h.Alloc = e.Cycle
	case "sagrant":
		if o == nil {
			b.fail("flit %d.%d switch grant before inject (trace filtered or truncated?)", e.Pkt, e.Seq)
			return
		}
		h := lastHop(o)
		if h == nil || h.Grant >= 0 || h.Router != e.Router {
			// Body/tail flit: no RC/VA events at this hop.
			o.span.Hops = append(o.span.Hops, HopSpan{Router: e.Router, Route: -1, Alloc: -1})
			h = lastHop(o)
		}
		h.Grant = e.Cycle
		h.Dir, h.VC = e.Dir, e.VC
	case "link":
		// The link event fires in the same emission (and cycle) as the SA
		// grant; it adds no stage boundary, only a cross-check.
		if o == nil {
			b.fail("flit %d.%d on a link before inject (trace filtered or truncated?)", e.Pkt, e.Seq)
			return
		}
		if h := lastHop(o); h == nil || h.Grant != e.Cycle {
			b.fail("flit %d.%d link traversal at cycle %d without a matching switch grant", e.Pkt, e.Seq, e.Cycle)
		}
	case "eject":
		if o == nil {
			b.fail("flit %d.%d ejected before inject (trace filtered or truncated?)", e.Pkt, e.Seq)
			return
		}
		b.finish(k, o, e.Cycle)
	}
}

// finish resolves the open flit into a completed span: the ST+LT depth
// is the eject delay after the final grant (the NI ejection takes
// exactly the configured traversal cycles), which fixes every hop's
// departure and therefore every arrival.
func (b *SpanBuilder) finish(k flitKey, o *openFlit, eject int64) {
	s := &o.span
	h := lastHop(o)
	if h == nil || h.Grant < 0 {
		b.fail("flit %d.%d ejected without a switch grant (trace filtered or truncated?)", s.Pkt, s.Seq)
		return
	}
	if s.Inject == 0 && len(s.Hops) > 0 && s.Hops[0].Route >= 0 && s.Created == 0 {
		b.fail("flit %d.%d ejected without an inject event", s.Pkt, s.Seq)
		return
	}
	stlt := eject - h.Grant
	if stlt < 1 {
		b.fail("flit %d.%d ejected %d cycles after its final grant (want >= 1)", s.Pkt, s.Seq, stlt)
		return
	}
	s.Eject = eject
	arrive := s.Inject
	for i := range s.Hops {
		hp := &s.Hops[i]
		if hp.Grant < 0 {
			b.fail("flit %d.%d hop %d at router %d never won the switch", s.Pkt, s.Seq, i, hp.Router)
			return
		}
		hp.Arrive = arrive
		if hp.Route < 0 {
			hp.Route = arrive // body/tail flit, or look-ahead at arrival
		}
		if hp.Alloc < 0 {
			hp.Alloc = hp.Route
		}
		if hp.Route < hp.Arrive || hp.Alloc < hp.Route || hp.Grant < hp.Alloc {
			b.fail("flit %d.%d hop %d stage cycles not monotonic (%d/%d/%d/%d)",
				s.Pkt, s.Seq, i, hp.Arrive, hp.Route, hp.Alloc, hp.Grant)
			return
		}
		hp.Depart = hp.Grant + stlt
		arrive = hp.Depart
	}
	if got := s.Hops[len(s.Hops)-1].Depart; got != eject {
		b.fail("flit %d.%d hops end at %d, ejected at %d", s.Pkt, s.Seq, got, eject)
		return
	}
	delete(b.open, k)
	b.agg.add(*s)
	if b.retain {
		b.spans = append(b.spans, *s)
	}
}

// BuildSpans folds a complete recorded trace into spans plus the
// attribution aggregate — the entry point behind "miratrace spans".
func BuildSpans(events []Event) ([]FlitSpan, *Attribution, error) {
	b := NewSpanBuilder(true)
	for _, e := range events {
		if err := b.Feed(e); err != nil {
			return nil, nil, err
		}
	}
	return b.Spans(), b.Attribution(), nil
}

// StageSums accumulates stage cycle totals over a set of flits (or, for
// the per-router grouping, router visits).
type StageSums struct {
	N      int64 // flits, or visits for the router grouping
	Cycles [NumStages]int64
}

// NetworkCycles is the total in-network latency (all stages but queue).
func (s StageSums) NetworkCycles() int64 {
	var sum int64
	for st := StageRoute; st < NumStages; st++ {
		sum += s.Cycles[st]
	}
	return sum
}

// Attribution is the latency-decomposition aggregate over completed
// spans: stage cycle totals overall and grouped by router, traffic
// class, hop count, and active datapath layers. All sums are integer
// cycles, so equal event streams produce byte-identical tables
// regardless of step mode or accumulation order.
type Attribution struct {
	total    StageSums
	byRouter map[int]*StageSums
	byClass  map[string]*StageSums
	byHops   map[int]*StageSums
	byLayers map[int]*StageSums
}

func newAttribution() *Attribution {
	return &Attribution{
		byRouter: make(map[int]*StageSums),
		byClass:  make(map[string]*StageSums),
		byHops:   make(map[int]*StageSums),
		byLayers: make(map[int]*StageSums),
	}
}

func sumsAt[K comparable](m map[K]*StageSums, k K) *StageSums {
	s := m[k]
	if s == nil {
		s = &StageSums{}
		m[k] = s
	}
	return s
}

func (a *Attribution) add(s FlitSpan) {
	var flit StageSums
	flit.N = 1
	flit.Cycles[StageQueue] = s.QueueWait()
	for _, h := range s.Hops {
		for st := StageRoute; st < NumStages; st++ {
			flit.Cycles[st] += h.Wait(st)
		}
		r := sumsAt(a.byRouter, h.Router)
		r.N++
		for st := StageRoute; st < NumStages; st++ {
			r.Cycles[st] += h.Wait(st)
		}
	}
	// Source queueing happens at the injecting router's NI.
	sumsAt(a.byRouter, s.Hops[0].Router).Cycles[StageQueue] += flit.Cycles[StageQueue]

	merge := func(dst *StageSums) {
		dst.N++
		for st := Stage(0); st < NumStages; st++ {
			dst.Cycles[st] += flit.Cycles[st]
		}
	}
	merge(&a.total)
	merge(sumsAt(a.byClass, s.Class))
	merge(sumsAt(a.byHops, len(s.Hops)))
	merge(sumsAt(a.byLayers, s.Layers))
}

// Total returns the stage sums over every completed flit.
func (a *Attribution) Total() StageSums { return a.total }

// Flits returns the number of completed flits aggregated so far.
func (a *Attribution) Flits() int64 { return a.total.N }

// Groupings, in the order they appear in the combined table.
const (
	GroupRouter = "router"
	GroupClass  = "class"
	GroupHops   = "hops"
	GroupLayers = "layers"
)

// Groupings lists the supported attribution groupings.
func Groupings() []string { return []string{GroupRouter, GroupClass, GroupHops, GroupLayers} }

// attribution table header; "n" counts flits, except for the router
// grouping where it counts router visits (hops).
var attribHeader = []string{"key", "n", "queue", "route", "va_stall", "sa_stall", "st_lt", "network", "per_n"}

func attribRow(key string, s *StageSums) []string {
	net := s.NetworkCycles()
	row := []string{key, strconv.FormatInt(s.N, 10)}
	for st := Stage(0); st < NumStages; st++ {
		row = append(row, strconv.FormatInt(s.Cycles[st], 10))
	}
	perN := 0.0
	if s.N > 0 {
		perN = float64(net) / float64(s.N)
	}
	return append(row, strconv.FormatInt(net, 10), strconv.FormatFloat(perN, 'f', 2, 64))
}

// rowsFor renders one grouping's rows in deterministic key order.
func (a *Attribution) rowsFor(group string) ([][]string, error) {
	intRows := func(m map[int]*StageSums, label func(int) string) [][]string {
		keys := make([]int, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		rows := make([][]string, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, attribRow(label(k), m[k]))
		}
		return rows
	}
	switch group {
	case GroupRouter:
		return intRows(a.byRouter, strconv.Itoa), nil
	case GroupClass:
		keys := make([]string, 0, len(a.byClass))
		for k := range a.byClass {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rows := make([][]string, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, attribRow(k, a.byClass[k]))
		}
		return rows, nil
	case GroupHops:
		return intRows(a.byHops, strconv.Itoa), nil
	case GroupLayers:
		return intRows(a.byLayers, func(k int) string {
			if k == 0 {
				return "all"
			}
			return strconv.Itoa(k)
		}), nil
	}
	return nil, fmt.Errorf("obs: unknown attribution grouping %q (want %s, %s, %s or %s)",
		group, GroupRouter, GroupClass, GroupHops, GroupLayers)
}

// Table renders one grouping's latency decomposition: integer cycle
// totals per stage plus the mean network latency per flit (per visit
// for the router grouping).
func (a *Attribution) Table(group string) (stats.Table, error) {
	rows, err := a.rowsFor(group)
	if err != nil {
		return stats.Table{}, err
	}
	t := stats.Table{
		Title:  fmt.Sprintf("latency attribution by %s (%d flits)", group, a.total.N),
		Header: append([]string{group}, attribHeader[1:]...),
		Rows:   rows,
	}
	t.Notes = append(t.Notes, "cycle totals per stage; st_lt is switch(+link) traversal, per_n is mean network cycles")
	return t, nil
}

// CombinedTable stacks every grouping into one machine-readable table
// (a "group" discriminator column followed by the per-group key), the
// format behind "mirasim -attrib". A "total" row leads.
func (a *Attribution) CombinedTable() stats.Table {
	t := stats.Table{
		Title:  fmt.Sprintf("latency attribution (%d flits)", a.total.N),
		Header: append([]string{"group"}, attribHeader...),
	}
	t.Rows = append(t.Rows, append([]string{"total"}, attribRow("", &a.total)...))
	for _, g := range Groupings() {
		rows, err := a.rowsFor(g)
		if err != nil {
			panic(err) // Groupings() only yields known groups
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, append([]string{g}, r...))
		}
	}
	t.Notes = append(t.Notes,
		"n counts flits (router group: visits); stage columns are cycle totals, per_n mean network cycles per n")
	return t
}
