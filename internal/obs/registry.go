package obs

import (
	"fmt"
	"sync"

	"mira/internal/noc"
	"mira/internal/stats"
	"mira/internal/topology"
)

// Gauge reads one scalar from live simulation state. Gauges must be
// cheap and side-effect free; the sampler calls every registered gauge
// once per sample window.
type Gauge func() float64

// metricKind distinguishes how the sampler turns a raw reading into a
// time-series point.
type metricKind uint8

const (
	// kindGauge records the reading itself (a level, e.g. buffer
	// occupancy at the window boundary).
	kindGauge metricKind = iota
	// kindCounter records the delta since the previous sample (a rate,
	// e.g. flits sent during the window) from a monotonic reading.
	kindCounter
	// kindRatio records delta(num)/delta(den) over the window, or 0
	// when the denominator did not move (e.g. mean active layers per
	// crossbar traversal).
	kindRatio
)

type metric struct {
	name string
	kind metricKind
	num  Gauge
	den  Gauge // kindRatio only
}

// Registry is an ordered collection of named metrics. Registration
// order is sample order and column order, so a registry populated the
// same way always produces byte-identical tables.
type Registry struct {
	metrics []metric
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (g *Registry) add(m metric) {
	if _, dup := g.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	g.byName[m.name] = len(g.metrics)
	g.metrics = append(g.metrics, m)
}

// Gauge registers a level metric sampled as-is at each window boundary.
func (g *Registry) Gauge(name string, fn Gauge) { g.add(metric{name: name, kind: kindGauge, num: fn}) }

// Counter registers a monotonic reading recorded as its per-window
// delta.
func (g *Registry) Counter(name string, fn Gauge) {
	g.add(metric{name: name, kind: kindCounter, num: fn})
}

// Ratio registers delta(num)/delta(den) per window (0 when den is
// flat), for averages weighted over the window's events.
func (g *Registry) Ratio(name string, num, den Gauge) {
	g.add(metric{name: name, kind: kindRatio, num: num, den: den})
}

// Names returns the metric names in registration (column) order.
func (g *Registry) Names() []string {
	out := make([]string, len(g.metrics))
	for i, m := range g.metrics {
		out[i] = m.name
	}
	return out
}

// Len returns the number of registered metrics.
func (g *Registry) Len() int { return len(g.metrics) }

// RegisterNetwork populates the registry with the standard gauge set of
// one network:
//
//   - net.occ / net.backlog — flits buffered in routers / total backlog
//   - net.credit_stalls, net.link_flits, net.express_flits,
//     net.vertical_flits — per-window activity deltas
//   - net.active_layers — mean datapath layers kept awake per crossbar
//     traversal during the window (the §3.2.1 shutdown signal)
//   - r<i>.occ and r<i>.credit_stalls — per-router occupancy level and
//     backpressure delta
//   - r<i>.vc<p>.<v>.occ — per-VC occupancy levels for the routers in
//     perVC (all flat (port, vc) indices), for pinpointing which VCs of
//     a hot router saturate first
func RegisterNetwork(g *Registry, net *noc.Network, perVC []int) {
	layers := float64(net.Config().Layers)
	g.Gauge("net.occ", func() float64 { return float64(net.Occupancy()) })
	g.Gauge("net.backlog", func() float64 { return float64(net.BacklogFlits()) })
	g.Counter("net.credit_stalls", func() float64 { return float64(net.TotalCounters().CreditStalls) })
	g.Counter("net.link_flits", func() float64 { return float64(net.TotalCounters().LinkFlits) })
	g.Counter("net.express_flits", func() float64 { return float64(net.TotalCounters().ExpFlits) })
	g.Counter("net.vertical_flits", func() float64 { return float64(net.TotalCounters().VertFlits) })
	g.Ratio("net.active_layers",
		func() float64 { return layers * net.TotalCounters().WXbarFlits },
		func() float64 { return float64(net.TotalCounters().XbarFlits) })

	for i := 0; i < net.Config().Topo.NumNodes(); i++ {
		r := net.Router(topology.NodeID(i))
		g.Gauge(fmt.Sprintf("r%d.occ", i), func() float64 { return float64(r.Occupancy()) })
		g.Counter(fmt.Sprintf("r%d.credit_stalls", i),
			func() float64 { return float64(r.Counters.CreditStalls) })
	}
	vcs := net.Config().VCs
	for _, id := range perVC {
		r := net.Router(topology.NodeID(id))
		for f := 0; f < r.NumInVCs(); f++ {
			pi, vi := f/vcs, f%vcs
			g.Gauge(fmt.Sprintf("r%d.p%d.vc%d.occ", id, pi, vi), func() float64 {
				return float64(r.VCOccupancy(pi, vi))
			})
		}
	}
}

// Sampler snapshots a registry on fixed cycle windows, building one
// time-series row per window. It is driven from noc.Sim's OnCycle hook;
// off-boundary cycles cost one modulo check. The stored series is
// guarded by a mutex so a serving goroutine (internal/serve) can read
// Latest/Table while the simulation keeps sampling; the gauges
// themselves are only ever called from the simulation goroutine.
type Sampler struct {
	window  int64
	reg     *Registry
	prevRaw []float64 // previous raw reading per metric (counter/ratio denominator)
	prevNum []float64 // previous numerator reading (ratio metrics only)

	mu      sync.Mutex
	cycles  []int64
	rows    [][]float64
	partial []bool // row i covers less than a full window
}

// DefaultWindow is the sample window (cycles) used when a scenario does
// not specify one.
const DefaultWindow = 1000

// NewSampler builds a sampler over reg with the given window (0 means
// DefaultWindow). The baseline for counter deltas is the first call to
// OnCycle, so attach the sampler before the simulation starts.
func NewSampler(reg *Registry, window int64) *Sampler {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Sampler{
		window:  window,
		reg:     reg,
		prevRaw: make([]float64, reg.Len()),
		prevNum: make([]float64, reg.Len()),
	}
}

// Window returns the sample window in cycles.
func (s *Sampler) Window() int64 { return s.window }

// OnCycle samples the registry when cycle is a window boundary.
func (s *Sampler) OnCycle(cycle int64) {
	if cycle%s.window != 0 {
		return
	}
	s.sample(cycle, false)
}

// Final emits the trailing partial window at simulation end: if the run
// stopped off a window boundary, the cycles since the last sample are
// recorded as one more row flagged partial. Runs shorter than a window
// therefore still produce a (single-row) series. Sampling on an
// already-recorded boundary is a no-op, so Final is safe to call
// unconditionally (and repeatedly) after the run.
func (s *Sampler) Final(cycle int64) {
	s.mu.Lock()
	done := len(s.cycles) > 0 && s.cycles[len(s.cycles)-1] >= cycle
	s.mu.Unlock()
	if done || cycle <= 0 {
		return
	}
	s.sample(cycle, true)
}

func (s *Sampler) sample(cycle int64, partial bool) {
	row := make([]float64, s.reg.Len())
	for i, m := range s.reg.metrics {
		raw := m.num()
		switch m.kind {
		case kindGauge:
			row[i] = raw
		case kindCounter:
			row[i] = raw - s.prevRaw[i]
			s.prevRaw[i] = raw
		case kindRatio:
			den := m.den()
			if d := den - s.prevRaw[i]; d != 0 {
				row[i] = (raw - s.prevNum[i]) / d
			}
			s.prevRaw[i] = den
			s.prevNum[i] = raw
		}
	}
	s.mu.Lock()
	s.cycles = append(s.cycles, cycle)
	s.rows = append(s.rows, row)
	s.partial = append(s.partial, partial)
	s.mu.Unlock()
}

// Samples returns the number of completed sample rows.
func (s *Sampler) Samples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// Latest returns the most recent sample (boundary cycle plus one value
// per metric, in registration order), or ok=false before the first
// window completes. The row is a copy; safe to call from a goroutine
// other than the simulation's (the Prometheus exposition path).
func (s *Sampler) Latest() (cycle int64, row []float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.rows) == 0 {
		return 0, nil, false
	}
	last := s.rows[len(s.rows)-1]
	out := make([]float64, len(last))
	copy(out, last)
	return s.cycles[len(s.cycles)-1], out, true
}

// Series returns the time series of one metric (one value per sampled
// window), or nil if the metric is unknown.
func (s *Sampler) Series(name string) []float64 {
	i, ok := s.reg.byName[name]
	if !ok {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.rows))
	for j, row := range s.rows {
		out[j] = row[i]
	}
	return out
}

// Table exports every sampled window as a stats.Table: a "cycle" column,
// one column per metric in registration order, and a trailing "partial"
// flag column (1 on the final short window emitted by Final, else 0).
func (s *Sampler) Table() stats.Table {
	t := stats.Table{
		Title:  "observability time series",
		Header: append(append([]string{"cycle"}, s.reg.Names()...), "partial"),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for j, row := range s.rows {
		cells := make([]string, 0, len(row)+2)
		cells = append(cells, fmt.Sprintf("%d", s.cycles[j]))
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.4g", v))
		}
		flag := "0"
		if s.partial[j] {
			flag = "1"
		}
		t.Rows = append(t.Rows, append(cells, flag))
	}
	return t
}
