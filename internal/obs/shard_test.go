package obs

import (
	"bytes"
	"testing"

	"mira/internal/noc"
)

// TestArtifactsIdenticalAcrossShards pins the observability half of the
// shard-determinism contract end to end: with the mesh partitioned into
// concurrently stepped shards (noc.Config.Shards) the merged probe
// stream must replay exactly, so the recorded flit trace, the span
// attribution table and the Perfetto export are all byte-identical to
// the sequential run at every shard count.
func TestArtifactsIdenticalAcrossShards(t *testing.T) {
	type artifacts struct {
		trace, attrib, perfetto string
	}
	build := func(shards int) artifacts {
		var buf bytes.Buffer
		c := runSpans(t, func(nc *noc.Config) { nc.Shards = shards }, &buf)
		sb := c.Spans()
		var pf bytes.Buffer
		if err := WritePerfetto(&pf, sb.Spans()); err != nil {
			t.Fatalf("WritePerfetto: %v", err)
		}
		return artifacts{
			trace:    buf.String(),
			attrib:   sb.Attribution().CombinedTable().CSV(),
			perfetto: pf.String(),
		}
	}
	ref := build(1)
	if len(ref.trace) == 0 || len(ref.attrib) == 0 {
		t.Fatal("reference artifacts empty; comparison is vacuous")
	}
	for _, shards := range []int{2, 4, 8} {
		got := build(shards)
		if got.trace != ref.trace {
			t.Errorf("shards=%d: flit trace diverges from sequential", shards)
		}
		if got.attrib != ref.attrib {
			t.Errorf("shards=%d: attribution CSV diverges from sequential", shards)
		}
		if got.perfetto != ref.perfetto {
			t.Errorf("shards=%d: perfetto JSON diverges from sequential", shards)
		}
	}
}
