package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mira/internal/noc"
)

func mkEvent(kind string, cycle, pkt int64, seq int) Event {
	return Event{Cycle: cycle, Kind: kind, Pkt: pkt, Seq: seq, Type: "headtail", Class: "data"}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"garbage", "not json\n", "line 1"},
		{"unknown kind", `{"c":1,"k":"teleport","p":0,"s":0}` + "\n", "unknown event kind"},
		{"out of order", `{"c":5,"k":"inject","p":0,"s":0}` + "\n" + `{"c":3,"k":"eject","p":0,"s":0}` + "\n", "out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	in := `{"c":1,"k":"inject","p":0,"s":0,"t":"headtail","cl":"data"}` + "\n\n" +
		`{"c":4,"k":"eject","p":0,"s":0,"t":"headtail","cl":"data"}` + "\n"
	events, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
}

func TestReplayProtocolViolations(t *testing.T) {
	cases := []struct {
		name    string
		events  []Event
		wantErr string
	}{
		{"double inject",
			[]Event{mkEvent("inject", 1, 7, 0), mkEvent("inject", 2, 7, 0)},
			"injected twice"},
		{"eject before inject",
			[]Event{mkEvent("eject", 1, 7, 0)},
			"before inject"},
		{"event after eject",
			[]Event{mkEvent("inject", 1, 7, 0), mkEvent("eject", 2, 7, 0), mkEvent("link", 3, 7, 0)},
			"after eject"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Replay(tc.events)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestReplayComputesLatency(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: "inject", Pkt: 1, Seq: 0, Type: "headtail", Class: "data", Created: 8},
		{Cycle: 25, Kind: "eject", Pkt: 1, Seq: 0, Type: "headtail", Class: "data", Created: 8},
	}
	stats, err := Replay(events)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.Flits != 1 || stats.Packets != 1 {
		t.Fatalf("counts wrong: %s", stats.JSON())
	}
	if stats.FlitMean != 15 || stats.FlitMax != 15 {
		t.Errorf("flit latency = %v/%v, want 15 (eject - inject)", stats.FlitMean, stats.FlitMax)
	}
	if stats.PacketMean != 17 || stats.PacketMax != 17 {
		t.Errorf("packet latency = %v/%v, want 17 (eject - created)", stats.PacketMean, stats.PacketMax)
	}
	if stats.PerClass["data"] != 1 {
		t.Errorf("per-class count wrong: %s", stats.JSON())
	}
}

// TestTraceWriterRingFlush checks the bounded ring batches without
// dropping: write more events than the ring holds, everything survives.
func TestTraceWriterRingFlush(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, 4, nil)
	pkt := &noc.Packet{ID: 1, Size: 1, Class: noc.Data}
	const n = 11
	for i := 0; i < n; i++ {
		tw.ProbeEvent(noc.ProbeEvent{
			Kind: noc.ProbeInject, Cycle: int64(i),
			Flit: noc.Flit{Pkt: pkt, Type: noc.HeadTailFlit},
		})
	}
	// Only full batches are flushed so far.
	if tw.Written() != 8 {
		t.Errorf("written before close = %d, want 8 (two full rings)", tw.Written())
	}
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if tw.Written() != n {
		t.Errorf("written after close = %d, want %d", tw.Written(), n)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(events) != n {
		t.Fatalf("trace has %d events, want %d", len(events), n)
	}
	for i, e := range events {
		if e.Cycle != int64(i) {
			t.Fatalf("event %d out of order: cycle %d", i, e.Cycle)
		}
	}
}

func TestNodeClassFilterNil(t *testing.T) {
	if NodeClassFilter(nil, "") != nil {
		t.Error("empty filter spec should compile to no filter at all")
	}
	f := NodeClassFilter([]int{3}, "")
	ev := noc.ProbeEvent{Router: 3}
	if !f(ev) {
		t.Error("allow-listed router rejected")
	}
	ev.Router = 4
	if f(ev) {
		t.Error("other router admitted")
	}
}

// failAfterWriter fails every Write after the first n bytes have been
// accepted, mimicking a disk filling up mid-run.
type failAfterWriter struct {
	budget int
	wrote  int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.budget {
		return 0, errors.New("disk full")
	}
	w.wrote += len(p)
	return len(p), nil
}

// TestTraceWriterCloseReportsFailure: a writer that starts failing
// mid-run surfaces the error (with the count of events that made it
// out) from Close instead of silently truncating the trace.
func TestTraceWriterCloseReportsFailure(t *testing.T) {
	// Budget of ~2 events: ring flushes go through bufio, so the
	// failure surfaces at Close's Flush at the latest.
	tw := NewTraceWriter(&failAfterWriter{budget: 150}, 2, nil)
	pkt := &noc.Packet{ID: 1, Size: 1, Class: noc.Data}
	for i := 0; i < 40; i++ {
		tw.ProbeEvent(noc.ProbeEvent{
			Kind: noc.ProbeInject, Cycle: int64(i),
			Flit: noc.Flit{Pkt: pkt, Type: noc.HeadTailFlit},
		})
	}
	err := tw.Close()
	if err == nil {
		t.Fatal("Close returned nil for a failing writer")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("error does not carry the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "events written") {
		t.Errorf("error does not report the written count: %v", err)
	}
}

// TestTraceWriterCloseCleanOK: Close on a healthy writer returns nil.
func TestTraceWriterCloseCleanOK(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf, 4, nil)
	tw.ProbeEvent(noc.ProbeEvent{
		Kind: noc.ProbeInject, Cycle: 1,
		Flit: noc.Flit{Pkt: &noc.Packet{ID: 1, Size: 1, Class: noc.Data}, Type: noc.HeadTailFlit},
	})
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if tw.Written() != 1 {
		t.Errorf("written = %d, want 1", tw.Written())
	}
}
