package obs

import (
	"context"
	"strings"
	"testing"

	"mira/internal/noc"
	"mira/internal/traffic"
)

// TestPromNameMapping checks the dotted-name to prometheus translation.
func TestPromNameMapping(t *testing.T) {
	cases := []struct {
		in     string
		name   string
		labels string
	}{
		{"net.occ", "mira_net_occ", ""},
		{"net.active_layers", "mira_net_active_layers", ""},
		{"r5.credit_stalls", "mira_router_credit_stalls", `router="5"`},
		{"r12.occ", "mira_router_occ", `router="12"`},
		{"r5.p2.vc1.occ", "mira_router_vc_occ", `router="5",port="2",vc="1"`},
	}
	for _, c := range cases {
		s := promName(c.in, nil)
		if s.Name != c.name {
			t.Errorf("%s: name %q, want %q", c.in, s.Name, c.name)
		}
		var parts []string
		for _, l := range s.Labels {
			parts = append(parts, l[0]+`="`+l[1]+`"`)
		}
		if got := strings.Join(parts, ","); got != c.labels {
			t.Errorf("%s: labels %q, want %q", c.in, got, c.labels)
		}
	}
}

// TestPromExposition renders a live sampler row and checks the text
// format: every line is a TYPE comment or name{labels} value, families
// are sorted and typed, and extra labels are attached.
func TestPromExposition(t *testing.T) {
	nc := testConfig()
	net := noc.NewNetwork(nc)
	c := New(net, Config{Window: 100, PerVCNodes: []int{5}})
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	_, row, ok := c.Sampler().Latest()
	if !ok {
		t.Fatal("no samples")
	}
	samples := PromSamples(c.Registry().Names(), row, [][2]string{{"run", "0"}})
	var sb strings.Builder
	if err := WriteProm(&sb, samples); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := sb.String()
	if !strings.Contains(text, "# TYPE mira_net_occ gauge\n") {
		t.Errorf("missing TYPE line:\n%s", text)
	}
	if !strings.Contains(text, `mira_router_vc_occ{run="0",router="5",port="0",vc="0"} `) {
		t.Errorf("missing per-VC sample:\n%s", text)
	}
	typed := map[string]bool{}
	lastFamily := ""
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[3] != "gauge" {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if fields[2] <= lastFamily {
				t.Fatalf("families not sorted: %q after %q", fields[2], lastFamily)
			}
			lastFamily = fields[2]
			typed[fields[2]] = true
			continue
		}
		name, rest, found := strings.Cut(line, " ")
		if !found {
			name, rest, found = strings.Cut(line, "{")
			_ = rest
			if !found {
				t.Fatalf("malformed sample line %q", line)
			}
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed label block in %q", line)
			}
			name = name[:i]
		}
		if !typed[name] {
			t.Fatalf("sample %q before its TYPE line", line)
		}
		if !strings.Contains(line, `run="0"`) {
			t.Fatalf("sample %q missing extra label", line)
		}
	}

	// Determinism: the same row renders the same bytes.
	var sb2 strings.Builder
	if err := WriteProm(&sb2, PromSamples(c.Registry().Names(), row, [][2]string{{"run", "0"}})); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("exposition not deterministic")
	}
}

// TestSamplerFinalPartialWindow: a run shorter than the window still
// produces a series row, flagged partial; a boundary-aligned run gains
// no duplicate row from Finish.
func TestSamplerFinalPartialWindow(t *testing.T) {
	nc := testConfig()
	net := noc.NewNetwork(nc)
	c := New(net, Config{Window: 10000}) // longer than the whole run
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	tbl := c.SeriesTable()
	if len(tbl.Rows) != 1 {
		t.Fatalf("short run produced %d rows, want exactly the partial one", len(tbl.Rows))
	}
	row := tbl.Rows[0]
	if row[len(row)-1] != "1" {
		t.Errorf("trailing window not flagged partial: %v", row)
	}
	// Close is idempotent: no duplicate partial row.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(c.SeriesTable().Rows); n != 1 {
		t.Errorf("second Close added rows: %d", n)
	}

	// Direct sampler check: Final on an exact boundary is a no-op.
	reg := NewRegistry()
	reg.Gauge("x", func() float64 { return 1 })
	s := NewSampler(reg, 100)
	s.OnCycle(100)
	s.Final(100)
	if s.Samples() != 1 {
		t.Errorf("Final duplicated a boundary sample: %d rows", s.Samples())
	}
	s.Final(130)
	if s.Samples() != 2 {
		t.Errorf("Final did not emit the partial window: %d rows", s.Samples())
	}
	tb := s.Table()
	if got := tb.Rows[1]; got[0] != "130" || got[len(got)-1] != "1" {
		t.Errorf("partial row wrong: %v", got)
	}
	if got := tb.Rows[0]; got[len(got)-1] != "0" {
		t.Errorf("full row flagged partial: %v", got)
	}
}
