package obs

import (
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"mira/internal/noc"
	"mira/internal/traffic"
)

// TestPromNameMapping checks the dotted-name to prometheus translation.
func TestPromNameMapping(t *testing.T) {
	cases := []struct {
		in     string
		name   string
		labels string
	}{
		{"net.occ", "mira_net_occ", ""},
		{"net.active_layers", "mira_net_active_layers", ""},
		{"r5.credit_stalls", "mira_router_credit_stalls", `router="5"`},
		{"r12.occ", "mira_router_occ", `router="12"`},
		{"r5.p2.vc1.occ", "mira_router_vc_occ", `router="5",port="2",vc="1"`},
	}
	for _, c := range cases {
		s := promName(c.in, nil)
		if s.Name != c.name {
			t.Errorf("%s: name %q, want %q", c.in, s.Name, c.name)
		}
		var parts []string
		for _, l := range s.Labels {
			parts = append(parts, l[0]+`="`+l[1]+`"`)
		}
		if got := strings.Join(parts, ","); got != c.labels {
			t.Errorf("%s: labels %q, want %q", c.in, got, c.labels)
		}
	}
}

// promLabelRe matches one label pair inside a sample's label block.
var promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$`)

// lintPromExposition is a hand-rolled promtool-style check of the text
// exposition format, line by line: every family opens with a # HELP
// line immediately followed by its # TYPE line (gauge or counter),
// families are sorted, every sample line parses as name{labels} value
// with a float value and well-formed labels, samples sit inside their
// family's block, and no family is empty. Returns family -> type.
func lintPromExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	samples := map[string]int{}
	lastFamily, current := "", ""
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if help, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, desc, ok := strings.Cut(help, " ")
			if !ok || strings.TrimSpace(desc) == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			if name <= lastFamily {
				t.Fatalf("families not sorted: %q after %q", name, lastFamily)
			}
			lastFamily = name
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Fatalf("HELP for %s not immediately followed by its TYPE line", name)
			}
			f := strings.Fields(lines[i+1])
			if len(f) != 4 || (f[3] != "gauge" && f[3] != "counter") {
				t.Fatalf("malformed TYPE line %q", lines[i+1])
			}
			types[name] = f[3]
			current = name
			i++
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		name, valstr := line, ""
		if j := strings.IndexByte(line, '{'); j >= 0 {
			k := strings.IndexByte(line, '}')
			if k < j || k+1 >= len(line) || line[k+1] != ' ' {
				t.Fatalf("malformed label block in %q", line)
			}
			for _, l := range strings.Split(line[j+1:k], ",") {
				if !promLabelRe.MatchString(l) {
					t.Fatalf("malformed label %q in %q", l, line)
				}
			}
			name, valstr = line[:j], line[k+2:]
		} else {
			var ok bool
			name, valstr, ok = strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed sample line %q", line)
			}
		}
		if _, err := strconv.ParseFloat(valstr, 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if name != current {
			t.Fatalf("sample %q outside its family block (current %q)", line, current)
		}
		samples[name]++
	}
	for f := range types {
		if samples[f] == 0 {
			t.Fatalf("family %s declared but has no samples", f)
		}
	}
	return types
}

// TestPromExposition renders a live sampler row and lints the text
// format end to end; extra labels must land on every sample.
func TestPromExposition(t *testing.T) {
	nc := testConfig()
	net := noc.NewNetwork(nc)
	c := New(net, Config{Window: 100, PerVCNodes: []int{5}})
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	_, row, ok := c.Sampler().Latest()
	if !ok {
		t.Fatal("no samples")
	}
	samples := PromSamples(c.Registry().Names(), row, [][2]string{{"run", "0"}})
	var sb strings.Builder
	if err := WriteProm(&sb, samples); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	text := sb.String()
	types := lintPromExposition(t, text)
	if types["mira_net_occ"] != "gauge" {
		t.Errorf("mira_net_occ type %q, want gauge", types["mira_net_occ"])
	}
	if !strings.Contains(text, `mira_router_vc_occ{run="0",router="5",port="0",vc="0"} `) {
		t.Errorf("missing per-VC sample:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, `run="0"`) {
			t.Fatalf("sample %q missing extra label", line)
		}
	}

	// Determinism: the same row renders the same bytes.
	var sb2 strings.Builder
	if err := WriteProm(&sb2, PromSamples(c.Registry().Names(), row, [][2]string{{"run", "0"}})); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("exposition not deterministic")
	}
}

// TestPromEngineExpositionLint is the golden exposition check over the
// full family set: the existing network/router gauges plus the
// mira_engine_* families from a sharded engine-telemetry run, rendered
// together the way /metrics serves them, must pass the promtool-style
// lint, and the engine counters must be typed counter.
func TestPromEngineExpositionLint(t *testing.T) {
	nc := testConfig()
	nc.Shards = 4
	net := noc.NewNetwork(nc)
	c := New(net, Config{Window: 100, Engine: true, EngineInterval: 5 * time.Millisecond})
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 2000, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Engine() == nil {
		t.Fatal("Config.Engine did not attach an engine collector")
	}

	_, row, ok := c.Sampler().Latest()
	if !ok {
		t.Fatal("no samples")
	}
	extra := [][2]string{{"run", "0"}}
	samples := PromSamples(c.Registry().Names(), row, extra)
	samples = append(samples, c.Engine().PromSamples(extra)...)
	var sb strings.Builder
	if err := WriteProm(&sb, samples); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	types := lintPromExposition(t, sb.String())
	wantCounter := []string{
		"mira_engine_cycles_total", "mira_engine_shard_busy_seconds",
		"mira_engine_shard_drain_seconds", "mira_engine_shard_barrier_seconds",
		"mira_engine_mailbox_flits_total", "mira_engine_mailbox_credits_total",
		"mira_engine_gc_total", "mira_engine_gc_pause_seconds_total",
	}
	for _, f := range wantCounter {
		if types[f] != "counter" {
			t.Errorf("family %s type %q, want counter", f, types[f])
		}
	}
	wantGauge := []string{
		"mira_engine_cycles_per_second", "mira_engine_eta_seconds",
		"mira_engine_shard_imbalance_ratio", "mira_engine_pool_workers",
		"mira_engine_pool_utilization", "mira_engine_heap_bytes",
		"mira_engine_goroutines",
	}
	for _, f := range wantGauge {
		if types[f] != "gauge" {
			t.Errorf("family %s type %q, want gauge", f, types[f])
		}
	}
}

// TestSamplerFinalPartialWindow: a run shorter than the window still
// produces a series row, flagged partial; a boundary-aligned run gains
// no duplicate row from Finish.
func TestSamplerFinalPartialWindow(t *testing.T) {
	nc := testConfig()
	net := noc.NewNetwork(nc)
	c := New(net, Config{Window: 10000}) // longer than the whole run
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	tbl := c.SeriesTable()
	if len(tbl.Rows) != 1 {
		t.Fatalf("short run produced %d rows, want exactly the partial one", len(tbl.Rows))
	}
	row := tbl.Rows[0]
	if row[len(row)-1] != "1" {
		t.Errorf("trailing window not flagged partial: %v", row)
	}
	// Close is idempotent: no duplicate partial row.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(c.SeriesTable().Rows); n != 1 {
		t.Errorf("second Close added rows: %d", n)
	}

	// Direct sampler check: Final on an exact boundary is a no-op.
	reg := NewRegistry()
	reg.Gauge("x", func() float64 { return 1 })
	s := NewSampler(reg, 100)
	s.OnCycle(100)
	s.Final(100)
	if s.Samples() != 1 {
		t.Errorf("Final duplicated a boundary sample: %d rows", s.Samples())
	}
	s.Final(130)
	if s.Samples() != 2 {
		t.Errorf("Final did not emit the partial window: %d rows", s.Samples())
	}
	tb := s.Table()
	if got := tb.Rows[1]; got[0] != "130" || got[len(got)-1] != "1" {
		t.Errorf("partial row wrong: %v", got)
	}
	if got := tb.Rows[0]; got[len(got)-1] != "0" {
		t.Errorf("full row flagged partial: %v", got)
	}
}
