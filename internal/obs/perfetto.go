package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mira/internal/stats"
)

// Chrome trace-event export: completed FlitSpans render as "X" (complete
// duration) events on per-router tracks, loadable by Perfetto
// (ui.perfetto.dev) and chrome://tracing. Each router is a process
// (pid = router id); within a router, overlapping flit visits are
// spread across lanes (tid) by a deterministic greedy assignment so
// slices never overlap on a track. One simulated cycle maps to one
// microsecond of trace time.
//
// The exporter is deterministic: spans arrive in eject order (itself
// deterministic per scenario), lane assignment is a pure function of
// the visit intervals, and encoding/json renders struct fields in
// declaration order — so byte-identical simulations produce
// byte-identical JSON across step modes and worker counts.

// TraceEvent is one Chrome trace-event object. Field order is the
// serialization order.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceDoc is the JSON object format of the trace-event spec.
type TraceDoc struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
	DisplayUnit string       `json:"displayTimeUnit"`
}

// routerVisit is one flit's stay at one router, for lane assignment.
type routerVisit struct {
	span *FlitSpan
	hop  int
	// start is the lane-occupancy start: the queue slice begins at
	// Created for the injection hop, Arrive otherwise.
	start int64
	end   int64
}

// assignLanes spreads a router's visits over the fewest lanes such that
// no two visits on a lane overlap: visits are sorted by (start, end,
// pkt, seq) and each takes the lowest-numbered lane free at its start.
func assignLanes(visits []routerVisit) []int {
	order := make([]int, len(visits))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := visits[order[a]], visits[order[b]]
		if va.start != vb.start {
			return va.start < vb.start
		}
		if va.end != vb.end {
			return va.end < vb.end
		}
		if va.span.Pkt != vb.span.Pkt {
			return va.span.Pkt < vb.span.Pkt
		}
		return va.span.Seq < vb.span.Seq
	})
	lanes := make([]int, len(visits))
	var laneEnd []int64 // per-lane last occupied cycle (exclusive)
	for _, i := range order {
		v := visits[i]
		lane := -1
		for l, end := range laneEnd {
			if end <= v.start {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = v.end
		lanes[i] = lane
	}
	return lanes
}

// stageSlice is one stage sub-interval of a router visit.
type stageSlice struct {
	name       string
	start, end int64
}

// stageSlices lists the non-empty stage sub-slices of one visit; the
// queue slice appears only on the injection hop.
func stageSlices(v routerVisit) []stageSlice {
	h := v.span.Hops[v.hop]
	out := make([]stageSlice, 0, 5)
	add := func(name string, start, end int64) {
		if end > start {
			out = append(out, stageSlice{name, start, end})
		}
	}
	if v.hop == 0 {
		add(StageQueue.String(), v.span.Created, v.span.Inject)
	}
	add(StageRoute.String(), h.Arrive, h.Route)
	add(StageVA.String(), h.Route, h.Alloc)
	add(StageSA.String(), h.Alloc, h.Grant)
	add(StageXfer.String(), h.Grant, h.Depart)
	return out
}

// WritePerfetto renders spans as Chrome trace-event JSON on w.
func WritePerfetto(w io.Writer, spans []FlitSpan) error {
	return WriteTraceDoc(w, PerfettoDoc(spans))
}

// WriteTraceDoc encodes a caller-assembled trace-event document on w
// (e.g. PerfettoDoc output after AppendEngineTrack).
func WriteTraceDoc(w io.Writer, doc TraceDoc) error {
	return json.NewEncoder(w).Encode(doc)
}

// PerfettoDoc builds the trace-event document for a set of spans.
func PerfettoDoc(spans []FlitSpan) TraceDoc {
	// Group visits by router.
	perRouter := map[int][]routerVisit{}
	for i := range spans {
		s := &spans[i]
		for h := range s.Hops {
			v := routerVisit{span: s, hop: h, start: s.Hops[h].Arrive, end: s.Hops[h].Depart}
			if h == 0 && s.Created < v.start {
				v.start = s.Created
			}
			perRouter[s.Hops[h].Router] = append(perRouter[s.Hops[h].Router], v)
		}
	}
	routers := make([]int, 0, len(perRouter))
	for r := range perRouter {
		routers = append(routers, r)
	}
	sort.Ints(routers)

	doc := TraceDoc{DisplayUnit: "ns", TraceEvents: []TraceEvent{}}
	for _, r := range routers {
		doc.TraceEvents = append(doc.TraceEvents,
			TraceEvent{Name: "process_name", Phase: "M", PID: r,
				Args: map[string]any{"name": fmt.Sprintf("router %d", r)}},
			TraceEvent{Name: "process_sort_index", Phase: "M", PID: r,
				Args: map[string]any{"sort_index": r}},
		)
	}
	for _, r := range routers {
		visits := perRouter[r]
		lanes := assignLanes(visits)
		for i, v := range visits {
			h := v.span.Hops[v.hop]
			args := map[string]any{
				"pkt":   v.span.Pkt,
				"seq":   v.span.Seq,
				"type":  v.span.Type,
				"class": v.span.Class,
				"src":   v.span.Src,
				"dst":   v.span.Dst,
				"hop":   v.hop,
				"dir":   h.Dir,
				"vc":    h.VC,
			}
			if v.span.Layers != 0 {
				args["layers"] = v.span.Layers
			}
			for _, sl := range stageSlices(v) {
				doc.TraceEvents = append(doc.TraceEvents, TraceEvent{
					Name:  sl.name,
					Phase: "X",
					TS:    sl.start,
					Dur:   sl.end - sl.start,
					PID:   r,
					TID:   lanes[i],
					Cat:   v.span.Class,
					Args:  args,
				})
			}
		}
	}
	return doc
}

// enginePID is the trace-event process ID of the engine telemetry
// track — far above any router ID so the "engine (host)" process never
// collides with a router process.
const enginePID = 1 << 20

// EngineTrackEvents renders an engine telemetry series as Chrome
// trace-event counter ("C") tracks on a dedicated engine process:
// per-shard busy microseconds per simulated cycle and the smoothed
// cycles/sec, each sampled at the simulated cycle the ticker observed.
// Because the timestamps are simulated cycles (= microseconds, the same
// axis PerfettoDoc uses for flit spans), the engine tracks line up
// under the router tracks of the same run — shard wall-time renders
// alongside the flit activity that caused it.
func EngineTrackEvents(es EngineSeries) []TraceEvent {
	if len(es.Windows) == 0 {
		return nil
	}
	out := []TraceEvent{
		{Name: "process_name", Phase: "M", PID: enginePID,
			Args: map[string]any{"name": "engine (host wall-time)"}},
		{Name: "process_sort_index", Phase: "M", PID: enginePID,
			Args: map[string]any{"sort_index": enginePID}},
	}
	for _, w := range es.Windows {
		if w.Cycles <= 0 {
			continue
		}
		busy := map[string]any{}
		for s, ns := range w.ShardBusyNs {
			// Busy wall time per simulated cycle, in microseconds: the
			// per-shard cost of stepping one cycle during this window.
			busy[fmt.Sprintf("shard%d", s)] = float64(ns) / 1e3 / float64(w.Cycles)
		}
		out = append(out,
			TraceEvent{Name: "shard busy us/cycle", Phase: "C", TS: w.Cycle, PID: enginePID, Args: busy},
			TraceEvent{Name: "cycles/sec", Phase: "C", TS: w.Cycle, PID: enginePID,
				Args: map[string]any{"rate": w.Rate}},
		)
		if w.Imbalance > 0 {
			out = append(out, TraceEvent{Name: "shard imbalance", Phase: "C", TS: w.Cycle, PID: enginePID,
				Args: map[string]any{"ratio": w.Imbalance}})
		}
	}
	return out
}

// AppendEngineTrack appends the engine telemetry tracks to an existing
// trace document (miratrace spans -engine).
func (d *TraceDoc) AppendEngineTrack(es EngineSeries) {
	d.TraceEvents = append(d.TraceEvents, EngineTrackEvents(es)...)
}

// CongestionHeatmap aggregates spans into a per-router stall-cycle
// time series: for each router and each window of the given cycle
// width, the number of flit-cycles spent stalled there (arrival to
// switch grant — the congestion component, excluding the fixed ST+LT
// traversal). The result is a stats.Table with one row per router and
// one column per window, the CSV behind "miratrace spans -heatmap" and
// the input to plot.Heatmap.
func CongestionHeatmap(spans []FlitSpan, window int64) stats.Table {
	if window <= 0 {
		window = DefaultWindow
	}
	var maxCycle int64
	maxRouter := -1
	for i := range spans {
		for _, h := range spans[i].Hops {
			if h.Depart > maxCycle {
				maxCycle = h.Depart
			}
			if h.Router > maxRouter {
				maxRouter = h.Router
			}
		}
	}
	nWin := int((maxCycle + window - 1) / window)
	if nWin == 0 || maxRouter < 0 {
		return stats.Table{Title: "per-router congestion heatmap", Header: []string{"router"}}
	}
	cells := make([][]int64, maxRouter+1)
	for i := range cells {
		cells[i] = make([]int64, nWin)
	}
	// Spread each stall interval [Arrive, Grant) over the windows it
	// overlaps.
	for i := range spans {
		for _, h := range spans[i].Hops {
			for c := h.Arrive; c < h.Grant; {
				win := c / window
				end := (win + 1) * window
				if end > h.Grant {
					end = h.Grant
				}
				cells[h.Router][win] += end - c
				c = end
			}
		}
	}
	t := stats.Table{
		Title:  "per-router congestion heatmap (stall cycles per window)",
		Header: make([]string, 0, nWin+1),
	}
	t.Header = append(t.Header, "router")
	for w := 0; w < nWin; w++ {
		t.Header = append(t.Header, fmt.Sprintf("c%d", int64(w+1)*window))
	}
	for r := range cells {
		row := make([]string, 0, nWin+1)
		row = append(row, fmt.Sprintf("%d", r))
		for _, v := range cells[r] {
			row = append(row, fmt.Sprintf("%d", v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cell = flit-cycles stalled (arrival to switch grant) at the router during the %d-cycle window ending at the column cycle", window))
	return t
}

// HeatmapMatrix extracts the numeric cell matrix from a congestion
// heatmap table (row per router, column per window), for plot.Heatmap.
func HeatmapMatrix(t stats.Table) ([][]float64, []string, []string) {
	rows := make([][]float64, len(t.Rows))
	rowLabels := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		rowLabels[i] = r[0]
		rows[i] = make([]float64, len(r)-1)
		for j, c := range r[1:] {
			fmt.Sscanf(c, "%g", &rows[i][j])
		}
	}
	return rows, rowLabels, t.Header[1:]
}
