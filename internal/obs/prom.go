package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled over
// the metric registry: the internal dotted names map onto the
// prometheus naming conventions, with per-router and per-VC series
// folded into labels instead of distinct metric names:
//
//	net.occ                 -> mira_net_occ
//	net.active_layers       -> mira_net_active_layers
//	r5.credit_stalls        -> mira_router_credit_stalls{router="5"}
//	r5.p2.vc1.occ           -> mira_router_vc_occ{router="5",port="2",vc="1"}
//
// Every sampled value is exposed as a gauge (counters are already
// per-window deltas by the time the sampler stores them). The writer
// emits families sorted by metric name and, within a family, samples in
// label order, so identical samples always render identical bytes.

var (
	routerMetricRe = regexp.MustCompile(`^r(\d+)\.([a-z_]+)$`)
	vcMetricRe     = regexp.MustCompile(`^r(\d+)\.p(\d+)\.vc(\d+)\.([a-z_]+)$`)
)

// PromSample is one exposition line: a metric name, ordered label
// pairs, and a value.
type PromSample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// promName converts an internal registry metric name to its prometheus
// form. extra labels (e.g. the run index) are prepended to every
// sample.
func promName(name string, extra [][2]string) PromSample {
	s := PromSample{Labels: append([][2]string{}, extra...)}
	if m := vcMetricRe.FindStringSubmatch(name); m != nil {
		s.Name = "mira_router_vc_" + m[4]
		s.Labels = append(s.Labels,
			[2]string{"router", m[1]}, [2]string{"port", m[2]}, [2]string{"vc", m[3]})
		return s
	}
	if m := routerMetricRe.FindStringSubmatch(name); m != nil {
		s.Name = "mira_router_" + m[2]
		s.Labels = append(s.Labels, [2]string{"router", m[1]})
		return s
	}
	s.Name = "mira_" + strings.NewReplacer(".", "_").Replace(name)
	return s
}

// PromSamples converts one sampler row (metric names in registration
// order plus their values) into exposition samples, attaching extra
// labels to each.
func PromSamples(names []string, row []float64, extra [][2]string) []PromSample {
	out := make([]PromSample, 0, len(names))
	for i, n := range names {
		if i >= len(row) {
			break
		}
		s := promName(n, extra)
		s.Value = row[i]
		out = append(out, s)
	}
	return out
}

// render writes one sample line.
func (s PromSample) render(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(s.Name)
	if len(s.Labels) > 0 {
		sb.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%s=%q", l[0], l[1])
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// labelKey orders samples within a family deterministically.
func (s PromSample) labelKey() string {
	var sb strings.Builder
	for _, l := range s.Labels {
		// Numeric label values sort numerically (router 2 before 10).
		if n, err := strconv.Atoi(l[1]); err == nil {
			fmt.Fprintf(&sb, "%s=%012d;", l[0], n)
		} else {
			fmt.Fprintf(&sb, "%s=%s;", l[0], l[1])
		}
	}
	return sb.String()
}

// promHelp holds the HELP text of every first-class family. Families
// not listed (e.g. ablation-specific gauges that map through the
// generic name path) fall back to a generated line, so the exposition
// lint's every-family-has-HELP invariant holds regardless.
var promHelp = map[string]string{
	"mira_net_occ":           "Flits buffered in routers at the sample window boundary.",
	"mira_net_backlog":       "Total backlog (queued + in-flight flits) at the window boundary.",
	"mira_net_credit_stalls": "Credit-stall events during the sample window.",
	"mira_net_link_flits":    "Flits crossing inter-router links during the sample window.",
	"mira_net_express_flits": "Flits carried by express channels during the sample window.",
	"mira_net_vertical_flits": "Flits crossing vertical (inter-die) links during the sample " +
		"window.",
	"mira_net_active_layers": "Mean datapath layers awake per crossbar traversal during the " +
		"window.",
	"mira_router_occ":           "Per-router buffered flits at the window boundary.",
	"mira_router_credit_stalls": "Per-router credit-stall events during the sample window.",
	"mira_router_vc_occ":        "Per-VC buffered flits at the window boundary.",
	"mira_run_cycle":            "Latest sampled simulation cycle of the run.",
	"mira_runs":                 "Batch runs by state.",

	"mira_engine_cycles_total":      "Simulated cycles stepped by the engine.",
	"mira_engine_cycles_per_second": "EMA-smoothed engine throughput in simulated cycles per wall second.",
	"mira_engine_eta_seconds":       "Estimated wall seconds until the measurement window completes (0 = draining or done).",
	"mira_engine_shard_busy_seconds": "Wall time the shard's worker spent stepping its routers " +
		"(drain + inject + pipeline stages).",
	"mira_engine_shard_drain_seconds":   "Wall time the shard spent in the delivery/mailbox-drain phase.",
	"mira_engine_shard_barrier_seconds": "Wall time the shard spent parked at the cycle barrier waiting for slower shards.",
	"mira_engine_shard_imbalance_ratio": "Max/mean per-shard busy time; 1.0 is perfectly balanced.",
	"mira_engine_mailbox_flits_total":   "Flits drained from the (src,dst) boundary mailbox.",
	"mira_engine_mailbox_credits_total": "Credits drained from the (src,dst) boundary mailbox.",
	"mira_engine_pool_workers":          "Shard worker pool size (1 = sequential stepping).",
	"mira_engine_pool_utilization":      "Fraction of pool capacity spent doing shard work (busy / (workers x step wall time)).",
	"mira_engine_heap_bytes":            "Go heap in use (runtime.MemStats.HeapAlloc).",
	"mira_engine_goroutines":            "Live goroutines in the simulator process.",
	"mira_engine_gc_total":              "Completed garbage-collection cycles.",
	"mira_engine_gc_pause_seconds_total": "Cumulative stop-the-world garbage-collection pause " +
		"time.",
}

// promCounterFamily marks cumulative families that do not carry the
// conventional _total suffix (per-shard wall-time totals keep the name
// the dashboards read naturally).
var promCounterFamily = map[string]bool{
	"mira_engine_shard_busy_seconds":    true,
	"mira_engine_shard_drain_seconds":   true,
	"mira_engine_shard_barrier_seconds": true,
}

// promFamilyMeta returns the TYPE and HELP line content for a family:
// counters are the _total-suffixed families plus the explicit counter
// set; everything else is a gauge (sampled levels and per-window
// deltas).
func promFamilyMeta(f string) (typ, help string) {
	typ = "gauge"
	if strings.HasSuffix(f, "_total") || promCounterFamily[f] {
		typ = "counter"
	}
	help, ok := promHelp[f]
	if !ok {
		help = "MIRA simulator metric " + f + "."
	}
	return typ, help
}

// WriteProm renders samples in the prometheus text exposition format:
// families sorted by name, each led by # HELP and # TYPE lines, samples
// within a family sorted by labels.
func WriteProm(w io.Writer, samples []PromSample) error {
	byFamily := map[string][]PromSample{}
	for _, s := range samples {
		byFamily[s.Name] = append(byFamily[s.Name], s)
	}
	families := make([]string, 0, len(byFamily))
	for f := range byFamily {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		typ, help := promFamilyMeta(f)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f, help, f, typ); err != nil {
			return err
		}
		fam := byFamily[f]
		sort.SliceStable(fam, func(a, b int) bool { return fam[a].labelKey() < fam[b].labelKey() })
		for _, s := range fam {
			if err := s.render(w); err != nil {
				return err
			}
		}
	}
	return nil
}
