package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/noc"
	"mira/internal/stats"
)

// Engine self-telemetry: where the *simulator's own* execution spends
// wall-clock time, as opposed to what the simulated network does. An
// EngineCollector pairs a noc.EngineMeter (per-shard cycle-phase wall
// time, boundary-mailbox crossings) with a wall-clock ticker goroutine
// that samples the meter, the Go runtime (heap, GC, goroutines) and an
// EMA-smoothed cycles/sec throughput with an ETA against the run's
// warmup+measure target.
//
// The out-of-band contract: nothing here ever feeds back into
// simulation state — wall-clock readings steer no simulated decision,
// so results are bit-identical with engine telemetry attached or
// detached (pinned by TestEngineTelemetryPurity). All surfaces (the
// live -progress line, the stats.Table summary, the mira_engine_*
// Prometheus families, the Perfetto engine track) are derived views of
// the same sampled series.

// DefaultEngineInterval is the wall-clock sampling period of the engine
// ticker when the scenario does not override it.
const DefaultEngineInterval = 500 * time.Millisecond

// emaAlpha smooths the cycles/sec estimate: ~70% of the weight sits in
// the last four windows, enough to ride out GC pauses without going
// stale on real throughput shifts.
const emaAlpha = 0.3

// maxEngineWindows bounds the retained sample series. When full, the
// series is compacted by merging adjacent window pairs (halving the
// resolution but keeping full run coverage), so memory stays bounded on
// arbitrarily long runs.
const maxEngineWindows = 4096

// imbalanceWarnMinCycles is the observation floor before the one-shot
// shard-imbalance warning may fire — short runs and warmup transients
// should not trigger advice.
const imbalanceWarnMinCycles = 10000

// EngineWindow is one ticker sample: the deltas accumulated since the
// previous tick plus the smoothed rate at that point. ShardBusyNs et
// al. are indexed by shard.
type EngineWindow struct {
	Cycle          int64   `json:"cycle"`   // simulated cycle at sample time
	WallMs         float64 `json:"wall_ms"` // wall offset from collector start
	Cycles         int64   `json:"cycles"`  // cycles stepped in this window
	Rate           float64 `json:"rate"`    // EMA cycles/sec after this window
	Imbalance      float64 `json:"imbalance,omitempty"`
	ShardBusyNs    []int64 `json:"shard_busy_ns"`
	ShardDrainNs   []int64 `json:"shard_drain_ns,omitempty"`
	ShardBarrierNs []int64 `json:"shard_barrier_ns,omitempty"`
}

// runtimeSample is one Go-runtime reading taken on the ticker.
type runtimeSample struct {
	HeapBytes  uint64 `json:"heap_bytes"`
	Goroutines int    `json:"goroutines"`
	NumGC      uint32 `json:"num_gc"`
	GCPauseNs  uint64 `json:"gc_pause_ns"`
}

// EngineSeries is the JSON-serializable record of one run's engine
// telemetry: the windowed series, the final meter snapshot and the last
// runtime reading. mirasim -enginejson writes it; miratrace spans
// -engine renders it as Perfetto counter tracks next to the flit spans
// of the same run.
type EngineSeries struct {
	Label      string             `json:"label,omitempty"`
	Shards     int                `json:"shards"`
	IntervalMs float64            `json:"interval_ms"`
	WallMs     float64            `json:"wall_ms"`
	Windows    []EngineWindow     `json:"windows"`
	Snapshot   noc.EngineSnapshot `json:"snapshot"`
	Runtime    runtimeSample      `json:"runtime"`
}

// ReadEngineSeries decodes a series written by WriteJSON.
func ReadEngineSeries(r io.Reader) (EngineSeries, error) {
	var es EngineSeries
	err := json.NewDecoder(r).Decode(&es)
	return es, err
}

// EngineProgress is one progress digest handed to the progress hook on
// every ticker sample.
type EngineProgress struct {
	Label     string
	Cycle     int64
	Target    int64 // warmup+measure cycles; 0 = unknown
	Rate      float64
	ETA       time.Duration // 0 = unknown, past target, or draining
	Imbalance float64
	Shards    int
}

// String renders the single-line form used by mirasim -progress.
func (p EngineProgress) String() string {
	s := fmt.Sprintf("cycle %d", p.Cycle)
	if p.Target > 0 {
		s += fmt.Sprintf("/%d", p.Target)
	}
	s += "  " + humanRate(p.Rate) + " cyc/s"
	if p.ETA > 0 {
		s += "  eta " + p.ETA.Round(time.Second).String()
	}
	if p.Shards > 1 {
		s += fmt.Sprintf("  imb %.2fx (%d shards)", p.Imbalance, p.Shards)
	}
	return s
}

// humanRate formats cycles/sec with an SI suffix.
func humanRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	default:
		return fmt.Sprintf("%.0f", r)
	}
}

// engineProgressHook is the process-wide progress sink, installed once
// at command startup (mirasim -progress, mirabench -progress
// -enginestats). A package global rather than per-collector plumbing
// because collectors are built deep inside scenario elaboration, where
// no command-level writer is in scope; the hook receives the label so
// concurrent batch runs stay distinguishable.
var engineProgressHook atomic.Pointer[func(EngineProgress)]

// SetEngineProgressHook installs fn as the global progress sink (nil
// clears it). fn may be called concurrently from the ticker goroutines
// of simultaneously running collectors.
func SetEngineProgressHook(fn func(EngineProgress)) {
	if fn == nil {
		engineProgressHook.Store(nil)
		return
	}
	engineProgressHook.Store(&fn)
}

// EngineCollector samples one simulation's engine meter on a wall-clock
// ticker. Built by Collector.Attach when Config.Engine is set; Close
// (via Collector.Close) stops the ticker and takes a final sample.
type EngineCollector struct {
	meter    *noc.EngineMeter
	label    string
	target   int64 // warmup+measure cycles
	interval time.Duration
	start    time.Time

	// lastAdvance is the unix-nano time of the last tick that observed
	// cycle progress — the liveness signal behind /healthz: a hung shard
	// barrier stops advancing cycles while the process stays up.
	lastAdvance atomic.Int64

	mu        sync.Mutex
	last      noc.EngineSnapshot
	lastWall  time.Time
	ema       float64
	windows   []EngineWindow
	rt        runtimeSample
	imbCycles int64 // cycles observed under >2x imbalance
	obsCycles int64 // cycles observed across all windows
	warned    bool
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup
}

// newEngineCollector attaches an engine meter to the sim's network and
// starts the sampling ticker. Called from Collector.Attach.
func newEngineCollector(sim *noc.Sim, cfg Config) *EngineCollector {
	interval := cfg.EngineInterval
	if interval <= 0 {
		interval = DefaultEngineInterval
	}
	now := time.Now()
	ec := &EngineCollector{
		meter:    sim.Net.EnableEngineMeter(),
		label:    cfg.EngineLabel,
		target:   sim.Params.Warmup + sim.Params.Measure,
		interval: interval,
		start:    now,
		lastWall: now,
		done:     make(chan struct{}),
	}
	ec.lastAdvance.Store(now.UnixNano())
	ec.wg.Add(1)
	go ec.loop()
	return ec
}

func (ec *EngineCollector) loop() {
	defer ec.wg.Done()
	t := time.NewTicker(ec.interval)
	defer t.Stop()
	for {
		select {
		case <-ec.done:
			return
		case now := <-t.C:
			ec.sample(now)
		}
	}
}

// sample takes one ticker reading: meter deltas, runtime stats, EMA
// update, imbalance accounting, and fires the progress hook.
func (ec *EngineCollector) sample(now time.Time) {
	snap := ec.meter.Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	ec.mu.Lock()
	dt := now.Sub(ec.lastWall).Seconds()
	dc := snap.Cycles - ec.last.Cycles
	if dc > 0 {
		ec.lastAdvance.Store(now.UnixNano())
	}
	if dt > 0 {
		inst := float64(dc) / dt
		if ec.ema == 0 {
			ec.ema = inst
		} else {
			ec.ema = emaAlpha*inst + (1-emaAlpha)*ec.ema
		}
	}
	w := EngineWindow{
		Cycle:       snap.Cycles,
		WallMs:      now.Sub(ec.start).Seconds() * 1e3,
		Cycles:      dc,
		Rate:        ec.ema,
		ShardBusyNs: make([]int64, len(snap.Shards)),
	}
	S := len(snap.Shards)
	if S > 1 {
		w.ShardDrainNs = make([]int64, S)
		w.ShardBarrierNs = make([]int64, S)
	}
	var busySum, busyMax int64
	for i := range snap.Shards {
		var prev noc.EngineShardStat
		if i < len(ec.last.Shards) {
			prev = ec.last.Shards[i]
		}
		b := snap.Shards[i].BusyNs - prev.BusyNs
		w.ShardBusyNs[i] = b
		busySum += b
		if b > busyMax {
			busyMax = b
		}
		if S > 1 {
			w.ShardDrainNs[i] = snap.Shards[i].DrainNs - prev.DrainNs
			w.ShardBarrierNs[i] = snap.Shards[i].BarrierNs - prev.BarrierNs
		}
	}
	if S > 1 && busySum > 0 {
		w.Imbalance = float64(busyMax) * float64(S) / float64(busySum)
		ec.obsCycles += dc
		if w.Imbalance > 2 {
			ec.imbCycles += dc
		}
	}
	ec.windows = append(ec.windows, w)
	if len(ec.windows) >= maxEngineWindows {
		ec.windows = compactWindows(ec.windows)
	}
	ec.last = snap
	ec.lastWall = now
	ec.rt = runtimeSample{
		HeapBytes:  ms.HeapAlloc,
		Goroutines: runtime.NumGoroutine(),
		NumGC:      ms.NumGC,
		GCPauseNs:  ms.PauseTotalNs,
	}
	warnNow := !ec.warned && S > 1 &&
		ec.obsCycles >= imbalanceWarnMinCycles && ec.imbCycles*4 > ec.obsCycles
	if warnNow {
		ec.warned = true
	}
	progress := ec.progressLocked(snap)
	imbFrac := 0.0
	if ec.obsCycles > 0 {
		imbFrac = float64(ec.imbCycles) / float64(ec.obsCycles)
	}
	ec.mu.Unlock()

	if warnNow {
		slog.Warn("shard load imbalance: the hottest shard ran more than 2x the mean busy time",
			"label", ec.label, "shards", S,
			"imbalanced_cycle_frac", fmt.Sprintf("%.2f", imbFrac),
			"hint", "consider -shards=-1 to auto-tune the shard count")
	}
	if fn := engineProgressHook.Load(); fn != nil {
		(*fn)(progress)
	}
}

// compactWindows merges adjacent window pairs, halving the series while
// keeping full-run coverage (deltas sum; point-in-time fields take the
// later window's value).
func compactWindows(in []EngineWindow) []EngineWindow {
	out := in[:0]
	for i := 0; i+1 < len(in); i += 2 {
		a, b := in[i], in[i+1]
		m := b
		m.Cycles = a.Cycles + b.Cycles
		for s := range m.ShardBusyNs {
			m.ShardBusyNs[s] += a.ShardBusyNs[s]
		}
		for s := range m.ShardDrainNs {
			m.ShardDrainNs[s] += a.ShardDrainNs[s]
		}
		for s := range m.ShardBarrierNs {
			m.ShardBarrierNs[s] += a.ShardBarrierNs[s]
		}
		if a.Imbalance > m.Imbalance {
			m.Imbalance = a.Imbalance
		}
		out = append(out, m)
	}
	if len(in)%2 == 1 {
		out = append(out, in[len(in)-1])
	}
	return out
}

// progressLocked builds the hook payload; ec.mu must be held.
func (ec *EngineCollector) progressLocked(snap noc.EngineSnapshot) EngineProgress {
	p := EngineProgress{
		Label:     ec.label,
		Cycle:     snap.Cycles,
		Target:    ec.target,
		Rate:      ec.ema,
		Imbalance: snap.ImbalanceRatio(),
		Shards:    len(snap.Shards),
	}
	if rem := ec.target - snap.Cycles; ec.target > 0 && rem > 0 && ec.ema > 0 {
		p.ETA = time.Duration(float64(rem) / ec.ema * float64(time.Second))
	}
	return p
}

// Close stops the ticker and takes a final sample so short runs (under
// one interval) still record a window. Idempotent.
func (ec *EngineCollector) Close() {
	ec.mu.Lock()
	if ec.closed {
		ec.mu.Unlock()
		return
	}
	ec.closed = true
	ec.mu.Unlock()
	close(ec.done)
	ec.wg.Wait()
	ec.sample(time.Now())
}

// LastProgress returns the wall time of the last tick that observed
// cycle progress (collector start before the first). The /healthz
// liveness check compares it against a stall threshold.
func (ec *EngineCollector) LastProgress() time.Time {
	return time.Unix(0, ec.lastAdvance.Load())
}

// Snapshot returns the meter's current totals.
func (ec *EngineCollector) Snapshot() noc.EngineSnapshot { return ec.meter.Snapshot() }

// Rate returns the current EMA-smoothed cycles/sec.
func (ec *EngineCollector) Rate() float64 {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.ema
}

// Series exports the sampled telemetry for JSON serialization.
func (ec *EngineCollector) Series() EngineSeries {
	snap := ec.meter.Snapshot()
	ec.mu.Lock()
	defer ec.mu.Unlock()
	es := EngineSeries{
		Label:      ec.label,
		Shards:     len(snap.Shards),
		IntervalMs: float64(ec.interval) / float64(time.Millisecond),
		WallMs:     ec.lastWall.Sub(ec.start).Seconds() * 1e3,
		Windows:    append([]EngineWindow(nil), ec.windows...),
		Snapshot:   snap,
		Runtime:    ec.rt,
	}
	return es
}

// WriteJSON writes the engine series as indented JSON.
func (ec *EngineCollector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ec.Series())
}

// PromSamples renders the meter and runtime state as mira_engine_*
// exposition samples, attaching extra labels to each. Safe to call from
// a serving goroutine while the simulation runs.
func (ec *EngineCollector) PromSamples(extra [][2]string) []PromSample {
	snap := ec.meter.Snapshot()
	ec.mu.Lock()
	ema := ec.ema
	rt := ec.rt
	ec.mu.Unlock()

	add := func(out []PromSample, name string, v float64, labels ...[2]string) []PromSample {
		s := PromSample{Name: name, Value: v, Labels: append(append([][2]string{}, extra...), labels...)}
		return append(out, s)
	}
	var out []PromSample
	out = add(out, "mira_engine_cycles_total", float64(snap.Cycles))
	out = add(out, "mira_engine_cycles_per_second", ema)
	var eta float64
	if rem := ec.target - snap.Cycles; ec.target > 0 && rem > 0 && ema > 0 {
		eta = float64(rem) / ema
	}
	out = add(out, "mira_engine_eta_seconds", eta)
	for _, s := range snap.Shards {
		lab := [2]string{"shard", fmt.Sprintf("%d", s.Shard)}
		out = add(out, "mira_engine_shard_busy_seconds", float64(s.BusyNs)/1e9, lab)
		out = add(out, "mira_engine_shard_drain_seconds", float64(s.DrainNs)/1e9, lab)
		out = add(out, "mira_engine_shard_barrier_seconds", float64(s.BarrierNs)/1e9, lab)
	}
	out = add(out, "mira_engine_shard_imbalance_ratio", snap.ImbalanceRatio())
	for _, mb := range snap.Mailbox {
		labs := [][2]string{{"src", fmt.Sprintf("%d", mb.Src)}, {"dst", fmt.Sprintf("%d", mb.Dst)}}
		out = add(out, "mira_engine_mailbox_flits_total", float64(mb.Flits), labs...)
		out = add(out, "mira_engine_mailbox_credits_total", float64(mb.Credits), labs...)
	}
	out = add(out, "mira_engine_pool_workers", float64(len(snap.Shards)))
	out = add(out, "mira_engine_pool_utilization", snap.Utilization())
	out = add(out, "mira_engine_heap_bytes", float64(rt.HeapBytes))
	out = add(out, "mira_engine_goroutines", float64(rt.Goroutines))
	out = add(out, "mira_engine_gc_total", float64(rt.NumGC))
	out = add(out, "mira_engine_gc_pause_seconds_total", float64(rt.GCPauseNs)/1e9)
	return out
}

// Table renders the end-of-run engine summary (mirasim -enginestats,
// scenario observe.engine). Values are host wall-clock measurements and
// therefore vary run to run — by design this table is never part of the
// byte-identical result contract.
func (ec *EngineCollector) Table() stats.Table {
	snap := ec.meter.Snapshot()
	ec.mu.Lock()
	ema := ec.ema
	rt := ec.rt
	wall := ec.lastWall.Sub(ec.start).Seconds()
	ec.mu.Unlock()

	t := stats.Table{
		Title:  "engine telemetry",
		Header: []string{"shard", "routers", "busy_s", "drain_s", "barrier_s", "busy_pct", "cycles"},
	}
	for _, s := range snap.Shards {
		pct := 0.0
		if snap.StepNs > 0 {
			pct = 100 * float64(s.BusyNs) / float64(snap.StepNs)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s.Shard),
			fmt.Sprintf("%d", s.Routers),
			fmt.Sprintf("%.3f", float64(s.BusyNs)/1e9),
			fmt.Sprintf("%.3f", float64(s.DrainNs)/1e9),
			fmt.Sprintf("%.3f", float64(s.BarrierNs)/1e9),
			fmt.Sprintf("%.1f", pct),
			fmt.Sprintf("%d", s.Cycles),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cycles=%d wall=%.2fs step=%.2fs rate=%s cyc/s (EMA)",
			snap.Cycles, wall, float64(snap.StepNs)/1e9, humanRate(ema)),
		fmt.Sprintf("pool: %d workers, utilization %.0f%%, imbalance %.2fx (max/mean shard busy)",
			len(snap.Shards), 100*snap.Utilization(), snap.ImbalanceRatio()))
	if len(snap.Mailbox) > 0 {
		var flits, creds int64
		hot := snap.Mailbox[0]
		for _, mb := range snap.Mailbox {
			flits += mb.Flits
			creds += mb.Credits
			if mb.Flits > hot.Flits {
				hot = mb
			}
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("mailbox: %d flits, %d credits across %d shard pairs; hottest %d->%d (%d flits)",
				flits, creds, len(snap.Mailbox), hot.Src, hot.Dst, hot.Flits))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("runtime: heap %.1f MB, %d goroutines, %d GCs, %.1f ms GC pause",
			float64(rt.HeapBytes)/(1<<20), rt.Goroutines, rt.NumGC, float64(rt.GCPauseNs)/1e6),
		"host wall-clock only; simulated results are unaffected (DESIGN.md, Engine telemetry)")
	return t
}
