package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mira/internal/noc"
)

// Event is the JSONL-serialized form of one probe event: one object per
// line, in emission order. Field names are kept short because traces
// run to millions of lines.
type Event struct {
	Cycle  int64  `json:"c"`
	Kind   string `json:"k"`
	Router int    `json:"r"`
	Dir    string `json:"d,omitempty"`
	VC     int    `json:"vc,omitempty"`
	Pkt    int64  `json:"p"`
	Seq    int    `json:"s"`
	Type   string `json:"t"`
	Class  string `json:"cl"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	// Created is the packet's creation cycle (source queueing included),
	// carried on inject and eject events so packet latency is computable
	// from the trace alone.
	Created int64 `json:"created,omitempty"`
	// Layers is the flit's active datapath layer count (0 = all layers),
	// carried on inject events so span attribution can group by the
	// §3.2.1 layer-shutdown state.
	Layers int `json:"al,omitempty"`
}

// flitTypeNames maps noc.FlitType to its serialized name.
var flitTypeNames = [...]string{"head", "body", "tail", "headtail"}

func flitTypeName(t noc.FlitType) string { return flitTypeNames[t] }

// eventOf converts a live probe event to its serialized form.
func eventOf(ev noc.ProbeEvent) Event {
	e := Event{
		Cycle:  ev.Cycle,
		Kind:   ev.Kind.String(),
		Router: int(ev.Router),
		VC:     int(ev.VC),
		Pkt:    ev.Flit.Pkt.ID,
		Seq:    int(ev.Flit.Seq),
		Type:   flitTypeName(ev.Flit.Type),
		Class:  ev.Flit.Pkt.Class.String(),
		Src:    int(ev.Flit.Pkt.Src),
		Dst:    int(ev.Flit.Pkt.Dst),
	}
	if ev.Kind != noc.ProbeEject {
		e.Dir = ev.Dir.String()
	}
	if ev.Kind == noc.ProbeInject || ev.Kind == noc.ProbeEject {
		e.Created = ev.Flit.Pkt.CreatedAt
	}
	if ev.Kind == noc.ProbeInject {
		e.Layers = int(ev.Flit.ActiveLayers)
	}
	return e
}

// TraceWriter streams probe events as JSONL through a bounded ring
// buffer: events accumulate in a fixed-size in-memory batch and are
// encoded and flushed together when the batch fills (and on Close), so
// tracing never holds more than RingSize events in memory no matter how
// long the run is. Nothing is ever dropped — the ring bounds memory,
// not the trace.
type TraceWriter struct {
	w    *bufio.Writer
	ring []Event
	n    int
	enc  *json.Encoder
	err  error

	// Filter, when non-nil, decides which events are written.
	filter func(noc.ProbeEvent) bool

	written int64
}

// DefaultRingSize is the event batch capacity used when NewTraceWriter
// is given a non-positive size.
const DefaultRingSize = 4096

// NewTraceWriter builds a JSONL trace writer over w. ringSize bounds
// the in-memory event batch (0 means DefaultRingSize). filter, when
// non-nil, selects the events to record; everything else is discarded.
func NewTraceWriter(w io.Writer, ringSize int, filter func(noc.ProbeEvent) bool) *TraceWriter {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	bw := bufio.NewWriter(w)
	return &TraceWriter{
		w:      bw,
		ring:   make([]Event, ringSize),
		enc:    json.NewEncoder(bw),
		filter: filter,
	}
}

// ProbeEvent implements noc.Probe: filter, stage into the ring, flush
// when full.
func (t *TraceWriter) ProbeEvent(ev noc.ProbeEvent) {
	if t.err != nil {
		return
	}
	if t.filter != nil && !t.filter(ev) {
		return
	}
	t.ring[t.n] = eventOf(ev)
	t.n++
	if t.n == len(t.ring) {
		t.flushRing()
	}
}

func (t *TraceWriter) flushRing() {
	for i := 0; i < t.n; i++ {
		if err := t.enc.Encode(t.ring[i]); err != nil {
			t.err = err
			break
		}
		t.written++
	}
	t.n = 0
}

// Written returns the number of events encoded so far (staged ring
// events are not yet counted).
func (t *TraceWriter) Written() int64 { return t.written }

// Close flushes the staged events and the underlying buffer. It does
// not close the wrapped writer. A flush failure — including one that
// happened mid-run and silently stopped recording — is reported here,
// annotated with how many events made it out, so callers can exit
// nonzero instead of shipping a truncated trace.
func (t *TraceWriter) Close() error {
	t.flushRing()
	err := t.err
	if err == nil {
		err = t.w.Flush()
	}
	if err != nil {
		return fmt.Errorf("obs: trace writer failed after %d events written: %w", t.written, err)
	}
	return nil
}

// NodeClassFilter builds a trace filter from a router allow-list and a
// message-class name. An empty node list admits every router; an empty
// class admits both classes. Inject events are matched against the
// source router and eject events against the destination, so a node
// filter follows a flit only through the listed routers.
func NodeClassFilter(nodes []int, class string) func(noc.ProbeEvent) bool {
	if len(nodes) == 0 && class == "" {
		return nil
	}
	var allow map[int]bool
	if len(nodes) > 0 {
		allow = make(map[int]bool, len(nodes))
		for _, n := range nodes {
			allow[n] = true
		}
	}
	return func(ev noc.ProbeEvent) bool {
		if allow != nil && !allow[int(ev.Router)] {
			return false
		}
		return class == "" || ev.Flit.Pkt.Class.String() == class
	}
}

// ReadTrace decodes a JSONL trace, verifying structure as it goes:
// every line must parse, carry a known kind, and cycles must be
// non-decreasing (emission order is simulation order). It returns the
// events in file order.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	line := 0
	lastCycle := int64(-1)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if _, ok := noc.ParseProbeKind(e.Kind); !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown event kind %q", line, e.Kind)
		}
		if e.Cycle < lastCycle {
			return nil, fmt.Errorf("obs: trace line %d: cycle %d after cycle %d (trace out of order)",
				line, e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// Replay folds a recorded trace back through the same latency
// accumulator the live Collector uses, so an unfiltered trace
// reproduces the collector's per-flit latency statistics byte for byte
// (see LatencyStats.JSON). It also verifies the per-flit protocol: a
// flit must be injected before any later event and must not reappear
// after ejection.
func Replay(events []Event) (LatencyStats, error) {
	var acc latencyAcc
	type key struct {
		pkt int64
		seq int
	}
	state := map[key]string{}
	for i, e := range events {
		k := key{e.Pkt, e.Seq}
		prev, seen := state[k]
		switch e.Kind {
		case noc.ProbeInject.String():
			if seen {
				return LatencyStats{}, fmt.Errorf("obs: event %d: flit %d.%d injected twice", i, e.Pkt, e.Seq)
			}
		default:
			if !seen {
				return LatencyStats{}, fmt.Errorf("obs: event %d: flit %d.%d %s before inject (trace filtered or truncated?)",
					i, e.Pkt, e.Seq, e.Kind)
			}
			if prev == noc.ProbeEject.String() {
				return LatencyStats{}, fmt.Errorf("obs: event %d: flit %d.%d active after eject", i, e.Pkt, e.Seq)
			}
		}
		state[k] = e.Kind
		acc.feedSerialized(e)
	}
	return acc.stats(), nil
}
