package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mira/internal/noc"
	"mira/internal/traffic"
)

// runSpans runs a short uniform-random simulation with live span
// building enabled, optionally recording the trace into buf.
func runSpans(t *testing.T, mutate func(*noc.Config), buf *bytes.Buffer) *Collector {
	t.Helper()
	nc := testConfig()
	if mutate != nil {
		mutate(&nc)
	}
	net := noc.NewNetwork(nc)
	c := New(net, Config{Spans: true})
	if buf != nil {
		c.SetTraceWriter(buf)
	}
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	res := sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}
	if res.Ejected == 0 {
		t.Fatal("no traffic simulated")
	}
	if err := c.Spans().Err(); err != nil {
		t.Fatalf("span builder error: %v", err)
	}
	if c.Spans().InFlight() != 0 {
		t.Fatalf("%d spans still open after a drained run", c.Spans().InFlight())
	}
	return c
}

// TestSpanTotalsMatchCollector is the acceptance pin: each flit's stage
// decomposition telescopes exactly to its inject-to-eject latency, and
// the aggregate mean equals the live collector's FlitMean bit for bit.
func TestSpanTotalsMatchCollector(t *testing.T) {
	for _, variant := range []struct {
		name   string
		mutate func(*noc.Config)
	}{
		{"baseline", nil},
		{"lookahead", func(c *noc.Config) { c.LookaheadRC = true }},
		{"specsa", func(c *noc.Config) { c.SpecSA = true }},
		{"specsa_lookahead", func(c *noc.Config) { c.SpecSA = true; c.LookaheadRC = true }},
		{"stlt1", func(c *noc.Config) { c.STLTCycles = 1 }},
		{"qos", func(c *noc.Config) { c.QoSPriority = true }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			c := runSpans(t, variant.mutate, nil)
			spans := c.Spans().Spans()
			if len(spans) == 0 {
				t.Fatal("no spans built")
			}
			var sum, n int64
			for _, s := range spans {
				var stages int64
				for st := StageRoute; st < NumStages; st++ {
					stages += s.StageTotal(st)
				}
				if stages != s.Network() {
					t.Fatalf("flit %d.%d stages sum to %d, network latency %d", s.Pkt, s.Seq, stages, s.Network())
				}
				for h := 1; h < len(s.Hops); h++ {
					if s.Hops[h].Arrive != s.Hops[h-1].Depart {
						t.Fatalf("flit %d.%d hop %d arrives at %d, previous departs at %d",
							s.Pkt, s.Seq, h, s.Hops[h].Arrive, s.Hops[h-1].Depart)
					}
				}
				sum += s.Network()
				n++
			}
			live := c.Latency()
			if n != live.Flits {
				t.Fatalf("%d spans for %d collected flits", n, live.Flits)
			}
			if mean := float64(sum) / float64(n); mean != live.FlitMean {
				t.Fatalf("span mean %v != collector FlitMean %v", mean, live.FlitMean)
			}
			agg := c.Spans().Attribution()
			if tot := agg.Total(); tot.NetworkCycles() != sum || tot.N != n {
				t.Fatalf("attribution total %d/%d, want %d/%d", tot.NetworkCycles(), tot.N, sum, n)
			}
		})
	}
}

// TestSpansFromTraceMatchLive: folding the recorded (unfiltered) trace
// through BuildSpans reproduces the live builder's spans and
// attribution byte for byte.
func TestSpansFromTraceMatchLive(t *testing.T) {
	for _, variant := range []struct {
		name   string
		mutate func(*noc.Config)
	}{
		{"baseline", nil},
		{"lookahead", func(c *noc.Config) { c.LookaheadRC = true }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			var buf bytes.Buffer
			c := runSpans(t, variant.mutate, &buf)
			events, err := ReadTrace(&buf)
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			// The recorded trace must also satisfy the strict replay
			// protocol (inject before any other event, even with
			// look-ahead routing computing routes at inject time).
			if _, err := Replay(events); err != nil {
				t.Fatalf("Replay: %v", err)
			}
			spans, agg, err := BuildSpans(events)
			if err != nil {
				t.Fatalf("BuildSpans: %v", err)
			}
			liveSpans := c.Spans().Spans()
			lj, _ := json.Marshal(liveSpans)
			tj, _ := json.Marshal(spans)
			if !bytes.Equal(lj, tj) {
				t.Fatalf("trace-built spans differ from live (%d vs %d spans)", len(spans), len(liveSpans))
			}
			liveTbl := c.Spans().Attribution().CombinedTable().String()
			traceTbl := agg.CombinedTable().String()
			if liveTbl != traceTbl {
				t.Fatalf("attribution differs:\nlive:\n%s\ntrace:\n%s", liveTbl, traceTbl)
			}
		})
	}
}

// TestSpanAttributionTables checks grouping semantics: every grouping's
// rows sum to the total, class/hop keys are sensible, and unknown
// groupings error.
func TestSpanAttributionTables(t *testing.T) {
	c := runSpans(t, nil, nil)
	agg := c.Spans().Attribution()
	tot := agg.Total()
	for _, g := range Groupings() {
		tbl, err := agg.Table(g)
		if err != nil {
			t.Fatalf("Table(%s): %v", g, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("grouping %s has no rows", g)
		}
		var n, network int64
		for _, row := range tbl.Rows {
			rn, err := strconv.ParseInt(row[1], 10, 64)
			if err != nil {
				t.Fatalf("grouping %s: bad n %q", g, row[1])
			}
			rnet, err := strconv.ParseInt(row[len(row)-2], 10, 64)
			if err != nil {
				t.Fatalf("grouping %s: bad network %q", g, row[len(row)-2])
			}
			n += rn
			network += rnet
		}
		if network != tot.NetworkCycles() {
			t.Errorf("grouping %s network cycles %d != total %d", g, network, tot.NetworkCycles())
		}
		if g != GroupRouter && n != tot.N {
			t.Errorf("grouping %s n %d != total flits %d", g, n, tot.N)
		}
		if g == GroupRouter && n < tot.N {
			t.Errorf("router grouping visits %d < flits %d", n, tot.N)
		}
	}
	if _, err := agg.Table("nope"); err == nil {
		t.Error("unknown grouping did not error")
	}
	comb := agg.CombinedTable()
	if comb.Rows[0][0] != "total" {
		t.Errorf("combined table does not lead with total row: %v", comb.Rows[0])
	}
	if !strings.Contains(comb.CSV(), "group,key,n,queue,route,va_stall,sa_stall,st_lt,network,per_n") {
		t.Errorf("combined CSV header wrong:\n%s", comb.CSV())
	}
}

// TestSpanBuilderRejectsFilteredTrace: a node-filtered trace truncates
// per-flit histories and must fail loudly.
func TestSpanBuilderRejectsFilteredTrace(t *testing.T) {
	var buf bytes.Buffer
	nc := testConfig()
	net := noc.NewNetwork(nc)
	c := New(net, Config{TraceNodes: []int{0, 1}})
	c.SetTraceWriter(&buf)
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if _, _, err := BuildSpans(events); err == nil {
		t.Error("BuildSpans accepted a filtered trace")
	}
}

// TestPerfettoExport: schema shape, lane non-overlap per (pid, tid),
// and byte determinism across two identical runs.
func TestPerfettoExport(t *testing.T) {
	c1 := runSpans(t, nil, nil)
	c2 := runSpans(t, nil, nil)
	var b1, b2 bytes.Buffer
	if err := WritePerfetto(&b1, c1.Spans().Spans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if err := WritePerfetto(&b2, c2.Spans().Spans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical runs produced different Perfetto JSON")
	}

	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	type track struct{ pid, tid int }
	type iv struct{ start, end int64 }
	lanes := map[track][]iv{}
	sawMeta, sawSlice := false, false
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			sawMeta = true
		case "X":
			sawSlice = true
			if e.Dur <= 0 {
				t.Fatalf("zero/negative duration slice %q", e.Name)
			}
			lanes[track{e.PID, e.TID}] = append(lanes[track{e.PID, e.TID}], iv{e.TS, e.TS + e.Dur})
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	if !sawMeta || !sawSlice {
		t.Fatalf("missing metadata (%v) or slices (%v)", sawMeta, sawSlice)
	}
	// Stage sub-slices of one visit share a lane and tile [start, end);
	// distinct visits on a lane must not overlap. Since stage slices of
	// a visit are emitted adjacent and non-overlapping, it suffices that
	// no two slices on a lane overlap.
	for tr, ivs := range lanes {
		byStart := append([]iv(nil), ivs...)
		sort.Slice(byStart, func(a, b int) bool {
			if byStart[a].start != byStart[b].start {
				return byStart[a].start < byStart[b].start
			}
			return byStart[a].end < byStart[b].end
		})
		for i := 1; i < len(byStart); i++ {
			if byStart[i].start < byStart[i-1].end {
				t.Fatalf("track %+v has overlapping slices [%d,%d) and [%d,%d)",
					tr, byStart[i-1].start, byStart[i-1].end, byStart[i].start, byStart[i].end)
			}
		}
	}
}

// TestCongestionHeatmap: cell totals equal the attribution's total
// stall cycles (route + VA + SA waits), and the matrix extraction is
// shape-consistent.
func TestCongestionHeatmap(t *testing.T) {
	c := runSpans(t, nil, nil)
	spans := c.Spans().Spans()
	tbl := CongestionHeatmap(spans, 200)
	if len(tbl.Rows) == 0 || len(tbl.Header) < 2 {
		t.Fatalf("empty heatmap: header %v", tbl.Header)
	}
	m, rowLabels, colLabels := HeatmapMatrix(tbl)
	if len(m) != len(tbl.Rows) || len(rowLabels) != len(m) || len(colLabels) != len(tbl.Header)-1 {
		t.Fatalf("matrix shape mismatch: %d rows, %d labels, %d cols", len(m), len(rowLabels), len(colLabels))
	}
	var cellSum int64
	for _, row := range m {
		for _, v := range row {
			cellSum += int64(v)
		}
	}
	tot := c.Spans().Attribution().Total()
	wantStall := tot.Cycles[StageRoute] + tot.Cycles[StageVA] + tot.Cycles[StageSA]
	if cellSum != wantStall {
		t.Fatalf("heatmap cells sum to %d, attribution stalls %d", cellSum, wantStall)
	}
}

// TestSpanArtifactsIdenticalAcrossStepModes pins byte-identity of every
// span-derived artifact — the combined attribution CSV, the Perfetto
// trace-event JSON and the congestion heatmap CSV — across the three
// cycle-loop strategies. Route events may interleave differently within
// a cycle between modes, so this passing means span folding depends
// only on event (flit, kind, cycle) content, never on stream order.
func TestSpanArtifactsIdenticalAcrossStepModes(t *testing.T) {
	type artifacts struct {
		attrib, perfetto, heatmap string
	}
	build := func(mode noc.StepMode) artifacts {
		c := runSpans(t, func(nc *noc.Config) { nc.Mode = mode }, nil)
		sb := c.Spans()
		var buf bytes.Buffer
		if err := WritePerfetto(&buf, sb.Spans()); err != nil {
			t.Fatalf("WritePerfetto: %v", err)
		}
		return artifacts{
			attrib:   sb.Attribution().CombinedTable().CSV(),
			perfetto: buf.String(),
			heatmap:  CongestionHeatmap(sb.Spans(), 200).CSV(),
		}
	}
	ref := build(noc.StepFullScan)
	if len(ref.perfetto) == 0 || len(ref.attrib) == 0 {
		t.Fatal("reference artifacts empty; comparison is vacuous")
	}
	for _, mode := range []noc.StepMode{noc.StepActivity, noc.StepChecked} {
		got := build(mode)
		if got.attrib != ref.attrib {
			t.Errorf("%v attribution CSV diverges from fullscan", mode)
		}
		if got.perfetto != ref.perfetto {
			t.Errorf("%v perfetto JSON diverges from fullscan", mode)
		}
		if got.heatmap != ref.heatmap {
			t.Errorf("%v heatmap CSV diverges from fullscan", mode)
		}
	}
}
