package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/noc"
	"mira/internal/traffic"
)

// engineArtifacts are the byte-compared outputs of one observed run.
type engineArtifacts struct {
	trace, series, attrib, perfetto, result string
}

// runEngineArtifacts runs a short observed simulation and renders every
// deterministic artifact: the flit trace, the sampled series CSV, the
// attribution CSV, the Perfetto span export and the result JSON.
func runEngineArtifacts(t *testing.T, shards int, mode noc.StepMode, engine bool, measure int64) engineArtifacts {
	t.Helper()
	nc := testConfig()
	nc.Shards = shards
	nc.Mode = mode
	net := noc.NewNetwork(nc)
	cfg := Config{Window: 100, Spans: true}
	if engine {
		cfg.Engine = true
		cfg.EngineInterval = 2 * time.Millisecond // force many ticks even on short runs
	}
	c := New(net, cfg)
	var buf bytes.Buffer
	c.SetTraceWriter(&buf)
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: measure, DrainMax: 3000}
	c.Attach(sim)
	res := sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatalf("collector close: %v", err)
	}
	if res.Ejected == 0 {
		t.Fatal("no traffic simulated; comparison is vacuous")
	}
	if engine {
		ec := c.Engine()
		if ec == nil {
			t.Fatal("Config.Engine set but no engine collector attached")
		}
		if snap := ec.Snapshot(); snap.Cycles == 0 {
			t.Fatal("engine meter observed no cycles")
		}
	} else if c.Engine() != nil {
		t.Fatal("engine collector attached without Config.Engine")
	}
	var pf bytes.Buffer
	if err := WritePerfetto(&pf, c.Spans().Spans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return engineArtifacts{
		trace:    buf.String(),
		series:   c.SeriesTable().CSV(),
		attrib:   c.Spans().Attribution().CombinedTable().CSV(),
		perfetto: pf.String(),
		result:   string(resJSON),
	}
}

// TestEngineTelemetryPurity is the out-of-band determinism suite:
// every simulated artifact — ejection-derived results, series tables,
// flit traces, span attribution and the Perfetto export — must be
// byte-identical with engine telemetry attached vs detached, across
// shard counts {1, 4, -1 (auto)} and step modes. The engine ticker
// races the simulation on purpose (2ms interval); under -race this also
// proves the sampling path is data-race free.
func TestEngineTelemetryPurity(t *testing.T) {
	modes := []noc.StepMode{noc.StepActivity, noc.StepFullScan, noc.StepChecked}
	for _, mode := range modes {
		measure := int64(600)
		if mode == noc.StepChecked {
			measure = 300 // invariant suite per cycle is expensive
		}
		for _, shards := range []int{1, 4, noc.AutoShards} {
			t.Run(fmt.Sprintf("mode%v/shards%d", mode, shards), func(t *testing.T) {
				off := runEngineArtifacts(t, shards, mode, false, measure)
				on := runEngineArtifacts(t, shards, mode, true, measure)
				if on.trace != off.trace {
					t.Error("flit trace diverges with engine telemetry attached")
				}
				if on.series != off.series {
					t.Error("series CSV diverges with engine telemetry attached")
				}
				if on.attrib != off.attrib {
					t.Error("attribution CSV diverges with engine telemetry attached")
				}
				if on.perfetto != off.perfetto {
					t.Error("perfetto JSON diverges with engine telemetry attached")
				}
				if on.result != off.result {
					t.Errorf("result JSON diverges with engine telemetry attached:\non  %s\noff %s", on.result, off.result)
				}
			})
		}
	}
}

// TestEngineProgressHook checks the global progress hook: installed, it
// receives at least the final (Close-time) sample with real cycle
// progress and the run's shard count; cleared, it stops firing.
func TestEngineProgressHook(t *testing.T) {
	var mu sync.Mutex
	var got []EngineProgress
	SetEngineProgressHook(func(p EngineProgress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	defer SetEngineProgressHook(nil)

	nc := testConfig()
	nc.Shards = 4
	net := noc.NewNetwork(nc)
	c := New(net, Config{Engine: true, EngineInterval: 5 * time.Millisecond, EngineLabel: "hooked"})
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.1, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 600, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("progress hook never fired")
	}
	last := got[len(got)-1]
	if last.Cycle == 0 || last.Shards != 4 || last.Label != "hooked" {
		t.Fatalf("bad final progress: %+v", last)
	}
	if s := last.String(); !strings.Contains(s, "cyc/s") {
		t.Fatalf("progress line %q missing rate", s)
	}
	if last.Target != 600 {
		t.Fatalf("target %d, want warmup+measure=600", last.Target)
	}
}

// TestEngineTableAndSeries checks the end-of-run surfaces: the
// stats.Table summary has one row per shard plus the pool/mailbox/
// runtime notes, and the JSON series round-trips through
// ReadEngineSeries with Perfetto counter events derivable from it.
func TestEngineTableAndSeries(t *testing.T) {
	nc := testConfig()
	nc.Shards = 4
	net := noc.NewNetwork(nc)
	c := New(net, Config{Engine: true, EngineInterval: 2 * time.Millisecond, EngineLabel: "tbl"})
	sim := noc.NewSim(net, &traffic.Uniform{Topo: nc.Topo, InjectionRate: 0.15, PacketSize: 4})
	sim.Params = noc.SimParams{Warmup: 0, Measure: 1500, DrainMax: 3000}
	c.Attach(sim)
	sim.Run(context.Background())
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ec := c.Engine()

	tbl := ec.Table()
	if tbl.Title != "engine telemetry" {
		t.Fatalf("table title %q", tbl.Title)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4 shards", len(tbl.Rows))
	}
	notes := strings.Join(tbl.Notes, "\n")
	for _, want := range []string{"pool: 4 workers", "mailbox:", "runtime:", "simulated results are unaffected"} {
		if !strings.Contains(notes, want) {
			t.Errorf("table notes missing %q:\n%s", want, notes)
		}
	}

	var buf bytes.Buffer
	if err := ec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	es, err := ReadEngineSeries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if es.Shards != 4 || es.Label != "tbl" || len(es.Windows) == 0 {
		t.Fatalf("series round-trip lost data: shards=%d label=%q windows=%d", es.Shards, es.Label, len(es.Windows))
	}
	if es.Snapshot.Cycles == 0 {
		t.Fatal("series snapshot has no cycles")
	}
	evs := EngineTrackEvents(es)
	if len(evs) == 0 {
		t.Fatal("no engine track events")
	}
	counters := 0
	for _, ev := range evs {
		switch ev.Phase {
		case "M":
		case "C":
			counters++
			if ev.PID != enginePID {
				t.Fatalf("counter event on pid %d, want engine pid", ev.PID)
			}
		default:
			t.Fatalf("unexpected phase %q in engine track", ev.Phase)
		}
	}
	if counters == 0 {
		t.Fatal("engine track has no counter events")
	}

	// The liveness timestamp advanced past collector start.
	if ec.LastProgress().IsZero() {
		t.Fatal("LastProgress unset")
	}
}

// TestCompactWindows checks the series-bounding merge: deltas sum,
// point-in-time fields keep the later window, odd tails survive.
func TestCompactWindows(t *testing.T) {
	in := make([]EngineWindow, 5)
	for i := range in {
		in[i] = EngineWindow{
			Cycle:       int64(i+1) * 100,
			Cycles:      10,
			Rate:        float64(i),
			ShardBusyNs: []int64{int64(i), int64(i) * 2},
		}
	}
	out := compactWindows(in)
	if len(out) != 3 {
		t.Fatalf("compacted to %d windows, want 3", len(out))
	}
	var cycles int64
	for _, w := range out {
		cycles += w.Cycles
	}
	if cycles != 50 {
		t.Fatalf("compaction lost cycles: %d != 50", cycles)
	}
	if out[0].Cycle != 200 || out[0].ShardBusyNs[0] != 1 {
		t.Fatalf("first merged window wrong: %+v", out[0])
	}
	if out[2].Cycle != 500 {
		t.Fatalf("odd tail lost: %+v", out[2])
	}
}
