package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"mira/internal/noc"
)

func TestActiveLayers(t *testing.T) {
	ones := ^uint32(0)
	cases := []struct {
		words []uint32
		want  uint8
	}{
		{[]uint32{0xdead, 0, 0, 0}, 1},          // short: zeros above
		{[]uint32{0xdead, ones, ones, ones}, 1}, // short: sign extension
		{[]uint32{0, 0, 0, 0}, 1},               // all-zero flit
		{[]uint32{1, 2, 0, 0}, 2},
		{[]uint32{1, 0, 3, 0}, 3},
		{[]uint32{1, 0, 0, 4}, 4},
		{[]uint32{1, ones, ones, 4}, 4},
		{[]uint32{7}, 1},
		{nil, 1},
	}
	for _, c := range cases {
		if got := ActiveLayers(c.words); got != c.want {
			t.Errorf("ActiveLayers(%x) = %d, want %d", c.words, got, c.want)
		}
	}
}

func TestIsShort(t *testing.T) {
	if !IsShort([]uint32{42, 0, 0, 0}) {
		t.Errorf("zero-extended word should be short")
	}
	if IsShort([]uint32{42, 0, 1, 0}) {
		t.Errorf("informative middle word is not short")
	}
}

// Property: ActiveLayers is the minimal prefix that preserves all
// information (every dropped word is redundant, and the last kept word
// of a >1-layer flit is informative).
func TestActiveLayersMinimal(t *testing.T) {
	f := func(raw [4]uint32) bool {
		words := raw[:]
		n := int(ActiveLayers(words))
		for i := n; i < len(words); i++ {
			if !wordRedundant(words[i]) {
				return false
			}
		}
		if n > 1 && wordRedundant(words[n-1]) {
			return false
		}
		return n >= 1 && n <= len(words)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPacketLayers(t *testing.T) {
	flits := [][]uint32{
		{1, 0, 0, 0},
		{1, 2, 3, 4},
	}
	got := PacketLayers(flits)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("PacketLayers = %v, want [1 4]", got)
	}
}

func TestAllDesignsElaborate(t *testing.T) {
	for _, a := range Archs {
		d, err := NewDesign(a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if d.Topo.NumNodes() != 36 {
			t.Errorf("%v: nodes = %d, want 36", a, d.Topo.NumNodes())
		}
		if got := len(d.Topo.CPUs()); got != 8 {
			t.Errorf("%v: CPUs = %d, want 8", a, got)
		}
		cfg := d.NoCConfig(noc.AnyFree, 1)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: invalid noc config: %v", a, err)
		}
	}
}

func TestDesignPorts(t *testing.T) {
	wants := map[Arch]int{
		Arch2DB: 5, Arch3DB: 7, Arch3DM: 5, Arch3DMNC: 5, Arch3DME: 9, Arch3DMENC: 9,
	}
	for a, want := range wants {
		d := MustDesign(a)
		if got := d.Topo.MaxPorts(); got != want {
			t.Errorf("%v: max ports = %d, want %d", a, got, want)
		}
		if d.AreaParams.Ports != want {
			t.Errorf("%v: area ports = %d, want %d", a, d.AreaParams.Ports, want)
		}
	}
}

func TestPipelineSelection(t *testing.T) {
	// Table 3: only the multi-layer designs combine ST and LT; the NC
	// variants are forced back to the separate link stage.
	wants := map[Arch]int{
		Arch2DB: 2, Arch3DB: 2, Arch3DM: 1, Arch3DMNC: 2, Arch3DME: 1, Arch3DMENC: 2,
	}
	for a, want := range wants {
		if got := MustDesign(a).STLTCycles; got != want {
			t.Errorf("%v: STLT cycles = %d, want %d", a, got, want)
		}
	}
}

func TestLinkLengths(t *testing.T) {
	if MustDesign(Arch2DB).LinkLenMM != 3.1 {
		t.Errorf("2DB link length wrong")
	}
	if MustDesign(Arch3DM).LinkLenMM != 1.58 {
		t.Errorf("3DM link length wrong")
	}
}

func TestMultilayerFlags(t *testing.T) {
	if MustDesign(Arch2DB).Multilayer() || MustDesign(Arch3DB).Multilayer() {
		t.Errorf("planar designs must not be multilayer")
	}
	if !MustDesign(Arch3DM).Multilayer() || !MustDesign(Arch3DME).Multilayer() {
		t.Errorf("3DM family must be multilayer")
	}
}

func TestLayerPlan(t *testing.T) {
	p := MustDesign(Arch3DM).LayerPlan()
	if len(p) != 4 {
		t.Fatalf("layer plan has %d layers, want 4", len(p))
	}
	// VA2 must not be in the heat-sink layer (§3.2.7).
	for _, m := range p[0] {
		if m == "VA2[1/3]" {
			t.Errorf("VA2 in heat-sink layer")
		}
	}
	if len(p[1]) == 0 {
		t.Errorf("lower layers empty")
	}
	flat := MustDesign(Arch2DB).LayerPlan()
	if len(flat) != 1 {
		t.Errorf("planar design layer plan = %d layers", len(flat))
	}
}

func TestArchString(t *testing.T) {
	if Arch3DME.String() != "3DM-E" || Arch2DB.String() != "2DB" {
		t.Errorf("arch names wrong")
	}
	if Arch(99).String() == "" {
		t.Errorf("unknown arch should still stringify")
	}
}

// End-to-end smoke test: every design runs a short uniform-random
// simulation without deadlock and delivers everything.
func TestDesignsSimulate(t *testing.T) {
	for _, a := range Archs {
		d := MustDesign(a)
		net := noc.NewNetwork(d.NoCConfig(noc.AnyFree, 7))
		gen := noc.GeneratorFunc(func(cycle int64, rng *rand.Rand, out []noc.Spec) []noc.Spec {
			n := d.Topo.NumNodes()
			for src := 0; src < n; src++ {
				if rng.Float64() < 0.02 {
					dst := rng.Intn(n - 1)
					if dst >= src {
						dst++
					}
					out = append(out, noc.Spec{
						Src: d.Topo.Nodes()[src].ID, Dst: d.Topo.Nodes()[dst].ID,
						Size: DataPacketFlits, Class: noc.Data,
					})
				}
			}
			return out
		})
		s := noc.NewSim(net, gen)
		s.Params = noc.SimParams{Warmup: 200, Measure: 1500, DrainMax: 5000}
		res := s.Run(context.Background())
		if res.Generated == 0 || res.Ejected != res.Generated {
			t.Errorf("%v: delivery failed: %v", a, res.String())
		}
	}
}
