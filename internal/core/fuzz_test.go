package core

import "testing"

// FuzzActiveLayers checks the zero-detector invariants over arbitrary
// payloads: the result is always in [1, len], dropping the unused upper
// words loses no information (they are all redundant), and the boundary
// word of a multi-layer flit is informative.
func FuzzActiveLayers(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0))
	f.Add(uint32(0xdead), uint32(0), uint32(0), uint32(0))
	f.Add(^uint32(0), ^uint32(0), ^uint32(0), ^uint32(0))
	f.Add(uint32(1), uint32(2), uint32(3), uint32(4))
	f.Fuzz(func(t *testing.T, w0, w1, w2, w3 uint32) {
		words := []uint32{w0, w1, w2, w3}
		n := int(ActiveLayers(words))
		if n < 1 || n > 4 {
			t.Fatalf("ActiveLayers(%x) = %d out of [1,4]", words, n)
		}
		for i := n; i < 4; i++ {
			if !wordRedundant(words[i]) {
				t.Fatalf("dropped informative word %d in %x", i, words)
			}
		}
		if n > 1 && wordRedundant(words[n-1]) {
			t.Fatalf("kept redundant boundary word %d in %x", n-1, words)
		}
		if (n == 1) != IsShort(words) {
			t.Fatalf("IsShort inconsistent with ActiveLayers for %x", words)
		}
	})
}
