package core_test

import (
	"fmt"

	"mira/internal/core"
)

func ExampleActiveLayers() {
	// A pointer-sized value zero-extended across a 128-bit flit: only
	// the top layer's word is informative, the rest can be gated off.
	short := []uint32{0x0040a2c8, 0, 0, 0}
	full := []uint32{0x0040a2c8, 0x9e3779b9, 0x7f4a7c15, 0x94d049bb}
	fmt.Println(core.ActiveLayers(short), core.IsShort(short))
	fmt.Println(core.ActiveLayers(full), core.IsShort(full))
	// Output:
	// 1 true
	// 4 false
}

func ExampleMustDesign() {
	d := core.MustDesign(core.Arch3DME)
	fmt.Printf("%s: %d ports, %d layers, %d-cycle ST+LT, %.2f mm links\n",
		d.Arch, d.AreaParams.Ports, d.AreaParams.Layers, d.STLTCycles, d.LinkLenMM)
	// Output: 3DM-E: 9 ports, 4 layers, 1-cycle ST+LT, 1.58 mm links
}
