// Package core assembles the six router architectures evaluated in the
// MIRA paper — 2DB, 3DB, 3DM, 3DM(NC), 3DM-E and 3DM-E(NC) — from the
// substrate packages: topology + routing + pipeline depth (timing) +
// area + energy. A Design is everything an experiment needs to simulate
// one architecture.
package core

import (
	"fmt"

	"mira/internal/area"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/routing"
	"mira/internal/timing"
	"mira/internal/topology"
)

// Arch enumerates the evaluated router architectures.
type Arch int

// Architectures (§4: "the six architectures").
const (
	// Arch2DB is the planar 6x6 mesh baseline.
	Arch2DB Arch = iota
	// Arch3DB stacks full 2D routers into a 3x3x4 mesh with up/down
	// ports (the naive 3D baseline, §3.1).
	Arch3DB
	// Arch3DM splits each router's datapath across 4 layers (§3.2),
	// with the ST and LT pipeline stages combined (Figure 8 (d)).
	Arch3DM
	// Arch3DMNC is 3DM without the ST+LT combination ("NC" = not
	// combined), isolating the pipeline benefit.
	Arch3DMNC
	// Arch3DME adds 2-hop express channels using the spare wire
	// bandwidth of the multi-layer design (§3.3).
	Arch3DME
	// Arch3DMENC is 3DM-E without ST+LT combination.
	Arch3DMENC
	NumArchs
)

// Archs lists all architectures in presentation order.
var Archs = []Arch{Arch2DB, Arch3DB, Arch3DM, Arch3DMNC, Arch3DME, Arch3DMENC}

func (a Arch) String() string {
	switch a {
	case Arch2DB:
		return "2DB"
	case Arch3DB:
		return "3DB"
	case Arch3DM:
		return "3DM"
	case Arch3DMNC:
		return "3DM(NC)"
	case Arch3DME:
		return "3DM-E"
	case Arch3DMENC:
		return "3DM-E(NC)"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// Physical design constants shared by all configurations (§4.1, Tables
// 1, 2, 4).
const (
	// FlitWidth is the flit/link width in bits (a 64 B cache line is 4
	// flits).
	FlitWidth = 128
	// VCsPerPort and BufDepth define the input buffers: 2 VCs of 8
	// flits each.
	VCsPerPort = 2
	BufDepth   = 8
	// Layers is the 3D stack height.
	Layers = 4
	// Pitch2DMM is the inter-router link length of the planar designs;
	// Pitch3DMMM is the multi-layer design's pitch: folding each node
	// into 4 layers halves the footprint edge (Table 2: 1.58 mm).
	Pitch2DMM  = 3.1
	Pitch3DMMM = 1.58
	// TSVLenMM is the vertical hop length of the 3DB stack (4 layers
	// of bonded silicon, ~20 um).
	TSVLenMM = 0.02
	// ExpressInterval is the hop span of the 3DM-E express channels.
	ExpressInterval = 2
	// DataPacketFlits / ControlPacketFlits are the NUCA packet sizes: a
	// 64 B cache line and a single address/coherence flit.
	DataPacketFlits    = 4
	ControlPacketFlits = 1
)

// Design is a fully-elaborated architecture instance.
type Design struct {
	Arch Arch
	// Topo carries the NUCA CPU/cache layout of Figure 10.
	Topo *topology.Topology
	Alg  routing.Algorithm
	// AreaParams feeds the area and power models; its Layers field is
	// 1 for the planar datapaths (2DB, 3DB) and 4 for the multi-layer
	// family.
	AreaParams area.Params
	Area       area.Breakdown
	Energy     power.Energy
	// LinkLenMM is the nominal planar hop length (Figure 9's link
	// component uses it).
	LinkLenMM float64
	// STLTCycles is 1 when ST+LT combine (validated by the timing
	// model), 2 otherwise.
	STLTCycles int
}

// NewDesign elaborates an architecture. The returned design's topology
// has the NUCA node types applied.
func NewDesign(a Arch) (*Design, error) {
	d := &Design{Arch: a}
	switch a {
	case Arch2DB:
		d.Topo = topology.NewMesh2D(6, 6, Pitch2DMM)
		d.Alg = routing.XY{}
		d.LinkLenMM = Pitch2DMM
		d.AreaParams = area.Params{Ports: 5, VCs: VCsPerPort, FlitWidth: FlitWidth, BufDepth: BufDepth, Layers: 1}
		if err := topology.ApplyNUCALayout2D(d.Topo); err != nil {
			return nil, err
		}
	case Arch3DB:
		d.Topo = topology.NewMesh3D(3, 3, 4, Pitch2DMM, TSVLenMM)
		d.Alg = routing.XY{}
		d.LinkLenMM = Pitch2DMM
		d.AreaParams = area.Params{Ports: 7, VCs: VCsPerPort, FlitWidth: FlitWidth, BufDepth: BufDepth, Layers: 1}
		if err := topology.ApplyNUCALayout3D(d.Topo); err != nil {
			return nil, err
		}
	case Arch3DM, Arch3DMNC:
		d.Topo = topology.NewMesh2D(6, 6, Pitch3DMMM)
		d.Alg = routing.XY{}
		d.LinkLenMM = Pitch3DMMM
		d.AreaParams = area.Params{Ports: 5, VCs: VCsPerPort, FlitWidth: FlitWidth, BufDepth: BufDepth, Layers: Layers}
		if err := topology.ApplyNUCALayout2D(d.Topo); err != nil {
			return nil, err
		}
	case Arch3DME, Arch3DMENC:
		d.Topo = topology.NewExpressMesh2D(6, 6, Pitch3DMMM, ExpressInterval)
		d.Alg = routing.Express{}
		d.LinkLenMM = Pitch3DMMM
		d.AreaParams = area.Params{Ports: 9, VCs: VCsPerPort, FlitWidth: FlitWidth, BufDepth: BufDepth, Layers: Layers}
		if err := topology.ApplyNUCALayout2D(d.Topo); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown architecture %d", int(a))
	}

	d.Area = area.Model(d.AreaParams)
	d.Energy = power.Model(d.AreaParams)

	// Pipeline: the NC variants force the separate link stage; the
	// others take whatever the delay model validates (Table 3). The
	// express design must also fit its 2-hop links in the combined
	// stage, so evaluate at the longest link the router drives.
	maxLink := d.LinkLenMM
	if a == Arch3DME || a == Arch3DMENC {
		maxLink = d.LinkLenMM * ExpressInterval
	}
	d.STLTCycles = timing.STLTCycles(area.XbarSideUM(d.AreaParams), maxLink)
	if a == Arch3DMNC || a == Arch3DMENC {
		d.STLTCycles = 2
	}
	return d, nil
}

// MustDesign is NewDesign for statically valid architectures.
func MustDesign(a Arch) *Design {
	d, err := NewDesign(a)
	if err != nil {
		panic(err)
	}
	return d
}

// NoCConfig builds the simulator configuration. The policy separates
// request/response VCs for NUCA and trace traffic; synthetic uniform
// traffic uses AnyFree.
func (d *Design) NoCConfig(policy noc.VCPolicy, seed int64) noc.Config {
	return noc.Config{
		Topo:       d.Topo,
		Alg:        d.Alg,
		VCs:        VCsPerPort,
		BufDepth:   BufDepth,
		STLTCycles: d.STLTCycles,
		Layers:     Layers,
		Policy:     policy,
		Seed:       seed,
	}
}

// Multilayer reports whether the datapath is split across layers (the
// short-flit shutdown then also reduces power density, not just energy).
func (d *Design) Multilayer() bool { return d.AreaParams.Layers > 1 }

// LayerPlan describes which router modules occupy which layer, following
// §3.2.7: the heat-sink layer (index 0) holds all control logic except
// VA2, which spreads over the lower layers; datapath slices go
// everywhere.
func (d *Design) LayerPlan() [][]string {
	if !d.Multilayer() {
		return [][]string{{"RC", "SA1", "SA2", "VA1", "VA2", "crossbar", "buffer", "links"}}
	}
	plan := make([][]string, Layers)
	plan[0] = []string{"RC", "SA1", "SA2", "VA1", "crossbar[0]", "buffer[0]", "links[0]"}
	for l := 1; l < Layers; l++ {
		plan[l] = []string{
			fmt.Sprintf("VA2[%d/3]", l),
			fmt.Sprintf("crossbar[%d]", l),
			fmt.Sprintf("buffer[%d]", l),
			fmt.Sprintf("links[%d]", l),
		}
	}
	return plan
}
