package core

// Short-flit detection (§3.2.1). In the multi-layered router the flit is
// striped across L layers, the least-significant word in the top layer
// (closest to the heat sink) and the most-significant in the bottom. A
// per-layer zero/one detector decides whether the layer's word carries
// information: all-0 and all-1 words are redundant (they are the sign /
// zero extensions that frequent-pattern analysis shows dominate NUCA
// data, Figure 1), so every layer above the highest informative word can
// be clock-gated for this flit.

// WordBits is the per-layer datapath width: a 128-bit flit over 4 layers
// carries 32-bit words.
const WordBits = 32

// wordRedundant reports whether a 32-bit word is all zeros or all ones,
// i.e. the layer holding it can be shut down if no higher layer is
// needed.
func wordRedundant(w uint32) bool { return w == 0 || w == ^uint32(0) }

// ActiveLayers returns how many layers a flit with the given payload
// words needs, scanning from the most-significant word down to the first
// informative one. words[0] is the LSB word (top layer). The top layer
// is always active (it carries the flow-control state), so the result is
// in [1, len(words)]. Empty input returns 1.
func ActiveLayers(words []uint32) uint8 {
	for i := len(words) - 1; i >= 1; i-- {
		if !wordRedundant(words[i]) {
			return uint8(i + 1)
		}
	}
	return 1
}

// IsShort reports whether the flit needs only the top layer.
func IsShort(words []uint32) bool { return ActiveLayers(words) == 1 }

// PacketLayers maps a packet payload (flit-major word slices) to the
// per-flit active layer counts consumed by noc.Spec.LayersPerFlit.
func PacketLayers(flits [][]uint32) []uint8 {
	out := make([]uint8, len(flits))
	for i, f := range flits {
		out[i] = ActiveLayers(f)
	}
	return out
}
