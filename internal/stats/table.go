package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a minimal tabular export container: a header row and string
// cells, renderable as aligned text, RFC 4180 CSV, or JSON. The
// observability layer (internal/obs) exports its time series and
// summaries through it; the experiment drivers keep their own richer
// exp.Table (IDs, notes, SVG rendering) for the paper artifacts.
type Table struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Notes are free-form caption lines rendered after the text form and
	// carried in JSON; the CSV form omits them so machine consumers see
	// data rows only.
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned plain text.
func (t Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", w, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as RFC 4180 CSV (header first; the title is
// omitted). Cells containing commas, quotes or newlines are quoted.
func (t Table) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write(t.Header); err != nil {
		panic(err) // strings.Builder never errors
	}
	if err := w.WriteAll(t.Rows); err != nil {
		panic(err)
	}
	w.Flush()
	return sb.String()
}

// JSON renders the table as a JSON object with "header" and "rows"
// arrays (plus "title" when set).
func (t Table) JSON() []byte {
	data, err := json.Marshal(t)
	if err != nil {
		panic(err) // string slices always marshal
	}
	return data
}
