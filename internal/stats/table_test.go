package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() Table {
	t := Table{Title: "demo", Header: []string{"cycle", "occ", "note"}}
	t.AddRow("1000", "3.5", "warm-up")
	t.AddRow("2000", "12.25", "a,b")
	return t
}

func TestTableString(t *testing.T) {
	s := sampleTable().String()
	for _, want := range []string{"== demo ==", "cycle", "12.25", "warm-up"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("String() has %d lines, want 4:\n%s", len(lines), s)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	c := sampleTable().CSV()
	if !strings.Contains(c, "\"a,b\"") {
		t.Errorf("CSV should quote cells with commas:\n%s", c)
	}
	if !strings.HasPrefix(c, "cycle,occ,note\n") {
		t.Errorf("CSV should start with the header:\n%s", c)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	var back Table
	if err := json.Unmarshal(sampleTable().JSON(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Title != "demo" || len(back.Rows) != 2 || back.Rows[1][2] != "a,b" {
		t.Errorf("round-tripped table differs: %+v", back)
	}
}

func TestTableRaggedRow(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "2", "3") // wider than the header must not panic
	if s := tb.String(); !strings.Contains(s, "3") {
		t.Errorf("ragged cell dropped:\n%s", s)
	}
}
