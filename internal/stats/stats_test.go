package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	var m Mean
	for _, v := range []float64{1, 2, 3, 4, 5} {
		m.Add(v)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d, want 5", m.N())
	}
	if !almostEq(m.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", m.Mean())
	}
	if !almostEq(m.Variance(), 2.5, 1e-12) {
		t.Errorf("Variance = %v, want 2.5", m.Variance())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", m.Min(), m.Max())
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Variance() != 0 || m.StdErr() != 0 {
		t.Errorf("zero-value Mean should report zeros, got %v", m.String())
	}
}

func TestMeanSingle(t *testing.T) {
	var m Mean
	m.Add(7)
	if m.Variance() != 0 {
		t.Errorf("variance of one sample = %v, want 0", m.Variance())
	}
	if m.Mean() != 7 || m.Min() != 7 || m.Max() != 7 {
		t.Errorf("single sample stats wrong: %v", m.String())
	}
}

func TestMeanAddN(t *testing.T) {
	var a, b Mean
	a.AddN(4, 3)
	for i := 0; i < 3; i++ {
		b.Add(4)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Errorf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

// TestMeanAddNEquivalence asserts the O(1) batched AddN matches n
// repeated Add calls — exactly from an empty accumulator, and to
// floating-point tolerance when batching on top of prior observations
// (the two orderings round differently but describe the same sample).
func TestMeanAddNEquivalence(t *testing.T) {
	// From empty: bit-identical (Merge into empty copies the batch).
	var batched, iterated Mean
	batched.AddN(2.5, 1000)
	for i := 0; i < 1000; i++ {
		iterated.Add(2.5)
	}
	if batched != iterated {
		t.Errorf("AddN from empty not bit-identical: %v vs %v", batched.String(), iterated.String())
	}

	// Mid-stream, with surrounding observations and several batches.
	rng := rand.New(rand.NewSource(7))
	var a, b Mean
	for step := 0; step < 50; step++ {
		x := rng.NormFloat64()*5 + 1
		n := int64(rng.Intn(200) + 1)
		a.AddN(x, n)
		for i := int64(0); i < n; i++ {
			b.Add(x)
		}
		y := rng.NormFloat64()
		a.Add(y)
		b.Add(y)
	}
	if a.N() != b.N() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("AddN count/extrema mismatch: %v vs %v", a.String(), b.String())
	}
	if !almostEq(a.Mean(), b.Mean(), 1e-9*(1+math.Abs(b.Mean()))) {
		t.Errorf("AddN mean = %v, want %v", a.Mean(), b.Mean())
	}
	if !almostEq(a.Variance(), b.Variance(), 1e-6*(1+b.Variance())) {
		t.Errorf("AddN variance = %v, want %v", a.Variance(), b.Variance())
	}
}

// TestMeanAddNNonPositive verifies n <= 0 is a no-op.
func TestMeanAddNNonPositive(t *testing.T) {
	var m Mean
	m.Add(1)
	m.AddN(99, 0)
	m.AddN(99, -5)
	if m.N() != 1 || m.Max() != 1 {
		t.Errorf("AddN with n <= 0 changed state: %v", m.String())
	}
}

func TestMeanMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, left, right Mean
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*10 + 3
		all.Add(v)
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	left.Merge(&right)
	if left.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), all.N())
	}
	if !almostEq(left.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", left.Mean(), all.Mean())
	}
	if !almostEq(left.Variance(), all.Variance(), 1e-6) {
		t.Errorf("merged variance = %v, want %v", left.Variance(), all.Variance())
	}
	if left.Min() != all.Min() || left.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestMeanMergeEmpty(t *testing.T) {
	var a, b Mean
	a.Add(2)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 2 {
		t.Errorf("merge with empty changed state: %v", a.String())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 2 {
		t.Errorf("merge into empty failed: %v", b.String())
	}
}

// Property: mean is always within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var m Mean
		any := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			m.Add(x)
			any = true
		}
		if !any {
			return true
		}
		return m.Mean() >= m.Min()-1e-9 && m.Mean() <= m.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging is equivalent to sequential adds.
func TestMeanMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var seq, ma, mb Mean
		for _, x := range a {
			seq.Add(x)
			ma.Add(x)
		}
		for _, x := range b {
			seq.Add(x)
			mb.Add(x)
		}
		ma.Merge(&mb)
		if ma.N() != seq.N() {
			return false
		}
		if seq.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(seq.Mean())
		return almostEq(ma.Mean(), seq.Mean(), 1e-6*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for v := 0; v < 15; v++ {
		h.Add(v)
	}
	if h.N() != 15 {
		t.Fatalf("N = %d, want 15", h.N())
	}
	if h.Count(3) != 1 {
		t.Errorf("Count(3) = %d, want 1", h.Count(3))
	}
	if h.Count(12) != 5 { // 10..14 overflow
		t.Errorf("overflow = %d, want 5", h.Count(12))
	}
	if got := h.Mean(); !almostEq(got, 7, 1e-12) {
		t.Errorf("Mean = %v, want 7", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(4)
	h.Add(-3)
	if h.Count(0) != 1 {
		t.Errorf("negative value should clamp to bin 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v - 1)
	}
	if p := h.Percentile(0.5); p != 49 {
		t.Errorf("P50 = %d, want 49", p)
	}
	if p := h.Percentile(0.99); p != 98 {
		t.Errorf("P99 = %d, want 98", p)
	}
	if p := h.Percentile(1.0); p != 99 {
		t.Errorf("P100 = %d, want 99", p)
	}
}

func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewHistogram(4)
	if h.Percentile(0.5) != 0 {
		t.Errorf("empty percentile should be 0")
	}
	if h.Percentile(0.99) != 0 || h.Percentile(1) != 0 {
		t.Errorf("empty histogram should report 0 for every percentile")
	}
}

// TestHistogramPercentileSingleBucket: with every observation in one
// bin, every percentile must land on that bin.
func TestHistogramPercentileSingleBucket(t *testing.T) {
	h := NewHistogram(1)
	h.Add(0)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if p := h.Percentile(q); p != 0 {
			t.Errorf("Percentile(%v) = %d, want 0", q, p)
		}
	}
}

// TestHistogramPercentileAllEqual: identical samples collapse every
// percentile onto the common value.
func TestHistogramPercentileAllEqual(t *testing.T) {
	h := NewHistogram(64)
	for i := 0; i < 1000; i++ {
		h.Add(17)
	}
	for _, q := range []float64{0.001, 0.5, 0.95, 0.99, 1} {
		if p := h.Percentile(q); p != 17 {
			t.Errorf("Percentile(%v) = %d, want 17", q, p)
		}
	}
	if h.Mean() != 17 {
		t.Errorf("Mean = %v, want 17", h.Mean())
	}
}

// TestHistogramPercentileAllOverflow: observations past the last bin
// report len(bins) (the "last bin + 1" overflow convention).
func TestHistogramPercentileAllOverflow(t *testing.T) {
	h := NewHistogram(4)
	h.Add(100)
	h.Add(200)
	if p := h.Percentile(0.5); p != 4 {
		t.Errorf("overflow P50 = %d, want 4", p)
	}
	if p := h.Percentile(1); p != 4 {
		t.Errorf("overflow P100 = %d, want 4", p)
	}
}

func TestSeriesWindows(t *testing.T) {
	s := Series{Window: 10}
	for c := int64(0); c < 35; c++ {
		s.Observe(c, float64(c/10))
	}
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 completed windows", len(pts))
	}
	for i, p := range pts {
		if !almostEq(p, float64(i), 1e-12) {
			t.Errorf("window %d mean = %v, want %d", i, p, i)
		}
	}
	if !almostEq(s.Last(), 2, 1e-12) {
		t.Errorf("Last = %v, want 2", s.Last())
	}
}

func TestSeriesGap(t *testing.T) {
	s := Series{Window: 10}
	s.Observe(0, 1)
	s.Observe(45, 5) // skips windows 1..3
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	if pts[0] != 1 {
		t.Errorf("first window = %v, want 1", pts[0])
	}
	if pts[1] != 0 || pts[2] != 0 {
		t.Errorf("gap windows should have zero mean: %v", pts)
	}
}

func TestSeriesDefaultWindow(t *testing.T) {
	var s Series
	s.Observe(0, 1)
	s.Observe(1500, 2)
	if len(s.Points()) != 1 {
		t.Errorf("default window should be 1000 cycles: %d points", len(s.Points()))
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v, want 2", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median = %v, want 0", m)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Errorf("Ratio(6,3) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Errorf("Ratio(_,0) should be 0")
	}
}
