// Package stats provides lightweight metric accumulators used throughout
// the simulator: running means (Welford), unit-bin histograms with exact
// percentiles, windowed time series, and a plain-text/CSV/JSON table.
//
// These are the numeric substrate of the paper's evaluation artifacts:
// Histogram supplies the latency distributions behind the Fig. 11 curves
// and the observability layer's p50/p95/p99 digests, Mean backs the
// replicated-seed confidence checks on every simulated table, and Table
// is the export format of the obs time series (internal/obs).
//
// All accumulators have useful zero values and are not safe for concurrent
// use; the simulator is single-threaded per network instance.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean accumulates a running mean and variance using Welford's algorithm,
// which is numerically stable for long simulations.
type Mean struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (m *Mean) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddN records the same observation n times. It applies the batched
// (Chan et al.) form of the Welford update in O(1): n identical
// observations form a degenerate accumulator with mean x and zero
// spread, which Merge folds in exactly. For an empty accumulator the
// result is bit-identical to n repeated Add calls; after prior
// observations it can differ from the iterated form only in the last
// few ULPs (the iterated form accumulates n rounding steps, the batched
// form one).
func (m *Mean) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	m.Merge(&Mean{n: n, mean: x, min: x, max: x})
}

// N returns the number of observations.
func (m *Mean) N() int64 { return m.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (m *Mean) Mean() float64 { return m.mean }

// Min returns the smallest observation, or 0 with no observations.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest observation, or 0 with no observations.
func (m *Mean) Max() float64 { return m.max }

// Variance returns the sample variance, or 0 with fewer than two samples.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// StdErr returns the standard error of the mean.
func (m *Mean) StdErr() float64 {
	if m.n == 0 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.n))
}

// Merge folds other into m, as if every observation of other had been
// added to m.
func (m *Mean) Merge(other *Mean) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *other
		return
	}
	n := m.n + other.n
	d := other.mean - m.mean
	mean := m.mean + d*float64(other.n)/float64(n)
	m.m2 += other.m2 + d*d*float64(m.n)*float64(other.n)/float64(n)
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
	m.mean = mean
	m.n = n
}

// Reset discards all observations.
func (m *Mean) Reset() { *m = Mean{} }

// String summarizes the accumulator.
func (m *Mean) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		m.n, m.Mean(), m.StdDev(), m.min, m.max)
}

// Histogram counts integer-valued observations in unit-width bins starting
// at zero. Values beyond the last bin land in an overflow bucket.
type Histogram struct {
	bins     []int64
	overflow int64
	total    int64
	sum      float64
}

// NewHistogram returns a histogram with the given number of unit bins.
func NewHistogram(bins int) *Histogram {
	return &Histogram{bins: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.bins) {
		h.bins[v]++
	} else {
		h.overflow++
	}
	h.total++
	h.sum += float64(v)
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Count returns the count in bin v, or the overflow count when v is past
// the last bin.
func (h *Histogram) Count(v int) int64 {
	if v < 0 {
		return 0
	}
	if v < len(h.bins) {
		return h.bins[v]
	}
	return h.overflow
}

// Percentile returns the smallest bin index p such that at least q
// (0 < q <= 1) of the observations are <= p. Overflow observations are
// treated as belonging to the last bin + 1.
func (h *Histogram) Percentile(q float64) int {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return i
		}
	}
	return len(h.bins)
}

// Series records a value per fixed-size window of cycles, for saturation
// detection and warm-up trimming.
type Series struct {
	Window int64 // cycles per window; 0 means 1000
	points []float64
	cur    Mean
	curEnd int64
}

// Observe records an observation at the given cycle. Cycles must be
// non-decreasing across calls.
func (s *Series) Observe(cycle int64, v float64) {
	w := s.Window
	if w <= 0 {
		w = 1000
	}
	if s.curEnd == 0 {
		s.curEnd = w
	}
	for cycle >= s.curEnd {
		s.points = append(s.points, s.cur.Mean())
		s.cur.Reset()
		s.curEnd += w
	}
	s.cur.Add(v)
}

// Points returns the completed window means.
func (s *Series) Points() []float64 { return s.points }

// Last returns the mean of the most recent completed window, or 0.
func (s *Series) Last() float64 {
	if len(s.points) == 0 {
		return 0
	}
	return s.points[len(s.points)-1]
}

// Median returns the median of a slice (which it sorts in place).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Ratio returns a/b, or 0 when b is 0; convenient for normalized tables.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
