package area

import (
	"math"
	"testing"
)

// The four design points of Table 1.
var (
	p2DB  = Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1}
	p3DB  = Params{Ports: 7, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1}
	p3DM  = Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4}
	p3DME = Params{Ports: 9, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4}
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %.1f, want %.1f (tol %.2g)", name, got, want, relTol)
	}
}

// TestTable1 pins the model to the paper's synthesized areas (um^2).
func TestTable1(t *testing.T) {
	cases := []struct {
		name                              string
		p                                 Params
		rc, sa1, sa2, va1, va2, xbar, buf float64
		total                             float64
	}{
		{"2DB", p2DB, 1717, 1008, 6201, 2016, 29312, 230400, 162973, 433628},
		{"3DB", p3DB, 2404, 1411, 11306, 2822, 62725, 451584, 228162, 760416},
		{"3DM", p3DM, 1717, 1008, 6201, 2016, 9770, 14400, 40743, 260829},
		{"3DM-E", p3DME, 3092, 1814, 25024, 3629, 41842, 46656, 73338, 639063},
	}
	for _, c := range cases {
		b := Model(c.p)
		within(t, c.name+" RC", b.RC, c.rc, 0.002)
		within(t, c.name+" SA1", b.SA1, c.sa1, 0.002)
		within(t, c.name+" SA2", b.SA2, c.sa2, 0.002)
		within(t, c.name+" VA1", b.VA1, c.va1, 0.002)
		within(t, c.name+" VA2", b.VA2, c.va2, 0.002)
		within(t, c.name+" Crossbar", b.Crossbar, c.xbar, 0.002)
		within(t, c.name+" Buffer", b.Buffer, c.buf, 0.002)
		within(t, c.name+" Total", b.TotalRouter, c.total, 0.002)
	}
}

func TestCrossbarExact(t *testing.T) {
	// (P * W/L * pitch)^2 must be exact for the four design points.
	if got := Model(p2DB).Crossbar; got != 230400 {
		t.Errorf("2DB crossbar = %v, want 230400 exactly", got)
	}
	if got := Model(p3DB).Crossbar; got != 451584 {
		t.Errorf("3DB crossbar = %v, want 451584 exactly", got)
	}
	if got := Model(p3DM).Crossbar; got != 14400 {
		t.Errorf("3DM crossbar = %v, want 14400 exactly", got)
	}
	if got := Model(p3DME).Crossbar; got != 46656 {
		t.Errorf("3DM-E crossbar = %v, want 46656 exactly", got)
	}
}

func TestCrossbarQuarters(t *testing.T) {
	// §3.2.2: the summed 3DM crossbar area is 4x smaller than 2DB's.
	b2, b3 := Model(p2DB), Model(p3DM)
	if r := b2.CrossbarTotal / b3.CrossbarTotal; math.Abs(r-4) > 1e-9 {
		t.Errorf("crossbar total ratio = %v, want 4", r)
	}
}

func TestBufferBitsConserved(t *testing.T) {
	// Splitting across layers does not change total buffer bits.
	b2, b3 := Model(p2DB), Model(p3DM)
	if math.Abs(b2.BufTotal-b3.BufTotal) > 1 {
		t.Errorf("buffer totals differ: %v vs %v", b2.BufTotal, b3.BufTotal)
	}
}

func TestRouterAreaRatios(t *testing.T) {
	// §3.3: the overall 3DM-E router area is ~2.4x the 3DM router, and
	// its single-layer area stays well below the planar 2DB and 3DB
	// routers ("the area in a single layer is still much smaller").
	me, m, d2, d3 := Model(p3DME), Model(p3DM), Model(p2DB), Model(p3DB)
	if r := me.TotalRouter / m.TotalRouter; r < 2.0 || r > 2.8 {
		t.Errorf("3DM-E/3DM total ratio = %.2f, want ~2.4", r)
	}
	if me.MaxLayer >= d2.MaxLayer || me.MaxLayer >= d3.MaxLayer {
		t.Errorf("3DM-E per-layer area %.0f should undercut 2DB %.0f and 3DB %.0f",
			me.MaxLayer, d2.MaxLayer, d3.MaxLayer)
	}
}

func TestViaCounts(t *testing.T) {
	b := Model(p3DM)
	if want := 2*5 + 5*2 + 2*8; b.Vias != want { // 2P + PV + Vk = 36
		t.Errorf("3DM vias = %d, want %d", b.Vias, want)
	}
	be := Model(p3DME)
	if want := 2*9 + 9*2 + 2*8; be.Vias != want { // 52
		t.Errorf("3DM-E vias = %d, want %d", be.Vias, want)
	}
	if Model(p2DB).Vias != 0 {
		t.Errorf("planar router should have no vias")
	}
}

func TestViaOverheadSmall(t *testing.T) {
	// Table 1: via overhead per layer is ~1.6% (3DM) and ~0.6% (3DM-E);
	// the model must keep it below 2%.
	for _, p := range []Params{p3DM, p3DME} {
		b := Model(p)
		if b.ViaOverheadPct <= 0 || b.ViaOverheadPct > 2.0 {
			t.Errorf("via overhead %v%% out of (0, 2]", b.ViaOverheadPct)
		}
	}
}

func TestVerticalBusVias(t *testing.T) {
	vias, pct := VerticalBusVias(p3DB)
	if vias != 128 {
		t.Errorf("3DB vias = %d, want W = 128", vias)
	}
	// Table 1: 3DB via overhead ~0.4%.
	if pct < 0.2 || pct > 0.7 {
		t.Errorf("3DB via overhead = %v%%, want ~0.4%%", pct)
	}
}

func TestXbarSide(t *testing.T) {
	if s := XbarSideUM(p2DB); s != 480 {
		t.Errorf("2DB xbar side = %v, want 480", s)
	}
	if s := XbarSideUM(p3DM); s != 120 {
		t.Errorf("3DM xbar side = %v, want 120", s)
	}
	if s := XbarSideUM(p3DME); s != 216 {
		t.Errorf("3DM-E xbar side = %v, want 216", s)
	}
	if s := XbarSideUM(p3DB); s != 672 {
		t.Errorf("3DB xbar side = %v, want 672", s)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Ports: 1, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1},
		{Ports: 5, VCs: 0, FlitWidth: 128, BufDepth: 8, Layers: 1},
		{Ports: 5, VCs: 2, FlitWidth: 0, BufDepth: 8, Layers: 1},
		{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 0, Layers: 1},
		{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 0},
		{Ports: 5, VCs: 2, FlitWidth: 130, BufDepth: 8, Layers: 4}, // not divisible
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
	if err := p3DM.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestModelPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Model should panic on invalid params")
		}
	}()
	Model(Params{})
}

func TestInterpArbMonotone(t *testing.T) {
	prev := 0.0
	for n := 4; n <= 30; n += 2 {
		got := interpArb(sa2Points, n)
		if got <= prev {
			t.Errorf("SA2 arbiter area not monotone at n=%d: %v <= %v", n, got, prev)
		}
		prev = got
	}
}

func TestMoreLayersSmallerFootprint(t *testing.T) {
	// Increasing layer count must shrink the per-layer footprint.
	prev := math.Inf(1)
	for _, l := range []int{1, 2, 4} {
		p := Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: l}
		b := Model(p)
		if b.MaxLayer >= prev {
			t.Errorf("layers=%d max layer %v not smaller than %v", l, b.MaxLayer, prev)
		}
		prev = b.MaxLayer
	}
}
