// Package area is the router area model behind Table 1 of the MIRA
// paper. Crossbar, buffer, routing-computation and first-stage arbiter
// areas follow closed-form models (wire-pitch-squared matrix crossbar,
// per-bit register-file cells, per-port/per-VC logic blocks) whose
// constants reproduce the paper's TSMC 90 nm synthesis results; the
// large second-stage allocator arbiters (SA2, VA2) use a small
// synthesis-calibrated lookup over arbiter input count, linearly
// interpolated, because synthesized arbiter area does not follow a clean
// analytic law.
package area

import "fmt"

// 90 nm technology constants calibrated against Table 1.
const (
	// WirePitchUM is the crossbar wire pitch: a P-port, w-bit-per-layer
	// matrix crossbar occupies (P*w*pitch)^2. 0.75 um reproduces all
	// four crossbar entries of Table 1 exactly.
	WirePitchUM = 0.75
	// BufCellUM2 is the register-file cell area per buffer bit.
	BufCellUM2 = 15.9153
	// RCUnitUM2 is one per-port routing-computation block (shared by
	// the VCs of a physical channel, §3.2.4).
	RCUnitUM2 = 343.4
	// SA1UnitUM2 / VA1UnitUM2 are the per-VC first-stage V:1 arbiters.
	SA1UnitUM2 = 100.8
	VA1UnitUM2 = 201.6
	// TSVPitchUM is the through-silicon-via pitch (5x5 um^2, §3.2.7).
	TSVPitchUM = 5.0
)

// arbPoint is a synthesis-calibrated (inputs, area) sample.
type arbPoint struct {
	n    int
	area float64
}

// sa2Points / va2Points: area of one n:1 arbiter in the switch / VC
// allocator second stage, from the paper's synthesis (Table 1 divided by
// arbiter count).
var (
	sa2Points = []arbPoint{{10, 1240.2}, {14, 1615.1}, {18, 2780.44}}
	va2Points = []arbPoint{{10, 2931.2}, {14, 4480.36}, {18, 6973.67}}
)

// interpArb linearly interpolates (or edge-extrapolates) arbiter area
// for n inputs.
func interpArb(points []arbPoint, n int) float64 {
	if n <= points[0].n {
		p0, p1 := points[0], points[1]
		slope := (p1.area - p0.area) / float64(p1.n-p0.n)
		return p0.area + slope*float64(n-p0.n)
	}
	for i := 1; i < len(points); i++ {
		if n <= points[i].n {
			p0, p1 := points[i-1], points[i]
			slope := (p1.area - p0.area) / float64(p1.n-p0.n)
			return p0.area + slope*float64(n-p0.n)
		}
	}
	p0, p1 := points[len(points)-2], points[len(points)-1]
	slope := (p1.area - p0.area) / float64(p1.n-p0.n)
	return p1.area + slope*float64(n-p1.n)
}

// Params describes one router design point.
type Params struct {
	Ports     int // physical channels, incl. local (P)
	VCs       int // virtual channels per port (V)
	FlitWidth int // flit width in bits (W)
	BufDepth  int // buffer depth in flits per VC (k)
	Layers    int // stacked layers the datapath spans (L; 1 = planar)
}

// Validate checks the design point.
func (p Params) Validate() error {
	if p.Ports < 2 || p.VCs < 1 || p.FlitWidth < 1 || p.BufDepth < 1 || p.Layers < 1 {
		return fmt.Errorf("area: invalid params %+v", p)
	}
	if p.FlitWidth%p.Layers != 0 {
		return fmt.Errorf("area: flit width %d not divisible by %d layers", p.FlitWidth, p.Layers)
	}
	return nil
}

// Breakdown is the Table 1 row set for one design: component areas in
// um^2. For multi-layer designs each component entry is the maximum area
// the component occupies in any single layer (the paper's convention),
// and TotalRouter is the sum over all layers.
type Breakdown struct {
	RC, SA1, SA2, VA1, VA2  float64
	Crossbar, Buffer        float64
	MaxLayer                float64 // largest single-layer total
	TotalRouter             float64 // all layers together
	Vias                    int     // inter-layer via count (2P + PV + Vk)
	ViaOverheadPct          float64 // via area relative to one layer's area
	CrossbarTotal, BufTotal float64 // across layers (for energy models)
}

// Model evaluates the area model at a design point. Layer placement
// follows §3.2.7: RC, SA1, SA2 and VA1 sit in the layer closest to the
// heat sink; VA2 is spread over the remaining layers; crossbar and
// buffer are split evenly across all layers.
func Model(p Params) Breakdown {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	P, V, W, K, L := p.Ports, p.VCs, float64(p.FlitWidth), p.BufDepth, p.Layers
	wLayer := W / float64(L)

	var b Breakdown
	b.RC = float64(P) * RCUnitUM2
	b.SA1 = float64(P*V) * SA1UnitUM2
	b.VA1 = float64(P*V) * VA1UnitUM2
	b.SA2 = float64(P) * interpArb(sa2Points, P*V)
	va2Total := float64(P*V) * interpArb(va2Points, P*V)

	// Per-layer crossbar and buffer slices.
	b.Crossbar = sq(float64(P) * wLayer * WirePitchUM)
	b.CrossbarTotal = b.Crossbar * float64(L)
	bitsPerLayer := float64(P*V*K) * wLayer
	b.Buffer = bitsPerLayer * BufCellUM2
	b.BufTotal = b.Buffer * float64(L)

	if L > 1 {
		b.VA2 = va2Total / float64(L-1)
	} else {
		b.VA2 = va2Total
	}

	b.TotalRouter = b.RC + b.SA1 + b.SA2 + b.VA1 + va2Total + b.CrossbarTotal + b.BufTotal

	if L > 1 {
		b.Vias = 2*P + P*V + V*K
		layer0 := b.RC + b.SA1 + b.SA2 + b.VA1 + b.Crossbar + b.Buffer
		other := b.VA2 + b.Crossbar + b.Buffer
		b.MaxLayer = layer0
		if other > layer0 {
			b.MaxLayer = other
		}
		viaArea := float64(b.Vias) * TSVPitchUM * TSVPitchUM
		b.ViaOverheadPct = 100 * viaArea / (b.TotalRouter / float64(L))
	} else {
		b.MaxLayer = b.TotalRouter
		b.Vias = 0
	}
	return b
}

// VerticalBusVias returns the via count and per-layer overhead for a
// planar router that adds vertical up/down ports (the 3DB design): the
// inter-layer buses are W bits wide.
func VerticalBusVias(p Params) (vias int, overheadPct float64) {
	b := Model(Params{Ports: p.Ports, VCs: p.VCs, FlitWidth: p.FlitWidth, BufDepth: p.BufDepth, Layers: 1})
	vias = p.FlitWidth
	viaArea := float64(vias) * TSVPitchUM * TSVPitchUM
	return vias, 100 * viaArea / b.TotalRouter
}

// XbarSideUM returns the per-layer crossbar side length in micrometres,
// the wire length that dominates switch-traversal delay and energy.
func XbarSideUM(p Params) float64 {
	return float64(p.Ports) * float64(p.FlitWidth) / float64(p.Layers) * WirePitchUM
}

func sq(x float64) float64 { return x * x }
