package noc

// Arbiters. The VA and SA stages arbitrate among up to P*V requesters
// (Table 1 sizes them as 10:1 / 14:1 / 18:1 for the evaluated designs).
// Two policies are provided: a rotating round-robin arbiter (strongly
// fair, the default for both allocators) and a matrix arbiter
// (least-recently-served, the classic choice for small switch
// allocators). Both are deterministic.

// Arbiter picks one requester among n candidates.
type Arbiter interface {
	// Grant returns the index of the winning requester among the set
	// bits of reqs (true = requesting), or -1 when nobody requests.
	// n is the total number of requester slots.
	Grant(reqs []bool) int
	// GrantSingle records a grant to requester i, which the caller
	// knows to be the only requester. The arbiter state update is
	// identical to Grant with only bit i set (the sole requester always
	// wins), so callers may use it as an allocation-free fast path
	// without perturbing later arbitration decisions.
	GrantSingle(i int)
}

// RoundRobin is a rotating-priority arbiter: the slot after the last
// winner has the highest priority next time.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin arbiter for n requesters.
func NewRoundRobin(n int) *RoundRobin { return &RoundRobin{} }

// Grant implements Arbiter. The rotating scan is written as two linear
// passes (next..n, then 0..next) rather than a modulo walk; same grant
// order, no division in the simulator's hottest loop.
func (r *RoundRobin) Grant(reqs []bool) int {
	for i := r.next; i < len(reqs); i++ {
		if reqs[i] {
			r.next = i + 1
			if r.next == len(reqs) {
				r.next = 0
			}
			return i
		}
	}
	for i := 0; i < r.next && i < len(reqs); i++ {
		if reqs[i] {
			r.next = i + 1
			return i
		}
	}
	return -1
}

// GrantSingle implements Arbiter. next may momentarily equal the
// requester width; Grant's two-pass scan treats that the same as 0.
func (r *RoundRobin) GrantSingle(i int) { r.next = i + 1 }

// Matrix is a least-recently-served arbiter: a triangular priority
// matrix where w[i][j] records that i beats j; the winner's row is
// cleared and column set, making it the lowest priority.
type Matrix struct {
	w [][]bool
}

// NewMatrix returns a matrix arbiter for n requesters, with initial
// priority order 0 > 1 > ... > n-1.
func NewMatrix(n int) *Matrix {
	m := &Matrix{w: make([][]bool, n)}
	for i := range m.w {
		m.w[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.w[i][j] = true
		}
	}
	return m
}

// Grant implements Arbiter.
func (m *Matrix) Grant(reqs []bool) int {
	n := len(m.w)
	if len(reqs) != n {
		panic("noc: matrix arbiter request width mismatch")
	}
	winner := -1
	for i := 0; i < n; i++ {
		if !reqs[i] {
			continue
		}
		wins := true
		for j := 0; j < n; j++ {
			if j != i && reqs[j] && !m.w[i][j] {
				wins = false
				break
			}
		}
		if wins {
			winner = i
			break
		}
	}
	if winner >= 0 {
		for j := 0; j < n; j++ {
			if j != winner {
				m.w[winner][j] = false
				m.w[j][winner] = true
			}
		}
	}
	return winner
}

// GrantSingle implements Arbiter: a lone requester wins unopposed, and
// the priority update matches Grant exactly.
func (m *Matrix) GrantSingle(i int) {
	for j := range m.w {
		if j != i {
			m.w[i][j] = false
			m.w[j][i] = true
		}
	}
}
