package noc

import (
	"context"
	"math/rand"
	"testing"

	"mira/internal/routing"
	"mira/internal/topology"
)

func cfg2D(stlt int) Config {
	return Config{
		Topo:       topology.NewMesh2D(6, 6, 3.1),
		Alg:        routing.XY{},
		VCs:        2,
		BufDepth:   8,
		STLTCycles: stlt,
		Layers:     4,
		Policy:     AnyFree,
		Seed:       1,
	}
}

func cfgExpress(stlt int) Config {
	c := cfg2D(stlt)
	c.Topo = topology.NewExpressMesh2D(6, 6, 1.58, 2)
	c.Alg = routing.Express{}
	return c
}

func cfg3D(stlt int) Config {
	c := cfg2D(stlt)
	c.Topo = topology.NewMesh3D(3, 3, 4, 3.1, 0.02)
	return c
}

// onePacket runs a single packet through an otherwise idle network and
// returns it after ejection.
func onePacket(t *testing.T, cfg Config, spec Spec) *Packet {
	t.Helper()
	net := NewNetwork(cfg)
	var done *Packet
	net.SetEjectHandler(func(p *Packet) { done = p })
	pkt, err := net.Enqueue(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000 && done == nil; i++ {
		net.Step()
	}
	if done == nil {
		t.Fatalf("packet not delivered within 1000 cycles")
	}
	if done != pkt {
		t.Fatalf("wrong packet ejected")
	}
	if !net.Idle() {
		t.Fatalf("network not idle after single packet: queued=%d inflight=%d",
			net.QueuedPackets(), net.InFlightFlits())
	}
	return pkt
}

// Zero-load head latency: 1 (injection) + perHop*(hops+1) cycles, where
// perHop is 5 for the 4-stage pipeline with a separate link stage and 4
// with ST+LT combined (Figure 8). Tail adds size-1 serialization cycles.
func TestZeroLoadLatencySeparateSTLT(t *testing.T) {
	cfg := cfg2D(2)
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: 1, Size: 1, Class: Control})
	if lat := pkt.EjectedAt - pkt.CreatedAt; lat != 1+5*2 {
		t.Errorf("1-hop 1-flit latency = %d, want 11", lat)
	}
	if pkt.Hops != 1 {
		t.Errorf("hops = %d, want 1", pkt.Hops)
	}
}

func TestZeroLoadLatencyCombinedSTLT(t *testing.T) {
	cfg := cfg2D(1)
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: 1, Size: 1, Class: Control})
	if lat := pkt.EjectedAt - pkt.CreatedAt; lat != 1+4*2 {
		t.Errorf("1-hop 1-flit latency = %d, want 9", lat)
	}
}

func TestZeroLoadLatencyMultiHop(t *testing.T) {
	cfg := cfg2D(2)
	// 0 -> 35 is 5+5 = 10 hops.
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: 35, Size: 1, Class: Control})
	if pkt.Hops != 10 {
		t.Errorf("hops = %d, want 10", pkt.Hops)
	}
	if lat := pkt.EjectedAt - pkt.CreatedAt; lat != 1+5*11 {
		t.Errorf("10-hop latency = %d, want 56", lat)
	}
}

func TestZeroLoadSerialization(t *testing.T) {
	cfg := cfg2D(2)
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: 1, Size: 4, Class: Data})
	if lat := pkt.EjectedAt - pkt.CreatedAt; lat != 11+3 {
		t.Errorf("4-flit latency = %d, want 14", lat)
	}
}

func TestZeroLoadExpressFewerHops(t *testing.T) {
	cfg := cfgExpress(1)
	src := cfg.Topo.MustNodeAt(topology.Coord{X: 0, Y: 0}).ID
	dst := cfg.Topo.MustNodeAt(topology.Coord{X: 4, Y: 0}).ID
	pkt := onePacket(t, cfg, Spec{Src: src, Dst: dst, Size: 1, Class: Control})
	if pkt.Hops != 2 { // two express hops of span 2
		t.Errorf("express hops = %d, want 2", pkt.Hops)
	}
}

func TestZeroLoad3DVertical(t *testing.T) {
	cfg := cfg3D(2)
	src := cfg.Topo.MustNodeAt(topology.Coord{X: 0, Y: 0, Z: 0}).ID
	dst := cfg.Topo.MustNodeAt(topology.Coord{X: 0, Y: 0, Z: 3}).ID
	pkt := onePacket(t, cfg, Spec{Src: src, Dst: dst, Size: 1, Class: Control})
	if pkt.Hops != 3 {
		t.Errorf("vertical hops = %d, want 3", pkt.Hops)
	}
}

func TestHopsMatchRouting(t *testing.T) {
	cfg := cfgExpress(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		src := topology.NodeID(rng.Intn(36))
		dst := topology.NodeID(rng.Intn(36))
		if src == dst {
			continue
		}
		want, err := routing.HopCount(cfg.Topo, cfg.Alg, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		pkt := onePacket(t, cfg, Spec{Src: src, Dst: dst, Size: 2, Class: Data})
		if pkt.Hops != want {
			t.Errorf("%d->%d hops = %d, want %d", src, dst, pkt.Hops, want)
		}
	}
}

// bernoulli builds a uniform-random Bernoulli generator for tests.
func bernoulli(topo *topology.Topology, flitsPerNodeCycle float64, size int, class Class) Generator {
	n := topo.NumNodes()
	pPkt := flitsPerNodeCycle / float64(size)
	return GeneratorFunc(func(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
		for src := 0; src < n; src++ {
			if rng.Float64() >= pPkt {
				continue
			}
			dst := rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
			specs = append(specs, Spec{
				Src: topology.NodeID(src), Dst: topology.NodeID(dst),
				Size: size, Class: class,
			})
		}
		return specs
	})
}

func shortSim(cfg Config, gen Generator) Result {
	s := NewSim(NewNetwork(cfg), gen)
	s.Params = SimParams{Warmup: 1000, Measure: 3000, DrainMax: 8000}
	return s.Run(context.Background())
}

func TestConservationUnderLoad(t *testing.T) {
	cfg := cfg2D(2)
	res := shortSim(cfg, bernoulli(cfg.Topo, 0.1, 4, Data))
	if res.Generated == 0 {
		t.Fatal("no packets generated")
	}
	if res.Saturated {
		t.Fatalf("0.1 flits/node/cycle should not saturate a 6x6 mesh: %v", res.String())
	}
	if res.Ejected != res.Generated {
		t.Errorf("ejected %d != generated %d", res.Ejected, res.Generated)
	}
}

func TestCounterConsistency(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	gen := bernoulli(cfg.Topo, 0.08, 4, Data)
	s := NewSim(net, gen)
	s.Params = SimParams{Warmup: 0, Measure: 2000, DrainMax: 8000}
	res := s.Run(context.Background())
	if res.Saturated {
		t.Fatal("unexpected saturation")
	}
	// After full drain every buffered flit was read and crossed the
	// crossbar exactly once per hop.
	c := net.TotalCounters()
	if c.BufWrites != c.BufReads {
		t.Errorf("BufWrites %d != BufReads %d after drain", c.BufWrites, c.BufReads)
	}
	if c.XbarFlits != c.BufReads {
		t.Errorf("XbarFlits %d != BufReads %d", c.XbarFlits, c.BufReads)
	}
	// Every buffer write is either an injection or a link arrival.
	var injFlits int64
	// All generated packets (measured or not) were 4 flits.
	totalPkts := res.Generated // warmup=0, so all packets measured
	injFlits = totalPkts * 4
	if got := c.BufWrites - c.LinkFlits; got != injFlits {
		t.Errorf("BufWrites-LinkFlits = %d, want injected %d", got, injFlits)
	}
}

func TestWeightedCountersFullLayersEqualRaw(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.05, 2, Data))
	s.Params = SimParams{Warmup: 0, Measure: 1000, DrainMax: 4000}
	s.Run(context.Background())
	c := net.TotalCounters()
	if c.WBufWrites != float64(c.BufWrites) || c.WXbarFlits != float64(c.XbarFlits) {
		t.Errorf("full-layer flits should weight 1.0: %+v", c)
	}
}

func TestWeightedCountersShortFlits(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	gen := GeneratorFunc(func(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
		if cycle != 0 {
			return specs
		}
		return append(specs, Spec{Src: 0, Dst: 5, Size: 2, Class: Data, LayersPerFlit: []uint8{1, 1}})
	})
	s := NewSim(net, gen)
	s.Params = SimParams{Warmup: 0, Measure: 100, DrainMax: 400}
	s.Run(context.Background())
	c := net.TotalCounters()
	if c.BufWrites == 0 {
		t.Fatal("no activity")
	}
	want := float64(c.BufWrites) * 0.25 // 1 of 4 layers active
	if diff := c.WBufWrites - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("WBufWrites = %v, want %v", c.WBufWrites, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := cfg2D(1)
		cfg.Seed = 42
		return shortSim(cfg, bernoulli(cfg.Topo, 0.15, 4, Data))
	}
	a, b := run(), run()
	if a.AvgLatency != b.AvgLatency || a.Generated != b.Generated || a.Ejected != b.Ejected {
		t.Errorf("non-deterministic: %v vs %v", a.String(), b.String())
	}
}

func TestSaturationDetection(t *testing.T) {
	cfg := cfg2D(2)
	low := shortSim(cfg, bernoulli(cfg.Topo, 0.05, 4, Data))
	high := shortSim(cfg, bernoulli(cfg.Topo, 0.9, 4, Data))
	if low.Saturated {
		t.Errorf("low load saturated: %v", low.String())
	}
	if !high.Saturated {
		t.Errorf("0.9 flits/node/cycle must saturate: %v", high.String())
	}
	if high.AvgLatency <= low.AvgLatency {
		t.Errorf("latency should grow with load: low %v high %v", low.AvgLatency, high.AvgLatency)
	}
}

func TestCombinedPipelineFasterUnderLoad(t *testing.T) {
	cfgNC, cfgC := cfg2D(2), cfg2D(1)
	rNC := shortSim(cfgNC, bernoulli(cfgNC.Topo, 0.1, 4, Data))
	rC := shortSim(cfgC, bernoulli(cfgC.Topo, 0.1, 4, Data))
	if rC.AvgLatency >= rNC.AvgLatency {
		t.Errorf("combined ST+LT should be faster: %.2f vs %.2f", rC.AvgLatency, rNC.AvgLatency)
	}
}

func TestExpressFasterThanMesh(t *testing.T) {
	cfgM, cfgE := cfg2D(1), cfgExpress(1)
	rM := shortSim(cfgM, bernoulli(cfgM.Topo, 0.1, 4, Data))
	rE := shortSim(cfgE, bernoulli(cfgE.Topo, 0.1, 4, Data))
	if rE.AvgHops >= rM.AvgHops {
		t.Errorf("express should reduce hops: %.2f vs %.2f", rE.AvgHops, rM.AvgHops)
	}
	if rE.AvgLatency >= rM.AvgLatency {
		t.Errorf("express should reduce latency: %.2f vs %.2f", rE.AvgLatency, rM.AvgLatency)
	}
}

func TestByClassPolicyRequestResponse(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Policy = ByClass
	// Bimodal request/response traffic at moderate load must drain.
	gen := GeneratorFunc(func(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
		for src := 0; src < 36; src++ {
			if rng.Float64() < 0.02 {
				dst := rng.Intn(35)
				if dst >= src {
					dst++
				}
				specs = append(specs, Spec{Src: topology.NodeID(src), Dst: topology.NodeID(dst), Size: 1, Class: Control})
				specs = append(specs, Spec{Src: topology.NodeID(dst), Dst: topology.NodeID(src), Size: 4, Class: Data})
			}
		}
		return specs
	})
	res := shortSim(cfg, gen)
	if res.Saturated || res.Ejected != res.Generated {
		t.Errorf("by-class bimodal traffic failed to drain: %v", res.String())
	}
}

func TestEnqueueValidation(t *testing.T) {
	net := NewNetwork(cfg2D(2))
	cases := []Spec{
		{Src: -1, Dst: 1, Size: 1},
		{Src: 0, Dst: 99, Size: 1},
		{Src: 3, Dst: 3, Size: 1},
		{Src: 0, Dst: 1, Size: 0},
		{Src: 0, Dst: 1, Size: 2, LayersPerFlit: []uint8{1}},
	}
	for _, spec := range cases {
		if _, err := net.Enqueue(spec); err == nil {
			t.Errorf("Enqueue(%+v) should fail", spec)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg2D(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Topo = nil },
		func(c *Config) { c.Alg = nil },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.STLTCycles = 0 },
		func(c *Config) { c.STLTCycles = 3 },
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.VCs = 1; c.Policy = ByClass },
		func(c *Config) { c.BufDepth = 128 }, // int8 occupancy counters
		func(c *Config) { c.VCs = 30 },       // 5 ports x 30 VCs > 127 flat indices
	}
	for i, mutate := range bad {
		c := cfg2D(2)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestInjectionBackpressure(t *testing.T) {
	// Flood a single source; the NI queue must absorb everything and
	// packets still deliver in order of acceptance without loss.
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	var ejected int
	net.SetEjectHandler(func(p *Packet) { ejected++ })
	for i := 0; i < 50; i++ {
		if _, err := net.Enqueue(Spec{Src: 0, Dst: 35, Size: 4, Class: Data}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20000 && !net.Idle(); i++ {
		net.Step()
	}
	if ejected != 50 {
		t.Errorf("delivered %d/50 packets", ejected)
	}
}

func TestOccupancyBounded(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.6, 4, Data))
	s.Params = SimParams{Warmup: 0, Measure: 2000, DrainMax: 0}
	s.Run(context.Background())
	// 6x6 mesh, 5 ports, 2 VCs, 8 flits.
	max := 36 * 5 * 2 * 8
	if occ := net.Occupancy(); occ > max {
		t.Errorf("occupancy %d exceeds physical capacity %d", occ, max)
	}
}
