package noc

import (
	"testing"
	"testing/quick"
)

func TestRoundRobinRotates(t *testing.T) {
	a := NewRoundRobin(4)
	all := []bool{true, true, true, true}
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, a.Grant(all))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	a := NewRoundRobin(4)
	reqs := []bool{false, true, false, true}
	if g := a.Grant(reqs); g != 1 {
		t.Errorf("grant = %d, want 1", g)
	}
	if g := a.Grant(reqs); g != 3 {
		t.Errorf("grant = %d, want 3", g)
	}
	if g := a.Grant(reqs); g != 1 {
		t.Errorf("grant = %d, want 1 (wrap)", g)
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	a := NewRoundRobin(3)
	if g := a.Grant([]bool{false, false, false}); g != -1 {
		t.Errorf("grant with no requests = %d", g)
	}
	if g := a.Grant(nil); g != -1 {
		t.Errorf("grant with nil requests = %d", g)
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	a := NewMatrix(3)
	all := []bool{true, true, true}
	// Initial priority 0 > 1 > 2; after 0 wins it becomes lowest.
	if g := a.Grant(all); g != 0 {
		t.Fatalf("first grant = %d, want 0", g)
	}
	if g := a.Grant(all); g != 1 {
		t.Fatalf("second grant = %d, want 1", g)
	}
	if g := a.Grant(all); g != 2 {
		t.Fatalf("third grant = %d, want 2", g)
	}
	if g := a.Grant(all); g != 0 {
		t.Fatalf("fourth grant = %d, want 0 again", g)
	}
}

func TestMatrixFavorsStarved(t *testing.T) {
	a := NewMatrix(3)
	// Requester 2 never asks; 0 and 1 alternate wins.
	pair := []bool{true, true, false}
	a.Grant(pair)
	a.Grant(pair)
	// Now 2 requests for the first time: it has beaten nobody but also
	// never lost recently; it must win over the recently served.
	if g := a.Grant([]bool{true, true, true}); g != 2 {
		t.Errorf("starved requester should win, got %d", g)
	}
}

func TestMatrixSingleRequester(t *testing.T) {
	a := NewMatrix(4)
	for i := 0; i < 3; i++ {
		if g := a.Grant([]bool{false, false, true, false}); g != 2 {
			t.Fatalf("sole requester should always win, got %d", g)
		}
	}
}

func TestMatrixWidthMismatchPanics(t *testing.T) {
	a := NewMatrix(3)
	defer func() {
		if recover() == nil {
			t.Errorf("width mismatch should panic")
		}
	}()
	a.Grant([]bool{true})
}

// Property: both arbiters always grant a requesting slot, exactly when
// one exists, and never a non-requesting one.
func TestArbiterSoundness(t *testing.T) {
	rr := NewRoundRobin(8)
	mx := NewMatrix(8)
	f := func(mask uint8) bool {
		reqs := make([]bool, 8)
		any := false
		for i := 0; i < 8; i++ {
			reqs[i] = mask&(1<<i) != 0
			any = any || reqs[i]
		}
		for _, a := range []Arbiter{rr, mx} {
			g := a.Grant(reqs)
			if any && (g < 0 || !reqs[g]) {
				return false
			}
			if !any && g != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: under persistent full load both arbiters are fair within a
// factor of ~1 over long windows.
func TestArbiterLongRunFairness(t *testing.T) {
	for _, mk := range []func() Arbiter{
		func() Arbiter { return NewRoundRobin(5) },
		func() Arbiter { return NewMatrix(5) },
	} {
		a := mk()
		counts := make([]int, 5)
		all := []bool{true, true, true, true, true}
		for i := 0; i < 1000; i++ {
			counts[a.Grant(all)]++
		}
		for i, c := range counts {
			if c != 200 {
				t.Errorf("%T slot %d served %d/1000, want 200", a, i, c)
			}
		}
	}
}

// Property: GrantSingle(i) leaves an arbiter in a state
// indistinguishable from Grant with only bit i set — the contract the
// switch/VC allocators' sole-candidate fast path relies on for
// bit-identical results across step modes.
func TestGrantSingleEquivalence(t *testing.T) {
	const n = 6
	for _, mk := range []func() Arbiter{
		func() Arbiter { return NewRoundRobin(n) },
		func() Arbiter { return NewMatrix(n) },
	} {
		ref, fast := mk(), mk()
		rng := uint64(12345)
		next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }
		reqs := make([]bool, n)
		for step := 0; step < 2000; step++ {
			mask := next() % (1 << n)
			count, single := 0, -1
			for i := 0; i < n; i++ {
				reqs[i] = mask&(1<<uint(i)) != 0
				if reqs[i] {
					count++
					single = i
				}
			}
			want := ref.Grant(reqs)
			var got int
			if count == 1 {
				fast.GrantSingle(single)
				got = single
			} else {
				got = fast.Grant(reqs)
			}
			if got != want {
				t.Fatalf("%T step %d (mask %06b): fast path grants %d, reference %d", ref, step, mask, got, want)
			}
		}
	}
}
