package noc

import (
	"fmt"
	"runtime"

	"mira/internal/routing"
	"mira/internal/topology"
)

// VCPolicy selects how the VC allocator chooses an output VC for a head
// flit.
type VCPolicy uint8

// VC allocation policies.
const (
	// AnyFree grants any unreserved output VC (used for the uniform
	// random synthetic traffic).
	AnyFree VCPolicy = iota
	// ByClass restricts each packet to the VC matching its message
	// class: VC0 for control/request traffic, VC1 for data/response
	// traffic (§3.2.4). This separates the request and response
	// networks and avoids protocol deadlock for NUCA traffic.
	ByClass
)

func (p VCPolicy) String() string {
	if p == ByClass {
		return "by-class"
	}
	return "any-free"
}

// StepMode selects the per-cycle scheduling strategy of Network.Step.
// All modes are bit-identical in simulated behaviour; they differ only
// in host cost. See activity.go for the determinism argument.
type StepMode uint8

// Step modes.
const (
	// StepActivity (the default) visits only routers, ports and VCs
	// with pending work, tracked incrementally at every state
	// transition. Simulation cost scales with traffic, not network
	// size.
	StepActivity StepMode = iota
	// StepFullScan rescans every router, port and VC each cycle — the
	// reference implementation the activity path is checked against.
	StepFullScan
	// StepChecked runs the activity path and cross-checks the full set
	// of flow-control and activity invariants after every cycle,
	// panicking on the first violation. Orders of magnitude slower;
	// for tests and CI only.
	StepChecked
)

func (m StepMode) String() string {
	switch m {
	case StepFullScan:
		return "fullscan"
	case StepChecked:
		return "checked"
	default:
		return "activity"
	}
}

// ParseStepMode converts a -stepmode flag value.
func ParseStepMode(s string) (StepMode, error) {
	switch s {
	case "activity", "":
		return StepActivity, nil
	case "fullscan":
		return StepFullScan, nil
	case "checked":
		return StepChecked, nil
	}
	return StepActivity, fmt.Errorf("noc: unknown step mode %q (want activity, fullscan or checked)", s)
}

// Config fully describes a simulated network.
type Config struct {
	// Topo is the router graph; Alg routes over it.
	Topo *topology.Topology
	Alg  routing.Algorithm

	// VCs per physical port and buffer depth (flits) per VC. The MIRA
	// configuration uses 2 VCs with 8-flit buffers.
	VCs      int
	BufDepth int

	// STLTCycles is the number of cycles from a switch-allocation grant
	// until the flit is written into the next router's buffer: 2 for a
	// separate switch-traversal and link-traversal stage (2DB, 3DB,
	// the NC variants), 1 when ST and LT are combined (3DM, 3DM-E —
	// Figure 8 (d), enabled by the shorter crossbar and links).
	STLTCycles int

	// Layers is the number of datapath layers for active-layer
	// accounting (4 for the 3D designs; 2DB uses 4 equal-width
	// segments when the shutdown technique is applied to it).
	Layers int

	// LookaheadRC enables look-ahead routing (Figure 8 (c), Galles'
	// SPIDER scheme): each hop's output port is computed one hop in
	// advance, removing the RC stage from the critical path.
	LookaheadRC bool
	// SpecSA enables speculative switch allocation (Figure 8 (b), Peh &
	// Dally): a head flit bids for the crossbar in the same cycle as
	// its VC allocation; if the VA grant fails the speculation is
	// wasted and it retries non-speculatively. Non-speculative requests
	// have priority for switch ports.
	SpecSA bool

	// Arb selects the allocator arbiter implementation.
	Arb ArbPolicy

	// QoSPriority gives control-class (request/coherence) flits switch
	// priority over data flits (§3.3 suggests the spare 3DM bandwidth
	// could serve QoS provisioning; this is the scheduling half).
	// Within the data class, packets already in flight outrank new
	// heads, and waiting flits age upward one tier per 16 cycles, so
	// nothing starves under a continuous high-priority storm.
	QoSPriority bool

	Policy VCPolicy
	Seed   int64

	// Mode selects the stepping strategy (activity-driven by default);
	// results are identical across modes, only host cost differs.
	Mode StepMode

	// Shards partitions the routers into contiguous ID ranges stepped
	// concurrently inside each cycle (shard.go). 0 or 1 steps
	// sequentially; AutoShards (-1) picks a count from the mesh size
	// and GOMAXPROCS (see autoShards); the count is clamped to the
	// router count. Results are bit-identical for any value — shards
	// trade memory and per-cycle synchronization for multicore scaling
	// on large meshes.
	Shards int
}

// AutoShards, assigned to Config.Shards (or -shards=-1), derives the
// shard count from the mesh size and GOMAXPROCS at construction time.
const AutoShards = -1

// autoShardRouters is the per-shard router budget of the auto heuristic:
// one shard per this many routers. Below it the per-cycle barrier and
// mailbox overhead outweighs the parallelism (the 16x16 sharded-step
// benchmark puts the knee near 64-128 routers/shard), so meshes of at
// most autoShardRouters routers step sequentially.
const autoShardRouters = 64

// autoShards picks the shard count for num routers: enough shards to
// give each ~autoShardRouters routers, but never more than GOMAXPROCS
// (extra shards beyond the runnable cores only add barrier cost) and
// never more than one per router. Tiny meshes — at most one budget's
// worth of routers — stay sequential.
func autoShards(num int) int {
	s := num / autoShardRouters
	if p := runtime.GOMAXPROCS(0); s > p {
		s = p
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ArbPolicy selects the arbiter used in the VA and SA allocators.
type ArbPolicy uint8

// Arbiter policies.
const (
	// ArbRoundRobin uses rotating-priority arbiters (strongly fair).
	ArbRoundRobin ArbPolicy = iota
	// ArbMatrix uses least-recently-served matrix arbiters, the classic
	// hardware choice for the small allocators of Table 1.
	ArbMatrix
)

func (a ArbPolicy) String() string {
	if a == ArbMatrix {
		return "matrix"
	}
	return "round-robin"
}

// newArbiter builds an arbiter for n requesters under the policy.
func (a ArbPolicy) newArbiter(n int) Arbiter {
	if a == ArbMatrix {
		return NewMatrix(n)
	}
	return NewRoundRobin(n)
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Topo == nil {
		return fmt.Errorf("noc: config has no topology")
	}
	if c.Alg == nil {
		return fmt.Errorf("noc: config has no routing algorithm")
	}
	if c.VCs < 1 {
		return fmt.Errorf("noc: VCs = %d, need >= 1", c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("noc: BufDepth = %d, need >= 1", c.BufDepth)
	}
	// The flat router state (soa.go) keeps occupancy counters (vcInFly,
	// saCount) and flat VC indices (portOf/vcOf/vcOutVC/eligibleOut) in
	// int8 lanes; bound the config here so an oversized network fails
	// loudly at validation instead of silently overflowing them.
	if c.BufDepth > 127 {
		return fmt.Errorf("noc: BufDepth = %d, need <= 127 (int8 occupancy counters)", c.BufDepth)
	}
	if fv := c.Topo.MaxPorts() * c.VCs; fv > 127 {
		return fmt.Errorf("noc: %d ports x %d VCs = %d flat VCs per router, need <= 127 (int8 flat indices)",
			c.Topo.MaxPorts(), c.VCs, fv)
	}
	if c.STLTCycles < 1 || c.STLTCycles > 2 {
		return fmt.Errorf("noc: STLTCycles = %d, need 1 or 2", c.STLTCycles)
	}
	if c.Layers < 1 {
		return fmt.Errorf("noc: Layers = %d, need >= 1", c.Layers)
	}
	if int(NumClasses) > c.VCs && c.Policy == ByClass {
		return fmt.Errorf("noc: ByClass policy needs >= %d VCs, have %d", NumClasses, c.VCs)
	}
	if c.Mode > StepChecked {
		return fmt.Errorf("noc: unknown step mode %d", c.Mode)
	}
	if c.Shards < AutoShards {
		return fmt.Errorf("noc: Shards = %d, need >= -1 (-1 = auto)", c.Shards)
	}
	return nil
}
