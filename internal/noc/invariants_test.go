package noc

import (
	"context"
	"math/rand"
	"testing"

	"mira/internal/topology"
)

// Every cycle of a loaded simulation must satisfy the flow-control
// invariants, for all three fabric shapes and both pipeline depths.
func TestInvariantsUnderLoad(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		rate float64
	}{
		{"mesh-stlt2", cfg2D(2), 0.25},
		{"mesh-stlt1", cfg2D(1), 0.25},
		{"mesh3d", cfg3D(2), 0.25},
		{"express", cfgExpress(1), 0.25},
		{"express-overload", cfgExpress(1), 0.9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net := NewNetwork(c.cfg)
			gen := bernoulli(c.cfg.Topo, c.rate, 4, Data)
			rng := rand.New(rand.NewSource(5))
			for cycle := int64(0); cycle < 1500; cycle++ {
				for _, spec := range gen.Generate(cycle, rng, nil) {
					if _, err := net.Enqueue(spec); err != nil {
						t.Fatal(err)
					}
				}
				net.Step()
				if cycle%50 == 0 {
					if err := net.CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", cycle, err)
					}
				}
			}
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("final: %v", err)
			}
		})
	}
}

func TestInvariantsByClassBimodal(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Policy = ByClass
	net := NewNetwork(cfg)
	rng := rand.New(rand.NewSource(6))
	for cycle := int64(0); cycle < 2000; cycle++ {
		if rng.Float64() < 0.3 {
			a := topology.NodeID(rng.Intn(36))
			b := topology.NodeID(rng.Intn(36))
			if a != b {
				if _, err := net.Enqueue(Spec{Src: a, Dst: b, Size: 1, Class: Control}); err != nil {
					t.Fatal(err)
				}
				if _, err := net.Enqueue(Spec{Src: b, Dst: a, Size: 4, Class: Data}); err != nil {
					t.Fatal(err)
				}
			}
		}
		net.Step()
		if cycle%100 == 0 {
			if err := net.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
		}
	}
}

// After a full drain, all credits must be restored and all VCs idle.
func TestInvariantsAfterDrain(t *testing.T) {
	cfg := cfgExpress(1)
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.3, 4, Data))
	s.Params = SimParams{Warmup: 0, Measure: 1000, DrainMax: 10000}
	res := s.Run(context.Background())
	if res.Ejected != res.Generated {
		t.Fatalf("did not drain: %v", res.String())
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if net.Occupancy() != 0 {
		t.Fatalf("occupancy %d after drain", net.Occupancy())
	}
	// All credits fully restored.
	for _, r := range net.routers {
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			if !op.hasLink {
				continue
			}
			for vi, c := range op.credits {
				if int(c) != cfg.BufDepth {
					t.Fatalf("router %d %v vc %d credits %d != %d after drain",
						r.id, op.dir, vi, c, cfg.BufDepth)
				}
				if op.reserved[vi] {
					t.Fatalf("router %d %v vc %d still reserved after drain", r.id, op.dir, vi)
				}
			}
		}
	}
}

// Back-to-back packets through the same VC must reallocate it cleanly.
func TestVCReallocation(t *testing.T) {
	cfg := cfg2D(2)
	cfg.VCs = 1 // force every packet through the single VC
	cfg.Policy = AnyFree
	net := NewNetwork(cfg)
	var ejected int
	net.SetEjectHandler(func(p *Packet) { ejected++ })
	for i := 0; i < 10; i++ {
		if _, err := net.Enqueue(Spec{Src: 0, Dst: 3, Size: 4, Class: Data}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000 && !net.Idle(); i++ {
		net.Step()
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if ejected != 10 {
		t.Fatalf("delivered %d/10 with a single VC", ejected)
	}
}

// Fairness: two flows contending for one output port share its
// bandwidth roughly evenly under round-robin arbitration.
func TestArbitrationFairness(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	counts := map[topology.NodeID]int{}
	net.SetEjectHandler(func(p *Packet) { counts[p.Src]++ })
	// Nodes 0 (west of 1) and 2 (east of 1) both flood node 7 via
	// router 1's south port. Keep each source's NI saturated.
	for cycle := 0; cycle < 2500; cycle++ {
		if net.QueuedPackets() < 4 {
			if _, err := net.Enqueue(Spec{Src: 0, Dst: 7, Size: 4, Class: Data}); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Enqueue(Spec{Src: 2, Dst: 7, Size: 4, Class: Data}); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
	}
	a, b := counts[0], counts[2]
	if a == 0 || b == 0 {
		t.Fatalf("a flow starved: %d vs %d", a, b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("unfair sharing: %d vs %d", a, b)
	}
}

func TestNoStallOnHealthyDrain(t *testing.T) {
	cfg := cfg2D(2)
	res := shortSim(cfg, bernoulli(cfg.Topo, 0.3, 4, Data))
	if res.Stalled {
		t.Fatalf("healthy network reported a stall: %v", res.String())
	}
	if res.Ejected != res.Generated {
		t.Fatalf("healthy drain incomplete: %v", res.String())
	}
}

// Property: the full configuration matrix (pipeline depth x speculation
// x look-ahead x arbiter x QoS x policy) delivers all traffic without
// stalls on all three fabrics.
func TestConfigMatrixDelivery(t *testing.T) {
	type variant struct {
		stlt      int
		look      bool
		spec      bool
		arb       ArbPolicy
		qos       bool
		mkCfg     func(int) Config
		fabric    string
		classFrac float64
	}
	var cases []variant
	for _, mk := range []struct {
		name string
		f    func(int) Config
	}{
		{"mesh", cfg2D}, {"mesh3d", cfg3D}, {"express", cfgExpress},
	} {
		for _, stlt := range []int{1, 2} {
			for _, look := range []bool{false, true} {
				for _, spec := range []bool{false, true} {
					cases = append(cases, variant{
						stlt: stlt, look: look, spec: spec,
						arb: ArbPolicy(len(cases) % 2), qos: len(cases)%3 == 0,
						mkCfg: mk.f, fabric: mk.name,
					})
				}
			}
		}
	}
	for i, c := range cases {
		cfg := c.mkCfg(c.stlt)
		cfg.LookaheadRC = c.look
		cfg.SpecSA = c.spec
		cfg.Arb = c.arb
		cfg.QoSPriority = c.qos
		cfg.Seed = int64(i)
		net := NewNetwork(cfg)
		s := NewSim(net, bernoulli(cfg.Topo, 0.15, 4, Data))
		s.Params = SimParams{Warmup: 100, Measure: 800, DrainMax: 6000}
		res := s.Run(context.Background())
		if res.Stalled || res.Ejected != res.Generated {
			t.Fatalf("case %d (%s stlt=%d look=%v spec=%v arb=%v qos=%v): %v",
				i, c.fabric, c.stlt, c.look, c.spec, c.arb, c.qos, res.String())
		}
		if err := net.CheckInvariants(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestLinkLoads(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	// Row-0 eastbound stream: only east links of row 0 carry traffic.
	var done int
	net.SetEjectHandler(func(*Packet) { done++ })
	for i := 0; i < 10; i++ {
		if _, err := net.Enqueue(Spec{Src: 0, Dst: 5, Size: 2, Class: Data}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000 && !net.Idle(); i++ {
		net.Step()
	}
	if done != 10 {
		t.Fatalf("delivered %d/10", done)
	}
	loads := net.LinkLoads()
	if len(loads) != len(cfg.Topo.Links()) {
		t.Fatalf("loads = %d entries, want %d", len(loads), len(cfg.Topo.Links()))
	}
	var east, other int64
	for _, l := range loads {
		row0 := cfg.Topo.Node(l.Src).Coord.Y == 0
		if l.Dir == topology.East && row0 {
			east += l.Flits
		} else {
			other += l.Flits
		}
	}
	if east != 5*10*2 { // 5 hops x 10 packets x 2 flits
		t.Errorf("east flits = %d, want 100", east)
	}
	if other != 0 {
		t.Errorf("non-east links carried %d flits", other)
	}
	net.ResetCounters()
	for _, l := range net.LinkLoads() {
		if l.Flits != 0 {
			t.Fatalf("reset left %d flits on %v/%v", l.Flits, l.Src, l.Dir)
		}
	}
}

func TestPerClassResults(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Policy = ByClass
	gen := GeneratorFunc(func(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
		if rng.Float64() < 0.3 {
			a := topology.NodeID(rng.Intn(36))
			b := topology.NodeID(rng.Intn(36))
			if a != b {
				specs = append(specs,
					Spec{Src: a, Dst: b, Size: 1, Class: Control},
					Spec{Src: b, Dst: a, Size: 4, Class: Data})
			}
		}
		return specs
	})
	res := shortSim(cfg, gen)
	ctrl, data := res.PerClass[Control], res.PerClass[Data]
	if ctrl.Ejected == 0 || data.Ejected == 0 {
		t.Fatalf("missing per-class counts: %+v", res.PerClass)
	}
	if ctrl.Ejected+data.Ejected != res.Ejected {
		t.Errorf("class counts %d+%d != total %d", ctrl.Ejected, data.Ejected, res.Ejected)
	}
	// Data packets are 3 flits longer; their latency must exceed the
	// single-flit control packets' at equal hop distribution.
	if data.AvgLatency <= ctrl.AvgLatency {
		t.Errorf("data latency %.1f should exceed control %.1f", data.AvgLatency, ctrl.AvgLatency)
	}
	// The blended average must lie between the class averages.
	lo, hi := ctrl.AvgLatency, data.AvgLatency
	if res.AvgLatency < lo-1e-9 || res.AvgLatency > hi+1e-9 {
		t.Errorf("blended latency %.2f outside [%.2f, %.2f]", res.AvgLatency, lo, hi)
	}
}

func TestPacketIDsUnique(t *testing.T) {
	net := NewNetwork(cfg2D(2))
	seen := map[int64]bool{}
	for i := 0; i < 20; i++ {
		pkt, err := net.Enqueue(Spec{Src: 0, Dst: 1, Size: 1, Class: Control})
		if err != nil {
			t.Fatal(err)
		}
		if pkt.ID == 0 {
			t.Fatalf("packet ID not assigned")
		}
		if seen[pkt.ID] {
			t.Fatalf("duplicate packet ID %d", pkt.ID)
		}
		seen[pkt.ID] = true
	}
}

func TestMatrixArbiterEndToEnd(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Arb = ArbMatrix
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.2, 4, Data))
	s.Params = SimParams{Warmup: 200, Measure: 2000, DrainMax: 8000}
	res := s.Run(context.Background())
	if res.Ejected != res.Generated {
		t.Fatalf("matrix-arbiter network lost packets: %v", res.String())
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Zero-load latency must be identical to the round-robin build
	// (arbiters only matter under contention).
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: 1, Size: 1, Class: Control})
	if lat := pkt.EjectedAt - pkt.CreatedAt; lat != 11 {
		t.Errorf("matrix zero-load latency = %d, want 11", lat)
	}
}

// The latency histogram must be populated and consistent with the mean.
func TestLatencyHistogram(t *testing.T) {
	cfg := cfg2D(2)
	res := shortSim(cfg, bernoulli(cfg.Topo, 0.1, 4, Data))
	h := res.LatencyHistogram()
	if h == nil || h.N() != res.Ejected {
		t.Fatalf("histogram N = %v, want %d", h, res.Ejected)
	}
	if d := h.Mean() - res.AvgLatency; d > 0.5 || d < -0.5 {
		t.Errorf("histogram mean %.2f vs avg latency %.2f", h.Mean(), res.AvgLatency)
	}
	if res.P99Latency < int(res.AvgLatency) {
		t.Errorf("P99 %d below mean %.1f", res.P99Latency, res.AvgLatency)
	}
}
