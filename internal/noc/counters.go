package noc

// Counters accumulates the switching activity a router performs; the
// power model (internal/power) converts these into energy. Weighted
// variants scale each event by the fraction of datapath layers the flit
// kept awake, which models the short-flit layer-shutdown technique of
// §3.2.1: a short flit in a 4-layer 3DM router only charges 1/4 of the
// buffer bit-lines, crossbar wires and link wires.
type Counters struct {
	BufWrites int64 // flits written into input buffers
	BufReads  int64 // flits read out of input buffers
	XbarFlits int64 // crossbar traversals
	LinkFlits int64 // inter-router link traversals
	ExpFlits  int64 // subset of LinkFlits on express channels
	VertFlits int64 // subset of LinkFlits on vertical (TSV) links
	D2DFlits  int64 // subset of LinkFlits crossing a die-to-die link
	SAGrants  int64 // switch-allocator grants
	VAGrants  int64 // VC-allocator grants
	SAReqs    int64 // switch-allocator requests (incl. failed)
	VAReqs    int64 // VC-allocator requests (incl. failed)
	RCOps     int64 // route computations
	// CreditStalls counts switch-eligible flits skipped because their
	// output VC had no downstream credit — the per-router backpressure
	// signal the observability sampler tracks over time.
	CreditStalls int64
	// SerStalls counts switch-eligible flits skipped because their
	// output port's serializing die-to-die link was still streaming an
	// earlier flit (narrow-link occupancy, the chiplet analogue of
	// CreditStalls).
	SerStalls int64

	// Layer-shutdown-weighted datapath activity.
	WBufWrites float64
	WBufReads  float64
	WXbarFlits float64
	WLinkFlits float64

	// LinkMMFlits is the sum over link traversals of link length (mm);
	// WLinkMMFlits is the same weighted by active-layer fraction.
	LinkMMFlits  float64
	WLinkMMFlits float64
}

// Add folds other into c.
func (c *Counters) Add(other *Counters) {
	c.BufWrites += other.BufWrites
	c.BufReads += other.BufReads
	c.XbarFlits += other.XbarFlits
	c.LinkFlits += other.LinkFlits
	c.ExpFlits += other.ExpFlits
	c.VertFlits += other.VertFlits
	c.D2DFlits += other.D2DFlits
	c.SAGrants += other.SAGrants
	c.VAGrants += other.VAGrants
	c.SAReqs += other.SAReqs
	c.VAReqs += other.VAReqs
	c.RCOps += other.RCOps
	c.CreditStalls += other.CreditStalls
	c.SerStalls += other.SerStalls
	c.WBufWrites += other.WBufWrites
	c.WBufReads += other.WBufReads
	c.WXbarFlits += other.WXbarFlits
	c.WLinkFlits += other.WLinkFlits
	c.LinkMMFlits += other.LinkMMFlits
	c.WLinkMMFlits += other.WLinkMMFlits
}
