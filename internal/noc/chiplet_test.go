package noc

import (
	"runtime"
	"testing"

	"mira/internal/routing"
	"mira/internal/topology"
)

func cfgChiplet(lat, ser int, express bool) Config {
	c := cfg2D(1)
	c.Topo = topology.NewChipGrid(topology.ChipGridSpec{
		ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4,
		PitchMM: 3.1, D2DLatency: lat, D2DSerCycles: ser, Express: express,
	})
	c.Alg = routing.ChipDOR{}
	return c
}

// TestChipGridUnitTimingMatchesMesh pins the tentpole equivalence: a
// 2x2 grid of 4x4 chips with 1-cycle full-width d2d channels simulates
// bit-identically to the monolithic 8x8 mesh it tiles — same latencies,
// same hop counts, same switching activity (only link millimetres and
// the d2d attribution differ, since the gap-crossing wires are longer).
func TestChipGridUnitTimingMatchesMesh(t *testing.T) {
	run := func(cfg Config) Result {
		cfg.Seed = 42
		return shortSim(cfg, bernoulli(cfg.Topo, 0.12, 4, Data))
	}
	chip := cfgChiplet(1, 1, false)
	mesh := cfg2D(1)
	mesh.Topo = topology.NewMesh2D(8, 8, 3.1)
	a, b := run(chip), run(mesh)
	if a.AvgLatency != b.AvgLatency || a.AvgHops != b.AvgHops ||
		a.Generated != b.Generated || a.Ejected != b.Ejected {
		t.Fatalf("chip grid diverges from monolithic mesh:\n  grid %v\n  mesh %v", a.String(), b.String())
	}
	ca, cb := a.Counters, b.Counters
	if ca.BufWrites != cb.BufWrites || ca.BufReads != cb.BufReads ||
		ca.XbarFlits != cb.XbarFlits || ca.LinkFlits != cb.LinkFlits ||
		ca.SAGrants != cb.SAGrants || ca.VAGrants != cb.VAGrants ||
		ca.CreditStalls != cb.CreditStalls {
		t.Fatalf("activity diverges:\n  grid %+v\n  mesh %+v", ca, cb)
	}
	if ca.SerStalls != 0 || cb.D2DFlits != 0 {
		t.Fatalf("full-width grid stalled (%d) or mesh crossed dies (%d)", ca.SerStalls, cb.D2DFlits)
	}
	if ca.D2DFlits == 0 {
		t.Fatal("grid traffic never crossed a die boundary")
	}
}

// twoChipPacket runs one packet across the single d2d link of a
// 2x1-chip grid of 1x1-node dies and returns its latency.
func twoChipPacket(t *testing.T, lat, ser, size int) int64 {
	t.Helper()
	c := cfg2D(2)
	c.Topo = topology.NewChipGrid(topology.ChipGridSpec{
		ChipsX: 2, ChipsY: 1, NodesX: 1, NodesY: 1,
		PitchMM: 3.1, D2DLatency: lat, D2DSerCycles: ser,
	})
	c.Alg = routing.ChipDOR{}
	pkt := onePacket(t, c, Spec{Src: 0, Dst: 1, Size: size, Class: Data})
	return pkt.EjectedAt - pkt.CreatedAt
}

// TestChipletD2DLatency pins the d2d latency model at zero load: the
// 1-hop 1-flit baseline is 11 cycles (TestZeroLoadLatencySeparateSTLT),
// and each extra cycle of channel latency adds exactly one cycle.
func TestChipletD2DLatency(t *testing.T) {
	base := twoChipPacket(t, 1, 1, 1)
	if base != 11 {
		t.Fatalf("1-cycle d2d baseline latency = %d, want 11", base)
	}
	for _, lat := range []int{2, 5, 16} {
		got := twoChipPacket(t, lat, 1, 1)
		if want := base + int64(lat-1); got != want {
			t.Errorf("d2d lat=%d: latency %d, want %d", lat, got, want)
		}
	}
}

type probeFn func(ProbeEvent)

func (f probeFn) ProbeEvent(e ProbeEvent) { f(e) }

// TestChipletSerialization pins the narrow-channel model: a flit
// occupies the link for ser cycles, so the head arrives ser-1 cycles
// late (single-flit latency grows by exactly ser-1) and consecutive
// flits of a packet leave the upstream router exactly ser cycles
// apart, never faster.
func TestChipletSerialization(t *testing.T) {
	for _, ser := range []int{2, 4, 8} {
		base := twoChipPacket(t, 1, 1, 1)
		if got, want := twoChipPacket(t, 1, ser, 1), base+int64(ser-1); got != want {
			t.Errorf("ser=%d single flit: latency %d, want %d", ser, got, want)
		}
	}
	for _, c := range []struct{ ser, size int }{{1, 4}, {2, 4}, {4, 4}, {8, 5}} {
		cfg := cfg2D(2)
		cfg.Topo = topology.NewChipGrid(topology.ChipGridSpec{
			ChipsX: 2, ChipsY: 1, NodesX: 1, NodesY: 1,
			PitchMM: 3.1, D2DLatency: 1, D2DSerCycles: c.ser,
		})
		cfg.Alg = routing.ChipDOR{}
		net := NewNetwork(cfg)
		var departs []int64
		net.SetProbe(probeFn(func(e ProbeEvent) {
			if e.Kind == ProbeLink && e.Router == 0 {
				departs = append(departs, e.Cycle)
			}
		}))
		var done *Packet
		net.SetEjectHandler(func(p *Packet) { done = p })
		if _, err := net.Enqueue(Spec{Src: 0, Dst: 1, Size: c.size, Class: Data}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200 && done == nil; i++ {
			net.Step()
		}
		if done == nil {
			t.Fatalf("ser=%d size=%d: packet not delivered", c.ser, c.size)
		}
		if len(departs) != c.size {
			t.Fatalf("ser=%d size=%d: %d link traversals, want %d", c.ser, c.size, len(departs), c.size)
		}
		for i := 1; i < len(departs); i++ {
			if gap := departs[i] - departs[i-1]; gap != int64(c.ser) {
				t.Errorf("ser=%d size=%d: flits %d,%d depart %d apart, want exactly %d (occupancy-limited, back-to-back)",
					c.ser, c.size, i-1, i, gap, c.ser)
			}
		}
	}
}

// TestChipletDeterminismSuite runs the 2x2 chip-grid fabric (multi-cycle
// serializing d2d channels plus express links) across every step mode
// and a sweep of shard counts — including counts that misalign with the
// chip boundaries — and requires bit-identical results everywhere, full
// delivery (reachability/no-deadlock), and survival of checked mode's
// per-cycle invariants. Run under -race in CI, this is also the
// concurrency-safety proof for latency-stamped cross-shard events.
func TestChipletDeterminismSuite(t *testing.T) {
	run := func(mode StepMode, shards int) Result {
		cfg := cfgChiplet(4, 2, true)
		cfg.Seed = 7
		cfg.Mode = mode
		cfg.Shards = shards
		return shortSim(cfg, bernoulli(cfg.Topo, 0.1, 4, Data))
	}
	ref := run(StepActivity, 1)
	if ref.Generated == 0 || ref.Ejected != ref.Generated {
		t.Fatalf("reference run did not deliver all traffic: %v", ref.String())
	}
	for _, mode := range []StepMode{StepActivity, StepFullScan, StepChecked} {
		// 3, 5 and 7 shards split mid-chip; correctness must not depend
		// on shard boundaries aligning with chip boundaries.
		for _, shards := range []int{1, 2, 3, 4, 5, 7, AutoShards} {
			got := run(mode, shards)
			if got.AvgLatency != ref.AvgLatency || got.AvgHops != ref.AvgHops ||
				got.Generated != ref.Generated || got.Ejected != ref.Ejected ||
				got.Counters != ref.Counters {
				t.Fatalf("mode=%v shards=%d diverges:\n  got %v\n  ref %v", mode, shards, got.String(), ref.String())
			}
		}
	}
}

// TestAutoShardsHeuristic pins the -shards=-1 resolution rule: one
// shard per autoShardRouters routers, capped by GOMAXPROCS, tiny meshes
// sequential.
func TestAutoShardsHeuristic(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct{ routers, want int }{
		{1, 1},
		{63, 1},
		{64, 1},
		{128, min(2, p)},
		{1024, min(16, p)},
		{1 << 20, p},
	}
	for _, c := range cases {
		if got := autoShards(c.routers); got != c.want {
			t.Errorf("autoShards(%d) = %d, want %d (GOMAXPROCS %d)", c.routers, got, c.want, p)
		}
	}
}
