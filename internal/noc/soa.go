package noc

import (
	"fmt"
	"math/bits"

	"mira/internal/topology"
)

// Struct-of-arrays router state. The router pipeline's hot state — VC
// ring buffers, VC control scalars (state, head/length, route, ready
// cycle), output credits and reservations, arbiter rotors, pending-list
// storage and per-cycle scratch — lives in contiguous per-Network
// arrays, one allocation per kind, indexed by flat (router, port, vc).
// Stage loops therefore walk dense typed slices instead of chasing
// pointers across per-router/per-port/per-VC heap objects, which is
// what dominated per-cycle cost at high injection rates once
// allocations (PR 1) and idle work (PR 2) were gone.
//
// # Index math
//
// Routers may have different port counts (mesh edges, express and
// vertical links), so each router r is assigned two base offsets at
// construction time:
//
//	vcBase(r)   — r's first slot in every per-VC array
//	portBase(r) — r's first slot in every per-port array
//
// Within a router, input and output ports share indices (topologies are
// symmetric), and the local flat VC index is f = pi*VCs + vi, exactly
// the request index the VA/SA arbiters have always used. The global
// slots are then vcBase(r)+f for per-VC arrays, portBase(r)+oi for
// per-port arrays, and (portBase(r)+oi)*VCs+ov for per-(output
// port, VC) arrays. VC f's ring storage is the fixed-size window
// bufs[(vcBase(r)+f)*BufDepth : ...+BufDepth].
//
// # Ownership: arrays are the state, the object graph is a view
//
// Network.soa owns the backing arrays. Each Router holds sub-slices of
// them covering exactly its own window (bound once in NewNetwork), so
// router code keeps indexing by local f with no base arithmetic, and
// the per-router views alias — not copy — the flat state. inputPort
// and outputPort survive as construction/observability views carrying
// only topology metadata (direction, link, upstream) plus, on the
// output side, credit/reserved sub-slices that alias the same backing
// arrays. The two representations cannot diverge because there is only
// one storage location per datum; TestSoAViewAliasing pins this by
// mutating through one representation and reading through the other.
//
// # Why bit-identity holds
//
// The flattening moves bytes, not decisions: every stage loop visits
// the same (router, port, vc) tuples in the same order as before, the
// arbiters receive identical request vectors over identical flat
// indices (arbState reimplements the round-robin rotor verbatim and
// delegates to the same Matrix state otherwise), and cross-router
// interaction still flows exclusively through the event ring. The VC
// ring buffer replaces the old append/compact slice but preserves
// FIFO order and the arrived-cycle tags, so eligibility tests see the
// same values. The checked step mode and the golden determinism tests
// verify the result streams are byte-identical across all step modes,
// pipeline variants and worker counts.
type soaState struct {
	// Per-VC control scalars, indexed by vcBase(r) + pi*VCs + vi.
	vcState   []vcState
	vcHead    []int32 // ring read position, in [0, BufDepth)
	vcLen     []int32 // ring occupancy, in [0, BufDepth]
	vcReadyAt []int64 // earliest cycle for the pending stage
	// vcFrontAt caches the arrival cycle of each VC's front flit (valid
	// while occupancy > 0, maintained by vcPush/vcPop), so the SA
	// eligibility scan reads one dense lane instead of chasing into the
	// ring storage; CheckInvariants cross-checks it against the ring.
	vcFrontAt []int64
	vcOutDir  []topology.Dir
	vcOutPort []int8 // routed output port index, -1 until RC
	vcOutVC   []int8 // allocated output VC, valid while active
	// vcClass caches the front head flit's message class from RC until
	// the packet releases the channel, so the VA candidate scans read a
	// dense array instead of dereferencing the buffered flit.
	vcClass []Class
	// vcInFly counts flits already written into the VC's ring slots by
	// an upstream forward but not yet delivered (the event ring holds
	// their arrival notices). Occupancy-wise they are invisible until
	// delivery; the count positions the next upstream write.
	vcInFly []int8

	// Ring storage: BufDepth slots per VC, flits and arrival cycles in
	// parallel arrays so eligibility scans touch only the int64 lane.
	bufFlit    []Flit
	bufArrived []int64

	// Per-(output port, VC) flow control, indexed by
	// (portBase(r)+oi)*VCs + ov.
	reserved []bool
	credits  []int32

	// Arbiter state, indexed by (portBase(r)+oi)*(1+VCs): the SA
	// arbiter first, then the VCs' VA arbiters. Round-robin rotors live
	// inline; matrix arbiters hang off a pointer (their n x n priority
	// state has no fixed-size slot).
	arbs []arbState

	// Per-port switch occupancy, indexed by portBase(r) + pi/oi. Each
	// entry stores the cycle the port was last claimed in, so "busy this
	// cycle" is a comparison and no per-cycle clearing pass is needed.
	inBusy  []int64
	outBusy []int64
	// serFree is the per-output-port link-class lane: the first cycle
	// the port's serializing d2d link is free again. Only ports flagged
	// in Router.serMask ever read or write it.
	serFree []int64

	// Pending-list storage: each router's listRC/listVA/listSA is a
	// zero-length, fixed-capacity sub-slice of these (capacity = its VC
	// count, the upper bound since a VC is in at most one list), so
	// appends stay in place and never allocate. listPos, the per-cycle
	// scratch (reqScratch/eligibleOut/saRank/eligStore) and the
	// per-output aggregates (waiters/saCount/saLast) follow the same
	// windowing.
	listRC, listVA, listSA []int32
	listPos                []int32
	portOf, vcOf           []int8
	// ownerOf maps a global flat VC index back to its router's index,
	// so event delivery decodes an int32 arrival word without any
	// per-event metadata.
	ownerOf      []int32
	reqScratch   []bool
	eligibleOut  []int8
	saRank       []int8
	eligStore    []int32
	waitersByOut []int32
	saHead       []int32
	saCount      []int8
	saLast       []int32
}

// newSoAState allocates the flat arrays for totalVCs flat VC slots and
// totalPorts ports under the given configuration.
func newSoAState(cfg *Config, totalVCs, totalPorts int) soaState {
	pv := totalPorts * cfg.VCs
	st := soaState{
		vcState:      make([]vcState, totalVCs),
		vcHead:       make([]int32, totalVCs),
		vcLen:        make([]int32, totalVCs),
		vcReadyAt:    make([]int64, totalVCs),
		vcFrontAt:    make([]int64, totalVCs),
		vcOutDir:     make([]topology.Dir, totalVCs),
		vcOutPort:    make([]int8, totalVCs),
		vcOutVC:      make([]int8, totalVCs),
		vcClass:      make([]Class, totalVCs),
		vcInFly:      make([]int8, totalVCs),
		bufFlit:      make([]Flit, totalVCs*cfg.BufDepth),
		bufArrived:   make([]int64, totalVCs*cfg.BufDepth),
		reserved:     make([]bool, pv),
		credits:      make([]int32, pv),
		arbs:         make([]arbState, totalPorts*(1+cfg.VCs)),
		inBusy:       make([]int64, totalPorts),
		outBusy:      make([]int64, totalPorts),
		serFree:      make([]int64, totalPorts),
		listRC:       make([]int32, totalVCs),
		listVA:       make([]int32, totalVCs),
		listSA:       make([]int32, totalVCs),
		listPos:      make([]int32, totalVCs),
		portOf:       make([]int8, totalVCs),
		vcOf:         make([]int8, totalVCs),
		ownerOf:      make([]int32, totalVCs),
		reqScratch:   make([]bool, totalVCs),
		eligibleOut:  make([]int8, totalVCs),
		saRank:       make([]int8, totalVCs),
		eligStore:    make([]int32, totalVCs),
		waitersByOut: make([]int32, totalPorts),
		saHead:       make([]int32, totalPorts),
		saCount:      make([]int8, totalPorts),
		saLast:       make([]int32, totalPorts),
	}
	return st
}

// arbState is one allocator arbiter flattened into the per-network
// array. Under ArbRoundRobin the whole state is the rotor; under
// ArbMatrix it delegates to the shared Matrix implementation. Both
// reproduce the exported Arbiter implementations decision for
// decision, which the cross-policy equivalence test pins.
type arbState struct {
	next int32
	n    int32 // request-vector length (wrap point of the rotor)
	m    *Matrix
}

func (a *arbState) init(p ArbPolicy, n int) {
	a.n = int32(n)
	if p == ArbMatrix {
		a.m = NewMatrix(n)
	}
}

// grant returns the winning index among the set bits of reqs, or -1.
// The round-robin path is RoundRobin.Grant with the rotor inline: two
// linear passes, no modulo.
func (a *arbState) grant(reqs []bool) int {
	if a.m != nil {
		return a.m.Grant(reqs)
	}
	for i := int(a.next); i < len(reqs); i++ {
		if reqs[i] {
			a.next = int32(i + 1)
			if int(a.next) == len(reqs) {
				a.next = 0
			}
			return i
		}
	}
	for i := 0; i < int(a.next) && i < len(reqs); i++ {
		if reqs[i] {
			a.next = int32(i + 1)
			return i
		}
	}
	return -1
}

// grantMask is grant with the request vector as a bitmask over flat VC
// indices; callers use it only when the router has at most 64 flat VCs
// (Router.arbMask). Bit-for-bit it makes the same decision as grant on
// the equivalent []bool: the rotor scan becomes a shift plus a
// trailing-zeros count. The matrix policy has no mask form, so reqs (the
// all-false scratch) is materialized around the delegated call.
func (a *arbState) grantMask(mask uint64, reqs []bool) int {
	if a.m != nil {
		for m := mask; m != 0; m &= m - 1 {
			reqs[bits.TrailingZeros64(m)] = true
		}
		g := a.m.Grant(reqs)
		for m := mask; m != 0; m &= m - 1 {
			reqs[bits.TrailingZeros64(m)] = false
		}
		return g
	}
	if m := mask >> uint(a.next); m != 0 {
		// First pass of grant: lowest set bit at index >= next.
		i := int(a.next) + bits.TrailingZeros64(m)
		a.next = int32(i + 1)
		if a.next == a.n {
			a.next = 0
		}
		return i
	}
	if mask == 0 {
		return -1
	}
	// Wrap-around pass: every remaining set bit is below next. As in
	// grant's second loop, the rotor is not wrapped here.
	i := bits.TrailingZeros64(mask)
	a.next = int32(i + 1)
	return i
}

// grantSingle records a grant to the sole requester i, advancing the
// state exactly like grant with only bit i set.
func (a *arbState) grantSingle(i int) {
	if a.m != nil {
		a.m.GrantSingle(i)
		return
	}
	a.next = int32(i + 1)
}

// saArb returns the switch arbiter of output port oi.
func (r *Router) saArb(oi int) *arbState { return &r.arbs[oi*(1+r.vcsPerPort)] }

// vaArb returns the VA arbiter of output VC ov on port oi.
func (r *Router) vaArb(oi, ov int) *arbState { return &r.arbs[oi*(1+r.vcsPerPort)+1+ov] }

// VC ring-buffer operations. Each VC owns a fixed window of BufDepth
// slots; head/len advance modulo the depth (written as compare-and-
// subtract — no division). Fixed capacity is itself an invariant: the
// old slice-backed buffers were allocated at 2x depth and relied on
// credit accounting alone to stay within depth, whereas the ring makes
// an overflow physically impossible to store, so vcPush panics with
// the exact (router, port, vc) coordinates on any credit bug.

// vcOcc returns the buffer occupancy in flits of local flat VC f (what
// credits account against).
func (r *Router) vcOcc(f int) int { return int(r.vcLen[f]) }

// vcFrontFlit returns a pointer to the oldest buffered flit of VC f,
// or nil when empty.
func (r *Router) vcFrontFlit(f int) *Flit {
	if r.vcLen[f] == 0 {
		return nil
	}
	return &r.bufFlit[f*r.bufDepth+int(r.vcHead[f])]
}

// vcFrontArrived returns the arrival cycle of the oldest buffered flit
// of VC f; the caller guarantees occupancy. It reads the dense front
// cache rather than the ring storage.
func (r *Router) vcFrontArrived(f int) int64 {
	return r.vcFrontAt[f]
}

// vcPush appends a flit to VC f's ring. Overflow means a credit
// accounting bug upstream; the panic names the exact buffer. Two paths
// push: the NI injection path (local-port VCs, which never carry link
// traffic) and cross-shard mailbox delivery (deliverMailArrival; a
// channel fed from another shard never holds send-time reservations,
// so vcInFly stays 0 on it) — in both cases vcLen alone positions the
// slot and can never collide with a vcReserveGlobal reservation.
func (r *Router) vcPush(f int, flit Flit, arrivedAt int64) {
	if int(r.vcLen[f]) >= r.bufDepth {
		pi, vi := f/r.vcsPerPort, f%r.vcsPerPort
		panic(fmt.Sprintf("noc: router %d port %d (%v) vc %d buffer overflow (credit bug)",
			r.id, pi, r.inPorts[pi].dir, vi))
	}
	slot := int(r.vcHead[f]) + int(r.vcLen[f])
	if slot >= r.bufDepth {
		slot -= r.bufDepth
	}
	r.bufFlit[f*r.bufDepth+slot] = flit
	r.bufArrived[f*r.bufDepth+slot] = arrivedAt
	if r.vcLen[f] == 0 {
		r.vcFrontAt[f] = arrivedAt
	}
	r.vcLen[f]++
}

// vcReserveGlobal writes a flit in flight over a link directly into its
// future ring slot of the VC with global flat index gi, arriving at
// cycle arriveAt. Deliveries are FIFO per VC (one flit per link per
// cycle) and pops leave head+len invariant, so the slot computed here —
// after the buffered flits and the earlier in-flight ones — is exactly
// where the matching arrival event (vcArrive) will expose it. The flit
// therefore crosses the network with a single copy instead of bouncing
// through the event ring. It addresses the flat arrays by the global
// index the sender precomputed (outputPort.downVCBase), so the forward
// path never touches the downstream router header at all. Overflow
// means a credit accounting bug upstream, as in vcPush.
//
// forward (router.go) repeats this body inline — the compiler's budget
// won't inline it and the call sits on the simulator's busiest line —
// so changes here must be mirrored there. Tests exercise this copy.
func (n *Network) vcReserveGlobal(gi int32, flit *Flit, arriveAt int64) {
	st := &n.soa
	depth := n.cfg.BufDepth
	occ := int(st.vcLen[gi]) + int(st.vcInFly[gi])
	if occ >= depth {
		n.reserveOverflow(gi)
	}
	slot := int(st.vcHead[gi]) + occ
	if slot >= depth {
		slot -= depth
	}
	st.bufFlit[int(gi)*depth+slot] = *flit
	st.bufArrived[int(gi)*depth+slot] = arriveAt
	st.vcInFly[gi]++
}

// reserveOverflow reconstructs the (router, port, vc) coordinates of
// the overflowing global VC slot and panics, matching vcPush's message.
// It lives outside vcReserveGlobal to keep the hot path inlinable.
func (n *Network) reserveOverflow(gi int32) {
	r := &n.routers[n.soa.ownerOf[gi]]
	fi := int(gi - r.vcBase)
	pi, vi := fi/r.vcsPerPort, fi%r.vcsPerPort
	panic(fmt.Sprintf("noc: router %d port %d (%v) vc %d buffer overflow (credit bug)",
		r.id, pi, r.inPorts[pi].dir, vi))
}

// vcArrive exposes the oldest in-flight flit of VC f (written earlier
// by vcReserveSlot) as buffered, returning a pointer to it. The caller
// is the evFlit delivery in Step, at exactly the cycle vcReserveSlot
// stamped as its arrival.
func (r *Router) vcArrive(f int) *Flit {
	slot := int(r.vcHead[f]) + int(r.vcLen[f])
	if slot >= r.bufDepth {
		slot -= r.bufDepth
	}
	r.vcInFly[f]--
	if r.vcLen[f] == 0 {
		r.vcFrontAt[f] = r.bufArrived[f*r.bufDepth+slot]
	}
	r.vcLen[f]++
	return &r.bufFlit[f*r.bufDepth+slot]
}

// vcPop removes and returns the oldest buffered flit of VC f; the
// caller guarantees occupancy.
func (r *Router) vcPop(f int) Flit {
	flit := r.bufFlit[f*r.bufDepth+int(r.vcHead[f])]
	r.vcDrop(f)
	return flit
}

// vcDrop removes the front flit of VC f without copying it out; the
// forward path reads it in place (vcFrontFlit) first.
func (r *Router) vcDrop(f int) {
	head := int(r.vcHead[f]) + 1
	if head == r.bufDepth {
		head = 0
	}
	r.vcHead[f] = int32(head)
	r.vcLen[f]--
	if r.vcLen[f] > 0 {
		r.vcFrontAt[f] = r.bufArrived[f*r.bufDepth+head]
	}
}
