package noc

import (
	"math/rand"
	"testing"
)

// runMetered is runModal with an engine meter attached before the first
// step; it returns the ejection stream, the final counters and the
// meter snapshot after the run.
func runMetered(t *testing.T, cfg Config, mode StepMode, rate float64, cycles int64) ([]ejection, Counters, EngineSnapshot) {
	t.Helper()
	cfg.Mode = mode
	net := NewNetwork(cfg)
	m := net.EnableEngineMeter()
	var stream []ejection
	net.SetEjectHandler(func(p *Packet) {
		stream = append(stream, ejection{id: p.ID, ejected: p.EjectedAt, injected: p.InjectedAt, hops: p.Hops})
	})
	gen := bernoulli(cfg.Topo, rate, 4, Data)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for cycle := int64(0); cycle < cycles; cycle++ {
		for _, spec := range gen.Generate(cycle, rng, nil) {
			if _, err := net.Enqueue(spec); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
	}
	for i := int64(0); i < 20000 && !net.Idle(); i++ {
		net.Step()
	}
	net.ReleaseWorkers()
	return stream, net.TotalCounters(), m.Snapshot()
}

// TestEngineMeterPurity pins the out-of-band contract: a run with an
// engine meter attached must produce the exact ejection stream and
// counters of the unmetered run, at every shard count and step mode.
// The meter only reads clocks; nothing it does may steer simulation.
func TestEngineMeterPurity(t *testing.T) {
	for _, mode := range []StepMode{StepActivity, StepFullScan} {
		for _, shards := range []int{1, 2, 4} {
			cfg := cfg2D(2)
			cfg.Seed = 42
			cfg.Shards = shards
			ref, refCnt, _ := runModal(t, cfg, mode, 0.2, 4, 800)
			got, gotCnt, _ := runMetered(t, cfg, mode, 0.2, 800)
			if len(ref) == 0 {
				t.Fatal("no traffic delivered; test is vacuous")
			}
			if len(got) != len(ref) {
				t.Fatalf("mode=%v shards=%d: metered ejection stream diverges: %d vs %d packets", mode, shards, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("mode=%v shards=%d: ejection %d diverges: metered %+v, bare %+v", mode, shards, i, got[i], ref[i])
				}
			}
			if gotCnt != refCnt {
				t.Fatalf("mode=%v shards=%d: counters diverge:\nmetered %+v\nbare    %+v", mode, shards, gotCnt, refCnt)
			}
		}
	}
}

// TestEngineMeterSharded checks the sharded accounting: every shard
// logs busy time and one meter cycle per step, the drain phase is a
// prefix of (and so never exceeds) the busy time, boundary crossings
// are recorded for a mesh cut into shards, and the derived ratios are
// in range.
func TestEngineMeterSharded(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Seed = 7
	cfg.Shards = 4
	_, _, snap := runMetered(t, cfg, StepActivity, 0.2, 800)
	if snap.Cycles == 0 || snap.StepNs <= 0 {
		t.Fatalf("no metered cycles: %+v", snap)
	}
	if len(snap.Shards) != 4 {
		t.Fatalf("want 4 shard stats, got %d", len(snap.Shards))
	}
	for _, s := range snap.Shards {
		if s.Cycles != snap.Cycles {
			t.Fatalf("shard %d cycles %d != total %d", s.Shard, s.Cycles, snap.Cycles)
		}
		if s.BusyNs <= 0 {
			t.Fatalf("shard %d logged no busy time", s.Shard)
		}
		if s.DrainNs < 0 || s.DrainNs > s.BusyNs {
			t.Fatalf("shard %d drain %dns outside busy %dns", s.Shard, s.DrainNs, s.BusyNs)
		}
		if s.Routers <= 0 {
			t.Fatalf("shard %d reports %d routers", s.Shard, s.Routers)
		}
	}
	if len(snap.Mailbox) == 0 {
		t.Fatal("no boundary-mailbox crossings recorded for a sharded mesh under load")
	}
	var flits int64
	for _, mb := range snap.Mailbox {
		if mb.Src == mb.Dst {
			t.Fatalf("self-crossing recorded: %+v", mb)
		}
		flits += mb.Flits
	}
	if flits == 0 {
		t.Fatal("crossing counters recorded no flits")
	}
	if r := snap.ImbalanceRatio(); r < 1 {
		t.Fatalf("imbalance ratio %v < 1", r)
	}
	if u := snap.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("utilization %v out of range", u)
	}
}

// TestEngineMeterSequential checks the single-shard path: whole-cycle
// time lands on shard 0 and nothing ever crosses a boundary.
func TestEngineMeterSequential(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Seed = 7
	_, _, snap := runMetered(t, cfg, StepActivity, 0.2, 400)
	if len(snap.Shards) != 1 {
		t.Fatalf("want 1 shard stat, got %d", len(snap.Shards))
	}
	if snap.Shards[0].BusyNs <= 0 || snap.Shards[0].Cycles != snap.Cycles {
		t.Fatalf("sequential accounting off: %+v", snap)
	}
	if len(snap.Mailbox) != 0 {
		t.Fatalf("sequential run recorded crossings: %+v", snap.Mailbox)
	}
	if r := snap.ImbalanceRatio(); r != 1 {
		t.Fatalf("single-shard imbalance ratio %v != 1", r)
	}
}
