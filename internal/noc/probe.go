package noc

import "mira/internal/topology"

// ProbeKind tags one observable event in a flit's life. The six kinds
// cover the full path of §3.2's router pipeline: creation at the source
// NI, the RC/VA/SA stages, the link traversal, and the ejection at the
// destination NI.
type ProbeKind uint8

// Probe event kinds, in the order a flit experiences them.
const (
	// ProbeInject fires when a flit leaves its source NI and is written
	// into the local input buffer of its source router.
	ProbeInject ProbeKind = iota
	// ProbeRoute fires when a head flit's output port is computed (the
	// RC stage, or the upstream look-ahead computation).
	ProbeRoute
	// ProbeVCAlloc fires when a head flit wins an output virtual
	// channel (the VA stage).
	ProbeVCAlloc
	// ProbeSAGrant fires when a flit wins the crossbar (the SA stage,
	// including speculative grants) and starts switch traversal.
	ProbeSAGrant
	// ProbeLink fires when a flit is sent over an inter-router link
	// (ejecting flits traverse the switch but no link).
	ProbeLink
	// ProbeEject fires when a flit leaves the network at its
	// destination NI.
	ProbeEject
	// NumProbeKinds is the number of distinct event kinds.
	NumProbeKinds
)

func (k ProbeKind) String() string {
	switch k {
	case ProbeInject:
		return "inject"
	case ProbeRoute:
		return "route"
	case ProbeVCAlloc:
		return "vcalloc"
	case ProbeSAGrant:
		return "sagrant"
	case ProbeLink:
		return "link"
	case ProbeEject:
		return "eject"
	}
	return "unknown"
}

// ParseProbeKind converts a serialized kind name back to its value.
func ParseProbeKind(s string) (ProbeKind, bool) {
	for k := ProbeKind(0); k < NumProbeKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// ProbeEvent is one pipeline event, passed to the attached Probe by
// value (emitting an event never allocates). Router identifies where
// the event happened; Dir and VC identify the output port and virtual
// channel for route/VC-alloc/SA/link events (Dir is Local and VC the
// injection VC for inject events; both are zero for eject events, where
// the flit has left the router).
type ProbeEvent struct {
	Kind   ProbeKind
	Cycle  int64
	Router topology.NodeID
	Dir    topology.Dir
	VC     int8
	Flit   Flit
}

// Probe observes router-pipeline events. A probe is attached to a
// Network with SetProbe; a nil probe costs a single pointer check per
// emission site, which keeps the simulator's hot path unaffected when
// nothing is observing (see BenchmarkStepUR vs BenchmarkStepURNilProbe).
//
// Events are emitted in a deterministic order: for a fixed scenario and
// step mode the stream is bit-reproducible. Across step modes
// (activity vs fullscan vs checked) the inject, VC-alloc, SA-grant,
// link and eject sequences are identical event for event, because their
// emission sites sit in the shared stage helpers (forward, inject,
// event delivery) or at the matched grant points of the paired stage
// implementations. Route events match as a per-cycle set but may
// interleave differently within one cycle — the RC stage carries no
// arbitration, so the activity path visits its pending list in
// insertion order while the full scan visits port order.
//
// Per flit, the stream satisfies a span-folding contract (relied on by
// internal/obs's Replay and SpanBuilder): inject is the flit's first
// event — even under look-ahead routing, where the route event fires in
// the same cycle — eject is its last, cycles never decrease in between,
// and each router visit emits its stage events in pipeline order
// (route, VC alloc, switch grant, link). Body and tail flits inherit
// the head's route and VC, so their visits carry switch-grant (and
// link) events only.
//
// Implementations must not mutate the network from inside a callback;
// the event's Flit shares the live *Packet.
type Probe interface {
	ProbeEvent(ev ProbeEvent)
}

// SetProbe attaches p to the network (nil detaches). The probe observes
// every subsequent pipeline event; attach before the first Step for a
// complete trace.
//
// Under sequential stepping the emission sites call p directly. Under
// sharded stepping they call the per-shard buffering sinks instead, and
// the serial epilogue of Step merges the buffers into the canonical
// event order before replaying them into p (shard.go), so the stream p
// sees is byte-identical at any shard count.
func (n *Network) SetProbe(p Probe) {
	n.probe = p
	sharded := len(n.shards) > 1
	for i := range n.shards {
		sh := &n.shards[i]
		switch {
		case p == nil:
			sh.probe, sh.stamp = nil, false
		case sharded:
			sh.probe, sh.stamp = sh, true
		default:
			sh.probe, sh.stamp = p, false
		}
	}
}

// Instrumentation accessors: read-only views of live router state for
// the cycle sampler (internal/obs). All are O(ports·VCs) or cheaper and
// never mutate the router.

// ID returns the router's node ID.
func (r *Router) ID() topology.NodeID { return r.id }

// Occupancy returns the flits currently buffered across all of the
// router's input VCs.
func (r *Router) Occupancy() int { return r.occupancy() }

// NumInVCs returns the number of input VCs (ports × VCs per port).
func (r *Router) NumInVCs() int { return len(r.inPorts) * r.vcsPerPort }

// VCOccupancy returns the buffered flits in input VC vi of port pi.
func (r *Router) VCOccupancy(pi, vi int) int { return r.vcOcc(r.flatVC(pi, vi)) }

// VCOccupancies appends the per-input-VC buffer occupancies (flits) in
// flat (port, vc) order to dst and returns the extended slice, so a
// per-window sampler can reuse one backing array.
func (r *Router) VCOccupancies(dst []int) []int {
	for _, l := range r.vcLen {
		dst = append(dst, int(l))
	}
	return dst
}
