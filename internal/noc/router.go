package noc

import (
	"fmt"
	"math/bits"

	"mira/internal/topology"
)

// vcState is the input-VC control state machine: a head flit performs
// route computation (RC), then virtual-channel allocation (VA), then the
// whole packet streams through switch allocation (SA) until the tail
// releases the channel.
type vcState uint8

const (
	vcIdle vcState = iota
	vcRouting
	vcWaitVC
	vcActive
)

func (s vcState) String() string {
	switch s {
	case vcIdle:
		return "idle"
	case vcRouting:
		return "routing"
	case vcWaitVC:
		return "wait-vc"
	default:
		return "active"
	}
}

// bufFlit is a buffered flit with its arrival cycle; a flit only becomes
// eligible for switch allocation the cycle after it was written (buffer
// write and read cannot overlap for the same flit).
type bufFlit struct {
	flit      Flit
	arrivedAt int64
}

type inputVC struct {
	// buf[head:] holds the queued flits, oldest first. Popping advances
	// head instead of shifting the slice; push compacts once the backing
	// array (sized 2x the buffer depth) fills, so dequeues are O(1)
	// amortized instead of a memmove per forwarded flit.
	buf     []bufFlit
	head    int
	state   vcState
	outDir  topology.Dir
	outPort int8 // routeHead's cached outIndex[outDir]
	outVC   int
	readyAt int64 // earliest cycle for the pending stage (RC/VA/SA)
}

// occ is the buffer occupancy in flits (what credits account against).
func (v *inputVC) occ() int { return len(v.buf) - v.head }

func (v *inputVC) front() *bufFlit {
	if v.head == len(v.buf) {
		return nil
	}
	return &v.buf[v.head]
}

func (v *inputVC) push(bf bufFlit) {
	if len(v.buf) == cap(v.buf) && v.head > 0 {
		n := copy(v.buf, v.buf[v.head:])
		v.buf = v.buf[:n]
		v.head = 0
	}
	v.buf = append(v.buf, bf)
}

func (v *inputVC) pop() bufFlit {
	bf := v.buf[v.head]
	v.head++
	if v.head == len(v.buf) {
		v.buf = v.buf[:0]
		v.head = 0
	}
	return bf
}

type inputPort struct {
	dir topology.Dir
	vcs []inputVC
	// upstream is the neighbouring router feeding this port, or -1 for
	// the local NI; credits for popped flits return to it.
	upstream topology.NodeID
}

type outputPort struct {
	dir     topology.Dir
	link    topology.Link // zero unless dir != Local
	hasLink bool
	// reserved marks output VCs currently owned by an in-flight packet;
	// credits counts free buffer slots in the downstream input VC.
	reserved []bool
	credits  []int
	// saArb arbitrates the switch among all input VCs; vaArbs[ov]
	// arbitrates output VC ov among competing head flits (the per-VC
	// PV:1 arbiters of the VA2 stage, §3.2.5).
	saArb  Arbiter
	vaArbs []Arbiter
	// flitCount tallies flits sent over this port's link, for the
	// per-link utilization report.
	flitCount int64
}

// Router is one network router instance.
type Router struct {
	id       topology.NodeID
	net      *Network
	inPorts  []inputPort
	outPorts []outputPort
	inIndex  [topology.NumDirs]int8 // dir -> port index, -1 if absent
	outIndex [topology.NumDirs]int8
	Counters Counters

	// Per-cycle switch occupancy, shared between the non-speculative
	// switch allocator and speculative forwards issued during VA.
	inBusy    []bool
	outBusy   []bool
	busyCycle int64
	// reqScratch, eligibleOut and saRank are reusable per-cycle scratch
	// vectors over flattened input-VC indices (pi*VCs + vi), avoiding
	// allocation in the hot switch-allocation loop. The activity-driven
	// stage functions keep reqScratch all-false between uses and only
	// touch the indices on their pending lists.
	reqScratch  []bool
	eligibleOut []int8
	saRank      []int8
	// eligScratch holds the flat indices found switch-eligible this
	// cycle, so the SA grant loop walks only those instead of the whole
	// pending list per output port. saCount/saLast (indexed by output
	// port, reset lazily per cycle) let the grant loop take a direct
	// GrantSingle path when a port has exactly one candidate — the
	// common case off saturation.
	eligScratch []int32
	saCount     []int8
	saLast      []int32

	// flatVCs maps the flattened index to the VC for O(1) access from
	// the pending lists (inPorts never grows after construction);
	// portOf/vcOf invert flatVC without the divisions.
	flatVCs []*inputVC
	portOf  []int8
	vcOf    []int8
	// listRC, listVA and listSA hold the flat indices of VCs currently
	// in vcRouting, vcWaitVC and vcActive; listPos[f] is f's position in
	// its state's list (-1 when idle). Maintained by setVCState; see
	// activity.go for the determinism argument.
	listRC, listVA, listSA []int32
	listPos                []int32
	// waitersByOut[oi] counts VCs in vcWaitVC routed to output port oi,
	// letting stepVA skip output ports nobody bids for.
	waitersByOut []int32
}

func newRouter(net *Network, id topology.NodeID) *Router {
	r := &Router{id: id, net: net}
	for i := range r.inIndex {
		r.inIndex[i] = -1
		r.outIndex[i] = -1
	}
	cfg := &net.cfg
	for _, d := range cfg.Topo.Ports(id) {
		// Output side.
		op := outputPort{
			dir:      d,
			reserved: make([]bool, cfg.VCs),
			credits:  make([]int, cfg.VCs),
		}
		if d != topology.Local {
			l, ok := cfg.Topo.OutLink(id, d)
			if !ok {
				panic(fmt.Sprintf("noc: router %d missing link on port %v", id, d))
			}
			op.link = l
			op.hasLink = true
			for v := range op.credits {
				op.credits[v] = cfg.BufDepth
			}
		}
		r.outIndex[d] = int8(len(r.outPorts))
		r.outPorts = append(r.outPorts, op)

		// Input side (topologies are symmetric: every output direction
		// has a matching input).
		ip := inputPort{dir: d, vcs: make([]inputVC, cfg.VCs), upstream: -1}
		for v := range ip.vcs {
			ip.vcs[v].buf = make([]bufFlit, 0, 2*cfg.BufDepth)
		}
		if d != topology.Local {
			l, ok := cfg.Topo.OutLink(id, d)
			if !ok {
				panic(fmt.Sprintf("noc: router %d missing reverse link on port %v", id, d))
			}
			ip.upstream = l.Dst
		}
		r.inIndex[d] = int8(len(r.inPorts))
		r.inPorts = append(r.inPorts, ip)
	}
	r.inBusy = make([]bool, len(r.inPorts))
	r.outBusy = make([]bool, len(r.outPorts))
	r.busyCycle = -1
	nInVCs := len(r.inPorts) * cfg.VCs
	r.reqScratch = make([]bool, nInVCs)
	r.eligibleOut = make([]int8, nInVCs)
	r.saRank = make([]int8, nInVCs)
	r.eligScratch = make([]int32, 0, nInVCs)
	r.saCount = make([]int8, len(r.outPorts))
	r.saLast = make([]int32, len(r.outPorts))
	r.flatVCs = make([]*inputVC, nInVCs)
	r.portOf = make([]int8, nInVCs)
	r.vcOf = make([]int8, nInVCs)
	for pi := range r.inPorts {
		for vi := range r.inPorts[pi].vcs {
			f := r.flatVC(pi, vi)
			r.flatVCs[f] = &r.inPorts[pi].vcs[vi]
			r.portOf[f] = int8(pi)
			r.vcOf[f] = int8(vi)
		}
	}
	r.listRC = make([]int32, 0, nInVCs)
	r.listVA = make([]int32, 0, nInVCs)
	r.listSA = make([]int32, 0, nInVCs)
	r.listPos = make([]int32, nInVCs)
	for i := range r.listPos {
		r.listPos[i] = -1
	}
	r.waitersByOut = make([]int32, len(r.outPorts))
	for oi := range r.outPorts {
		op := &r.outPorts[oi]
		op.saArb = cfg.Arb.newArbiter(nInVCs)
		op.vaArbs = make([]Arbiter, cfg.VCs)
		for v := range op.vaArbs {
			op.vaArbs[v] = cfg.Arb.newArbiter(nInVCs)
		}
	}
	return r
}

// flatVC maps (input port, vc) to the flattened request index.
func (r *Router) flatVC(pi, vi int) int { return pi*r.net.cfg.VCs + vi }

// switchMasks returns the cycle's input/output occupancy masks, clearing
// them on the first touch of a new cycle.
func (r *Router) switchMasks(cycle int64) (in, out []bool) {
	if r.busyCycle != cycle {
		for i := range r.inBusy {
			r.inBusy[i] = false
		}
		for i := range r.outBusy {
			r.outBusy[i] = false
		}
		r.busyCycle = cycle
	}
	return r.inBusy, r.outBusy
}

// startHead prepares the VC at flat index f whose front just became a
// head flit: with look-ahead routing the output port is already known
// when the flit arrives (it was computed at the upstream router), so
// the RC stage disappears from the critical path.
func (r *Router) startHead(f int32, cycle int64) {
	vc := r.flatVCs[f]
	if r.net.cfg.LookaheadRC {
		r.routeHead(vc)
		r.setVCState(f, vcWaitVC)
	} else {
		r.setVCState(f, vcRouting)
	}
	vc.readyAt = cycle + 1
}

// routeHead computes and stores the output direction for the head flit
// at the front of vc.
func (r *Router) routeHead(vc *inputVC) {
	pkt := vc.front().flit.Pkt
	if pkt.Dst == r.id {
		vc.outDir = topology.Local
	} else {
		vc.outDir = r.net.cfg.Alg.NextPort(r.net.cfg.Topo, r.id, pkt.Dst)
	}
	vc.outPort = r.outIndex[vc.outDir]
	if vc.outPort < 0 {
		panic(fmt.Sprintf("noc: router %d routed to missing port %v", r.id, vc.outDir))
	}
	r.Counters.RCOps++
	if r.net.probe != nil {
		r.net.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeRoute, Cycle: r.net.cycle, Router: r.id, Dir: vc.outDir, Flit: vc.front().flit,
		})
	}
}

// layerFrac returns the fraction of datapath layers a flit keeps active.
func (r *Router) layerFrac(f Flit) float64 {
	L := r.net.cfg.Layers
	al := int(f.ActiveLayers)
	if al <= 0 || al > L {
		al = L
	}
	return float64(al) / float64(L)
}

// acceptFlit writes an arriving flit into an input VC buffer. It panics
// on buffer overflow, which would indicate a credit accounting bug.
func (r *Router) acceptFlit(cycle int64, portIdx, vc int, f Flit) {
	ip := &r.inPorts[portIdx]
	ivc := &ip.vcs[vc]
	if ivc.occ() >= r.net.cfg.BufDepth {
		panic(fmt.Sprintf("noc: router %d port %v vc %d buffer overflow (credit bug)", r.id, ip.dir, vc))
	}
	ivc.push(bufFlit{flit: f, arrivedAt: cycle})
	r.Counters.BufWrites++
	r.Counters.WBufWrites += r.layerFrac(f)
	if f.Type.IsHead() && ivc.occ() == 1 {
		if ivc.state != vcIdle {
			panic(fmt.Sprintf("noc: router %d port %v vc %d head arrives in state %v", r.id, ip.dir, vc, ivc.state))
		}
		r.startHead(int32(r.flatVC(portIdx, vc)), cycle)
	}
}

// stepRC performs route computation for head flits that reached the
// front of their VC. Only VCs on the routing pending list are visited;
// routed VCs swap-remove themselves mid-iteration (the element swapped
// into the vacated slot is examined next, so no entry is skipped).
func (r *Router) stepRC(cycle int64) {
	for i := 0; i < len(r.listRC); {
		f := r.listRC[i]
		vc := r.flatVCs[f]
		if cycle < vc.readyAt {
			i++
			continue
		}
		front := vc.front()
		if front == nil || !front.flit.Type.IsHead() {
			panic(fmt.Sprintf("noc: router %d RC on non-head", r.id))
		}
		r.routeHead(vc)
		r.setVCState(f, vcWaitVC) // swap-removes listRC[i]
		vc.readyAt = cycle + 1
	}
}

// stepRCFull is the reference full scan over every port and VC
// (StepFullScan mode); it must stay behaviourally identical to stepRC.
func (r *Router) stepRCFull(cycle int64) {
	for pi := range r.inPorts {
		for vi := range r.inPorts[pi].vcs {
			vc := &r.inPorts[pi].vcs[vi]
			if vc.state != vcRouting || cycle < vc.readyAt {
				continue
			}
			front := vc.front()
			if front == nil || !front.flit.Type.IsHead() {
				panic(fmt.Sprintf("noc: router %d RC on non-head", r.id))
			}
			r.routeHead(vc)
			r.setVCState(int32(r.flatVC(pi, vi)), vcWaitVC)
			vc.readyAt = cycle + 1
		}
	}
}

// vaCandidate reports whether output VC ov may be used by packet class c
// under the configured policy.
func (r *Router) vaCandidate(ov int, c Class) bool {
	if r.net.cfg.Policy == ByClass {
		return ov == int(c)
	}
	return true
}

// stepVA allocates free output VCs to waiting head flits. Each output
// VC owns a PV:1 arbiter (the VA2 stage of §3.2.5); the first-stage VA1
// output-VC selection collapses into the candidate filter because a
// requester bids for every class-compatible free VC of its output port.
//
// Only VCs on the wait pending list build request vectors, and output
// ports with no waiters (waitersByOut) are skipped outright; both prune
// exactly the (oi, ov) pairs the full scan would have found requester-
// less, so the arbiters receive the identical Grant sequence.
func (r *Router) stepVA(cycle int64) {
	nReady := 0
	for _, f := range r.listVA {
		if cycle >= r.flatVCs[f].readyAt {
			nReady++
		}
	}
	r.Counters.VAReqs += int64(nReady)
	if nReady == 0 {
		return
	}
	for oi := range r.outPorts {
		if r.waitersByOut[oi] == 0 {
			continue
		}
		op := &r.outPorts[oi]
		for ov := 0; ov < r.net.cfg.VCs; ov++ {
			if op.reserved[ov] {
				continue
			}
			// First pass only counts; the request vector is built (and
			// the arbiter's full Grant paid) only under contention.
			count, last := 0, int32(-1)
			for _, f := range r.listVA {
				vc := r.flatVCs[f]
				if cycle >= vc.readyAt && vc.outPort == int8(oi) &&
					r.vaCandidate(ov, vc.front().flit.Pkt.Class) {
					count++
					last = f
				}
			}
			if count == 0 {
				continue
			}
			var g int
			if count == 1 {
				op.vaArbs[ov].GrantSingle(int(last))
				g = int(last)
			} else {
				reqs := r.reqScratch // all-false between uses
				for _, f := range r.listVA {
					vc := r.flatVCs[f]
					if cycle >= vc.readyAt && vc.outPort == int8(oi) &&
						r.vaCandidate(ov, vc.front().flit.Pkt.Class) {
						reqs[f] = true
					}
				}
				g = op.vaArbs[ov].Grant(reqs)
				// Restore the all-false invariant before any transition
				// can remove a set index from the list.
				for _, f := range r.listVA {
					reqs[f] = false
				}
				if g < 0 {
					continue
				}
			}
			pi, vi := int(r.portOf[g]), int(r.vcOf[g])
			vc := &r.inPorts[pi].vcs[vi]
			op.reserved[ov] = true
			vc.outVC = ov
			r.setVCState(int32(g), vcActive)
			vc.readyAt = cycle + 1
			r.Counters.VAGrants++
			if r.net.probe != nil {
				r.net.probe.ProbeEvent(ProbeEvent{
					Kind: ProbeVCAlloc, Cycle: cycle, Router: r.id, Dir: op.dir, VC: int8(ov), Flit: vc.front().flit,
				})
			}
			if r.net.cfg.SpecSA {
				r.trySpeculativeForward(cycle, pi, vi, oi)
			}
		}
	}
}

// stepVAFull is the reference full scan (StepFullScan mode); it must
// stay behaviourally identical to stepVA.
func (r *Router) stepVAFull(cycle int64) {
	any := false
	for pi := range r.inPorts {
		for vi := range r.inPorts[pi].vcs {
			vc := &r.inPorts[pi].vcs[vi]
			if vc.state == vcWaitVC && cycle >= vc.readyAt {
				any = true
				r.Counters.VAReqs++
			}
		}
	}
	if !any {
		return
	}
	for oi := range r.outPorts {
		op := &r.outPorts[oi]
		for ov := 0; ov < r.net.cfg.VCs; ov++ {
			if op.reserved[ov] {
				continue
			}
			reqs := r.reqScratch
			found := false
			for pi := range r.inPorts {
				for vi := range r.inPorts[pi].vcs {
					vc := &r.inPorts[pi].vcs[vi]
					ok := vc.state == vcWaitVC && cycle >= vc.readyAt &&
						vc.outDir == op.dir &&
						r.vaCandidate(ov, vc.front().flit.Pkt.Class)
					reqs[r.flatVC(pi, vi)] = ok
					found = found || ok
				}
			}
			if !found {
				continue
			}
			g := op.vaArbs[ov].Grant(reqs)
			if g < 0 {
				continue
			}
			pi, vi := int(r.portOf[g]), int(r.vcOf[g])
			vc := &r.inPorts[pi].vcs[vi]
			op.reserved[ov] = true
			vc.outVC = ov
			r.setVCState(int32(g), vcActive)
			vc.readyAt = cycle + 1
			r.Counters.VAGrants++
			if r.net.probe != nil {
				r.net.probe.ProbeEvent(ProbeEvent{
					Kind: ProbeVCAlloc, Cycle: cycle, Router: r.id, Dir: op.dir, VC: int8(ov), Flit: vc.front().flit,
				})
			}
			if r.net.cfg.SpecSA {
				r.trySpeculativeForward(cycle, pi, vi, oi)
			}
		}
	}
}

// saEligibility computes the QoS rank of an eligible front flit:
// 0 = in-flight body/tail (always highest, so packets cannot be starved
// mid-stream), 1 = control head, 2 = data head. Without QoSPriority all
// flits rank 0.
func (r *Router) saRankOf(cycle int64, front *bufFlit) int8 {
	if !r.net.cfg.QoSPriority || front.flit.Pkt.Class == Control {
		return 0
	}
	// Data flits rank below control: in-flight body/tail at tier 1, new
	// heads at tier 2. Ageing promotes a waiting flit one tier per 16
	// cycles so continuous control storms cannot starve data
	// indefinitely.
	rank := int8(1)
	if front.flit.Type.IsHead() {
		rank = 2
	}
	rank -= int8((cycle - front.arrivedAt) / 16)
	if rank < 0 {
		rank = 0
	}
	return rank
}

// stepSA arbitrates the crossbar: at most one flit per output port and
// one per input port each cycle. Winning flits traverse the switch (and
// the link, when ST+LT are combined) and are scheduled into the next
// router.
//
// Eligibility (eligibleOut/saRank) is cached only for the VCs on the
// active pending list; entries not on the list are never read, so their
// stale values from earlier cycles are harmless. A tail forwarded
// mid-loop leaves the list, which matches the full scan's exclusion of
// the same VC through the inBusy mask.
func (r *Router) stepSA(cycle int64) {
	nOut := len(r.outPorts)
	eligibleOut, saRank := r.eligibleOut, r.saRank
	elig := r.eligScratch[:0]
	var outMask uint32 // output ports with at least one eligible VC
	for _, f := range r.listSA {
		vc := r.flatVCs[f]
		if cycle < vc.readyAt {
			continue
		}
		front := vc.front()
		if front == nil || front.arrivedAt >= cycle {
			continue
		}
		oi := int(vc.outPort)
		op := &r.outPorts[oi]
		if op.hasLink && op.credits[vc.outVC] <= 0 {
			r.Counters.CreditStalls++
			continue // no downstream buffer space
		}
		bit := uint32(1) << uint(oi)
		if outMask&bit == 0 {
			r.saCount[oi] = 0
			outMask |= bit
		}
		r.saCount[oi]++
		r.saLast[oi] = f
		eligibleOut[f] = int8(oi)
		saRank[f] = r.saRankOf(cycle, front)
		r.Counters.SAReqs++
		elig = append(elig, f)
	}
	r.eligScratch = elig
	if outMask == 0 {
		return
	}
	inBusy, outBusy := r.switchMasks(cycle)
	// Visit eligible output ports in rotated priority order (start,
	// start+1, ..., wrap-around), extracting set mask bits instead of
	// testing every port.
	start := int(cycle) % nOut
	for m := outMask >> uint(start); m != 0; m &= m - 1 {
		r.saGrantPort(cycle, start+bits.TrailingZeros32(m), elig, inBusy, outBusy)
	}
	for m := outMask & (1<<uint(start) - 1); m != 0; m &= m - 1 {
		r.saGrantPort(cycle, bits.TrailingZeros32(m), elig, inBusy, outBusy)
	}
}

// saGrantPort arbitrates one output port among the cycle's eligible VCs
// and forwards the winner. The elig snapshot is walked rather than the
// live pending list: a VC forwarded earlier this cycle (tail release
// drops it from listSA) stays in the snapshot, but its input port is
// marked busy, so it can never be granted twice — the same exclusion
// the full scan gets from its inBusy mask.
func (r *Router) saGrantPort(cycle int64, oi int, elig []int32, inBusy, outBusy []bool) {
	if outBusy[oi] {
		return
	}
	op := &r.outPorts[oi]
	var g int
	if r.saCount[oi] == 1 {
		// Sole candidate: skip the request-vector build. GrantSingle
		// advances the arbiter exactly like Grant with one bit set.
		f := r.saLast[oi]
		if inBusy[r.portOf[f]] {
			return
		}
		op.saArb.GrantSingle(int(f))
		g = int(f)
	} else {
		eligibleOut, saRank := r.eligibleOut, r.saRank
		// Restrict candidates to the best QoS tier present.
		best := int8(127)
		for _, f := range elig {
			if eligibleOut[f] == int8(oi) && !inBusy[r.portOf[f]] && saRank[f] < best {
				best = saRank[f]
			}
		}
		if best == 127 {
			return
		}
		reqs := r.reqScratch // all-false between uses
		for _, f := range elig {
			if eligibleOut[f] == int8(oi) && !inBusy[r.portOf[f]] && saRank[f] == best {
				reqs[f] = true
			}
		}
		g = op.saArb.Grant(reqs)
		// Restore the all-false invariant before the next stage runs.
		for _, f := range elig {
			reqs[f] = false
		}
		if g < 0 {
			return
		}
	}
	pi, vi := int(r.portOf[g]), int(r.vcOf[g])
	r.forward(cycle, pi, vi, oi)
	inBusy[pi] = true
	outBusy[oi] = true
	r.Counters.SAGrants++
}

// stepSAFull is the reference full scan (StepFullScan mode); it must
// stay behaviourally identical to stepSA.
func (r *Router) stepSAFull(cycle int64) {
	nOut := len(r.outPorts)
	eligibleOut, saRank := r.eligibleOut, r.saRank
	any := false
	for pi := range r.inPorts {
		for vi := range r.inPorts[pi].vcs {
			f := r.flatVC(pi, vi)
			eligibleOut[f] = -1
			vc := &r.inPorts[pi].vcs[vi]
			if vc.state != vcActive || cycle < vc.readyAt {
				continue
			}
			front := vc.front()
			if front == nil || front.arrivedAt >= cycle {
				continue
			}
			oi := r.outIndex[vc.outDir]
			op := &r.outPorts[oi]
			if op.hasLink && op.credits[vc.outVC] <= 0 {
				r.Counters.CreditStalls++
				continue // no downstream buffer space
			}
			eligibleOut[f] = oi
			saRank[f] = r.saRankOf(cycle, front)
			r.Counters.SAReqs++
			any = true
		}
	}
	if !any {
		return
	}
	inBusy, outBusy := r.switchMasks(cycle)
	start := int(cycle) % nOut // rotate output priority
	for k := 0; k < nOut; k++ {
		oi := (start + k) % nOut
		op := &r.outPorts[oi]
		if outBusy[oi] {
			continue
		}
		// Restrict candidates to the best QoS tier present.
		best := int8(127)
		for f := range r.reqScratch {
			if eligibleOut[f] == int8(oi) && !inBusy[f/r.net.cfg.VCs] && saRank[f] < best {
				best = saRank[f]
			}
		}
		if best == 127 {
			continue
		}
		reqs := r.reqScratch
		for f := range reqs {
			reqs[f] = eligibleOut[f] == int8(oi) && !inBusy[f/r.net.cfg.VCs] && saRank[f] == best
		}
		g := op.saArb.Grant(reqs)
		if g < 0 {
			continue
		}
		pi, vi := g/r.net.cfg.VCs, g%r.net.cfg.VCs
		r.forward(cycle, pi, vi, oi)
		inBusy[pi] = true
		outBusy[oi] = true
		r.Counters.SAGrants++
	}
}

// trySpeculativeForward attempts to move a freshly VC-allocated head
// flit through the crossbar in the same cycle as its VA grant
// (speculative switch allocation, Figure 8 (b)). Non-speculative grants
// made earlier this cycle keep their ports; speculation only uses
// leftover switch slots.
func (r *Router) trySpeculativeForward(cycle int64, pi, vi, oi int) {
	inBusy, outBusy := r.switchMasks(cycle)
	if inBusy[pi] || outBusy[oi] {
		return
	}
	vc := &r.inPorts[pi].vcs[vi]
	front := vc.front()
	if front == nil || front.arrivedAt >= cycle {
		return
	}
	op := &r.outPorts[oi]
	if op.hasLink && op.credits[vc.outVC] <= 0 {
		return
	}
	r.Counters.SAReqs++
	r.Counters.SAGrants++
	r.forward(cycle, pi, vi, oi)
	inBusy[pi] = true
	outBusy[oi] = true
}

// forward pops the front flit of input VC (pi, vi) and sends it through
// output port oi.
func (r *Router) forward(cycle int64, pi, vi, oi int) {
	cfg := &r.net.cfg
	ip := &r.inPorts[pi]
	vc := &ip.vcs[vi]
	op := &r.outPorts[oi]
	bf := vc.pop()
	f := bf.flit
	frac := r.layerFrac(f)

	r.Counters.BufReads++
	r.Counters.WBufReads += frac
	r.Counters.XbarFlits++
	r.Counters.WXbarFlits += frac
	if r.net.probe != nil {
		r.net.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeSAGrant, Cycle: cycle, Router: r.id, Dir: op.dir, VC: int8(vc.outVC), Flit: f,
		})
	}

	// Credit back to the upstream router (the NI checks space directly).
	if ip.upstream >= 0 {
		r.net.schedule(cycle+1, event{kind: evCredit, router: ip.upstream, dir: ip.dir.Opposite(), vc: vi})
	}

	if f.Type.IsHead() && op.dir != topology.Local {
		f.Pkt.Hops++
	}

	if op.dir == topology.Local {
		// Ejection: ST (and wire to the NI) still takes the configured
		// cycles; the sink always accepts.
		r.net.schedule(cycle+int64(cfg.STLTCycles), event{kind: evEject, router: r.id, flit: f})
	} else {
		op.credits[vc.outVC]--
		if op.credits[vc.outVC] < 0 {
			panic(fmt.Sprintf("noc: router %d negative credits on %v vc %d", r.id, op.dir, vc.outVC))
		}
		r.Counters.LinkFlits++
		r.Counters.WLinkFlits += frac
		op.flitCount++
		if r.net.probe != nil {
			r.net.probe.ProbeEvent(ProbeEvent{
				Kind: ProbeLink, Cycle: cycle, Router: r.id, Dir: op.dir, VC: int8(vc.outVC), Flit: f,
			})
		}
		r.Counters.LinkMMFlits += op.link.LengthMM
		r.Counters.WLinkMMFlits += op.link.LengthMM * frac
		if op.dir.IsExpress() {
			r.Counters.ExpFlits++
		}
		if op.dir.IsVertical() {
			r.Counters.VertFlits++
		}
		r.net.schedule(cycle+int64(cfg.STLTCycles), event{
			kind: evFlit, router: op.link.Dst, dir: op.dir.Opposite(), vc: vc.outVC, flit: f,
		})
	}

	if f.Type.IsTail() {
		op.reserved[vc.outVC] = false
		fi := int32(r.flatVC(pi, vi))
		if next := vc.front(); next != nil {
			if !next.flit.Type.IsHead() {
				panic(fmt.Sprintf("noc: router %d flit after tail is not a head", r.id))
			}
			r.startHead(fi, cycle)
		} else {
			r.setVCState(fi, vcIdle)
		}
	}
}

// creditReturn restores one credit for (dir, vc).
func (r *Router) creditReturn(dir topology.Dir, vc int) {
	oi := r.outIndex[dir]
	if oi < 0 {
		panic(fmt.Sprintf("noc: router %d credit for missing port %v", r.id, dir))
	}
	op := &r.outPorts[oi]
	op.credits[vc]++
	if op.credits[vc] > r.net.cfg.BufDepth {
		panic(fmt.Sprintf("noc: router %d credit overflow on %v vc %d", r.id, dir, vc))
	}
}

// occupancy returns the total buffered flits (for tests and saturation
// diagnostics).
func (r *Router) occupancy() int {
	n := 0
	for pi := range r.inPorts {
		for vi := range r.inPorts[pi].vcs {
			n += r.inPorts[pi].vcs[vi].occ()
		}
	}
	return n
}
