package noc

import (
	"fmt"
	"math/bits"

	"mira/internal/routing"
	"mira/internal/topology"
)

// vcState is the input-VC control state machine: a head flit performs
// route computation (RC), then virtual-channel allocation (VA), then the
// whole packet streams through switch allocation (SA) until the tail
// releases the channel.
type vcState uint8

const (
	vcIdle vcState = iota
	vcRouting
	vcWaitVC
	vcActive
)

func (s vcState) String() string {
	switch s {
	case vcIdle:
		return "idle"
	case vcRouting:
		return "routing"
	case vcWaitVC:
		return "wait-vc"
	default:
		return "active"
	}
}

// inputPort is the construction/observability view of one input port.
// The VC state behind it lives in the network's flat arrays (soa.go);
// the view carries only the topology metadata the hot loops read per
// forwarded flit.
type inputPort struct {
	dir topology.Dir
	// upstream is the neighbouring router feeding this port, or -1 for
	// the local NI; credits for popped flits return to it.
	upstream topology.NodeID
	// upCredBase is the global index (into the network's flat credits
	// array) of the upstream router's credit counter for this channel's
	// vc 0, precomputed so the forward path schedules a credit return as
	// a single int32. -1 for the local port.
	upCredBase int32
	// upShard is the shard owning the upstream router (this router's
	// own shard for the local port); credit returns that cross it go
	// through the boundary mailbox instead of the shard's own ring.
	upShard int32
	// credDelta is the credit-return delay toward the upstream router:
	// the latency plus serialization of the reverse channel this
	// router's credits travel (1 for on-chip links — the historical
	// fixed delay). Precomputed at construction from the topology.
	credDelta int64
}

// outputPort is the construction/observability view of one output port.
// reserved and credits are sub-slices of the network's flat arrays —
// they alias, not copy, the state the stage loops index directly, so
// the view can never diverge from the arrays.
type outputPort struct {
	dir     topology.Dir
	link    topology.Link // zero unless dir != Local
	hasLink bool
	// reserved marks output VCs currently owned by an in-flight packet;
	// credits counts free buffer slots in the downstream input VC.
	reserved []bool
	credits  []int32
	// flitCount tallies flits sent over this port's link, for the
	// per-link utilization report.
	flitCount int64
	// downVCBase is the global flat VC index of the downstream input
	// channel's vc 0 (the port this link lands on), precomputed so the
	// forward path reserves the destination slot and schedules the
	// arrival event from a single add. -1 for the local port.
	downVCBase int32
	// downShard is the shard owning the downstream router (this
	// router's own shard for the local port). Forwards staying inside
	// the shard direct-write the flit into the downstream ring slot;
	// forwards that cross it carry the flit through the boundary
	// mailbox (shard.go).
	downShard int32
	// arriveDelta is the cycles from a switch-allocation grant until
	// the flit lands in the downstream buffer: STLTCycles - 1 pipeline
	// cycles plus the link's latency plus its serialization tail
	// (SerCycles - 1). For on-chip links (latency 1, ser 1) this equals
	// STLTCycles — the historical fixed delay.
	arriveDelta int64
	// serCycles is the cycles a flit occupies this port's link while
	// serialized across it (1 for full-width links); ports with
	// serCycles > 1 are marked in Router.serMask and gate switch
	// allocation on the link being free (soa serFree lane).
	serCycles int64
	// class is the link's physical class, for the d2d traffic counters.
	class topology.LinkClass
}

// Router is one network router instance: the per-router view over the
// network's struct-of-arrays state. Every slice below whose comment
// says "window" is a sub-slice of the corresponding flat array in
// Network.soa covering exactly this router's slots, indexed by the
// local flat VC index f = pi*VCs + vi (or by port index); see soa.go
// for the layout and ownership rules.
type Router struct {
	id  topology.NodeID
	net *Network
	// sh is the shard stepping this router (shard 0 under sequential
	// stepping); the forward path schedules into its rings and the
	// probe emission sites go through its sink. shard caches sh.idx
	// for the same-shard test per forwarded flit.
	sh       *shardState
	shard    int32
	inPorts  []inputPort
	outPorts []outputPort
	inIndex  [topology.NumDirs]int8 // dir -> port index, -1 if absent
	outIndex [topology.NumDirs]int8
	// linkMask has bit oi set when output port oi drives a link (every
	// port except Local); the SA credit check tests the bit instead of
	// loading outputPort.hasLink.
	linkMask uint32
	// serMask has bit oi set when output port oi's link serializes
	// flits (serCycles > 1); only those ports pay the serFree check in
	// the allocation stages, so fully parallel fabrics — every shipped
	// single-chip design — keep the historical hot path.
	serMask uint32
	// algXY is set when Config.Alg is plain dimension-ordered routing,
	// letting routeHead call it directly instead of through the
	// interface (the per-head dispatch is measurable at high load).
	algXY    bool
	Counters Counters

	// vcsPerPort/bufDepth cache Config.VCs and Config.BufDepth;
	// vcBase is the router's global base slot in the per-VC arrays and
	// credBase its base in the flat per-(output port, VC) credit array.
	vcsPerPort int
	bufDepth   int
	vcBase     int32
	credBase   int32

	// Per-VC control state (windows; see soaState for field meanings).
	vcState   []vcState
	vcHead    []int32
	vcLen     []int32
	vcReadyAt []int64
	vcFrontAt []int64
	vcOutDir  []topology.Dir
	vcOutPort []int8
	vcOutVC   []int8
	vcClass   []Class
	vcInFly   []int8

	// VC ring storage (windows, BufDepth slots per VC).
	bufFlit    []Flit
	bufArrived []int64

	// Output flow control (windows, indexed oi*VCs+ov) and arbiter
	// state (window, indexed oi*(1+VCs) for SA, +1+ov for VA).
	reserved []bool
	credits  []int32
	arbs     []arbState

	// Per-cycle switch occupancy (windows), shared between the
	// non-speculative switch allocator and speculative forwards issued
	// during VA. Each entry holds the cycle the port was last claimed,
	// so a port is busy iff its entry equals the current cycle and no
	// per-cycle clearing pass is needed.
	inBusy  []int64
	outBusy []int64
	// serFree[oi] is the first cycle output port oi's serializing link
	// is free again (window; meaningful only for serMask ports, where
	// forward stamps cycle + serCycles).
	serFree []int64
	// reqScratch, eligibleOut and saRank are reusable per-cycle scratch
	// vectors (windows) over flat input-VC indices, avoiding allocation
	// in the hot switch-allocation loop. The activity-driven stage
	// functions keep reqScratch all-false between uses and only touch
	// the indices on their pending lists.
	reqScratch  []bool
	eligibleOut []int8
	saRank      []int8
	// arbMask is set when the router's flat VC count fits a uint64, so
	// the allocation stages hand the arbiters request bitmasks instead
	// of filling (and re-clearing) reqScratch. Every shipped config
	// qualifies; the []bool path remains for wider ones.
	arbMask bool
	// The eligibility pass threads each cycle's switch-eligible VCs into
	// per-output-port chains: saHead[oi]/saLast[oi] bound the chain and
	// eligNext[f] links it (windows, reset lazily per cycle via
	// saCount), so the grant loop walks exactly one port's candidates
	// instead of filtering a shared list per port. saCount/saLast also
	// feed the direct grantSingle path when a port has exactly one
	// candidate — the common case off saturation.
	eligNext []int32
	saHead   []int32
	saCount  []int8
	saLast   []int32

	// portOf/vcOf invert the flat VC index without divisions (windows).
	portOf []int8
	vcOf   []int8
	// listRC, listVA and listSA hold the flat indices of VCs currently
	// in vcRouting, vcWaitVC and vcActive; they are zero-length
	// fixed-capacity windows, so appends write in place. listPos[f] is
	// f's position in its state's list (-1 when idle). Maintained by
	// setVCState; see activity.go for the determinism argument.
	listRC, listVA, listSA []int32
	listPos                []int32
	// waitersByOut[oi] counts VCs in vcWaitVC routed to output port oi,
	// letting stepVA skip output ports nobody bids for (window).
	waitersByOut []int32
}

// initRouter builds the port metadata view for node id in place (the
// routers live in the network's contiguous value slice). The flat state
// windows are attached afterwards by bind, once the network has sized
// its arrays across all routers.
func initRouter(r *Router, net *Network, id topology.NodeID) {
	r.id, r.net = id, net
	r.vcsPerPort, r.bufDepth = net.cfg.VCs, net.cfg.BufDepth
	for i := range r.inIndex {
		r.inIndex[i] = -1
		r.outIndex[i] = -1
	}
	cfg := &net.cfg
	for _, d := range cfg.Topo.Ports(id) {
		// Output side.
		op := outputPort{dir: d, arriveDelta: int64(cfg.STLTCycles), serCycles: 1}
		if d != topology.Local {
			l, ok := cfg.Topo.OutLink(id, d)
			if !ok {
				panic(fmt.Sprintf("noc: router %d missing link on port %v", id, d))
			}
			op.link = l
			op.hasLink = true
			// ST+LT-1 pipeline cycles, then the link's latency, then
			// the serialization tail; on-chip (1, 1) collapses to the
			// historical STLTCycles.
			op.arriveDelta = int64(cfg.STLTCycles-1) + int64(l.Latency) + int64(l.SerCycles) - 1
			op.serCycles = int64(l.SerCycles)
			op.class = l.Class
		}
		r.outIndex[d] = int8(len(r.outPorts))
		r.outPorts = append(r.outPorts, op)

		// Input side (topologies are symmetric: every output direction
		// has a matching input).
		ip := inputPort{dir: d, upstream: -1, credDelta: 1}
		if d != topology.Local {
			l, ok := cfg.Topo.OutLink(id, d)
			if !ok {
				panic(fmt.Sprintf("noc: router %d missing reverse link on port %v", id, d))
			}
			ip.upstream = l.Dst
			// Credits popped from this port return to the upstream over
			// the reverse channel — the very link l (id -> upstream) —
			// and pay its latency and serialization; 1 for on-chip.
			ip.credDelta = int64(l.Latency) + int64(l.SerCycles) - 1
		}
		r.inIndex[d] = int8(len(r.inPorts))
		r.inPorts = append(r.inPorts, ip)
	}
}

// bind attaches the router's windows of the network's flat arrays
// (vcBase/portBase are its first slots in the per-VC and per-port
// arrays) and initializes its slice of the state: credits, arbiters,
// list positions and the flat-index inverse maps.
func (r *Router) bind(st *soaState, vcBase, portBase int) {
	cfg := &r.net.cfg
	nP := len(r.inPorts)
	nVC := nP * cfg.VCs
	r.vcBase = int32(vcBase)

	r.vcState = st.vcState[vcBase : vcBase+nVC]
	r.vcHead = st.vcHead[vcBase : vcBase+nVC]
	r.vcLen = st.vcLen[vcBase : vcBase+nVC]
	r.vcReadyAt = st.vcReadyAt[vcBase : vcBase+nVC]
	r.vcFrontAt = st.vcFrontAt[vcBase : vcBase+nVC]
	r.vcOutDir = st.vcOutDir[vcBase : vcBase+nVC]
	r.vcOutPort = st.vcOutPort[vcBase : vcBase+nVC]
	r.vcOutVC = st.vcOutVC[vcBase : vcBase+nVC]
	r.vcClass = st.vcClass[vcBase : vcBase+nVC]
	r.vcInFly = st.vcInFly[vcBase : vcBase+nVC]
	r.bufFlit = st.bufFlit[vcBase*cfg.BufDepth : (vcBase+nVC)*cfg.BufDepth]
	r.bufArrived = st.bufArrived[vcBase*cfg.BufDepth : (vcBase+nVC)*cfg.BufDepth]

	pv := portBase * cfg.VCs
	r.credBase = int32(pv)
	r.reserved = st.reserved[pv : pv+nVC]
	r.credits = st.credits[pv : pv+nVC]
	r.arbs = st.arbs[portBase*(1+cfg.VCs) : (portBase+nP)*(1+cfg.VCs)]
	r.inBusy = st.inBusy[portBase : portBase+nP]
	r.outBusy = st.outBusy[portBase : portBase+nP]
	r.serFree = st.serFree[portBase : portBase+nP]

	r.reqScratch = st.reqScratch[vcBase : vcBase+nVC]
	r.arbMask = nVC <= 64
	_, r.algXY = cfg.Alg.(routing.XY)
	r.eligibleOut = st.eligibleOut[vcBase : vcBase+nVC]
	r.saRank = st.saRank[vcBase : vcBase+nVC]
	r.eligNext = st.eligStore[vcBase : vcBase+nVC]
	r.saHead = st.saHead[portBase : portBase+nP]
	r.saCount = st.saCount[portBase : portBase+nP]
	r.saLast = st.saLast[portBase : portBase+nP]
	r.portOf = st.portOf[vcBase : vcBase+nVC]
	r.vcOf = st.vcOf[vcBase : vcBase+nVC]
	r.listRC = st.listRC[vcBase : vcBase : vcBase+nVC]
	r.listVA = st.listVA[vcBase : vcBase : vcBase+nVC]
	r.listSA = st.listSA[vcBase : vcBase : vcBase+nVC]
	r.listPos = st.listPos[vcBase : vcBase+nVC]
	r.waitersByOut = st.waitersByOut[portBase : portBase+nP]

	for f := 0; f < nVC; f++ {
		r.listPos[f] = -1
		r.vcOutPort[f] = -1
		r.portOf[f] = int8(f / cfg.VCs)
		r.vcOf[f] = int8(f % cfg.VCs)
	}
	for oi := range r.outPorts {
		op := &r.outPorts[oi]
		base := oi * cfg.VCs
		op.reserved = r.reserved[base : base+cfg.VCs]
		op.credits = r.credits[base : base+cfg.VCs]
		if op.hasLink {
			r.linkMask |= 1 << uint(oi)
			for v := 0; v < cfg.VCs; v++ {
				r.credits[base+v] = int32(cfg.BufDepth)
			}
			if op.serCycles > 1 {
				r.serMask |= 1 << uint(oi)
			}
		}
		r.saArb(oi).init(cfg.Arb, nVC)
		for ov := 0; ov < cfg.VCs; ov++ {
			r.vaArb(oi, ov).init(cfg.Arb, nVC)
		}
	}
}

// flatVC maps (input port, vc) to the flattened request index.
func (r *Router) flatVC(pi, vi int) int { return pi*r.vcsPerPort + vi }

// switchMasks returns the per-port claim stamps; a port is occupied
// this cycle iff its entry equals cycle (claim a port by storing the
// cycle). Stale stamps from earlier cycles never compare equal, so no
// clearing pass is needed.
func (r *Router) switchMasks(cycle int64) (in, out []int64) {
	return r.inBusy, r.outBusy
}

// startHead prepares the VC at flat index f whose front just became a
// head flit: with look-ahead routing the output port is already known
// when the flit arrives (it was computed at the upstream router), so
// the RC stage disappears from the critical path.
func (r *Router) startHead(f int32, cycle int64) {
	if r.net.cfg.LookaheadRC {
		r.routeHead(int(f))
		r.setVCState(f, vcWaitVC)
	} else {
		r.setVCState(f, vcRouting)
	}
	r.vcReadyAt[f] = cycle + 1
}

// routeHead computes and stores the output direction for the head flit
// at the front of VC f, caching its message class for the VA scans.
func (r *Router) routeHead(f int) {
	flit := r.vcFrontFlit(f)
	pkt := flit.Pkt
	var d topology.Dir
	if pkt.Dst == r.id {
		d = topology.Local
	} else if r.algXY {
		d = routing.XY{}.NextPort(r.net.cfg.Topo, r.id, pkt.Dst)
	} else {
		d = r.net.cfg.Alg.NextPort(r.net.cfg.Topo, r.id, pkt.Dst)
	}
	oi := r.outIndex[d]
	if oi < 0 {
		panic(fmt.Sprintf("noc: router %d routed to missing port %v", r.id, d))
	}
	r.vcOutDir[f] = d
	r.vcOutPort[f] = oi
	r.vcClass[f] = pkt.Class
	r.Counters.RCOps++
	if r.sh.probe != nil {
		r.sh.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeRoute, Cycle: r.net.cycle, Router: r.id, Dir: d, Flit: *flit,
		})
	}
}

// layerFrac returns the fraction of datapath layers a flit keeps active
// (a table lookup; the ratios are precomputed in NewNetwork).
func (r *Router) layerFrac(f Flit) float64 { return r.layerFracN(f.ActiveLayers) }

func (r *Router) layerFracN(active uint8) float64 {
	lut := r.net.layerFrac
	if int(active) >= len(lut) {
		return 1
	}
	return lut[active]
}

// acceptFlit writes an arriving flit into an input VC buffer (the NI
// injection path; link arrivals come through acceptArrival). The ring
// push panics on buffer overflow, which would indicate a credit
// accounting bug.
func (r *Router) acceptFlit(cycle int64, portIdx, vc int, f Flit) {
	fi := r.flatVC(portIdx, vc)
	r.vcPush(fi, f, cycle)
	r.Counters.BufWrites++
	r.Counters.WBufWrites += r.layerFrac(f)
	if f.Type.IsHead() && r.vcOcc(fi) == 1 {
		if r.vcState[fi] != vcIdle {
			panic(fmt.Sprintf("noc: router %d port %v vc %d head arrives in state %v",
				r.id, r.inPorts[portIdx].dir, vc, r.vcState[fi]))
		}
		r.startHead(int32(fi), cycle)
	}
}

// badArrivalState reports a head flit landing on a VC that is not
// idle; the happy path of arrival delivery is inlined in Step.
func (r *Router) badArrivalState(fi int) {
	panic(fmt.Sprintf("noc: router %d port %v vc %d head arrives in state %v",
		r.id, r.inPorts[r.portOf[fi]].dir, r.vcOf[fi], r.vcState[fi]))
}

// stepRC performs route computation for head flits that reached the
// front of their VC. Only VCs on the routing pending list are visited;
// routed VCs swap-remove themselves mid-iteration (the element swapped
// into the vacated slot is examined next, so no entry is skipped).
func (r *Router) stepRC(cycle int64) {
	for i := 0; i < len(r.listRC); {
		f := r.listRC[i]
		if cycle < r.vcReadyAt[f] {
			i++
			continue
		}
		front := r.vcFrontFlit(int(f))
		if front == nil || !front.Type.IsHead() {
			panic(fmt.Sprintf("noc: router %d RC on non-head", r.id))
		}
		r.routeHead(int(f))
		r.setVCState(f, vcWaitVC) // swap-removes listRC[i]
		r.vcReadyAt[f] = cycle + 1
	}
}

// stepRCFull is the reference full scan over every port and VC
// (StepFullScan mode); it must stay behaviourally identical to stepRC.
func (r *Router) stepRCFull(cycle int64) {
	for f := range r.vcState {
		if r.vcState[f] != vcRouting || cycle < r.vcReadyAt[f] {
			continue
		}
		front := r.vcFrontFlit(f)
		if front == nil || !front.Type.IsHead() {
			panic(fmt.Sprintf("noc: router %d RC on non-head", r.id))
		}
		r.routeHead(f)
		r.setVCState(int32(f), vcWaitVC)
		r.vcReadyAt[f] = cycle + 1
	}
}

// vaCandidate reports whether output VC ov may be used by packet class c
// under the configured policy.
func (r *Router) vaCandidate(ov int, c Class) bool {
	if r.net.cfg.Policy == ByClass {
		return ov == int(c)
	}
	return true
}

// stepVA allocates free output VCs to waiting head flits. Each output
// VC owns a PV:1 arbiter (the VA2 stage of §3.2.5); the first-stage VA1
// output-VC selection collapses into the candidate filter because a
// requester bids for every class-compatible free VC of its output port.
//
// Only VCs on the wait pending list build request vectors, and output
// ports with no waiters (waitersByOut) are skipped outright; both prune
// exactly the (oi, ov) pairs the full scan would have found requester-
// less, so the arbiters receive the identical Grant sequence.
func (r *Router) stepVA(cycle int64) {
	readyAt := r.vcReadyAt
	outPort := r.vcOutPort
	// Thread the ready waiters into per-output-port chains, reusing the
	// SA chain scratch (stepSA ran earlier this cycle and has consumed
	// its chains). One pass replaces the per-(oi, ov) rescans of the
	// wait list; chain order is list order, but nothing below depends on
	// it (request vectors are order-independent and the single-candidate
	// fast path has exactly one match), so the arbiters receive the
	// identical Grant sequence.
	saCount, saLast, saHead, next := r.saCount, r.saLast, r.saHead, r.eligNext
	var outMask uint32
	nReady := 0
	for _, f := range r.listVA {
		if cycle < readyAt[f] {
			continue
		}
		nReady++
		oi := int(outPort[f])
		bit := uint32(1) << uint(oi)
		if outMask&bit == 0 {
			saCount[oi] = 0
			saHead[oi] = f
			outMask |= bit
		} else {
			next[saLast[oi]] = f
		}
		saCount[oi]++
		saLast[oi] = f
	}
	r.Counters.VAReqs += int64(nReady)
	if nReady == 0 {
		return
	}
	vcs := r.vcsPerPort
	state, class := r.vcState, r.vcClass
	byClass := r.net.cfg.Policy == ByClass
	// Ascending port order, as the full scan visits them. The walk
	// re-checks the full candidate predicate — state, readiness and
	// output port — not just the state: a chain entry granted for an
	// earlier (oi, ov) normally leaves the wait state (grantVC), but
	// under SpecSA+LookaheadRC its speculative forward can release the
	// channel (single-flit packet) and route the next buffered head
	// straight back into vcWaitVC, with readyAt = cycle+1 and possibly a
	// different output port. The stale chain still lists it, so only the
	// readyAt and outPort guards keep it out of later (oi, ov) rounds,
	// exactly as stepVAFull's rescan would.
	for m := outMask; m != 0; m &= m - 1 {
		oi := bits.TrailingZeros32(m)
		head, tail := saHead[oi], saLast[oi]
		for ov := 0; ov < vcs; ov++ {
			if r.reserved[oi*vcs+ov] {
				continue
			}
			// First pass counts (and, on the mask path, collects the
			// request bits); the arbiter's full grant is paid only
			// under contention.
			count, last := 0, int32(-1)
			var mask uint64
			if r.arbMask {
				for f := head; ; f = next[f] {
					if state[f] == vcWaitVC && cycle >= readyAt[f] &&
						int(outPort[f]) == oi && (!byClass || ov == int(class[f])) {
						count++
						last = f
						mask |= 1 << uint(f)
					}
					if f == tail {
						break
					}
				}
			} else {
				for f := head; ; f = next[f] {
					if state[f] == vcWaitVC && cycle >= readyAt[f] &&
						int(outPort[f]) == oi && (!byClass || ov == int(class[f])) {
						count++
						last = f
					}
					if f == tail {
						break
					}
				}
			}
			if count == 0 {
				continue
			}
			var g int
			if count == 1 {
				r.vaArb(oi, ov).grantSingle(int(last))
				g = int(last)
			} else if r.arbMask {
				if g = r.vaArb(oi, ov).grantMask(mask, r.reqScratch); g < 0 {
					continue
				}
			} else {
				reqs := r.reqScratch // all-false between uses
				for f := head; ; f = next[f] {
					if state[f] == vcWaitVC && cycle >= readyAt[f] &&
						int(outPort[f]) == oi && (!byClass || ov == int(class[f])) {
						reqs[f] = true
					}
					if f == tail {
						break
					}
				}
				g = r.vaArb(oi, ov).grant(reqs)
				// Restore the all-false invariant before any transition
				// can remove a set index from the list.
				for f := head; ; f = next[f] {
					reqs[f] = false
					if f == tail {
						break
					}
				}
				if g < 0 {
					continue
				}
			}
			r.grantVC(cycle, g, oi, ov)
		}
	}
}

// grantVC commits a VA grant: reserve the output VC, activate the input
// VC and (under SpecSA) attempt the speculative same-cycle forward. It
// is the shared tail of stepVA and stepVAFull, so the probe event and
// state transitions are emitted identically by both.
func (r *Router) grantVC(cycle int64, g, oi, ov int) {
	r.reserved[oi*r.vcsPerPort+ov] = true
	r.vcOutVC[g] = int8(ov)
	r.setVCState(int32(g), vcActive)
	r.vcReadyAt[g] = cycle + 1
	r.Counters.VAGrants++
	if r.sh.probe != nil {
		r.sh.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeVCAlloc, Cycle: cycle, Router: r.id,
			Dir: r.outPorts[oi].dir, VC: int8(ov), Flit: *r.vcFrontFlit(g),
		})
	}
	if r.net.cfg.SpecSA {
		r.trySpeculativeForward(cycle, g, oi)
	}
}

// stepVAFull is the reference full scan (StepFullScan mode); it must
// stay behaviourally identical to stepVA.
func (r *Router) stepVAFull(cycle int64) {
	any := false
	for f := range r.vcState {
		if r.vcState[f] == vcWaitVC && cycle >= r.vcReadyAt[f] {
			any = true
			r.Counters.VAReqs++
		}
	}
	if !any {
		return
	}
	vcs := r.vcsPerPort
	for oi := range r.outPorts {
		for ov := 0; ov < vcs; ov++ {
			if r.reserved[oi*vcs+ov] {
				continue
			}
			reqs := r.reqScratch
			found := false
			for f := range r.vcState {
				ok := r.vcState[f] == vcWaitVC && cycle >= r.vcReadyAt[f] &&
					r.vcOutPort[f] == int8(oi) &&
					r.vaCandidate(ov, r.vcClass[f])
				reqs[f] = ok
				found = found || ok
			}
			if !found {
				continue
			}
			g := r.vaArb(oi, ov).grant(reqs)
			if g < 0 {
				continue
			}
			r.grantVC(cycle, g, oi, ov)
		}
	}
}

// saRankOf computes the QoS rank of the eligible front flit of VC f:
// 0 = in-flight body/tail (always highest, so packets cannot be starved
// mid-stream), 1 = control head, 2 = data head. Without QoSPriority all
// flits rank 0 (and the buffered flit is never touched).
func (r *Router) saRankOf(cycle int64, f int) int8 {
	if !r.net.cfg.QoSPriority {
		return 0
	}
	front := r.vcFrontFlit(f)
	if front.Pkt.Class == Control {
		return 0
	}
	// Data flits rank below control: in-flight body/tail at tier 1, new
	// heads at tier 2. Ageing promotes a waiting flit one tier per 16
	// cycles so continuous control storms cannot starve data
	// indefinitely.
	rank := int8(1)
	if front.Type.IsHead() {
		rank = 2
	}
	rank -= int8((cycle - r.vcFrontArrived(f)) / 16)
	if rank < 0 {
		rank = 0
	}
	return rank
}

// stepSA arbitrates the crossbar: at most one flit per output port and
// one per input port each cycle. Winning flits traverse the switch (and
// the link, when ST+LT are combined) and are scheduled into the next
// router.
//
// Eligibility (eligibleOut/saRank) is cached only for the VCs on the
// active pending list; entries not on the list are never read, so their
// stale values from earlier cycles are harmless. A tail forwarded
// mid-loop leaves the list, which matches the full scan's exclusion of
// the same VC through the inBusy mask.
func (r *Router) stepSA(cycle int64) {
	nOut := len(r.outPorts)
	saRank := r.saRank
	readyAt, vcLen, frontAt := r.vcReadyAt, r.vcLen, r.vcFrontAt
	saCount, saLast, saHead, eligNext := r.saCount, r.saLast, r.saHead, r.eligNext
	// Hoisted like the scratch above: the chain stores below keep the
	// compiler from proving these headers loop-invariant on its own.
	outPort, outVC, credits, linkMask := r.vcOutPort, r.vcOutVC, r.credits, r.linkMask
	serMask, serFree := r.serMask, r.serFree
	var outMask uint32 // output ports with at least one eligible VC
	vcs := r.vcsPerPort
	qos := r.net.cfg.QoSPriority
	for _, f := range r.listSA {
		if cycle < readyAt[f] {
			continue
		}
		if vcLen[f] == 0 || frontAt[f] >= cycle {
			continue
		}
		oi := int(outPort[f])
		if serMask>>uint(oi)&1 != 0 && cycle < serFree[oi] {
			r.Counters.SerStalls++
			continue // the serializing d2d link is still streaming a flit
		}
		if linkMask>>uint(oi)&1 != 0 && credits[oi*vcs+int(outVC[f])] <= 0 {
			r.Counters.CreditStalls++
			continue // no downstream buffer space
		}
		// Thread f onto output port oi's candidate chain (list order,
		// so the chain is the pending-list scan restricted to oi).
		bit := uint32(1) << uint(oi)
		if outMask&bit == 0 {
			saCount[oi] = 0
			saHead[oi] = f
			outMask |= bit
		} else {
			eligNext[saLast[oi]] = f
		}
		saCount[oi]++
		saLast[oi] = f
		if qos {
			saRank[f] = r.saRankOf(cycle, int(f))
		} else {
			saRank[f] = 0
		}
		r.Counters.SAReqs++
	}
	if outMask == 0 {
		return
	}
	inBusy, outBusy := r.switchMasks(cycle)
	if outMask&(outMask-1) == 0 {
		// One eligible output port: the rotation cannot matter, so skip
		// the modulo entirely.
		r.saGrantPort(cycle, bits.TrailingZeros32(outMask), inBusy, outBusy)
		return
	}
	// Visit eligible output ports in rotated priority order (start,
	// start+1, ..., wrap-around), extracting set mask bits instead of
	// testing every port.
	start := int(uint64(cycle) % uint64(nOut))
	for m := outMask >> uint(start); m != 0; m &= m - 1 {
		r.saGrantPort(cycle, start+bits.TrailingZeros32(m), inBusy, outBusy)
	}
	for m := outMask & (1<<uint(start) - 1); m != 0; m &= m - 1 {
		r.saGrantPort(cycle, bits.TrailingZeros32(m), inBusy, outBusy)
	}
}

// saGrantPort arbitrates one output port among the cycle's eligible VCs
// and forwards the winner. The port's candidate chain (snapshotted by
// stepSA) is walked rather than the live pending list: a VC forwarded
// earlier this cycle (tail release drops it from listSA) stays in the
// chain, but its input port is marked busy, so it can never be granted
// twice — the same exclusion the full scan gets from its inBusy mask.
func (r *Router) saGrantPort(cycle int64, oi int, inBusy, outBusy []int64) {
	if outBusy[oi] == cycle {
		return
	}
	var g int
	if r.saCount[oi] == 1 {
		// Sole candidate: skip the request-vector build. grantSingle
		// advances the arbiter exactly like grant with one bit set.
		f := r.saLast[oi]
		if inBusy[r.portOf[f]] == cycle {
			return
		}
		r.saArb(oi).grantSingle(int(f))
		g = int(f)
	} else if r.arbMask {
		portOf, next := r.portOf, r.eligNext
		head, tail := r.saHead[oi], r.saLast[oi]
		var mask uint64
		if r.net.cfg.QoSPriority {
			// Restrict candidates to the best QoS tier present.
			saRank := r.saRank
			best := int8(127)
			for f := head; ; f = next[f] {
				if inBusy[portOf[f]] != cycle && saRank[f] < best {
					best = saRank[f]
				}
				if f == tail {
					break
				}
			}
			if best == 127 {
				return
			}
			for f := head; ; f = next[f] {
				if inBusy[portOf[f]] != cycle && saRank[f] == best {
					mask |= 1 << uint(f)
				}
				if f == tail {
					break
				}
			}
		} else {
			for f := head; ; f = next[f] {
				if inBusy[portOf[f]] != cycle {
					mask |= 1 << uint(f)
				}
				if f == tail {
					break
				}
			}
		}
		if mask == 0 {
			return
		}
		if g = r.saArb(oi).grantMask(mask, r.reqScratch); g < 0 {
			return
		}
	} else {
		portOf, next := r.portOf, r.eligNext
		head, tail := r.saHead[oi], r.saLast[oi]
		reqs := r.reqScratch // all-false between uses
		found := false
		if r.net.cfg.QoSPriority {
			// Restrict candidates to the best QoS tier present.
			saRank := r.saRank
			best := int8(127)
			for f := head; ; f = next[f] {
				if inBusy[portOf[f]] != cycle && saRank[f] < best {
					best = saRank[f]
				}
				if f == tail {
					break
				}
			}
			if best == 127 {
				return
			}
			for f := head; ; f = next[f] {
				if inBusy[portOf[f]] != cycle && saRank[f] == best {
					reqs[f] = true
					found = true
				}
				if f == tail {
					break
				}
			}
		} else {
			// Without QoS every rank is 0 (stepSA wrote them), so the
			// best-tier prescan collapses into the request build.
			for f := head; ; f = next[f] {
				if inBusy[portOf[f]] != cycle {
					reqs[f] = true
					found = true
				}
				if f == tail {
					break
				}
			}
		}
		if !found {
			return // nothing was set; reqs still all-false
		}
		g = r.saArb(oi).grant(reqs)
		// Restore the all-false invariant before the next stage runs.
		for f := head; ; f = next[f] {
			reqs[f] = false
			if f == tail {
				break
			}
		}
		if g < 0 {
			return
		}
	}
	pi := int(r.portOf[g])
	r.forward(cycle, g, oi)
	inBusy[pi] = cycle
	outBusy[oi] = cycle
	r.Counters.SAGrants++
}

// stepSAFull is the reference full scan (StepFullScan mode); it must
// stay behaviourally identical to stepSA.
func (r *Router) stepSAFull(cycle int64) {
	nOut := len(r.outPorts)
	eligibleOut, saRank := r.eligibleOut, r.saRank
	vcs := r.vcsPerPort
	any := false
	for f := range r.vcState {
		eligibleOut[f] = -1
		if r.vcState[f] != vcActive || cycle < r.vcReadyAt[f] {
			continue
		}
		if r.vcLen[f] == 0 || r.vcFrontArrived(f) >= cycle {
			continue
		}
		oi := r.outIndex[r.vcOutDir[f]]
		if r.serMask>>uint(oi)&1 != 0 && cycle < r.serFree[oi] {
			r.Counters.SerStalls++
			continue // the serializing d2d link is still streaming a flit
		}
		if r.linkMask>>uint(oi)&1 != 0 && r.credits[int(oi)*vcs+int(r.vcOutVC[f])] <= 0 {
			r.Counters.CreditStalls++
			continue // no downstream buffer space
		}
		eligibleOut[f] = oi
		saRank[f] = r.saRankOf(cycle, f)
		r.Counters.SAReqs++
		any = true
	}
	if !any {
		return
	}
	inBusy, outBusy := r.switchMasks(cycle)
	start := int(uint64(cycle) % uint64(nOut)) // rotate output priority
	for k := 0; k < nOut; k++ {
		oi := start + k
		if oi >= nOut {
			oi -= nOut
		}
		if outBusy[oi] == cycle {
			continue
		}
		// Restrict candidates to the best QoS tier present.
		best := int8(127)
		for f := range r.reqScratch {
			if eligibleOut[f] == int8(oi) && inBusy[r.portOf[f]] != cycle && saRank[f] < best {
				best = saRank[f]
			}
		}
		if best == 127 {
			continue
		}
		reqs := r.reqScratch
		for f := range reqs {
			reqs[f] = eligibleOut[f] == int8(oi) && inBusy[r.portOf[f]] != cycle && saRank[f] == best
		}
		g := r.saArb(oi).grant(reqs)
		if g < 0 {
			continue
		}
		pi := int(r.portOf[g])
		r.forward(cycle, g, oi)
		inBusy[pi] = cycle
		outBusy[oi] = cycle
		r.Counters.SAGrants++
	}
}

// trySpeculativeForward attempts to move the freshly VC-allocated head
// flit of VC f through the crossbar in the same cycle as its VA grant
// (speculative switch allocation, Figure 8 (b)). Non-speculative grants
// made earlier this cycle keep their ports; speculation only uses
// leftover switch slots.
func (r *Router) trySpeculativeForward(cycle int64, f, oi int) {
	inBusy, outBusy := r.switchMasks(cycle)
	pi := int(r.portOf[f])
	if inBusy[pi] == cycle || outBusy[oi] == cycle {
		return
	}
	if r.vcLen[f] == 0 || r.vcFrontArrived(f) >= cycle {
		return
	}
	if r.serMask>>uint(oi)&1 != 0 && cycle < r.serFree[oi] {
		return
	}
	if r.linkMask>>uint(oi)&1 != 0 && r.credits[oi*r.vcsPerPort+int(r.vcOutVC[f])] <= 0 {
		return
	}
	r.Counters.SAReqs++
	r.Counters.SAGrants++
	r.forward(cycle, f, oi)
	inBusy[pi] = cycle
	outBusy[oi] = cycle
}

// forward sends the front flit of input VC fi through output port oi.
// The flit is read and mutated (hop count) in its ring slot and copied
// out exactly once — into the downstream ring (vcReserveSlot) or the
// ejection event — then dropped without a pop copy.
func (r *Router) forward(cycle int64, fi, oi int) {
	cfg := &r.net.cfg
	pi := int(r.portOf[fi])
	ip := &r.inPorts[pi]
	op := &r.outPorts[oi]
	f := &r.bufFlit[fi*r.bufDepth+int(r.vcHead[fi])]
	frac := r.layerFracN(f.ActiveLayers)
	outVC := int(r.vcOutVC[fi])

	r.Counters.BufReads++
	r.Counters.WBufReads += frac
	r.Counters.XbarFlits++
	r.Counters.WXbarFlits += frac
	sh := r.sh
	if sh.probe != nil {
		sh.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeSAGrant, Cycle: cycle, Router: r.id, Dir: op.dir, VC: int8(outVC), Flit: *f,
		})
	}

	// Credit back to the upstream router (the NI checks space directly);
	// a credit crossing the shard boundary rides the mailbox's credit
	// lane instead of the shard's own ring. The return is delayed by the
	// reverse link's latency plus serialization occupancy (credDelta is 1
	// for on-chip links, matching the historical next-cycle return).
	if ip.upCredBase >= 0 {
		ci := ip.upCredBase + int32(r.vcOf[fi])
		if ip.upShard == r.shard {
			cs := sh.credSlot(cycle, cycle+ip.credDelta)
			*cs = append(*cs, ci)
		} else {
			cs := r.net.mailCredSlot(sh, ip.upShard, cycle+ip.credDelta)
			*cs = append(*cs, ci)
		}
	}

	if f.Type.IsHead() && op.dir != topology.Local {
		f.Pkt.Hops++
	}
	isTail := f.Type.IsTail()

	if op.dir == topology.Local {
		// Ejection: ST (and wire to the NI) still takes the configured
		// cycles; the sink always accepts. Ejections never cross a
		// shard boundary (the local port has no downstream router), so
		// the payload goes into the shard's own ejection ring.
		at := cycle + int64(cfg.STLTCycles)
		s := sh.evSlot(cycle, at)
		ej := &sh.ejRing[at&sh.ringMask]
		*s = append(*s, ^event(len(*ej)))
		*ej = append(*ej, ejEntry{flit: *f, router: int32(r.id)})
		if sh.stamp {
			idx := &sh.evIdx[sh.phase][at&sh.ringMask]
			*idx = append(*idx, sh.hot.seq)
			sh.hot.seq++
		}
	} else {
		ci := oi*r.vcsPerPort + outVC
		r.credits[ci]--
		if r.credits[ci] < 0 {
			panic(fmt.Sprintf("noc: router %d negative credits on %v vc %d", r.id, op.dir, outVC))
		}
		r.Counters.LinkFlits++
		r.Counters.WLinkFlits += frac
		op.flitCount++
		if sh.probe != nil {
			sh.probe.ProbeEvent(ProbeEvent{
				Kind: ProbeLink, Cycle: cycle, Router: r.id, Dir: op.dir, VC: int8(outVC), Flit: *f,
			})
		}
		r.Counters.LinkMMFlits += op.link.LengthMM
		r.Counters.WLinkMMFlits += op.link.LengthMM * frac
		if op.dir.IsExpress() {
			r.Counters.ExpFlits++
		}
		if op.dir.IsVertical() {
			r.Counters.VertFlits++
		}
		if op.class.IsD2D() {
			r.Counters.D2DFlits++
		}
		if op.serCycles > 1 {
			// A narrow d2d link streams this flit for serCycles cycles;
			// the SA stages refuse the port until it drains.
			r.serFree[oi] = cycle + op.serCycles
		}
		// arriveDelta folds ST/LT, link latency and serialization into one
		// delta; it equals STLTCycles for on-chip links, preserving
		// bit-identity with the single-chip model.
		at := cycle + op.arriveDelta
		gi := op.downVCBase + event(outVC)
		if op.downShard == r.shard {
			// The flit body goes straight into its future slot of the
			// downstream VC ring (single copy); the event word is the
			// destination's global flat VC index — the arrival notice
			// that exposes the flit at the delivery cycle. This is
			// vcReserveGlobal (soa.go) spelled out: the compiler won't
			// inline it and the call sits on the busiest line of the
			// simulator.
			st := &r.net.soa
			depth := r.bufDepth
			occ := int(st.vcLen[gi]) + int(st.vcInFly[gi])
			if occ >= depth {
				r.net.reserveOverflow(gi)
			}
			slot := int(st.vcHead[gi]) + occ
			if slot >= depth {
				slot -= depth
			}
			st.bufFlit[int(gi)*depth+slot] = *f
			st.bufArrived[int(gi)*depth+slot] = at
			st.vcInFly[gi]++
			s := sh.evSlot(cycle, at)
			*s = append(*s, gi)
			if sh.stamp {
				idx := &sh.evIdx[sh.phase][at&sh.ringMask]
				*idx = append(*idx, sh.hot.seq)
				sh.hot.seq++
			}
		} else {
			// Cross-shard forward: the downstream arrays belong to a
			// shard that may be mid-cycle, so the flit body rides the
			// boundary mailbox and is pushed into the destination ring
			// at delivery time (deliverMailArrival). The credit check
			// above already guaranteed the space.
			var seq int32
			if sh.stamp {
				seq = sh.hot.seq
				sh.hot.seq++
			}
			ms := r.net.mailEvSlot(sh, op.downShard, at)
			*ms = append(*ms, xEvent{gi: gi, idx: seq, flit: *f})
		}
	}
	r.vcDrop(fi)

	if isTail {
		r.reserved[oi*r.vcsPerPort+outVC] = false
		if next := r.vcFrontFlit(fi); next != nil {
			if !next.Type.IsHead() {
				panic(fmt.Sprintf("noc: router %d flit after tail is not a head", r.id))
			}
			r.startHead(int32(fi), cycle)
		} else {
			r.setVCState(int32(fi), vcIdle)
		}
	}
}

// occupancy returns the total buffered flits (for tests and saturation
// diagnostics).
func (r *Router) occupancy() int {
	n := 0
	for _, l := range r.vcLen {
		n += int(l)
	}
	return n
}
