package noc

import (
	"fmt"

	"mira/internal/topology"
)

// Scheduled deliveries — a flit landing in a downstream buffer or a
// flit leaving the network at the NI — travel the event ring as single
// int32 words. A non-negative word is a link arrival carrying the
// destination's global flat VC index (the flit body itself was
// direct-written into that VC's ring slot at send time, so the event
// needs no payload); a negative word is an ejection, ^word indexing the
// cycle's ejRing payload slice. Credit returns travel the separate
// credit ring: they touch only the flat credit array and never emit
// probe events, so they need neither ordering against deliveries nor a
// payload. The forward path appends one word per flit per hop, so its
// size is hot.
//
// The rings live per shard (shard.go): each shard schedules and
// delivers its own traffic, and the per-(source, destination) boundary
// mailboxes carry the cross-shard remainder. With Shards <= 1 the
// single shard's rings are the network's rings and nothing crosses a
// boundary.
type event = int32

// ejEntry is the payload of one ejection event: the flit handed to the
// NI and the router it left from (for the eject probe).
type ejEntry struct {
	flit   Flit
	router int32 // topology.NodeID
}

// minRingLen is the floor of the per-network event-ring length. The
// ring must cover the longest scheduling delta — ST+LT (<= 2 cycles)
// plus the slowest link's latency and serialization — so NewNetwork
// sizes it to the next power of two above that horizon, never below
// this historical minimum (which keeps the slot arithmetic of all
// on-chip topologies, whose deltas are <= 3, bit-for-bit unchanged).
const minRingLen = 8

// ni is the network interface at one node: an unbounded source queue and
// the wormhole injection state of the packet currently entering the
// router.
//
// The queue is a slice with an explicit head cursor rather than a
// re-sliced FIFO: popping via queue[1:] strands the consumed prefix of
// the backing array, so under steady traffic every Enqueue append
// reallocates. With the cursor, the slice resets to its full capacity
// whenever it drains and steady-state enqueues stay allocation-free.
type ni struct {
	queue     []injJob
	qhead     int
	cur       injJob
	injecting bool
	curVC     int
	curSeq    int
}

// pending returns the queued jobs not yet handed to the injector.
func (s *ni) pending() []injJob { return s.queue[s.qhead:] }

// injJob pairs a packet with its per-flit layer profile.
type injJob struct {
	pkt    *Packet
	layers []uint8 // nil = all layers
}

// Network instantiates routers over a topology and advances them cycle
// by cycle.
type Network struct {
	cfg Config
	// routers is a contiguous value slice: the per-router headers (the
	// window slice descriptors and counters) sit side by side in one
	// allocation, so event delivery and the stage dispatch loops index
	// into a dense array instead of chasing per-router heap pointers.
	routers []Router
	nis     []ni
	cycle   int64

	// shards partitions the routers/NIs into contiguous ID ranges that
	// step concurrently (shard.go); each shard owns the event/credit/
	// ejection rings and activity sets for its range. hot holds the
	// cache-line-padded per-shard backlog counters the accessors below
	// merge on read. mail is the S x S boundary-mailbox matrix
	// (mail[src][dst]), allocated only when S > 1.
	shards []shardState
	hot    []shardHot
	mail   [][]shardMail
	// pool is the persistent shard worker pool (nil until the first
	// sharded step starts it lazily; see pool.go).
	pool *shardPool
	// probeScratch is the reusable epilogue buffer the sharded step
	// merges per-shard probe events into (drainShardOutputs).
	probeScratch []keyedProbeEvent

	// ringLen is the event-ring length (a power of two >= minRingLen
	// sized from the topology's slowest link) and ringMask its slot
	// mask; every shard ring and boundary mailbox is allocated to it.
	ringLen  int64
	ringMask int64

	// soa owns the flattened router-pipeline state; every Router holds
	// windows (sub-slices) of these arrays. See soa.go.
	soa soaState
	// layerFrac[k] precomputes k/Layers (index 0 and out-of-range mean
	// "all layers active", frac 1), so the per-flit weighted counters
	// cost a table lookup instead of a float divide.
	layerFrac []float64

	nextPacketID int64

	// onEject is invoked when a packet's tail flit leaves the network.
	onEject func(*Packet)

	// probe, when non-nil, observes every pipeline event (see probe.go).
	// Emission sites nil-check it so an unobserved network pays one
	// branch per site and nothing else. Under sharded stepping the
	// emission sites go through the per-shard buffering sinks instead;
	// SetProbe keeps both in sync.
	probe Probe

	// meter, when non-nil, accumulates engine self-telemetry — per-shard
	// wall time per cycle phase, boundary-mailbox crossing counts — with
	// the same one-branch-when-detached contract as probe (see
	// enginemeter.go).
	meter *EngineMeter
}

// NewNetwork builds a network from cfg. It panics on invalid
// configurations; use cfg.Validate for a non-panicking check.
func NewNetwork(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{cfg: cfg}
	num := cfg.Topo.NumNodes()
	n.routers = make([]Router, num)
	n.nis = make([]ni, num)
	n.layerFrac = make([]float64, cfg.Layers+1)
	n.layerFrac[0] = 1
	for k := 1; k <= cfg.Layers; k++ {
		n.layerFrac[k] = float64(k) / float64(cfg.Layers)
	}
	// Two-phase construction: build the port metadata views first (the
	// flat-array sizes depend on every router's port count), then
	// allocate the struct-of-arrays state once and hand each router its
	// windows.
	totalPorts := 0
	for i := range n.routers {
		initRouter(&n.routers[i], n, topology.NodeID(i))
		totalPorts += len(n.routers[i].inPorts)
	}
	n.soa = newSoAState(&n.cfg, totalPorts*cfg.VCs, totalPorts)
	vcBase, portBase := 0, 0
	for i := range n.routers {
		r := &n.routers[i]
		r.bind(&n.soa, vcBase, portBase)
		for k := 0; k < len(r.inPorts)*cfg.VCs; k++ {
			n.soa.ownerOf[vcBase+k] = int32(i)
		}
		portBase += len(r.inPorts)
		vcBase += len(r.inPorts) * cfg.VCs
	}
	// Event-ring horizon: the largest scheduling delta is an arrival
	// over the slowest link (ST+LT-1 cycles of pipeline plus the link's
	// latency and serialization); credit returns (latency + ser - 1)
	// and ejections (ST+LT) are never later. Round up to a power of
	// two, no smaller than the historical minimum.
	maxDelta := int64(cfg.STLTCycles-1) + int64(cfg.Topo.MaxLinkDelay())
	n.ringLen = minRingLen
	for n.ringLen <= maxDelta {
		n.ringLen <<= 1
	}
	n.ringMask = n.ringLen - 1
	// Shard setup: contiguous router-ID ranges, as equal as integer
	// division allows. Shards = 0 (the default) means one shard —
	// sequential stepping; -1 picks a count from the mesh size and
	// GOMAXPROCS (autoShards); the count is clamped to the router
	// count. This must precede the third pass below, which bakes each
	// port's upstream/downstream shard into the port views.
	S := cfg.Shards
	if S == AutoShards {
		S = autoShards(num)
	}
	if S < 1 {
		S = 1
	}
	if S > num {
		S = num
	}
	n.shards = make([]shardState, S)
	n.hot = make([]shardHot, S)
	if S > 1 {
		n.mail = make([][]shardMail, S)
		for i := range n.mail {
			n.mail[i] = make([]shardMail, S)
			for j := range n.mail[i] {
				m := &n.mail[i][j]
				for p := 0; p < 2; p++ {
					m.ev[p] = make([][]xEvent, n.ringLen)
				}
				m.cred = make([][]int32, n.ringLen)
			}
		}
	}
	for i := 0; i < S; i++ {
		sh := &n.shards[i]
		sh.idx = int32(i)
		sh.lo = int32(i * num / S)
		sh.hi = int32((i + 1) * num / S)
		sh.net = n
		sh.hot = &n.hot[i]
		sh.ringLen = n.ringLen
		sh.ringMask = n.ringMask
		for p := 0; p < 2; p++ {
			sh.ev[p] = make([][]event, n.ringLen)
			sh.evIdx[p] = make([][]int32, n.ringLen)
		}
		sh.ejRing = make([][]ejEntry, n.ringLen)
		sh.cred = make([][]int32, n.ringLen)
		sh.actRC = newRouterSet(num)
		sh.actVA = newRouterSet(num)
		sh.actSA = newRouterSet(num)
		sh.actNI = newRouterSet(num)
		sh.actScratch = make([]int32, 0, sh.hi-sh.lo)
		for ri := sh.lo; ri < sh.hi; ri++ {
			n.routers[ri].sh = sh
			n.routers[ri].shard = int32(i)
		}
	}
	// Third pass: precompute each input port's upstream credit slot and
	// shard and each output port's downstream VC base and shard, which
	// need every router's credBase/vcBase (bind) and shard assignment
	// fixed first.
	for i := range n.routers {
		r := &n.routers[i]
		for pi := range r.inPorts {
			ip := &r.inPorts[pi]
			ip.upCredBase = -1
			ip.upShard = r.shard
			if ip.upstream < 0 {
				continue
			}
			up := &n.routers[ip.upstream]
			oi := up.outIndex[ip.dir.Opposite()]
			if oi < 0 {
				panic(fmt.Sprintf("noc: router %d has no return port toward %d", ip.upstream, r.id))
			}
			ip.upCredBase = up.credBase + int32(int(oi)*cfg.VCs)
			ip.upShard = up.shard
		}
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			op.downVCBase = -1
			op.downShard = r.shard
			if !op.hasLink {
				continue
			}
			down := &n.routers[op.link.Dst]
			dpi := down.inIndex[op.dir.Opposite()]
			if dpi < 0 {
				panic(fmt.Sprintf("noc: link from %d via %v lands on missing port", r.id, op.dir))
			}
			op.downVCBase = down.vcBase + int32(int(dpi)*cfg.VCs)
			op.downShard = down.shard
		}
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() *Config { return &n.cfg }

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Router returns the router at node id (for tests and instrumentation).
func (n *Network) Router(id topology.NodeID) *Router { return &n.routers[id] }

// Shards returns the effective shard count (>= 1; see Config.Shards).
func (n *Network) Shards() int { return len(n.shards) }

// SetEjectHandler installs the packet-completion callback.
func (n *Network) SetEjectHandler(fn func(*Packet)) { n.onEject = fn }

// Enqueue places a packet described by spec into its source NI queue at
// the current cycle. The returned packet can be inspected after
// ejection.
func (n *Network) Enqueue(spec Spec) (*Packet, error) {
	if err := spec.Validate(n.cfg.Topo.NumNodes()); err != nil {
		return nil, err
	}
	n.nextPacketID++
	pkt := &Packet{
		ID:        n.nextPacketID,
		Src:       spec.Src,
		Dst:       spec.Dst,
		Size:      spec.Size,
		Class:     spec.Class,
		CreatedAt: n.cycle,
	}
	n.nis[spec.Src].queue = append(n.nis[spec.Src].queue, injJob{pkt: pkt, layers: spec.LayersPerFlit})
	sh := n.routers[spec.Src].sh
	sh.hot.queuedPackets++
	sh.hot.queuedFlits += int64(pkt.Size)
	sh.actNI.add(int(spec.Src))
	return pkt, nil
}

// QueuedPackets returns packets waiting in, or currently entering
// through, source NIs (merged over the per-shard counters).
func (n *Network) QueuedPackets() int64 {
	var t int64
	for i := range n.hot {
		t += n.hot[i].queuedPackets
	}
	return t
}

// InFlightFlits returns flits buffered in routers or on links.
func (n *Network) InFlightFlits() int64 {
	var t int64
	for i := range n.hot {
		t += n.hot[i].inFlightFlits
	}
	return t
}

// QueuedFlits returns flits of enqueued packets that have not yet been
// injected into a router.
func (n *Network) QueuedFlits() int64 {
	var t int64
	for i := range n.hot {
		t += n.hot[i].queuedFlits
	}
	return t
}

// BacklogFlits returns the total network backlog: flits waiting in NI
// queues plus flits buffered in routers or on links. It merges the
// per-shard incremental counters and is therefore O(Shards); the
// simulator samples it every drain cycle for saturation and deadlock
// detection.
func (n *Network) BacklogFlits() int64 {
	var t int64
	for i := range n.hot {
		t += n.hot[i].queuedFlits + n.hot[i].inFlightFlits
	}
	return t
}

// Idle reports whether no traffic remains anywhere in the network.
func (n *Network) Idle() bool {
	for i := range n.hot {
		if n.hot[i].queuedPackets != 0 || n.hot[i].inFlightFlits != 0 {
			return false
		}
	}
	return true
}

// Step advances the simulation by one cycle: sequentially with a single
// shard, concurrently across shards otherwise (shard.go). The two paths
// are bit-identical for any shard count.
func (n *Network) Step() {
	n.cycle++
	if len(n.shards) > 1 {
		n.stepSharded()
		return
	}
	if m := n.meter; m != nil {
		n.stepSeqMetered(m)
		return
	}
	n.stepSeq()
}

// stepSeq is the single-shard cycle — the sequential reference path the
// sharded step is checked against. It runs on shard 0's rings and
// activity sets (with Shards <= 1 they are the network's only ones);
// the shard's send phase stays pinned to 0, so every append shares one
// ring segment and the delivery loop sees the historical single-ring
// order at the historical cost.
func (n *Network) stepSeq() {
	sh := &n.shards[0]
	slot := n.cycle & n.ringMask

	// 1. Deliver events scheduled for this cycle. Credits first: they
	// only increment flat counters and interact with nothing below, so
	// their ordering against flit deliveries is unobservable.
	creds := sh.cred[slot]
	sh.cred[slot] = creds[:0]
	depth := int32(n.cfg.BufDepth)
	for _, ci := range creds {
		n.soa.credits[ci]++
		if n.soa.credits[ci] > depth {
			panic(fmt.Sprintf("noc: credit overflow at flat credit slot %d", ci))
		}
	}
	events := sh.ev[0][slot]
	sh.ev[0][slot] = events[:0]
	ownerOf := n.soa.ownerOf
	for _, ev := range events {
		if ev >= 0 {
			// Link arrival: ev is the destination's global flat VC
			// index. Expose the flit pre-written by the upstream
			// forward (vcArrive), with exactly the bookkeeping
			// acceptFlit does for an injected flit.
			r := &n.routers[ownerOf[ev]]
			fi := int(ev - r.vcBase)
			f := r.vcArrive(fi)
			r.Counters.BufWrites++
			r.Counters.WBufWrites += r.layerFracN(f.ActiveLayers)
			if f.Type.IsHead() && r.vcOcc(fi) == 1 {
				if r.vcState[fi] != vcIdle {
					r.badArrivalState(fi)
				}
				r.startHead(int32(fi), n.cycle)
			}
			continue
		}
		sh.hot.inFlightFlits--
		e := &sh.ejRing[slot][^ev]
		if n.probe != nil {
			n.probe.ProbeEvent(ProbeEvent{Kind: ProbeEject, Cycle: n.cycle, Router: topology.NodeID(e.router), Flit: e.flit})
		}
		if e.flit.Type.IsTail() {
			pkt := e.flit.Pkt
			pkt.EjectedAt = n.cycle
			if n.onEject != nil {
				n.onEject(pkt)
			}
		}
	}
	// New events only ever target future slots (evSlot rejects d <= 0),
	// so the payload slice is safe to recycle once the loop is done.
	sh.ejRing[slot] = sh.ejRing[slot][:0]

	// 2. Inject from NIs (one flit per node per cycle), then the router
	// pipelines in reverse stage order so a flit advances at most one
	// stage per cycle.
	//
	// The activity path snapshots each stage's active set immediately
	// before stepping it (members in ascending ID order, matching the
	// full scan's iteration order), so routers activated by an earlier
	// stage of the same cycle are visited exactly as the full scan
	// would visit them — where they find only non-ready VCs and do
	// nothing.
	if n.cfg.Mode == StepFullScan {
		for i := range n.nis {
			n.inject(topology.NodeID(i))
		}
		for i := range n.routers {
			n.routers[i].stepSAFull(n.cycle)
		}
		for i := range n.routers {
			n.routers[i].stepVAFull(n.cycle)
		}
		for i := range n.routers {
			n.routers[i].stepRCFull(n.cycle)
		}
		return
	}
	sh.actScratch = sh.actNI.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.inject(topology.NodeID(id))
	}
	sh.actScratch = sh.actSA.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.routers[id].stepSA(n.cycle)
	}
	sh.actScratch = sh.actVA.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.routers[id].stepVA(n.cycle)
	}
	sh.actScratch = sh.actRC.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.routers[id].stepRC(n.cycle)
	}
	if n.cfg.Mode == StepChecked {
		if err := n.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("noc: checked step failed at cycle %d: %v", n.cycle, err))
		}
	}
}

// CheckedStep advances one cycle (honouring Config.Mode) and then
// validates every flow-control and activity invariant, returning the
// first violation instead of panicking. It is the debugging entry point
// for bisecting activity-tracking bugs regardless of Config.Mode.
func (n *Network) CheckedStep() error {
	n.Step()
	return n.CheckInvariants()
}

// inject advances the NI at node id by at most one flit. It touches
// only state of id's shard (the NI, the router's local port, the
// shard's hot counters and NI set), so shards inject concurrently.
func (n *Network) inject(id topology.NodeID) {
	s := &n.nis[id]
	r := &n.routers[id]
	sh := r.sh
	lpi := int(r.inIndex[topology.Local])

	if !s.injecting {
		if len(s.pending()) == 0 {
			// Drained NI: drop out of the active set until the next
			// Enqueue (only reached in full-scan mode; the activity
			// path removes the NI eagerly when its last packet
			// completes).
			sh.actNI.remove(int(id))
			return
		}
		job := s.queue[s.qhead]
		vc := n.pickInjectionVC(r, lpi, job.pkt.Class)
		if vc < 0 {
			return // all suitable local VCs busy
		}
		s.queue[s.qhead] = injJob{} // release the Packet reference
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue, s.qhead = s.queue[:0], 0
		}
		s.cur = job
		s.injecting = true
		s.curVC = vc
		s.curSeq = 0
	}

	if r.vcOcc(r.flatVC(lpi, s.curVC)) >= n.cfg.BufDepth {
		return // wait for space
	}
	job := s.cur
	f := Flit{Pkt: job.pkt, Seq: int32(s.curSeq)}
	switch {
	case job.pkt.Size == 1:
		f.Type = HeadTailFlit
	case s.curSeq == 0:
		f.Type = HeadFlit
	case s.curSeq == job.pkt.Size-1:
		f.Type = TailFlit
	default:
		f.Type = BodyFlit
	}
	if job.layers != nil {
		f.ActiveLayers = job.layers[s.curSeq]
	}
	if f.Type.IsHead() {
		job.pkt.InjectedAt = n.cycle
	}
	// Emit the inject event before acceptFlit: with look-ahead routing,
	// acceptFlit computes the route and emits the flit's first route
	// event, and the trace contract promises inject precedes every later
	// event of the same flit (obs.Replay enforces it).
	if sh.probe != nil {
		sh.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeInject, Cycle: n.cycle, Router: id,
			Dir: topology.Local, VC: int8(s.curVC), Flit: f,
		})
	}
	r.acceptFlit(n.cycle, lpi, s.curVC, f)
	sh.hot.inFlightFlits++
	sh.hot.queuedFlits--
	s.curSeq++
	if s.curSeq == job.pkt.Size {
		s.cur = injJob{}
		s.injecting = false
		sh.hot.queuedPackets--
		if len(s.pending()) == 0 {
			sh.actNI.remove(int(id))
		}
	}
}

// pickInjectionVC selects an idle VC of router r's local input port
// (index lpi) for a new packet, or -1.
func (n *Network) pickInjectionVC(r *Router, lpi int, c Class) int {
	base := r.flatVC(lpi, 0)
	if n.cfg.Policy == ByClass {
		v := int(c)
		if r.vcState[base+v] == vcIdle && r.vcLen[base+v] == 0 {
			return v
		}
		return -1
	}
	for v := 0; v < r.vcsPerPort; v++ {
		if r.vcState[base+v] == vcIdle && r.vcLen[base+v] == 0 {
			return v
		}
	}
	return -1
}

// TotalCounters aggregates all router activity counters.
func (n *Network) TotalCounters() Counters {
	var total Counters
	for i := range n.routers {
		total.Add(&n.routers[i].Counters)
	}
	return total
}

// RouterCounters returns per-router counters indexed by node ID (a copy).
func (n *Network) RouterCounters() []Counters {
	out := make([]Counters, len(n.routers))
	for i := range n.routers {
		out[i] = n.routers[i].Counters
	}
	return out
}

// ResetCounters zeroes all router counters (called at the end of warm-up
// so that power reflects the measurement window only).
func (n *Network) ResetCounters() {
	for i := range n.routers {
		r := &n.routers[i]
		r.Counters = Counters{}
		for oi := range r.outPorts {
			r.outPorts[oi].flitCount = 0
		}
	}
}

// LinkLoad is the traffic carried by one unidirectional link.
type LinkLoad struct {
	Src   topology.NodeID
	Dir   topology.Dir
	Flits int64
}

// LinkLoads reports every link's flit count since the last counter
// reset, in deterministic (router, port) order. The spread between hot
// and cold links exposes pattern asymmetry (e.g. tornado loading only
// the eastbound channels).
func (n *Network) LinkLoads() []LinkLoad {
	var out []LinkLoad
	for i := range n.routers {
		r := &n.routers[i]
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			if !op.hasLink {
				continue
			}
			out = append(out, LinkLoad{Src: r.id, Dir: op.dir, Flits: op.flitCount})
		}
	}
	return out
}

// Occupancy returns the total number of buffered flits (diagnostics).
func (n *Network) Occupancy() int {
	total := 0
	for i := range n.routers {
		total += n.routers[i].occupancy()
	}
	return total
}
