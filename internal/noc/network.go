package noc

import (
	"fmt"

	"mira/internal/topology"
)

type eventKind uint8

const (
	evFlit eventKind = iota
	evCredit
	evEject
)

// event is a scheduled delivery: a flit landing in a downstream buffer,
// a credit returning upstream, or a flit leaving the network at the NI.
type event struct {
	kind   eventKind
	router topology.NodeID
	dir    topology.Dir
	vc     int
	flit   Flit
}

// ringSize bounds the event horizon; all modeled delays (ST+LT <= 2
// cycles, credit 1 cycle) are far below it.
const ringSize = 8

// ni is the network interface at one node: an unbounded source queue and
// the wormhole injection state of the packet currently entering the
// router.
type ni struct {
	queue     []injJob
	cur       injJob
	injecting bool
	curVC     int
	curSeq    int
}

// injJob pairs a packet with its per-flit layer profile.
type injJob struct {
	pkt    *Packet
	layers []uint8 // nil = all layers
}

// Network instantiates routers over a topology and advances them cycle
// by cycle.
type Network struct {
	cfg     Config
	routers []*Router
	nis     []ni
	ring    [ringSize][]event
	cycle   int64

	// inFlightFlits counts flits currently inside the network (buffered
	// or on a link); queuedFlits counts flits of enqueued packets that
	// have not yet entered a router. Both are maintained incrementally
	// at enqueue/inject/eject so the simulator's per-cycle backlog and
	// drain checks are O(1) instead of rescanning every NI queue
	// (CheckInvariants cross-checks them against a full scan).
	inFlightFlits int64
	queuedFlits   int64
	queuedPackets int64
	nextPacketID  int64

	// actRC/actVA/actSA hold the routers with at least one VC pending
	// in the corresponding pipeline stage; actNI holds the NIs with a
	// queued or partially injected packet. Maintained incrementally
	// (Router.setVCState, Enqueue, inject) so Step only visits work
	// that exists; actScratch is the reusable per-stage snapshot.
	// Iteration is in ascending ID order, which keeps event-ring append
	// order — and therefore every result — bit-identical to the full
	// scan (see activity.go).
	actRC, actVA, actSA, actNI routerSet
	actScratch                 []int32

	// onEject is invoked when a packet's tail flit leaves the network.
	onEject func(*Packet)

	// probe, when non-nil, observes every pipeline event (see probe.go).
	// Emission sites nil-check it so an unobserved network pays one
	// branch per site and nothing else.
	probe Probe
}

// NewNetwork builds a network from cfg. It panics on invalid
// configurations; use cfg.Validate for a non-panicking check.
func NewNetwork(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Network{cfg: cfg}
	num := cfg.Topo.NumNodes()
	n.routers = make([]*Router, num)
	n.nis = make([]ni, num)
	n.actRC = newRouterSet(num)
	n.actVA = newRouterSet(num)
	n.actSA = newRouterSet(num)
	n.actNI = newRouterSet(num)
	n.actScratch = make([]int32, 0, num)
	for i := range n.routers {
		n.routers[i] = newRouter(n, topology.NodeID(i))
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() *Config { return &n.cfg }

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Router returns the router at node id (for tests and instrumentation).
func (n *Network) Router(id topology.NodeID) *Router { return n.routers[id] }

// SetEjectHandler installs the packet-completion callback.
func (n *Network) SetEjectHandler(fn func(*Packet)) { n.onEject = fn }

func (n *Network) schedule(at int64, ev event) {
	d := at - n.cycle
	if d <= 0 || d >= ringSize {
		panic(fmt.Sprintf("noc: schedule delta %d out of range", d))
	}
	slot := at % ringSize
	n.ring[slot] = append(n.ring[slot], ev)
}

// Enqueue places a packet described by spec into its source NI queue at
// the current cycle. The returned packet can be inspected after
// ejection.
func (n *Network) Enqueue(spec Spec) (*Packet, error) {
	if err := spec.Validate(n.cfg.Topo.NumNodes()); err != nil {
		return nil, err
	}
	n.nextPacketID++
	pkt := &Packet{
		ID:        n.nextPacketID,
		Src:       spec.Src,
		Dst:       spec.Dst,
		Size:      spec.Size,
		Class:     spec.Class,
		CreatedAt: n.cycle,
	}
	n.nis[spec.Src].queue = append(n.nis[spec.Src].queue, injJob{pkt: pkt, layers: spec.LayersPerFlit})
	n.queuedPackets++
	n.queuedFlits += int64(pkt.Size)
	n.actNI.add(int(spec.Src))
	return pkt, nil
}

// QueuedPackets returns packets waiting in, or currently entering
// through, source NIs.
func (n *Network) QueuedPackets() int64 { return n.queuedPackets }

// InFlightFlits returns flits buffered in routers or on links.
func (n *Network) InFlightFlits() int64 { return n.inFlightFlits }

// QueuedFlits returns flits of enqueued packets that have not yet been
// injected into a router.
func (n *Network) QueuedFlits() int64 { return n.queuedFlits }

// BacklogFlits returns the total network backlog: flits waiting in NI
// queues plus flits buffered in routers or on links. It is maintained
// incrementally and therefore O(1); the simulator samples it every
// drain cycle for saturation and deadlock detection.
func (n *Network) BacklogFlits() int64 { return n.queuedFlits + n.inFlightFlits }

// Idle reports whether no traffic remains anywhere in the network.
func (n *Network) Idle() bool { return n.queuedPackets == 0 && n.inFlightFlits == 0 }

// Step advances the simulation by one cycle.
func (n *Network) Step() {
	n.cycle++
	slot := n.cycle % ringSize

	// 1. Deliver events scheduled for this cycle.
	events := n.ring[slot]
	n.ring[slot] = events[:0]
	for _, ev := range events {
		switch ev.kind {
		case evFlit:
			r := n.routers[ev.router]
			pi := r.inIndex[ev.dir]
			if pi < 0 {
				panic(fmt.Sprintf("noc: flit delivered to missing port %v at router %d", ev.dir, ev.router))
			}
			r.acceptFlit(n.cycle, int(pi), ev.vc, ev.flit)
		case evCredit:
			n.routers[ev.router].creditReturn(ev.dir, ev.vc)
		case evEject:
			n.inFlightFlits--
			if n.probe != nil {
				n.probe.ProbeEvent(ProbeEvent{Kind: ProbeEject, Cycle: n.cycle, Router: ev.router, Flit: ev.flit})
			}
			if ev.flit.Type.IsTail() {
				pkt := ev.flit.Pkt
				pkt.EjectedAt = n.cycle
				if n.onEject != nil {
					n.onEject(pkt)
				}
			}
		}
	}

	// 2. Inject from NIs (one flit per node per cycle), then the router
	// pipelines in reverse stage order so a flit advances at most one
	// stage per cycle.
	//
	// The activity path snapshots each stage's active set immediately
	// before stepping it (members in ascending ID order, matching the
	// full scan's iteration order), so routers activated by an earlier
	// stage of the same cycle are visited exactly as the full scan
	// would visit them — where they find only non-ready VCs and do
	// nothing.
	if n.cfg.Mode == StepFullScan {
		for i := range n.nis {
			n.inject(topology.NodeID(i))
		}
		for _, r := range n.routers {
			r.stepSAFull(n.cycle)
		}
		for _, r := range n.routers {
			r.stepVAFull(n.cycle)
		}
		for _, r := range n.routers {
			r.stepRCFull(n.cycle)
		}
		return
	}
	n.actScratch = n.actNI.appendMembers(n.actScratch[:0])
	for _, id := range n.actScratch {
		n.inject(topology.NodeID(id))
	}
	n.actScratch = n.actSA.appendMembers(n.actScratch[:0])
	for _, id := range n.actScratch {
		n.routers[id].stepSA(n.cycle)
	}
	n.actScratch = n.actVA.appendMembers(n.actScratch[:0])
	for _, id := range n.actScratch {
		n.routers[id].stepVA(n.cycle)
	}
	n.actScratch = n.actRC.appendMembers(n.actScratch[:0])
	for _, id := range n.actScratch {
		n.routers[id].stepRC(n.cycle)
	}
	if n.cfg.Mode == StepChecked {
		if err := n.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("noc: checked step failed at cycle %d: %v", n.cycle, err))
		}
	}
}

// CheckedStep advances one cycle (honouring Config.Mode) and then
// validates every flow-control and activity invariant, returning the
// first violation instead of panicking. It is the debugging entry point
// for bisecting activity-tracking bugs regardless of Config.Mode.
func (n *Network) CheckedStep() error {
	n.Step()
	return n.CheckInvariants()
}

// inject advances the NI at node id by at most one flit.
func (n *Network) inject(id topology.NodeID) {
	s := &n.nis[id]
	r := n.routers[id]
	lp := &r.inPorts[r.inIndex[topology.Local]]

	if !s.injecting {
		if len(s.queue) == 0 {
			// Drained NI: drop out of the active set until the next
			// Enqueue (only reached in full-scan mode; the activity
			// path removes the NI eagerly when its last packet
			// completes).
			n.actNI.remove(int(id))
			return
		}
		job := s.queue[0]
		vc := n.pickInjectionVC(lp, job.pkt.Class)
		if vc < 0 {
			return // all suitable local VCs busy
		}
		s.queue = s.queue[1:]
		s.cur = job
		s.injecting = true
		s.curVC = vc
		s.curSeq = 0
	}

	vc := &lp.vcs[s.curVC]
	if vc.occ() >= n.cfg.BufDepth {
		return // wait for space
	}
	job := s.cur
	f := Flit{Pkt: job.pkt, Seq: s.curSeq}
	switch {
	case job.pkt.Size == 1:
		f.Type = HeadTailFlit
	case s.curSeq == 0:
		f.Type = HeadFlit
	case s.curSeq == job.pkt.Size-1:
		f.Type = TailFlit
	default:
		f.Type = BodyFlit
	}
	if job.layers != nil {
		f.ActiveLayers = job.layers[s.curSeq]
	}
	if f.Type.IsHead() {
		job.pkt.InjectedAt = n.cycle
	}
	// Emit the inject event before acceptFlit: with look-ahead routing,
	// acceptFlit computes the route and emits the flit's first route
	// event, and the trace contract promises inject precedes every later
	// event of the same flit (obs.Replay enforces it).
	if n.probe != nil {
		n.probe.ProbeEvent(ProbeEvent{
			Kind: ProbeInject, Cycle: n.cycle, Router: id,
			Dir: topology.Local, VC: int8(s.curVC), Flit: f,
		})
	}
	r.acceptFlit(n.cycle, int(r.inIndex[topology.Local]), s.curVC, f)
	n.inFlightFlits++
	n.queuedFlits--
	s.curSeq++
	if s.curSeq == job.pkt.Size {
		s.cur = injJob{}
		s.injecting = false
		n.queuedPackets--
		if len(s.queue) == 0 {
			n.actNI.remove(int(id))
		}
	}
}

// pickInjectionVC selects an idle local input VC for a new packet, or -1.
func (n *Network) pickInjectionVC(lp *inputPort, c Class) int {
	if n.cfg.Policy == ByClass {
		v := int(c)
		if lp.vcs[v].state == vcIdle && lp.vcs[v].occ() == 0 {
			return v
		}
		return -1
	}
	for v := range lp.vcs {
		if lp.vcs[v].state == vcIdle && lp.vcs[v].occ() == 0 {
			return v
		}
	}
	return -1
}

// TotalCounters aggregates all router activity counters.
func (n *Network) TotalCounters() Counters {
	var total Counters
	for _, r := range n.routers {
		total.Add(&r.Counters)
	}
	return total
}

// RouterCounters returns per-router counters indexed by node ID (a copy).
func (n *Network) RouterCounters() []Counters {
	out := make([]Counters, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.Counters
	}
	return out
}

// ResetCounters zeroes all router counters (called at the end of warm-up
// so that power reflects the measurement window only).
func (n *Network) ResetCounters() {
	for _, r := range n.routers {
		r.Counters = Counters{}
		for oi := range r.outPorts {
			r.outPorts[oi].flitCount = 0
		}
	}
}

// LinkLoad is the traffic carried by one unidirectional link.
type LinkLoad struct {
	Src   topology.NodeID
	Dir   topology.Dir
	Flits int64
}

// LinkLoads reports every link's flit count since the last counter
// reset, in deterministic (router, port) order. The spread between hot
// and cold links exposes pattern asymmetry (e.g. tornado loading only
// the eastbound channels).
func (n *Network) LinkLoads() []LinkLoad {
	var out []LinkLoad
	for _, r := range n.routers {
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			if !op.hasLink {
				continue
			}
			out = append(out, LinkLoad{Src: r.id, Dir: op.dir, Flits: op.flitCount})
		}
	}
	return out
}

// Occupancy returns the total number of buffered flits (diagnostics).
func (n *Network) Occupancy() int {
	total := 0
	for _, r := range n.routers {
		total += r.occupancy()
	}
	return total
}
