package noc

import (
	"context"
	"fmt"
	"math/rand"

	"mira/internal/stats"
)

// Generator produces packets for injection. Implementations live in
// internal/traffic and internal/cmp.
type Generator interface {
	// Generate appends the packets to enqueue at the given cycle to
	// specs and returns the extended slice. The simulator passes the
	// same backing slice (truncated to length zero) every cycle, so
	// steady-state generation is allocation-free; implementations must
	// not retain the slice across calls. The rng is owned by the
	// simulation and seeded from Config.Seed. Cycles are queried in
	// strictly increasing order.
	Generate(cycle int64, rng *rand.Rand, specs []Spec) []Spec
}

// GeneratorFunc adapts a function to the Generator interface.
type GeneratorFunc func(cycle int64, rng *rand.Rand, specs []Spec) []Spec

// Generate implements Generator.
func (f GeneratorFunc) Generate(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
	return f(cycle, rng, specs)
}

// SimParams controls a simulation run.
type SimParams struct {
	// Warmup cycles are simulated but not measured. Measure cycles
	// follow; packets created during them are tagged and contribute to
	// latency. DrainMax bounds the drain phase that lets measured
	// packets complete.
	Warmup   int64
	Measure  int64
	DrainMax int64
}

// DefaultSimParams returns the settings used throughout the experiments.
func DefaultSimParams() SimParams {
	return SimParams{Warmup: 10000, Measure: 20000, DrainMax: 30000}
}

// Result summarizes one simulation run. It is JSON-serializable for the
// batch/serving layer (internal/scenario); the latency histogram is
// host-side state and is not serialized.
type Result struct {
	Cycles        int64   `json:"cycles"`    // measurement window length (simulated so far if Canceled)
	Generated     int64   `json:"generated"` // measured packets created
	Ejected       int64   `json:"ejected"`   // measured packets delivered
	AvgLatency    float64 `json:"avg_latency"`
	P99Latency    int     `json:"p99_latency"`
	AvgHops       float64 `json:"avg_hops"`
	AvgQueueDelay float64 `json:"avg_queue_delay"` // creation -> injection
	// ThroughputFPC is accepted flits per node per cycle during the
	// measurement window.
	ThroughputFPC float64 `json:"throughput_fpc"`
	// Saturated is set when the network backlog (queued + in-flight
	// flits) grew materially across the measurement window, i.e. the
	// offered load exceeds the network's accepted throughput.
	Saturated bool `json:"saturated"`
	// Canceled is set when the run's context was canceled (or timed
	// out) before the simulation completed. The result then carries the
	// partial counters accumulated up to the cancellation point: Cycles
	// is the number of measurement cycles actually simulated, and the
	// averages cover the packets ejected so far. Canceled is about the
	// host run, Stalled about the simulated protocol, Saturated about
	// the offered load.
	Canceled bool `json:"canceled,omitempty"`
	// Stalled is set when the drain phase made no ejection progress for
	// a long window while traffic remained — the signature of a
	// protocol/routing deadlock rather than mere congestion. The engine
	// itself is deadlock-free for the shipped configurations; this
	// flags misuse (e.g. request-response traffic sharing one VC).
	Stalled bool `json:"stalled,omitempty"`
	// PerClass carries per-message-class latency and counts (control
	// request packets vs data responses behave very differently in the
	// bimodal NUCA traffic).
	PerClass [NumClasses]ClassResult `json:"per_class"`
	// Counters holds the switching activity of the measurement window.
	Counters Counters `json:"counters"`
	// PerRouter holds per-router measurement-window counters for the
	// thermal model.
	PerRouter []Counters `json:"per_router,omitempty"`

	latHist *stats.Histogram
}

// LatencyHistogram returns the measured packet-latency histogram (unit
// bins in cycles), or nil for a zero Result.
func (r *Result) LatencyHistogram() *stats.Histogram { return r.latHist }

func (r *Result) String() string {
	s := fmt.Sprintf("lat=%.2f p99=%d hops=%.2f thr=%.4f sat=%v (%d/%d pkts)",
		r.AvgLatency, r.P99Latency, r.AvgHops, r.ThroughputFPC, r.Saturated, r.Ejected, r.Generated)
	if r.Canceled {
		s += " [canceled]"
	}
	return s
}

// ClassResult is the per-message-class slice of a Result.
type ClassResult struct {
	Ejected    int64   `json:"ejected"`
	AvgLatency float64 `json:"avg_latency"`
	AvgHops    float64 `json:"avg_hops"`
}

// Sim couples a network with a traffic generator and measurement logic.
//
// A Sim is single-shot: Run consumes the generator and the network's
// RNG state, so calling it twice would silently continue a spent random
// stream and replay a drained network. Run panics on reuse; build a new
// Sim (and Network) per run. This guarantee is what lets the parallel
// experiment runner treat every sweep point as an isolated unit.
type Sim struct {
	Net    *Network
	Gen    Generator
	Params SimParams

	// OnCycle, when non-nil, is invoked after every simulated cycle
	// with the cycle just completed (equal to Net.Cycle()). The
	// observability sampler (internal/obs) hooks here to snapshot
	// gauges on its window boundaries; an unset hook costs one branch
	// per cycle.
	OnCycle func(cycle int64)

	// OnEject, when non-nil, is invoked for every ejected packet —
	// measured or not — before Run's own accounting. Closed-loop
	// generators (internal/collective) hook here to observe deliveries
	// and unlock causally-dependent sends; under sharded stepping the
	// network replays ejections in canonical router order, so the hook
	// sees a deterministic sequence at any shard count. The callback
	// must not retain the packet past the call.
	OnEject func(pkt *Packet)

	rng *rand.Rand
	ran bool

	// specs is the reusable per-cycle generation buffer handed to
	// Gen.Generate, so steady-state injection allocates nothing.
	specs []Spec
}

// NewSim builds a simulation with the default parameters.
func NewSim(net *Network, gen Generator) *Sim {
	return &Sim{Net: net, Gen: gen, Params: DefaultSimParams()}
}

// CancelCheckStride is the cycle interval at which Run polls its
// context. A canceled run stops within one stride (a few microseconds
// of host time), so cancellation is promptly honoured even deep inside
// a multi-million-cycle simulation.
const CancelCheckStride = 1024

// Run executes warm-up, measurement and drain, returning the collected
// metrics. Run may be called at most once per Sim; see the type comment.
//
// The context is checked every CancelCheckStride cycles; on
// cancellation Run returns early with Result.Canceled set and whatever
// partial metrics the measurement window accumulated so far.
func (s *Sim) Run(ctx context.Context) Result {
	if s.ran {
		panic("noc: Sim.Run called twice; a Sim is single-shot, build a new one per run")
	}
	s.ran = true
	// Stop the persistent shard workers (if sharded stepping started
	// them) so batch drivers running many Sims back to back do not
	// accumulate parked goroutines per network.
	defer s.Net.ReleaseWorkers()
	if ctx == nil {
		ctx = context.Background()
	}
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.Net.cfg.Seed))
	}
	p := s.Params
	res := Result{Cycles: p.Measure, latHist: stats.NewHistogram(4096)}
	var latSum, hopSum, queueSum float64
	var flitsEjected int64

	measureStart := p.Warmup
	measureEnd := p.Warmup + p.Measure

	var classLat, classHops [NumClasses]float64
	s.Net.SetEjectHandler(func(pkt *Packet) {
		if s.OnEject != nil {
			s.OnEject(pkt)
		}
		if !pkt.Measured {
			return
		}
		res.Ejected++
		lat := pkt.EjectedAt - pkt.CreatedAt
		latSum += float64(lat)
		hopSum += float64(pkt.Hops)
		queueSum += float64(pkt.InjectedAt - pkt.CreatedAt)
		res.latHist.Add(int(lat))
		flitsEjected += int64(pkt.Size)
		res.PerClass[pkt.Class].Ejected++
		classLat[pkt.Class] += float64(lat)
		classHops[pkt.Class] += float64(pkt.Hops)
	})

	// The backlog (queued + in-flight flits) is maintained incrementally
	// by the network, so sampling it every drain cycle is O(1) instead
	// of rescanning every NI queue.
	var backlogStart int64

	// Deadlock watchdog: during drain, a backlog that never shrinks
	// across this many cycles means nothing can move.
	const stallWindow = 5000
	minBacklog := int64(-1)
	var lastProgress int64

	end := measureEnd + p.DrainMax
	cycle := int64(0)
	for ; cycle < end; cycle++ {
		if cycle%CancelCheckStride == 0 && ctx.Err() != nil {
			res.Canceled = true
			break
		}
		if cycle == measureStart {
			s.Net.ResetCounters()
			backlogStart = s.Net.BacklogFlits()
		}
		if cycle == measureEnd {
			// Snapshot activity for the power model before draining.
			res.Counters = s.Net.TotalCounters()
			res.PerRouter = s.Net.RouterCounters()
			// Saturation: the backlog grew by more than 0.5 % of the
			// node-cycle product over the window.
			growth := s.Net.BacklogFlits() - backlogStart
			res.Saturated = float64(growth) > 0.005*float64(p.Measure)*float64(s.Net.cfg.Topo.NumNodes())
		}
		if cycle < measureEnd {
			s.specs = s.Gen.Generate(cycle, s.rng, s.specs[:0])
			for _, spec := range s.specs {
				pkt, err := s.Net.Enqueue(spec)
				if err != nil {
					panic(err) // generator bug
				}
				if cycle >= measureStart {
					pkt.Measured = true
					res.Generated++
				}
			}
		} else if res.Ejected == res.Generated && s.Net.Idle() {
			break
		}
		if cycle >= measureEnd {
			if b := s.Net.BacklogFlits(); minBacklog < 0 || b < minBacklog {
				minBacklog = b
				lastProgress = cycle
			} else if cycle-lastProgress > stallWindow {
				res.Stalled = true
				break
			}
		}
		s.Net.Step()
		if s.OnCycle != nil {
			s.OnCycle(s.Net.Cycle())
		}
	}

	if res.Canceled && cycle < measureEnd {
		// Canceled mid-measurement: the snapshot that normally happens
		// at measureEnd hasn't run, so take it now. Cycles shrinks to
		// the measured window actually simulated, keeping the
		// throughput and power rates meaningful for partial results.
		// A cancellation still inside warm-up has no measured window
		// (the counters would include unmeasured warm-up activity).
		if cycle > measureStart {
			res.Counters = s.Net.TotalCounters()
			res.PerRouter = s.Net.RouterCounters()
			res.Cycles = cycle - measureStart
		} else {
			res.Cycles = 0
		}
	}

	if res.Ejected > 0 {
		res.AvgLatency = latSum / float64(res.Ejected)
		res.AvgHops = hopSum / float64(res.Ejected)
		res.AvgQueueDelay = queueSum / float64(res.Ejected)
		res.P99Latency = res.latHist.Percentile(0.99)
	}
	for c := Class(0); c < NumClasses; c++ {
		if n := res.PerClass[c].Ejected; n > 0 {
			res.PerClass[c].AvgLatency = classLat[c] / float64(n)
			res.PerClass[c].AvgHops = classHops[c] / float64(n)
		}
	}
	if res.Cycles > 0 {
		res.ThroughputFPC = float64(flitsEjected) / float64(res.Cycles) / float64(s.Net.cfg.Topo.NumNodes())
	}
	if res.Ejected < res.Generated && !res.Canceled {
		// Measured packets failed to drain: definitely past saturation.
		// (A canceled run simply didn't get to drain them.)
		res.Saturated = true
	}
	return res
}
