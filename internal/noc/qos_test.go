package noc

import (
	"context"
	"math/rand"
	"testing"

	"mira/internal/topology"
)

// bimodalGen issues request/response pairs at the given aggregate rate.
func bimodalGen(rate float64) Generator {
	return GeneratorFunc(func(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
		for i := 0; i < 36; i++ {
			if rng.Float64() >= rate/5.0 { // 5 flits per pair
				continue
			}
			a := topology.NodeID(i)
			b := topology.NodeID(rng.Intn(35))
			if b >= a {
				b++
			}
			specs = append(specs,
				Spec{Src: a, Dst: b, Size: 1, Class: Control},
				Spec{Src: b, Dst: a, Size: 4, Class: Data})
		}
		return specs
	})
}

func runQoS(t *testing.T, qos bool) Result {
	t.Helper()
	cfg := cfg2D(2)
	cfg.Policy = ByClass
	cfg.QoSPriority = qos
	net := NewNetwork(cfg)
	s := NewSim(net, bimodalGen(0.50)) // near saturation: SA contention dominates
	s.Params = SimParams{Warmup: 500, Measure: 4000, DrainMax: 30000}
	res := s.Run(context.Background())
	if res.Ejected != res.Generated {
		t.Fatalf("qos=%v lost packets: %v", qos, res.String())
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return res
}

// QoS priority must reduce control-class latency under load without
// starving the data class.
func TestQoSPriorityHelpsControl(t *testing.T) {
	off := runQoS(t, false)
	on := runQoS(t, true)
	ctrlOff := off.PerClass[Control].AvgLatency
	ctrlOn := on.PerClass[Control].AvgLatency
	if ctrlOn >= ctrlOff {
		t.Errorf("QoS should cut control latency: %.2f vs %.2f", ctrlOn, ctrlOff)
	}
	dataOn := on.PerClass[Data].AvgLatency
	dataOff := off.PerClass[Data].AvgLatency
	// Data pays a modest penalty, never more than 2x.
	if dataOn > 2*dataOff {
		t.Errorf("QoS starves data: %.2f vs %.2f", dataOn, dataOff)
	}
}

// In-flight packets always progress: a long data packet mid-transmission
// is not preempted by a control storm (no mid-stream starvation).
func TestQoSNoMidStreamStarvation(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Policy = ByClass
	cfg.QoSPriority = true
	net := NewNetwork(cfg)
	var dataDone bool
	net.SetEjectHandler(func(p *Packet) {
		if p.Class == Data {
			dataDone = true
		}
	})
	// One long data packet, then a continuous control storm sharing its
	// path (0 -> 5 along row 0).
	if _, err := net.Enqueue(Spec{Src: 0, Dst: 5, Size: 8, Class: Data}); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 800; cycle++ {
		if cycle%2 == 0 {
			if _, err := net.Enqueue(Spec{Src: 1, Dst: 5, Size: 1, Class: Control}); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
		if dataDone {
			return
		}
	}
	t.Fatalf("data packet starved by control storm")
}

func TestQoSZeroLoadUnchanged(t *testing.T) {
	cfg := cfg2D(2)
	cfg.QoSPriority = true
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: 1, Size: 1, Class: Control})
	if lat := pkt.EjectedAt - pkt.CreatedAt; lat != 11 {
		t.Errorf("QoS zero-load latency = %d, want 11", lat)
	}
}
