package noc

import (
	"sync"
	"time"
)

// shardPool is the persistent worker pool behind sharded stepping. The
// original sharded step (PR 7) spawned one goroutine per shard per
// cycle; at millions of cycles the spawn/exit cost dominates the
// per-cycle barrier. The pool keeps one long-lived worker parked on an
// unbuffered channel per shard: each Step sends one token per worker,
// the worker runs its shard's cycle and signals the shared WaitGroup,
// and the Step's Wait is the same single barrier as before. Behaviour
// is pinned unchanged by the shard determinism suites — the workers
// execute exactly the shardCycle the spawned goroutines did, and the
// channel send/Wait pair gives the same happens-before edges the old
// WaitGroup fan-out gave (every append of cycle C ordered before every
// drain of cycle C+1).
//
// Lifecycle: the pool starts lazily on the first sharded step and stops
// when ReleaseWorkers closes the work channels (Sim.Run releases on
// exit; a stopped pool restarts lazily if the network steps again).
// Code that steps a sharded network directly and then abandons it
// leaves the workers parked on an empty channel until process exit —
// idle and invisible, but counted by goroutine-leak checkers, which is
// why Sim.Run owns the release in the normal path.
type shardPool struct {
	work []chan struct{}
	wg   sync.WaitGroup
}

// newShardPool starts one parked worker per shard of n.
func newShardPool(n *Network) *shardPool {
	p := &shardPool{work: make([]chan struct{}, len(n.shards))}
	for i := range n.shards {
		p.work[i] = make(chan struct{})
		sh := &n.shards[i]
		ch := p.work[i]
		go func() {
			for range ch {
				n.runShardCycle(sh)
				p.wg.Done()
			}
		}()
	}
	return p
}

// runShardCycle runs one shard's cycle, capturing a panic for the
// serial epilogue to re-raise (a worker must never die: the pool would
// deadlock on the next cycle's barrier). With an engine meter attached
// it brackets the cycle with wall-clock reads; the scratch results are
// folded into the meter's atomics by the post-barrier epilogue
// (stepSharded), which the WaitGroup join orders after these writes.
func (n *Network) runShardCycle(sh *shardState) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicked = r
		}
	}()
	if n.meter != nil {
		sh.meterT0 = time.Now()
		sh.meterDrainNs = 0
		n.shardCycle(sh)
		end := time.Now()
		sh.meterEnd = end
		sh.meterBusyNs = end.Sub(sh.meterT0).Nanoseconds()
		return
	}
	n.shardCycle(sh)
}

// ReleaseWorkers stops the persistent shard worker pool, if one is
// running. It is idempotent, must not be called concurrently with
// Step, and a released network remains fully usable — the next sharded
// step simply starts a fresh pool. Sim.Run releases on exit so batch
// runs do not accumulate parked goroutines per simulated network.
func (n *Network) ReleaseWorkers() {
	if n.pool == nil {
		return
	}
	for _, ch := range n.pool.work {
		close(ch)
	}
	n.pool = nil
}
