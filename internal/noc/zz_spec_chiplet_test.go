package noc

import "testing"

// Probe: determinism of chiplet fabric with SpecSA across shard counts.
func TestZZChipletSpecSADeterminism(t *testing.T) {
	run := func(shards int) Result {
		cfg := cfgChiplet(4, 2, true)
		cfg.Seed = 7
		cfg.SpecSA = true
		cfg.Shards = shards
		return shortSim(cfg, bernoulli(cfg.Topo, 0.1, 4, Data))
	}
	ref := run(1)
	for _, s := range []int{2, 3, 4, 5, 7} {
		got := run(s)
		if got.AvgLatency != ref.AvgLatency || got.Generated != ref.Generated ||
			got.Ejected != ref.Ejected || got.Counters != ref.Counters {
			t.Fatalf("shards=%d diverges:\n  got %v\n  ref %v", s, got.String(), ref.String())
		}
	}
}
