package noc

import (
	"fmt"
	"math/rand"
	"testing"

	"mira/internal/topology"
)

// TestShardDeterminism is the tentpole contract of sharded stepping:
// for every shard count the ejection stream (order included), the final
// counters and the flow-control state must be bit-identical to the
// sequential single-shard run, across seeds, step modes and pipeline
// variants. Checked mode additionally cross-checks the full invariant
// suite after every sharded cycle.
func TestShardDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		rate float64
	}{
		{"mesh-stlt2", cfg2D(2), 0.2},
		{"mesh-lookahead-spec", func() Config {
			c := cfg2D(1)
			c.LookaheadRC = true
			c.SpecSA = true
			return c
		}(), 0.2},
		{"mesh-qos-matrix", func() Config {
			c := cfg2D(2)
			c.QoSPriority = true
			c.Arb = ArbMatrix
			return c
		}(), 0.2},
		{"mesh3d", cfg3D(2), 0.2},
		{"express-saturated", cfgExpress(1), 0.9},
	}
	modes := []StepMode{StepActivity, StepFullScan, StepChecked}
	for _, c := range cases {
		for _, seed := range []int64{42, 7} {
			for _, mode := range modes {
				cycles := int64(1200)
				if mode == StepChecked {
					cycles = 300 // invariant suite per cycle is expensive
				}
				t.Run(fmt.Sprintf("%s/seed%d/%v", c.name, seed, mode), func(t *testing.T) {
					cfg := c.cfg
					cfg.Seed = seed
					cfg.Shards = 1
					ref, refCnt, refNet := runModal(t, cfg, mode, c.rate, 4, cycles)
					if len(ref) == 0 {
						t.Fatal("no traffic delivered; test is vacuous")
					}
					for _, shards := range []int{2, 4, 8} {
						cfg.Shards = shards
						got, gotCnt, gotNet := runModal(t, cfg, mode, c.rate, 4, cycles)
						if len(got) != len(ref) {
							t.Fatalf("shards=%d: ejection streams diverge: %d vs %d packets", shards, len(got), len(ref))
						}
						for i := range ref {
							if got[i] != ref[i] {
								t.Fatalf("shards=%d: ejection %d diverges: %+v, sequential %+v", shards, i, got[i], ref[i])
							}
						}
						if gotCnt != refCnt {
							t.Fatalf("shards=%d: counters diverge:\nsharded    %+v\nsequential %+v", shards, gotCnt, refCnt)
						}
						if err := gotNet.CheckInvariants(); err != nil {
							t.Fatalf("shards=%d: invariants: %v", shards, err)
						}
					}
					_ = refNet
				})
			}
		}
	}
}

// probeRec is a comparable snapshot of one probe event (the live event
// carries a *Packet, which differs between runs by identity).
type probeRec struct {
	kind   ProbeKind
	cycle  int64
	router topology.NodeID
	dir    topology.Dir
	vc     int8
	pktID  int64
	seq    int32
	typ    FlitType
}

type probeTap struct{ evs []probeRec }

func (p *probeTap) ProbeEvent(ev ProbeEvent) {
	p.evs = append(p.evs, probeRec{
		kind: ev.Kind, cycle: ev.Cycle, router: ev.Router, dir: ev.Dir, vc: ev.VC,
		pktID: ev.Flit.Pkt.ID, seq: ev.Flit.Seq, typ: ev.Flit.Type,
	})
}

// TestShardProbeStreamIdentical pins the probe-merge contract: with a
// probe attached, the sharded step must replay the exact event sequence
// sequential stepping emits — same events, same order, byte for byte —
// so traces and spans are reproducible at any shard count. The config
// enables look-ahead and speculation so all six event kinds fire from
// all emission phases (delivery, injection, SA, VA, RC).
func TestShardProbeStreamIdentical(t *testing.T) {
	run := func(shards int, lookahead bool) []probeRec {
		cfg := cfg2D(2)
		cfg.Seed = 42
		cfg.Shards = shards
		cfg.LookaheadRC = lookahead
		cfg.SpecSA = lookahead
		net := NewNetwork(cfg)
		tap := &probeTap{}
		net.SetProbe(tap)
		gen := bernoulli(cfg.Topo, 0.25, 4, Data)
		rng := rand.New(rand.NewSource(cfg.Seed))
		for cycle := int64(0); cycle < 600; cycle++ {
			for _, spec := range gen.Generate(cycle, rng, nil) {
				if _, err := net.Enqueue(spec); err != nil {
					t.Fatal(err)
				}
			}
			net.Step()
		}
		for i := int64(0); i < 20000 && !net.Idle(); i++ {
			net.Step()
		}
		return tap.evs
	}
	for _, lookahead := range []bool{false, true} {
		ref := run(1, lookahead)
		if len(ref) == 0 {
			t.Fatal("no probe events; test is vacuous")
		}
		for _, shards := range []int{2, 4, 8} {
			got := run(shards, lookahead)
			if len(got) != len(ref) {
				t.Fatalf("lookahead=%v shards=%d: %d probe events, sequential %d", lookahead, shards, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("lookahead=%v shards=%d: event %d diverges:\nsharded    %+v\nsequential %+v",
						lookahead, shards, i, got[i], ref[i])
				}
			}
		}
	}
}

// plantMail appends a head-tail flit arrival for gi into the boundary
// mailbox lane src -> dst under send phase p, delivering at cycle at.
func plantMail(n *Network, src, dst int32, p int, gi int32, at int64, pktID int64) {
	f := Flit{Pkt: &Packet{ID: pktID, Dst: n.routers[n.soa.ownerOf[gi]].id}, Type: HeadTailFlit}
	lane := &n.mail[src][dst].ev[p][at&n.ringMask]
	*lane = append(*lane, xEvent{gi: gi, flit: f})
}

// TestShardMailboxDrainOrder pins the canonical boundary-exchange
// order directly: the delivery phase must drain, for each send phase in
// order, the inbound lanes in ascending source-shard order with the
// shard's own ring taking its place among them, each lane in append
// order. The test plants arrivals for single VCs from several sources
// in scrambled plant order and then reads the resulting buffer FIFO
// order, which records exactly the drain sequence — any deviation
// (descending sources, phase interleaving, own-ring first or last)
// reorders the buffered flits and fails.
func TestShardMailboxDrainOrder(t *testing.T) {
	cfg := cfg2D(2)
	cfg.Shards = 4
	n := NewNetwork(cfg)
	if n.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", n.Shards())
	}
	// Destination router in shard 1; its shard steps it, sources 0, 2
	// and 3 reach it only through mailboxes.
	dst := int32(1)
	r := &n.routers[n.shards[dst].lo+3]
	var gis []int32
	for pi := range r.inPorts {
		if r.inPorts[pi].dir != topology.Local {
			gis = append(gis, r.vcBase+int32(r.flatVC(pi, 0)))
		}
	}
	if len(gis) < 3 {
		t.Fatalf("router %d has %d link ports, need >= 3", r.id, len(gis))
	}
	at := n.Cycle() + 1

	// VC A: one phase, sources planted in scrambled order 3, 0, 2.
	// Canonical drain = ascending source shard.
	plantMail(n, 3, dst, 0, gis[0], at, 103)
	plantMail(n, 0, dst, 0, gis[0], at, 100)
	plantMail(n, 2, dst, 0, gis[0], at, 102)

	// VC B: phase 1 from source 0 planted before phase 0 from source 2.
	// Canonical drain = phase-major, so source 2 delivers first.
	plantMail(n, 0, dst, 1, gis[1], at, 110)
	plantMail(n, 2, dst, 0, gis[1], at, 112)

	// VC C: the shard's own ring (direct-written arrival, source shard
	// 1) flanked by mailbox arrivals from sources 0 and 3. Canonical
	// drain slots the own ring at its shard index: 0, own(1), 3. A
	// real channel never mixes the two mechanisms (one upstream per
	// channel), so plant the direct-written flit body by hand into the
	// buffer slot it occupies on arrival — one mailbox flit drains
	// canonically before it, so slot 1; a deviating drain order
	// exposes the wrong slot.
	depth := n.cfg.BufDepth
	n.soa.bufFlit[int(gis[2])*depth+1] = Flit{Pkt: &Packet{ID: 121, Dst: r.id}, Type: HeadTailFlit}
	n.soa.bufArrived[int(gis[2])*depth+1] = at
	n.soa.vcInFly[gis[2]]++
	plantMail(n, 3, dst, 0, gis[2], at, 123)
	own := &n.shards[dst].ev[0][at&n.ringMask]
	*own = append(*own, gis[2])
	plantMail(n, 0, dst, 0, gis[2], at, 120)

	n.Step()

	want := [][]int64{
		{100, 102, 103},
		{112, 110},
		{120, 121, 123},
	}
	for k, gi := range gis[:3] {
		fi := int(gi - r.vcBase)
		if got := r.vcOcc(fi); got != len(want[k]) {
			t.Fatalf("vc %d: %d buffered flits, want %d", k, got, len(want[k]))
		}
		for j := 0; j < len(want[k]); j++ {
			slot := (int(r.vcHead[fi]) + j) % r.bufDepth
			id := int64(-1)
			if f := r.bufFlit[fi*r.bufDepth+slot]; f.Pkt != nil {
				id = f.Pkt.ID
			}
			if id != want[k][j] {
				t.Fatalf("vc %d position %d: packet %d delivered, want %d (drain order deviates from canonical)",
					k, j, id, want[k][j])
			}
		}
	}
}

// TestShardConfig covers the Shards knob's edges: default and explicit
// 0/1 step sequentially, oversized counts clamp to the router count,
// AutoShards resolves tiny meshes to sequential, and counts below -1
// fail validation.
func TestShardConfig(t *testing.T) {
	cfg := cfg2D(2)
	// A 36-router mesh is under the auto heuristic's per-shard budget,
	// so AutoShards resolves to sequential stepping.
	for _, c := range []struct{ in, want int }{{0, 1}, {1, 1}, {4, 4}, {1000, 36}, {AutoShards, 1}} {
		cfg.Shards = c.in
		if got := NewNetwork(cfg).Shards(); got != c.want {
			t.Fatalf("Shards=%d: effective %d, want %d", c.in, got, c.want)
		}
	}
	cfg.Shards = -2
	if err := cfg.Validate(); err == nil {
		t.Fatal("Shards=-2 validated")
	}
	// Shard ranges are contiguous, ordered and cover every router.
	cfg.Shards = 5
	n := NewNetwork(cfg)
	next := int32(0)
	for i := range n.shards {
		sh := &n.shards[i]
		if sh.lo != next || sh.hi < sh.lo {
			t.Fatalf("shard %d covers [%d,%d), want lo %d", i, sh.lo, sh.hi, next)
		}
		next = sh.hi
	}
	if next != int32(len(n.routers)) {
		t.Fatalf("shards cover [0,%d), want [0,%d)", next, len(n.routers))
	}
}
