package noc

import (
	"context"
	"testing"
)

// TestSimSingleShot verifies a Sim refuses to run twice: its generator
// and RNG state are consumed by the first run, so a silent second run
// would produce a different traffic stream than a fresh Sim.
func TestSimSingleShot(t *testing.T) {
	mkSim := func() *Sim {
		s := NewSim(NewNetwork(cfg2D(2)), bernoulli(cfg2D(2).Topo, 0.05, 2, Data))
		s.Params = SimParams{Warmup: 10, Measure: 50, DrainMax: 500}
		return s
	}
	s := mkSim()
	s.Run(context.Background())
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	s.Run(context.Background())
}

// TestBacklogCounters cross-checks the network's incremental backlog
// counters against the simulation making progress: after a short run
// drains, both queued and in-flight counts must return to zero.
func TestBacklogCounters(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.1, 2, Data))
	s.Params = SimParams{Warmup: 100, Measure: 500, DrainMax: 5000}
	res := s.Run(context.Background())
	if res.Generated == 0 {
		t.Fatal("no packets generated")
	}
	if q := net.QueuedFlits(); q != 0 {
		t.Errorf("QueuedFlits = %d after drain, want 0", q)
	}
	if f := net.InFlightFlits(); f != 0 {
		t.Errorf("InFlightFlits = %d after drain, want 0", f)
	}
	if b := net.BacklogFlits(); b != 0 {
		t.Errorf("BacklogFlits = %d after drain, want 0", b)
	}
	if err := net.CheckInvariants(); err != nil {
		t.Errorf("invariants after drain: %v", err)
	}
}
