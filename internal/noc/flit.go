// Package noc is a cycle-accurate network-on-chip simulator: wormhole
// flow control, virtual channels with credit-based backpressure, and a
// canonical RC/VA/SA/ST(+LT) router pipeline (Figure 8 of the MIRA
// paper). The engine is architecture-agnostic; the 2DB/3DB/3DM/3DM-E
// configurations of the paper are expressed purely through the Config
// (topology, routing, pipeline depth, layer count).
package noc

import (
	"fmt"

	"mira/internal/topology"
)

// Class is the message class of a packet. The MIRA NUCA traffic is
// bimodal (§1, Figure 2): short address/coherence control packets and
// cache-line data packets. Classes also separate request/response
// traffic onto distinct virtual channels ("one VC per control and data
// traffic", §3.2.4), which avoids protocol deadlock.
type Class uint8

// Message classes.
const (
	Control Class = iota // single-flit address/coherence packets
	Data                 // multi-flit cache-line packets
	NumClasses
)

func (c Class) String() string {
	if c == Control {
		return "control"
	}
	return "data"
}

// FlitType tags a flit's position within its packet.
type FlitType uint8

// Flit types. A single-flit packet is tagged HeadTail.
const (
	HeadFlit FlitType = iota
	BodyFlit
	TailFlit
	HeadTailFlit
)

// IsHead reports whether the flit opens a packet (carries the header).
func (t FlitType) IsHead() bool { return t == HeadFlit || t == HeadTailFlit }

// IsTail reports whether the flit closes a packet (releases channels).
func (t FlitType) IsTail() bool { return t == TailFlit || t == HeadTailFlit }

// Packet is one network message.
type Packet struct {
	ID    int64
	Src   topology.NodeID
	Dst   topology.NodeID
	Size  int // flits
	Class Class

	// CreatedAt is the cycle the packet entered its source queue;
	// InjectedAt the cycle its head flit entered the router; EjectedAt
	// the cycle its tail flit left the network. Latency is measured
	// from creation, so source queueing counts (as in the paper's
	// latency/injection-rate curves).
	CreatedAt  int64
	InjectedAt int64
	EjectedAt  int64

	// Hops counts router traversals of the head flit; an express hop
	// counts once.
	Hops int

	// Measured marks packets created inside the measurement window.
	Measured bool
}

// Flit is the flow-control unit.
type Flit struct {
	Pkt *Packet
	// Seq is the flit's position within its packet. int32 rather than
	// int: flits are copied along every hop (buffer slots, probe
	// events), and the packed layout keeps the struct at 16 bytes —
	// half the memory traffic of the naive one.
	Seq  int32
	Type FlitType
	// ActiveLayers is how many of the router's datapath layers this
	// flit actually needs (§3.2.1): 1 for a short flit whose lower
	// words are redundant, up to Config.Layers for a full flit. The
	// zero value means "all layers".
	ActiveLayers uint8
}

// Spec describes a packet for injection; traffic generators produce
// these.
type Spec struct {
	Src, Dst topology.NodeID
	Size     int
	Class    Class
	// LayersPerFlit optionally gives per-flit active-layer counts
	// (len == Size). Nil means every flit uses all layers.
	LayersPerFlit []uint8
}

// Validate reports whether the spec is well-formed for a network with n
// nodes.
func (s Spec) Validate(n int) error {
	if s.Src < 0 || int(s.Src) >= n {
		return fmt.Errorf("noc: spec src %d out of range [0,%d)", s.Src, n)
	}
	if s.Dst < 0 || int(s.Dst) >= n {
		return fmt.Errorf("noc: spec dst %d out of range [0,%d)", s.Dst, n)
	}
	if s.Src == s.Dst {
		return fmt.Errorf("noc: spec src == dst (%d)", s.Src)
	}
	if s.Size < 1 {
		return fmt.Errorf("noc: spec size %d < 1", s.Size)
	}
	if s.LayersPerFlit != nil && len(s.LayersPerFlit) != s.Size {
		return fmt.Errorf("noc: spec has %d layer entries for %d flits", len(s.LayersPerFlit), s.Size)
	}
	return nil
}
