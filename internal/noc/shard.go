package noc

import (
	"fmt"
	"sort"
	"time"
	"unsafe"

	"mira/internal/topology"
)

// Sharded intra-simulation parallelism. Config.Shards partitions the
// routers (and their NIs) into contiguous ID ranges, and Network.Step
// steps every shard concurrently inside one cycle: each shard delivers
// its own scheduled events, injects its own NIs and runs the SA/VA/RC
// stages over its own routers on a private goroutine, joined by one
// barrier per cycle. Results are bit-identical to sequential stepping
// (Shards <= 1) for any shard count — the same contract the activity
// path keeps against the full scan (activity.go).
//
// # Why link latency makes concurrent shards safe
//
// All cross-router interaction flows through scheduled deliveries: a
// forwarded flit lands in the downstream buffer STLTCycles-1 + link
// latency + serialization - 1 >= 1 cycles later, and a credit returns
// after the reverse link's latency (>= 1 cycle). Nothing a router does
// in cycle C can be observed by any other router before cycle C+1, so
// two routers in different shards can run cycle C in either order — or
// at the same time — provided the events they schedule are exchanged at
// the cycle boundary. Shards therefore step without speculation or
// rollback; the per-Step barrier is the only synchronization.
//
// This argument is independent of the link class: a multi-cycle
// die-to-die channel only pushes deliveries further into the future
// (the rings are sized to the slowest link's horizon at construction),
// so shard boundaries need not align with chip boundaries — a shard cut
// through the middle of a chip, or a chip split across shards, is
// exactly as safe as the single-chip case. The chip-grid determinism
// suite pins this by sweeping shard counts that deliberately misalign
// with the chip tiling.
//
// # Ownership and the boundary mailboxes
//
// Every mutable slot of the struct-of-arrays state (soa.go) belongs to
// exactly one router and therefore to exactly one shard; a shard's
// goroutine touches only its own windows. The one cross-shard pathway —
// a flit or credit leaving shard s for shard d — goes through the
// boundary mailbox mail[s][d], which only s appends to during a cycle
// and only d drains (and resets) at the next cycle's delivery phase.
// Slots for different cycles are distinct ring entries, so writer and
// reader never touch the same slice header concurrently, and the Step
// barrier orders every append before the matching drain. Cross-shard
// flits carry their body in the mailbox entry (xEvent.flit) and are
// pushed into the destination ring buffer at delivery time; same-shard
// flits keep the PR 6 single-copy direct write. The two are equivalent
// because deliveries are FIFO per VC and pops leave head+len invariant,
// so the slot computed at delivery time equals the slot the direct
// write would have reserved at send time.
//
// # The determinism argument
//
// Sequential stepping appends each cycle's events in a canonical order:
// first every SA-stage forward (routers in ascending ID, output ports
// in rotated order within a router), then every speculative VA-stage
// forward (again routers ascending). Shards are contiguous ascending ID
// ranges, so that global order is exactly "for each send phase, for
// each shard in ascending index order, that shard's appends in its own
// program order". The event rings and mailboxes are therefore
// segmented by send phase (ev[0] = SA, ev[1] = VA), and the delivery
// phase drains, for each phase, the lanes in ascending source-shard
// order — reproducing the sequential delivery order event for event no
// matter when each shard actually ran. Delivery order is the only
// cross-shard ordering that matters: within a cycle all other state a
// shard reads is its own. TestShardMailboxDrainOrder pins the drain
// order; the determinism suite pins end-to-end bit-identity.
//
// # The probe-merge contract
//
// With a probe attached, every shard buffers its probe events instead
// of calling the probe from its goroutine, tagging each event with a
// sort key (send phase or pipeline stage, source shard, per-shard
// append sequence). The serial epilogue of Step merges the buffers by
// key (stable, so events of one action keep their emission order) and
// replays them into the real probe — the identical stream sequential
// stepping emits, so traces and spans replay byte for byte at any
// shard count. Eject callbacks are buffered and fired the same way.
// Relative to sequential stepping the probe sees a cycle's events at
// the end of that cycle rather than during it; probes only record
// events (Probe implementations must not mutate the network), so the
// stream, not the timing, is the contract.

// xEvent is one cross-shard boundary-mailbox entry: the arrival of a
// flit at input VC gi (a global flat VC index) of a router in the
// destination shard. Unlike same-shard forwards, which direct-write the
// flit into its future ring slot at send time, a cross-shard forward
// may not touch the remote shard's arrays mid-cycle, so the entry
// carries the flit body and the destination pushes it at delivery. idx
// is the sender's per-cycle append sequence number, used only to merge
// probe events into the canonical order (zero when unobserved).
type xEvent struct {
	gi   int32
	idx  int32
	flit Flit
}

// shardMail is the boundary mailbox for one (source shard, destination
// shard) pair: per-send-phase, per-ring-slot arrival lanes plus a
// credit lane (credits are order-free increments, so they need no phase
// segmentation). The source appends during its stage loops; the
// destination drains and resets at the delivery cycle's boundary. The
// rings are allocated to the network's ringLen (sized from the slowest
// link), so multi-cycle d2d deliveries slot like any other.
type shardMail struct {
	ev   [2][][]xEvent
	cred [][]int32
}

// shardHot holds one shard's incrementally maintained backlog counters
// (the per-network inFlightFlits/queuedFlits/queuedPackets of the
// sequential core, split per shard) plus the per-cycle probe append
// sequence.
//
// Layout invariant: the struct is padded to exactly one 64-byte cache
// line, and Network.hot is a contiguous []shardHot, so two shards'
// counters never share a line — the counters are written every
// inject/eject by concurrently running shard goroutines, and sharing a
// line would turn that into false-sharing ping-pong. The compile-time
// assertion below pins the size; keep it when adding fields. Readers
// (InFlightFlits, QueuedFlits, BacklogFlits, Idle) merge the per-shard
// values on demand, outside the stepping goroutines.
//
// The per-router Counters need no such padding: they live inside
// Router, whose stride is far larger than a cache line, so at most the
// one line straddling each shard boundary is ever shared between
// goroutines — negligible next to these per-inject/eject counters,
// which is why they are split out here instead.
type shardHot struct {
	inFlightFlits int64
	queuedFlits   int64
	queuedPackets int64
	seq           int32
	_             [36]byte
}

// Compile-time: shardHot is exactly one cache line.
var _ = [1]struct{}{}[unsafe.Sizeof(shardHot{})-64]

// keyedProbeEvent pairs a buffered probe event with its merge key.
type keyedProbeEvent struct {
	key uint64
	ev  ProbeEvent
}

// Probe merge-key phase indices, in the order sequential stepping runs
// the phases of one cycle. The delivery phases come first (one per send
// phase of the previous cycle's appends), then injection and the three
// pipeline stages.
const (
	pkDeliverSA = iota // delivery of SA-phase appends
	pkDeliverVA        // delivery of speculative VA-phase appends
	pkInject
	pkSA
	pkVA
	pkRC
)

// probeKey builds the merge key for one emitting action: phase index,
// source shard, and the source's append sequence (zero for the stage
// phases, where events of one shard are merged in emission order and
// cross-shard order is fixed by the shard index alone).
func probeKey(phase int, srcShard, seq int32) uint64 {
	return uint64(phase)<<56 | uint64(uint32(srcShard))<<40 | uint64(uint32(seq))
}

// shardState is the per-shard slice of the network's stepping state:
// the event/ejection/credit rings for traffic staying inside the
// shard, the per-stage activity sets restricted to the shard's routers
// and NIs, and the buffered outputs (ejections, probe events) the
// serial epilogue replays in canonical order. With Shards <= 1 the
// single shard's rings and sets are the network's rings and sets, and
// the sequential step path uses them directly.
type shardState struct {
	idx    int32
	lo, hi int32 // router/NI ID range [lo, hi)
	net    *Network
	hot    *shardHot

	// phase selects the send-phase segment (0 = SA, 1 = speculative VA)
	// new arrivals and ejections are appended under; the sharded cycle
	// sets it before each stage loop. Sequential stepping leaves it 0,
	// collapsing ev to the single ring of the unsharded core.
	phase int32

	// ev/ejRing/cred are the shard's own scheduling rings, exactly the
	// network rings of the sequential core restricted to traffic whose
	// destination router stays in this shard. evIdx carries the
	// per-cycle append sequence of each ev entry, maintained only when a
	// probe is attached to a sharded network (stamp). ringLen/ringMask
	// copy the network's dynamic ring geometry for the hot slot math.
	ev       [2][][]event
	evIdx    [2][][]int32
	ejRing   [][]ejEntry
	cred     [][]int32
	ringLen  int64
	ringMask int64

	// Per-stage activity sets over this shard's routers and NIs (see
	// activity.go; bits outside [lo, hi) are never set).
	actRC, actVA, actSA, actNI routerSet
	actScratch                 []int32

	// probe is where this shard's emission sites send events: the
	// network probe itself when stepping sequentially, the shard's own
	// buffering sink (ProbeEvent below) when sharded, nil when
	// unobserved. stamp mirrors "sharded and observed" for the append
	// paths; probeKey is the merge key of the action currently running.
	probe    Probe
	stamp    bool
	probeKey uint64
	probeBuf []keyedProbeEvent

	// ejOut buffers the packets whose tail flit ejected this cycle, per
	// send phase, for the serial epilogue's eject callbacks.
	ejOut [2][]*Packet

	// Engine-meter scratch (enginemeter.go): the shard's worker writes
	// these during its cycle, the serial epilogue reads them after the
	// barrier — the WaitGroup join provides the happens-before edge, so
	// no atomics are needed. Unused (stale) when no meter is attached.
	meterT0      time.Time
	meterEnd     time.Time
	meterBusyNs  int64
	meterDrainNs int64

	panicked any
}

// ProbeEvent implements Probe: the shard's emission sites buffer their
// events under the current action's merge key for the epilogue merge.
func (sh *shardState) ProbeEvent(ev ProbeEvent) {
	sh.probeBuf = append(sh.probeBuf, keyedProbeEvent{key: sh.probeKey, ev: ev})
}

// evSlot returns the shard's arrival-event lane for delivery cycle at
// under the current send phase, validating the horizon like the
// sequential slotFor did.
func (sh *shardState) evSlot(now, at int64) *[]event {
	if d := at - now; d <= 0 || d >= sh.ringLen {
		panic("noc: schedule delta out of range")
	}
	return &sh.ev[sh.phase][at&sh.ringMask]
}

// credSlot is evSlot's counterpart for the shard's own credit ring.
func (sh *shardState) credSlot(now, at int64) *[]int32 {
	if d := at - now; d <= 0 || d >= sh.ringLen {
		panic("noc: schedule delta out of range")
	}
	return &sh.cred[at&sh.ringMask]
}

// mailEvSlot returns the boundary-mailbox arrival lane from shard src
// toward shard dst for delivery cycle at, under src's current phase.
func (n *Network) mailEvSlot(src *shardState, dst int32, at int64) *[]xEvent {
	if d := at - n.cycle; d <= 0 || d >= n.ringLen {
		panic("noc: schedule delta out of range")
	}
	return &n.mail[src.idx][dst].ev[src.phase][at&n.ringMask]
}

// mailCredSlot is mailEvSlot's counterpart for credit returns.
func (n *Network) mailCredSlot(src *shardState, dst int32, at int64) *[]int32 {
	if d := at - n.cycle; d <= 0 || d >= n.ringLen {
		panic("noc: schedule delta out of range")
	}
	return &n.mail[src.idx][dst].cred[at&n.ringMask]
}

// stepSharded advances one cycle with len(shards) > 1: every shard runs
// its delivery, injection and pipeline stages on its own persistent
// worker (pool.go), and the serial epilogue replays the buffered probe
// events and eject callbacks in canonical order. One WaitGroup join per
// cycle is the only barrier; see the package comment above for why that
// suffices.
func (n *Network) stepSharded() {
	p := n.pool
	if p == nil {
		p = newShardPool(n)
		n.pool = p
	}
	meter := n.meter
	var t0 time.Time
	if meter != nil {
		t0 = time.Now()
	}
	p.wg.Add(len(p.work))
	for _, ch := range p.work {
		ch <- struct{}{}
	}
	p.wg.Wait()
	var barrierEnd time.Time
	if meter != nil {
		barrierEnd = time.Now()
	}
	for i := range n.shards {
		if p := n.shards[i].panicked; p != nil {
			n.shards[i].panicked = nil
			panic(p)
		}
	}
	if meter != nil {
		// Fold the workers' scratch timings into the meter totals. The
		// per-shard barrier wait is the gap between that shard finishing
		// its cycle and the last shard finishing (= the join returning):
		// the signature of imbalance, since every early finisher burns it
		// parked.
		for i := range n.shards {
			sh := &n.shards[i]
			ms := &meter.shards[i]
			ms.busyNs.Add(sh.meterBusyNs)
			ms.drainNs.Add(sh.meterDrainNs)
			if w := barrierEnd.Sub(sh.meterEnd).Nanoseconds(); w > 0 {
				ms.barrierNs.Add(w)
			}
			ms.cycles.Add(1)
		}
	}
	n.drainShardOutputs()
	if n.cfg.Mode == StepChecked {
		if err := n.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("noc: checked step failed at cycle %d: %v", n.cycle, err))
		}
	}
	if meter != nil {
		meter.stepNs.Add(time.Since(t0).Nanoseconds())
		meter.cycles.Add(1)
	}
}

// shardCycle runs one shard's share of the cycle: deliver credits and
// events addressed to this shard (own rings plus every inbound
// mailbox, in canonical phase-then-source order), then inject and step
// the pipeline stages over the shard's routers.
func (n *Network) shardCycle(sh *shardState) {
	slot := n.cycle & sh.ringMask
	sh.hot.seq = 0
	sh.phase = 0

	// Credits: own ring first, then inbound mailbox lanes. Credit
	// delivery is a bare increment, so the order is unobservable; it is
	// fixed anyway (ascending source shard) to keep the walk cheap and
	// the overflow panic deterministic.
	depth := int32(n.cfg.BufDepth)
	creds := sh.cred[slot]
	sh.cred[slot] = creds[:0]
	for _, ci := range creds {
		n.soa.credits[ci]++
		if n.soa.credits[ci] > depth {
			panic(fmt.Sprintf("noc: credit overflow at flat credit slot %d", ci))
		}
	}
	for s := range n.shards {
		if int32(s) == sh.idx {
			continue
		}
		mcreds := n.mail[s][sh.idx].cred[slot]
		n.mail[s][sh.idx].cred[slot] = mcreds[:0]
		if n.meter != nil && len(mcreds) > 0 {
			n.meter.cross[s*len(n.shards)+int(sh.idx)].credits.Add(int64(len(mcreds)))
		}
		for _, ci := range mcreds {
			n.soa.credits[ci]++
			if n.soa.credits[ci] > depth {
				panic(fmt.Sprintf("noc: credit overflow at flat credit slot %d", ci))
			}
		}
	}

	// Events, in the canonical sequential order: for each send phase,
	// sources in ascending shard order (the shard's own ring takes its
	// place among them), entries in append order.
	observed := sh.probe != nil
	for p := 0; p < 2; p++ {
		for s := range n.shards {
			if int32(s) == sh.idx {
				events := sh.ev[p][slot]
				sh.ev[p][slot] = events[:0]
				idxs := sh.evIdx[p][slot]
				sh.evIdx[p][slot] = idxs[:0]
				for k, ev := range events {
					if observed {
						var seq int32
						if k < len(idxs) {
							seq = idxs[k]
						}
						sh.probeKey = probeKey(p, sh.idx, seq)
					}
					if ev >= 0 {
						n.deliverArrival(ev)
						continue
					}
					sh.hot.inFlightFlits--
					e := &sh.ejRing[slot][^ev]
					if observed {
						sh.ProbeEvent(ProbeEvent{Kind: ProbeEject, Cycle: n.cycle, Router: topology.NodeID(e.router), Flit: e.flit})
					}
					if e.flit.Type.IsTail() {
						pkt := e.flit.Pkt
						pkt.EjectedAt = n.cycle
						if n.onEject != nil {
							sh.ejOut[p] = append(sh.ejOut[p], pkt)
						}
					}
				}
				continue
			}
			m := &n.mail[s][sh.idx]
			xs := m.ev[p][slot]
			m.ev[p][slot] = xs[:0]
			if n.meter != nil && len(xs) > 0 {
				n.meter.cross[s*len(n.shards)+int(sh.idx)].flits.Add(int64(len(xs)))
			}
			for k := range xs {
				x := &xs[k]
				if observed {
					sh.probeKey = probeKey(p, int32(s), x.idx)
				}
				n.deliverMailArrival(x)
			}
		}
	}
	sh.ejRing[slot] = sh.ejRing[slot][:0]
	if n.meter != nil {
		sh.meterDrainNs = time.Since(sh.meterT0).Nanoseconds()
	}

	// Injection and the pipeline stages over this shard's routers, in
	// the same reverse-stage order as sequential stepping. The send
	// phase tracks the stage so appended events land in the segment the
	// delivery order above expects.
	if observed {
		sh.probeKey = probeKey(pkInject, sh.idx, 0)
	}
	if n.cfg.Mode == StepFullScan {
		for i := sh.lo; i < sh.hi; i++ {
			n.inject(topology.NodeID(i))
		}
		if observed {
			sh.probeKey = probeKey(pkSA, sh.idx, 0)
		}
		for i := sh.lo; i < sh.hi; i++ {
			n.routers[i].stepSAFull(n.cycle)
		}
		sh.phase = 1
		if observed {
			sh.probeKey = probeKey(pkVA, sh.idx, 0)
		}
		for i := sh.lo; i < sh.hi; i++ {
			n.routers[i].stepVAFull(n.cycle)
		}
		if observed {
			sh.probeKey = probeKey(pkRC, sh.idx, 0)
		}
		for i := sh.lo; i < sh.hi; i++ {
			n.routers[i].stepRCFull(n.cycle)
		}
		return
	}
	sh.actScratch = sh.actNI.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.inject(topology.NodeID(id))
	}
	if observed {
		sh.probeKey = probeKey(pkSA, sh.idx, 0)
	}
	sh.actScratch = sh.actSA.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.routers[id].stepSA(n.cycle)
	}
	sh.phase = 1
	if observed {
		sh.probeKey = probeKey(pkVA, sh.idx, 0)
	}
	sh.actScratch = sh.actVA.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.routers[id].stepVA(n.cycle)
	}
	if observed {
		sh.probeKey = probeKey(pkRC, sh.idx, 0)
	}
	sh.actScratch = sh.actRC.appendMembers(sh.actScratch[:0])
	for _, id := range sh.actScratch {
		n.routers[id].stepRC(n.cycle)
	}
}

// deliverArrival exposes a same-shard link arrival: the flit was
// direct-written into its ring slot by the upstream forward, and ev is
// the destination's global flat VC index. Must stay behaviourally
// identical to the inlined arrival branch of the sequential step.
func (n *Network) deliverArrival(ev event) {
	r := &n.routers[n.soa.ownerOf[ev]]
	fi := int(ev - r.vcBase)
	f := r.vcArrive(fi)
	r.Counters.BufWrites++
	r.Counters.WBufWrites += r.layerFracN(f.ActiveLayers)
	if f.Type.IsHead() && r.vcOcc(fi) == 1 {
		if r.vcState[fi] != vcIdle {
			r.badArrivalState(fi)
		}
		r.startHead(int32(fi), n.cycle)
	}
}

// deliverMailArrival lands a cross-shard flit carried by a boundary
// mailbox: push the body into the destination ring (the slot equals the
// one a send-time direct write would have reserved, because deliveries
// are FIFO per VC and cross-shard channels never hold in-fly
// reservations) and run the same arrival bookkeeping as deliverArrival.
func (n *Network) deliverMailArrival(x *xEvent) {
	r := &n.routers[n.soa.ownerOf[x.gi]]
	fi := int(x.gi - r.vcBase)
	r.vcPush(fi, x.flit, n.cycle)
	r.Counters.BufWrites++
	r.Counters.WBufWrites += r.layerFracN(x.flit.ActiveLayers)
	if x.flit.Type.IsHead() && r.vcOcc(fi) == 1 {
		if r.vcState[fi] != vcIdle {
			r.badArrivalState(fi)
		}
		r.startHead(int32(fi), n.cycle)
	}
}

// drainShardOutputs is the serial epilogue of a sharded step: merge and
// replay the buffered probe events in canonical key order, then fire
// the buffered eject callbacks in canonical (send phase, shard) order —
// the order sequential stepping invokes them in.
func (n *Network) drainShardOutputs() {
	if n.probe != nil {
		buf := n.probeScratch[:0]
		for i := range n.shards {
			sh := &n.shards[i]
			buf = append(buf, sh.probeBuf...)
			sh.probeBuf = sh.probeBuf[:0]
		}
		// Stable: events sharing a key were emitted by one action of one
		// shard and appended in emission order, which the merge keeps.
		sort.SliceStable(buf, func(a, b int) bool { return buf[a].key < buf[b].key })
		for i := range buf {
			n.probe.ProbeEvent(buf[i].ev)
		}
		n.probeScratch = buf[:0]
	}
	for p := 0; p < 2; p++ {
		for i := range n.shards {
			sh := &n.shards[i]
			for _, pkt := range sh.ejOut[p] {
				n.onEject(pkt)
			}
			sh.ejOut[p] = sh.ejOut[p][:0]
		}
	}
}
