package noc

import (
	"sync/atomic"
	"time"
)

// EngineMeter instruments the simulator engine itself — where host
// wall-clock time goes inside a cycle, how evenly the shards are
// loaded, and how much traffic crosses shard boundaries. It is strictly
// out-of-band: the meter only reads clocks and counts work that already
// happened, never feeds anything back into simulation state, so
// results are bit-identical with a meter attached or not (pinned by
// TestEngineMeterPurity and the obs-level determinism suite). Detached
// (the default), every instrumented site pays one nil-check branch and
// nothing else — the same contract the probe hook keeps.
//
// All totals are atomics because external goroutines (the obs engine
// ticker, HTTP handlers) read them while the step loop writes. The
// per-cycle scratch timestamps live in shardState instead: they are
// written by a shard's worker and read by the serial epilogue after the
// WaitGroup barrier, so they need no synchronization of their own.
type EngineMeter struct {
	shards  []meterShard
	routers []int32 // routers per shard, fixed at attach
	// cross is the S x S boundary-crossing counter matrix
	// (cross[src*S+dst]), counting flits and credits drained from the
	// mailbox mail[src][dst]; nil when S == 1 (nothing ever crosses).
	// Each cell is written only by the destination shard's worker (at
	// its drain) but read by external samplers, hence atomics.
	cross  []crossCell
	cycles atomic.Int64
	stepNs atomic.Int64 // wall time inside Network.Step, all cycles
}

// meterShard is one shard's wall-time totals, padded so concurrently
// updated shards never share a cache line.
type meterShard struct {
	busyNs    atomic.Int64 // inside shardCycle (drain + inject + stages)
	drainNs   atomic.Int64 // the delivery/drain prefix of busyNs
	barrierNs atomic.Int64 // from this shard's finish to the cycle barrier
	cycles    atomic.Int64
	_         [32]byte
}

type crossCell struct {
	flits   atomic.Int64
	credits atomic.Int64
}

// EnableEngineMeter attaches an engine meter to the network and returns
// it; if one is already attached it is returned unchanged. Must not be
// called concurrently with Step — attach before the run starts.
func (n *Network) EnableEngineMeter() *EngineMeter {
	if n.meter != nil {
		return n.meter
	}
	S := len(n.shards)
	m := &EngineMeter{
		shards:  make([]meterShard, S),
		routers: make([]int32, S),
	}
	for i := range n.shards {
		m.routers[i] = n.shards[i].hi - n.shards[i].lo
	}
	if S > 1 {
		m.cross = make([]crossCell, S*S)
	}
	n.meter = m
	return m
}

// Meter returns the attached engine meter, or nil when detached.
func (n *Network) Meter() *EngineMeter { return n.meter }

// EngineShardStat is one shard's slice of an EngineSnapshot.
type EngineShardStat struct {
	Shard     int   `json:"shard"`
	Routers   int   `json:"routers"`
	BusyNs    int64 `json:"busy_ns"`
	DrainNs   int64 `json:"drain_ns"`
	BarrierNs int64 `json:"barrier_ns"`
	Cycles    int64 `json:"cycles"`
}

// EngineMailboxStat is the cumulative boundary-mailbox traffic drained
// by shard Dst from shard Src.
type EngineMailboxStat struct {
	Src     int   `json:"src"`
	Dst     int   `json:"dst"`
	Flits   int64 `json:"flits"`
	Credits int64 `json:"credits"`
}

// EngineSnapshot is a consistent-enough point-in-time copy of the
// meter's totals. Individual counters are read atomically; the set is
// not taken under a global lock (the step loop keeps running), which is
// fine for monitoring — totals are monotone.
type EngineSnapshot struct {
	Cycles int64             `json:"cycles"`
	StepNs int64             `json:"step_ns"`
	Shards []EngineShardStat `json:"shards"`
	// Mailbox lists the non-zero (src,dst) crossing counters in
	// ascending (src,dst) order.
	Mailbox []EngineMailboxStat `json:"mailbox,omitempty"`
}

// Snapshot copies the meter's current totals.
func (m *EngineMeter) Snapshot() EngineSnapshot {
	s := EngineSnapshot{
		Cycles: m.cycles.Load(),
		StepNs: m.stepNs.Load(),
		Shards: make([]EngineShardStat, len(m.shards)),
	}
	for i := range m.shards {
		ms := &m.shards[i]
		s.Shards[i] = EngineShardStat{
			Shard:     i,
			Routers:   int(m.routers[i]),
			BusyNs:    ms.busyNs.Load(),
			DrainNs:   ms.drainNs.Load(),
			BarrierNs: ms.barrierNs.Load(),
			Cycles:    ms.cycles.Load(),
		}
	}
	S := len(m.shards)
	for src := 0; src < S; src++ {
		for dst := 0; dst < S; dst++ {
			if src == dst || m.cross == nil {
				continue
			}
			c := &m.cross[src*S+dst]
			f, cr := c.flits.Load(), c.credits.Load()
			if f == 0 && cr == 0 {
				continue
			}
			s.Mailbox = append(s.Mailbox, EngineMailboxStat{Src: src, Dst: dst, Flits: f, Credits: cr})
		}
	}
	return s
}

// ImbalanceRatio is the max/mean ratio of per-shard busy time: 1.0 for
// perfectly balanced shards, 2.0 when the hottest shard works twice the
// average. Returns 1 for a single shard or an empty snapshot.
func (s *EngineSnapshot) ImbalanceRatio() float64 {
	if len(s.Shards) <= 1 {
		return 1
	}
	var sum, max int64
	for i := range s.Shards {
		b := s.Shards[i].BusyNs
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(s.Shards))
	return float64(max) / mean
}

// Utilization is the fraction of the worker pool's capacity spent doing
// shard work: sum of per-shard busy time over shards x wall time inside
// Step. Sequential stepping reports ~1 by construction; a sharded run
// below 1 is losing time to barrier skew or the serial epilogue.
func (s *EngineSnapshot) Utilization() float64 {
	if s.StepNs == 0 {
		return 0
	}
	var sum int64
	for i := range s.Shards {
		sum += s.Shards[i].BusyNs
	}
	return float64(sum) / (float64(len(s.Shards)) * float64(s.StepNs))
}

// stepSeqMetered wraps the sequential step with whole-cycle timing,
// attributed to shard 0 (the only shard). Drain and barrier phases are
// not separately timed on this path — keeping stepSeq itself untouched
// is what keeps the detached hot path at zero cost.
func (n *Network) stepSeqMetered(m *EngineMeter) {
	t0 := time.Now()
	n.stepSeq()
	d := time.Since(t0).Nanoseconds()
	m.shards[0].busyNs.Add(d)
	m.shards[0].cycles.Add(1)
	m.stepNs.Add(d)
	m.cycles.Add(1)
}
