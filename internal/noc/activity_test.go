package noc

import (
	"context"
	"math/rand"
	"testing"

	"mira/internal/topology"
)

func TestRouterSet(t *testing.T) {
	s := newRouterSet(130)
	if got := s.appendMembers(nil); len(got) != 0 {
		t.Fatalf("empty set yields %v", got)
	}
	for _, i := range []int{129, 0, 63, 64, 7, 63} { // 63 twice: add is idempotent
		s.add(i)
	}
	if s.n != 5 {
		t.Fatalf("population %d, want 5", s.n)
	}
	want := []int32{0, 7, 63, 64, 129}
	got := s.appendMembers(nil)
	if len(got) != len(want) {
		t.Fatalf("members %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members %v not ascending as %v", got, want)
		}
	}
	for _, i := range []int{63, 63} { // remove is idempotent
		s.remove(i)
	}
	if s.n != 4 || s.has(63) || !s.has(64) {
		t.Fatalf("after remove: n=%d has(63)=%v has(64)=%v", s.n, s.has(63), s.has(64))
	}
}

// ejection is one packet leaving the network, in callback order. The
// determinism contract requires the full stream — order included — to
// be identical across step modes.
type ejection struct {
	id       int64
	ejected  int64
	injected int64
	hops     int
}

// runModal drives cfg under Bernoulli traffic of size-flit packets for
// the given cycles, recording the ejection stream, and returns it with
// the final counters.
func runModal(t *testing.T, cfg Config, mode StepMode, rate float64, size int, cycles int64) ([]ejection, Counters, *Network) {
	t.Helper()
	cfg.Mode = mode
	net := NewNetwork(cfg)
	var stream []ejection
	net.SetEjectHandler(func(p *Packet) {
		stream = append(stream, ejection{id: p.ID, ejected: p.EjectedAt, injected: p.InjectedAt, hops: p.Hops})
	})
	gen := bernoulli(cfg.Topo, rate, size, Data)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for cycle := int64(0); cycle < cycles; cycle++ {
		for _, spec := range gen.Generate(cycle, rng, nil) {
			if _, err := net.Enqueue(spec); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
	}
	for i := int64(0); i < 20000 && !net.Idle(); i++ {
		net.Step()
	}
	return stream, net.TotalCounters(), net
}

// TestActivityMatchesFullScan is the determinism regression: the
// activity-driven stepping path must reproduce the reference full scan
// exactly — same ejection stream in the same order, same switching
// counters, same final flow-control state — across fabrics, pipeline
// options, arbiters and loads (including past saturation).
func TestActivityMatchesFullScan(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		rate float64
	}{
		{"mesh-stlt2", cfg2D(2), 0.2},
		{"mesh-stlt1-lookahead", func() Config { c := cfg2D(1); c.LookaheadRC = true; return c }(), 0.2},
		{"mesh-spec-sa", func() Config { c := cfg2D(2); c.SpecSA = true; return c }(), 0.2},
		{"mesh-matrix-arb", func() Config { c := cfg2D(2); c.Arb = ArbMatrix; return c }(), 0.2},
		{"mesh-qos", func() Config { c := cfg2D(2); c.QoSPriority = true; return c }(), 0.2},
		{"mesh3d", cfg3D(2), 0.2},
		{"express-low", cfgExpress(1), 0.05},
		{"express-saturated", cfgExpress(1), 0.9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.cfg.Seed = 11
			full, fullCnt, fullNet := runModal(t, c.cfg, StepFullScan, c.rate, 4, 1200)
			act, actCnt, actNet := runModal(t, c.cfg, StepActivity, c.rate, 4, 1200)
			if len(full) == 0 {
				t.Fatal("no traffic delivered; test is vacuous")
			}
			if len(full) != len(act) {
				t.Fatalf("ejection streams diverge: %d vs %d packets", len(full), len(act))
			}
			for i := range full {
				if full[i] != act[i] {
					t.Fatalf("ejection %d diverges: fullscan %+v, activity %+v", i, full[i], act[i])
				}
			}
			if fullCnt != actCnt {
				t.Fatalf("counters diverge:\nfullscan %+v\nactivity %+v", fullCnt, actCnt)
			}
			if err := actNet.CheckInvariants(); err != nil {
				t.Fatalf("activity invariants: %v", err)
			}
			if err := fullNet.CheckInvariants(); err != nil {
				t.Fatalf("fullscan invariants: %v", err)
			}
		})
	}
}

// TestSpecLookaheadSingleFlitChainReentry is the regression for the
// stepVA chain-walk guards. Under SpecSA+LookaheadRC a single-flit
// (HeadTail) packet granted early in stepVA can speculatively forward,
// release its channel and route the next buffered head straight back
// into vcWaitVC within the same stage — with readyAt = cycle+1 and
// possibly a different output port. The stale per-port chain still
// lists that VC, so the walk must re-check readiness and output port,
// not just the wait state; otherwise later (oi, ov) rounds grant it a
// cycle early on its old port, leaking the reservation when the new
// head routes elsewhere. Saturated single-flit traffic keeps a queued
// head behind every tail, the shape that triggers the re-entry; several
// seeds are swept because one arbiter history may not expose it.
func TestSpecLookaheadSingleFlitChainReentry(t *testing.T) {
	for _, seed := range []int64{3, 11, 42, 1234} {
		cfg := cfg2D(1)
		cfg.SpecSA = true
		cfg.LookaheadRC = true
		cfg.BufDepth = 4
		cfg.Seed = seed
		full, fullCnt, _ := runModal(t, cfg, StepFullScan, 0.8, 1, 1500)
		act, actCnt, actNet := runModal(t, cfg, StepActivity, 0.8, 1, 1500)
		if len(full) == 0 {
			t.Fatal("no traffic delivered; test is vacuous")
		}
		if len(full) != len(act) {
			t.Fatalf("seed %d: ejection streams diverge: %d vs %d packets", seed, len(full), len(act))
		}
		for i := range full {
			if full[i] != act[i] {
				t.Fatalf("seed %d: ejection %d diverges: fullscan %+v, activity %+v", seed, i, full[i], act[i])
			}
		}
		if fullCnt != actCnt {
			t.Fatalf("seed %d: counters diverge:\nfullscan %+v\nactivity %+v", seed, fullCnt, actCnt)
		}
		if err := actNet.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: activity invariants: %v", seed, err)
		}
	}
}

// TestActivityMatchesFullScanSim compares complete Sim runs (warmup,
// measurement, drain) on a real sweep point: every derived metric of
// the Result — float means included — must be bit-identical, as must
// the per-router counter tables.
func TestActivityMatchesFullScanSim(t *testing.T) {
	run := func(mode StepMode) Result {
		cfg := cfg2D(2)
		cfg.Seed = 42
		cfg.Mode = mode
		net := NewNetwork(cfg)
		s := NewSim(net, bernoulli(cfg.Topo, 0.15, 4, Data))
		s.Params = SimParams{Warmup: 300, Measure: 2000, DrainMax: 8000}
		return s.Run(context.Background())
	}
	full := run(StepFullScan)
	act := run(StepActivity)
	if full.Generated == 0 || full.Ejected != act.Ejected || full.Generated != act.Generated {
		t.Fatalf("packet counts diverge: fullscan %d/%d, activity %d/%d",
			full.Ejected, full.Generated, act.Ejected, act.Generated)
	}
	if full.AvgLatency != act.AvgLatency || full.P99Latency != act.P99Latency ||
		full.AvgHops != act.AvgHops || full.AvgQueueDelay != act.AvgQueueDelay ||
		full.ThroughputFPC != act.ThroughputFPC || full.Saturated != act.Saturated {
		t.Fatalf("metrics diverge:\nfullscan %v\nactivity %v", full.String(), act.String())
	}
	if full.Counters != act.Counters {
		t.Fatalf("window counters diverge:\nfullscan %+v\nactivity %+v", full.Counters, act.Counters)
	}
	for i := range full.PerRouter {
		if full.PerRouter[i] != act.PerRouter[i] {
			t.Fatalf("router %d counters diverge", i)
		}
	}
	if full.PerClass != act.PerClass {
		t.Fatalf("per-class results diverge: %+v vs %+v", full.PerClass, act.PerClass)
	}
}

// TestCheckedStepMode runs the per-cycle cross-checking mode end to end:
// every cycle of a loaded run revalidates all invariants.
func TestCheckedStepMode(t *testing.T) {
	cfg := cfgExpress(1)
	cfg.Mode = StepChecked
	cfg.SpecSA = true
	cfg.LookaheadRC = true
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.25, 4, Data))
	s.Params = SimParams{Warmup: 0, Measure: 400, DrainMax: 4000}
	res := s.Run(context.Background())
	if res.Ejected == 0 || res.Ejected != res.Generated {
		t.Fatalf("checked run did not deliver: %v", res.String())
	}
}

// TestCheckedStepAPI exercises the non-panicking debug entry point.
func TestCheckedStepAPI(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	if _, err := net.Enqueue(Spec{Src: 0, Dst: 7, Size: 4, Class: Data}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !net.Idle(); i++ {
		if err := net.CheckedStep(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if !net.Idle() {
		t.Fatal("single packet did not drain in 50 checked cycles")
	}
}

// TestIdleNetworkStaysCheap documents the activity contract directly:
// a drained network has empty activity sets, so stepping it visits no
// routers at all.
func TestIdleNetworkStaysCheap(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	if _, err := net.Enqueue(Spec{Src: 0, Dst: 35, Size: 4, Class: Data}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500 && !net.Idle(); i++ {
		net.Step()
	}
	if !net.Idle() {
		t.Fatal("packet did not drain")
	}
	sh := &net.shards[0]
	for _, s := range []*routerSet{&sh.actRC, &sh.actVA, &sh.actSA, &sh.actNI} {
		if s.n != 0 {
			t.Fatalf("idle network has %d active entries", s.n)
		}
	}
	before := net.Cycle()
	for i := 0; i < 10; i++ {
		net.Step()
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if net.Cycle() != before+10 {
		t.Fatalf("cycle advanced %d, want 10", net.Cycle()-before)
	}
}

// TestStepModeMixedClasses covers ByClass VC allocation plus QoS under
// bimodal control/data traffic in both modes.
func TestStepModeMixedClasses(t *testing.T) {
	mk := func(mode StepMode) (Result, Counters) {
		cfg := cfg2D(2)
		cfg.Policy = ByClass
		cfg.QoSPriority = true
		cfg.Seed = 3
		cfg.Mode = mode
		net := NewNetwork(cfg)
		gen := GeneratorFunc(func(cycle int64, rng *rand.Rand, specs []Spec) []Spec {
			if rng.Float64() < 0.4 {
				a := topology.NodeID(rng.Intn(36))
				b := topology.NodeID(rng.Intn(36))
				if a != b {
					specs = append(specs,
						Spec{Src: a, Dst: b, Size: 1, Class: Control},
						Spec{Src: b, Dst: a, Size: 4, Class: Data})
				}
			}
			return specs
		})
		s := NewSim(net, gen)
		s.Params = SimParams{Warmup: 200, Measure: 1500, DrainMax: 8000}
		return s.Run(context.Background()), net.TotalCounters()
	}
	fullRes, fullCnt := mk(StepFullScan)
	actRes, actCnt := mk(StepActivity)
	if fullRes.AvgLatency != actRes.AvgLatency || fullRes.PerClass != actRes.PerClass {
		t.Fatalf("bimodal results diverge:\nfullscan %v %+v\nactivity %v %+v",
			fullRes.String(), fullRes.PerClass, actRes.String(), actRes.PerClass)
	}
	if fullCnt != actCnt {
		t.Fatalf("bimodal counters diverge:\nfullscan %+v\nactivity %+v", fullCnt, actCnt)
	}
}
