package noc

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"mira/internal/topology"
)

// recordingProbe captures every emitted event in order.
type recordingProbe struct {
	events []ProbeEvent
}

func (p *recordingProbe) ProbeEvent(ev ProbeEvent) { p.events = append(p.events, ev) }

// runProbed runs a short bernoulli simulation with a recording probe
// attached and returns the event stream plus the final counters.
func runProbed(t *testing.T, mode StepMode) ([]ProbeEvent, Counters, Result) {
	return runProbedCfg(t, mode, nil)
}

func runProbedCfg(t *testing.T, mode StepMode, mutate func(*Config)) ([]ProbeEvent, Counters, Result) {
	t.Helper()
	cfg := cfg2D(2)
	cfg.Mode = mode
	if mutate != nil {
		mutate(&cfg)
	}
	net := NewNetwork(cfg)
	p := &recordingProbe{}
	net.SetProbe(p)
	s := NewSim(net, bernoulli(cfg.Topo, 0.1, 4, Data))
	s.Params = SimParams{Warmup: 0, Measure: 400, DrainMax: 2000}
	res := s.Run(context.Background())
	return p.events, net.TotalCounters(), res
}

// TestProbeEventStreamMatchesCounters cross-checks the probe stream
// against the router activity counters: every counted pipeline event of
// an observable kind must have been emitted exactly once.
func TestProbeEventStreamMatchesCounters(t *testing.T) {
	events, c, res := runProbed(t, StepActivity)
	if res.Ejected == 0 {
		t.Fatal("no traffic simulated")
	}
	var n [NumProbeKinds]int64
	for _, ev := range events {
		n[ev.Kind]++
	}
	if n[ProbeRoute] != c.RCOps {
		t.Errorf("route events = %d, RCOps = %d", n[ProbeRoute], c.RCOps)
	}
	if n[ProbeVCAlloc] != c.VAGrants {
		t.Errorf("vcalloc events = %d, VAGrants = %d", n[ProbeVCAlloc], c.VAGrants)
	}
	if n[ProbeSAGrant] != c.SAGrants {
		t.Errorf("sagrant events = %d, SAGrants = %d", n[ProbeSAGrant], c.SAGrants)
	}
	if n[ProbeLink] != c.LinkFlits {
		t.Errorf("link events = %d, LinkFlits = %d", n[ProbeLink], c.LinkFlits)
	}
	// Every injected flit is eventually ejected in a fully drained run.
	if n[ProbeInject] != n[ProbeEject] {
		t.Errorf("inject events = %d, eject events = %d", n[ProbeInject], n[ProbeEject])
	}
	if n[ProbeInject] == 0 {
		t.Error("no inject events emitted")
	}
}

// TestProbeEventStreamDeterministicAcrossModes verifies the activity
// path emits the byte-identical event sequence the reference full scan
// produces — the property that makes traces comparable across step
// modes.
func TestProbeEventStreamDeterministicAcrossModes(t *testing.T) {
	act, _, _ := runProbed(t, StepActivity)
	full, _, _ := runProbed(t, StepFullScan)
	if len(act) != len(full) {
		t.Fatalf("activity emitted %d events, fullscan %d", len(act), len(full))
	}
	evKey := func(ev ProbeEvent) string {
		return fmt.Sprintf("%d %v r%d %v vc%d pkt%d.%d",
			ev.Cycle, ev.Kind, ev.Router, ev.Dir, ev.VC, ev.Flit.Pkt.ID, ev.Flit.Seq)
	}
	// Arbitrated and delivery events (inject, VA, SA, link, eject) are
	// strictly ordered and must match event for event.
	strict := func(evs []ProbeEvent) []string {
		var out []string
		for _, ev := range evs {
			if ev.Kind != ProbeRoute {
				out = append(out, evKey(ev))
			}
		}
		return out
	}
	sa, sf := strict(act), strict(full)
	for i := range sa {
		if sa[i] != sf[i] {
			t.Fatalf("strict event %d differs: activity %s vs fullscan %s", i, sa[i], sf[i])
		}
	}
	// The RC stage is order-independent, so route events only need to
	// match as a per-cycle set.
	routes := func(evs []ProbeEvent) []string {
		var out []string
		for _, ev := range evs {
			if ev.Kind == ProbeRoute {
				out = append(out, evKey(ev))
			}
		}
		sort.Strings(out)
		return out
	}
	ra, rf := routes(act), routes(full)
	for i := range ra {
		if ra[i] != rf[i] {
			t.Fatalf("route event set differs at %d: activity %s vs fullscan %s", i, ra[i], rf[i])
		}
	}
}

// TestProbePerFlitOrdering checks the pipeline invariant per flit:
// inject precedes every router event, and eject is last, with
// non-decreasing cycles along the way. The look-ahead variant is the
// regression for inject-event ordering: look-ahead routing computes the
// route (and emits its route event) as the flit enters the source
// buffer, which must still happen after the inject emission.
func TestProbePerFlitOrdering(t *testing.T) {
	for _, variant := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"baseline", nil},
		{"lookahead", func(c *Config) { c.LookaheadRC = true }},
		{"lookahead_specsa", func(c *Config) { c.LookaheadRC = true; c.SpecSA = true }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			checkPerFlitOrdering(t, variant.mutate)
		})
	}
}

func checkPerFlitOrdering(t *testing.T, mutate func(*Config)) {
	events, _, _ := runProbedCfg(t, StepActivity, mutate)
	type key struct {
		pkt int64
		seq int
	}
	last := map[key]ProbeEvent{}
	for _, ev := range events {
		k := key{ev.Flit.Pkt.ID, int(ev.Flit.Seq)}
		prev, seen := last[k]
		if !seen {
			if ev.Kind != ProbeInject {
				t.Fatalf("first event for flit %v is %v, want inject", k, ev.Kind)
			}
		} else {
			if prev.Cycle > ev.Cycle {
				t.Fatalf("flit %v went back in time: %v@%d after %v@%d",
					k, ev.Kind, ev.Cycle, prev.Kind, prev.Cycle)
			}
			if prev.Kind == ProbeEject {
				t.Fatalf("flit %v has events after eject", k)
			}
		}
		last[k] = ev
	}
	for k, ev := range last {
		if ev.Kind != ProbeEject {
			t.Errorf("flit %v never ejected (last event %v)", k, ev.Kind)
		}
	}
}

// TestVCOccupanciesMatchOccupancy checks the sampler accessors agree
// with the router's own total.
func TestVCOccupanciesMatchOccupancy(t *testing.T) {
	cfg := cfg2D(2)
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.2, 4, Data))
	s.Params = SimParams{Warmup: 0, Measure: 200, DrainMax: 0}
	s.Run(context.Background())
	for i := 0; i < cfg.Topo.NumNodes(); i++ {
		r := net.Router(topology.NodeID(i))
		occ := r.VCOccupancies(nil)
		if len(occ) != r.NumInVCs() {
			t.Fatalf("router %d: %d occupancies for %d VCs", i, len(occ), r.NumInVCs())
		}
		sum := 0
		for _, o := range occ {
			sum += o
		}
		if sum != r.Occupancy() {
			t.Errorf("router %d: per-VC sum %d != occupancy %d", i, sum, r.Occupancy())
		}
	}
}
