package noc_test

import (
	"fmt"

	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/topology"
)

func ExampleNewNetwork() {
	topo := topology.NewMesh2D(6, 6, 3.1)
	cfg := noc.Config{
		Topo: topo, Alg: routing.XY{},
		VCs: 2, BufDepth: 8, STLTCycles: 2, Layers: 4,
		Policy: noc.AnyFree, Seed: 1,
	}
	net := noc.NewNetwork(cfg)

	var delivered *noc.Packet
	net.SetEjectHandler(func(p *noc.Packet) { delivered = p })
	if _, err := net.Enqueue(noc.Spec{Src: 0, Dst: 7, Size: 4, Class: noc.Data}); err != nil {
		panic(err)
	}
	for delivered == nil {
		net.Step()
	}
	fmt.Printf("4-flit packet over %d hops in %d cycles\n",
		delivered.Hops, delivered.EjectedAt-delivered.CreatedAt)
	// Output: 4-flit packet over 2 hops in 19 cycles
}
