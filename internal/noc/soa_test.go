package noc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mira/internal/topology"
)

// TestSoAViewAliasing pins the ownership contract of soa.go: the flat
// per-network arrays are the state and every per-router (and per-port)
// slice is a window over them, so a mutation through either
// representation is immediately visible through the other. If a refactor
// ever turns a window into a copy, the two representations can drift and
// this test fails before any simulation-level symptom appears.
func TestSoAViewAliasing(t *testing.T) {
	net := NewNetwork(cfg2D(1))
	// A middle router, so every direction has ports; nonzero bases.
	r := &net.routers[7]
	if r.vcBase == 0 {
		t.Fatalf("router 7 has vcBase 0; want a nonzero base for the aliasing check")
	}
	pi := int(r.inIndex[topology.East])
	vi := 1
	f := r.flatVC(pi, vi)
	gi := int(r.vcBase) + f

	// Flat write -> router-view read, across a few representative lanes.
	net.soa.vcReadyAt[gi] = 12345
	if got := r.vcReadyAt[f]; got != 12345 {
		t.Errorf("vcReadyAt window read %d after flat write, want 12345", got)
	}
	net.soa.vcOutVC[gi] = 3
	if got := r.vcOutVC[f]; got != 3 {
		t.Errorf("vcOutVC window read %d after flat write, want 3", got)
	}

	// Router-view write -> flat read.
	r.vcState[f] = vcRouting
	if got := net.soa.vcState[gi]; got != vcRouting {
		t.Errorf("flat vcState read %v after window write, want %v", got, vcRouting)
	}
	r.vcState[f] = vcIdle

	// Ring storage: a push through the router view must land in the
	// network-owned backing array at the global slot.
	pkt := &Packet{ID: 99, Src: 0, Dst: 1, Size: 1}
	r.vcPush(f, Flit{Pkt: pkt, Type: HeadTailFlit}, 7)
	if got := net.soa.bufFlit[gi*net.cfg.BufDepth]; got.Pkt != pkt {
		t.Errorf("flat bufFlit slot holds %+v after window push, want packet 99", got)
	}
	if got := net.soa.bufArrived[gi*net.cfg.BufDepth]; got != 7 {
		t.Errorf("flat bufArrived slot %d after window push, want 7", got)
	}
	// And the reverse: mutate the flit in place through the flat array,
	// read it through the router accessor.
	net.soa.bufFlit[gi*net.cfg.BufDepth].Seq = 42
	if got := r.vcFrontFlit(f); got == nil || got.Seq != 42 {
		t.Errorf("vcFrontFlit = %+v after flat mutation, want Seq 42", got)
	}
	r.vcDrop(f)

	// Output-port views: outputPort.credits/reserved alias the same
	// backing arrays as Router.credits/reserved and the flat state.
	oi := int(r.outIndex[topology.West])
	op := &r.outPorts[oi]
	ci := oi*r.vcsPerPort + vi
	gc := int(r.credBase) + ci
	op.credits[vi]--
	if got := net.soa.credits[gc]; got != r.credits[ci] || got != op.credits[vi] {
		t.Errorf("credit views diverged: flat %d, router %d, port %d",
			net.soa.credits[gc], r.credits[ci], op.credits[vi])
	}
	op.credits[vi]++
	net.soa.reserved[gc] = true
	if !op.reserved[vi] || !r.reserved[ci] {
		t.Errorf("reserved views diverged: flat true, router %v, port %v",
			r.reserved[ci], op.reserved[vi])
	}
	net.soa.reserved[gc] = false

	// The windows really are views, so the network must still pass a
	// full consistency check after the round-trips above.
	if err := net.CheckInvariants(); err != nil {
		t.Fatalf("invariants after aliasing round-trips: %v", err)
	}
}

// TestVCOverflowPanics pins the fixed-capacity ring contract: occupancy
// beyond BufDepth is physically unstorable, and both write paths — the
// NI-side vcPush and the link-side reserve (vcReserveGlobal, whose body
// forward repeats inline) — panic naming the exact router, port and VC,
// so a credit bug reports where it happened rather than corrupting
// state.
func TestVCOverflowPanics(t *testing.T) {
	mustPanic := func(t *testing.T, wantSub []string, fn func()) {
		t.Helper()
		defer func() {
			msg, ok := recover().(string)
			if !ok {
				t.Fatalf("no panic; want buffer-overflow panic")
			}
			for _, sub := range wantSub {
				if !strings.Contains(msg, sub) {
					t.Errorf("panic %q does not name %q", msg, sub)
				}
			}
		}()
		fn()
	}

	t.Run("push", func(t *testing.T) {
		net := NewNetwork(cfg2D(1))
		r := &net.routers[0]
		lpi := int(r.inIndex[topology.Local])
		f := r.flatVC(lpi, 0)
		pkt := &Packet{Src: 0, Dst: 1, Size: 1}
		for i := 0; i < net.cfg.BufDepth; i++ {
			r.vcPush(f, Flit{Pkt: pkt, Type: BodyFlit}, int64(i))
		}
		mustPanic(t, []string{
			"router 0", fmt.Sprintf("port %d", lpi), "(local)", "vc 0", "overflow",
		}, func() {
			r.vcPush(f, Flit{Pkt: pkt, Type: BodyFlit}, 99)
		})
	})

	t.Run("reserve", func(t *testing.T) {
		net := NewNetwork(cfg2D(1))
		r := &net.routers[7] // interior: every direction present
		pi := int(r.inIndex[topology.East])
		vi := 1
		gi := r.vcBase + int32(r.flatVC(pi, vi))
		pkt := &Packet{Src: 0, Dst: 1, Size: 1}
		flit := Flit{Pkt: pkt, Type: BodyFlit}
		for i := 0; i < net.cfg.BufDepth; i++ {
			net.vcReserveGlobal(gi, &flit, int64(i+1))
		}
		mustPanic(t, []string{
			"router 7", fmt.Sprintf("port %d", pi), "(east)", fmt.Sprintf("vc %d", vi), "overflow",
		}, func() {
			net.vcReserveGlobal(gi, &flit, 99)
		})
	})

	// Reserved-but-undelivered flits count against the depth too: a VC
	// with buffered flits and in-flight reservations summing to the
	// depth must reject another reservation.
	t.Run("mixed", func(t *testing.T) {
		net := NewNetwork(cfg2D(1))
		r := &net.routers[7]
		pi := int(r.inIndex[topology.West])
		f := r.flatVC(pi, 0)
		gi := r.vcBase + int32(f)
		pkt := &Packet{Src: 0, Dst: 1, Size: 1}
		flit := Flit{Pkt: pkt, Type: BodyFlit}
		for i := 0; i < net.cfg.BufDepth/2; i++ {
			r.vcPush(f, flit, int64(i))
		}
		for i := net.cfg.BufDepth / 2; i < net.cfg.BufDepth; i++ {
			net.vcReserveGlobal(gi, &flit, int64(i+1))
		}
		mustPanic(t, []string{"router 7", "vc 0", "overflow"}, func() {
			net.vcReserveGlobal(gi, &flit, 99)
		})
	})
}

// TestGrantMaskEquivalence drives two identically seeded arbiters — one
// through the []bool grant path, one through the bitmask fast path the
// allocation stages use for routers with at most 64 flat VCs — with the
// same random request streams and requires decision-for-decision
// agreement, for both arbiter policies.
func TestGrantMaskEquivalence(t *testing.T) {
	for _, policy := range []ArbPolicy{ArbRoundRobin, ArbMatrix} {
		t.Run(policy.String(), func(t *testing.T) {
			const n = 20
			var ab, am arbState
			ab.init(policy, n)
			am.init(policy, n)
			reqs := make([]bool, n)
			scratch := make([]bool, n)
			rng := rand.New(rand.NewSource(3))
			for round := 0; round < 2000; round++ {
				var mask uint64
				for i := range reqs {
					reqs[i] = rng.Intn(3) == 0
					if reqs[i] {
						mask |= 1 << uint(i)
					}
				}
				gb := ab.grant(reqs)
				gm := am.grantMask(mask, scratch)
				if gb != gm {
					t.Fatalf("round %d: grant = %d, grantMask = %d (mask %#x)", round, gb, gm, mask)
				}
				for _, v := range scratch {
					if v {
						t.Fatalf("round %d: grantMask left scratch dirty", round)
					}
				}
				// Interleave single-requester grants so the rotor/matrix
				// state is exercised from every position.
				if gb >= 0 && rng.Intn(4) == 0 {
					ab.grantSingle(gb)
					am.grantSingle(gb)
				}
			}
		})
	}
}
