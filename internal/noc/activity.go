package noc

import "math/bits"

// Activity tracking. The cycle loop's cost must scale with the traffic
// that exists, not with the network size: at the low-to-mid injection
// rates that dominate the latency-throughput sweeps most routers hold
// zero flits on most cycles, and rescanning every port x VC of every
// router per stage wastes almost all of the work. Instead, every
// input-VC state transition is funnelled through Router.setVCState,
// which maintains
//
//   - per-router dense lists of the flat VC indices currently in each
//     non-idle state (listRC/listVA/listSA, with listPos for O(1)
//     swap-removal), so the stage functions visit only VCs that can
//     possibly act, and
//   - per-shard bitsets of the routers owning a non-empty list per
//     stage (actRC/actVA/actSA) plus the NIs with queued or in-flight
//     packets (actNI), so the cycle loop visits only routers and NIs
//     with pending work. The sets live on the shard stepping the router
//     (shard.go; one shard owns everything under sequential stepping),
//     so concurrent shards never touch a shared bitset word.
//
// Determinism is part of the contract: the activity-driven path must be
// bit-identical to the full scan (Config.Mode = StepFullScan) for any
// seed and worker count. Two properties make that hold:
//
//  1. Arbiter state only advances on Grant, and the full scan never
//     calls Grant for an output (port, VC) without at least one
//     requester — a router with no VC in a stage therefore leaves every
//     arbiter untouched, so skipping it entirely cannot change any
//     later arbitration. Within a visited router the request vectors
//     handed to Grant are rebuilt over the same flat indices, so the
//     arbiters see identical bit patterns.
//  2. Cross-router state only interacts through the event ring, and the
//     only order-sensitive consumer is the ejection callback (float
//     accumulation in Sim). Bitset iteration yields router IDs in
//     ascending order — the same relative order as the full scan's
//     range over n.routers — so events are appended to each ring slot
//     in an identical sequence.
//
// CheckInvariants cross-checks every list, position index, pending
// count and bitset against a fresh full scan of the VC states.

// routerSet is a fixed-capacity bitset over router/NI indices with a
// population count. Iteration (appendMembers) is in ascending index
// order, which the determinism argument above relies on.
type routerSet struct {
	words []uint64
	n     int // population count
}

func newRouterSet(size int) routerSet {
	return routerSet{words: make([]uint64, (size+63)/64)}
}

// add inserts i; it is idempotent.
func (s *routerSet) add(i int) {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b == 0 {
		s.words[w] |= b
		s.n++
	}
}

// remove deletes i; it is idempotent.
func (s *routerSet) remove(i int) {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.n--
	}
}

// has reports membership.
func (s *routerSet) has(i int) bool {
	return s.words[i>>6]&(uint64(1)<<(uint(i)&63)) != 0
}

// appendMembers appends the members in ascending order to dst and
// returns it. Network.Step snapshots each stage's set into a reusable
// scratch slice before stepping it, so routers may enter or leave the
// set mid-stage without perturbing the iteration.
func (s *routerSet) appendMembers(dst []int32) []int32 {
	for wi, w := range s.words {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// listAdd appends flat VC index f to list, recording its position.
func (r *Router) listAdd(list []int32, f int32) []int32 {
	r.listPos[f] = int32(len(list))
	return append(list, f)
}

// listRemove swap-removes flat VC index f from list.
func (r *Router) listRemove(list []int32, f int32) []int32 {
	p := r.listPos[f]
	last := int32(len(list) - 1)
	moved := list[last]
	list[p] = moved
	r.listPos[moved] = p
	r.listPos[f] = -1
	return list[:last]
}

// setVCState moves the VC at flat index f to state s, keeping the
// per-stage pending lists, the per-output waiter counts and the
// network-level active-router sets in sync. Every state assignment in
// the router goes through here; vcState[f] is never written directly.
func (r *Router) setVCState(f int32, s vcState) {
	id := int(r.id)
	sh := r.sh
	switch r.vcState[f] {
	case vcRouting:
		r.listRC = r.listRemove(r.listRC, f)
		if len(r.listRC) == 0 {
			sh.actRC.remove(id)
		}
	case vcWaitVC:
		r.listVA = r.listRemove(r.listVA, f)
		r.waitersByOut[r.outIndex[r.vcOutDir[f]]]--
		if len(r.listVA) == 0 {
			sh.actVA.remove(id)
		}
	case vcActive:
		r.listSA = r.listRemove(r.listSA, f)
		if len(r.listSA) == 0 {
			sh.actSA.remove(id)
		}
	}
	r.vcState[f] = s
	switch s {
	case vcRouting:
		r.listRC = r.listAdd(r.listRC, f)
		sh.actRC.add(id)
	case vcWaitVC:
		r.listVA = r.listAdd(r.listVA, f)
		r.waitersByOut[r.outIndex[r.vcOutDir[f]]]++
		sh.actVA.add(id)
	case vcActive:
		r.listSA = r.listAdd(r.listSA, f)
		sh.actSA.add(id)
	}
}
