package noc

import (
	"fmt"
	"math/bits"

	"mira/internal/topology"
)

// CheckInvariants validates cross-router consistency of the flow-control
// state. It is O(routers x ports x VCs) and intended for tests and
// debugging, not the hot loop. The checked properties are the ones
// credit-based wormhole switching relies on:
//
//  1. No input VC buffer exceeds its configured depth.
//  2. For every link, the upstream credit count plus the downstream
//     buffer occupancy plus flits in flight on the link never exceeds
//     the buffer depth (credits can transiently undercount while a
//     credit is in flight, but can never overcount).
//  3. A VC in the Routing/WaitVC state has a head flit at its front;
//     a VC holding buffered flits is never Idle.
//  4. Output VC reservations are consistent: an Active input VC's
//     (outDir, outVC) target is actually reserved.
//  5. The incrementally maintained backlog counters (queued flits,
//     queued packets, in-flight flits) agree with a full rescan of the
//     NI queues, router buffers and event rings — the debug cross-check
//     for the O(1) backlog the simulator's drain loop relies on.
//  6. The activity-tracking state the cycle loop skips idle work by
//     (per-router pending lists, list position index, per-output waiter
//     counts, and the per-shard active-router and active-NI sets)
//     agrees with a fresh full scan of the VC states and NI queues.
//
// In-flight traffic is scanned across every shard's own rings (both
// send-phase segments) and every boundary mailbox. Ring arrivals were
// direct-written into their destination slots at send time and are
// counted against vcInFly; mailbox arrivals carry their flit with them
// and are counted separately (a channel fed from another shard must
// have vcInFly == 0, which the per-VC check enforces since ring
// arrivals for it can't exist). Both kinds occupy downstream credit,
// so the conservation check sums them.
func (n *Network) CheckInvariants() error {
	type chanKey struct {
		router topology.NodeID
		dir    topology.Dir
		vc     int
	}
	// Flits and credits currently in flight. Flits key by downstream
	// channel; credits travel as flat credit-array indices, so they key
	// by the global slot the delivery loop will increment.
	inFlight := make(map[chanKey]int)   // ring arrivals (direct-written)
	mailFlight := make(map[chanKey]int) // mailbox arrivals (flit-carrying)
	credRet := make(map[int32]int)
	ejecting := 0
	keyOf := func(gi int32) (chanKey, error) {
		if gi < 0 || int(gi) >= len(n.soa.ownerOf) {
			return chanKey{}, fmt.Errorf("noc: in-flight arrival word %d out of range", gi)
		}
		r := &n.routers[n.soa.ownerOf[gi]]
		fi := int(gi - r.vcBase)
		return chanKey{r.id, r.inPorts[r.portOf[fi]].dir, int(r.vcOf[fi])}, nil
	}
	for si := range n.shards {
		sh := &n.shards[si]
		for p := 0; p < 2; p++ {
			for _, slot := range sh.ev[p] {
				for _, ev := range slot {
					if ev < 0 {
						ejecting++
						continue
					}
					k, err := keyOf(ev)
					if err != nil {
						return err
					}
					inFlight[k]++
				}
			}
		}
		for _, slot := range sh.cred {
			for _, ci := range slot {
				if ci < 0 || int(ci) >= len(n.soa.credits) {
					return fmt.Errorf("noc: in-flight credit slot %d out of range", ci)
				}
				credRet[ci]++
			}
		}
	}
	for src := range n.mail {
		for dst := range n.mail[src] {
			m := &n.mail[src][dst]
			for p := 0; p < 2; p++ {
				for _, slot := range m.ev[p] {
					for i := range slot {
						k, err := keyOf(slot[i].gi)
						if err != nil {
							return err
						}
						mailFlight[k]++
					}
				}
			}
			for _, slot := range m.cred {
				for _, ci := range slot {
					if ci < 0 || int(ci) >= len(n.soa.credits) {
						return fmt.Errorf("noc: in-flight credit slot %d out of range", ci)
					}
					credRet[ci]++
				}
			}
		}
	}

	for ri := range n.routers {
		r := &n.routers[ri]
		for f := range r.vcState {
			pi, vi := int(r.portOf[f]), int(r.vcOf[f])
			dir := r.inPorts[pi].dir
			// Ring-bounds invariant: the fixed-capacity ring (soa.go)
			// makes occupancy > BufDepth unstorable, but the head/len
			// cursors are checked anyway so a corrupted cursor is
			// caught here rather than as a garbled flit downstream.
			if r.vcHead[f] < 0 || int(r.vcHead[f]) >= r.bufDepth {
				return fmt.Errorf("noc: router %d %v vc %d ring head %d out of [0,%d)",
					r.id, dir, vi, r.vcHead[f], r.bufDepth)
			}
			if r.vcOcc(f) < 0 || r.vcOcc(f) > n.cfg.BufDepth {
				return fmt.Errorf("noc: router %d %v vc %d holds %d flits (depth %d)",
					r.id, dir, vi, r.vcOcc(f), n.cfg.BufDepth)
			}
			if r.vcOcc(f) > 0 {
				if want := r.bufArrived[f*r.bufDepth+int(r.vcHead[f])]; r.vcFrontAt[f] != want {
					return fmt.Errorf("noc: router %d %v vc %d front-arrival cache %d, ring says %d",
						r.id, dir, vi, r.vcFrontAt[f], want)
				}
			}
			// Each ring-borne in-flight flit occupies a pre-written ring
			// slot (vcReserveGlobal) and has exactly one pending arrival
			// event; mailbox-borne flits carry their body and leave
			// vcInFly untouched.
			if got := inFlight[chanKey{r.id, dir, vi}]; int(r.vcInFly[f]) != got {
				return fmt.Errorf("noc: router %d %v vc %d records %d in-flight flits, rings hold %d arrival events",
					r.id, dir, vi, r.vcInFly[f], got)
			}
			if r.vcOcc(f)+int(r.vcInFly[f])+mailFlight[chanKey{r.id, dir, vi}] > n.cfg.BufDepth {
				return fmt.Errorf("noc: router %d %v vc %d occupancy %d + in-flight %d + mailbox %d exceeds depth %d",
					r.id, dir, vi, r.vcOcc(f), r.vcInFly[f], mailFlight[chanKey{r.id, dir, vi}], n.cfg.BufDepth)
			}
			switch r.vcState[f] {
			case vcRouting, vcWaitVC:
				if front := r.vcFrontFlit(f); front == nil || !front.Type.IsHead() {
					return fmt.Errorf("noc: router %d %v vc %d in %v without head flit",
						r.id, dir, vi, r.vcState[f])
				}
			case vcIdle:
				if r.vcOcc(f) != 0 {
					return fmt.Errorf("noc: router %d %v vc %d idle with %d buffered flits",
						r.id, dir, vi, r.vcOcc(f))
				}
			case vcActive:
				oi := r.outIndex[r.vcOutDir[f]]
				if oi < 0 {
					return fmt.Errorf("noc: router %d %v vc %d active toward missing port %v",
						r.id, dir, vi, r.vcOutDir[f])
				}
				if !r.outPorts[oi].reserved[r.vcOutVC[f]] {
					return fmt.Errorf("noc: router %d %v vc %d active but output %v vc %d unreserved",
						r.id, dir, vi, r.vcOutDir[f], r.vcOutVC[f])
				}
			}
		}
		// Credit conservation per outgoing channel.
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			if !op.hasLink {
				continue
			}
			down := &n.routers[op.link.Dst]
			dpi := down.inIndex[op.dir.Opposite()]
			if dpi < 0 {
				return fmt.Errorf("noc: link from %d via %v lands on missing port", r.id, op.dir)
			}
			for vi := 0; vi < n.cfg.VCs; vi++ {
				key := chanKey{op.link.Dst, op.dir.Opposite(), vi}
				ci := r.credBase + int32(oi*n.cfg.VCs+vi)
				occupied := down.vcOcc(down.flatVC(int(dpi), vi))
				total := int(op.credits[vi]) + occupied + inFlight[key] + mailFlight[key] + credRet[ci]
				if total != n.cfg.BufDepth {
					return fmt.Errorf("noc: channel %d-%v->%d vc %d: credits %d + occupied %d + inflight %d + mailbox %d + credret %d != depth %d",
						r.id, op.dir, op.link.Dst, vi, op.credits[vi], occupied, inFlight[key], mailFlight[key], credRet[ci], n.cfg.BufDepth)
				}
			}
		}
	}

	// Backlog counter conservation (property 5): recompute the scanned
	// truth the counters replaced and require exact agreement with the
	// merged per-shard values.
	var scanQueuedFlits, scanQueuedPkts int64
	for i := range n.nis {
		s := &n.nis[i]
		for _, j := range s.pending() {
			scanQueuedFlits += int64(j.pkt.Size)
		}
		scanQueuedPkts += int64(len(s.pending()))
		if s.injecting {
			scanQueuedFlits += int64(s.cur.pkt.Size - s.curSeq)
			scanQueuedPkts++
		}
	}
	if scanQueuedFlits != n.QueuedFlits() || scanQueuedPkts != n.QueuedPackets() {
		return fmt.Errorf("noc: queued counters drifted: flits %d (scan %d), packets %d (scan %d)",
			n.QueuedFlits(), scanQueuedFlits, n.QueuedPackets(), scanQueuedPkts)
	}
	var scanInFlight int64
	for ri := range n.routers {
		scanInFlight += int64(n.routers[ri].occupancy())
	}
	for _, c := range inFlight {
		scanInFlight += int64(c)
	}
	for _, c := range mailFlight {
		scanInFlight += int64(c)
	}
	scanInFlight += int64(ejecting)
	if scanInFlight != n.InFlightFlits() {
		return fmt.Errorf("noc: in-flight counter drifted: %d, scan %d", n.InFlightFlits(), scanInFlight)
	}

	return n.checkActivity()
}

// checkActivity validates property 6: every piece of incrementally
// maintained activity state matches a fresh full scan. The bitsets live
// on the shard owning each router, so membership is checked against
// r.sh and populations per shard.
func (n *Network) checkActivity() error {
	listFor := func(r *Router, s vcState) []int32 {
		switch s {
		case vcRouting:
			return r.listRC
		case vcWaitVC:
			return r.listVA
		default:
			return r.listSA
		}
	}
	for ri := range n.routers {
		r := &n.routers[ri]
		// Recount VCs per state and waiters per output port.
		var want [4]int
		waiters := make([]int32, len(r.outPorts))
		for fi := range r.vcState {
			f := int32(fi)
			pi, vi := int(r.portOf[fi]), int(r.vcOf[fi])
			s := r.vcState[fi]
			want[s]++
			if s == vcWaitVC {
				waiters[r.outIndex[r.vcOutDir[fi]]]++
			}
			if s == vcIdle {
				if r.listPos[f] != -1 {
					return fmt.Errorf("noc: router %d %v vc %d idle but listPos %d",
						r.id, r.inPorts[pi].dir, vi, r.listPos[f])
				}
				continue
			}
			list := listFor(r, s)
			p := r.listPos[f]
			if p < 0 || int(p) >= len(list) || list[p] != f {
				return fmt.Errorf("noc: router %d %v vc %d in %v but not at list position %d",
					r.id, r.inPorts[pi].dir, vi, s, p)
			}
		}
		for _, s := range []vcState{vcRouting, vcWaitVC, vcActive} {
			if list := listFor(r, s); len(list) != want[s] {
				return fmt.Errorf("noc: router %d %v list holds %d VCs, scan finds %d",
					r.id, s, len(list), want[s])
			}
		}
		for oi, w := range waiters {
			if r.waitersByOut[oi] != w {
				return fmt.Errorf("noc: router %d output %v waiter count %d, scan finds %d",
					r.id, r.outPorts[oi].dir, r.waitersByOut[oi], w)
			}
		}
		// Shard-level stage sets must mirror list emptiness, and a
		// router's bits may only live on its own shard's sets.
		id := int(r.id)
		for si := range n.shards {
			osh := &n.shards[si]
			if osh == r.sh {
				continue
			}
			if osh.actRC.has(id) || osh.actVA.has(id) || osh.actSA.has(id) || osh.actNI.has(id) {
				return fmt.Errorf("noc: router %d has activity bits on foreign shard %d", r.id, si)
			}
		}
		for _, c := range []struct {
			name string
			set  *routerSet
			list []int32
		}{
			{"RC", &r.sh.actRC, r.listRC},
			{"VA", &r.sh.actVA, r.listVA},
			{"SA", &r.sh.actSA, r.listSA},
		} {
			if c.set.has(id) != (len(c.list) > 0) {
				return fmt.Errorf("noc: router %d %s activity bit %v but %d pending VCs",
					r.id, c.name, c.set.has(id), len(c.list))
			}
		}
	}
	// Active-NI sets: exactly the NIs with queued or in-flight packets,
	// each on its own shard's set.
	nActive := make([]int, len(n.shards))
	for i := range n.nis {
		s := &n.nis[i]
		sh := n.routers[i].sh
		work := len(s.pending()) > 0 || s.injecting
		if work {
			nActive[sh.idx]++
		}
		if sh.actNI.has(i) != work {
			return fmt.Errorf("noc: NI %d activity bit %v with %d queued, injecting %v",
				i, sh.actNI.has(i), len(s.pending()), s.injecting)
		}
	}
	for si := range n.shards {
		sh := &n.shards[si]
		for _, c := range []struct {
			name string
			set  *routerSet
		}{{"RC", &sh.actRC}, {"VA", &sh.actVA}, {"SA", &sh.actSA}, {"NI", &sh.actNI}} {
			count := 0
			for _, w := range c.set.words {
				count += bits.OnesCount64(w)
			}
			if count != c.set.n {
				return fmt.Errorf("noc: shard %d %s set population %d, bits say %d", si, c.name, c.set.n, count)
			}
		}
		if sh.actNI.n != nActive[si] {
			return fmt.Errorf("noc: shard %d NI set population %d, scan finds %d", si, sh.actNI.n, nActive[si])
		}
	}
	return nil
}
