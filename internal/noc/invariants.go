package noc

import (
	"fmt"

	"mira/internal/topology"
)

// CheckInvariants validates cross-router consistency of the flow-control
// state. It is O(routers x ports x VCs) and intended for tests and
// debugging, not the hot loop. The checked properties are the ones
// credit-based wormhole switching relies on:
//
//  1. No input VC buffer exceeds its configured depth.
//  2. For every link, the upstream credit count plus the downstream
//     buffer occupancy plus flits in flight on the link never exceeds
//     the buffer depth (credits can transiently undercount while a
//     credit is in flight, but can never overcount).
//  3. A VC in the Routing/WaitVC state has a head flit at its front;
//     a VC holding buffered flits is never Idle.
//  4. Output VC reservations are consistent: an Active input VC's
//     (outDir, outVC) target is actually reserved.
//  5. The incrementally maintained backlog counters (queued flits,
//     queued packets, in-flight flits) agree with a full rescan of the
//     NI queues, router buffers and event ring — the debug cross-check
//     for the O(1) backlog the simulator's drain loop relies on.
func (n *Network) CheckInvariants() error {
	type chanKey struct {
		router topology.NodeID
		dir    topology.Dir
		vc     int
	}
	// Flits and credits currently in flight, per downstream channel.
	inFlight := make(map[chanKey]int)
	credRet := make(map[chanKey]int)
	ejecting := 0
	for _, slot := range n.ring {
		for _, ev := range slot {
			switch ev.kind {
			case evFlit:
				inFlight[chanKey{ev.router, ev.dir, ev.vc}]++
			case evEject:
				ejecting++
			case evCredit:
				// ev.router is the upstream router; translate to the
				// downstream channel it describes.
				up := n.routers[ev.router]
				oi := up.outIndex[ev.dir]
				if oi < 0 {
					return fmt.Errorf("noc: in-flight credit for missing port %v at router %d", ev.dir, ev.router)
				}
				link := up.outPorts[oi].link
				credRet[chanKey{link.Dst, ev.dir.Opposite(), ev.vc}]++
			}
		}
	}

	for _, r := range n.routers {
		for pi := range r.inPorts {
			ip := &r.inPorts[pi]
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				if len(vc.buf) > n.cfg.BufDepth {
					return fmt.Errorf("noc: router %d %v vc %d holds %d flits (depth %d)",
						r.id, ip.dir, vi, len(vc.buf), n.cfg.BufDepth)
				}
				switch vc.state {
				case vcRouting, vcWaitVC:
					if f := vc.front(); f == nil || !f.flit.Type.IsHead() {
						return fmt.Errorf("noc: router %d %v vc %d in %v without head flit",
							r.id, ip.dir, vi, vc.state)
					}
				case vcIdle:
					if len(vc.buf) != 0 {
						return fmt.Errorf("noc: router %d %v vc %d idle with %d buffered flits",
							r.id, ip.dir, vi, len(vc.buf))
					}
				case vcActive:
					oi := r.outIndex[vc.outDir]
					if oi < 0 {
						return fmt.Errorf("noc: router %d %v vc %d active toward missing port %v",
							r.id, ip.dir, vi, vc.outDir)
					}
					if !r.outPorts[oi].reserved[vc.outVC] {
						return fmt.Errorf("noc: router %d %v vc %d active but output %v vc %d unreserved",
							r.id, ip.dir, vi, vc.outDir, vc.outVC)
					}
				}
			}
		}
		// Credit conservation per outgoing channel.
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			if !op.hasLink {
				continue
			}
			down := n.routers[op.link.Dst]
			dpi := down.inIndex[op.dir.Opposite()]
			if dpi < 0 {
				return fmt.Errorf("noc: link from %d via %v lands on missing port", r.id, op.dir)
			}
			for vi := 0; vi < n.cfg.VCs; vi++ {
				key := chanKey{op.link.Dst, op.dir.Opposite(), vi}
				occupied := len(down.inPorts[dpi].vcs[vi].buf)
				total := op.credits[vi] + occupied + inFlight[key] + credRet[key]
				if total != n.cfg.BufDepth {
					return fmt.Errorf("noc: channel %d-%v->%d vc %d: credits %d + occupied %d + inflight %d + credret %d != depth %d",
						r.id, op.dir, op.link.Dst, vi, op.credits[vi], occupied, inFlight[key], credRet[key], n.cfg.BufDepth)
				}
			}
		}
	}

	// Backlog counter conservation (property 5): recompute the scanned
	// truth the counters replaced and require exact agreement.
	var scanQueuedFlits, scanQueuedPkts int64
	for i := range n.nis {
		s := &n.nis[i]
		for _, j := range s.queue {
			scanQueuedFlits += int64(j.pkt.Size)
		}
		scanQueuedPkts += int64(len(s.queue))
		if s.injecting {
			scanQueuedFlits += int64(s.cur.pkt.Size - s.curSeq)
			scanQueuedPkts++
		}
	}
	if scanQueuedFlits != n.queuedFlits || scanQueuedPkts != n.queuedPackets {
		return fmt.Errorf("noc: queued counters drifted: flits %d (scan %d), packets %d (scan %d)",
			n.queuedFlits, scanQueuedFlits, n.queuedPackets, scanQueuedPkts)
	}
	var scanInFlight int64
	for _, r := range n.routers {
		scanInFlight += int64(r.occupancy())
	}
	for _, c := range inFlight {
		scanInFlight += int64(c)
	}
	scanInFlight += int64(ejecting)
	if scanInFlight != n.inFlightFlits {
		return fmt.Errorf("noc: in-flight counter drifted: %d, scan %d", n.inFlightFlits, scanInFlight)
	}
	return nil
}
