package noc

import (
	"fmt"
	"math/bits"

	"mira/internal/topology"
)

// CheckInvariants validates cross-router consistency of the flow-control
// state. It is O(routers x ports x VCs) and intended for tests and
// debugging, not the hot loop. The checked properties are the ones
// credit-based wormhole switching relies on:
//
//  1. No input VC buffer exceeds its configured depth.
//  2. For every link, the upstream credit count plus the downstream
//     buffer occupancy plus flits in flight on the link never exceeds
//     the buffer depth (credits can transiently undercount while a
//     credit is in flight, but can never overcount).
//  3. A VC in the Routing/WaitVC state has a head flit at its front;
//     a VC holding buffered flits is never Idle.
//  4. Output VC reservations are consistent: an Active input VC's
//     (outDir, outVC) target is actually reserved.
//  5. The incrementally maintained backlog counters (queued flits,
//     queued packets, in-flight flits) agree with a full rescan of the
//     NI queues, router buffers and event ring — the debug cross-check
//     for the O(1) backlog the simulator's drain loop relies on.
//  6. The activity-tracking state the cycle loop skips idle work by
//     (per-router pending lists, list position index, per-output waiter
//     counts, and the network-level active-router and active-NI sets)
//     agrees with a fresh full scan of the VC states and NI queues.
func (n *Network) CheckInvariants() error {
	type chanKey struct {
		router topology.NodeID
		dir    topology.Dir
		vc     int
	}
	// Flits and credits currently in flight, per downstream channel.
	inFlight := make(map[chanKey]int)
	credRet := make(map[chanKey]int)
	ejecting := 0
	for _, slot := range n.ring {
		for _, ev := range slot {
			switch ev.kind {
			case evFlit:
				inFlight[chanKey{ev.router, ev.dir, ev.vc}]++
			case evEject:
				ejecting++
			case evCredit:
				// ev.router is the upstream router; translate to the
				// downstream channel it describes.
				up := n.routers[ev.router]
				oi := up.outIndex[ev.dir]
				if oi < 0 {
					return fmt.Errorf("noc: in-flight credit for missing port %v at router %d", ev.dir, ev.router)
				}
				link := up.outPorts[oi].link
				credRet[chanKey{link.Dst, ev.dir.Opposite(), ev.vc}]++
			}
		}
	}

	for _, r := range n.routers {
		for pi := range r.inPorts {
			ip := &r.inPorts[pi]
			for vi := range ip.vcs {
				vc := &ip.vcs[vi]
				if vc.occ() > n.cfg.BufDepth {
					return fmt.Errorf("noc: router %d %v vc %d holds %d flits (depth %d)",
						r.id, ip.dir, vi, vc.occ(), n.cfg.BufDepth)
				}
				switch vc.state {
				case vcRouting, vcWaitVC:
					if f := vc.front(); f == nil || !f.flit.Type.IsHead() {
						return fmt.Errorf("noc: router %d %v vc %d in %v without head flit",
							r.id, ip.dir, vi, vc.state)
					}
				case vcIdle:
					if vc.occ() != 0 {
						return fmt.Errorf("noc: router %d %v vc %d idle with %d buffered flits",
							r.id, ip.dir, vi, vc.occ())
					}
				case vcActive:
					oi := r.outIndex[vc.outDir]
					if oi < 0 {
						return fmt.Errorf("noc: router %d %v vc %d active toward missing port %v",
							r.id, ip.dir, vi, vc.outDir)
					}
					if !r.outPorts[oi].reserved[vc.outVC] {
						return fmt.Errorf("noc: router %d %v vc %d active but output %v vc %d unreserved",
							r.id, ip.dir, vi, vc.outDir, vc.outVC)
					}
				}
			}
		}
		// Credit conservation per outgoing channel.
		for oi := range r.outPorts {
			op := &r.outPorts[oi]
			if !op.hasLink {
				continue
			}
			down := n.routers[op.link.Dst]
			dpi := down.inIndex[op.dir.Opposite()]
			if dpi < 0 {
				return fmt.Errorf("noc: link from %d via %v lands on missing port", r.id, op.dir)
			}
			for vi := 0; vi < n.cfg.VCs; vi++ {
				key := chanKey{op.link.Dst, op.dir.Opposite(), vi}
				occupied := down.inPorts[dpi].vcs[vi].occ()
				total := op.credits[vi] + occupied + inFlight[key] + credRet[key]
				if total != n.cfg.BufDepth {
					return fmt.Errorf("noc: channel %d-%v->%d vc %d: credits %d + occupied %d + inflight %d + credret %d != depth %d",
						r.id, op.dir, op.link.Dst, vi, op.credits[vi], occupied, inFlight[key], credRet[key], n.cfg.BufDepth)
				}
			}
		}
	}

	// Backlog counter conservation (property 5): recompute the scanned
	// truth the counters replaced and require exact agreement.
	var scanQueuedFlits, scanQueuedPkts int64
	for i := range n.nis {
		s := &n.nis[i]
		for _, j := range s.queue {
			scanQueuedFlits += int64(j.pkt.Size)
		}
		scanQueuedPkts += int64(len(s.queue))
		if s.injecting {
			scanQueuedFlits += int64(s.cur.pkt.Size - s.curSeq)
			scanQueuedPkts++
		}
	}
	if scanQueuedFlits != n.queuedFlits || scanQueuedPkts != n.queuedPackets {
		return fmt.Errorf("noc: queued counters drifted: flits %d (scan %d), packets %d (scan %d)",
			n.queuedFlits, scanQueuedFlits, n.queuedPackets, scanQueuedPkts)
	}
	var scanInFlight int64
	for _, r := range n.routers {
		scanInFlight += int64(r.occupancy())
	}
	for _, c := range inFlight {
		scanInFlight += int64(c)
	}
	scanInFlight += int64(ejecting)
	if scanInFlight != n.inFlightFlits {
		return fmt.Errorf("noc: in-flight counter drifted: %d, scan %d", n.inFlightFlits, scanInFlight)
	}

	return n.checkActivity()
}

// checkActivity validates property 6: every piece of incrementally
// maintained activity state matches a fresh full scan.
func (n *Network) checkActivity() error {
	listFor := func(r *Router, s vcState) []int32 {
		switch s {
		case vcRouting:
			return r.listRC
		case vcWaitVC:
			return r.listVA
		default:
			return r.listSA
		}
	}
	for _, r := range n.routers {
		// Recount VCs per state and waiters per output port.
		var want [4]int
		waiters := make([]int32, len(r.outPorts))
		for pi := range r.inPorts {
			for vi := range r.inPorts[pi].vcs {
				vc := &r.inPorts[pi].vcs[vi]
				f := int32(r.flatVC(pi, vi))
				want[vc.state]++
				if vc.state == vcWaitVC {
					waiters[r.outIndex[vc.outDir]]++
				}
				if vc.state == vcIdle {
					if r.listPos[f] != -1 {
						return fmt.Errorf("noc: router %d %v vc %d idle but listPos %d",
							r.id, r.inPorts[pi].dir, vi, r.listPos[f])
					}
					continue
				}
				list := listFor(r, vc.state)
				p := r.listPos[f]
				if p < 0 || int(p) >= len(list) || list[p] != f {
					return fmt.Errorf("noc: router %d %v vc %d in %v but not at list position %d",
						r.id, r.inPorts[pi].dir, vi, vc.state, p)
				}
			}
		}
		for _, s := range []vcState{vcRouting, vcWaitVC, vcActive} {
			if list := listFor(r, s); len(list) != want[s] {
				return fmt.Errorf("noc: router %d %v list holds %d VCs, scan finds %d",
					r.id, s, len(list), want[s])
			}
		}
		for oi, w := range waiters {
			if r.waitersByOut[oi] != w {
				return fmt.Errorf("noc: router %d output %v waiter count %d, scan finds %d",
					r.id, r.outPorts[oi].dir, r.waitersByOut[oi], w)
			}
		}
		// Network-level stage sets must mirror list emptiness.
		id := int(r.id)
		for _, c := range []struct {
			name string
			set  *routerSet
			list []int32
		}{
			{"RC", &n.actRC, r.listRC},
			{"VA", &n.actVA, r.listVA},
			{"SA", &n.actSA, r.listSA},
		} {
			if c.set.has(id) != (len(c.list) > 0) {
				return fmt.Errorf("noc: router %d %s activity bit %v but %d pending VCs",
					r.id, c.name, c.set.has(id), len(c.list))
			}
		}
	}
	// Active-NI set: exactly the NIs with queued or in-flight packets.
	nActive := 0
	for i := range n.nis {
		s := &n.nis[i]
		work := len(s.queue) > 0 || s.injecting
		if work {
			nActive++
		}
		if n.actNI.has(i) != work {
			return fmt.Errorf("noc: NI %d activity bit %v with %d queued, injecting %v",
				i, n.actNI.has(i), len(s.queue), s.injecting)
		}
	}
	for _, c := range []struct {
		name string
		set  *routerSet
	}{{"RC", &n.actRC}, {"VA", &n.actVA}, {"SA", &n.actSA}, {"NI", &n.actNI}} {
		count := 0
		for _, w := range c.set.words {
			count += bits.OnesCount64(w)
		}
		if count != c.set.n {
			return fmt.Errorf("noc: %s set population %d, bits say %d", c.name, c.set.n, count)
		}
	}
	if n.actNI.n != nActive {
		return fmt.Errorf("noc: NI set population %d, scan finds %d", n.actNI.n, nActive)
	}
	return nil
}
