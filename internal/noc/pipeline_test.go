package noc

import (
	"context"
	"testing"

	"mira/internal/topology"
)

// The Figure 8 pipeline family. Zero-load head latency per hop (from
// buffer write to the next router's buffer write) is:
//
//	(a) 4-stage + LT:          RC, VA, SA, ST | LT      -> 3 + STLT
//	(b) speculative SA:        RC, VA+SA, ST | LT       -> 2 + STLT
//	(c) look-ahead + spec:     VA+SA, ST | LT           -> 1 + STLT
//	(d) 3DM (combined ST+LT):  same stages, STLT = 1
//
// End-to-end 1-flit latency over H hops: 1 (injection) + perHop*(H+1).
func pipelineLatency(t *testing.T, look, spec bool, stlt int, hops int) int64 {
	t.Helper()
	cfg := cfg2D(stlt)
	cfg.LookaheadRC = look
	cfg.SpecSA = spec
	dst := topology.NodeID(hops) // straight east along row 0
	pkt := onePacket(t, cfg, Spec{Src: 0, Dst: dst, Size: 1, Class: Control})
	return pkt.EjectedAt - pkt.CreatedAt
}

func TestPipelineFig8aBaseline(t *testing.T) {
	if got := pipelineLatency(t, false, false, 2, 3); got != 1+5*4 {
		t.Errorf("4-stage latency = %d, want 21", got)
	}
}

func TestPipelineFig8bSpeculative(t *testing.T) {
	if got := pipelineLatency(t, false, true, 2, 3); got != 1+4*4 {
		t.Errorf("speculative latency = %d, want 17", got)
	}
}

func TestPipelineFig8cLookaheadSpec(t *testing.T) {
	if got := pipelineLatency(t, true, true, 2, 3); got != 1+3*4 {
		t.Errorf("2-stage latency = %d, want 13", got)
	}
}

func TestPipelineLookaheadOnly(t *testing.T) {
	// Look-ahead without speculation removes only the RC cycle.
	if got := pipelineLatency(t, true, false, 2, 3); got != 1+4*4 {
		t.Errorf("look-ahead latency = %d, want 17", got)
	}
}

func TestPipelineFig8dCombined(t *testing.T) {
	// The 3DM trick orthogonally removes the LT cycle.
	if got := pipelineLatency(t, false, false, 1, 3); got != 1+4*4 {
		t.Errorf("ST+LT-combined latency = %d, want 17", got)
	}
	// All techniques together: the aggressive 2-stage single-cycle-hop
	// router (alloc, ST+LT).
	if got := pipelineLatency(t, true, true, 1, 3); got != 1+2*4 {
		t.Errorf("fully combined latency = %d, want 9", got)
	}
}

func TestPipelineOrderingUnderLoad(t *testing.T) {
	run := func(look, spec bool) Result {
		cfg := cfg2D(2)
		cfg.LookaheadRC = look
		cfg.SpecSA = spec
		return shortSim(cfg, bernoulli(cfg.Topo, 0.15, 4, Data))
	}
	base := run(false, false)
	spec := run(false, true)
	both := run(true, true)
	if base.Ejected != base.Generated || spec.Ejected != spec.Generated || both.Ejected != both.Generated {
		t.Fatalf("loss under load: base %v spec %v both %v", base, spec, both)
	}
	if !(both.AvgLatency < spec.AvgLatency && spec.AvgLatency < base.AvgLatency) {
		t.Errorf("pipeline ordering violated: base %.2f spec %.2f both %.2f",
			base.AvgLatency, spec.AvgLatency, both.AvgLatency)
	}
}

func TestSpeculationInvariantsUnderContention(t *testing.T) {
	cfg := cfgExpress(1)
	cfg.LookaheadRC = true
	cfg.SpecSA = true
	net := NewNetwork(cfg)
	s := NewSim(net, bernoulli(cfg.Topo, 0.5, 4, Data))
	s.Params = SimParams{Warmup: 0, Measure: 1500, DrainMax: 8000}
	res := s.Run(context.Background())
	if res.Ejected != res.Generated {
		t.Fatalf("speculative pipeline lost packets: %v", res.String())
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeculationDoesNotStealFromWinners(t *testing.T) {
	// With speculation on, throughput at saturation must not drop below
	// the non-speculative pipeline (speculation only uses leftover
	// switch slots).
	cfgBase := cfg2D(2)
	base := shortSim(cfgBase, bernoulli(cfgBase.Topo, 0.6, 4, Data))
	cfgSpec := cfg2D(2)
	cfgSpec.SpecSA = true
	spec := shortSim(cfgSpec, bernoulli(cfgSpec.Topo, 0.6, 4, Data))
	if spec.ThroughputFPC < 0.93*base.ThroughputFPC {
		t.Errorf("speculation hurt saturation throughput: %.4f vs %.4f",
			spec.ThroughputFPC, base.ThroughputFPC)
	}
}
