package thermal_test

import (
	"fmt"

	"mira/internal/thermal"
)

func ExampleGrid_Solve() {
	// A 2x2x2 stack with one hot block in the bottom layer (far from
	// the heat sink).
	g := thermal.NewGrid(2, 2, 2, 3.1)
	p := make([]float64, g.NumBlocks())
	p[g.Index(0, 0, 0)] = 2.0 // watts
	t := g.Solve(p)
	hot := t[g.Index(0, 0, 0)]
	above := t[g.Index(0, 0, 1)]
	fmt.Printf("hot block rises more than the block above it: %v\n", hot > above)
	fmt.Printf("everything is warmer than ambient: %v\n", thermal.Max(t) > 0 && t[g.Index(1, 1, 1)] > 0)
	// Output:
	// hot block rises more than the block above it: true
	// everything is warmer than ambient: true
}
