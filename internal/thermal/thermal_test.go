package thermal

import (
	"math"
	"testing"
)

func TestZeroPower(t *testing.T) {
	g := NewGrid(3, 3, 2, 1.58)
	temps := g.Solve(make([]float64, g.NumBlocks()))
	for i, v := range temps {
		if v != 0 {
			t.Fatalf("block %d = %v K with zero power", i, v)
		}
	}
}

func TestAllTemperaturesPositive(t *testing.T) {
	g := NewGrid(6, 6, 4, 1.58)
	p := make([]float64, g.NumBlocks())
	for i := range p {
		p[i] = 0.1
	}
	for i, v := range g.Solve(p) {
		if v <= 0 {
			t.Fatalf("block %d = %v K, want positive rise", i, v)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	// In steady state all injected power leaves through the sink:
	// sum(T_top / rSink) == sum(P).
	g := NewGrid(4, 4, 3, 2.0)
	p := make([]float64, g.NumBlocks())
	var total float64
	for i := range p {
		p[i] = 0.05 * float64(i%7)
		total += p[i]
	}
	temps := g.Solve(p)
	var out float64
	top := g.Layers - 1
	for y := 0; y < g.Y; y++ {
		for x := 0; x < g.X; x++ {
			out += temps[g.Index(x, y, top)] / g.rSink
		}
	}
	if math.Abs(out-total) > 0.01*total {
		t.Errorf("sink heat flow %.4f W != injected %.4f W", out, total)
	}
}

func TestLinearity(t *testing.T) {
	// The network is linear: T(a+b) = T(a) + T(b).
	g := NewGrid(3, 3, 4, 1.58)
	a := make([]float64, g.NumBlocks())
	b := make([]float64, g.NumBlocks())
	ab := make([]float64, g.NumBlocks())
	for i := range a {
		a[i] = float64(i%3) * 0.1
		b[i] = float64(i%5) * 0.05
		ab[i] = a[i] + b[i]
	}
	ta, tb, tab := g.Solve(a), g.Solve(b), g.Solve(ab)
	for i := range ta {
		if math.Abs(ta[i]+tb[i]-tab[i]) > 1e-3 {
			t.Fatalf("superposition violated at %d: %v + %v != %v", i, ta[i], tb[i], tab[i])
		}
	}
}

func TestMonotonicInPower(t *testing.T) {
	g := NewGrid(6, 6, 4, 1.58)
	lo := make([]float64, g.NumBlocks())
	hi := make([]float64, g.NumBlocks())
	for i := range lo {
		lo[i] = 0.05
		hi[i] = 0.08
	}
	tl, th := g.Solve(lo), g.Solve(hi)
	if Average(th) <= Average(tl) {
		t.Errorf("more power should be hotter: %v vs %v", Average(th), Average(tl))
	}
	if Max(th) <= Max(tl) {
		t.Errorf("max should grow with power")
	}
}

func TestHeatSinkGradient(t *testing.T) {
	// With uniform power, layers farther from the sink run hotter: this
	// is why MIRA pins CPUs and hot router logic to the top layer.
	g := NewGrid(3, 3, 4, 3.1)
	p := make([]float64, g.NumBlocks())
	for i := range p {
		p[i] = 0.5
	}
	temps := g.Solve(p)
	for z := 1; z < g.Layers; z++ {
		lower := temps[g.Index(1, 1, z-1)]
		upper := temps[g.Index(1, 1, z)]
		if upper >= lower {
			t.Errorf("layer %d (%.3f K) should be cooler than layer %d (%.3f K)", z, upper, z-1, lower)
		}
	}
}

func TestHotspotSpreads(t *testing.T) {
	// A single hot block heats its neighbours less than itself.
	g := NewGrid(5, 5, 1, 3.1)
	p := make([]float64, g.NumBlocks())
	p[g.Index(2, 2, 0)] = 2
	temps := g.Solve(p)
	centre := temps[g.Index(2, 2, 0)]
	edge := temps[g.Index(0, 0, 0)]
	if centre <= edge {
		t.Errorf("hotspot %.3f K should exceed corner %.3f K", centre, edge)
	}
	if edge <= 0 {
		t.Errorf("heat should spread to the corner")
	}
}

func TestRealisticCMPDeltas(t *testing.T) {
	// 8 CPUs at 8 W + caches at 0.1 W (paper's §4.2.3 numbers) spread
	// over a 4-layer 3DM stack: reducing router power by a few hundred
	// mW should move average temperature by order 0.1-2 K, matching the
	// magnitude of Figure 13 (c).
	g := NewGrid(6, 6, 4, 1.58)
	base := make([]float64, g.NumBlocks())
	perLayerCPU := 8.0 / 4
	perLayerCache := 0.1 / 4
	for z := 0; z < 4; z++ {
		for y := 0; y < 6; y++ {
			for x := 0; x < 6; x++ {
				if (y == 2 || y == 3) && x >= 1 && x <= 4 {
					base[g.Index(x, y, z)] = perLayerCPU
				} else {
					base[g.Index(x, y, z)] = perLayerCache
				}
			}
		}
	}
	saved := make([]float64, len(base))
	copy(saved, base)
	// Router power drops by 10 mW per node per layer with shutdown.
	for i := range saved {
		saved[i] -= 0.01
	}
	d := Average(g.Solve(base)) - Average(g.Solve(saved))
	if d <= 0.05 || d > 5 {
		t.Errorf("average temperature delta = %.3f K, want order 0.1-2 K", d)
	}
}

func TestSolvePanicsOnBadLength(t *testing.T) {
	g := NewGrid(2, 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("bad power vector length should panic")
		}
	}()
	g.Solve(make([]float64, 3))
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid dims should panic")
		}
	}()
	NewGrid(0, 1, 1, 1)
}

func TestAverageMaxHelpers(t *testing.T) {
	if Average(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty helpers should be 0")
	}
	v := []float64{1, 3, 2}
	if Average(v) != 2 || Max(v) != 3 {
		t.Errorf("Average/Max wrong: %v %v", Average(v), Max(v))
	}
}
