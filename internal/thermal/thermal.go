// Package thermal is a steady-state compact thermal model in the style
// of HotSpot (Skadron et al., ISCA 2003), which the paper uses for its
// temperature analysis (§4.2.3). The chip is a 3D grid of silicon
// blocks; each block receives a power input and exchanges heat laterally
// with in-layer neighbours, vertically with the layers above and below,
// and — from the layer adjacent to the heat sink — with the ambient
// through the sink's convection resistance. The resulting linear
// resistance network is solved by Gauss–Seidel iteration.
package thermal

import (
	"fmt"
	"math"
)

// Physical constants of the package model (90 nm-era stack).
const (
	// SiliconWPerMK is bulk silicon thermal conductivity.
	SiliconWPerMK = 150.0
	// LayerThicknessMM is a thinned, stacked die (~100 um).
	LayerThicknessMM = 0.1
	// SinkRKM2PerW is the heat-sink + spreader resistance per unit
	// area (K*m^2/W): a 0.4 K/W sink under a ~350 mm^2 die.
	SinkRKM2PerW = 1.4e-4
	// AmbientK is the reference ambient (45 C, a loaded-case assumption
	// typical of HotSpot studies).
	AmbientK = 318.15
)

// Grid is a chip thermal model. Layer index Layers-1 is adjacent to the
// heat sink (the "top" layer where MIRA places CPUs and hot router
// logic); layer 0 is the furthest from the sink.
type Grid struct {
	X, Y, Layers int
	// BlockEdgeMM is the (square) block footprint edge.
	BlockEdgeMM float64

	rLat  float64 // block-to-block lateral resistance (K/W)
	rVert float64 // layer-to-layer vertical resistance (K/W)
	rSink float64 // top-block-to-ambient resistance (K/W)
}

// NewGrid builds a thermal grid for an x*y*layers block floorplan.
func NewGrid(x, y, layers int, blockEdgeMM float64) *Grid {
	if x < 1 || y < 1 || layers < 1 || blockEdgeMM <= 0 {
		panic(fmt.Sprintf("thermal: invalid grid %dx%dx%d edge %v", x, y, layers, blockEdgeMM))
	}
	edgeM := blockEdgeMM * 1e-3
	thickM := LayerThicknessMM * 1e-3
	areaM2 := edgeM * edgeM
	g := &Grid{X: x, Y: y, Layers: layers, BlockEdgeMM: blockEdgeMM}
	// Lateral conduction: length edge, cross-section edge*thickness.
	g.rLat = edgeM / (SiliconWPerMK * edgeM * thickM)
	// Vertical conduction through the die.
	g.rVert = thickM / (SiliconWPerMK * areaM2)
	// Sink convection per block.
	g.rSink = SinkRKM2PerW / areaM2
	return g
}

// NumBlocks returns the block count; power and temperature vectors use
// index z*X*Y + y*X + x.
func (g *Grid) NumBlocks() int { return g.X * g.Y * g.Layers }

// Index returns the vector index of block (x, y, z).
func (g *Grid) Index(x, y, z int) int { return z*g.X*g.Y + y*g.X + x }

// Solve returns the steady-state temperature rise above ambient (K) for
// the given per-block power map (W). It panics if the power vector has
// the wrong length.
func (g *Grid) Solve(powerW []float64) []float64 {
	if len(powerW) != g.NumBlocks() {
		panic(fmt.Sprintf("thermal: power vector %d, want %d", len(powerW), g.NumBlocks()))
	}
	t := make([]float64, g.NumBlocks())
	const (
		maxIter = 200000
		epsK    = 1e-7
	)
	gLat, gVert, gSink := 1/g.rLat, 1/g.rVert, 1/g.rSink
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for z := 0; z < g.Layers; z++ {
			for y := 0; y < g.Y; y++ {
				for x := 0; x < g.X; x++ {
					i := g.Index(x, y, z)
					num := powerW[i]
					den := 0.0
					if x > 0 {
						num += t[g.Index(x-1, y, z)] * gLat
						den += gLat
					}
					if x+1 < g.X {
						num += t[g.Index(x+1, y, z)] * gLat
						den += gLat
					}
					if y > 0 {
						num += t[g.Index(x, y-1, z)] * gLat
						den += gLat
					}
					if y+1 < g.Y {
						num += t[g.Index(x, y+1, z)] * gLat
						den += gLat
					}
					if z > 0 {
						num += t[g.Index(x, y, z-1)] * gVert
						den += gVert
					}
					if z+1 < g.Layers {
						num += t[g.Index(x, y, z+1)] * gVert
						den += gVert
					}
					if z == g.Layers-1 {
						// Ambient is the zero reference.
						den += gSink
					}
					next := num / den
					if d := math.Abs(next - t[i]); d > maxDelta {
						maxDelta = d
					}
					t[i] = next
				}
			}
		}
		if maxDelta < epsK {
			break
		}
	}
	return t
}

// Average returns the mean of a temperature vector.
func Average(t []float64) float64 {
	if len(t) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range t {
		sum += v
	}
	return sum / float64(len(t))
}

// Max returns the hottest block's temperature rise.
func Max(t []float64) float64 {
	m := 0.0
	for _, v := range t {
		if v > m {
			m = v
		}
	}
	return m
}
