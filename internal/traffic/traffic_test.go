package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mira/internal/noc"
	"mira/internal/topology"
)

func TestPatternProfileValidate(t *testing.T) {
	good := PatternProfile{Zero: 0.4, One: 0.1, Freq: 0.2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []PatternProfile{
		{Zero: -0.1},
		{Zero: 0.6, One: 0.6},
		{Freq: 1.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %+v should be invalid", p)
		}
	}
}

func TestSampleWordDistribution(t *testing.T) {
	p := PatternProfile{Zero: 0.5, One: 0.2, Freq: 0.1}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, NumPatterns)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[p.SampleWord(rng)]++
	}
	check := func(pat WordPattern, want float64) {
		got := float64(counts[pat]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v frequency = %.3f, want %.3f", pat, got, want)
		}
	}
	check(PatternZero, 0.5)
	check(PatternOne, 0.2)
	check(PatternFreq, 0.1)
	check(PatternOther, 0.2)
}

func TestShortFlitFraction(t *testing.T) {
	p := PatternProfile{Zero: 0.4, One: 0.1} // 50% redundant words
	got := p.ShortFlitFraction(4)
	if math.Abs(got-0.125) > 1e-12 { // 0.5^3
		t.Errorf("short fraction = %v, want 0.125", got)
	}
	if f := p.ShortFlitFraction(1); f != 1 {
		t.Errorf("1-layer short fraction = %v, want 1", f)
	}
}

func TestSampleFlitLayersDistribution(t *testing.T) {
	p := PatternProfile{Zero: 0.5, One: 0.0}
	rng := rand.New(rand.NewSource(2))
	const n = 100000
	counts := make(map[uint8]int)
	for i := 0; i < n; i++ {
		counts[p.SampleFlitLayers(rng, 4)]++
	}
	// P(layers=4) = P(word3 not redundant) = 0.5
	// P(layers=3) = 0.5 * 0.5; P(2) = 0.125; P(1) = 0.125.
	wants := map[uint8]float64{4: 0.5, 3: 0.25, 2: 0.125, 1: 0.125}
	for l, want := range wants {
		got := float64(counts[l]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P(layers=%d) = %.3f, want %.3f", l, got, want)
		}
	}
}

// Property: sampled layers are always within [1, layers].
func TestSampleFlitLayersBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(z, o uint8, layers uint8) bool {
		L := int(layers%6) + 1
		p := PatternProfile{Zero: float64(z%100) / 200, One: float64(o%100) / 200}
		got := p.SampleFlitLayers(rng, L)
		return got >= 1 && int(got) <= L
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShortFlitProfileSample(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := ShortFlitProfile{Frac: 0.5, Layers: 4}
	short, total := 0, 0
	for i := 0; i < 10000; i++ {
		ls := s.SampleLayers(rng, 4)
		for _, l := range ls {
			total++
			if l == 1 {
				short++
			} else if l != 4 {
				t.Fatalf("layer count %d, want 1 or 4", l)
			}
		}
	}
	got := float64(short) / float64(total)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("short fraction = %v, want 0.5", got)
	}
	if (ShortFlitProfile{}).SampleLayers(rng, 4) != nil {
		t.Errorf("zero profile should return nil (all layers)")
	}
}

func TestUniformRate(t *testing.T) {
	topo := topology.NewMesh2D(6, 6, 3.1)
	u := &Uniform{Topo: topo, InjectionRate: 0.2, PacketSize: 4}
	rng := rand.New(rand.NewSource(5))
	var flits int64
	const cycles = 20000
	for c := int64(0); c < cycles; c++ {
		for _, s := range u.Generate(c, rng, nil) {
			if s.Src == s.Dst {
				t.Fatal("self-addressed packet")
			}
			flits += int64(s.Size)
		}
	}
	got := float64(flits) / cycles / 36
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("offered load = %v, want 0.2", got)
	}
}

func TestUniformDestinationSpread(t *testing.T) {
	topo := topology.NewMesh2D(6, 6, 3.1)
	u := &Uniform{Topo: topo, InjectionRate: 0.5, PacketSize: 1}
	rng := rand.New(rand.NewSource(6))
	counts := make(map[topology.NodeID]int)
	for c := int64(0); c < 30000; c++ {
		for _, s := range u.Generate(c, rng, nil) {
			counts[s.Dst]++
		}
	}
	if len(counts) != 36 {
		t.Errorf("only %d destinations used, want 36", len(counts))
	}
}

func TestNUCARequestsComeFromCPUs(t *testing.T) {
	topo := topology.NewMesh2D(6, 6, 3.1)
	if err := topology.ApplyNUCALayout2D(topo); err != nil {
		t.Fatal(err)
	}
	g := &NUCA{Topo: topo, InjectionRate: 0.2, RequestSize: 1, ResponseSize: 4, BankDelay: 20}
	rng := rand.New(rand.NewSource(7))
	isCPU := make(map[topology.NodeID]bool)
	for _, id := range topo.CPUs() {
		isCPU[id] = true
	}
	var reqs, resps int
	for c := int64(0); c < 20000; c++ {
		for _, s := range g.Generate(c, rng, nil) {
			switch s.Class {
			case noc.Control:
				reqs++
				if !isCPU[s.Src] || isCPU[s.Dst] {
					t.Fatalf("request %v -> %v violates CPU->cache", s.Src, s.Dst)
				}
				if s.Size != 1 {
					t.Fatalf("request size %d", s.Size)
				}
			case noc.Data:
				resps++
				if isCPU[s.Src] || !isCPU[s.Dst] {
					t.Fatalf("response %v -> %v violates cache->CPU", s.Src, s.Dst)
				}
				if s.Size != 4 {
					t.Fatalf("response size %d", s.Size)
				}
			}
		}
	}
	if reqs == 0 {
		t.Fatal("no requests generated")
	}
	// Every request is matched by exactly one response except those
	// whose BankDelay extends past the window: at 0.2 flits/node/cycle
	// the CPUs issue ~1.44 requests/cycle, so at most ~29 can still be
	// pending after 20 cycles of bank delay.
	if d := reqs - resps; d < 0 || d > 60 {
		t.Errorf("requests %d vs responses %d (outstanding %d)", reqs, resps, d)
	}
}

func TestNUCAOfferedLoad(t *testing.T) {
	topo := topology.NewMesh2D(6, 6, 3.1)
	if err := topology.ApplyNUCALayout2D(topo); err != nil {
		t.Fatal(err)
	}
	g := &NUCA{Topo: topo, InjectionRate: 0.15, RequestSize: 1, ResponseSize: 4, BankDelay: 10}
	rng := rand.New(rand.NewSource(8))
	var flits int64
	const cycles = 30000
	for c := int64(0); c < cycles; c++ {
		for _, s := range g.Generate(c, rng, nil) {
			flits += int64(s.Size)
		}
	}
	got := float64(flits) / cycles / 36
	if math.Abs(got-0.15) > 0.01 {
		t.Errorf("offered load = %v, want 0.15", got)
	}
}

func makeTrace() *Trace {
	return &Trace{
		Name: "test",
		Events: []Event{
			{Cycle: 0, Src: 1, Dst: 2, Size: 1, Class: noc.Control},
			{Cycle: 3, Src: 2, Dst: 1, Size: 4, Class: noc.Data, Layers: []uint8{1, 4, 4, 1}},
			{Cycle: 3, Src: 5, Dst: 9, Size: 4, Class: noc.Data, Layers: []uint8{1, 1, 1, 1}},
			{Cycle: 7, Src: 9, Dst: 5, Size: 1, Class: noc.Control},
		},
	}
}

func TestTraceStats(t *testing.T) {
	tr := makeTrace()
	if tr.Span() != 8 {
		t.Errorf("Span = %d, want 8", tr.Span())
	}
	if tr.Flits() != 10 {
		t.Errorf("Flits = %d, want 10", tr.Flits())
	}
	// 6 of 10 flits are short (layers==1).
	if got := tr.ShortFlitPercent(); math.Abs(got-60) > 1e-9 {
		t.Errorf("ShortFlitPercent = %v, want 60", got)
	}
	shares := tr.ClassShares()
	if math.Abs(shares[noc.Control]-0.5) > 1e-9 || math.Abs(shares[noc.Data]-0.5) > 1e-9 {
		t.Errorf("class shares = %v", shares)
	}
	if r := tr.InjectionRate(36); math.Abs(r-10.0/8/36) > 1e-12 {
		t.Errorf("InjectionRate = %v", r)
	}
}

func TestTraceSort(t *testing.T) {
	tr := &Trace{Events: []Event{{Cycle: 5}, {Cycle: 1}, {Cycle: 3}}}
	tr.Sort()
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Cycle < tr.Events[i-1].Cycle {
			t.Fatalf("not sorted: %v", tr.Events)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := makeTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name {
		t.Errorf("name = %q, want %q", got.Name, tr.Name)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(got.Events), len(tr.Events))
	}
	for i, e := range got.Events {
		w := tr.Events[i]
		if e.Cycle != w.Cycle || e.Src != w.Src || e.Dst != w.Dst || e.Size != w.Size || e.Class != w.Class {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
		if (e.Layers == nil) != (w.Layers == nil) {
			t.Errorf("event %d layers nil-ness mismatch", i)
		}
		for j := range e.Layers {
			if e.Layers[j] != w.Layers[j] {
				t.Errorf("event %d layer %d = %d, want %d", i, j, e.Layers[j], w.Layers[j])
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",         // too few fields
		"x 1 2 1 0 -\n",   // bad int
		"0 1 2 2 0 1\n",   // layer count mismatch
		"0 1 2 1 0 abc\n", // bad layer value
		"0 1 2 1 0 1,2\n", // too many layers
	}
	for _, s := range cases {
		if _, err := ReadTrace(bytes.NewBufferString(s)); err == nil {
			t.Errorf("ReadTrace(%q) should fail", s)
		}
	}
}

func TestReplayerOnce(t *testing.T) {
	tr := makeTrace()
	r := &Replayer{Trace: tr}
	var got int
	for c := int64(0); c < 20; c++ {
		got += len(r.Generate(c, nil, nil))
	}
	if got != 4 {
		t.Errorf("replayed %d events, want 4", got)
	}
}

func TestReplayerLoop(t *testing.T) {
	tr := makeTrace()
	r := &Replayer{Trace: tr, Loop: true}
	var got int
	for c := int64(0); c < 16; c++ { // two full spans
		got += len(r.Generate(c, nil, nil))
	}
	if got != 8 {
		t.Errorf("replayed %d events over two spans, want 8", got)
	}
}

func TestReplayerBatchesSameCycle(t *testing.T) {
	tr := makeTrace()
	r := &Replayer{Trace: tr}
	if n := len(r.Generate(3, nil, nil)); n != 3 { // cycle-0 event was never asked for... it arrives now too
		// Events at cycles 0 and 3 are all due by cycle 3.
		t.Errorf("events due by cycle 3 = %d, want 3", n)
	}
}

func TestReplayerEmptyTrace(t *testing.T) {
	r := &Replayer{Trace: &Trace{}}
	if specs := r.Generate(0, nil, nil); specs != nil {
		t.Errorf("empty trace should generate nothing")
	}
}
