package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser against malformed input: it
// must either return an error or a structurally valid trace, never
// panic, and valid traces must round-trip.
func FuzzReadTrace(f *testing.F) {
	f.Add("# name demo\n0 1 2 1 0 -\n")
	f.Add("0 1 2 4 1 1,4,4,1\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("garbage\n")
	f.Add("0 1 2 1 0 999\n")
	f.Add("-5 -1 -2 -1 -7 -\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		// Structural sanity.
		for _, e := range tr.Events {
			if e.Layers != nil && len(e.Layers) != e.Size {
				t.Fatalf("parsed event with %d layers for %d flits", len(e.Layers), e.Size)
			}
		}
		// Round-trip: what we accepted must re-serialize and re-parse
		// to the same events.
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after successful parse: %v", err)
		}
		tr2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d vs %d", len(tr2.Events), len(tr.Events))
		}
		for i := range tr.Events {
			a, b := tr.Events[i], tr2.Events[i]
			if a.Cycle != b.Cycle || a.Src != b.Src || a.Dst != b.Dst || a.Size != b.Size || a.Class != b.Class {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, a, b)
			}
		}
	})
}
