package traffic

import (
	"math/rand"

	"mira/internal/noc"
	"mira/internal/topology"
)

// Uniform is the paper's synthetic uniform-random workload: every node
// injects packets via a Bernoulli process at InjectionRate flits per
// node per cycle, each to a uniformly random other node (§4: "uniform
// random injection rate and random spatial distribution of source and
// destination nodes").
type Uniform struct {
	// Topo supplies the node population.
	Topo *topology.Topology
	// InjectionRate is offered load in flits/node/cycle.
	InjectionRate float64
	// PacketSize is the flit count per packet (the evaluation's data
	// packets are 4 flits of 128 bits: one 64 B cache line).
	PacketSize int
	// ShortFlits optionally marks a fraction of flits short for the
	// layer-shutdown studies; Layers must then be set.
	ShortFlits ShortFlitProfile
}

var _ noc.Generator = (*Uniform)(nil)

// Generate implements noc.Generator.
func (u *Uniform) Generate(cycle int64, rng *rand.Rand, specs []noc.Spec) []noc.Spec {
	n := u.Topo.NumNodes()
	pPkt := u.InjectionRate / float64(u.PacketSize)
	for src := 0; src < n; src++ {
		if rng.Float64() >= pPkt {
			continue
		}
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		specs = append(specs, noc.Spec{
			Src:           topology.NodeID(src),
			Dst:           topology.NodeID(dst),
			Size:          u.PacketSize,
			Class:         noc.Data,
			LayersPerFlit: u.ShortFlits.SampleLayers(rng, u.PacketSize),
		})
	}
	return specs
}

// NUCA is the layout-constrained bimodal workload of §4.2.1 ("NUCA-UR"):
// the 8 CPU nodes issue single-flit control requests to uniformly random
// cache nodes; every request is answered by a multi-flit data response
// from that cache back to the CPU after the bank access time. Requests
// travel on the control VC and responses on the data VC (ByClass
// policy), mirroring the paper's one-VC-per-traffic-type design.
type NUCA struct {
	Topo *topology.Topology
	// InjectionRate is the total offered load in flits/node/cycle
	// averaged over all nodes (so it is directly comparable with the
	// Uniform workload at the same x-axis value).
	InjectionRate float64
	// RequestSize and ResponseSize in flits (1 and 4 in the paper's
	// setup: an address packet and a 64 B cache line).
	RequestSize  int
	ResponseSize int
	// BankDelay is the L2 bank access latency in cycles between a
	// request's creation and its response entering the cache node's
	// source queue (4 cycles for a 512 KB bank at 2 GHz, Table 4, plus
	// the request's expected network traversal).
	BankDelay int64
	// ShortFlits applies to response payloads.
	ShortFlits ShortFlitProfile

	// pending is a timing wheel of responses keyed by delivery cycle
	// modulo the wheel size. Responses are always scheduled a fixed
	// BankDelay ahead and cycles are queried in increasing order, so
	// buckets can be recycled in place with no per-cycle map churn.
	pending [][]noc.Spec
}

var _ noc.Generator = (*NUCA)(nil)

// Generate implements noc.Generator.
func (g *NUCA) Generate(cycle int64, rng *rand.Rand, specs []noc.Spec) []noc.Spec {
	if g.pending == nil {
		// One bucket per cycle of bank delay, plus slack for the
		// at-least-one-cycle clamp below.
		size := int(g.BankDelay) + 2
		if size < 2 {
			size = 2
		}
		g.pending = make([][]noc.Spec, size)
	}
	cpus := g.Topo.CPUs()
	caches := g.Topo.Caches()
	if len(cpus) == 0 || len(caches) == 0 {
		return specs
	}
	// Each request/response pair carries RequestSize+ResponseSize
	// flits; solve the per-CPU request probability from the target
	// network-wide injection rate.
	pairFlits := float64(g.RequestSize + g.ResponseSize)
	totalPktPerCycle := g.InjectionRate * float64(g.Topo.NumNodes()) / pairFlits
	pReq := totalPktPerCycle / float64(len(cpus))

	// Release this cycle's matured responses and recycle the bucket.
	slot := cycle % int64(len(g.pending))
	specs = append(specs, g.pending[slot]...)
	g.pending[slot] = g.pending[slot][:0]

	for _, cpu := range cpus {
		if rng.Float64() >= pReq {
			continue
		}
		bank := caches[rng.Intn(len(caches))]
		specs = append(specs, noc.Spec{
			Src:   cpu,
			Dst:   bank,
			Size:  g.RequestSize,
			Class: noc.Control,
		})
		at := cycle + g.BankDelay
		if at <= cycle {
			at = cycle + 1
		}
		rs := at % int64(len(g.pending))
		g.pending[rs] = append(g.pending[rs], noc.Spec{
			Src:           bank,
			Dst:           cpu,
			Size:          g.ResponseSize,
			Class:         noc.Data,
			LayersPerFlit: g.ShortFlits.SampleLayers(rng, g.ResponseSize),
		})
	}
	return specs
}
