package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mira/internal/noc"
	"mira/internal/topology"
)

// Event is one packet injection in a recorded trace. Traces are how the
// CMP substrate (internal/cmp) feeds application workloads into the NoC,
// standing in for the paper's Simics-generated MP traces.
type Event struct {
	Cycle int64
	Src   topology.NodeID
	Dst   topology.NodeID
	Size  int
	Class noc.Class
	// Layers holds per-flit active layer counts; nil means full width.
	Layers []uint8
}

// Trace is a time-ordered sequence of packet injections.
type Trace struct {
	Name   string
	Events []Event
}

// Sort orders events by cycle (stable, preserving generation order for
// equal cycles).
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Cycle < t.Events[j].Cycle })
}

// Span returns the cycle range covered (last event cycle + 1), or 0.
func (t *Trace) Span() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Cycle + 1
}

// Flits returns the total flit count.
func (t *Trace) Flits() int64 {
	var n int64
	for _, e := range t.Events {
		n += int64(e.Size)
	}
	return n
}

// InjectionRate returns the average offered load in flits/node/cycle for
// a network with the given node count.
func (t *Trace) InjectionRate(nodes int) float64 {
	span := t.Span()
	if span == 0 || nodes == 0 {
		return 0
	}
	return float64(t.Flits()) / float64(span) / float64(nodes)
}

// ShortFlitPercent returns the percentage of flits whose active layer
// count is 1 (Figure 13 (a)).
func (t *Trace) ShortFlitPercent() float64 {
	var short, total int64
	for _, e := range t.Events {
		for i := 0; i < e.Size; i++ {
			total++
			if e.Layers != nil && e.Layers[i] == 1 {
				short++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(short) / float64(total)
}

// ClassShares returns the fraction of packets per message class
// (Figure 2's data vs. address/coherence split).
func (t *Trace) ClassShares() map[noc.Class]float64 {
	counts := make(map[noc.Class]int64)
	for _, e := range t.Events {
		counts[e.Class]++
	}
	out := make(map[noc.Class]float64, len(counts))
	total := float64(len(t.Events))
	for c, n := range counts {
		out[c] = float64(n) / total
	}
	return out
}

// Replayer feeds a trace into the simulator, optionally looping so that
// an application trace shorter than the simulation window keeps the
// network loaded.
type Replayer struct {
	Trace *Trace
	Loop  bool

	idx    int
	offset int64
}

var _ noc.Generator = (*Replayer)(nil)

// Generate implements noc.Generator. Cycles must be queried in
// non-decreasing order; the rng is unused because traces are
// deterministic.
func (r *Replayer) Generate(cycle int64, _ *rand.Rand, specs []noc.Spec) []noc.Spec {
	evs := r.Trace.Events
	if len(evs) == 0 {
		return specs
	}
	span := r.Trace.Span()
	for {
		if r.idx >= len(evs) {
			if !r.Loop {
				return specs
			}
			r.idx = 0
			r.offset += span
		}
		e := evs[r.idx]
		at := e.Cycle + r.offset
		if at > cycle {
			return specs
		}
		specs = append(specs, noc.Spec{
			Src: e.Src, Dst: e.Dst, Size: e.Size, Class: e.Class,
			LayersPerFlit: e.Layers,
		})
		r.idx++
	}
}

// WriteTo serializes the trace in a line-oriented text format:
//
//	# name <name>
//	<cycle> <src> <dst> <size> <class> <layers|- >
//
// Layers are comma-separated per-flit counts, or "-" for full width.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "# name %s\n", t.Name)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, e := range t.Events {
		layers := "-"
		if e.Layers != nil {
			parts := make([]string, len(e.Layers))
			for i, l := range e.Layers {
				parts[i] = strconv.Itoa(int(l))
			}
			layers = strings.Join(parts, ",")
		}
		c, err := fmt.Fprintf(bw, "%d %d %d %d %d %s\n", e.Cycle, e.Src, e.Dst, e.Size, e.Class, layers)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses the format written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# name "); ok {
				t.Name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 6 {
			return nil, fmt.Errorf("traffic: trace line %d: want 6 fields, got %d", line, len(fields))
		}
		var e Event
		vals := make([]int64, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: trace line %d field %d: %v", line, i+1, err)
			}
			vals[i] = v
		}
		e.Cycle = vals[0]
		e.Src = topology.NodeID(vals[1])
		e.Dst = topology.NodeID(vals[2])
		e.Size = int(vals[3])
		e.Class = noc.Class(vals[4])
		if fields[5] != "-" {
			parts := strings.Split(fields[5], ",")
			if len(parts) != e.Size {
				return nil, fmt.Errorf("traffic: trace line %d: %d layer entries for %d flits", line, len(parts), e.Size)
			}
			e.Layers = make([]uint8, len(parts))
			for i, p := range parts {
				v, err := strconv.ParseUint(p, 10, 8)
				if err != nil {
					return nil, fmt.Errorf("traffic: trace line %d layers: %v", line, err)
				}
				e.Layers[i] = uint8(v)
			}
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
