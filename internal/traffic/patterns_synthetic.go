package traffic

import (
	"fmt"
	"math/rand"

	"mira/internal/noc"
	"mira/internal/topology"
)

// Classic synthetic permutation and hotspot workloads. The MIRA paper
// evaluates uniform random traffic only, but adversarial patterns are
// the standard way to probe a topology's weak spots (transpose and
// tornado stress dimension-ordered routing; hotspots model a contended
// home bank), so a production NoC library ships them.

// DstFunc maps a source node to its fixed destination in a permutation
// pattern.
type DstFunc func(t *topology.Topology, src topology.NodeID) topology.NodeID

// Transpose sends (x, y) to (y, x); it requires a square planar mesh
// and concentrates traffic on the diagonal under X-Y routing.
func Transpose(t *topology.Topology, src topology.NodeID) topology.NodeID {
	c := t.Node(src).Coord
	return t.MustNodeAt(topology.Coord{X: c.Y, Y: c.X, Z: c.Z}).ID
}

// Complement sends node i to node N-1-i (the coordinate-wise mirror on
// a mesh), maximizing average distance.
func Complement(t *topology.Topology, src topology.NodeID) topology.NodeID {
	return topology.NodeID(t.NumNodes() - 1 - int(src))
}

// Tornado sends each node halfway around its row, the canonical
// adversary for rings and an asymmetric load for meshes.
func Tornado(t *topology.Topology, src topology.NodeID) topology.NodeID {
	c := t.Node(src).Coord
	return t.MustNodeAt(topology.Coord{X: (c.X + t.XDim/2) % t.XDim, Y: c.Y, Z: c.Z}).ID
}

// Permutation is a fixed-destination synthetic workload.
type Permutation struct {
	Topo *topology.Topology
	// InjectionRate is offered load in flits/node/cycle.
	InjectionRate float64
	PacketSize    int
	Dst           DstFunc
	// Name labels the pattern in experiment output.
	Name string
}

var _ noc.Generator = (*Permutation)(nil)

// Generate implements noc.Generator.
func (p *Permutation) Generate(cycle int64, rng *rand.Rand, specs []noc.Spec) []noc.Spec {
	pPkt := p.InjectionRate / float64(p.PacketSize)
	for src := 0; src < p.Topo.NumNodes(); src++ {
		if rng.Float64() >= pPkt {
			continue
		}
		s := topology.NodeID(src)
		d := p.Dst(p.Topo, s)
		if d == s {
			continue // self-pairs (diagonal of transpose) stay local
		}
		specs = append(specs, noc.Spec{Src: s, Dst: d, Size: p.PacketSize, Class: noc.Data})
	}
	return specs
}

// Validate checks the pattern is total and in-range over the topology.
func (p *Permutation) Validate() error {
	if p.Dst == nil {
		return fmt.Errorf("traffic: permutation has no destination function")
	}
	for _, n := range p.Topo.Nodes() {
		d := p.Dst(p.Topo, n.ID)
		if d < 0 || int(d) >= p.Topo.NumNodes() {
			return fmt.Errorf("traffic: %s maps node %d outside the network (%d)", p.Name, n.ID, d)
		}
	}
	return nil
}

// Hotspot is uniform random traffic with a fraction of packets directed
// at a small set of hot nodes (e.g. contended home banks).
type Hotspot struct {
	Topo          *topology.Topology
	InjectionRate float64
	PacketSize    int
	// Hot lists the hotspot destinations; Frac is the probability a
	// packet targets one of them.
	Hot  []topology.NodeID
	Frac float64
}

var _ noc.Generator = (*Hotspot)(nil)

// Generate implements noc.Generator.
func (h *Hotspot) Generate(cycle int64, rng *rand.Rand, specs []noc.Spec) []noc.Spec {
	n := h.Topo.NumNodes()
	pPkt := h.InjectionRate / float64(h.PacketSize)
	for src := 0; src < n; src++ {
		if rng.Float64() >= pPkt {
			continue
		}
		var dst topology.NodeID
		if len(h.Hot) > 0 && rng.Float64() < h.Frac {
			dst = h.Hot[rng.Intn(len(h.Hot))]
		} else {
			dst = topology.NodeID(rng.Intn(n))
		}
		if dst == topology.NodeID(src) {
			continue
		}
		specs = append(specs, noc.Spec{Src: topology.NodeID(src), Dst: dst, Size: h.PacketSize, Class: noc.Data})
	}
	return specs
}
