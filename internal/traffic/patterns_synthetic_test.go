package traffic

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/topology"
)

func mesh66() *topology.Topology { return topology.NewMesh2D(6, 6, 1) }

func TestTransposeMapping(t *testing.T) {
	m := mesh66()
	src := m.MustNodeAt(topology.Coord{X: 1, Y: 4}).ID
	dst := Transpose(m, src)
	if got := m.Node(dst).Coord; got != (topology.Coord{X: 4, Y: 1}) {
		t.Errorf("transpose(1,4) = %v", got)
	}
	// Diagonal maps to itself.
	diag := m.MustNodeAt(topology.Coord{X: 3, Y: 3}).ID
	if Transpose(m, diag) != diag {
		t.Errorf("diagonal should self-map")
	}
	// Transpose is an involution.
	for _, n := range m.Nodes() {
		if Transpose(m, Transpose(m, n.ID)) != n.ID {
			t.Fatalf("transpose not an involution at %d", n.ID)
		}
	}
}

func TestComplementMapping(t *testing.T) {
	m := mesh66()
	if Complement(m, 0) != 35 || Complement(m, 35) != 0 {
		t.Errorf("complement endpoints wrong")
	}
	for _, n := range m.Nodes() {
		if Complement(m, Complement(m, n.ID)) != n.ID {
			t.Fatalf("complement not an involution at %d", n.ID)
		}
	}
}

func TestTornadoMapping(t *testing.T) {
	m := mesh66()
	src := m.MustNodeAt(topology.Coord{X: 1, Y: 2}).ID
	dst := Tornado(m, src)
	if got := m.Node(dst).Coord; got != (topology.Coord{X: 4, Y: 2}) {
		t.Errorf("tornado(1,2) = %v, want (4,2)", got)
	}
	// Tornado keeps the row.
	for _, n := range m.Nodes() {
		if m.Node(Tornado(m, n.ID)).Coord.Y != n.Coord.Y {
			t.Fatalf("tornado changed row at %d", n.ID)
		}
	}
}

func TestPermutationValidate(t *testing.T) {
	m := mesh66()
	good := &Permutation{Topo: m, Dst: Transpose, Name: "transpose"}
	if err := good.Validate(); err != nil {
		t.Errorf("transpose should validate: %v", err)
	}
	bad := &Permutation{Topo: m, Name: "nil"}
	if err := bad.Validate(); err == nil {
		t.Errorf("nil DstFunc should fail validation")
	}
	oob := &Permutation{Topo: m, Name: "oob", Dst: func(*topology.Topology, topology.NodeID) topology.NodeID {
		return 99
	}}
	if err := oob.Validate(); err == nil {
		t.Errorf("out-of-range mapping should fail validation")
	}
}

func TestPermutationGenerate(t *testing.T) {
	m := mesh66()
	p := &Permutation{Topo: m, InjectionRate: 0.4, PacketSize: 4, Dst: Complement, Name: "complement"}
	rng := rand.New(rand.NewSource(1))
	var flits int64
	const cycles = 20000
	for c := int64(0); c < cycles; c++ {
		for _, s := range p.Generate(c, rng, nil) {
			if s.Dst != Complement(m, s.Src) {
				t.Fatalf("wrong destination for %d", s.Src)
			}
			flits += int64(s.Size)
		}
	}
	got := float64(flits) / cycles / 36
	if math.Abs(got-0.4) > 0.02 {
		t.Errorf("offered load = %v, want 0.4", got)
	}
}

func TestHotspotConcentration(t *testing.T) {
	m := mesh66()
	hot := []topology.NodeID{14, 21}
	h := &Hotspot{Topo: m, InjectionRate: 0.5, PacketSize: 1, Hot: hot, Frac: 0.5}
	rng := rand.New(rand.NewSource(2))
	counts := map[topology.NodeID]int{}
	total := 0
	for c := int64(0); c < 30000; c++ {
		for _, s := range h.Generate(c, rng, nil) {
			counts[s.Dst]++
			total++
		}
	}
	hotShare := float64(counts[14]+counts[21]) / float64(total)
	// 50% targeted + ~2/36 of the uniform remainder.
	want := 0.5 + 0.5*2.0/36
	if math.Abs(hotShare-want) > 0.03 {
		t.Errorf("hotspot share = %.3f, want ~%.3f", hotShare, want)
	}
}

func TestAdversarialPatternsLoadNetwork(t *testing.T) {
	// End-to-end: transpose on a mesh must deliver everything at low
	// load, and tornado must load east-going links asymmetrically.
	m := mesh66()
	cfg := noc.Config{
		Topo: m, Alg: routing.XY{}, VCs: 2, BufDepth: 8,
		STLTCycles: 2, Layers: 4, Policy: noc.AnyFree, Seed: 1,
	}
	p := &Permutation{Topo: m, InjectionRate: 0.1, PacketSize: 4, Dst: Transpose, Name: "transpose"}
	s := noc.NewSim(noc.NewNetwork(cfg), p)
	s.Params = noc.SimParams{Warmup: 500, Measure: 2000, DrainMax: 8000}
	res := s.Run(context.Background())
	if res.Generated == 0 || res.Ejected != res.Generated {
		t.Fatalf("transpose lost packets: %v", res.String())
	}
}
