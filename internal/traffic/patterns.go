// Package traffic provides the synthetic workloads of the MIRA
// evaluation (uniform random and NUCA-constrained bimodal traffic), the
// flit data-pattern model that drives the short-flit layer-shutdown
// technique, and a replayable trace format for application-driven runs.
package traffic

import (
	"fmt"
	"math/rand"
)

// WordPattern classifies one 32-bit word of flit payload, following the
// frequent-pattern taxonomy of Alameldeen & Wood that Figure 1 of the
// paper is based on.
type WordPattern uint8

// Word pattern categories.
const (
	PatternZero  WordPattern = iota // all 0s
	PatternOne                      // all 1s
	PatternFreq                     // other frequent pattern (sign-ext., repeated byte)
	PatternOther                    // irregular data
	NumPatterns
)

func (p WordPattern) String() string {
	switch p {
	case PatternZero:
		return "all-0"
	case PatternOne:
		return "all-1"
	case PatternFreq:
		return "frequent"
	default:
		return "other"
	}
}

// PatternProfile gives the probability of each word pattern in a
// workload's data payloads, plus the fraction of its flits that are
// short (all words beyond the top layer's redundant). The per-workload
// instances live in internal/cmp/workloads.go.
type PatternProfile struct {
	// Word-level pattern probabilities; must sum to <= 1, the
	// remainder is PatternOther.
	Zero, One, Freq float64
}

// Validate checks probability bounds.
func (p PatternProfile) Validate() error {
	for _, v := range []float64{p.Zero, p.One, p.Freq} {
		if v < 0 || v > 1 {
			return fmt.Errorf("traffic: pattern probability %v out of [0,1]", v)
		}
	}
	if s := p.Zero + p.One + p.Freq; s > 1+1e-9 {
		return fmt.Errorf("traffic: pattern probabilities sum to %v > 1", s)
	}
	return nil
}

// SampleWord draws one word pattern.
func (p PatternProfile) SampleWord(rng *rand.Rand) WordPattern {
	u := rng.Float64()
	switch {
	case u < p.Zero:
		return PatternZero
	case u < p.Zero+p.One:
		return PatternOne
	case u < p.Zero+p.One+p.Freq:
		return PatternFreq
	default:
		return PatternOther
	}
}

// ShortFlitFraction returns the probability that a data flit is short:
// every word except the top-layer word is all-0s or all-1s (§3.2.1's
// zero-detector treats both as redundant). With L layers a flit carries
// L words, so the lower L-1 words must all be redundant.
func (p PatternProfile) ShortFlitFraction(layers int) float64 {
	red := p.Zero + p.One
	frac := 1.0
	for i := 0; i < layers-1; i++ {
		frac *= red
	}
	return frac
}

// SampleFlitLayers draws the number of active layers for one data flit
// carrying `layers` words: the flit needs as many layers as its highest
// non-redundant word (LSB word lives in the top layer, §3.2.1).
func (p PatternProfile) SampleFlitLayers(rng *rand.Rand, layers int) uint8 {
	active := 1
	red := p.Zero + p.One
	for w := layers - 1; w >= 1; w-- {
		if rng.Float64() >= red {
			active = w + 1
			break
		}
	}
	return uint8(active)
}

// ShortFlitProfile is a degenerate profile where exactly the given
// fraction of flits is fully short (1 active layer) and the rest are
// full-width. It is used for the controlled 0 % / 25 % / 50 % short-flit
// sweeps of Figures 12 and 13.
type ShortFlitProfile struct {
	Frac   float64
	Layers int
}

// SampleLayers draws per-flit active layers for a packet of size flits.
func (s ShortFlitProfile) SampleLayers(rng *rand.Rand, size int) []uint8 {
	if s.Frac <= 0 {
		return nil // all layers active
	}
	out := make([]uint8, size)
	for i := range out {
		if rng.Float64() < s.Frac {
			out[i] = 1
		} else {
			out[i] = uint8(s.Layers)
		}
	}
	return out
}
