package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mira/internal/noc"
)

// BatchOptions controls RunBatch.
type BatchOptions struct {
	// Workers caps the worker pool; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Timeout bounds each individual run (elaboration + simulation);
	// a run over budget returns its partial result with
	// Result.Canceled set. 0 means no per-run bound.
	Timeout time.Duration `json:"timeout,omitempty"`

	// OnStart, when non-nil, is called from the worker goroutine right
	// after scenario i elaborates and before its simulation starts. The
	// serving layer (internal/serve) uses it to publish the run's live
	// observability collector. Hooks must be safe for concurrent calls
	// from multiple workers.
	OnStart func(i int, e *Elaboration) `json:"-"`
	// OnDone, when non-nil, is called from the worker goroutine as soon
	// as run i finishes (successfully or not), before the batch as a
	// whole completes.
	OnDone func(r BatchResult) `json:"-"`
}

// BatchResult pairs one scenario with its outcome. Exactly one of
// Result (Err == "") and Err is meaningful; a run that was cut off by
// the per-run timeout or the batch context still reports its partial
// Result with Canceled set.
type BatchResult struct {
	Index    int        `json:"index"`
	Scenario Scenario   `json:"scenario"`
	Result   noc.Result `json:"result"`
	Err      string     `json:"error,omitempty"`
}

// RunBatch executes a set of scenarios on a worker pool and returns one
// result per scenario, in input order. Invalid scenarios fail
// individually (their Err is set) without affecting the rest. When ctx
// is canceled the batch stops dispatching, in-flight runs return
// partial results, all workers exit before RunBatch returns, and
// never-started entries carry an error saying so.
//
// This is the serving-layer entry point: JSON scenarios in,
// JSON-serializable results out (see RunBatchJSON for the stream form).
func RunBatch(ctx context.Context, scs []Scenario, o BatchOptions) []BatchResult {
	out := make([]BatchResult, len(scs))
	for i, sc := range scs {
		out[i] = BatchResult{Index: i, Scenario: sc, Err: "batch canceled before this scenario started"}
	}
	if len(scs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scs) {
		workers = len(scs)
	}

	runOne := func(i int) {
		runCtx := ctx
		cancel := context.CancelFunc(func() {})
		if o.Timeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, o.Timeout)
		}
		defer cancel()
		br := BatchResult{Index: i, Scenario: scs[i]}
		e, err := scs[i].Elaborate()
		if err == nil {
			if o.OnStart != nil {
				o.OnStart(i, e)
			}
			br.Result = e.Sim.Run(runCtx)
			if e.Obs != nil {
				// Flush the trailing partial sample window so serving
				// readers see the run's final state.
				err = e.Obs.Close()
			}
		}
		if err != nil {
			br.Err = err.Error()
		}
		out[i] = br
		if o.OnDone != nil {
			o.OnDone(br)
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
dispatch:
	for i := range scs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return out
}

// DecodeBatch reads a batch description: either a JSON array of
// scenarios or a single scenario object.
func DecodeBatch(r io.Reader) ([]Scenario, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("scenario: reading batch input: %w", err)
	}
	var scs []Scenario
	if err := json.Unmarshal(data, &scs); err != nil {
		var one Scenario
		if err1 := json.Unmarshal(data, &one); err1 != nil {
			return nil, fmt.Errorf("scenario: batch input is neither a scenario array (%v) nor a scenario object (%v)", err, err1)
		}
		scs = []Scenario{one}
	}
	return scs, nil
}

// RunBatchJSON is RunBatch over serialized scenarios: r holds either a
// JSON array of scenarios or a single scenario object, and the results
// are written to w as an indented JSON array.
func RunBatchJSON(ctx context.Context, r io.Reader, w io.Writer, o BatchOptions) error {
	scs, err := DecodeBatch(r)
	if err != nil {
		return err
	}
	results := RunBatch(ctx, scs, o)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
