package scenario

import (
	"context"
	"strings"
	"testing"
)

func collectiveScenario(alg string, iters int) Scenario {
	return Scenario{
		Arch:    "2DB",
		Measure: 60000,
		Drain:   20000,
		Seed:    7,
		Chips:   &Chips{ChipsX: 1, ChipsY: 1, NodesX: 4, NodesY: 4},
		Traffic: Traffic{
			Kind:       "collective",
			Collective: &Collective{Algorithm: alg, Participants: 8, Iterations: iters},
		},
	}
}

func TestCollectiveValidate(t *testing.T) {
	good := collectiveScenario("ring-allreduce", 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid collective scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mut    func(*Scenario)
		substr string
	}{
		{"missing block", func(s *Scenario) { s.Traffic.Collective = nil }, "collective block"},
		{"bad algorithm", func(s *Scenario) { s.Traffic.Collective.Algorithm = "allgather" }, "unknown algorithm"},
		{"negative ranks", func(s *Scenario) { s.Traffic.Collective.Participants = -1 }, "participants"},
		{"negative flits", func(s *Scenario) { s.Traffic.Collective.MessageFlits = -2 }, "message_flits"},
		{"negative iters", func(s *Scenario) { s.Traffic.Collective.Iterations = -3 }, "iterations"},
		{"warmup set", func(s *Scenario) { s.Warmup = 100 }, "warmup"},
	}
	for _, c := range cases {
		sc := collectiveScenario("ring-allreduce", 2)
		c.mut(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		} else if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
	// One rank too many for the elaborated 16-node fabric surfaces at
	// build time (Elaborate), where the topology is known.
	sc := collectiveScenario("ring-allreduce", 1)
	sc.Traffic.Collective.Participants = 17
	if _, err := sc.Elaborate(); err == nil {
		t.Error("17 participants on a 16-node fabric elaborated, want error")
	}
}

// TestCollectiveRun checks the wired closed loop end to end: the engine
// is attached to the Sim's delivery callback, every iteration
// completes, and the network-level packet count matches the schedule.
func TestCollectiveRun(t *testing.T) {
	for _, alg := range []string{"ring-allreduce", "reduce-scatter", "tree-broadcast"} {
		sc := collectiveScenario(alg, 3)
		e, err := sc.Elaborate()
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if e.Collective == nil {
			t.Fatalf("%s: Elaboration.Collective is nil", alg)
		}
		if e.Sim.OnEject == nil {
			t.Fatalf("%s: Sim.OnEject not wired to the engine", alg)
		}
		res := e.Sim.Run(context.Background())
		if !e.Collective.Done() {
			t.Fatalf("%s: %d/3 iterations complete", alg, e.Collective.Completed())
		}
		want := int64(3 * e.Collective.MessagesPerIteration())
		if res.Generated != want || res.Ejected != want {
			t.Fatalf("%s: generated/ejected %d/%d packets, want %d (3 iterations of %d messages)",
				alg, res.Generated, res.Ejected, want, e.Collective.MessagesPerIteration())
		}
		rep := e.Collective.Report()
		if rep.Messages.N != want {
			t.Fatalf("%s: report aggregates %d messages, want %d", alg, rep.Messages.N, want)
		}
		if rep.Iteration.N != 3 {
			t.Fatalf("%s: report aggregates %d iterations, want 3", alg, rep.Iteration.N)
		}
	}
}

// TestCollectiveDeterminism pins the acceptance criterion: identical
// completion tables (Summary and StepTable, byte for byte) at any
// shards x stepmode setting.
func TestCollectiveDeterminism(t *testing.T) {
	run := func(shards int, mode string) (string, string) {
		sc := collectiveScenario("ring-allreduce", 2)
		sc.Shards = shards
		sc.StepMode = mode
		e, err := sc.Elaborate()
		if err != nil {
			t.Fatal(err)
		}
		e.Sim.Run(context.Background())
		return e.Collective.Summary().String(), e.Collective.StepTable().String()
	}
	refSum, refSteps := run(0, "")
	if !strings.Contains(refSum, "2/2 iterations complete") {
		t.Fatalf("reference run incomplete:\n%s", refSum)
	}
	for _, shards := range []int{1, 4, -1} {
		for _, mode := range []string{"activity", "fullscan", "checked"} {
			sum, steps := run(shards, mode)
			if sum != refSum {
				t.Errorf("shards=%d mode=%s: summary diverges\nref:\n%s\ngot:\n%s", shards, mode, refSum, sum)
			}
			if steps != refSteps {
				t.Errorf("shards=%d mode=%s: step table diverges", shards, mode)
			}
		}
	}
}

// TestCollectiveCancellation is the no-hang regression: canceling
// mid-collective must return promptly with Canceled set and a partial
// (not Done) engine, and the partial tables must still render.
func TestCollectiveCancellation(t *testing.T) {
	sc := collectiveScenario("ring-allreduce", 1000) // far more work than the window
	sc.Measure = 50_000_000
	sc.Drain = 1000
	e, err := sc.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.Sim.OnCycle = func(cycle int64) {
		if cycle == 3000 {
			cancel()
		}
	}
	res := e.Sim.Run(ctx)
	if !res.Canceled {
		t.Fatal("result not marked Canceled")
	}
	if e.Collective.Done() {
		t.Fatal("engine claims Done after cancellation")
	}
	if e.Collective.Completed() >= 1000 {
		t.Fatalf("engine claims %d completed iterations", e.Collective.Completed())
	}
	sum := e.Collective.Summary().String()
	if !strings.Contains(sum, "incomplete") {
		t.Fatalf("partial summary missing the incomplete note:\n%s", sum)
	}
}
