package scenario

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mira/internal/noc"
)

// full returns a scenario exercising every serializable field.
func full() Scenario {
	return Scenario{
		Arch: "3DM",
		Traffic: Traffic{
			Kind: "hotspot", Rate: 0.2, ShortFrac: 0.25, HotFrac: 0.5, Hot: []int{3, 7},
		},
		Warmup: 100, Measure: 500, Drain: 1000, Seed: 7,
		StepMode: "fullscan",
		VCs:      4, BufDepth: 4, STLTCycles: 2,
		LookaheadRC: true, SpecSA: true, QoSPriority: true, MatrixArb: true,
		Routing: "westfirst",
		Faults:  []Fault{{Src: 2, Dir: "east"}},
	}
}

// ur returns a minimal valid uniform-random scenario.
func ur() Scenario {
	return Scenario{
		Arch:    "2DB",
		Traffic: Traffic{Kind: "ur", Rate: 0.1},
		Warmup:  50, Measure: 200, Drain: 1000, Seed: 42,
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, sc := range []Scenario{full(), ur()} {
		if err := sc.Validate(); err != nil {
			t.Fatalf("fixture invalid: %v", err)
		}
		data, err := sc.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("round trip changed the scenario:\nbefore %+v\nafter  %+v", sc, back)
		}
	}
}

func TestJSONOmitsDefaults(t *testing.T) {
	data, err := ur().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"vcs", "stlt_cycles", "express_interval", "routing", "faults", "step_mode"} {
		if strings.Contains(string(data), `"`+field+`"`) {
			t.Errorf("minimal scenario JSON should omit default field %q:\n%s", field, data)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mod := func(f func(*Scenario)) Scenario {
		sc := ur()
		f(&sc)
		return sc
	}
	cases := []struct {
		name string
		sc   Scenario
		want string // substring of the error
	}{
		{"unknown arch", mod(func(s *Scenario) { s.Arch = "4DX" }), "unknown architecture"},
		{"zero measure", mod(func(s *Scenario) { s.Measure = 0 }), "measure"},
		{"negative warmup", mod(func(s *Scenario) { s.Warmup = -1 }), "warmup"},
		{"bad step mode", mod(func(s *Scenario) { s.StepMode = "warp" }), "step mode"},
		{"negative vcs", mod(func(s *Scenario) { s.VCs = -2 }), "buffer geometry"},
		{"stlt out of range", mod(func(s *Scenario) { s.STLTCycles = 3 }), "stlt_cycles"},
		{"express on non-express arch", mod(func(s *Scenario) { s.ExpressInterval = 2 }), "3DM-E"},
		{"express interval too small", mod(func(s *Scenario) { s.Arch = "3DM-E"; s.ExpressInterval = 1 }), "express_interval"},
		{"unknown routing", mod(func(s *Scenario) { s.Routing = "adaptive" }), "routing"},
		{"faults without westfirst", mod(func(s *Scenario) { s.Faults = []Fault{{Src: 0, Dir: "east"}} }), "westfirst"},
		{"bad fault dir", mod(func(s *Scenario) { s.Routing = "westfirst"; s.Faults = []Fault{{Src: 0, Dir: "sideways"}} }), "direction"},
		{"negative fault src", mod(func(s *Scenario) { s.Routing = "westfirst"; s.Faults = []Fault{{Src: -1, Dir: "east"}} }), "negative"},
		{"unknown traffic kind", mod(func(s *Scenario) { s.Traffic.Kind = "bursty" }), "unknown traffic kind"},
		{"empty traffic kind", mod(func(s *Scenario) { s.Traffic.Kind = "" }), "unknown traffic kind"},
		{"ur zero rate", mod(func(s *Scenario) { s.Traffic.Rate = 0 }), "rate"},
		{"short frac above one", mod(func(s *Scenario) { s.Traffic.ShortFrac = 1.5 }), "short_frac"},
		{"nuca negative bank delay", mod(func(s *Scenario) { s.Traffic = Traffic{Kind: "nuca", Rate: 0.1, BankDelay: -1} }), "bank_delay"},
		{"hotspot zero hot frac", mod(func(s *Scenario) { s.Traffic = Traffic{Kind: "hotspot", Rate: 0.1} }), "hot_frac"},
		{"hotspot negative hot node", mod(func(s *Scenario) {
			s.Traffic = Traffic{Kind: "hotspot", Rate: 0.1, HotFrac: 0.5, Hot: []int{-3}}
		}), "negative"},
		{"trace unknown workload", mod(func(s *Scenario) {
			s.Traffic = Traffic{Kind: "trace", Workload: "nosuch", TraceCycles: 100}
		}), "workload"},
		{"trace zero cycles", mod(func(s *Scenario) {
			s.Traffic = Traffic{Kind: "trace", Workload: "tpcw"}
		}), "trace_cycles"},
		{"trace bad protocol", mod(func(s *Scenario) {
			s.Traffic = Traffic{Kind: "trace", Workload: "tpcw", TraceCycles: 100, Protocol: "dragon"}
		}), "protocol"},
		{"replay without file", mod(func(s *Scenario) { s.Traffic = Traffic{Kind: "replay"} }), "trace_file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.sc.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", c.sc)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			// An invalid scenario must not elaborate either.
			if _, err := c.sc.Elaborate(); err == nil {
				t.Errorf("Elaborate accepted a scenario Validate rejects")
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []Scenario{
		ur(),
		full(),
		{Arch: "3DM-E", Traffic: Traffic{Kind: "ur", Rate: 0.1}, Measure: 100, ExpressInterval: 3},
		{Arch: "2DB", Traffic: Traffic{Kind: "trace", Workload: "tpcw", TraceCycles: 500, Protocol: "moesi"}, Measure: 100},
		{Arch: "3DB", Traffic: Traffic{Kind: "tornado", Rate: 0.05}, Measure: 100, Routing: "xy"},
	}
	for _, sc := range cases {
		if err := sc.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", sc, err)
		}
	}
}

// TestElaborateBuildErrors covers parameters only checkable against the
// elaborated topology.
func TestElaborateBuildErrors(t *testing.T) {
	sc := ur()
	sc.Traffic = Traffic{Kind: "hotspot", Rate: 0.1, HotFrac: 0.5, Hot: []int{999}}
	if _, err := sc.Elaborate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range hot node not rejected: %v", err)
	}
	sc = ur()
	sc.Traffic = Traffic{Kind: "replay", TraceFile: "testdata/does-not-exist.trace"}
	if _, err := sc.Elaborate(); err == nil {
		t.Error("missing trace file not rejected")
	}
	sc = ur()
	sc.Routing = "westfirst"
	sc.Faults = []Fault{{Src: 999, Dir: "east"}}
	if _, err := sc.Elaborate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-range fault source not rejected: %v", err)
	}
}

// TestNoCConfigOverrides checks every router-level knob reaches the
// simulator configuration.
func TestNoCConfigOverrides(t *testing.T) {
	sc := full()
	d, cfg, err := sc.NoCConfig()
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || cfg.Topo == nil {
		t.Fatal("missing design or topology")
	}
	if cfg.VCs != 4 || cfg.BufDepth != 4 {
		t.Errorf("buffer geometry not applied: VCs=%d depth=%d", cfg.VCs, cfg.BufDepth)
	}
	if cfg.STLTCycles != 2 {
		t.Errorf("STLTCycles = %d, want 2", cfg.STLTCycles)
	}
	if !cfg.LookaheadRC || !cfg.SpecSA || !cfg.QoSPriority {
		t.Error("pipeline options not applied")
	}
	if cfg.Arb != noc.ArbMatrix {
		t.Error("matrix arbiter not applied")
	}
	if cfg.Mode != noc.StepFullScan {
		t.Errorf("step mode = %v, want fullscan", cfg.Mode)
	}
	if cfg.Seed != 7 {
		t.Errorf("seed = %d, want 7", cfg.Seed)
	}
}

// TestElaborateDeterminism: equal scenarios produce bit-identical
// results, and the seed actually matters.
func TestElaborateDeterminism(t *testing.T) {
	run := func(seed int64) noc.Result {
		sc := ur()
		sc.Seed = seed
		res, err := sc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	// The histogram pointer differs; compare the serialized form.
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("equal scenarios diverged:\n%s\n%s", aj, bj)
	}
	c := run(43)
	cj, _ := json.Marshal(c)
	if string(aj) == string(cj) {
		t.Error("different seeds produced identical results")
	}
}

func TestTrafficKindsRegistered(t *testing.T) {
	kinds := TrafficKinds()
	want := []string{"collective", "complement", "hotspot", "nuca", "replay", "tornado", "trace", "transpose", "ur"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("registered kinds = %v, want %v", kinds, want)
	}
}
