package scenario

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"mira/internal/cmp"
	"mira/internal/collective"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/topology"
	"mira/internal/traffic"
)

// Built is a traffic builder's product: the generator to drive the
// simulation, the VC policy the traffic needs (request/response traffic
// must separate classes to stay deadlock-free), and — for the
// trace-backed kinds — the trace and its generation statistics.
type Built struct {
	Gen    noc.Generator
	Policy noc.VCPolicy
	// Trace is the replayed trace ("trace" and "replay" kinds), nil for
	// synthetic traffic.
	Trace *traffic.Trace
	// Stats carries the CMP generation statistics ("trace" kind only).
	Stats cmp.Stats
	// Collective is the closed-loop dependency engine ("collective"
	// kind only); Elaborate wires its delivery callback to the Sim.
	Collective *collective.Engine
}

// Builder constructs one traffic kind. Validate (optional) checks the
// scenario's traffic parameters without elaborating a design; Build
// produces the generator against the elaborated design's topology.
type Builder struct {
	Validate func(sc Scenario) error
	Build    func(sc Scenario, d *core.Design) (Built, error)
}

var (
	trafficMu sync.RWMutex
	builders  = map[string]Builder{}
)

// RegisterTraffic adds (or replaces) a traffic kind. The built-in kinds
// are registered at init; external packages may add their own before
// elaborating scenarios that use them.
func RegisterTraffic(kind string, b Builder) {
	if kind == "" || b.Build == nil {
		panic("scenario: RegisterTraffic needs a kind name and a Build func")
	}
	trafficMu.Lock()
	defer trafficMu.Unlock()
	builders[kind] = b
}

func lookupTraffic(kind string) (Builder, bool) {
	trafficMu.RLock()
	defer trafficMu.RUnlock()
	b, ok := builders[kind]
	return b, ok
}

// TrafficKinds lists the registered kinds, sorted.
func TrafficKinds() []string {
	trafficMu.RLock()
	defer trafficMu.RUnlock()
	kinds := make([]string, 0, len(builders))
	for k := range builders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// shortProfile is the layer-shutdown sampling profile shared by the
// synthetic kinds. Frac 0 draws nothing from the RNG, so a scenario
// without short flits is bit-identical to a generator built with no
// profile at all.
func shortProfile(sc Scenario) traffic.ShortFlitProfile {
	return traffic.ShortFlitProfile{Frac: sc.Traffic.ShortFrac, Layers: core.Layers}
}

func validateRate(sc Scenario) error {
	if sc.Traffic.Rate <= 0 {
		return fmt.Errorf("scenario: traffic kind %q needs rate > 0, got %g", sc.Traffic.Kind, sc.Traffic.Rate)
	}
	if sc.Traffic.ShortFrac < 0 || sc.Traffic.ShortFrac > 1 {
		return fmt.Errorf("scenario: short_frac = %g outside [0, 1]", sc.Traffic.ShortFrac)
	}
	return nil
}

func validateProtocol(p string) (cmp.Protocol, error) {
	switch p {
	case "", "mesi":
		return cmp.MESI, nil
	case "moesi":
		return cmp.MOESI, nil
	}
	return cmp.MESI, fmt.Errorf("scenario: unknown protocol %q (want \"mesi\" or \"moesi\")", p)
}

func init() {
	RegisterTraffic("ur", Builder{
		Validate: validateRate,
		Build: func(sc Scenario, d *core.Design) (Built, error) {
			return Built{
				Gen: &traffic.Uniform{
					Topo:          d.Topo,
					InjectionRate: sc.Traffic.Rate,
					PacketSize:    core.DataPacketFlits,
					ShortFlits:    shortProfile(sc),
				},
				Policy: noc.AnyFree,
			}, nil
		},
	})

	RegisterTraffic("nuca", Builder{
		Validate: func(sc Scenario) error {
			if err := validateRate(sc); err != nil {
				return err
			}
			if sc.Traffic.BankDelay < 0 {
				return fmt.Errorf("scenario: bank_delay = %d, need >= 0", sc.Traffic.BankDelay)
			}
			return nil
		},
		Build: func(sc Scenario, d *core.Design) (Built, error) {
			bank := sc.Traffic.BankDelay
			if bank == 0 {
				bank = 24 // request traversal + L2 bank access
			}
			return Built{
				Gen: &traffic.NUCA{
					Topo:          d.Topo,
					InjectionRate: sc.Traffic.Rate,
					RequestSize:   core.ControlPacketFlits,
					ResponseSize:  core.DataPacketFlits,
					BankDelay:     bank,
					ShortFlits:    shortProfile(sc),
				},
				Policy: noc.ByClass,
			}, nil
		},
	})

	for kind, dst := range map[string]traffic.DstFunc{
		"transpose":  traffic.Transpose,
		"complement": traffic.Complement,
		"tornado":    traffic.Tornado,
	} {
		kind, dst := kind, dst
		RegisterTraffic(kind, Builder{
			Validate: validateRate,
			Build: func(sc Scenario, d *core.Design) (Built, error) {
				gen := &traffic.Permutation{
					Topo:          d.Topo,
					InjectionRate: sc.Traffic.Rate,
					PacketSize:    core.DataPacketFlits,
					Dst:           dst,
					Name:          kind,
				}
				if err := gen.Validate(); err != nil {
					return Built{}, err
				}
				return Built{Gen: gen, Policy: noc.AnyFree}, nil
			},
		})
	}

	RegisterTraffic("hotspot", Builder{
		Validate: func(sc Scenario) error {
			if err := validateRate(sc); err != nil {
				return err
			}
			if sc.Traffic.HotFrac <= 0 || sc.Traffic.HotFrac > 1 {
				return fmt.Errorf("scenario: hotspot needs hot_frac in (0, 1], got %g", sc.Traffic.HotFrac)
			}
			for _, id := range sc.Traffic.Hot {
				if id < 0 {
					return fmt.Errorf("scenario: hot node %d is negative", id)
				}
			}
			return nil
		},
		Build: func(sc Scenario, d *core.Design) (Built, error) {
			var hot []topology.NodeID
			if len(sc.Traffic.Hot) > 0 {
				for _, id := range sc.Traffic.Hot {
					if id >= d.Topo.NumNodes() {
						return Built{}, fmt.Errorf("scenario: hot node %d outside %s's %d nodes",
							id, d.Arch, d.Topo.NumNodes())
					}
					hot = append(hot, topology.NodeID(id))
				}
			} else {
				// Default hot set: the chip centre of the 6-wide
				// floorplans (four nodes on the top layer; degenerates
				// to one node on 3DB's 3x3 layers).
				for _, n := range d.Topo.Nodes() {
					c := n.Coord
					if (c.X == 2 || c.X == 3) && (c.Y == 2 || c.Y == 3) && c.Z == d.Topo.ZDim-1 {
						hot = append(hot, n.ID)
					}
				}
			}
			return Built{
				Gen: &traffic.Hotspot{
					Topo:          d.Topo,
					InjectionRate: sc.Traffic.Rate,
					PacketSize:    core.DataPacketFlits,
					Hot:           hot,
					Frac:          sc.Traffic.HotFrac,
				},
				Policy: noc.AnyFree,
			}, nil
		},
	})

	RegisterTraffic("trace", Builder{
		Validate: func(sc Scenario) error {
			if _, ok := cmp.ByName(sc.Traffic.Workload); !ok {
				return fmt.Errorf("scenario: unknown workload %q", sc.Traffic.Workload)
			}
			if sc.Traffic.TraceCycles <= 0 {
				return fmt.Errorf("scenario: trace kind needs trace_cycles > 0, got %d", sc.Traffic.TraceCycles)
			}
			_, err := validateProtocol(sc.Traffic.Protocol)
			return err
		},
		Build: func(sc Scenario, d *core.Design) (Built, error) {
			w, ok := cmp.ByName(sc.Traffic.Workload)
			if !ok {
				return Built{}, fmt.Errorf("scenario: unknown workload %q", sc.Traffic.Workload)
			}
			proto, err := validateProtocol(sc.Traffic.Protocol)
			if err != nil {
				return Built{}, err
			}
			p := cmp.DefaultParams(w, d.Topo, sc.Seed)
			p.Protocol = proto
			sys, err := cmp.NewSystem(p)
			if err != nil {
				return Built{}, err
			}
			tr, st := sys.Run(sc.Traffic.TraceCycles)
			return Built{
				Gen:    &traffic.Replayer{Trace: tr, Loop: true},
				Policy: noc.ByClass,
				Trace:  tr,
				Stats:  st,
			}, nil
		},
	})

	RegisterTraffic("collective", Builder{
		Validate: func(sc Scenario) error {
			c := sc.Traffic.Collective
			if c == nil {
				return fmt.Errorf("scenario: collective kind needs a traffic.collective block")
			}
			if _, err := collective.ParseAlgorithm(c.Algorithm); err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			if c.Participants < 0 {
				return fmt.Errorf("scenario: collective participants = %d, need >= 0 (0 = all nodes)", c.Participants)
			}
			if c.MessageFlits < 0 {
				return fmt.Errorf("scenario: collective message_flits = %d, need >= 0 (0 = %d)", c.MessageFlits, core.DataPacketFlits)
			}
			if c.Iterations < 0 {
				return fmt.Errorf("scenario: collective iterations = %d, need >= 0 (0 = 1)", c.Iterations)
			}
			if sc.Warmup != 0 {
				return fmt.Errorf("scenario: collective traffic is closed-loop and starts at cycle 0; set warmup to 0, not %d", sc.Warmup)
			}
			return nil
		},
		Build: func(sc Scenario, d *core.Design) (Built, error) {
			c := sc.Traffic.Collective
			flits := c.MessageFlits
			if flits == 0 {
				flits = core.DataPacketFlits
			}
			eng, err := collective.New(d.Topo, collective.Params{
				Algorithm:    collective.Algorithm(c.Algorithm),
				Participants: c.Participants,
				MessageFlits: flits,
				Iterations:   c.Iterations,
			})
			if err != nil {
				return Built{}, err
			}
			return Built{Gen: eng, Policy: noc.AnyFree, Collective: eng}, nil
		},
	})

	RegisterTraffic("replay", Builder{
		Validate: func(sc Scenario) error {
			if sc.Traffic.TraceFile == "" {
				return fmt.Errorf("scenario: replay kind needs trace_file")
			}
			return nil
		},
		Build: func(sc Scenario, d *core.Design) (Built, error) {
			f, err := os.Open(sc.Traffic.TraceFile)
			if err != nil {
				return Built{}, err
			}
			defer f.Close()
			tr, err := traffic.ReadTrace(f)
			if err != nil {
				return Built{}, fmt.Errorf("scenario: %s: %w", sc.Traffic.TraceFile, err)
			}
			for _, e := range tr.Events {
				if int(e.Src) >= d.Topo.NumNodes() || int(e.Dst) >= d.Topo.NumNodes() {
					return Built{}, fmt.Errorf("scenario: trace node outside %s's %d nodes (trace recorded for another arch?)",
						d.Arch, d.Topo.NumNodes())
				}
			}
			return Built{
				Gen:    &traffic.Replayer{Trace: tr, Loop: true},
				Policy: noc.ByClass,
				Trace:  tr,
			}, nil
		},
	})
}
