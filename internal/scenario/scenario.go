// Package scenario is the declarative run-description layer: one
// JSON-serializable Scenario fully specifies a MIRA simulation — the
// architecture, the traffic, the measurement windows, the seed and every
// router-level knob — and Elaborate turns it into a ready
// (Design, Network, Sim) triple. It is the single construction path the
// experiment drivers (internal/exp) and the commands (mirasim,
// mirabench, miratrace) build their simulations through, which is what
// makes runs reproducible from a stored description and lets a batch
// front end (RunBatch) accept work over the wire.
package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/topology"
)

// Traffic describes the workload half of a scenario. Kind selects a
// registered traffic builder (see RegisterTraffic); the remaining fields
// parameterize it and are ignored by kinds that do not use them.
type Traffic struct {
	// Kind names the traffic builder: "ur", "nuca", "transpose",
	// "complement", "tornado", "hotspot", "trace" or "replay" are
	// built in. Empty is allowed only for config-only elaboration
	// (NoCConfig), where traffic is supplied externally, e.g. by the
	// closed-loop CMP co-simulation.
	Kind string `json:"kind"`
	// Rate is the offered load in flits/node/cycle (synthetic kinds).
	Rate float64 `json:"rate,omitempty"`
	// ShortFrac marks this fraction of flits short (1 active layer) for
	// the layer-shutdown studies ("ur" and "nuca").
	ShortFrac float64 `json:"short_frac,omitempty"`
	// Workload names the CMP workload ("trace" kind).
	Workload string `json:"workload,omitempty"`
	// Protocol optionally overrides the coherence protocol for trace
	// generation: "mesi" (default) or "moesi".
	Protocol string `json:"protocol,omitempty"`
	// TraceCycles is the CMP generation window ("trace" kind).
	TraceCycles int64 `json:"trace_cycles,omitempty"`
	// TraceFile is a recorded trace to replay ("replay" kind).
	TraceFile string `json:"trace_file,omitempty"`
	// BankDelay is the L2 bank access latency of the "nuca" kind;
	// 0 means the default 24 cycles (bank access + request traversal).
	BankDelay int64 `json:"bank_delay,omitempty"`
	// HotFrac is the probability a "hotspot" packet targets a hot node.
	HotFrac float64 `json:"hot_frac,omitempty"`
	// Hot lists explicit hotspot node IDs; empty means the chip-centre
	// default (the four centre nodes of the 6-wide floorplans).
	Hot []int `json:"hot,omitempty"`
	// Collective parameterizes the "collective" kind (required for it,
	// ignored otherwise).
	Collective *Collective `json:"collective,omitempty"`
}

// Collective configures the closed-loop collective workload
// (internal/collective): causally-dependent ring/tree overlays where
// each participant sends step k+1 only after its step-k message
// arrives.
type Collective struct {
	// Algorithm is "ring-allreduce", "reduce-scatter" or
	// "tree-broadcast".
	Algorithm string `json:"algorithm"`
	// Participants is the rank count; 0 enrolls every node. Ranks are
	// assigned in snake (boustrophedon) order over the mesh.
	Participants int `json:"participants,omitempty"`
	// MessageFlits sizes each collective message (0 = the 4-flit data
	// packet).
	MessageFlits int `json:"message_flits,omitempty"`
	// Iterations runs that many back-to-back collectives (0 = 1); each
	// starts only after the previous fully completes.
	Iterations int `json:"iterations,omitempty"`
}

// Observe configures the observability layer (internal/obs) for a run.
// Its presence on a scenario attaches a collector during elaboration:
// gauge time series sampled every Window cycles, per-flit latency
// percentiles, and — when the elaborating command requests it — a JSONL
// flit-event trace restricted by the node/class filter.
type Observe struct {
	// Window is the gauge sample window in cycles (0 = the obs
	// package default of 1000).
	Window int64 `json:"window,omitempty"`
	// PerVCNodes lists routers whose individual VC occupancies join the
	// sampled series (empty: per-router totals only).
	PerVCNodes []int `json:"per_vc_nodes,omitempty"`
	// TraceNodes restricts the flit-event trace to events at these
	// routers (empty: all routers).
	TraceNodes []int `json:"trace_nodes,omitempty"`
	// TraceClass restricts the trace to one message class: "control",
	// "data", or "" for both.
	TraceClass string `json:"trace_class,omitempty"`
	// Spans enables live per-flit span building (obs.SpanBuilder):
	// per-hop stage decomposition and the latency attribution tables
	// behind mirasim -attrib and mirabench obs-stages.
	Spans bool `json:"spans,omitempty"`
	// Engine enables engine self-telemetry (obs.EngineCollector):
	// per-shard wall-time, worker-pool utilization, cycles/sec with ETA
	// and Go runtime stats, sampled on a wall-clock ticker. Strictly
	// out-of-band — simulated results are bit-identical either way.
	Engine bool `json:"engine,omitempty"`
	// EngineIntervalMs overrides the engine sampling period in
	// milliseconds (0 = the obs package default of 500).
	EngineIntervalMs int64 `json:"engine_interval_ms,omitempty"`
}

// Fault is a serializable failed link for the fault-tolerant routing
// study: the link leaving node Src in direction Dir is down.
type Fault struct {
	Src int    `json:"src"`
	Dir string `json:"dir"` // "east", "west", "north", "south", "up", "down"
}

// Scenario is the complete, serializable description of one simulation
// run. The zero value of every optional field means "architecture
// default", so a minimal scenario is just arch + traffic + windows +
// seed.
type Scenario struct {
	// Arch names the router architecture: 2DB, 3DB, 3DM, 3DM(NC),
	// 3DM-E or 3DM-E(NC).
	Arch string `json:"arch"`
	// Traffic selects and parameterizes the workload.
	Traffic Traffic `json:"traffic"`

	// Warmup/Measure/Drain are the simulation windows in cycles:
	// warm-up is simulated unmeasured, packets created during the
	// measure window are tracked, and drain bounds the completion phase.
	Warmup  int64 `json:"warmup"`
	Measure int64 `json:"measure"`
	Drain   int64 `json:"drain"`
	// Seed feeds every random stream of the run (injection, trace
	// generation); equal scenarios are bit-identical.
	Seed int64 `json:"seed"`
	// StepMode selects the cycle-loop strategy: "activity" (default,
	// also ""), "fullscan" or "checked". All modes simulate
	// identically; they differ only in host cost.
	StepMode string `json:"step_mode,omitempty"`
	// Shards partitions the mesh into contiguous router-ID ranges
	// stepped concurrently inside each cycle. 0 or 1 steps
	// sequentially; -1 picks a count from the mesh size and GOMAXPROCS
	// (noc.AutoShards); results are bit-identical at any value (the
	// knob trades host cores for wall clock, composing with
	// per-experiment -workers parallelism).
	Shards int `json:"shards,omitempty"`

	// VCs/BufDepth override the input-buffer geometry for design-space
	// ablations; 0 keeps the architecture's 2 VCs x 8 flits.
	VCs      int `json:"vcs,omitempty"`
	BufDepth int `json:"buf_depth,omitempty"`
	// STLTCycles forces the switch+link traversal depth (1 or 2);
	// 0 keeps the delay-model-validated value.
	STLTCycles int `json:"stlt_cycles,omitempty"`
	// ExpressInterval overrides the express-channel hop span of the
	// 3DM-E fabrics (0 keeps the paper's interval of 2).
	ExpressInterval int `json:"express_interval,omitempty"`

	// Chips, when present, replaces the architecture's on-chip fabric
	// with a multi-chip chiplet grid: ChipsX x ChipsY identical mesh
	// dies joined by die-to-die links (topology.NewChipGrid). The
	// architecture still sets the router pipeline and link pitch; the
	// grid sets the floorplan. Mutually exclusive with ExpressInterval.
	Chips *Chips `json:"chips,omitempty"`

	// Pipeline and allocator options (Figure 8 family).
	LookaheadRC bool `json:"lookahead_rc,omitempty"`
	SpecSA      bool `json:"spec_sa,omitempty"`
	QoSPriority bool `json:"qos_priority,omitempty"`
	MatrixArb   bool `json:"matrix_arb,omitempty"`

	// Routing overrides the routing algorithm: "" or "xy" for the
	// architecture default, "westfirst" for fault-tolerant west-first
	// routing (required when Faults is non-empty).
	Routing string  `json:"routing,omitempty"`
	Faults  []Fault `json:"faults,omitempty"`

	// Observe, when present, attaches the observability collector
	// (internal/obs) to the elaborated simulation.
	Observe *Observe `json:"observe,omitempty"`
}

// Chips serializes a chiplet-grid floorplan: a chips_x x chips_y array
// of nodes_x x nodes_y mesh dies. D2D timing fields default to 1-cycle
// full-width channels, making the grid behave like one large mesh.
type Chips struct {
	ChipsX int `json:"chips_x"`
	ChipsY int `json:"chips_y"`
	NodesX int `json:"nodes_x"`
	NodesY int `json:"nodes_y"`
	// D2DLatency is the die-to-die channel traversal latency in cycles
	// (0 = 1). D2DSerCycles is the serialization factor of a narrow d2d
	// channel — the cycles one flit occupies the link (0 or 1 = full
	// width).
	D2DLatency   int `json:"d2d_latency,omitempty"`
	D2DSerCycles int `json:"d2d_ser_cycles,omitempty"`
	// Express adds full-width inter-chip express channels between
	// matching boundary nodes of adjacent chips; ExpressLatency
	// overrides their latency (0 = D2DLatency).
	Express        bool `json:"express,omitempty"`
	ExpressLatency int  `json:"express_latency,omitempty"`
}

// spec converts the JSON block to a topology builder spec; pitch is the
// elaborated architecture's on-chip link length.
func (c *Chips) spec(pitchMM float64) topology.ChipGridSpec {
	return topology.ChipGridSpec{
		ChipsX: c.ChipsX, ChipsY: c.ChipsY,
		NodesX: c.NodesX, NodesY: c.NodesY,
		PitchMM:      pitchMM,
		D2DLatency:   c.D2DLatency,
		D2DSerCycles: c.D2DSerCycles,
		Express:      c.Express, ExpressLatency: c.ExpressLatency,
	}
}

// ArchByName resolves an architecture name.
func ArchByName(name string) (core.Arch, error) {
	for _, a := range core.Archs {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown architecture %q", name)
}

// parseDir resolves a serialized link direction.
func parseDir(s string) (topology.Dir, error) {
	switch strings.ToLower(s) {
	case "east":
		return topology.East, nil
	case "west":
		return topology.West, nil
	case "north":
		return topology.North, nil
	case "south":
		return topology.South, nil
	case "up":
		return topology.Up, nil
	case "down":
		return topology.Down, nil
	}
	return 0, fmt.Errorf("scenario: unknown link direction %q", s)
}

// validateCore checks everything except the traffic description (used
// by both Validate and the config-only NoCConfig path).
func (s Scenario) validateCore() error {
	if _, err := ArchByName(s.Arch); err != nil {
		return err
	}
	if s.Warmup < 0 || s.Measure <= 0 || s.Drain < 0 {
		return fmt.Errorf("scenario: windows warmup=%d measure=%d drain=%d (need warmup,drain >= 0 and measure > 0)",
			s.Warmup, s.Measure, s.Drain)
	}
	if _, err := noc.ParseStepMode(s.StepMode); err != nil {
		return err
	}
	if s.Shards < noc.AutoShards {
		return fmt.Errorf("scenario: shards = %d, need >= -1 (-1 = auto)", s.Shards)
	}
	if s.VCs < 0 || s.BufDepth < 0 {
		return fmt.Errorf("scenario: negative buffer geometry vcs=%d buf_depth=%d", s.VCs, s.BufDepth)
	}
	if s.STLTCycles < 0 || s.STLTCycles > 2 {
		return fmt.Errorf("scenario: stlt_cycles = %d, want 0 (default), 1 or 2", s.STLTCycles)
	}
	if s.ExpressInterval != 0 {
		if s.ExpressInterval < 2 {
			return fmt.Errorf("scenario: express_interval = %d, need >= 2", s.ExpressInterval)
		}
		if s.Arch != core.Arch3DME.String() && s.Arch != core.Arch3DMENC.String() {
			return fmt.Errorf("scenario: express_interval applies only to the 3DM-E fabrics, not %s", s.Arch)
		}
	}
	if c := s.Chips; c != nil {
		if s.ExpressInterval != 0 {
			return fmt.Errorf("scenario: chips and express_interval both rebuild the fabric; set at most one")
		}
		// Pitch is irrelevant to spec validity; 1 is a placeholder.
		if err := c.spec(1).Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	switch s.Routing {
	case "", "xy", "westfirst":
	default:
		return fmt.Errorf("scenario: unknown routing %q (want \"\", \"xy\" or \"westfirst\")", s.Routing)
	}
	if len(s.Faults) > 0 && s.Routing != "westfirst" {
		return fmt.Errorf("scenario: link faults require westfirst routing")
	}
	for _, f := range s.Faults {
		if _, err := parseDir(f.Dir); err != nil {
			return err
		}
		if f.Src < 0 {
			return fmt.Errorf("scenario: fault source node %d is negative", f.Src)
		}
	}
	if o := s.Observe; o != nil {
		if o.Window < 0 {
			return fmt.Errorf("scenario: observe window %d is negative", o.Window)
		}
		if o.EngineIntervalMs < 0 {
			return fmt.Errorf("scenario: observe engine_interval_ms %d is negative", o.EngineIntervalMs)
		}
		switch o.TraceClass {
		case "", noc.Control.String(), noc.Data.String():
		default:
			return fmt.Errorf("scenario: observe trace_class %q (want \"\", %q or %q)",
				o.TraceClass, noc.Control, noc.Data)
		}
		for _, lists := range [][]int{o.PerVCNodes, o.TraceNodes} {
			for _, n := range lists {
				if n < 0 {
					return fmt.Errorf("scenario: observe node %d is negative", n)
				}
			}
		}
	}
	return nil
}

// Validate checks the scenario is fully specified and internally
// consistent: a known architecture, a registered traffic kind whose
// parameters pass the kind's own checks, sane windows and overrides.
// Elaborate validates implicitly; RunBatch rejects invalid scenarios
// per entry instead of failing the batch.
func (s Scenario) Validate() error {
	if err := s.validateCore(); err != nil {
		return err
	}
	b, ok := lookupTraffic(s.Traffic.Kind)
	if !ok {
		return fmt.Errorf("scenario: unknown traffic kind %q (registered: %s)",
			s.Traffic.Kind, strings.Join(TrafficKinds(), ", "))
	}
	if b.Validate != nil {
		if err := b.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// MarshalIndent renders the scenario as formatted JSON.
func (s Scenario) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Decode parses one JSON scenario.
func Decode(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}
