package scenario

import (
	"context"
	"fmt"
	"time"

	"mira/internal/cmp"
	"mira/internal/collective"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/routing"
	"mira/internal/topology"
	"mira/internal/traffic"
)

// Elaboration is the ready-to-run product of a scenario: the elaborated
// design, the simulator configuration derived from it, and the network,
// generator and simulation wired together. Everything is freshly built
// and owned by this elaboration — nothing is shared with other runs, so
// elaborations are safe to execute concurrently.
type Elaboration struct {
	Scenario Scenario
	Design   *core.Design
	Config   noc.Config
	Net      *noc.Network
	Gen      noc.Generator
	Sim      *noc.Sim
	// Trace and Stats are populated by the trace-backed traffic kinds.
	Trace *traffic.Trace
	Stats cmp.Stats
	// Collective is the closed-loop dependency engine ("collective"
	// traffic), already wired to the Sim's delivery callback; read its
	// Summary/StepTable/Report after the run.
	Collective *collective.Engine
	// Obs is the attached observability collector, present iff the
	// scenario carries an Observe block. Callers that want a flit-event
	// trace call Obs.SetTraceWriter before running and Obs.Close after.
	Obs *obs.Collector
}

// NoCConfig elaborates the design and simulator configuration without
// building traffic: the architecture with every scenario override
// applied (buffer geometry, pipeline options, step mode, routing,
// express interval). The returned config has no VC policy or generator
// yet — callers that drive the network themselves (e.g. the closed-loop
// CMP co-simulation) set the policy and go; Elaborate layers the
// traffic on top.
func (s Scenario) NoCConfig() (*core.Design, noc.Config, error) {
	if err := s.validateCore(); err != nil {
		return nil, noc.Config{}, err
	}
	arch, err := ArchByName(s.Arch)
	if err != nil {
		return nil, noc.Config{}, err
	}
	d, err := core.NewDesign(arch)
	if err != nil {
		return nil, noc.Config{}, err
	}
	if s.ExpressInterval != 0 {
		// A non-default express interval rebuilds the fabric: same
		// 6x6 NUCA floorplan, different express-channel span.
		topo := topology.NewExpressMesh2D(6, 6, core.Pitch3DMMM, s.ExpressInterval)
		if err := topology.ApplyNUCALayout2D(topo); err != nil {
			return nil, noc.Config{}, err
		}
		d.Topo = topo
		d.Alg = routing.Express{}
	}
	if c := s.Chips; c != nil {
		// A chiplet grid replaces the floorplan wholesale; the
		// architecture keeps setting the router pipeline and the on-chip
		// link pitch the grid tiles with. ForTopology resolves to
		// chip-boundary-aware DOR (ChipDOR).
		d.Topo = topology.NewChipGrid(c.spec(d.LinkLenMM))
		d.Alg = routing.ForTopology(d.Topo)
	}

	cfg := d.NoCConfig(noc.AnyFree, s.Seed)
	if s.VCs > 0 {
		cfg.VCs = s.VCs
	}
	if s.BufDepth > 0 {
		cfg.BufDepth = s.BufDepth
	}
	if s.STLTCycles > 0 {
		cfg.STLTCycles = s.STLTCycles
	}
	cfg.LookaheadRC = s.LookaheadRC
	cfg.SpecSA = s.SpecSA
	cfg.QoSPriority = s.QoSPriority
	if s.MatrixArb {
		cfg.Arb = noc.ArbMatrix
	}
	mode, err := noc.ParseStepMode(s.StepMode)
	if err != nil {
		return nil, noc.Config{}, err
	}
	cfg.Mode = mode
	cfg.Shards = s.Shards

	switch s.Routing {
	case "xy":
		cfg.Alg = routing.XY{}
	case "westfirst":
		var faults []routing.LinkFault
		for _, f := range s.Faults {
			if f.Src >= d.Topo.NumNodes() {
				return nil, noc.Config{}, fmt.Errorf("scenario: fault source node %d outside %s's %d nodes",
					f.Src, d.Arch, d.Topo.NumNodes())
			}
			dir, err := parseDir(f.Dir)
			if err != nil {
				return nil, noc.Config{}, err
			}
			faults = append(faults, routing.LinkFault{Src: topology.NodeID(f.Src), Dir: dir})
		}
		alg, err := routing.NewWestFirst(d.Topo, faults)
		if err != nil {
			return nil, noc.Config{}, err
		}
		cfg.Alg = alg
	}
	return d, cfg, nil
}

// Elaborate validates the scenario and builds the full simulation:
// design, traffic generator, network and Sim. It is the only
// construction path from a run description to a runnable simulation;
// the experiment drivers and all commands go through here.
func (s Scenario) Elaborate() (*Elaboration, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d, cfg, err := s.NoCConfig()
	if err != nil {
		return nil, err
	}
	b, ok := lookupTraffic(s.Traffic.Kind)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown traffic kind %q", s.Traffic.Kind)
	}
	built, err := b.Build(s, d)
	if err != nil {
		return nil, err
	}
	cfg.Policy = built.Policy
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	net := noc.NewNetwork(cfg)
	sim := noc.NewSim(net, built.Gen)
	sim.Params = noc.SimParams{Warmup: s.Warmup, Measure: s.Measure, DrainMax: s.Drain}
	if built.Collective != nil {
		// Closed-loop traffic: deliveries unlock dependent sends.
		sim.OnEject = built.Collective.OnDeliver
	}
	e := &Elaboration{
		Scenario:   s,
		Design:     d,
		Config:     cfg,
		Net:        net,
		Gen:        built.Gen,
		Sim:        sim,
		Trace:      built.Trace,
		Stats:      built.Stats,
		Collective: built.Collective,
	}
	if o := s.Observe; o != nil {
		for _, lists := range [][]int{o.PerVCNodes, o.TraceNodes} {
			for _, n := range lists {
				if n >= d.Topo.NumNodes() {
					return nil, fmt.Errorf("scenario: observe node %d outside %s's %d nodes",
						n, d.Arch, d.Topo.NumNodes())
				}
			}
		}
		e.Obs = obs.New(net, obs.Config{
			Window:         o.Window,
			PerVCNodes:     o.PerVCNodes,
			TraceNodes:     o.TraceNodes,
			TraceClass:     o.TraceClass,
			Spans:          o.Spans,
			Engine:         o.Engine,
			EngineInterval: time.Duration(o.EngineIntervalMs) * time.Millisecond,
			EngineLabel:    fmt.Sprintf("%s/%s", s.Arch, s.Traffic.Kind),
		})
		e.Obs.Attach(sim)
	}
	return e, nil
}

// Run elaborates and executes the scenario under the context. The
// result is partial (Result.Canceled) if the context ends first.
func (s Scenario) Run(ctx context.Context) (noc.Result, error) {
	e, err := s.Elaborate()
	if err != nil {
		return noc.Result{}, err
	}
	return e.Sim.Run(ctx), nil
}
