package scenario

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/noc"
)

// countdownCtx is a deterministic cancellation source: Err reports the
// context canceled after a fixed number of polls. Sim.Run polls its
// context once per CancelCheckStride cycles, so the countdown pins the
// exact simulated cycle the cancellation lands on — no wall-clock races,
// which keeps these regressions meaningful under -race.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	polls int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.polls <= 0 {
		return context.Canceled
	}
	c.polls--
	return nil
}

// longUR is a scenario whose windows are far too long to ever finish in
// a test; only cancellation ends it.
func longUR() Scenario {
	return Scenario{
		Arch:    "2DB",
		Traffic: Traffic{Kind: "ur", Rate: 0.2},
		Warmup:  0, Measure: 1 << 40, Drain: 0, Seed: 1,
	}
}

// TestRunCanceledBeforeStart: an already-canceled context stops the run
// at the very first stride check — zero cycles simulated, zero packets.
func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := longUR().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Error("Canceled not set")
	}
	if res.Cycles != 0 || res.Generated != 0 {
		t.Errorf("pre-canceled run simulated work: cycles=%d generated=%d", res.Cycles, res.Generated)
	}
	if res.Saturated {
		t.Error("a canceled run must not be reported as saturated")
	}
}

// TestRunCanceledMidMeasure: cancellation landing inside the
// measurement window returns within one stride with the partial
// counters accumulated so far.
func TestRunCanceledMidMeasure(t *testing.T) {
	const strides = 4
	e, err := longUR().Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	res := e.Sim.Run(&countdownCtx{Context: context.Background(), polls: strides})
	if !res.Canceled {
		t.Fatal("Canceled not set")
	}
	// The run polls at cycles 0, S, 2S, ... and stops at the first
	// failing poll, i.e. after exactly strides*S simulated cycles.
	if want := int64(strides * noc.CancelCheckStride); res.Cycles != want {
		t.Errorf("partial window = %d cycles, want %d (stop within one stride)", res.Cycles, want)
	}
	if res.Generated == 0 || res.Ejected == 0 {
		t.Errorf("partial counters empty: generated=%d ejected=%d", res.Generated, res.Ejected)
	}
	if res.AvgLatency <= 0 {
		t.Errorf("partial averages missing: lat=%.2f", res.AvgLatency)
	}
	if res.Counters.XbarFlits == 0 || res.Counters.BufWrites == 0 {
		t.Error("activity counters were not snapshotted on cancel")
	}
	if res.Saturated {
		t.Error("saturation must not be inferred from a canceled run")
	}
}

// TestRunCanceledDuringWarmup: cancellation before the measurement
// window starts yields no measured cycles (warm-up activity must not
// leak into the counters).
func TestRunCanceledDuringWarmup(t *testing.T) {
	sc := longUR()
	sc.Warmup = 1 << 40
	e, err := sc.Elaborate()
	if err != nil {
		t.Fatal(err)
	}
	res := e.Sim.Run(&countdownCtx{Context: context.Background(), polls: 2})
	if !res.Canceled {
		t.Fatal("Canceled not set")
	}
	if res.Cycles != 0 || res.Generated != 0 {
		t.Errorf("warm-up cancellation leaked a measured window: cycles=%d generated=%d", res.Cycles, res.Generated)
	}
}

// TestRunBatchCancel: canceling the batch context stops dispatch, ends
// in-flight runs within a stride, and every worker exits (RunBatch
// returning at all is the exit proof; the deadline bounds it).
func TestRunBatchCancel(t *testing.T) {
	scs := make([]Scenario, 8)
	for i := range scs {
		scs[i] = longUR()
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()

	done := make(chan []BatchResult, 1)
	go func() { done <- RunBatch(ctx, scs, BatchOptions{Workers: 2}) }()
	var out []BatchResult
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunBatch did not return after cancellation: workers stuck")
	}
	ran, skipped := 0, 0
	for _, br := range out {
		switch {
		case br.Err != "":
			if !strings.Contains(br.Err, "canceled") {
				t.Errorf("entry %d: unexpected error %q", br.Index, br.Err)
			}
			skipped++
		case br.Result.Canceled:
			ran++
		default:
			t.Errorf("entry %d completed a %d-cycle run; cancellation did not reach it", br.Index, scs[0].Measure)
		}
	}
	if ran == 0 {
		t.Error("no in-flight run reported a partial canceled result")
	}
	if skipped == 0 {
		t.Error("no queued scenario was skipped; cancellation arrived too late to test dispatch")
	}
}

// TestRunBatchPrecanceled: nothing runs, every entry says why.
func TestRunBatchPrecanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := RunBatch(ctx, []Scenario{longUR(), longUR()}, BatchOptions{Workers: 2})
	for _, br := range out {
		if !strings.Contains(br.Err, "canceled before") {
			t.Errorf("entry %d: err = %q, want the never-started marker", br.Index, br.Err)
		}
	}
}

// TestRunBatchTimeout: the per-run timeout cancels an over-budget run
// without failing the batch entry.
func TestRunBatchTimeout(t *testing.T) {
	out := RunBatch(context.Background(), []Scenario{longUR()}, BatchOptions{
		Workers: 1, Timeout: 30 * time.Millisecond,
	})
	if out[0].Err != "" {
		t.Fatalf("timeout should yield a partial result, not an error: %q", out[0].Err)
	}
	if !out[0].Result.Canceled {
		t.Error("over-budget run not marked Canceled")
	}
}

// TestRunBatchMixedValidity: invalid entries fail individually while
// valid ones complete.
func TestRunBatchMixedValidity(t *testing.T) {
	good := ur()
	bad := ur()
	bad.Arch = "4DX"
	out := RunBatch(context.Background(), []Scenario{good, bad}, BatchOptions{Workers: 2})
	if out[0].Err != "" || out[0].Result.Ejected == 0 {
		t.Errorf("valid entry failed: err=%q ejected=%d", out[0].Err, out[0].Result.Ejected)
	}
	if out[1].Err == "" || !strings.Contains(out[1].Err, "unknown architecture") {
		t.Errorf("invalid entry err = %q", out[1].Err)
	}
}

// TestRunBatchJSON: the serialized entry points accept both a single
// object and an array, and return decodable results in input order.
func TestRunBatchJSON(t *testing.T) {
	sc := ur()
	data, err := sc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := RunBatchJSON(context.Background(), strings.NewReader(string(data)), &buf, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	out := decodeBatch(t, buf.String())
	if len(out) != 1 || out[0].Err != "" || out[0].Result.Ejected == 0 {
		t.Errorf("single-object batch = %+v", out)
	}

	buf.Reset()
	arr := "[" + string(data) + "," + string(data) + "]"
	if err := RunBatchJSON(context.Background(), strings.NewReader(arr), &buf, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	out = decodeBatch(t, buf.String())
	if len(out) != 2 || out[0].Index != 0 || out[1].Index != 1 {
		t.Errorf("array batch order wrong: %+v", out)
	}

	if err := RunBatchJSON(context.Background(), strings.NewReader("not json"), &buf, BatchOptions{}); err == nil {
		t.Error("malformed batch input accepted")
	}
}

func decodeBatch(t *testing.T, s string) []BatchResult {
	t.Helper()
	var out []BatchResult
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		t.Fatalf("batch output not decodable: %v\n%s", err, s)
	}
	return out
}
