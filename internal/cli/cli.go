// Package cli carries the shared command-line plumbing of the mira
// binaries (mirasim, mirabench, miratrace): structured logging setup on
// top of log/slog. Diagnostics — progress, warnings, errors — go to
// stderr through the configured handler; result output (tables, CSV,
// JSON) stays on stdout untouched, so the byte-determinism checks CI
// runs on command output are unaffected by log level or format.
package cli

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
)

// LogFlags is the standard pair of logging flags. Register with
// flag.StringVar/BoolVar and pass to Setup after flag.Parse.
type LogFlags struct {
	// Level is the minimum level: "debug", "info", "warn" or "error".
	Level string
	// JSON switches the handler from human-readable text to one JSON
	// object per line.
	JSON bool
}

// RegisterFlags registers the standard -loglevel and -logjson flags on
// fs, storing into f.
func RegisterFlags(fs *flag.FlagSet, f *LogFlags) {
	fs.StringVar(&f.Level, "loglevel", "info", "diagnostic log level: debug, info, warn or error")
	fs.BoolVar(&f.JSON, "logjson", false, "emit diagnostics as JSON lines instead of text")
}

// Setup installs the process-wide slog default writing to stderr.
func Setup(f LogFlags) error {
	var lv slog.Level
	if f.Level == "" {
		f.Level = "info"
	}
	if err := lv.UnmarshalText([]byte(f.Level)); err != nil {
		return fmt.Errorf("cli: bad log level %q: %w", f.Level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if f.JSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// Fatal logs err at error level with the command's name and exits
// nonzero — the slog replacement for fmt.Fprintf(os.Stderr)+os.Exit.
func Fatal(cmd string, err error) {
	slog.Error("fatal", "cmd", cmd, "err", err)
	os.Exit(1)
}
