// Package cmp is the NUCA chip-multiprocessor substrate that generates
// the paper's "MP trace" workloads. The paper drove its NoC with memory
// traces captured from Simics running commercial and scientific
// applications (§4.1.2); Simics and those traces are unavailable, so
// this package reproduces the pipeline that created them:
//
//	synthetic per-workload address streams -> private L1 caches ->
//	MESI directory protocol over SNUCA-mapped L2 banks -> network
//	messages (requests, responses, invalidations, write-backs, acks)
//
// recorded as a traffic.Trace with per-flit data payloads whose word
// patterns follow the workload's frequent-pattern profile (Figure 1),
// which in turn determines the short-flit statistics (Figure 13 (a)).
// The NoC only observes (cycle, src, dst, size, class, layer) tuples, so
// matching these distributions exercises the same router code paths as
// the original traces.
package cmp

import "mira/internal/traffic"

// Workload is a synthetic application model. The profile constants are
// calibrated so the resulting traces reproduce the published per-
// application data-pattern mix (Figure 1: 20-60 % of data words are
// all-0/all-1) and short-flit percentages (Figure 13 (a): up to ~58 %,
// ~40 % on average across the six presented applications).
type Workload struct {
	Name string
	// Intensity is the probability a CPU issues a memory access each
	// cycle (the L1 access rate of the workload's dominant phase).
	Intensity float64
	// ReadFrac is the fraction of accesses that are loads.
	ReadFrac float64
	// WorkingSetLines is the per-CPU private working set in cache
	// lines; SharedLines is the size of the globally shared region.
	WorkingSetLines int
	SharedLines     int
	// SharedFrac is the probability an access touches the shared
	// region (driving invalidation/forwarding traffic); SeqFrac the
	// probability of a sequential (next-line) access.
	SharedFrac float64
	SeqFrac    float64
	// ReuseFrac is the probability an access re-references one of the
	// CPU's recently touched lines (temporal locality); reused lines
	// almost always hit in the L1, so the post-L1 miss traffic scales
	// with Intensity*(1-ReuseFrac).
	ReuseFrac float64
	// L2MissFrac is the fraction of L2 accesses that miss to memory
	// (adds DRAM latency to the response timestamp).
	L2MissFrac float64
	// Patterns gives the word-level frequent-pattern probabilities of
	// data payloads. Its Zero+One mass controls the short-flit rate:
	// a 4-flit line is short per-flit when all three upper words are
	// redundant.
	Patterns traffic.PatternProfile
}

// Workloads is the application suite of §4.1.2. The six entries the
// paper presents in its figures come first; the remaining entries cover
// the rest of the suite for the Figure 1 reproduction.
var Workloads = []Workload{
	// Commercial server workloads: pointer-heavy, small integers and
	// NULLs everywhere, so data words are highly redundant.
	{Name: "tpcw", Intensity: 0.108, ReadFrac: 0.72, WorkingSetLines: 8192, SharedLines: 2048,
		ReuseFrac: 0.50, SharedFrac: 0.22, SeqFrac: 0.25, L2MissFrac: 0.06,
		Patterns: traffic.PatternProfile{Zero: 0.68, One: 0.12, Freq: 0.08}},
	{Name: "sjbb", Intensity: 0.099, ReadFrac: 0.70, WorkingSetLines: 8192, SharedLines: 1536,
		ReuseFrac: 0.50, SharedFrac: 0.18, SeqFrac: 0.30, L2MissFrac: 0.05,
		Patterns: traffic.PatternProfile{Zero: 0.62, One: 0.10, Freq: 0.10}},
	{Name: "apache", Intensity: 0.090, ReadFrac: 0.75, WorkingSetLines: 6144, SharedLines: 1024,
		ReuseFrac: 0.50, SharedFrac: 0.15, SeqFrac: 0.40, L2MissFrac: 0.05,
		Patterns: traffic.PatternProfile{Zero: 0.55, One: 0.10, Freq: 0.12}},
	{Name: "zeus", Intensity: 0.086, ReadFrac: 0.74, WorkingSetLines: 6144, SharedLines: 1024,
		ReuseFrac: 0.50, SharedFrac: 0.14, SeqFrac: 0.42, L2MissFrac: 0.05,
		Patterns: traffic.PatternProfile{Zero: 0.52, One: 0.09, Freq: 0.12}},
	// Scientific workloads: dense floating-point data, far fewer
	// redundant words.
	{Name: "barnes", Intensity: 0.072, ReadFrac: 0.65, WorkingSetLines: 12288, SharedLines: 3072,
		ReuseFrac: 0.50, SharedFrac: 0.30, SeqFrac: 0.20, L2MissFrac: 0.08,
		Patterns: traffic.PatternProfile{Zero: 0.38, One: 0.06, Freq: 0.10}},
	{Name: "ocean", Intensity: 0.126, ReadFrac: 0.60, WorkingSetLines: 16384, SharedLines: 4096,
		ReuseFrac: 0.50, SharedFrac: 0.25, SeqFrac: 0.55, L2MissFrac: 0.12,
		Patterns: traffic.PatternProfile{Zero: 0.30, One: 0.04, Freq: 0.10}},
	// Remaining suite members (Figure 1 is shown for all applications).
	{Name: "apsi", Intensity: 0.081, ReadFrac: 0.68, WorkingSetLines: 10240, SharedLines: 2048,
		ReuseFrac: 0.50, SharedFrac: 0.20, SeqFrac: 0.50, L2MissFrac: 0.08,
		Patterns: traffic.PatternProfile{Zero: 0.42, One: 0.05, Freq: 0.10}},
	{Name: "art", Intensity: 0.117, ReadFrac: 0.78, WorkingSetLines: 14336, SharedLines: 2048,
		ReuseFrac: 0.50, SharedFrac: 0.15, SeqFrac: 0.60, L2MissFrac: 0.15,
		Patterns: traffic.PatternProfile{Zero: 0.47, One: 0.05, Freq: 0.08}},
	{Name: "swim", Intensity: 0.108, ReadFrac: 0.62, WorkingSetLines: 16384, SharedLines: 3072,
		ReuseFrac: 0.50, SharedFrac: 0.18, SeqFrac: 0.65, L2MissFrac: 0.14,
		Patterns: traffic.PatternProfile{Zero: 0.34, One: 0.04, Freq: 0.09}},
	{Name: "mgrid", Intensity: 0.099, ReadFrac: 0.64, WorkingSetLines: 14336, SharedLines: 2560,
		ReuseFrac: 0.50, SharedFrac: 0.17, SeqFrac: 0.62, L2MissFrac: 0.13,
		Patterns: traffic.PatternProfile{Zero: 0.36, One: 0.05, Freq: 0.09}},
	{Name: "multimedia", Intensity: 0.104, ReadFrac: 0.70, WorkingSetLines: 8192, SharedLines: 512,
		ReuseFrac: 0.50, SharedFrac: 0.06, SeqFrac: 0.70, L2MissFrac: 0.10,
		Patterns: traffic.PatternProfile{Zero: 0.45, One: 0.08, Freq: 0.15}},
}

// Presented is the subset of workloads the paper's latency/power figures
// use ("we present results using only six of them").
var Presented = []string{"tpcw", "sjbb", "apache", "zeus", "barnes", "ocean"}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
