package cmp

import (
	"fmt"
	"math/rand"

	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/topology"
	"mira/internal/traffic"
)

// MsgKind classifies coherence messages for the Figure 2 packet-type
// distribution.
type MsgKind uint8

// Message kinds. GetS/GetX/Upgrade/Inv/Fwd/Ack are single-flit control
// packets; Data and WriteBack carry a cache line.
const (
	KindGetS MsgKind = iota
	KindGetX
	KindUpgrade
	KindInv
	KindFwd
	KindAck
	KindData
	KindWriteBack
	NumKinds
)

var kindNames = [...]string{"GetS", "GetX", "Upgrade", "Inv", "Fwd", "Ack", "Data", "WriteBack"}

func (k MsgKind) String() string { return kindNames[k] }

// IsData reports whether the message carries a full cache line.
func (k MsgKind) IsData() bool { return k == KindData || k == KindWriteBack }

// Params configures a CMP trace generation run.
type Params struct {
	Workload Workload
	// Topo supplies the CPU and cache-bank node placement (Figure 10
	// layouts); it must have 8 CPUs and 28 caches.
	Topo *topology.Topology
	Seed int64
	// ReqNetLat approximates the network traversal a request sees
	// before reaching its home bank (the trace is generated open-loop,
	// exactly like the paper's Simics-then-NoC methodology). BankLat
	// and MemLat are the L2 bank and DRAM access times of Table 4.
	ReqNetLat int64
	BankLat   int64
	MemLat    int64
	// MaxOutstanding bounds in-flight misses per CPU (Table 4: 16).
	MaxOutstanding int
	// Protocol selects MESI (the paper's protocol, the zero value) or
	// MOESI.
	Protocol Protocol
}

// DefaultParams returns the Table 4 configuration for a workload.
func DefaultParams(w Workload, topo *topology.Topology, seed int64) Params {
	return Params{
		Workload: w, Topo: topo, Seed: seed,
		ReqNetLat: 20, BankLat: 4, MemLat: 400, MaxOutstanding: 16,
	}
}

// Stats summarizes one generation run.
type Stats struct {
	Accesses, L1Hits, L1Misses int64
	Upgrades                   int64
	KindCounts                 [NumKinds]int64
	WordCounts                 [traffic.NumPatterns]int64
	ShortFlits, TotalFlits     int64
}

// ShortFlitPct returns the percentage of generated flits that need only
// the top layer (Figure 13 (a)).
func (s *Stats) ShortFlitPct() float64 {
	if s.TotalFlits == 0 {
		return 0
	}
	return 100 * float64(s.ShortFlits) / float64(s.TotalFlits)
}

// ControlPacketFrac returns the fraction of packets that are control
// (address/coherence) packets — the Figure 2 quantity.
func (s *Stats) ControlPacketFrac() float64 {
	var ctrl, total int64
	for k := MsgKind(0); k < NumKinds; k++ {
		total += s.KindCounts[k]
		if !k.IsData() {
			ctrl += s.KindCounts[k]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ctrl) / float64(total)
}

// WordPatternShares returns Figure 1's per-pattern word fractions.
func (s *Stats) WordPatternShares() map[traffic.WordPattern]float64 {
	var total int64
	for _, c := range s.WordCounts {
		total += c
	}
	out := make(map[traffic.WordPattern]float64)
	if total == 0 {
		return out
	}
	for p := traffic.WordPattern(0); p < traffic.NumPatterns; p++ {
		out[p] = float64(s.WordCounts[p]) / float64(total)
	}
	return out
}

// System simulates the NUCA memory hierarchy of §4.1.2 and records the
// coherence traffic it generates.
type System struct {
	p         Params
	rng       *rand.Rand
	l1s       []*L1
	dirs      map[topology.NodeID]*Directory
	cpuNodes  []topology.NodeID
	bankNodes []topology.NodeID
	trace     *traffic.Trace
	stats     Stats

	outstanding [][]int64 // per-CPU completion times
	seqPtr      []uint32  // per-CPU sequential stream position
	recent      []reuseWindow
}

// NewSystem validates the parameters and builds a system.
func NewSystem(p Params) (*System, error) {
	cpus, banks := p.Topo.CPUs(), p.Topo.Caches()
	if len(cpus) == 0 || len(banks) == 0 {
		return nil, fmt.Errorf("cmp: topology lacks CPU/cache layout (%d cpus, %d banks)", len(cpus), len(banks))
	}
	if len(cpus) > 16 {
		return nil, fmt.Errorf("cmp: directory sharer mask supports <= 16 CPUs, have %d", len(cpus))
	}
	if err := p.Workload.Patterns.Validate(); err != nil {
		return nil, err
	}
	if p.MaxOutstanding < 1 {
		return nil, fmt.Errorf("cmp: MaxOutstanding = %d", p.MaxOutstanding)
	}
	s := &System{
		p:           p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		cpuNodes:    cpus,
		bankNodes:   banks,
		dirs:        make(map[topology.NodeID]*Directory, len(banks)),
		trace:       &traffic.Trace{Name: p.Workload.Name},
		outstanding: make([][]int64, len(cpus)),
		seqPtr:      make([]uint32, len(cpus)),
		recent:      make([]reuseWindow, len(cpus)),
	}
	for i := 0; i < len(cpus); i++ {
		s.l1s = append(s.l1s, &L1{})
	}
	for _, b := range banks {
		s.dirs[b] = NewDirectory()
	}
	return s, nil
}

// bankOf maps a line address to its home bank node: SNUCA places sets
// statically by the low-order bits of the address (§4.1.2).
func (s *System) bankOf(addr uint32) topology.NodeID {
	return s.bankNodes[int(addr)%len(s.bankNodes)]
}

// Address-space layout: each CPU has a private region; a common shared
// region drives coherence traffic.
const sharedBase uint32 = 0xE000000

func (s *System) privateBase(cpu int) uint32 { return uint32(cpu+1) << 20 }

// genAddr draws the next line address for a CPU: temporal re-reference
// of a recent line, a shared-region access, a sequential step, or a
// random touch of the private working set.
func (s *System) genAddr(cpu int) uint32 {
	w := &s.p.Workload
	if u := s.rng.Float64(); u < w.ReuseFrac {
		if addr, ok := s.recent[cpu].sample(s.rng); ok {
			return addr
		}
	}
	var addr uint32
	u := s.rng.Float64()
	switch {
	case u < w.SharedFrac:
		addr = sharedBase + uint32(s.rng.Intn(w.SharedLines))
	case u < w.SharedFrac+w.SeqFrac:
		s.seqPtr[cpu] = (s.seqPtr[cpu] + 1) % uint32(w.WorkingSetLines)
		addr = s.privateBase(cpu) + s.seqPtr[cpu]
	default:
		addr = s.privateBase(cpu) + uint32(s.rng.Intn(w.WorkingSetLines))
	}
	s.recent[cpu].push(addr)
	return addr
}

// emit records one message in the trace.
func (s *System) emit(cycle int64, kind MsgKind, src, dst topology.NodeID, payload [][]uint32) {
	if src == dst {
		return // bank-local access, no network message
	}
	layers := core.PacketLayers(payload)
	class := noc.Control
	if kind.IsData() {
		class = noc.Data
	}
	s.trace.Events = append(s.trace.Events, traffic.Event{
		Cycle: cycle, Src: src, Dst: dst, Size: len(payload), Class: class, Layers: layers,
	})
	s.stats.KindCounts[kind]++
	for _, l := range layers {
		s.stats.TotalFlits++
		if l == 1 {
			s.stats.ShortFlits++
		}
	}
}

func (s *System) emitData(cycle int64, kind MsgKind, src, dst topology.NodeID) {
	s.emit(cycle, kind, src, dst, dataPayload(s.p.Workload.Patterns, s.rng, &s.stats.WordCounts))
}

func (s *System) emitCtrl(cycle int64, kind MsgKind, src, dst topology.NodeID, addr uint32) {
	s.emit(cycle, kind, src, dst, controlPayload(addr))
}

// read handles an L1 load miss: GetS to the home bank, then either a
// bank response or a cache-to-cache forward from the modified owner.
func (s *System) read(cycle int64, cpu int, addr uint32) int64 {
	cpuNode := s.cpuNodes[cpu]
	bank := s.bankOf(addr)
	s.emitCtrl(cycle, KindGetS, cpuNode, bank, addr)
	t := cycle + s.p.ReqNetLat
	e := s.dirs[bank].Entry(addr)

	var respAt int64
	if e.owner >= 0 && int(e.owner) != cpu {
		// Dirty copy elsewhere: forward; the owner supplies the data to
		// the requester. Under MESI it downgrades to Shared and writes
		// back immediately; under MOESI it keeps ownership in the
		// Owned state and the write-back waits for its eviction.
		ownerNode := s.cpuNodes[e.owner]
		s.emitCtrl(t, KindFwd, bank, ownerNode, addr)
		if s.p.Protocol == MOESI {
			s.l1s[e.owner].SetState(addr, Owned)
			e.addSharer(int(e.owner))
		} else {
			s.l1s[e.owner].SetState(addr, Shared)
			s.emitData(t+s.p.ReqNetLat, KindWriteBack, ownerNode, bank)
			e.addSharer(int(e.owner))
			e.owner = -1
		}
		s.emitData(t+s.p.ReqNetLat, KindData, ownerNode, cpuNode)
		respAt = t + 2*s.p.ReqNetLat
	} else {
		lat := s.p.BankLat
		if s.rng.Float64() < s.p.Workload.L2MissFrac {
			lat += s.p.MemLat
		}
		s.emitData(t+lat, KindData, bank, cpuNode)
		respAt = t + lat + s.p.ReqNetLat
	}

	state := Shared
	if e.sharers == 0 && e.owner < 0 {
		state = Exclusive
		e.owner = int8(cpu)
	}
	e.addSharer(cpu)
	s.fill(cycle, cpu, addr, state)
	return respAt
}

// write handles a store that is not an L1 M/E hit: an upgrade from S, or
// a full write miss.
func (s *System) write(cycle int64, cpu int, addr uint32, st LineState) int64 {
	cpuNode := s.cpuNodes[cpu]
	bank := s.bankOf(addr)
	e := s.dirs[bank].Entry(addr)
	t := cycle + s.p.ReqNetLat

	kind := KindGetX
	if st == Shared || st == Owned {
		kind = KindUpgrade
		s.stats.Upgrades++
	}
	s.emitCtrl(cycle, kind, cpuNode, bank, addr)

	var respAt int64
	if e.owner >= 0 && int(e.owner) != cpu {
		// Dirty elsewhere: forward; ownership transfers cache-to-cache.
		ownerNode := s.cpuNodes[e.owner]
		s.emitCtrl(t, KindFwd, bank, ownerNode, addr)
		s.l1s[e.owner].SetState(addr, Invalid)
		s.emitData(t+s.p.ReqNetLat, KindData, ownerNode, cpuNode)
		respAt = t + 2*s.p.ReqNetLat
	} else {
		// Invalidate all other sharers; they ack to the requester.
		for _, sh := range e.Sharers() {
			if sh == cpu {
				continue
			}
			shNode := s.cpuNodes[sh]
			s.emitCtrl(t, KindInv, bank, shNode, addr)
			s.l1s[sh].SetState(addr, Invalid)
			s.emitCtrl(t+s.p.ReqNetLat, KindAck, shNode, cpuNode, addr)
		}
		if st == Shared || st == Owned {
			// Upgrade: data already present, the bank grants ownership.
			s.emitCtrl(t+s.p.BankLat, KindAck, bank, cpuNode, addr)
			respAt = t + s.p.BankLat + s.p.ReqNetLat
		} else {
			lat := s.p.BankLat
			if s.rng.Float64() < s.p.Workload.L2MissFrac {
				lat += s.p.MemLat
			}
			s.emitData(t+lat, KindData, bank, cpuNode)
			respAt = t + lat + s.p.ReqNetLat
		}
	}

	e.clearAll()
	e.owner = int8(cpu)
	e.addSharer(cpu)
	if st == Shared || st == Owned {
		s.l1s[cpu].SetState(addr, Modified)
	} else {
		s.fill(cycle, cpu, addr, Modified)
	}
	return respAt
}

// fill installs a line into the L1 and handles the victim: Modified
// victims write back over the network, clean victims notify their
// directory silently (state tracked here directly).
func (s *System) fill(cycle int64, cpu int, addr uint32, st LineState) {
	victim, vState := s.l1s[cpu].Fill(addr, st)
	if vState == Invalid {
		return
	}
	vBank := s.bankOf(victim)
	ve := s.dirs[vBank].Entry(victim)
	ve.clearSharer(cpu)
	if int(ve.owner) == cpu {
		ve.owner = -1
	}
	if vState.Dirty() {
		s.emitData(cycle, KindWriteBack, s.cpuNodes[cpu], vBank)
	}
}

// Run executes the CPUs for the given number of cycles and returns the
// recorded trace (time-sorted) plus statistics.
func (s *System) Run(cycles int64) (*traffic.Trace, Stats) {
	w := &s.p.Workload
	for cycle := int64(0); cycle < cycles; cycle++ {
		for cpu := range s.l1s {
			// Retire completed misses.
			out := s.outstanding[cpu][:0]
			for _, t := range s.outstanding[cpu] {
				if t > cycle {
					out = append(out, t)
				}
			}
			s.outstanding[cpu] = out
			if len(out) >= s.p.MaxOutstanding {
				continue
			}
			if s.rng.Float64() >= w.Intensity {
				continue
			}
			s.stats.Accesses++
			addr := s.genAddr(cpu)
			isRead := s.rng.Float64() < w.ReadFrac
			st := s.l1s[cpu].Lookup(addr)

			switch {
			case isRead && st != Invalid:
				s.stats.L1Hits++
			case !isRead && (st == Modified || st == Exclusive):
				s.stats.L1Hits++
				s.l1s[cpu].SetState(addr, Modified)
			case isRead:
				s.stats.L1Misses++
				s.outstanding[cpu] = append(s.outstanding[cpu], s.read(cycle, cpu, addr))
			default:
				s.stats.L1Misses++
				s.outstanding[cpu] = append(s.outstanding[cpu], s.write(cycle, cpu, addr, st))
			}
		}
	}
	s.trace.Sort()
	return s.trace, s.stats
}

// GenerateTrace is the one-call convenience used by experiments and the
// tracegen example.
func GenerateTrace(w Workload, topo *topology.Topology, cycles, seed int64) (*traffic.Trace, Stats, error) {
	sys, err := NewSystem(DefaultParams(w, topo, seed))
	if err != nil {
		return nil, Stats{}, err
	}
	tr, st := sys.Run(cycles)
	return tr, st, nil
}
