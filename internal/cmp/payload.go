package cmp

import (
	"math/rand"

	"mira/internal/traffic"
)

// Payload synthesis. Data packets carry one 64 B cache line as 4 flits
// of 4 words each; word values are drawn from the workload's frequent-
// pattern profile so that the layer-shutdown detector (internal/core)
// sees realistic redundancy. Control packets carry a line address plus
// small metadata, which fits in the top layer's word: address/coherence
// flits are the "short address flits" of §1.

// wordsPerFlit matches core.WordBits on a 128-bit flit.
const wordsPerFlit = 4

// flitsPerLine is a 64 B line over 128-bit flits.
const flitsPerLine = 4

// freqPatternWords are representative non-zero frequent patterns
// (repeated bytes, sign-extended halfwords) from the Alameldeen & Wood
// taxonomy. They compress well but are not all-0/all-1, so they do NOT
// count as redundant for layer shutdown.
var freqPatternWords = []uint32{
	0x00000041, 0x0000ff13, 0x7f7f7f7f, 0x20202020, 0x00010001,
}

// sampleWord draws one payload word and reports its pattern class.
func sampleWord(p traffic.PatternProfile, rng *rand.Rand) (uint32, traffic.WordPattern) {
	pat := p.SampleWord(rng)
	switch pat {
	case traffic.PatternZero:
		return 0, pat
	case traffic.PatternOne:
		return ^uint32(0), pat
	case traffic.PatternFreq:
		return freqPatternWords[rng.Intn(len(freqPatternWords))], pat
	default:
		// Irregular data: re-draw until neither all-0 nor all-1 (the
		// probability of hitting either is ~2^-31).
		for {
			v := rng.Uint32()
			if v != 0 && v != ^uint32(0) {
				return v, pat
			}
		}
	}
}

// dataPayload synthesizes a cache line as flit-major words, counting
// word patterns into counts.
func dataPayload(p traffic.PatternProfile, rng *rand.Rand, counts *[traffic.NumPatterns]int64) [][]uint32 {
	flits := make([][]uint32, flitsPerLine)
	for f := range flits {
		words := make([]uint32, wordsPerFlit)
		for w := range words {
			v, pat := sampleWord(p, rng)
			words[w] = v
			counts[pat]++
		}
		flits[f] = words
	}
	return flits
}

// controlPayload synthesizes an address/coherence flit: the 32-bit line
// address in the top-layer word, zeros above. Such flits always qualify
// as short.
func controlPayload(addr uint32) [][]uint32 {
	return [][]uint32{{addr, 0, 0, 0}}
}
