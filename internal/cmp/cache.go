package cmp

// Line addresses are cache-line granular (the byte address divided by
// LineBytes); the memory hierarchy below works entirely in line units.

// Cache geometry of Table 4: 32 KB 4-way private L1s with 64 B lines.
const (
	LineBytes = 64
	L1Sets    = 128 // 32 KB / 64 B / 4 ways
	L1Ways    = 4
)

// LineState is the coherence state of a line in an L1 (MESI, plus the
// Owned state used when the protocol is MOESI).
type LineState uint8

// Coherence states.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
	// Owned holds a dirty line while other caches share clean copies;
	// the owner supplies data on forwards and writes back on eviction
	// (MOESI only).
	Owned
)

func (s LineState) String() string {
	switch s {
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	default:
		return "I"
	}
}

// Dirty reports whether the state obliges a write-back on eviction.
func (s LineState) Dirty() bool { return s == Modified || s == Owned }

// Protocol selects the coherence protocol of the CMP substrate.
type Protocol uint8

// Protocols.
const (
	// MESI is the paper's protocol (§4.1.2): a read forward downgrades
	// the dirty owner to Shared and writes the line back immediately.
	MESI Protocol = iota
	// MOESI adds the Owned state: the dirty owner keeps supplying
	// readers cache-to-cache and defers the write-back to eviction,
	// trading directory simplicity for less write-back traffic.
	MOESI
)

func (p Protocol) String() string {
	if p == MOESI {
		return "MOESI"
	}
	return "MESI"
}

// l1Line is one L1 tag entry.
type l1Line struct {
	addr  uint32 // line address
	state LineState
	lru   uint64
}

// L1 is a private set-associative write-back cache with LRU replacement.
type L1 struct {
	sets  [L1Sets][L1Ways]l1Line
	clock uint64
}

func (c *L1) set(addr uint32) *[L1Ways]l1Line { return &c.sets[addr%L1Sets] }

// Lookup returns the line's state (Invalid on miss) and touches LRU.
func (c *L1) Lookup(addr uint32) LineState {
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			c.clock++
			set[i].lru = c.clock
			return set[i].state
		}
	}
	return Invalid
}

// SetState updates the state of a resident line; it is a no-op when the
// line is not resident (e.g. an invalidation racing an eviction).
func (c *L1) SetState(addr uint32, s LineState) {
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].addr == addr {
			if s == Invalid {
				set[i] = l1Line{}
			} else {
				set[i].state = s
			}
			return
		}
	}
}

// Fill installs a line, returning the evicted victim (if any) so the
// caller can emit a write-back for Modified victims.
func (c *L1) Fill(addr uint32, s LineState) (victim uint32, victimState LineState) {
	set := c.set(addr)
	c.clock++
	// Reuse an invalid way first.
	for i := range set {
		if set[i].state == Invalid {
			set[i] = l1Line{addr: addr, state: s, lru: c.clock}
			return 0, Invalid
		}
	}
	// Evict LRU.
	v := 0
	for i := 1; i < L1Ways; i++ {
		if set[i].lru < set[v].lru {
			v = i
		}
	}
	victim, victimState = set[v].addr, set[v].state
	set[v] = l1Line{addr: addr, state: s, lru: c.clock}
	return victim, victimState
}

// Occupancy returns the number of valid lines (diagnostics).
func (c *L1) Occupancy() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].state != Invalid {
				n++
			}
		}
	}
	return n
}

// dirEntry is the distributed-directory state of one line at its home
// L2 bank: which L1s share it and which (if any) owns it modified.
type dirEntry struct {
	sharers uint16 // bitmask over CPUs
	owner   int8   // CPU index holding M/E, -1 if none
}

// Directory is one L2 bank's local directory (§4.1.2: "each bank
// maintains its own local directory").
type Directory struct {
	lines map[uint32]*dirEntry
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{lines: make(map[uint32]*dirEntry)}
}

// Entry returns the directory entry for a line, creating it on first
// touch.
func (d *Directory) Entry(addr uint32) *dirEntry {
	e, ok := d.lines[addr]
	if !ok {
		e = &dirEntry{owner: -1}
		d.lines[addr] = e
	}
	return e
}

// Sharers returns the CPU indices currently sharing the line.
func (e *dirEntry) Sharers() []int {
	var out []int
	for i := 0; i < 16; i++ {
		if e.sharers&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func (e *dirEntry) addSharer(cpu int)   { e.sharers |= 1 << cpu }
func (e *dirEntry) clearSharer(cpu int) { e.sharers &^= 1 << cpu }
func (e *dirEntry) clearAll()           { e.sharers = 0; e.owner = -1 }
