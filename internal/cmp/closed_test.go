package cmp

import (
	"testing"

	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/topology"
)

func closedCfg(topo *topology.Topology) noc.Config {
	return noc.Config{
		Topo: topo, Alg: routing.ForTopology(topo), VCs: 2, BufDepth: 8,
		STLTCycles: 2, Layers: 4, Policy: noc.ByClass, Seed: 1,
	}
}

func newClosed(t *testing.T, name string, seed int64) *ClosedSystem {
	t.Helper()
	topo := nucaTopo(t)
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	p := DefaultParams(w, topo, seed)
	s, err := NewClosedSystem(p, closedCfg(topo))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClosedSystemRuns(t *testing.T) {
	s := newClosed(t, "tpcw", 3)
	st := s.Run(20000)
	if st.Accesses == 0 || st.L1Misses == 0 {
		t.Fatalf("no activity: %+v", st)
	}
	if st.MissLatency.N() == 0 {
		t.Fatal("no misses completed")
	}
	if st.NetworkPackets == 0 {
		t.Fatal("no network traffic")
	}
	// Miss latency must at least cover two network traversals plus the
	// bank access at zero load (~2*11 + 4).
	if st.MissLatency.Mean() < 20 {
		t.Errorf("mean miss latency %.1f implausibly low", st.MissLatency.Mean())
	}
	// And must be finite/sane.
	if st.MissLatency.Mean() > 2000 {
		t.Errorf("mean miss latency %.1f implausibly high", st.MissLatency.Mean())
	}
}

func TestClosedSystemDrains(t *testing.T) {
	// After the run plus a quiescence period with no new issues, all
	// outstanding state should drain: in-flight map empty, network idle.
	s := newClosed(t, "barnes", 5)
	s.Run(10000)
	// Quiesce: stop issuing by zeroing intensity, keep stepping.
	s.p.Workload.Intensity = 0
	s.Run(5000)
	if len(s.inflight) != 0 {
		t.Errorf("%d packets still in flight after quiesce", len(s.inflight))
	}
	if !s.Network().Idle() {
		t.Errorf("network not idle after quiesce")
	}
	for cpu, o := range s.outstanding {
		if o != 0 {
			t.Errorf("cpu %d still has %d outstanding misses", cpu, o)
		}
	}
	if err := s.Network().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedSystemMessageMixRealistic(t *testing.T) {
	s := newClosed(t, "ocean", 7)
	st := s.Run(20000)
	if st.KindCounts[KindGetS] == 0 || st.KindCounts[KindData] == 0 {
		t.Fatalf("missing basic protocol traffic: %v", st.KindCounts)
	}
	// Shared working set must trigger coherence activity.
	if st.KindCounts[KindInv]+st.KindCounts[KindFwd] == 0 {
		t.Errorf("no invalidations or forwards despite shared data")
	}
	// Every data response corresponds to a completed or in-flight miss.
	if st.KindCounts[KindData] > st.L1Misses+10 {
		t.Errorf("more data responses (%d) than misses (%d)", st.KindCounts[KindData], st.L1Misses)
	}
}

func TestClosedSystemValidation(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("tpcw")
	p := DefaultParams(w, topo, 1)
	cfg := closedCfg(topo)
	cfg.Policy = noc.AnyFree
	if _, err := NewClosedSystem(p, cfg); err == nil {
		t.Errorf("AnyFree policy should be rejected")
	}
	other := nucaTopo(t)
	if _, err := NewClosedSystem(p, closedCfg(other)); err == nil {
		t.Errorf("topology mismatch should be rejected")
	}
}

func TestClosedSystemDeterministic(t *testing.T) {
	a := newClosed(t, "sjbb", 11).Run(8000)
	b := newClosed(t, "sjbb", 11).Run(8000)
	if a.Accesses != b.Accesses || a.MissLatency.Mean() != b.MissLatency.Mean() {
		t.Errorf("closed-loop run not deterministic")
	}
}

func TestBankQueueing(t *testing.T) {
	s := newClosed(t, "tpcw", 1)
	bank := s.bankNodes[0]
	// Three back-to-back accesses to the same bank at cycle 0: they
	// serialize at BankLat (4) intervals; with access latency 4 the
	// completions land at 4, 8, 12.
	order := []int64{}
	for i := 0; i < 3; i++ {
		s.bankAfter(bank, s.p.BankLat, func() { order = append(order, s.net.Cycle()) })
	}
	// A different bank is independent: its access completes at 4.
	other := s.bankNodes[1]
	s.bankAfter(other, s.p.BankLat, func() { order = append(order, -s.net.Cycle()) })
	s.p.Workload.Intensity = 0 // no CPU noise
	s.Run(20)
	if len(order) != 4 {
		t.Fatalf("completions = %d, want 4", len(order))
	}
	want := []int64{4, -4, 8, 12}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

// The headline end-to-end claim: a faster network (3DM-E) reduces the
// CPU-visible L2 miss latency versus the 2DB baseline.
func TestClosedLoopArchitectureComparison(t *testing.T) {
	run := func(topo *topology.Topology, stlt int) float64 {
		w, _ := ByName("tpcw")
		p := DefaultParams(w, topo, 9)
		cfg := closedCfg(topo)
		cfg.Alg = routing.ForTopology(topo)
		cfg.STLTCycles = stlt
		s, err := NewClosedSystem(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := s.Run(15000)
		return st.MissLatency.Mean()
	}
	topo2 := nucaTopo(t)
	lat2DB := run(topo2, 2)

	topoE := topology.NewExpressMesh2D(6, 6, 1.58, 2)
	if err := topology.ApplyNUCALayout2D(topoE); err != nil {
		t.Fatal(err)
	}
	latE := run(topoE, 1)
	if latE >= lat2DB {
		t.Errorf("3DM-E miss latency %.1f should beat 2DB %.1f", latE, lat2DB)
	}
}
