package cmp

import "math/rand"

// reuseWindowSize bounds the temporal-locality window: the set of
// recently touched lines a CPU is likely to re-reference. 64 lines is
// well under the L1 capacity (512 lines), so re-references almost
// always hit unless invalidated by a remote writer.
const reuseWindowSize = 64

// reuseWindow is a per-CPU ring of recently accessed line addresses.
type reuseWindow struct {
	buf [reuseWindowSize]uint32
	n   int // valid entries
	idx int // next write position
}

// push records a touched line.
func (r *reuseWindow) push(addr uint32) {
	r.buf[r.idx] = addr
	r.idx = (r.idx + 1) % reuseWindowSize
	if r.n < reuseWindowSize {
		r.n++
	}
}

// sample returns a uniformly random recent line, or false when the
// window is still empty.
func (r *reuseWindow) sample(rng *rand.Rand) (uint32, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[rng.Intn(r.n)], true
}
