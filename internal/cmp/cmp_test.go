package cmp

import (
	"context"
	"math/rand"
	"testing"

	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/topology"
	"mira/internal/traffic"
)

func nucaTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo := topology.NewMesh2D(6, 6, 3.1)
	if err := topology.ApplyNUCALayout2D(topo); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestL1FillLookup(t *testing.T) {
	c := &L1{}
	if st := c.Lookup(100); st != Invalid {
		t.Fatalf("empty cache hit: %v", st)
	}
	c.Fill(100, Shared)
	if st := c.Lookup(100); st != Shared {
		t.Fatalf("Lookup = %v, want S", st)
	}
	c.SetState(100, Modified)
	if st := c.Lookup(100); st != Modified {
		t.Fatalf("Lookup = %v, want M", st)
	}
	c.SetState(100, Invalid)
	if st := c.Lookup(100); st != Invalid {
		t.Fatalf("invalidate failed: %v", st)
	}
}

func TestL1LRUEviction(t *testing.T) {
	c := &L1{}
	// Four lines map to the same set (stride L1Sets).
	base := uint32(7)
	for i := 0; i < L1Ways; i++ {
		c.Fill(base+uint32(i*L1Sets), Shared)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(base)
	v, vs := c.Fill(base+uint32(L1Ways*L1Sets), Modified)
	if vs == Invalid {
		t.Fatalf("full set should evict")
	}
	if v != base+uint32(1*L1Sets) {
		t.Errorf("evicted %d, want LRU line %d", v, base+uint32(L1Sets))
	}
	if c.Lookup(base) == Invalid {
		t.Errorf("recently used line evicted")
	}
}

func TestL1SetStateMissNoOp(t *testing.T) {
	c := &L1{}
	c.SetState(42, Modified) // must not panic or install
	if c.Occupancy() != 0 {
		t.Errorf("SetState installed a line")
	}
}

func TestDirectorySharers(t *testing.T) {
	d := NewDirectory()
	e := d.Entry(5)
	if e.owner != -1 || e.sharers != 0 {
		t.Fatalf("fresh entry not empty: %+v", e)
	}
	e.addSharer(0)
	e.addSharer(3)
	got := e.Sharers()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Sharers = %v, want [0 3]", got)
	}
	e.clearSharer(0)
	if len(e.Sharers()) != 1 {
		t.Errorf("clearSharer failed")
	}
	e.clearAll()
	if e.sharers != 0 || e.owner != -1 {
		t.Errorf("clearAll failed: %+v", e)
	}
	if d.Entry(5) != e {
		t.Errorf("Entry not stable")
	}
}

func TestControlPayloadIsShort(t *testing.T) {
	p := controlPayload(0xdeadbeef)
	if len(p) != 1 {
		t.Fatalf("control payload flits = %d, want 1", len(p))
	}
	if p[0][0] != 0xdeadbeef {
		t.Errorf("address word wrong")
	}
	for _, w := range p[0][1:] {
		if w != 0 {
			t.Errorf("upper control words must be zero: %x", p[0])
		}
	}
}

func TestDataPayloadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var counts [traffic.NumPatterns]int64
	p := dataPayload(traffic.PatternProfile{Zero: 0.5}, rng, &counts)
	if len(p) != flitsPerLine {
		t.Fatalf("flits = %d, want %d", len(p), flitsPerLine)
	}
	for _, f := range p {
		if len(f) != wordsPerFlit {
			t.Fatalf("words = %d, want %d", len(f), wordsPerFlit)
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != flitsPerLine*wordsPerFlit {
		t.Errorf("counted %d words, want %d", total, flitsPerLine*wordsPerFlit)
	}
}

func TestSampleWordNeverAccidentallyRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := traffic.PatternProfile{} // only PatternOther
	for i := 0; i < 1000; i++ {
		v, pat := sampleWord(p, rng)
		if pat != traffic.PatternOther {
			t.Fatalf("pattern = %v", pat)
		}
		if v == 0 || v == ^uint32(0) {
			t.Fatalf("irregular word sampled as redundant: %x", v)
		}
	}
}

func TestWorkloadsValid(t *testing.T) {
	if len(Workloads) < 6 {
		t.Fatalf("need at least the 6 presented workloads, have %d", len(Workloads))
	}
	seen := map[string]bool{}
	for _, w := range Workloads {
		if err := w.Patterns.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Intensity <= 0 || w.Intensity > 0.5 {
			t.Errorf("%s: intensity %v out of range", w.Name, w.Intensity)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
	for _, name := range Presented {
		if _, ok := ByName(name); !ok {
			t.Errorf("presented workload %s missing", name)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Errorf("ByName should miss")
	}
}

func TestSystemGeneratesProtocolTraffic(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("tpcw")
	tr, st, err := GenerateTrace(w, topo, 30000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses == 0 || st.L1Misses == 0 {
		t.Fatalf("no memory activity: %+v", st)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	// All message kinds of the MESI protocol should appear.
	for _, k := range []MsgKind{KindGetS, KindGetX, KindData, KindWriteBack, KindInv, KindAck} {
		if st.KindCounts[k] == 0 {
			t.Errorf("no %v messages generated", k)
		}
	}
	// Responses match requests reasonably (every GetS/GetX produces one
	// data or ack response; invals produce acks).
	reqs := st.KindCounts[KindGetS] + st.KindCounts[KindGetX]
	if st.KindCounts[KindData] == 0 || st.KindCounts[KindData] > reqs+st.KindCounts[KindFwd] {
		t.Errorf("data responses %d inconsistent with %d requests", st.KindCounts[KindData], reqs)
	}
}

func TestTraceSortedAndValid(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("ocean")
	tr, _, err := GenerateTrace(w, topo, 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	isCPU := map[topology.NodeID]bool{}
	for _, id := range topo.CPUs() {
		isCPU[id] = true
	}
	prev := int64(-1)
	for _, e := range tr.Events {
		if e.Cycle < prev {
			t.Fatalf("trace not sorted")
		}
		prev = e.Cycle
		if e.Src == e.Dst {
			t.Fatalf("self message %+v", e)
		}
		if e.Size != 1 && e.Size != 4 {
			t.Fatalf("bad packet size %d", e.Size)
		}
		if e.Class == noc.Control && e.Size != 1 {
			t.Fatalf("control packet with %d flits", e.Size)
		}
		if len(e.Layers) != e.Size {
			t.Fatalf("layers/size mismatch")
		}
	}
}

func TestShortFlitPercentages(t *testing.T) {
	// Figure 13 (a): up to ~58 % short flits, ~40 % average over the six
	// presented workloads; commercial workloads above scientific ones.
	topo := nucaTopo(t)
	got := map[string]float64{}
	var sum float64
	for _, name := range Presented {
		w, _ := ByName(name)
		_, st, err := GenerateTrace(w, topo, 30000, 3)
		if err != nil {
			t.Fatal(err)
		}
		got[name] = st.ShortFlitPct()
		sum += st.ShortFlitPct()
	}
	avg := sum / float64(len(Presented))
	if avg < 30 || avg > 50 {
		t.Errorf("average short-flit%% = %.1f, want ~40 (%v)", avg, got)
	}
	max := 0.0
	for _, v := range got {
		if v > max {
			max = v
		}
	}
	if max < 48 || max > 68 {
		t.Errorf("max short-flit%% = %.1f, want ~58 (%v)", max, got)
	}
	if got["tpcw"] <= got["ocean"] {
		t.Errorf("commercial tpcw (%.1f) should exceed scientific ocean (%.1f)", got["tpcw"], got["ocean"])
	}
}

func TestMOESIReducesWritebacks(t *testing.T) {
	// The Owned state defers write-backs from read forwards to
	// evictions; on sharing-heavy traffic MOESI must emit fewer
	// write-backs (and no more total packets) than MESI.
	topo := nucaTopo(t)
	w, _ := ByName("barnes") // highest SharedFrac of the suite
	run := func(proto Protocol) Stats {
		p := DefaultParams(w, topo, 17)
		p.Protocol = proto
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		_, st := sys.Run(25000)
		return st
	}
	mesi, moesi := run(MESI), run(MOESI)
	if mesi.KindCounts[KindFwd] == 0 {
		t.Fatalf("no forwards generated; sharing model broken")
	}
	if moesi.KindCounts[KindWriteBack] >= mesi.KindCounts[KindWriteBack] {
		t.Errorf("MOESI write-backs %d should undercut MESI %d",
			moesi.KindCounts[KindWriteBack], mesi.KindCounts[KindWriteBack])
	}
	// Owned owners keep supplying readers: at least as many forwards.
	if moesi.KindCounts[KindFwd] < mesi.KindCounts[KindFwd]/2 {
		t.Errorf("MOESI forwards %d implausibly low vs MESI %d",
			moesi.KindCounts[KindFwd], mesi.KindCounts[KindFwd])
	}
}

func TestMOESIClosedLoop(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("barnes")
	p := DefaultParams(w, topo, 19)
	p.Protocol = MOESI
	sys, err := NewClosedSystem(p, closedCfg(topo))
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Run(15000)
	if st.L1Misses == 0 || st.MissLatency.N() == 0 {
		t.Fatalf("MOESI closed loop inert: %+v", st)
	}
	// Quiesce and check nothing wedged.
	sys.p.Workload.Intensity = 0
	sys.Run(6000)
	if !sys.Network().Idle() {
		t.Errorf("MOESI closed loop failed to drain")
	}
	if err := sys.Network().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnedStateLifecycle(t *testing.T) {
	c := &L1{}
	c.Fill(9, Modified)
	c.SetState(9, Owned)
	if st := c.Lookup(9); st != Owned {
		t.Fatalf("state = %v, want O", st)
	}
	if !Owned.Dirty() || !Modified.Dirty() {
		t.Errorf("O and M are dirty states")
	}
	if Shared.Dirty() || Exclusive.Dirty() || Invalid.Dirty() {
		t.Errorf("S/E/I are clean states")
	}
	if Owned.String() != "O" {
		t.Errorf("Owned stringer wrong")
	}
	if MOESI.String() != "MOESI" || MESI.String() != "MESI" {
		t.Errorf("protocol stringer wrong")
	}
}

func TestL1HitRateSane(t *testing.T) {
	// With the temporal-reuse window, the L1 filters a substantial part
	// of the access stream (the generator models a post-register-file
	// reference stream, so the rate is lower than a raw program's).
	topo := nucaTopo(t)
	for _, name := range []string{"tpcw", "ocean"} {
		w, _ := ByName(name)
		_, st, err := GenerateTrace(w, topo, 20000, 13)
		if err != nil {
			t.Fatal(err)
		}
		hitRate := float64(st.L1Hits) / float64(st.Accesses)
		if hitRate < 0.30 || hitRate > 0.85 {
			t.Errorf("%s: L1 hit rate %.2f outside [0.30, 0.85]", name, hitRate)
		}
	}
}

func TestReuseWindow(t *testing.T) {
	var r reuseWindow
	rng := rand.New(rand.NewSource(1))
	if _, ok := r.sample(rng); ok {
		t.Fatal("empty window should not sample")
	}
	r.push(42)
	if v, ok := r.sample(rng); !ok || v != 42 {
		t.Fatalf("sample = %v,%v", v, ok)
	}
	for i := 0; i < 2*reuseWindowSize; i++ {
		r.push(uint32(1000 + i))
	}
	if r.n != reuseWindowSize {
		t.Errorf("window overgrew: %d", r.n)
	}
	// Old entries must have been overwritten.
	for i := 0; i < 200; i++ {
		if v, _ := r.sample(rng); v == 42 {
			t.Fatalf("stale entry survived wrap-around")
		}
	}
}

func TestControlPacketShareSignificant(t *testing.T) {
	// Figure 2: a significant part of the traffic is short
	// address/coherence packets.
	topo := nucaTopo(t)
	w, _ := ByName("sjbb")
	_, st, err := GenerateTrace(w, topo, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	frac := st.ControlPacketFrac()
	if frac < 0.3 || frac > 0.8 {
		t.Errorf("control packet fraction = %.2f, want significant (0.3-0.8)", frac)
	}
}

func TestWordPatternSharesMatchProfile(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("tpcw")
	_, st, err := GenerateTrace(w, topo, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	shares := st.WordPatternShares()
	if z := shares[traffic.PatternZero]; z < w.Patterns.Zero-0.05 || z > w.Patterns.Zero+0.05 {
		t.Errorf("zero-word share = %.3f, want ~%.2f", z, w.Patterns.Zero)
	}
}

func TestDeterministicTraces(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("apache")
	a, sa, err := GenerateTrace(w, topo, 10000, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := GenerateTrace(w, topo, 10000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || sa.Accesses != sb.Accesses {
		t.Errorf("non-deterministic generation")
	}
}

func TestOutstandingLimit(t *testing.T) {
	topo := nucaTopo(t)
	w, _ := ByName("ocean")
	w.Intensity = 0.9 // saturate the MSHRs
	p := DefaultParams(w, topo, 6)
	p.MaxOutstanding = 2
	p.MemLat = 2000
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	_, st := sys.Run(5000)
	// With only 2 MSHRs and long misses, misses are throttled well below
	// the unconstrained access rate.
	if st.L1Misses > st.Accesses {
		t.Fatalf("more misses than accesses")
	}
	if st.Accesses == 0 {
		t.Fatal("no accesses")
	}
}

func TestNewSystemValidation(t *testing.T) {
	plain := topology.NewMesh2D(6, 6, 3.1) // no CPU layout
	w, _ := ByName("tpcw")
	if _, err := NewSystem(DefaultParams(w, plain, 1)); err == nil {
		t.Errorf("topology without CPUs should be rejected")
	}
	topo := nucaTopo(t)
	bad := DefaultParams(w, topo, 1)
	bad.MaxOutstanding = 0
	if _, err := NewSystem(bad); err == nil {
		t.Errorf("zero MSHRs should be rejected")
	}
}

func TestTraceReplaysThroughNoC(t *testing.T) {
	// End-to-end: a generated trace must replay through the simulator
	// without protocol deadlock under the ByClass VC policy.
	topo := nucaTopo(t)
	w, _ := ByName("barnes")
	tr, _, err := GenerateTrace(w, topo, 8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.Config{
		Topo: topo, Alg: routing.XY{}, VCs: 2, BufDepth: 8,
		STLTCycles: 2, Layers: 4, Policy: noc.ByClass, Seed: 1,
	}
	net := noc.NewNetwork(cfg)
	sim := noc.NewSim(net, &traffic.Replayer{Trace: tr})
	sim.Params = noc.SimParams{Warmup: 1000, Measure: 7000, DrainMax: 20000}
	res := sim.Run(context.Background())
	if res.Generated == 0 {
		t.Fatal("nothing replayed")
	}
	if res.Ejected != res.Generated {
		t.Errorf("trace replay lost packets: %v", res.String())
	}
}
