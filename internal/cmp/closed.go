package cmp

import (
	"fmt"
	"math/rand"

	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/stats"
	"mira/internal/topology"
	"mira/internal/traffic"
)

// Closed-loop co-simulation. The paper's methodology (and this
// package's System type) is open-loop: coherence traces are generated
// first and replayed through the NoC afterwards, so network congestion
// cannot delay the protocol. ClosedSystem goes beyond that: the MESI
// protocol engines inject their messages into a live noc.Network and
// react to actual deliveries, so CPU miss latency includes real network
// queueing — the end-to-end quantity a CMP architect ultimately cares
// about.

// protoMsg is the protocol context attached to an in-flight packet.
type protoMsg struct {
	kind MsgKind
	addr uint32
	cpu  int // requesting CPU for responses/acks, owner for forwards
	// forWrite distinguishes write forwards (owner invalidates) from
	// read forwards (owner downgrades to Shared under MESI, or keeps
	// the line Owned under MOESI).
	forWrite bool
}

// ClosedStats summarizes a closed-loop run.
type ClosedStats struct {
	Accesses, L1Hits, L1Misses int64
	KindCounts                 [NumKinds]int64
	// MissLatency measures issue -> data arrival in cycles, the
	// end-to-end L2 access time including real network contention.
	MissLatency stats.Mean
	// NetworkPackets counts messages that actually crossed the NoC.
	NetworkPackets int64
}

// ClosedSystem couples the protocol engines to a live network.
type ClosedSystem struct {
	p   Params
	cfg noc.Config
	net *noc.Network
	rng *rand.Rand

	l1s       []*L1
	dirs      map[topology.NodeID]*Directory
	cpuNodes  []topology.NodeID
	bankNodes []topology.NodeID
	nodeCPU   map[topology.NodeID]int // reverse CPU lookup

	inflight    map[*noc.Packet]protoMsg
	scheduled   map[int64][]func()
	outstanding []int
	issueTime   map[reqKey]issueInfo
	seqPtr      []uint32
	recent      []reuseWindow
	wordCounts  [traffic.NumPatterns]int64
	// bankFreeAt serializes each L2 bank: one access per BankLat window
	// (a contended home bank queues requests, §4.1.2's bank model).
	bankFreeAt map[topology.NodeID]int64

	stats ClosedStats
}

type reqKey struct {
	cpu  int
	addr uint32
}

// issueInfo records an outstanding miss: when it was issued and whether
// it was a store (which installs the line Modified).
type issueInfo struct {
	at    int64
	write bool
}

// NewClosedSystem builds a co-simulation; cfg must use the same
// topology as p.Topo and the ByClass VC policy (requests and responses
// must ride separate virtual networks).
func NewClosedSystem(p Params, cfg noc.Config) (*ClosedSystem, error) {
	if cfg.Topo != p.Topo {
		return nil, fmt.Errorf("cmp: closed system topology mismatch")
	}
	if cfg.Policy != noc.ByClass {
		return nil, fmt.Errorf("cmp: closed system requires the ByClass VC policy")
	}
	base, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	s := &ClosedSystem{
		p:           p,
		cfg:         cfg,
		net:         noc.NewNetwork(cfg),
		rng:         rand.New(rand.NewSource(p.Seed)),
		l1s:         base.l1s,
		dirs:        base.dirs,
		cpuNodes:    base.cpuNodes,
		bankNodes:   base.bankNodes,
		nodeCPU:     make(map[topology.NodeID]int),
		inflight:    make(map[*noc.Packet]protoMsg),
		scheduled:   make(map[int64][]func()),
		outstanding: make([]int, len(base.cpuNodes)),
		issueTime:   make(map[reqKey]issueInfo),
		seqPtr:      make([]uint32, len(base.cpuNodes)),
		recent:      make([]reuseWindow, len(base.cpuNodes)),
		bankFreeAt:  make(map[topology.NodeID]int64),
	}
	for i, n := range s.cpuNodes {
		s.nodeCPU[n] = i
	}
	s.net.SetEjectHandler(s.onDeliver)
	return s, nil
}

// send injects a protocol message into the network. Local (src == dst)
// messages dispatch immediately without touching the NoC.
func (s *ClosedSystem) send(m protoMsg, src, dst topology.NodeID) {
	s.stats.KindCounts[m.kind]++
	if src == dst {
		s.dispatch(m, dst)
		return
	}
	size := ControlFlits
	class := noc.Control
	var layers []uint8
	if m.kind.IsData() {
		size = DataFlits
		class = noc.Data
		layers = core.PacketLayers(dataPayload(s.p.Workload.Patterns, s.rng, &s.wordCounts))
	} else {
		layers = []uint8{1} // address/coherence flits are short (§3.2.1)
	}
	pkt, err := s.net.Enqueue(noc.Spec{Src: src, Dst: dst, Size: size, Class: class, LayersPerFlit: layers})
	if err != nil {
		panic(fmt.Sprintf("cmp: closed-loop enqueue: %v", err))
	}
	s.inflight[pkt] = m
	s.stats.NetworkPackets++
}

// onDeliver reacts to a packet reaching its destination.
func (s *ClosedSystem) onDeliver(pkt *noc.Packet) {
	m, ok := s.inflight[pkt]
	if !ok {
		panic("cmp: delivered packet without protocol context")
	}
	delete(s.inflight, pkt)
	s.dispatch(m, pkt.Dst)
}

// after schedules fn to run delay cycles from now (bank/memory access
// latencies).
func (s *ClosedSystem) after(delay int64, fn func()) {
	at := s.net.Cycle() + delay
	s.scheduled[at] = append(s.scheduled[at], fn)
}

// bankAfter schedules fn behind the bank's service queue: each access
// occupies the bank for BankLat cycles, so a contended bank adds real
// queueing delay on top of the access latency.
func (s *ClosedSystem) bankAfter(bank topology.NodeID, accessLat int64, fn func()) {
	now := s.net.Cycle()
	start := now
	if free := s.bankFreeAt[bank]; free > start {
		start = free
	}
	s.bankFreeAt[bank] = start + s.p.BankLat
	s.scheduled[start+accessLat] = append(s.scheduled[start+accessLat], fn)
}

// dispatch is the protocol state machine, keyed by message kind and
// receiving node.
func (s *ClosedSystem) dispatch(m protoMsg, at topology.NodeID) {
	switch m.kind {
	case KindGetS:
		s.bankGetS(m, at)
	case KindGetX, KindUpgrade:
		s.bankGetX(m, at)
	case KindFwd:
		s.ownerFwd(m, at)
	case KindInv:
		if cpu, ok := s.nodeCPU[at]; ok {
			s.l1s[cpu].SetState(m.addr, Invalid)
			// Acknowledge to the home bank (collected there; the
			// requester completes on its data/grant arrival).
			s.send(protoMsg{kind: KindAck, addr: m.addr, cpu: cpu}, at, s.bankOf(m.addr))
		}
	case KindAck:
		// Upgrade grants complete at the requester; invalidation acks
		// land at the home bank and carry no further action here.
		if at == s.cpuNodes[m.cpu] {
			s.completeIfUpgrade(m)
		}
	case KindData:
		s.cpuData(m, at)
	case KindWriteBack:
		// Dirty line lands at its home bank; directory already updated
		// by the sender.
	}
}

// bankGetS handles a read request at the home bank.
func (s *ClosedSystem) bankGetS(m protoMsg, bank topology.NodeID) {
	e := s.dirs[bank].Entry(m.addr)
	if e.owner >= 0 && int(e.owner) != m.cpu {
		owner := int(e.owner)
		e.addSharer(owner)
		if s.p.Protocol != MOESI {
			e.owner = -1
		}
		e.addSharer(m.cpu)
		s.send(protoMsg{kind: KindFwd, addr: m.addr, cpu: m.cpu}, bank, s.cpuNodes[owner])
		return
	}
	lat := s.p.BankLat
	if s.rng.Float64() < s.p.Workload.L2MissFrac {
		lat += s.p.MemLat
	}
	if e.sharers == 0 && e.owner < 0 {
		e.owner = int8(m.cpu)
	}
	e.addSharer(m.cpu)
	resp := protoMsg{kind: KindData, addr: m.addr, cpu: m.cpu}
	cpuNode := s.cpuNodes[m.cpu]
	s.bankAfter(bank, lat, func() { s.send(resp, bank, cpuNode) })
}

// bankGetX handles a write/upgrade request at the home bank.
func (s *ClosedSystem) bankGetX(m protoMsg, bank topology.NodeID) {
	e := s.dirs[bank].Entry(m.addr)
	if e.owner >= 0 && int(e.owner) != m.cpu {
		owner := int(e.owner)
		e.clearAll()
		e.owner = int8(m.cpu)
		e.addSharer(m.cpu)
		s.send(protoMsg{kind: KindFwd, addr: m.addr, cpu: m.cpu, forWrite: true}, bank, s.cpuNodes[owner])
		return
	}
	for _, sh := range e.Sharers() {
		if sh == m.cpu {
			continue
		}
		s.send(protoMsg{kind: KindInv, addr: m.addr, cpu: sh}, bank, s.cpuNodes[sh])
	}
	upgrade := m.kind == KindUpgrade
	e.clearAll()
	e.owner = int8(m.cpu)
	e.addSharer(m.cpu)
	cpuNode := s.cpuNodes[m.cpu]
	if upgrade {
		grant := protoMsg{kind: KindAck, addr: m.addr, cpu: m.cpu}
		s.bankAfter(bank, s.p.BankLat, func() { s.send(grant, bank, cpuNode) })
		return
	}
	lat := s.p.BankLat
	if s.rng.Float64() < s.p.Workload.L2MissFrac {
		lat += s.p.MemLat
	}
	resp := protoMsg{kind: KindData, addr: m.addr, cpu: m.cpu}
	s.bankAfter(bank, lat, func() { s.send(resp, bank, cpuNode) })
}

// ownerFwd handles a forward at the current owner: it supplies the line
// to the requester cache-to-cache. For write forwards ownership moves
// with the data. For read forwards the owner downgrades to Shared and
// writes back immediately (MESI), or retires to the Owned state keeping
// the dirty copy (MOESI).
func (s *ClosedSystem) ownerFwd(m protoMsg, at topology.NodeID) {
	owner, ok := s.nodeCPU[at]
	if !ok {
		panic("cmp: forward delivered to a non-CPU node")
	}
	st := s.l1s[owner].Lookup(m.addr)
	bank := s.bankOf(m.addr)
	switch {
	case m.forWrite:
		s.l1s[owner].SetState(m.addr, Invalid)
	case s.p.Protocol == MOESI:
		if st != Invalid {
			s.l1s[owner].SetState(m.addr, Owned)
		}
	default:
		if st.Dirty() {
			s.send(protoMsg{kind: KindWriteBack, addr: m.addr, cpu: owner}, at, bank)
		}
		s.l1s[owner].SetState(m.addr, Shared)
	}
	s.send(protoMsg{kind: KindData, addr: m.addr, cpu: m.cpu}, at, s.cpuNodes[m.cpu])
}

// cpuData completes a miss at the requesting CPU: stores install the
// line Modified, loads install it Shared (conservative: a load that was
// in fact unshared forgoes the silent-E optimization and pays a later
// upgrade, slightly over-approximating control traffic).
func (s *ClosedSystem) cpuData(m protoMsg, at topology.NodeID) {
	cpu, ok := s.nodeCPU[at]
	if !ok || cpu != m.cpu {
		panic("cmp: data delivered to wrong node")
	}
	st := Shared
	if info, ok := s.issueTime[reqKey{cpu, m.addr}]; ok && info.write {
		st = Modified
	}
	s.finishMiss(cpu, m.addr, st)
}

// completeIfUpgrade finishes an upgrade transaction (ack grant instead
// of data).
func (s *ClosedSystem) completeIfUpgrade(m protoMsg) {
	cpu := m.cpu
	if _, ok := s.issueTime[reqKey{cpu, m.addr}]; !ok {
		return // stray ack from an invalidation
	}
	s.l1s[cpu].SetState(m.addr, Modified)
	s.recordCompletion(cpu, m.addr)
}

func (s *ClosedSystem) finishMiss(cpu int, addr uint32, st LineState) {
	// The line can already be resident when an upgrade raced a remote
	// GetX and was answered with data; just adjust its state.
	if s.l1s[cpu].Lookup(addr) != Invalid {
		s.l1s[cpu].SetState(addr, st)
		s.recordCompletion(cpu, addr)
		return
	}
	victim, vState := s.l1s[cpu].Fill(addr, st)
	if vState != Invalid {
		vBank := s.bankOf(victim)
		ve := s.dirs[vBank].Entry(victim)
		ve.clearSharer(cpu)
		if int(ve.owner) == cpu {
			ve.owner = -1
		}
		if vState.Dirty() {
			s.send(protoMsg{kind: KindWriteBack, addr: victim, cpu: cpu}, s.cpuNodes[cpu], vBank)
		}
	}
	s.recordCompletion(cpu, addr)
}

func (s *ClosedSystem) recordCompletion(cpu int, addr uint32) {
	key := reqKey{cpu, addr}
	if info, ok := s.issueTime[key]; ok {
		s.stats.MissLatency.Add(float64(s.net.Cycle() - info.at))
		delete(s.issueTime, key)
		s.outstanding[cpu]--
	}
}

func (s *ClosedSystem) bankOf(addr uint32) topology.NodeID {
	return s.bankNodes[int(addr)%len(s.bankNodes)]
}

func (s *ClosedSystem) genAddr(cpu int) uint32 {
	w := &s.p.Workload
	if u := s.rng.Float64(); u < w.ReuseFrac {
		if addr, ok := s.recent[cpu].sample(s.rng); ok {
			return addr
		}
	}
	var addr uint32
	u := s.rng.Float64()
	switch {
	case u < w.SharedFrac:
		addr = sharedBase + uint32(s.rng.Intn(w.SharedLines))
	case u < w.SharedFrac+w.SeqFrac:
		s.seqPtr[cpu] = (s.seqPtr[cpu] + 1) % uint32(w.WorkingSetLines)
		addr = uint32(cpu+1)<<20 + s.seqPtr[cpu]
	default:
		addr = uint32(cpu+1)<<20 + uint32(s.rng.Intn(w.WorkingSetLines))
	}
	s.recent[cpu].push(addr)
	return addr
}

// issue runs one CPU cycle: maybe start a memory access.
func (s *ClosedSystem) issue(cpu int) {
	w := &s.p.Workload
	if s.outstanding[cpu] >= s.p.MaxOutstanding {
		return
	}
	if s.rng.Float64() >= w.Intensity {
		return
	}
	s.stats.Accesses++
	addr := s.genAddr(cpu)
	key := reqKey{cpu, addr}
	if _, dup := s.issueTime[key]; dup {
		return // already outstanding to this line; coalesce into the MSHR
	}
	isRead := s.rng.Float64() < w.ReadFrac
	st := s.l1s[cpu].Lookup(addr)

	switch {
	case isRead && st != Invalid:
		s.stats.L1Hits++
	case !isRead && (st == Modified || st == Exclusive):
		s.stats.L1Hits++
		s.l1s[cpu].SetState(addr, Modified)
	default:
		s.stats.L1Misses++
		kind := KindGetS
		if !isRead {
			kind = KindGetX
			if st == Shared || st == Owned {
				kind = KindUpgrade
			}
		}
		s.issueTime[key] = issueInfo{at: s.net.Cycle(), write: !isRead}
		s.outstanding[cpu]++
		s.send(protoMsg{kind: kind, addr: addr, cpu: cpu}, s.cpuNodes[cpu], s.bankOf(addr))
	}
}

// Run advances the co-simulation for the given number of cycles and
// returns the statistics. The underlying network result (for power) is
// available via Network().
func (s *ClosedSystem) Run(cycles int64) ClosedStats {
	for i := int64(0); i < cycles; i++ {
		now := s.net.Cycle()
		if acts := s.scheduled[now]; acts != nil {
			delete(s.scheduled, now)
			for _, fn := range acts {
				fn()
			}
		}
		for cpu := range s.cpuNodes {
			s.issue(cpu)
		}
		s.net.Step()
	}
	return s.stats
}

// Network exposes the underlying network for counter/power inspection.
func (s *ClosedSystem) Network() *noc.Network { return s.net }

// Stats returns the accumulated statistics so far.
func (s *ClosedSystem) Stats() *ClosedStats { return &s.stats }

// Packet sizes of the coherence messages, in flits.
const (
	ControlFlits = 1
	DataFlits    = 4
)
