package power

import (
	"math"
	"testing"

	"mira/internal/area"
	"mira/internal/noc"
)

var (
	p2DB  = area.Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1}
	p3DB  = area.Params{Ports: 7, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1}
	p3DM  = area.Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4}
	p3DME = area.Params{Ports: 9, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4}
)

// Figure 9: per-flit energy ordering 3DM < 3DM-E < 2DB < 3DB, with the
// largest 3DM saving coming from the link.
func TestFig9Ordering(t *testing.T) {
	e3DM := FlitHopEnergy(p3DM, 1.58)
	e3DME := FlitHopEnergy(p3DME, 1.58)
	e2DB := FlitHopEnergy(p2DB, 3.1)
	e3DB := FlitHopEnergy(p3DB, 3.1)

	if !(e3DM.Total() < e3DME.Total() && e3DME.Total() < e2DB.Total() && e2DB.Total() < e3DB.Total()) {
		t.Errorf("per-flit energy ordering violated: 3DM=%.1f 3DM-E=%.1f 2DB=%.1f 3DB=%.1f",
			e3DM.Total(), e3DME.Total(), e2DB.Total(), e3DB.Total())
	}
	// Link saving dominates (§3.4.2: "The biggest savings for 3DM comes
	// from the link energy").
	dLink := e2DB.Link - e3DM.Link
	dXbar := e2DB.Crossbar - e3DM.Crossbar
	dBuf := e2DB.Buffer - e3DM.Buffer
	if dLink <= dXbar || dLink <= dBuf {
		t.Errorf("link saving %.1f should dominate xbar %.1f and buffer %.1f", dLink, dXbar, dBuf)
	}
}

func TestFig9ReductionMagnitude(t *testing.T) {
	// Paper: ~35 % per-flit energy reduction for 3DM over 2DB. Our
	// first-principles model lands at 40-55 %; require the reduction to
	// be substantial but sane.
	r := FlitHopEnergy(p3DM, 1.58).Total() / FlitHopEnergy(p2DB, 3.1).Total()
	if r < 0.35 || r > 0.75 {
		t.Errorf("3DM/2DB per-flit energy ratio = %.2f, want within [0.35, 0.75]", r)
	}
}

func TestBufferShareMatchesOrion(t *testing.T) {
	// Wang et al. [5]: input buffers are ~31 % of router dynamic power.
	// Router-only energy excludes the link.
	e := FlitHopEnergy(p2DB, 3.1)
	router := e.Buffer + e.Crossbar + e.Allocators
	share := e.Buffer / router
	if share < 0.22 || share > 0.40 {
		t.Errorf("2DB buffer share = %.2f, want ~0.31", share)
	}
}

func TestCrossbarEnergyScalesWithRadix(t *testing.T) {
	e5 := Model(p2DB).XbarPJ
	e7 := Model(p3DB).XbarPJ
	if e7 <= e5 {
		t.Errorf("7-port crossbar energy %.2f should exceed 5-port %.2f", e7, e5)
	}
	// Roughly linear in port count (wire length and crosspoints both
	// scale with P).
	if r := e7 / e5; r < 1.2 || r > 1.8 {
		t.Errorf("crossbar energy ratio = %.2f, want ~1.4", r)
	}
}

func TestLayerSplitShrinksDatapathEnergy(t *testing.T) {
	e1, e4 := Model(p2DB), Model(p3DM)
	if e4.XbarPJ >= e1.XbarPJ {
		t.Errorf("split crossbar energy should drop: %v vs %v", e4.XbarPJ, e1.XbarPJ)
	}
	if e4.BufWritePJ >= e1.BufWritePJ {
		t.Errorf("split buffer write energy should drop (word-line): %v vs %v", e4.BufWritePJ, e1.BufWritePJ)
	}
	// Bit-lines don't split, so the buffer saving is modest (<20 %).
	if e4.BufWritePJ < 0.8*e1.BufWritePJ {
		t.Errorf("buffer saving too aggressive: %v vs %v", e4.BufWritePJ, e1.BufWritePJ)
	}
}

func TestNetworkEnergyRawVsWeighted(t *testing.T) {
	e := Model(p3DM)
	c := noc.Counters{
		BufWrites: 100, WBufWrites: 100,
		BufReads: 100, WBufReads: 100,
		XbarFlits: 100, WXbarFlits: 100,
		LinkFlits: 80, WLinkFlits: 80,
		LinkMMFlits: 126.4, WLinkMMFlits: 126.4,
		SAReqs: 120, VAReqs: 30, RCOps: 25,
	}
	on := NetworkEnergy(e, c, true)
	off := NetworkEnergy(e, c, false)
	if math.Abs(on.Total()-off.Total()) > 1e-9 {
		t.Errorf("full-width traffic: shutdown should not change energy: %v vs %v", on.Total(), off.Total())
	}
}

func TestShutdownSavesDatapathEnergy(t *testing.T) {
	e := Model(p3DM)
	// 50 % short flits with 4 layers: weighted datapath activity is
	// 0.5 + 0.5/4 = 0.625 of raw.
	c := noc.Counters{
		BufWrites: 1000, WBufWrites: 625,
		BufReads: 1000, WBufReads: 625,
		XbarFlits: 1000, WXbarFlits: 625,
		LinkFlits: 800, WLinkFlits: 500,
		LinkMMFlits: 1264, WLinkMMFlits: 790,
		SAReqs: 1000, VAReqs: 250, RCOps: 250,
	}
	on := NetworkEnergy(e, c, true)
	off := NetworkEnergy(e, c, false)
	saving := 1 - on.Total()/off.Total()
	// Figure 13 (b): up to ~36 % power saving at 50 % short flits. The
	// allocator share keeps it slightly below the 37.5 % datapath bound.
	if saving < 0.30 || saving > 0.375 {
		t.Errorf("shutdown saving = %.3f, want ~0.36", saving)
	}
}

func TestAvgPowerW(t *testing.T) {
	b := Breakdown{Link: 1000} // 1000 pJ
	// 2000 cycles at 2 GHz = 1 us; 1 nJ / 1 us = 1 mW.
	got := AvgPowerW(b, 2000)
	if math.Abs(got-0.001) > 1e-12 {
		t.Errorf("AvgPowerW = %v, want 0.001", got)
	}
}

func TestAvgPowerWPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("zero window should panic")
		}
	}()
	AvgPowerW(Breakdown{}, 0)
}

func TestModelPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("invalid params should panic")
		}
	}()
	Model(area.Params{})
}

func TestFlitHopComponentsPositive(t *testing.T) {
	for _, p := range []area.Params{p2DB, p3DB, p3DM, p3DME} {
		e := FlitHopEnergy(p, 2.0)
		if e.Buffer <= 0 || e.Crossbar <= 0 || e.Link <= 0 || e.Allocators <= 0 {
			t.Errorf("non-positive component for %+v: %+v", p, e)
		}
	}
}

func TestLinkEnergyLinearInLength(t *testing.T) {
	e := Model(p2DB)
	short := e.LinkPJPerMM*1 + e.LinkFixedPJ
	long := e.LinkPJPerMM*2 + e.LinkFixedPJ
	if math.Abs((long-short)-e.LinkPJPerMM) > 1e-9 {
		t.Errorf("link energy not linear")
	}
	// Vertical TSV hops (0.02 mm) must be far cheaper than planar hops.
	vert := e.LinkPJPerMM*0.02 + e.LinkFixedPJ
	horiz := e.LinkPJPerMM*3.1 + e.LinkFixedPJ
	if vert > horiz/5 {
		t.Errorf("TSV hop %.2f pJ should be <1/5 of planar hop %.2f pJ", vert, horiz)
	}
}
