package power_test

import (
	"fmt"

	"mira/internal/area"
	"mira/internal/power"
)

func ExampleFlitHopEnergy() {
	p2DB := area.Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1}
	p3DM := area.Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4}
	e2 := power.FlitHopEnergy(p2DB, 3.1)
	e3 := power.FlitHopEnergy(p3DM, 1.58)
	fmt.Printf("2DB %.1f pJ/flit/hop, 3DM %.1f pJ/flit/hop\n", e2.Total(), e3.Total())
	// Output: 2DB 64.3 pJ/flit/hop, 3DM 34.7 pJ/flit/hop
}
