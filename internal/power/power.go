// Package power is an Orion-style dynamic energy model for on-chip
// routers (Wang et al., MICRO 2002), evaluated at the paper's 90 nm /
// 1.0 V / 2 GHz design point. Every switching event costs 0.5*C*V^2 with
// capacitances derived from the structure dimensions the area model
// provides:
//
//   - buffer read/write: bit-line plus word-line charge per bit, the
//     word-line shrinking with per-layer width when the buffer is split
//     across layers (§3.2.1);
//   - crossbar traversal: input + output wire of one matrix-crossbar
//     line (length = per-layer crossbar side) plus the tri-state
//     cross-point loading, per bit;
//   - link traversal: repeated global wire capacitance per mm plus a
//     fixed driver/receiver charge, per bit;
//   - allocators: per-input gate energy per arbitration.
//
// Constants are chosen so the planar 2DB router reproduces the published
// Orion breakdown (input buffers ~31 % of router dynamic energy, Wang et
// al. [5]) and Figure 9's relative ordering (3DM < 3DM-E < 2DB < 3DB per
// flit).
package power

import (
	"fmt"

	"mira/internal/area"
	"mira/internal/noc"
)

// Technology constants (90 nm).
const (
	// VDD is the supply voltage.
	VDD = 1.0
	// XbarWireFFPerUM is crossbar wire capacitance per um.
	XbarWireFFPerUM = 0.2
	// XbarCrosspointFF is the tri-state buffer loading per cross-point
	// on a crossbar line.
	XbarCrosspointFF = 4.0
	// LinkWireFFPerUM is repeated inter-router wire capacitance per um
	// (includes repeater input/output caps).
	LinkWireFFPerUM = 0.2
	// LinkDriverFF is the fixed driver+receiver charge per bit per hop.
	LinkDriverFF = 40.0
	// BufBitlineFJ is the bit-line + cell energy per bit per access.
	BufBitlineWriteFJ = 24.0
	BufBitlineReadFJ  = 16.0
	// BufWordlineFJ is the word-line energy per bit at full (unsplit)
	// row width; it scales with the per-layer width when split.
	BufWordlineWriteFJ = 6.0
	BufWordlineReadFJ  = 4.0
	// ArbInputFJ is the allocator energy per request input per
	// arbitration.
	ArbInputFJ = 30.0
	// RCFJ is one route computation.
	RCFJ = 200.0
	// ClockGHz converts per-cycle energy to power.
	ClockGHz = 2.0
)

// Energy holds per-event energies in pJ for one router design. Datapath
// entries (buffer, crossbar, link) are per full-width flit; with layer
// shutdown they scale by the flit's active-layer fraction.
type Energy struct {
	BufWritePJ  float64
	BufReadPJ   float64
	XbarPJ      float64
	LinkPJPerMM float64 // per flit and mm of link
	LinkFixedPJ float64 // per flit and hop (drivers)
	SAOpPJ      float64 // per switch-allocator arbitration
	VAOpPJ      float64 // per VC-allocator arbitration
	RCOpPJ      float64 // per route computation
}

// Model derives per-event energies from a router design point.
func Model(p area.Params) Energy {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	W := float64(p.FlitWidth)
	P := float64(p.Ports)
	side := area.XbarSideUM(p)
	invLayers := 1.0 / float64(p.Layers)

	e := Energy{}
	half := 0.5 * VDD * VDD // fJ per fF of switched capacitance

	// Buffers: the per-bit constants are energies (fJ); the word-line
	// portion shrinks with the per-layer row width.
	e.BufWritePJ = W * (BufBitlineWriteFJ + BufWordlineWriteFJ*invLayers) * 1e-3
	e.BufReadPJ = W * (BufBitlineReadFJ + BufWordlineReadFJ*invLayers) * 1e-3

	// Crossbar: a flit drives one input line and one output line per
	// layer; summed over layers that is W bits each seeing wire of the
	// per-layer side length plus P cross-points on each line.
	e.XbarPJ = W * half * (2*XbarWireFFPerUM*side + 2*P*XbarCrosspointFF) * 1e-3

	// Links.
	e.LinkPJPerMM = W * half * LinkWireFFPerUM * 1000 * 1e-3
	e.LinkFixedPJ = W * half * LinkDriverFF * 1e-3

	// Allocators: switch requests arbitrate among P*V inputs; VC
	// requests among P*V as well (the VA2 stage of §3.2.5).
	e.SAOpPJ = float64(p.Ports*p.VCs) * ArbInputFJ * 1e-3
	e.VAOpPJ = float64(p.Ports*p.VCs) * ArbInputFJ * 1e-3
	e.RCOpPJ = RCFJ * 1e-3
	return e
}

// FlitHop is the Figure 9 quantity: energy consumed by one full-width
// flit traversing one router plus its outgoing link, broken down by
// component (pJ).
type FlitHop struct {
	Buffer, Crossbar, Link, Allocators float64
}

// Total returns the summed per-hop flit energy.
func (f FlitHop) Total() float64 { return f.Buffer + f.Crossbar + f.Link + f.Allocators }

// FlitHopEnergy evaluates FlitHop for a design with the given average
// link length (mm).
func FlitHopEnergy(p area.Params, linkLenMM float64) FlitHop {
	e := Model(p)
	return FlitHop{
		Buffer:     e.BufWritePJ + e.BufReadPJ,
		Crossbar:   e.XbarPJ,
		Link:       e.LinkPJPerMM*linkLenMM + e.LinkFixedPJ,
		Allocators: e.SAOpPJ + e.VAOpPJ + e.RCOpPJ,
	}
}

// Breakdown is total network energy by component over a measurement
// window (pJ).
type Breakdown struct {
	Buffer, Crossbar, Link, Allocators float64
}

// Total returns the summed energy (pJ).
func (b Breakdown) Total() float64 { return b.Buffer + b.Crossbar + b.Link + b.Allocators }

// NetworkEnergy converts switching activity into energy. With shutdown
// true the weighted (active-layer-scaled) counters drive the datapath
// components, modeling the short-flit layer-shutdown technique; control
// logic (allocators, RC) always runs at full width.
func NetworkEnergy(e Energy, c noc.Counters, shutdown bool) Breakdown {
	var b Breakdown
	if shutdown {
		b.Buffer = c.WBufWrites*e.BufWritePJ + c.WBufReads*e.BufReadPJ
		b.Crossbar = c.WXbarFlits * e.XbarPJ
		b.Link = c.WLinkMMFlits*e.LinkPJPerMM + c.WLinkFlits*e.LinkFixedPJ
	} else {
		b.Buffer = float64(c.BufWrites)*e.BufWritePJ + float64(c.BufReads)*e.BufReadPJ
		b.Crossbar = float64(c.XbarFlits) * e.XbarPJ
		b.Link = c.LinkMMFlits*e.LinkPJPerMM + float64(c.LinkFlits)*e.LinkFixedPJ
	}
	b.Allocators = float64(c.SAReqs)*e.SAOpPJ + float64(c.VAReqs)*e.VAOpPJ + float64(c.RCOps)*e.RCOpPJ
	return b
}

// AvgPowerW converts a window's energy into average power in watts.
func AvgPowerW(b Breakdown, cycles int64) float64 {
	if cycles <= 0 {
		panic(fmt.Sprintf("power: non-positive window %d", cycles))
	}
	seconds := float64(cycles) / (ClockGHz * 1e9)
	return b.Total() * 1e-12 / seconds
}
