package power

import (
	"math"
	"testing"
)

func TestStaticPowerReference(t *testing.T) {
	// 1 mm^2 at the reference temperature leaks exactly the reference
	// density.
	got := StaticPowerW(1e6, LeakageRefK)
	if math.Abs(got-LeakageWPerMM2At85C) > 1e-12 {
		t.Errorf("reference leakage = %v, want %v", got, LeakageWPerMM2At85C)
	}
}

func TestStaticPowerDoubles(t *testing.T) {
	base := StaticPowerW(1e6, LeakageRefK)
	hot := StaticPowerW(1e6, LeakageRefK+LeakageDoublingK)
	if math.Abs(hot/base-2) > 1e-9 {
		t.Errorf("leakage should double per %v K: ratio %v", LeakageDoublingK, hot/base)
	}
}

func TestStaticPowerScalesWithArea(t *testing.T) {
	a := StaticPowerW(433628, 350) // 2DB router
	b := StaticPowerW(2*433628, 350)
	if math.Abs(b/a-2) > 1e-9 {
		t.Errorf("leakage not linear in area")
	}
}

func TestRouterLeakageSmallVsDynamic(t *testing.T) {
	// A 2DB router (0.43 mm^2) at 85 C leaks ~22 mW — small against the
	// ~100+ mW dynamic power at moderate load, as the dynamic-focused
	// evaluation of the paper assumes.
	leak := StaticPowerW(433628, LeakageRefK)
	if leak < 0.01 || leak > 0.05 {
		t.Errorf("2DB router leakage = %v W, want ~0.02", leak)
	}
}

func TestLeakageFixedPointConverges(t *testing.T) {
	leak, temp := LeakageFixedPoint(0.1, 433628, 5.0, 318.15)
	if leak <= 0 || temp <= 318.15 {
		t.Fatalf("fixed point degenerate: %v W, %v K", leak, temp)
	}
	// Self-consistency: T = amb + R*(dyn+leak) and leak = f(T).
	wantT := 318.15 + 5.0*(0.1+leak)
	if math.Abs(temp-wantT) > 0.01 {
		t.Errorf("temperature inconsistent: %v vs %v", temp, wantT)
	}
	wantL := StaticPowerW(433628, temp)
	if math.Abs(leak-wantL) > 1e-6 {
		t.Errorf("leakage inconsistent: %v vs %v", leak, wantL)
	}
}

func TestLeakageFeedbackMonotone(t *testing.T) {
	// More dynamic power -> hotter -> strictly more leakage.
	l1, t1 := LeakageFixedPoint(0.05, 433628, 5.0, 318.15)
	l2, t2 := LeakageFixedPoint(0.50, 433628, 5.0, 318.15)
	if l2 <= l1 || t2 <= t1 {
		t.Errorf("feedback not monotone: (%v,%v) vs (%v,%v)", l1, t1, l2, t2)
	}
}
