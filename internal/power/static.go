package power

import "math"

// Static (leakage) power model. The paper's thermal discussion (§2.2)
// notes that increased 3D temperatures raise leakage, which in turn
// raises temperature — the classic leakage-thermal feedback loop. This
// file provides a compact 90 nm subthreshold-leakage model: leakage
// scales with silicon area and exponentially with temperature, with
// constants normalized at a 358.15 K (85 C) junction reference.
const (
	// LeakageWPerMM2At85C is router-logic leakage power density at the
	// reference temperature (90 nm high-performance process).
	LeakageWPerMM2At85C = 0.05
	// LeakageRefK is the reference junction temperature.
	LeakageRefK = 358.15
	// LeakageDoublingK is the temperature increase that doubles
	// subthreshold leakage (~25-30 K at 90 nm).
	LeakageDoublingK = 28.0
)

// StaticPowerW returns the leakage power of a block of the given silicon
// area (um^2) at the given absolute temperature (K).
func StaticPowerW(areaUM2, tempK float64) float64 {
	areaMM2 := areaUM2 * 1e-6
	return LeakageWPerMM2At85C * areaMM2 * math.Exp2((tempK-LeakageRefK)/LeakageDoublingK)
}

// LeakageFixedPoint iterates the leakage-thermal feedback: given a
// block's dynamic power, its area, and a thermal resistance to ambient,
// it solves P_leak = f(T), T = T_amb + R*(P_dyn + P_leak) by fixed-point
// iteration. It returns the converged leakage power and temperature.
// The iteration is a contraction whenever R * dP/dT < 1, which holds for
// realistic router areas; it stops after maxIter otherwise.
func LeakageFixedPoint(dynW, areaUM2, rKPerW, ambientK float64) (leakW, tempK float64) {
	const (
		maxIter = 100
		epsW    = 1e-9
	)
	tempK = ambientK
	for i := 0; i < maxIter; i++ {
		next := StaticPowerW(areaUM2, tempK)
		tempK = ambientK + rKPerW*(dynW+next)
		if math.Abs(next-leakW) < epsW {
			leakW = next
			break
		}
		leakW = next
	}
	return leakW, tempK
}
