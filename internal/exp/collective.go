package exp

import (
	"context"
	"fmt"

	"mira/internal/collective"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/scenario"
)

// CollectiveResult pairs the network-level result of a collective run
// with the engine's completion report.
type CollectiveResult struct {
	Res noc.Result
	Rep collective.Report
}

// CollectiveFabric is one floorplan point of the sweep: a chip grid
// whose 1x1 corner is the monolithic 8x8 mesh.
type CollectiveFabric struct {
	name           string
	chipsX, chipsY int
	nodesX, nodesY int
	d2dLat, d2dSer int
}

// CollectiveFabrics returns the sweep's floorplan points.
func CollectiveFabrics() []CollectiveFabric {
	return []CollectiveFabric{
		{name: "8x8 mono", chipsX: 1, chipsY: 1, nodesX: 8, nodesY: 8, d2dLat: 1, d2dSer: 1},
		{name: "2x2 d2d=1:1", chipsX: 2, chipsY: 2, nodesX: 4, nodesY: 4, d2dLat: 1, d2dSer: 1},
		{name: "2x2 d2d=8:4", chipsX: 2, chipsY: 2, nodesX: 4, nodesY: 4, d2dLat: 8, d2dSer: 4},
	}
}

// CollectiveSweep runs every collective algorithm over a 64-node fabric
// in three floorplans: the monolithic 8x8 mesh, the same mesh split
// into a 2x2 chip grid with ideal (1-cycle full-width) d2d channels,
// and the grid with slow serializing channels (8-cycle latency, 4
// cycles per flit). The workload is closed-loop, so the columns are
// completion latencies, not offered-load curves: a step's messages
// launch only when their predecessors arrive, which is why d2d
// serialization compounds across the schedule instead of just adding a
// fixed per-hop cost.
func CollectiveSweep(ctx context.Context, o Options) Table {
	t := Table{
		ID:    "ext-collective",
		Title: "Collective completion: 64 ranks, 4-flit messages, 2 iterations",
		Header: []string{
			"algorithm", "fabric", "steps", "msg lat", "part min", "part mean", "part max", "e2e/iter", "done",
		},
	}
	algs := collective.Algorithms()
	fabrics := CollectiveFabrics()
	points := make([]Point[CollectiveResult], 0, len(algs)*len(fabrics))
	for _, alg := range algs {
		for _, fab := range fabrics {
			alg, fab := alg, fab
			points = append(points, Point[CollectiveResult]{
				Label: fmt.Sprintf("collective %s %s", alg, fab.name),
				Run: func(ctx context.Context, o Options) CollectiveResult {
					return RunCollective(ctx, alg, fab, o)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	k := 0
	for _, alg := range algs {
		for _, fab := range fabrics {
			r := res[k]
			k++
			t.Rows = append(t.Rows, []string{
				string(alg),
				fab.name,
				fmt.Sprintf("%d", r.Rep.Steps),
				f1(r.Rep.Messages.Mean()),
				fmt.Sprintf("%d", r.Rep.Participant.Min),
				f1(r.Rep.Participant.Mean()),
				fmt.Sprintf("%d", r.Rep.Participant.Max),
				f1(r.Rep.Iteration.Mean()),
				fmt.Sprintf("%d/%d", r.Rep.Completed, r.Rep.Iterations),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: causally-dependent collective traffic (internal/collective) instead of open-loop injection",
		"part = per-participant completion (last receive - iteration start, cycles); e2e/iter = mean end-to-end iteration latency",
		"ring allreduce takes 2(N-1) steps, reduce-scatter N-1, tree broadcast ceil(log2 N); the broadcast root receives nothing and is excluded from part",
	)
	return t
}

// RunCollective simulates one collective algorithm on one fabric point.
func RunCollective(ctx context.Context, alg collective.Algorithm, fab CollectiveFabric, o Options) CollectiveResult {
	sc := CollectiveScenario(alg, fab, o)
	e := mustElaborate(sc)
	res := e.Sim.Run(ctx)
	return CollectiveResult{Res: res, Rep: e.Collective.Report()}
}

// CollectiveScenario is the run description behind one sweep point. The
// workload is closed-loop — its length is set by the schedule, not by
// an offered rate — so the measure window is widened (5x the options')
// to let the slow-d2d corners complete; cycles after the last delivery
// are idle and nearly free under activity stepping. Warmup is zero:
// collectives start at cycle 0 (the scenario layer rejects anything
// else for this kind).
func CollectiveScenario(alg collective.Algorithm, fab CollectiveFabric, o Options) scenario.Scenario {
	sc := o.Scenario(core.Arch2DB)
	sc.Warmup = 0
	sc.Measure = 5 * o.Measure
	sc.Traffic = scenario.Traffic{
		Kind: "collective",
		Collective: &scenario.Collective{
			Algorithm:  string(alg),
			Iterations: 2,
		},
	}
	sc.Chips = &scenario.Chips{
		ChipsX: fab.chipsX, ChipsY: fab.chipsY,
		NodesX: fab.nodesX, NodesY: fab.nodesY,
		D2DLatency: fab.d2dLat, D2DSerCycles: fab.d2dSer,
	}
	return sc
}
