package exp

import (
	"context"
	"fmt"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/scenario"
	"mira/internal/stats"
	"mira/internal/thermal"
	"mira/internal/topology"
)

// ExtLeakage is an extension experiment beyond the paper's figures: the
// leakage-thermal feedback the paper flags as a 3D risk (§2.2: "The
// increased temperature in 3D chips has negative impacts on ...
// leakage power"). For each design it converges the per-router leakage
// against its junction temperature and reports leakage as a share of
// network power at a moderate uniform-random load.
func ExtLeakage(ctx context.Context, o Options) Table {
	t := Table{
		ID:    "ext-leakage",
		Title: "Router leakage with thermal feedback (uniform random @ 0.15)",
		Header: []string{
			"design", "dyn W (network)", "leak W (network)", "leak %", "router T (K)",
		},
	}
	const rate = 0.15
	// Effective junction-to-ambient resistance seen by one router
	// column: the sink resistance under a node footprint, in parallel
	// with lateral spreading; a compact constant derived from the
	// thermal grid at the 3DM node pitch.
	const rNodeKPerW = 5.0
	var archs []core.Arch
	for _, a := range core.Archs {
		if a == core.Arch3DMNC || a == core.Arch3DMENC {
			continue // identical silicon to the combined variants
		}
		archs = append(archs, a)
	}
	points := make([]Point[noc.Result], 0, len(archs))
	for _, a := range archs {
		a := a
		points = append(points, Point[noc.Result]{
			Label: fmt.Sprintf("leakage arch=%s", a),
			Run: func(ctx context.Context, o Options) noc.Result {
				return RunUR(ctx, a, rate, 0, o)
			},
		})
	}
	results := RunAll(ctx, o, points)
	for i, a := range archs {
		d := corePowerOf(a)
		res := results[i]
		dynTotal := NetworkPowerW(d, res, false)
		routers := float64(d.Topo.NumNodes())
		dynPerRouter := dynTotal / routers
		leakPerRouter, tempK := power.LeakageFixedPoint(
			dynPerRouter, d.Area.TotalRouter, rNodeKPerW, thermal.AmbientK)
		leakTotal := leakPerRouter * routers
		t.Rows = append(t.Rows, []string{
			d.Arch.String(),
			f3(dynTotal),
			f3(leakTotal),
			f1(100 * leakTotal / (leakTotal + dynTotal)),
			f1(tempK),
		})
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: 90 nm subthreshold leakage, doubling per 28 K, converged against router temperature",
		fmt.Sprintf("per-router junction resistance %.1f K/W above %.1f K ambient", rNodeKPerW, thermal.AmbientK))
	return t
}

// ExtCosim is the closed-loop CMP/NoC co-simulation extension: instead
// of replaying pre-recorded traces (the paper's open-loop methodology),
// the MESI protocol engines drive the live network and CPU miss latency
// includes real queueing. It reports the end-to-end L2 access time per
// architecture, the quantity the interconnect improvements ultimately
// buy.
func ExtCosim(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "ext-cosim",
		Title:  "Closed-loop CMP co-simulation: L1-miss (L2 access) latency",
		Header: []string{"workload", "2DB", "3DB", "3DM", "3DM-E", "3DM-E vs 2DB"},
	}
	names := []string{"tpcw", "ocean"}
	archs := []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME}
	type cosimOut struct {
		mean float64
		err  error
	}
	points := make([]Point[cosimOut], 0, len(names)*len(archs))
	for _, name := range names {
		w, ok := cmp.ByName(name)
		if !ok {
			return t, fmt.Errorf("exp: workload %s missing", name)
		}
		for _, a := range archs {
			w, a := w, a
			points = append(points, Point[cosimOut]{
				Label: fmt.Sprintf("cosim %s arch=%s", w.Name, a),
				Run: func(ctx context.Context, o Options) cosimOut {
					// The closed loop supplies its own traffic, so it
					// elaborates the design and config (not a Sim)
					// through the scenario layer and drives the network
					// itself.
					d, cfg, err := o.Scenario(a).NoCConfig()
					if err != nil {
						return cosimOut{err: err}
					}
					cfg.Policy = noc.ByClass
					p := cmp.DefaultParams(w, d.Topo, o.Seed)
					cs, err := cmp.NewClosedSystem(p, cfg)
					if err != nil {
						return cosimOut{err: err}
					}
					st := cs.Run(o.Measure + o.Warmup)
					return cosimOut{mean: st.MissLatency.Mean()}
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	for i, name := range names {
		row := []string{name}
		var base, express float64
		for j, a := range archs {
			r := res[i*len(archs)+j]
			if r.err != nil {
				return t, r.err
			}
			row = append(row, f1(r.mean))
			switch a {
			case core.Arch2DB:
				base = r.mean
			case core.Arch3DME:
				express = r.mean
			}
		}
		row = append(row, fmt.Sprintf("-%.0f%%", 100*(1-stats.Ratio(express, base))))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: protocol engines drive the live NoC (the paper replays open-loop traces)")
	return t, nil
}

// ExtQoS evaluates the QoS use of the spare 3DM bandwidth suggested in
// §3.3: control/request packets get switch priority over data. It
// reports per-class latency with QoS off and on, near saturation where
// arbitration matters.
func ExtQoS(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "ext-qos",
		Title:  "QoS priority arbitration, bimodal NUCA traffic (3DM)",
		Header: []string{"inj rate / QoS", "ctrl lat", "data lat", "avg lat"},
	}
	rates := []float64{0.15, 0.20}
	qosModes := []bool{false, true}
	points := make([]Point[noc.Result], 0, len(rates)*len(qosModes))
	for _, rate := range rates {
		for _, qos := range qosModes {
			rate, qos := rate, qos
			points = append(points, Point[noc.Result]{
				Label: fmt.Sprintf("qos rate=%.2f on=%v", rate, qos),
				Run: func(ctx context.Context, o Options) noc.Result {
					sc := o.Scenario(core.Arch3DM)
					sc.Traffic = scenario.Traffic{Kind: "nuca", Rate: rate}
					sc.QoSPriority = qos
					return mustElaborate(sc).Sim.Run(ctx)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	k := 0
	for _, rate := range rates {
		for _, qos := range qosModes {
			r := res[k]
			k++
			label := fmt.Sprintf("%.2f / off", rate)
			if qos {
				label = fmt.Sprintf("%.2f / on", rate)
			}
			t.Rows = append(t.Rows, []string{
				label,
				f1(r.PerClass[noc.Control].AvgLatency),
				f1(r.PerClass[noc.Data].AvgLatency),
				latCell(r),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper (§3.3 flags QoS as a use of the spare port bandwidth)",
		"largely a negative result for this traffic mix: the per-class VCs already isolate the sparse control packets, so switch priority buys little control latency and costs data latency once the network saturates (0.20 row)")
	return t
}

// ExtFault evaluates the fault-tolerance use of §3.3: a 3DM mesh with a
// failed east link keeps operating under west-first routing. The table
// compares the healthy network under X-Y and west-first (the adaptivity
// tax) against the faulted network (the detour tax).
func ExtFault(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "ext-fault",
		Title:  "Link-fault tolerance via west-first routing (3DM, uniform random @ 0.15)",
		Header: []string{"configuration", "avg lat", "avg hops", "delivered"},
	}
	type faultOut struct {
		res noc.Result
		err error
	}
	// The faulted configuration fails the east link out of the centre
	// node (2,2), the highest-traffic region of the mesh.
	mid := int(core.MustDesign(core.Arch3DM).Topo.MustNodeAt(topology.Coord{X: 2, Y: 2}).ID)
	cases := []struct {
		name    string
		routing string
		faults  []scenario.Fault
	}{
		{"healthy, X-Y", "xy", nil},
		{"healthy, west-first", "westfirst", nil},
		{"east link (2,2) failed, west-first", "westfirst", []scenario.Fault{{Src: mid, Dir: "east"}}},
	}
	points := make([]Point[faultOut], 0, len(cases))
	for _, c := range cases {
		c := c
		points = append(points, Point[faultOut]{
			Label: "fault " + c.name,
			Run: func(ctx context.Context, o Options) faultOut {
				sc := o.Scenario(core.Arch3DM)
				sc.Traffic = scenario.Traffic{Kind: "ur", Rate: 0.15}
				sc.Routing = c.routing
				sc.Faults = c.faults
				e, err := sc.Elaborate()
				if err != nil {
					return faultOut{err: err}
				}
				return faultOut{res: e.Sim.Run(ctx)}
			},
		})
	}
	for i, r := range RunAll(ctx, o, points) {
		if r.err != nil {
			return t, r.err
		}
		t.Rows = append(t.Rows, []string{
			cases[i].name, latCell(r.res), f2(r.res.AvgHops),
			fmt.Sprintf("%d/%d", r.res.Ejected, r.res.Generated),
		})
	}

	t.Notes = append(t.Notes,
		"extension beyond the paper (§3.3 flags fault tolerance as a use of the spare channels)",
		"west faults are unroutable under the west-first turn model and are rejected at construction")
	return t, nil
}

// ExtProtocol compares the coherence protocol's impact on the network:
// MOESI's Owned state turns each read forward's immediate write-back
// into a deferred, eviction-time one, cutting data traffic and hence
// network power on sharing-heavy workloads.
func ExtProtocol(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "ext-protocol",
		Title:  "MESI vs MOESI coherence traffic on the 3DM network",
		Header: []string{"workload/protocol", "WB packets", "flits", "net power (W)", "avg lat"},
	}
	names := []string{"barnes", "tpcw"}
	protos := []cmp.Protocol{cmp.MESI, cmp.MOESI}
	type protoOut struct {
		wb    int64
		flits int64
		res   noc.Result
		err   error
	}
	points := make([]Point[protoOut], 0, len(names)*len(protos))
	for _, name := range names {
		w, ok := cmp.ByName(name)
		if !ok {
			return t, fmt.Errorf("exp: workload %s missing", name)
		}
		for _, proto := range protos {
			w, proto := w, proto
			protoName := "mesi"
			if proto == cmp.MOESI {
				protoName = "moesi"
			}
			points = append(points, Point[protoOut]{
				Label: fmt.Sprintf("protocol %s/%s", w.Name, proto),
				Run: func(ctx context.Context, o Options) protoOut {
					sc := o.Scenario(core.Arch3DM)
					sc.Traffic = scenario.Traffic{
						Kind: "trace", Workload: w.Name, TraceCycles: o.TraceCycles, Protocol: protoName,
					}
					e, err := sc.Elaborate()
					if err != nil {
						return protoOut{err: err}
					}
					return protoOut{
						wb:    e.Stats.KindCounts[cmp.KindWriteBack],
						flits: e.Trace.Flits(),
						res:   e.Sim.Run(ctx),
					}
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	d := corePowerOf(core.Arch3DM)
	k := 0
	for _, name := range names {
		for _, proto := range protos {
			r := res[k]
			k++
			if r.err != nil {
				return t, r.err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s/%s", name, proto),
				fmt.Sprintf("%d", r.wb),
				fmt.Sprintf("%d", r.flits),
				f3(NetworkPowerW(d, r.res, true)),
				latCell(r.res),
			})
		}
	}
	t.Notes = append(t.Notes, "extension beyond the paper (which models MESI, §4.1.2)")
	return t, nil
}

// ExtHerding evaluates the paper's first future-work item: combining
// the true-3D (Thermal Herding) processor of Puttaswamy & Loh with the
// MIRA router. Steering core activity toward the heat-sink layer and
// shutting down router layers for short flits compound into a lower
// chip temperature than either technique alone.
func ExtHerding(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "ext-herding",
		Title:  "Thermal herding + 3DM router shutdown (uniform random @ 0.20)",
		Header: []string{"configuration", "avg T rise (K)", "max T rise (K)"},
	}
	fracs := []float64{0, 0.5}
	points := make([]Point[noc.Result], 0, len(fracs))
	for _, frac := range fracs {
		frac := frac
		points = append(points, Point[noc.Result]{
			Label: fmt.Sprintf("herding short=%.0f%%", 100*frac),
			Run: func(ctx context.Context, o Options) noc.Result {
				return RunUR(ctx, core.Arch3DM, 0.20, frac, o)
			},
		})
	}
	res := RunAll(ctx, o, points)
	d := corePowerOf(core.Arch3DM)
	r0, r50 := res[0], res[1]
	cases := []struct {
		name string
		res  noc.Result
		dist [core.Layers]float64
	}{
		{"even cores, no short flits", r0, EvenCoreLayers},
		{"even cores, 50% short flits", r50, EvenCoreLayers},
		{"herded cores, no short flits", r0, HerdedCoreLayers},
		{"herded cores, 50% short flits", r50, HerdedCoreLayers},
	}
	for _, c := range cases {
		temps := solveChipTempsDist(d, c.res, c.dist)
		t.Rows = append(t.Rows, []string{c.name, f2(thermal.Average(temps)), f2(thermal.Max(temps))})
	}
	t.Notes = append(t.Notes,
		"extension: the paper's conclusion proposes combining true-3D processors [16] with the 3DM router",
		"herding steers 60% of core activity to the heat-sink layer")
	return t
}

// ExtPatterns stresses the designs with adversarial synthetic patterns
// (transpose, complement, tornado, hotspot) beyond the paper's uniform
// random workload, probing whether the 3DM-E advantage survives
// non-uniform loads.
func ExtPatterns(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "ext-patterns",
		Title:  "Adversarial traffic patterns: avg latency (cycles) at 0.15 flits/node/cycle",
		Header: []string{"pattern", "2DB", "3DB", "3DM", "3DM-E"},
	}
	archs := []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME}
	const rate = 0.15
	type patternOut struct {
		res noc.Result
		err error
	}
	// The hotspot row uses the scenario layer's default hot set: the
	// chip-centre nodes of each floorplan, 30 % of the traffic.
	rows := []struct {
		name string
		kind string
	}{
		{"transpose", "transpose"},
		{"complement", "complement"},
		{"tornado", "tornado"},
		{"hotspot(4c,30%)", "hotspot"},
	}
	points := make([]Point[patternOut], 0, len(rows)*len(archs))
	for _, r := range rows {
		for _, a := range archs {
			r, a := r, a
			points = append(points, Point[patternOut]{
				Label: fmt.Sprintf("pattern=%s arch=%s", r.name, a),
				Run: func(ctx context.Context, o Options) patternOut {
					sc := o.Scenario(a)
					sc.Traffic = scenario.Traffic{Kind: r.kind, Rate: rate}
					if r.kind == "hotspot" {
						sc.Traffic.HotFrac = 0.3
					}
					e, err := sc.Elaborate()
					if err != nil {
						return patternOut{err: err}
					}
					return patternOut{res: e.Sim.Run(ctx)}
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	for i, r := range rows {
		row := []string{r.name}
		for j := range archs {
			p := res[i*len(archs)+j]
			if p.err != nil {
				return t, p.err
			}
			row = append(row, latCell(p.res))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper (MIRA evaluates uniform random only)",
		"the hotspot region is the chip centre: 4 nodes on the 6x6 floorplans but a single top-layer node on 3DB's 3x3, which therefore saturates")
	return t, nil
}
