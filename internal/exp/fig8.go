package exp

import (
	"context"
	"fmt"

	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/scenario"
)

// Fig8 evaluates the router pipeline family of Figure 8: the canonical
// 4-stage pipeline, speculative switch allocation (3-stage), look-ahead
// routing plus speculation (2-stage), and the 3DM ST+LT combination —
// alone and stacked on top of the aggressive pipelines. Latencies are
// measured on the 6x6 mesh under uniform random traffic.
func Fig8(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "fig8",
		Title:  "Router pipeline family (uniform random, 6x6 mesh)",
		Header: []string{"pipeline", "STLT", "lat @0.05", "lat @0.15", "lat @0.30"},
	}
	type variant struct {
		name       string
		look, spec bool
		stlt       int
	}
	variants := []variant{
		{"(a) RC|VA|SA|ST +LT", false, false, 2},
		{"(b) RC|VA+SA|ST +LT", false, true, 2},
		{"(c) VA+SA|ST +LT", true, true, 2},
		{"(d) RC|VA|SA|ST+LT (3DM)", false, false, 1},
		{"(c)+(d) VA+SA|ST+LT", true, true, 1},
	}
	rates := []float64{0.05, 0.15, 0.30}
	points := make([]Point[noc.Result], 0, len(variants)*len(rates))
	for _, v := range variants {
		for _, rate := range rates {
			v, rate := v, rate
			points = append(points, Point[noc.Result]{
				Label: fmt.Sprintf("pipe=%s rate=%.2f", v.name, rate),
				Run: func(ctx context.Context, o Options) noc.Result {
					sc := o.Scenario(core.Arch2DB)
					sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate}
					sc.LookaheadRC = v.look
					sc.SpecSA = v.spec
					sc.STLTCycles = v.stlt
					return mustElaborate(sc).Sim.Run(ctx)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	for i, v := range variants {
		row := []string{v.name, f2(float64(v.stlt))}
		for j := range rates {
			row = append(row, latCell(res[i*len(rates)+j]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"(d) assumes the 3DM wire lengths; on the real 2DB crossbar the combined stage misses the 500 ps budget (Table 3)")
	return t
}
