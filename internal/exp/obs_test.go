package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"mira/internal/core"
	"mira/internal/noc"
)

// TestSpanStagesDeterministic pins the obs-stages driver's determinism
// contract: the rendered decomposition table is byte-identical for any
// worker count and across the activity and fullscan cycle loops. Span
// folding rides on the probe stream, so this also guards the stream's
// cross-mode equivalence at the experiment level.
func TestSpanStagesDeterministic(t *testing.T) {
	archs := []core.Arch{core.Arch2DB, core.Arch3DM}
	run := func(mode noc.StepMode, workers int) string {
		o := stepModeOpts(mode)
		o.Workers = workers
		tb := SpanStages(context.Background(), archs, 0.12, o)
		return tb.CSV()
	}
	ref := run(noc.StepFullScan, 1)
	if !strings.Contains(ref, "2DB") || len(strings.Split(ref, "\n")) < len(archs)+1 {
		t.Fatalf("reference table is degenerate:\n%s", ref)
	}
	variants := []struct {
		name    string
		mode    noc.StepMode
		workers int
	}{
		{"fullscan_w3", noc.StepFullScan, 3},
		{"activity_w1", noc.StepActivity, 1},
		{"activity_w4", noc.StepActivity, 4},
	}
	for _, v := range variants {
		if got := run(v.mode, v.workers); got != ref {
			t.Errorf("%s table diverges from fullscan_w1:\n%s\nwant:\n%s", v.name, got, ref)
		}
	}
}

// TestSpanStagesSumsToNetwork re-checks the telescoping identity at the
// driver level: in every row the stage means (route onward) sum to the
// network mean within formatting precision.
func TestSpanStagesSumsToNetwork(t *testing.T) {
	o := stepModeOpts(noc.StepActivity)
	tb := SpanStages(context.Background(), []core.Arch{core.Arch3DME}, 0.12, o)
	if len(tb.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	// Header: arch flits queue route va_stall sa_stall st_lt network avg-lat.
	var sum float64
	for _, cell := range row[3:7] {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		sum += v
	}
	network, err := strconv.ParseFloat(row[7], 64)
	if err != nil {
		t.Fatalf("bad network cell %q: %v", row[7], err)
	}
	if diff := sum - network; diff > 0.03 || diff < -0.03 {
		t.Errorf("stage means sum to %.2f, network mean is %.2f", sum, network)
	}
}
