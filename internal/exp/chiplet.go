package exp

import (
	"context"
	"fmt"

	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/scenario"
)

// ChipletSweep evaluates the chiplet decomposition of the mesh: a 2x2
// grid of 4x4-node dies under uniform-random traffic, sweeping the
// die-to-die channel latency and serialization factor. The 1-cycle
// full-width corner is bit-identical to the equivalent monolithic 8x8
// mesh, so the sweep isolates exactly what the package boundary costs:
// added zero-load latency from the slower channels, and throughput loss
// from narrow serialized channels backing traffic up at the die edge.
func ChipletSweep(ctx context.Context, o Options) Table {
	t := Table{
		ID:    "ext-chiplet",
		Title: "Chiplet d2d link sweep: 2x2 chips of 4x4 nodes, uniform random @ 0.10",
		Header: []string{
			"d2d lat", "ser", "avg lat", "avg hops", "d2d flit %", "ser stalls", "delivered",
		},
	}
	const rate = 0.10
	lats := []int{1, 4, 8, 16}
	sers := []int{1, 4}
	points := make([]Point[noc.Result], 0, len(lats)*len(sers))
	for _, lat := range lats {
		for _, ser := range sers {
			lat, ser := lat, ser
			points = append(points, Point[noc.Result]{
				Label: fmt.Sprintf("chiplet d2d=%d ser=%d", lat, ser),
				Run: func(ctx context.Context, o Options) noc.Result {
					return RunChiplet(ctx, lat, ser, rate, o)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	k := 0
	for _, lat := range lats {
		for _, ser := range sers {
			r := res[k]
			k++
			d2dPct := 0.0
			if r.Counters.LinkFlits > 0 {
				d2dPct = 100 * float64(r.Counters.D2DFlits) / float64(r.Counters.LinkFlits)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", lat),
				fmt.Sprintf("%d", ser),
				latCell(r),
				f2(r.AvgHops),
				f1(d2dPct),
				fmt.Sprintf("%d", r.Counters.SerStalls),
				fmt.Sprintf("%d/%d", r.Ejected, r.Generated),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: MIRA's mesh split across a chip grid with die-to-die link classes",
		"lat=1 ser=1 reproduces the monolithic 8x8 mesh bit-for-bit; ser=N makes each flit occupy the narrow d2d channel for N cycles with credits returned accordingly")
	return t
}

// RunChiplet simulates a 2x2 grid of 4x4-node chips (2DB router
// pipeline and pitch) under uniform-random traffic with the given
// die-to-die latency and serialization factor.
func RunChiplet(ctx context.Context, d2dLat, d2dSer int, rate float64, o Options) noc.Result {
	sc := ChipletScenario(d2dLat, d2dSer, rate, o)
	return mustElaborate(sc).Sim.Run(ctx)
}

// ChipletScenario is the run description behind RunChiplet, exposed so
// the CI smoke and the benchmarks sweep the same scenario JSON.
func ChipletScenario(d2dLat, d2dSer int, rate float64, o Options) scenario.Scenario {
	sc := o.Scenario(core.Arch2DB)
	sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate}
	sc.Chips = &scenario.Chips{
		ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4,
		D2DLatency: d2dLat, D2DSerCycles: d2dSer,
	}
	return sc
}
