package exp

import (
	"fmt"
	"strconv"
	"strings"

	"mira/internal/plot"
)

// Chart conversion: experiment tables render as paper-style figures.
// Line charts suit the injection-rate sweeps (x = first column); bar
// charts suit the per-workload / per-design comparisons (groups = first
// column). Non-numeric columns (e.g. "5319/5319") are dropped; a cell's
// trailing saturation marker '*' and '%' suffixes are tolerated.

// parseNumeric parses a table cell, returning ok=false for non-numbers.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "*")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// numericColumns returns the indices (>= from) of columns whose every
// cell parses as a number.
func (t Table) numericColumns(from int) []int {
	var cols []int
	for c := from; c < len(t.Header); c++ {
		ok := len(t.Rows) > 0
		for _, row := range t.Rows {
			if c >= len(row) {
				ok = false
				break
			}
			if _, good := parseNumeric(row[c]); !good {
				ok = false
				break
			}
		}
		if ok {
			cols = append(cols, c)
		}
	}
	return cols
}

// LineChart converts the table into a line chart with column 0 as the x
// axis.
func (t Table) LineChart(ylabel string) (*plot.LineChart, error) {
	cols := t.numericColumns(1)
	if len(cols) == 0 {
		return nil, fmt.Errorf("exp: table %s has no numeric series columns", t.ID)
	}
	if _, ok := parseNumeric(t.Rows[0][0]); !ok {
		return nil, fmt.Errorf("exp: table %s has a non-numeric x column", t.ID)
	}
	c := &plot.LineChart{Title: t.Title, XLabel: t.Header[0], YLabel: ylabel}
	for _, ci := range cols {
		s := plot.Series{Name: t.Header[ci]}
		for _, row := range t.Rows {
			x, _ := parseNumeric(row[0])
			y, _ := parseNumeric(row[ci])
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		c.Series = append(c.Series, s)
	}
	return c, nil
}

// BarChart converts the table into a grouped bar chart with column 0 as
// the group labels.
func (t Table) BarChart(ylabel string) (*plot.BarChart, error) {
	cols := t.numericColumns(1)
	if len(cols) == 0 {
		return nil, fmt.Errorf("exp: table %s has no numeric series columns", t.ID)
	}
	c := &plot.BarChart{Title: t.Title, YLabel: ylabel}
	for _, row := range t.Rows {
		c.Groups = append(c.Groups, row[0])
	}
	for _, ci := range cols {
		s := plot.BarSeries{Name: t.Header[ci]}
		for _, row := range t.Rows {
			v, _ := parseNumeric(row[ci])
			s.Values = append(s.Values, v)
		}
		c.Series = append(c.Series, s)
	}
	return c, nil
}

// SVG renders the table as the most suitable chart: a line chart when
// the first column is numeric (a sweep), otherwise a grouped bar chart.
func (t Table) SVG(ylabel string) (string, error) {
	if len(t.Rows) == 0 {
		return "", fmt.Errorf("exp: table %s is empty", t.ID)
	}
	if _, numericX := parseNumeric(t.Rows[0][0]); numericX {
		c, err := t.LineChart(ylabel)
		if err != nil {
			return "", err
		}
		return c.SVG()
	}
	c, err := t.BarChart(ylabel)
	if err != nil {
		return "", err
	}
	return c.SVG()
}
