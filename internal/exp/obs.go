package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/scenario"
)

// Observability-backed experiments: sweeps that attach the internal/obs
// collector to every point and aggregate the per-point summaries, plus
// the probe-overhead measurement behind mirabench -obs.

// Observed pairs one sweep point's simulation result with the
// observability summary its collector accumulated.
type Observed struct {
	Result  noc.Result
	Summary obs.Summary
}

// ObservedPoint wraps a scenario builder into a sweep point that runs
// with a collector attached and returns the result plus its summary.
// The builder receives the point's Options (seed already split by
// RunAll) and must return a scenario carrying an Observe block;
// Options.Scenario adds one automatically when ObserveWindow is set.
func ObservedPoint(label string, mk func(o Options) scenario.Scenario) Point[Observed] {
	return Point[Observed]{Label: label, Run: func(ctx context.Context, o Options) Observed {
		e := mustElaborate(mk(o))
		res := e.Sim.Run(ctx)
		ob := Observed{Result: res}
		if e.Obs != nil {
			if err := e.Obs.Close(); err != nil {
				panic(err)
			}
			ob.Summary = e.Obs.Summary()
		}
		return ob
	}}
}

// ObsURSweep sweeps uniform-random injection rates on one architecture
// with a collector attached to every point, fanning the points through
// RunAll and aggregating the per-point summaries: probe-derived flit and
// packet latency percentiles next to the simulator's own measured
// latency, plus the windowed backpressure totals. The probe percentiles
// cover every flit the network carried (warm-up included), so they
// bracket the measured-window averages of the paper's Fig. 11 curves.
func ObsURSweep(ctx context.Context, a core.Arch, rates []float64, o Options) Table {
	if o.ObserveWindow == 0 {
		o.ObserveWindow = obs.DefaultWindow
	}
	points := make([]Point[Observed], len(rates))
	for i, rate := range rates {
		rate := rate
		points[i] = ObservedPoint(fmt.Sprintf("%s ur %.2f", a, rate), func(o Options) scenario.Scenario {
			sc := o.Scenario(a)
			sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate}
			return sc
		})
	}
	observed := RunAll(ctx, o, points)

	t := Table{
		ID:    "obs-ur",
		Title: fmt.Sprintf("%s uniform random: observability summaries per injection rate", a),
		Header: []string{"rate", "avg lat", "flit p50", "flit p95", "flit p99",
			"pkt p99", "credit stalls", "windows"},
	}
	for i, ob := range observed {
		l := ob.Summary.Latency
		t.Rows = append(t.Rows, []string{
			f2(rates[i]), latCell(ob.Result),
			fmt.Sprint(l.FlitP50), fmt.Sprint(l.FlitP95), fmt.Sprint(l.FlitP99),
			fmt.Sprint(l.PacketP99),
			fmt.Sprint(ob.Result.Counters.CreditStalls),
			fmt.Sprint(ob.Summary.Windows),
		})
	}
	t.Notes = append(t.Notes,
		"probe percentiles cover all carried flits (warm-up included); avg lat is the measured window only")
	return t
}

// SpanStages runs one mid-load uniform-random point per architecture
// with span folding attached and decomposes the mean flit latency into
// the pipeline stages (inject-queue wait, route, VA stall, SA stall,
// ST+LT). The stage means sum exactly to the probe-measured mean
// network latency — the per-flit identity SpanBuilder enforces — so the
// table is an exact accounting of where each architecture's cycles go,
// not an estimate. Tables are bit-identical for any worker count and
// step mode.
func SpanStages(ctx context.Context, archs []core.Arch, rate float64, o Options) Table {
	type staged struct {
		res  noc.Result
		sums obs.StageSums
	}
	points := make([]Point[staged], len(archs))
	for i, a := range archs {
		a := a
		points[i] = Point[staged]{
			Label: fmt.Sprintf("%s ur %.2f spans", a, rate),
			Run: func(ctx context.Context, o Options) staged {
				sc := o.Scenario(a)
				sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate}
				if sc.Observe == nil {
					sc.Observe = &scenario.Observe{}
				}
				sc.Observe.Spans = true
				e := mustElaborate(sc)
				res := e.Sim.Run(ctx)
				if err := e.Obs.Close(); err != nil {
					panic(err)
				}
				sb := e.Obs.Spans()
				if err := sb.Err(); err != nil {
					panic(err)
				}
				return staged{res: res, sums: sb.Attribution().Total()}
			},
		}
	}
	results := RunAll(ctx, o, points)

	t := Table{
		ID:    "obs-stages",
		Title: fmt.Sprintf("per-flit latency decomposition at %.2f flits/node/cycle (mean cycles per stage)", rate),
		Header: []string{"arch", "flits", "queue", "route", "va_stall", "sa_stall",
			"st_lt", "network", "avg lat"},
	}
	mean := func(cycles, n int64) string {
		if n == 0 {
			return "0.00"
		}
		return fmt.Sprintf("%.2f", float64(cycles)/float64(n))
	}
	for i, r := range results {
		s := r.sums
		row := []string{archs[i].String(), fmt.Sprint(s.N)}
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			row = append(row, mean(s.Cycles[st], s.N))
		}
		row = append(row, mean(s.NetworkCycles(), s.N), latCell(r.res))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"stage means sum exactly to the network mean (all carried flits, warm-up included); avg lat is the measured window only")
	return t
}

// ObsOverhead measures the live cost of the observability layer on one
// mid-load uniform-random run: the same scenario is executed bare, with
// the full collector attached, and with the collector streaming a JSONL
// trace to a discarded writer. Each variant runs reps times and keeps
// its fastest wall-clock, the standard noise reduction for this kind of
// measurement. Simulated results are bit-identical across variants (the
// probe observes, never steers), which the table asserts in its note.
func ObsOverhead(ctx context.Context, o Options) Table {
	sc := o.Scenario(core.Arch3DM)
	sc.Traffic = scenario.Traffic{Kind: "ur", Rate: 0.15}

	const reps = 3
	run := func(observe bool, trace bool) (noc.Result, time.Duration) {
		var best time.Duration
		var res noc.Result
		for r := 0; r < reps; r++ {
			s := sc
			if observe {
				s.Observe = &scenario.Observe{}
			}
			e := mustElaborate(s)
			if trace {
				e.Obs.SetTraceWriter(io.Discard)
			}
			start := time.Now()
			res = e.Sim.Run(ctx)
			elapsed := time.Since(start)
			if e.Obs != nil {
				if err := e.Obs.Close(); err != nil {
					panic(err)
				}
			}
			if r == 0 || elapsed < best {
				best = elapsed
			}
		}
		return res, best
	}

	bareRes, bare := run(false, false)
	probedRes, probed := run(true, false)
	tracedRes, traced := run(true, true)

	cycles := sc.Warmup + sc.Measure // lower bound; drain adds more
	row := func(name string, d time.Duration) []string {
		overhead := 100 * (d.Seconds() - bare.Seconds()) / bare.Seconds()
		return []string{name, fmt.Sprintf("%.1f", float64(d.Microseconds())/1e3),
			fmt.Sprintf("%.1f", float64(cycles)/d.Seconds()/1e6),
			fmt.Sprintf("%+.1f%%", overhead)}
	}
	t := Table{
		ID:     "obs-overhead",
		Title:  "probe overhead: 3DM uniform random at 0.15 flits/node/cycle",
		Header: []string{"variant", "wall ms", "Mcycles/s", "overhead"},
		Rows: [][]string{
			row("no probe", bare),
			row("collector", probed),
			row("collector + trace", traced),
		},
	}
	if bareRes.AvgLatency != probedRes.AvgLatency || bareRes.AvgLatency != tracedRes.AvgLatency {
		t.Notes = append(t.Notes, "WARNING: observing changed simulation results — probe purity violated")
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"simulated results bit-identical across variants (avg lat %.2f); wall times are host-dependent", bareRes.AvgLatency))
	}
	return t
}
