package exp

import (
	"context"
	"reflect"
	"testing"

	"mira/internal/noc"
)

// stepModeOpts is deliberately small: the point is comparing modes
// cell-for-cell, not exercising long windows.
func stepModeOpts(mode noc.StepMode) Options {
	return Options{
		Warmup: 200, Measure: 800, Drain: 3000, TraceCycles: 2000,
		Seed: 42, Workers: 2, StepMode: mode,
	}
}

// TestStepModeTablesIdentical is the experiment-level half of the
// determinism regression: whole rendered tables — every formatted
// latency, throughput and note — must match between the activity-driven
// cycle loop and the reference full scan. Fig8 covers the pipeline
// option matrix (lookahead, speculation, ST+LT) on top of the sweep
// runner; Fig11a covers all six architectures including the 3D fabrics.
func TestStepModeTablesIdentical(t *testing.T) {
	drivers := []struct {
		name string
		run  func(context.Context, Options) Table
	}{
		{"fig8", Fig8},
		{"fig11a", Fig11a},
	}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			full := d.run(context.Background(), stepModeOpts(noc.StepFullScan))
			act := d.run(context.Background(), stepModeOpts(noc.StepActivity))
			if !reflect.DeepEqual(full, act) {
				t.Fatalf("tables diverge between step modes:\nfullscan:\n%s\nactivity:\n%s",
					full.String(), act.String())
			}
			if len(act.Rows) == 0 {
				t.Fatal("empty table; comparison is vacuous")
			}
		})
	}
}

// TestStepModeCheckedTable runs one sweep under the per-cycle
// invariant-checking mode; any activity-tracking drift panics inside
// Step, so completing the table at all is the assertion.
func TestStepModeCheckedTable(t *testing.T) {
	if testing.Short() {
		t.Skip("checked mode is slow")
	}
	o := stepModeOpts(noc.StepChecked)
	o.Warmup, o.Measure, o.Drain = 50, 200, 1500
	tb := Fig8(context.Background(), o)
	if len(tb.Rows) == 0 {
		t.Fatal("checked-mode sweep produced no rows")
	}
}
