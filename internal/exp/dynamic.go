package exp

import (
	"context"
	"fmt"
	"sync"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/routing"
	"mira/internal/scenario"
	"mira/internal/stats"
	"mira/internal/thermal"
	"mira/internal/topology"
)

func corePowerFlitHop(d *core.Design) power.FlitHop {
	return power.FlitHopEnergy(d.AreaParams, d.LinkLenMM)
}

// URRates is the injection-rate sweep of Figures 11 (a) and 12 (a). The
// top rates push the planar designs past saturation, where the latency
// gap to 3DM-E is widest (the paper's "51 % at 30 % injection rate").
var URRates = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}

// Fig1 reports the data-pattern breakdown of each workload's payload
// words (all-0 / all-1 / other frequent patterns / irregular).
func Fig1(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "fig1",
		Title:  "Data pattern breakdown (fraction of data words)",
		Header: []string{"Workload", "all-0", "all-1", "frequent", "other", "short flits %"},
	}
	res := RunAll(ctx, o, traceStatPoints(cmp.Workloads))
	for i, w := range cmp.Workloads {
		if res[i].err != nil {
			return t, res[i].err
		}
		st := res[i].st
		sh := st.WordPatternShares()
		t.Rows = append(t.Rows, []string{
			w.Name,
			f3(sh[0]), f3(sh[1]), f3(sh[2]), f3(sh[3]),
			f1(st.ShortFlitPct()),
		})
	}
	t.Notes = append(t.Notes, "synthetic workload models calibrated to the paper's Figure 1 / 13(a) statistics")
	return t, nil
}

// statOut carries one workload's trace statistics through the runner.
type statOut struct {
	st  cmp.Stats
	err error
}

// traceStatPoints builds one trace-generation point per workload; the
// trace itself is discarded, only the statistics are kept. The trace is
// generated on the 2DB floorplan (the 6x6 NUCA mesh); the statistics
// depend only on the workload model and seed.
func traceStatPoints(ws []cmp.Workload) []Point[statOut] {
	points := make([]Point[statOut], 0, len(ws))
	for _, w := range ws {
		w := w
		points = append(points, Point[statOut]{
			Label: "trace-stats " + w.Name,
			Run: func(ctx context.Context, o Options) statOut {
				sc := o.Scenario(core.Arch2DB)
				sc.Traffic = scenario.Traffic{Kind: "trace", Workload: w.Name, TraceCycles: o.TraceCycles}
				e, err := sc.Elaborate()
				if err != nil {
					return statOut{err: err}
				}
				return statOut{st: e.Stats}
			},
		})
	}
	return points
}

// Fig2 reports the packet-type distribution of the coherence traffic.
func Fig2(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "fig2",
		Title:  "Packet type distribution (fraction of packets)",
		Header: []string{"Workload", "GetS", "GetX", "Upgrade", "Inv", "Fwd", "Ack", "Data", "WB", "control total"},
	}
	ws := presentedWorkloads()
	res := RunAll(ctx, o, traceStatPoints(ws))
	for i, w := range ws {
		if res[i].err != nil {
			return t, res[i].err
		}
		st := res[i].st
		var total int64
		for _, c := range st.KindCounts {
			total += c
		}
		row := []string{w.Name}
		for k := cmp.MsgKind(0); k < cmp.NumKinds; k++ {
			row = append(row, f3(float64(st.KindCounts[k])/float64(total)))
		}
		row = append(row, f3(st.ControlPacketFrac()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// presentedWorkloads resolves cmp.Presented names to their workloads.
func presentedWorkloads() []cmp.Workload {
	ws := make([]cmp.Workload, 0, len(cmp.Presented))
	for _, name := range cmp.Presented {
		w, _ := cmp.ByName(name)
		ws = append(ws, w)
	}
	return ws
}

// SweepResult couples each architecture's result at one injection rate.
type SweepResult struct {
	Rate    float64
	Results map[core.Arch]noc.Result
}

// runSweep executes one generator family over all architectures and
// rates as a (rate × arch) grid of independent points on the parallel
// runner. Each point elaborates its own Design so no topology state is
// shared between workers.
func runSweep(ctx context.Context, o Options, rates []float64, run func(ctx context.Context, a core.Arch, rate float64, o Options) noc.Result) []SweepResult {
	points := make([]Point[noc.Result], 0, len(rates)*len(core.Archs))
	for _, rate := range rates {
		for _, a := range core.Archs {
			rate, a := rate, a
			points = append(points, Point[noc.Result]{
				Label: fmt.Sprintf("rate=%.2f arch=%s", rate, a),
				Run: func(ctx context.Context, o Options) noc.Result {
					return run(ctx, a, rate, o)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	out := make([]SweepResult, 0, len(rates))
	k := 0
	for _, rate := range rates {
		sr := SweepResult{Rate: rate, Results: make(map[core.Arch]noc.Result, len(core.Archs))}
		for _, a := range core.Archs {
			sr.Results[a] = res[k]
			k++
		}
		out = append(out, sr)
	}
	return out
}

func sweepTable(id, title, metric string, sweep []SweepResult, cell func(*core.Design, noc.Result) string) Table {
	t := Table{ID: id, Title: title}
	t.Header = []string{"inj rate"}
	designs := Designs()
	for _, d := range designs {
		t.Header = append(t.Header, d.Arch.String())
	}
	for _, sr := range sweep {
		row := []string{f2(sr.Rate)}
		for _, d := range designs {
			row = append(row, cell(d, sr.Results[d.Arch]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("metric: %s; '*' marks saturated points", metric))
	return t
}

// Fig11a: average latency vs injection rate, uniform random traffic.
func Fig11a(ctx context.Context, o Options) Table {
	sweep := runSweep(ctx, o, URRates, func(ctx context.Context, a core.Arch, rate float64, o Options) noc.Result {
		return RunUR(ctx, a, rate, 0, o)
	})
	return sweepTable("fig11a", "Average latency, uniform random (cycles)", "avg packet latency",
		sweep, func(d *core.Design, r noc.Result) string { return latCell(r) })
}

// Fig11b: average latency vs injection rate, NUCA-constrained bimodal
// traffic.
func Fig11b(ctx context.Context, o Options) Table {
	sweep := runSweep(ctx, o, URRates, func(ctx context.Context, a core.Arch, rate float64, o Options) noc.Result {
		return RunNUCAUR(ctx, a, rate, 0, o)
	})
	return sweepTable("fig11b", "Average latency, NUCA-UR (cycles)", "avg packet latency",
		sweep, func(d *core.Design, r noc.Result) string { return latCell(r) })
}

// TraceRun bundles the per-workload, per-architecture results of the
// MP-trace experiments (Figures 11 (c) and 12 (c)).
type TraceRun struct {
	Workload string
	Results  map[core.Arch]noc.Result
	Stats    map[core.Arch]cmp.Stats
}

// RunTraces executes all presented workloads over all architectures as
// a (workload × arch) grid on the parallel runner.
func RunTraces(ctx context.Context, o Options) ([]TraceRun, error) {
	type traceOut struct {
		res noc.Result
		st  cmp.Stats
		err error
	}
	points := make([]Point[traceOut], 0, len(cmp.Presented)*len(core.Archs))
	for _, name := range cmp.Presented {
		w, _ := cmp.ByName(name)
		for _, a := range core.Archs {
			w, a := w, a
			points = append(points, Point[traceOut]{
				Label: fmt.Sprintf("trace=%s arch=%s", w.Name, a),
				Run: func(ctx context.Context, o Options) traceOut {
					res, st, err := RunTrace(ctx, a, w, o)
					return traceOut{res: res, st: st, err: err}
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	var out []TraceRun
	k := 0
	for _, name := range cmp.Presented {
		tr := TraceRun{
			Workload: name,
			Results:  make(map[core.Arch]noc.Result, len(core.Archs)),
			Stats:    make(map[core.Arch]cmp.Stats, len(core.Archs)),
		}
		for _, a := range core.Archs {
			r := res[k]
			k++
			if r.err != nil {
				return nil, r.err
			}
			tr.Results[a] = r.res
			tr.Stats[a] = r.st
		}
		out = append(out, tr)
	}
	return out, nil
}

// Fig11c: per-workload latency normalized to 2DB.
func Fig11c(ctx context.Context, o Options) (Table, error) {
	runs, err := RunTraces(ctx, o)
	if err != nil {
		return Table{}, err
	}
	return traceTable("fig11c", "MP-trace latency normalized to 2DB", runs,
		func(d *core.Design, r noc.Result, base noc.Result) string {
			return f3(stats.Ratio(r.AvgLatency, base.AvgLatency))
		}), nil
}

func traceTable(id, title string, runs []TraceRun, cell func(*core.Design, noc.Result, noc.Result) string) Table {
	t := Table{ID: id, Title: title}
	designs := Designs()
	t.Header = []string{"workload"}
	for _, d := range designs {
		t.Header = append(t.Header, d.Arch.String())
	}
	for _, run := range runs {
		base := run.Results[core.Arch2DB]
		row := []string{run.Workload}
		for _, d := range designs {
			row = append(row, cell(d, run.Results[d.Arch], base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig11d: average hop count per architecture for the three traffic
// types. UR and NUCA-UR hop counts are computed analytically from the
// routing function; MP-trace hops are measured from the trace runs.
func Fig11d(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "fig11d",
		Title:  "Average hop count",
		Header: []string{"design", "UR", "NUCA-UR", "MP-traces"},
	}
	runs, err := RunTraces(ctx, o)
	if err != nil {
		return t, err
	}
	for _, d := range Designs() {
		ur, err := routing.AverageHops(d.Topo, d.Alg, nil, nil)
		if err != nil {
			return t, err
		}
		cpus, caches := d.Topo.CPUs(), d.Topo.Caches()
		req, err := routing.AverageHops(d.Topo, d.Alg, cpus, caches)
		if err != nil {
			return t, err
		}
		resp, err := routing.AverageHops(d.Topo, d.Alg, caches, cpus)
		if err != nil {
			return t, err
		}
		var traceHops stats.Mean
		for _, run := range runs {
			traceHops.Add(run.Results[d.Arch].AvgHops)
		}
		t.Rows = append(t.Rows, []string{
			d.Arch.String(), f2(ur), f2((req + resp) / 2), f2(traceHops.Mean()),
		})
	}
	return t, nil
}

// Fig12a: average network power vs injection rate, uniform random, 0 %
// short flits (pure structural comparison, no shutdown).
func Fig12a(ctx context.Context, o Options) Table {
	sweep := runSweep(ctx, o, URRates, func(ctx context.Context, a core.Arch, rate float64, o Options) noc.Result {
		return RunUR(ctx, a, rate, 0, o)
	})
	return sweepTable("fig12a", "Average power, uniform random, 0% short flits (W)", "avg network power",
		sweep, func(d *core.Design, r noc.Result) string { return f3(NetworkPowerW(d, r, false)) })
}

// Fig12b: average power under NUCA-UR traffic.
func Fig12b(ctx context.Context, o Options) Table {
	sweep := runSweep(ctx, o, URRates, func(ctx context.Context, a core.Arch, rate float64, o Options) noc.Result {
		return RunNUCAUR(ctx, a, rate, 0, o)
	})
	return sweepTable("fig12b", "Average power, NUCA-UR (W)", "avg network power",
		sweep, func(d *core.Design, r noc.Result) string { return f3(NetworkPowerW(d, r, false)) })
}

// Fig12c: MP-trace power normalized to a 2DB baseline *without* layer
// shutdown; the other designs use the shutdown technique, as in the
// paper ("with no layer shut down in the base cases").
func Fig12c(ctx context.Context, o Options) (Table, error) {
	runs, err := RunTraces(ctx, o)
	if err != nil {
		return Table{}, err
	}
	t := traceTable("fig12c", "MP-trace power normalized to 2DB (no shutdown)", runs,
		func(d *core.Design, r noc.Result, base noc.Result) string {
			base2DB := corePowerOf(core.Arch2DB)
			baseW := NetworkPowerW(base2DB, base, false)
			return f3(stats.Ratio(NetworkPowerW(d, r, true), baseW))
		})
	t.Notes = append(t.Notes, "numerators use short-flit layer shutdown; denominator is 2DB without shutdown")
	return t, nil
}

var (
	designMu    sync.Mutex
	designCache = map[core.Arch]*core.Design{}
)

// corePowerOf returns a cached design for power/area lookups. The cache
// is mutex-guarded because table builders may consult it from parallel
// sweep workers; callers must treat the returned design as read-only.
func corePowerOf(a core.Arch) *core.Design {
	designMu.Lock()
	defer designMu.Unlock()
	if d, ok := designCache[a]; ok {
		return d
	}
	d := core.MustDesign(a)
	designCache[a] = d
	return d
}

// Fig12d: power-delay product normalized to 2DB, uniform random.
func Fig12d(ctx context.Context, o Options) Table {
	sweep := runSweep(ctx, o, URRates, func(ctx context.Context, a core.Arch, rate float64, o Options) noc.Result {
		return RunUR(ctx, a, rate, 0, o)
	})
	t := Table{ID: "fig12d", Title: "Normalized power-delay product, uniform random", Header: []string{"inj rate"}}
	designs := Designs()
	for _, d := range designs {
		t.Header = append(t.Header, d.Arch.String())
	}
	for _, sr := range sweep {
		base := sr.Results[core.Arch2DB]
		basePDP := NetworkPowerW(corePowerOf(core.Arch2DB), base, false) * base.AvgLatency
		row := []string{f2(sr.Rate)}
		for _, d := range designs {
			r := sr.Results[d.Arch]
			pdp := NetworkPowerW(d, r, false) * r.AvgLatency
			row = append(row, f3(stats.Ratio(pdp, basePDP)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig13a: short-flit percentage per workload.
func Fig13a(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "fig13a",
		Title:  "Short flit percentage per workload",
		Header: []string{"workload", "short flits %"},
	}
	ws := presentedWorkloads()
	res := RunAll(ctx, o, traceStatPoints(ws))
	var avg stats.Mean
	for i, w := range ws {
		if res[i].err != nil {
			return t, res[i].err
		}
		st := res[i].st
		avg.Add(st.ShortFlitPct())
		t.Rows = append(t.Rows, []string{w.Name, f1(st.ShortFlitPct())})
	}
	t.Rows = append(t.Rows, []string{"average", f1(avg.Mean())})
	return t, nil
}

// Fig13b: power saving from the layer-shutdown technique at 25 % and
// 50 % short flits (uniform random at a fixed moderate load).
func Fig13b(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "fig13b",
		Title:  "Power saving from layer shutdown (% vs same design, 0% short)",
		Header: []string{"design", "25% short", "50% short"},
	}
	const rate = 0.15
	archs := []core.Arch{core.Arch2DB, core.Arch3DM, core.Arch3DME} // the paper reports 2DB/3DM/3DM-E
	fracs := []float64{0, 0.25, 0.50}
	points := make([]Point[float64], 0, len(archs)*len(fracs))
	for _, a := range archs {
		for _, frac := range fracs {
			a, frac := a, frac
			points = append(points, Point[float64]{
				Label: fmt.Sprintf("arch=%s short=%.0f%%", a, 100*frac),
				Run: func(ctx context.Context, o Options) float64 {
					return NetworkPowerW(corePowerOf(a), RunUR(ctx, a, rate, frac, o), true)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	for i, a := range archs {
		base, s25, s50 := res[3*i], res[3*i+1], res[3*i+2]
		t.Rows = append(t.Rows, []string{
			a.String(),
			f1(100 * (1 - s25/base)),
			f1(100 * (1 - s50/base)),
		})
	}
	return t
}

// Fig13c: average chip temperature reduction of the 3DM design when
// 50 % of flits are short, at three injection rates. Router power comes
// from the simulation; CPU (8 W) and cache-bank (0.1 W) static power
// uses the paper's §4.2.3 numbers, spread equally over the four layers.
func Fig13c(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "fig13c",
		Title:  "3DM average temperature reduction, 50% vs 0% short flits (K)",
		Header: []string{"inj rate", "avg dT (K)", "max dT (K)"},
	}
	rates := []float64{0.10, 0.20, 0.30}
	points := make([]Point[[2]float64], 0, len(rates))
	for _, rate := range rates {
		rate := rate
		points = append(points, Point[[2]float64]{
			Label: fmt.Sprintf("rate=%.2f", rate),
			Run: func(ctx context.Context, o Options) [2]float64 {
				avgDT, maxDT := fig13cDeltas(ctx, o, rate)
				return [2]float64{avgDT, maxDT}
			},
		})
	}
	for i, dt := range RunAll(ctx, o, points) {
		t.Rows = append(t.Rows, []string{f2(rates[i]), f2(dt[0]), f2(dt[1])})
	}
	t.Notes = append(t.Notes, "CPU 8 W, cache bank 0.1 W static; router power from simulation with shutdown")
	return t
}

// Fig13cAt returns the average temperature reduction at one injection
// rate (used by the benchmark harness).
func Fig13cAt(ctx context.Context, o Options, rate float64) float64 {
	avgDT, _ := fig13cDeltas(ctx, o, rate)
	return avgDT
}

func fig13cDeltas(ctx context.Context, o Options, rate float64) (avgDT, maxDT float64) {
	d := corePowerOf(core.Arch3DM)
	r0 := RunUR(ctx, core.Arch3DM, rate, 0, o)
	r50 := RunUR(ctx, core.Arch3DM, rate, 0.5, o)
	t0 := solveChipTemps(d, r0)
	t50 := solveChipTemps(d, r50)
	return thermal.Average(t0) - thermal.Average(t50), thermal.Max(t0) - thermal.Max(t50)
}

// EvenCoreLayers is the paper's §4.1.1 assumption: "all four layers in
// each processor and cache core statically consume the same amount of
// power".
var EvenCoreLayers = [core.Layers]float64{0.25, 0.25, 0.25, 0.25}

// HerdedCoreLayers models Thermal-Herding-style multi-layer cores
// (Puttaswamy & Loh, the paper's future-work item): operand activity is
// steered to the layer nearest the heat sink, indices ordered bottom
// (farthest from the sink) to top.
var HerdedCoreLayers = [core.Layers]float64{0.10, 0.10, 0.20, 0.60}

// solveChipTemps builds the 3DM chip power map and solves the thermal
// grid with the paper's even core-power split; router datapath power
// (buffer, crossbar, links) spreads evenly, while the allocator/RC
// control logic sits in the layer closest to the heat sink (§3.2.7).
func solveChipTemps(d *core.Design, res noc.Result) []float64 {
	return solveChipTempsDist(d, res, EvenCoreLayers)
}

func solveChipTempsDist(d *core.Design, res noc.Result, coreDist [core.Layers]float64) []float64 {
	g := thermal.NewGrid(6, 6, core.Layers, core.Pitch3DMMM)
	p := make([]float64, g.NumBlocks())
	top := core.Layers - 1 // grid layer adjacent to the heat sink
	for _, n := range d.Topo.Nodes() {
		nodeW := 0.1 // cache bank
		if n.Type == topology.CPU {
			nodeW = 8.0
		}
		rb := power.NetworkEnergy(d.Energy, res.PerRouter[n.ID], true)
		datapathW := power.AvgPowerW(power.Breakdown{
			Buffer: rb.Buffer, Crossbar: rb.Crossbar, Link: rb.Link,
		}, res.Cycles)
		controlW := power.AvgPowerW(power.Breakdown{Allocators: rb.Allocators}, res.Cycles)
		for z := 0; z < core.Layers; z++ {
			p[g.Index(n.Coord.X, n.Coord.Y, z)] += nodeW*coreDist[z] + datapathW/float64(core.Layers)
		}
		p[g.Index(n.Coord.X, n.Coord.Y, top)] += controlW
	}
	return g.Solve(p)
}
