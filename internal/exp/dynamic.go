package exp

import (
	"fmt"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/routing"
	"mira/internal/stats"
	"mira/internal/thermal"
	"mira/internal/topology"
)

func corePowerFlitHop(d *core.Design) power.FlitHop {
	return power.FlitHopEnergy(d.AreaParams, d.LinkLenMM)
}

// URRates is the injection-rate sweep of Figures 11 (a) and 12 (a). The
// top rates push the planar designs past saturation, where the latency
// gap to 3DM-E is widest (the paper's "51 % at 30 % injection rate").
var URRates = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}

// Fig1 reports the data-pattern breakdown of each workload's payload
// words (all-0 / all-1 / other frequent patterns / irregular).
func Fig1(o Options) (Table, error) {
	t := Table{
		ID:     "fig1",
		Title:  "Data pattern breakdown (fraction of data words)",
		Header: []string{"Workload", "all-0", "all-1", "frequent", "other", "short flits %"},
	}
	topo := nucaMesh()
	for _, w := range cmp.Workloads {
		_, st, err := cmp.GenerateTrace(w, topo, o.TraceCycles, o.Seed)
		if err != nil {
			return t, err
		}
		sh := st.WordPatternShares()
		t.Rows = append(t.Rows, []string{
			w.Name,
			f3(sh[0]), f3(sh[1]), f3(sh[2]), f3(sh[3]),
			f1(st.ShortFlitPct()),
		})
	}
	t.Notes = append(t.Notes, "synthetic workload models calibrated to the paper's Figure 1 / 13(a) statistics")
	return t, nil
}

// Fig2 reports the packet-type distribution of the coherence traffic.
func Fig2(o Options) (Table, error) {
	t := Table{
		ID:     "fig2",
		Title:  "Packet type distribution (fraction of packets)",
		Header: []string{"Workload", "GetS", "GetX", "Upgrade", "Inv", "Fwd", "Ack", "Data", "WB", "control total"},
	}
	topo := nucaMesh()
	for _, name := range cmp.Presented {
		w, _ := cmp.ByName(name)
		_, st, err := cmp.GenerateTrace(w, topo, o.TraceCycles, o.Seed)
		if err != nil {
			return t, err
		}
		var total int64
		for _, c := range st.KindCounts {
			total += c
		}
		row := []string{w.Name}
		for k := cmp.MsgKind(0); k < cmp.NumKinds; k++ {
			row = append(row, f3(float64(st.KindCounts[k])/float64(total)))
		}
		row = append(row, f3(st.ControlPacketFrac()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func nucaMesh() *topology.Topology {
	topo := topology.NewMesh2D(6, 6, core.Pitch2DMM)
	if err := topology.ApplyNUCALayout2D(topo); err != nil {
		panic(err)
	}
	return topo
}

// SweepResult couples each architecture's result at one injection rate.
type SweepResult struct {
	Rate    float64
	Results map[core.Arch]noc.Result
}

// runSweep executes one generator family over all architectures and
// rates.
func runSweep(rates []float64, run func(*core.Design, float64) noc.Result) []SweepResult {
	designs := Designs()
	out := make([]SweepResult, 0, len(rates))
	for _, rate := range rates {
		sr := SweepResult{Rate: rate, Results: make(map[core.Arch]noc.Result, len(designs))}
		for _, d := range designs {
			sr.Results[d.Arch] = run(d, rate)
		}
		out = append(out, sr)
	}
	return out
}

func sweepTable(id, title, metric string, sweep []SweepResult, cell func(*core.Design, noc.Result) string) Table {
	t := Table{ID: id, Title: title}
	t.Header = []string{"inj rate"}
	designs := Designs()
	for _, d := range designs {
		t.Header = append(t.Header, d.Arch.String())
	}
	for _, sr := range sweep {
		row := []string{f2(sr.Rate)}
		for _, d := range designs {
			row = append(row, cell(d, sr.Results[d.Arch]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("metric: %s; '*' marks saturated points", metric))
	return t
}

// Fig11a: average latency vs injection rate, uniform random traffic.
func Fig11a(o Options) Table {
	sweep := runSweep(URRates, func(d *core.Design, rate float64) noc.Result {
		return RunUR(d, rate, 0, o)
	})
	return sweepTable("fig11a", "Average latency, uniform random (cycles)", "avg packet latency",
		sweep, func(d *core.Design, r noc.Result) string { return latCell(r) })
}

// Fig11b: average latency vs injection rate, NUCA-constrained bimodal
// traffic.
func Fig11b(o Options) Table {
	sweep := runSweep(URRates, func(d *core.Design, rate float64) noc.Result {
		return RunNUCAUR(d, rate, 0, o)
	})
	return sweepTable("fig11b", "Average latency, NUCA-UR (cycles)", "avg packet latency",
		sweep, func(d *core.Design, r noc.Result) string { return latCell(r) })
}

// TraceRun bundles the per-workload, per-architecture results of the
// MP-trace experiments (Figures 11 (c) and 12 (c)).
type TraceRun struct {
	Workload string
	Results  map[core.Arch]noc.Result
	Stats    map[core.Arch]cmp.Stats
}

// RunTraces executes all presented workloads over all architectures.
func RunTraces(o Options) ([]TraceRun, error) {
	designs := Designs()
	var out []TraceRun
	for _, name := range cmp.Presented {
		w, _ := cmp.ByName(name)
		tr := TraceRun{
			Workload: name,
			Results:  make(map[core.Arch]noc.Result, len(designs)),
			Stats:    make(map[core.Arch]cmp.Stats, len(designs)),
		}
		for _, d := range designs {
			res, st, err := RunTrace(d, w, o)
			if err != nil {
				return nil, err
			}
			tr.Results[d.Arch] = res
			tr.Stats[d.Arch] = st
		}
		out = append(out, tr)
	}
	return out, nil
}

// Fig11c: per-workload latency normalized to 2DB.
func Fig11c(o Options) (Table, error) {
	runs, err := RunTraces(o)
	if err != nil {
		return Table{}, err
	}
	return traceTable("fig11c", "MP-trace latency normalized to 2DB", runs,
		func(d *core.Design, r noc.Result, base noc.Result) string {
			return f3(stats.Ratio(r.AvgLatency, base.AvgLatency))
		}), nil
}

func traceTable(id, title string, runs []TraceRun, cell func(*core.Design, noc.Result, noc.Result) string) Table {
	t := Table{ID: id, Title: title}
	designs := Designs()
	t.Header = []string{"workload"}
	for _, d := range designs {
		t.Header = append(t.Header, d.Arch.String())
	}
	for _, run := range runs {
		base := run.Results[core.Arch2DB]
		row := []string{run.Workload}
		for _, d := range designs {
			row = append(row, cell(d, run.Results[d.Arch], base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig11d: average hop count per architecture for the three traffic
// types. UR and NUCA-UR hop counts are computed analytically from the
// routing function; MP-trace hops are measured from the trace runs.
func Fig11d(o Options) (Table, error) {
	t := Table{
		ID:     "fig11d",
		Title:  "Average hop count",
		Header: []string{"design", "UR", "NUCA-UR", "MP-traces"},
	}
	runs, err := RunTraces(o)
	if err != nil {
		return t, err
	}
	for _, d := range Designs() {
		ur, err := routing.AverageHops(d.Topo, d.Alg, nil, nil)
		if err != nil {
			return t, err
		}
		cpus, caches := d.Topo.CPUs(), d.Topo.Caches()
		req, err := routing.AverageHops(d.Topo, d.Alg, cpus, caches)
		if err != nil {
			return t, err
		}
		resp, err := routing.AverageHops(d.Topo, d.Alg, caches, cpus)
		if err != nil {
			return t, err
		}
		var traceHops stats.Mean
		for _, run := range runs {
			traceHops.Add(run.Results[d.Arch].AvgHops)
		}
		t.Rows = append(t.Rows, []string{
			d.Arch.String(), f2(ur), f2((req + resp) / 2), f2(traceHops.Mean()),
		})
	}
	return t, nil
}

// Fig12a: average network power vs injection rate, uniform random, 0 %
// short flits (pure structural comparison, no shutdown).
func Fig12a(o Options) Table {
	sweep := runSweep(URRates, func(d *core.Design, rate float64) noc.Result {
		return RunUR(d, rate, 0, o)
	})
	return sweepTable("fig12a", "Average power, uniform random, 0% short flits (W)", "avg network power",
		sweep, func(d *core.Design, r noc.Result) string { return f3(NetworkPowerW(d, r, false)) })
}

// Fig12b: average power under NUCA-UR traffic.
func Fig12b(o Options) Table {
	sweep := runSweep(URRates, func(d *core.Design, rate float64) noc.Result {
		return RunNUCAUR(d, rate, 0, o)
	})
	return sweepTable("fig12b", "Average power, NUCA-UR (W)", "avg network power",
		sweep, func(d *core.Design, r noc.Result) string { return f3(NetworkPowerW(d, r, false)) })
}

// Fig12c: MP-trace power normalized to a 2DB baseline *without* layer
// shutdown; the other designs use the shutdown technique, as in the
// paper ("with no layer shut down in the base cases").
func Fig12c(o Options) (Table, error) {
	runs, err := RunTraces(o)
	if err != nil {
		return Table{}, err
	}
	t := traceTable("fig12c", "MP-trace power normalized to 2DB (no shutdown)", runs,
		func(d *core.Design, r noc.Result, base noc.Result) string {
			base2DB := corePowerOf(core.Arch2DB)
			baseW := NetworkPowerW(base2DB, base, false)
			return f3(stats.Ratio(NetworkPowerW(d, r, true), baseW))
		})
	t.Notes = append(t.Notes, "numerators use short-flit layer shutdown; denominator is 2DB without shutdown")
	return t, nil
}

var designCache = map[core.Arch]*core.Design{}

func corePowerOf(a core.Arch) *core.Design {
	if d, ok := designCache[a]; ok {
		return d
	}
	d := core.MustDesign(a)
	designCache[a] = d
	return d
}

// Fig12d: power-delay product normalized to 2DB, uniform random.
func Fig12d(o Options) Table {
	sweep := runSweep(URRates, func(d *core.Design, rate float64) noc.Result {
		return RunUR(d, rate, 0, o)
	})
	t := Table{ID: "fig12d", Title: "Normalized power-delay product, uniform random", Header: []string{"inj rate"}}
	designs := Designs()
	for _, d := range designs {
		t.Header = append(t.Header, d.Arch.String())
	}
	for _, sr := range sweep {
		base := sr.Results[core.Arch2DB]
		basePDP := NetworkPowerW(corePowerOf(core.Arch2DB), base, false) * base.AvgLatency
		row := []string{f2(sr.Rate)}
		for _, d := range designs {
			r := sr.Results[d.Arch]
			pdp := NetworkPowerW(d, r, false) * r.AvgLatency
			row = append(row, f3(stats.Ratio(pdp, basePDP)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig13a: short-flit percentage per workload.
func Fig13a(o Options) (Table, error) {
	t := Table{
		ID:     "fig13a",
		Title:  "Short flit percentage per workload",
		Header: []string{"workload", "short flits %"},
	}
	topo := nucaMesh()
	var avg stats.Mean
	for _, name := range cmp.Presented {
		w, _ := cmp.ByName(name)
		_, st, err := cmp.GenerateTrace(w, topo, o.TraceCycles, o.Seed)
		if err != nil {
			return t, err
		}
		avg.Add(st.ShortFlitPct())
		t.Rows = append(t.Rows, []string{name, f1(st.ShortFlitPct())})
	}
	t.Rows = append(t.Rows, []string{"average", f1(avg.Mean())})
	return t, nil
}

// Fig13b: power saving from the layer-shutdown technique at 25 % and
// 50 % short flits (uniform random at a fixed moderate load).
func Fig13b(o Options) Table {
	t := Table{
		ID:     "fig13b",
		Title:  "Power saving from layer shutdown (% vs same design, 0% short)",
		Header: []string{"design", "25% short", "50% short"},
	}
	const rate = 0.15
	for _, d := range Designs() {
		if d.Arch == core.Arch3DMNC || d.Arch == core.Arch3DMENC || d.Arch == core.Arch3DB {
			continue // the paper reports 2DB/3DM/3DM-E
		}
		base := NetworkPowerW(d, RunUR(d, rate, 0, o), true)
		s25 := NetworkPowerW(d, RunUR(d, rate, 0.25, o), true)
		s50 := NetworkPowerW(d, RunUR(d, rate, 0.50, o), true)
		t.Rows = append(t.Rows, []string{
			d.Arch.String(),
			f1(100 * (1 - s25/base)),
			f1(100 * (1 - s50/base)),
		})
	}
	return t
}

// Fig13c: average chip temperature reduction of the 3DM design when
// 50 % of flits are short, at three injection rates. Router power comes
// from the simulation; CPU (8 W) and cache-bank (0.1 W) static power
// uses the paper's §4.2.3 numbers, spread equally over the four layers.
func Fig13c(o Options) Table {
	t := Table{
		ID:     "fig13c",
		Title:  "3DM average temperature reduction, 50% vs 0% short flits (K)",
		Header: []string{"inj rate", "avg dT (K)", "max dT (K)"},
	}
	d := corePowerOf(core.Arch3DM)
	for _, rate := range []float64{0.10, 0.20, 0.30} {
		avgDT, maxDT := fig13cDeltas(d, o, rate)
		t.Rows = append(t.Rows, []string{f2(rate), f2(avgDT), f2(maxDT)})
	}
	t.Notes = append(t.Notes, "CPU 8 W, cache bank 0.1 W static; router power from simulation with shutdown")
	return t
}

// Fig13cAt returns the average temperature reduction at one injection
// rate (used by the benchmark harness).
func Fig13cAt(o Options, rate float64) float64 {
	avgDT, _ := fig13cDeltas(corePowerOf(core.Arch3DM), o, rate)
	return avgDT
}

func fig13cDeltas(d *core.Design, o Options, rate float64) (avgDT, maxDT float64) {
	r0 := RunUR(d, rate, 0, o)
	r50 := RunUR(d, rate, 0.5, o)
	t0 := solveChipTemps(d, r0)
	t50 := solveChipTemps(d, r50)
	return thermal.Average(t0) - thermal.Average(t50), thermal.Max(t0) - thermal.Max(t50)
}

// EvenCoreLayers is the paper's §4.1.1 assumption: "all four layers in
// each processor and cache core statically consume the same amount of
// power".
var EvenCoreLayers = [core.Layers]float64{0.25, 0.25, 0.25, 0.25}

// HerdedCoreLayers models Thermal-Herding-style multi-layer cores
// (Puttaswamy & Loh, the paper's future-work item): operand activity is
// steered to the layer nearest the heat sink, indices ordered bottom
// (farthest from the sink) to top.
var HerdedCoreLayers = [core.Layers]float64{0.10, 0.10, 0.20, 0.60}

// solveChipTemps builds the 3DM chip power map and solves the thermal
// grid with the paper's even core-power split; router datapath power
// (buffer, crossbar, links) spreads evenly, while the allocator/RC
// control logic sits in the layer closest to the heat sink (§3.2.7).
func solveChipTemps(d *core.Design, res noc.Result) []float64 {
	return solveChipTempsDist(d, res, EvenCoreLayers)
}

func solveChipTempsDist(d *core.Design, res noc.Result, coreDist [core.Layers]float64) []float64 {
	g := thermal.NewGrid(6, 6, core.Layers, core.Pitch3DMMM)
	p := make([]float64, g.NumBlocks())
	top := core.Layers - 1 // grid layer adjacent to the heat sink
	for _, n := range d.Topo.Nodes() {
		nodeW := 0.1 // cache bank
		if n.Type == topology.CPU {
			nodeW = 8.0
		}
		rb := power.NetworkEnergy(d.Energy, res.PerRouter[n.ID], true)
		datapathW := power.AvgPowerW(power.Breakdown{
			Buffer: rb.Buffer, Crossbar: rb.Crossbar, Link: rb.Link,
		}, res.Cycles)
		controlW := power.AvgPowerW(power.Breakdown{Allocators: rb.Allocators}, res.Cycles)
		for z := 0; z < core.Layers; z++ {
			p[g.Index(n.Coord.X, n.Coord.Y, z)] += nodeW*coreDist[z] + datapathW/float64(core.Layers)
		}
		p[g.Index(n.Coord.X, n.Coord.Y, top)] += controlW
	}
	return g.Solve(p)
}
