package exp

import (
	"context"
	"reflect"
	"testing"

	"mira/internal/noc"
)

func TestCollectiveSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("collective sweep is a full 9-point simulation sweep")
	}
	o := Quick()
	tb := CollectiveSweep(context.Background(), o)
	if len(tb.Rows) != 9 {
		t.Fatalf("collective sweep: %d rows, want 9", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if done := row[len(row)-1]; done != "2/2" {
			t.Errorf("%s on %s: %s iterations complete, want 2/2", row[0], row[1], done)
		}
	}
	// The 1x1 chip grid IS the monolithic 8x8 mesh, so splitting into a
	// 2x2 grid with 1-cycle full-width d2d channels must reproduce it
	// bit for bit (rows 0 and 1 of every algorithm block).
	for a := 0; a < 3; a++ {
		mono, ideal := tb.Rows[3*a], tb.Rows[3*a+1]
		if !reflect.DeepEqual(mono[2:], ideal[2:]) {
			t.Errorf("%s: ideal-d2d chiplet row diverges from monolithic:\n%v\n%v", mono[0], mono, ideal)
		}
	}
	t.Logf("\n%s", tb)
}

// TestCollectiveTablesIdentical is the experiment-level half of the
// determinism criterion for ext-collective: the rendered table must
// match cell for cell across worker counts, shard counts (including
// auto) and step modes.
func TestCollectiveTablesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep seven times")
	}
	run := func(workers, shards int, mode noc.StepMode) Table {
		o := Quick()
		o.Workers = workers
		o.Shards = shards
		o.StepMode = mode
		return CollectiveSweep(context.Background(), o)
	}
	ref := run(1, 1, noc.StepActivity)
	if len(ref.Rows) == 0 {
		t.Fatal("empty reference table; comparison is vacuous")
	}
	cases := []struct {
		workers, shards int
		mode            noc.StepMode
	}{
		{8, 1, noc.StepActivity},
		{1, 4, noc.StepActivity},
		{8, 4, noc.StepActivity},
		{1, -1, noc.StepActivity},
		{1, 1, noc.StepFullScan},
		{1, 4, noc.StepChecked},
	}
	for _, c := range cases {
		got := run(c.workers, c.shards, c.mode)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d shards=%d mode=%s: table diverges from sequential:\nsequential:\n%s\ngot:\n%s",
				c.workers, c.shards, c.mode, ref.String(), got.String())
		}
	}
}
