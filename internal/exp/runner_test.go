package exp

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mira/internal/core"
	"mira/internal/noc"
)

// TestSeedForDistinct checks that neighbouring point indices get
// well-separated seeds for any base seed.
func TestSeedForDistinct(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -7, 1 << 40} {
		seen := map[int64]int{}
		for i := 0; i < 1000; i++ {
			s := SeedFor(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SeedFor(%d, %d) == SeedFor(%d, %d) == %d", base, i, base, prev, s)
			}
			seen[s] = i
		}
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Error("different base seeds map index 0 to the same point seed")
	}
}

// TestRunAllOrdering checks results land at their point's index no
// matter how many workers race.
func TestRunAllOrdering(t *testing.T) {
	points := make([]Point[int], 64)
	for i := range points {
		i := i
		points[i] = Point[int]{Label: "p", Run: func(context.Context, Options) int { return i * i }}
	}
	for _, workers := range []int{1, 3, 8, 100} {
		got := RunAll(context.Background(), Options{Workers: workers}, points)
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: point %d returned %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunAllSeeds checks every point sees its derived seed and a
// worker-count-independent Options copy (Workers pinned to 1, no
// progress callback).
func TestRunAllSeeds(t *testing.T) {
	o := Options{Seed: 42, Workers: 4, Progress: func(Progress) {}}
	points := make([]Point[int64], 16)
	for i := range points {
		points[i] = Point[int64]{Label: "seed", Run: func(_ context.Context, po Options) int64 {
			if po.Workers != 1 || po.Progress != nil {
				t.Error("pool controls leaked into a point's Options")
			}
			return po.Seed
		}}
	}
	got := RunAll(context.Background(), o, points)
	for i, s := range got {
		if want := SeedFor(42, i); s != want {
			t.Errorf("point %d ran with seed %d, want SeedFor(42, %d) = %d", i, s, i, want)
		}
	}
}

// TestRunAllProgress checks the callback fires once per point with a
// monotonically increasing Done count.
func TestRunAllProgress(t *testing.T) {
	var calls int
	lastDone := 0
	o := Options{Workers: 8}
	o.Progress = func(p Progress) {
		calls++
		if p.Done != lastDone+1 {
			t.Errorf("Done jumped from %d to %d", lastDone, p.Done)
		}
		lastDone = p.Done
		if p.Total != 20 {
			t.Errorf("Total = %d, want 20", p.Total)
		}
		if p.Label != "prog" {
			t.Errorf("Label = %q", p.Label)
		}
	}
	points := make([]Point[struct{}], 20)
	for i := range points {
		points[i] = Point[struct{}]{Label: "prog", Run: func(context.Context, Options) struct{} { return struct{}{} }}
	}
	RunAll(context.Background(), o, points)
	if calls != 20 {
		t.Errorf("progress fired %d times, want 20", calls)
	}
}

// TestRunAllCancel checks the pool's cancellation contract: a canceled
// context stops dispatch, in-flight points observe it and return, every
// worker exits (RunAll returning is the proof), and never-run points are
// left as zero values.
func TestRunAllCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	points := make([]Point[int], 32)
	for i := range points {
		points[i] = Point[int]{Label: "cancel", Run: func(ctx context.Context, _ Options) int {
			<-ctx.Done() // a long simulation observing its context
			return 1
		}}
	}
	time.AfterFunc(20*time.Millisecond, cancel)
	done := make(chan []int, 1)
	go func() { done <- RunAll(ctx, Options{Workers: 4}, points) }()
	var got []int
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll did not return after cancellation: workers stuck")
	}
	ran := 0
	for _, v := range got {
		ran += v
	}
	if ran == len(points) {
		t.Error("every point ran; cancellation never stopped dispatch")
	}
	if ran == 0 {
		t.Error("no in-flight point completed after cancel")
	}
}

// TestRunAllDeterminism is the headline guarantee: a real simulation
// sweep produces byte-identical tables with 1 worker and with 8.
func TestRunAllDeterminism(t *testing.T) {
	o := tiny()
	sweep := func(workers int) []SweepResult {
		so := o
		so.Workers = workers
		var launched int32
		so.Progress = func(Progress) { atomic.AddInt32(&launched, 1) }
		res := runSweep(context.Background(), so, []float64{0.05, 0.30}, func(ctx context.Context, a core.Arch, rate float64, po Options) noc.Result {
			return RunUR(ctx, a, rate, 0, po)
		})
		if int(launched) != 2*len(core.Archs) {
			t.Fatalf("workers=%d: %d progress callbacks, want %d", workers, launched, 2*len(core.Archs))
		}
		return res
	}
	seq := sweep(1)
	par := sweep(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("sweep results differ between workers=1 and workers=8")
	}
}
