package exp

import (
	"fmt"

	"mira/internal/area"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/topology"
	"mira/internal/traffic"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify how sensitive the 3DM
// results are to the buffer geometry (§3.2.4 fixes 2 VCs for NUCA
// traffic; [23] argues half-size shared buffers suffice) and to the
// express-channel interval (Dally's express cubes leave it a free
// parameter; the paper uses the doubled wire budget for one extra hop).

// runCustomUR runs uniform-random traffic on a design with overridden
// buffer geometry.
func runCustomUR(d *core.Design, vcs, depth int, rate float64, o Options) noc.Result {
	gen := &traffic.Uniform{
		Topo:          d.Topo,
		InjectionRate: rate,
		PacketSize:    core.DataPacketFlits,
	}
	net := noc.NewNetwork(d.CustomNoCConfig(noc.AnyFree, o.Seed, vcs, depth))
	s := noc.NewSim(net, gen)
	s.Params = o.simParams()
	return s.Run()
}

// AblationBufferDepth sweeps the per-VC buffer depth of the 3DM router
// at a moderate and a high load.
func AblationBufferDepth(o Options) Table {
	t := Table{
		ID:     "ablation-buf",
		Title:  "3DM buffer-depth ablation (uniform random)",
		Header: []string{"depth (flits)", "lat @0.15", "lat @0.30", "buffer area um^2/layer"},
	}
	for _, depth := range []int{2, 4, 8, 16} {
		d := core.MustDesign(core.Arch3DM)
		lo := runCustomUR(d, core.VCsPerPort, depth, 0.15, o)
		hi := runCustomUR(d, core.VCsPerPort, depth, 0.30, o)
		ap := d.AreaParams
		ap.BufDepth = depth
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", depth), latCell(lo), latCell(hi),
			fmt.Sprintf("%.0f", areaBufPerLayer(ap)),
		})
	}
	t.Notes = append(t.Notes, "the paper's 8-flit VCs are past the knee at NUCA-typical loads")
	return t
}

// AblationVCs sweeps the VC count per port at fixed total buffer bits
// (VCs x depth constant), the tradeoff ViChaR [23] explores.
func AblationVCs(o Options) Table {
	t := Table{
		ID:     "ablation-vc",
		Title:  "3DM virtual-channel ablation at constant buffer bits (uniform random)",
		Header: []string{"VCs x depth", "lat @0.15", "lat @0.30"},
	}
	for _, c := range []struct{ vcs, depth int }{{1, 16}, {2, 8}, {4, 4}} {
		d := core.MustDesign(core.Arch3DM)
		lo := runCustomUR(d, c.vcs, c.depth, 0.15, o)
		hi := runCustomUR(d, c.vcs, c.depth, 0.30, o)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", c.vcs, c.depth), latCell(lo), latCell(hi),
		})
	}
	return t
}

// AblationExpressInterval compares express-channel hop spans on the
// 3DM-E fabric. Interval 2 is the paper's design; interval 3 trades
// lower maximum radix for fewer skippable hops on a 6-wide mesh.
func AblationExpressInterval(o Options) (Table, error) {
	t := Table{
		ID:     "ablation-express",
		Title:  "Express-channel interval ablation (uniform random)",
		Header: []string{"interval", "max ports", "avg hops (UR)", "lat @0.15", "lat @0.30"},
	}
	for _, interval := range []int{2, 3} {
		topo := topology.NewExpressMesh2D(6, 6, core.Pitch3DMMM, interval)
		if err := topology.ApplyNUCALayout2D(topo); err != nil {
			return t, err
		}
		alg := routing.Express{}
		hops, err := routing.AverageHops(topo, alg, nil, nil)
		if err != nil {
			return t, err
		}
		cfg := noc.Config{
			Topo: topo, Alg: alg, VCs: core.VCsPerPort, BufDepth: core.BufDepth,
			STLTCycles: 1, Layers: core.Layers, Policy: noc.AnyFree, Seed: o.Seed,
		}
		run := func(rate float64) noc.Result {
			gen := &traffic.Uniform{Topo: topo, InjectionRate: rate, PacketSize: core.DataPacketFlits}
			s := noc.NewSim(noc.NewNetwork(cfg), gen)
			s.Params = o.simParams()
			return s.Run()
		}
		lo, hi := run(0.15), run(0.30)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", interval), fmt.Sprintf("%d", topo.MaxPorts()),
			f2(hops), latCell(lo), latCell(hi),
		})
	}
	return t, nil
}

// areaBufPerLayer returns the per-layer buffer area for modified params
// (used by the buffer ablation).
func areaBufPerLayer(p area.Params) float64 {
	return area.Model(p).Buffer
}
