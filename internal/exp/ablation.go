package exp

import (
	"context"
	"fmt"

	"mira/internal/area"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/routing"
	"mira/internal/scenario"
	"mira/internal/topology"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify how sensitive the 3DM
// results are to the buffer geometry (§3.2.4 fixes 2 VCs for NUCA
// traffic; [23] argues half-size shared buffers suffice) and to the
// express-channel interval (Dally's express cubes leave it a free
// parameter; the paper uses the doubled wire budget for one extra hop).

// runCustomUR runs uniform-random traffic on the 3DM design with
// overridden buffer geometry.
func runCustomUR(ctx context.Context, vcs, depth int, rate float64, o Options) noc.Result {
	sc := o.Scenario(core.Arch3DM)
	sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate}
	sc.VCs = vcs
	sc.BufDepth = depth
	return mustElaborate(sc).Sim.Run(ctx)
}

// AblationBufferDepth sweeps the per-VC buffer depth of the 3DM router
// at a moderate and a high load.
func AblationBufferDepth(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "ablation-buf",
		Title:  "3DM buffer-depth ablation (uniform random)",
		Header: []string{"depth (flits)", "lat @0.15", "lat @0.30", "buffer area um^2/layer"},
	}
	depths := []int{2, 4, 8, 16}
	res := RunAll(ctx, o, bufGridPoints(depths, func(depth int) (vcs, d int) { return core.VCsPerPort, depth }))
	for i, depth := range depths {
		ap := corePowerOf(core.Arch3DM).AreaParams
		ap.BufDepth = depth
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", depth), latCell(res[2*i]), latCell(res[2*i+1]),
			fmt.Sprintf("%.0f", areaBufPerLayer(ap)),
		})
	}
	t.Notes = append(t.Notes, "the paper's 8-flit VCs are past the knee at NUCA-typical loads")
	return t
}

// AblationVCs sweeps the VC count per port at fixed total buffer bits
// (VCs x depth constant), the tradeoff ViChaR [23] explores.
func AblationVCs(ctx context.Context, o Options) Table {
	t := Table{
		ID:     "ablation-vc",
		Title:  "3DM virtual-channel ablation at constant buffer bits (uniform random)",
		Header: []string{"VCs x depth", "lat @0.15", "lat @0.30"},
	}
	cfgs := []struct{ vcs, depth int }{{1, 16}, {2, 8}, {4, 4}}
	idx := make([]int, len(cfgs))
	for i := range cfgs {
		idx[i] = i
	}
	res := RunAll(ctx, o, bufGridPoints(idx, func(i int) (vcs, depth int) { return cfgs[i].vcs, cfgs[i].depth }))
	for i, c := range cfgs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", c.vcs, c.depth), latCell(res[2*i]), latCell(res[2*i+1]),
		})
	}
	return t
}

// ablationRates are the moderate/high loads every buffer-geometry
// ablation row reports.
var ablationRates = []float64{0.15, 0.30}

// bufGridPoints expands a buffer-geometry sweep into (config × rate)
// points for the parallel runner; geom maps a config key to its
// (VCs, depth) pair.
func bufGridPoints[K any](keys []K, geom func(K) (vcs, depth int)) []Point[noc.Result] {
	points := make([]Point[noc.Result], 0, len(keys)*len(ablationRates))
	for _, k := range keys {
		vcs, depth := geom(k)
		for _, rate := range ablationRates {
			vcs, depth, rate := vcs, depth, rate
			points = append(points, Point[noc.Result]{
				Label: fmt.Sprintf("vcs=%d depth=%d rate=%.2f", vcs, depth, rate),
				Run: func(ctx context.Context, o Options) noc.Result {
					return runCustomUR(ctx, vcs, depth, rate, o)
				},
			})
		}
	}
	return points
}

// AblationExpressInterval compares express-channel hop spans on the
// 3DM-E fabric. Interval 2 is the paper's design; interval 3 trades
// lower maximum radix for fewer skippable hops on a 6-wide mesh.
func AblationExpressInterval(ctx context.Context, o Options) (Table, error) {
	t := Table{
		ID:     "ablation-express",
		Title:  "Express-channel interval ablation (uniform random)",
		Header: []string{"interval", "max ports", "avg hops (UR)", "lat @0.15", "lat @0.30"},
	}
	intervals := []int{2, 3}
	points := make([]Point[noc.Result], 0, len(intervals)*len(ablationRates))
	for _, interval := range intervals {
		for _, rate := range ablationRates {
			interval, rate := interval, rate
			points = append(points, Point[noc.Result]{
				Label: fmt.Sprintf("interval=%d rate=%.2f", interval, rate),
				Run: func(ctx context.Context, o Options) noc.Result {
					sc := o.Scenario(core.Arch3DME)
					sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate}
					sc.ExpressInterval = interval
					// The delay model would charge interval 3's longer
					// express wires a second ST+LT cycle; hold the
					// pipeline constant so the comparison isolates the
					// topology.
					sc.STLTCycles = 1
					return mustElaborate(sc).Sim.Run(ctx)
				},
			})
		}
	}
	res := RunAll(ctx, o, points)
	for i, interval := range intervals {
		topo, err := expressMesh(interval)
		if err != nil {
			return t, err
		}
		hops, err := routing.AverageHops(topo, routing.Express{}, nil, nil)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", interval), fmt.Sprintf("%d", topo.MaxPorts()),
			f2(hops), latCell(res[2*i]), latCell(res[2*i+1]),
		})
	}
	return t, nil
}

// expressMesh builds the 6x6 express mesh with the NUCA layout applied.
func expressMesh(interval int) (*topology.Topology, error) {
	topo := topology.NewExpressMesh2D(6, 6, core.Pitch3DMMM, interval)
	if err := topology.ApplyNUCALayout2D(topo); err != nil {
		return nil, err
	}
	return topo, nil
}

// areaBufPerLayer returns the per-layer buffer area for modified params
// (used by the buffer ablation).
func areaBufPerLayer(p area.Params) float64 {
	return area.Model(p).Buffer
}
