package exp

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// The parallel experiment engine. Every figure of the MIRA evaluation is
// a grid of fully independent simulation points — architectures ×
// injection rates × workloads — so the drivers in this package describe
// their sweeps as []Point and RunAll fans the points out across a worker
// pool.
//
// Determinism: each point receives an Options copy whose Seed is derived
// only from (Options.Seed, point index) via SeedFor, and results land in
// a slice slot owned by that index. No state is shared between points
// (each point elaborates its own Design/Network/Sim), so the output is
// bit-identical for every worker count, including 1. The per-point seed
// split also means distinct sweep points draw statistically independent
// random streams instead of replaying one shared stream.
//
// Cancellation: RunAll threads its context into every point, so a
// canceled sweep stops dispatching new points, the in-flight simulations
// return early (noc.Sim.Run polls the context on a cycle stride), and
// the workers drain before RunAll returns. Points that never ran are
// left as zero values in the result slice.

// Point is one independent simulation of a sweep: a label for progress
// reporting and the closure that runs it. The closure must derive all
// of its randomness from the Options it is handed and must not touch
// state shared with other points; it should pass the context down to
// the simulation so sweeps cancel promptly.
type Point[T any] struct {
	Label string
	Run   func(ctx context.Context, o Options) T
}

// Progress describes one completed sweep point.
type Progress struct {
	Done    int // points completed so far, including this one
	Total   int
	Index   int // the point's position in the input slice
	Label   string
	Elapsed time.Duration
}

// SeedFor derives the RNG seed for one sweep point from the experiment
// seed and the point's index (splitmix64 finalizer, so neighbouring
// indices yield uncorrelated streams).
func SeedFor(base int64, index int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// workerCount resolves Options.Workers, defaulting to GOMAXPROCS.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunAll executes the points on a pool of o.Workers goroutines
// (GOMAXPROCS when zero) and returns their results in input order.
// Each point runs with o.Seed replaced by SeedFor(o.Seed, index), so
// the result slice is identical no matter how many workers run it or
// in which order points are scheduled.
//
// When ctx is canceled, RunAll stops handing out further points, lets
// the in-flight points return (they observe the same context), waits
// for all workers to exit, and returns the partially filled slice.
func RunAll[T any](ctx context.Context, o Options, points []Point[T]) []T {
	out := make([]T, len(points))
	if len(points) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := o.workerCount()
	if workers > len(points) {
		workers = len(points)
	}
	progress := o.Progress
	total := len(points)

	// Points never see the pool controls: nested sweeps inside a point
	// run inline, and progress is reported only at point granularity.
	po := o
	po.Workers = 1
	po.Progress = nil

	if workers <= 1 {
		for i, p := range points {
			if ctx.Err() != nil {
				break
			}
			start := time.Now()
			opts := po
			opts.Seed = SeedFor(o.Seed, i)
			out[i] = p.Run(ctx, opts)
			if progress != nil {
				progress(Progress{Done: i + 1, Total: total, Index: i, Label: p.Label, Elapsed: time.Since(start)})
			}
		}
		return out
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes progress callbacks
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				opts := po
				opts.Seed = SeedFor(o.Seed, i)
				out[i] = points[i].Run(ctx, opts)
				if progress != nil {
					elapsed := time.Since(start)
					mu.Lock()
					done++
					progress(Progress{Done: done, Total: total, Index: i, Label: points[i].Label, Elapsed: elapsed})
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := range points {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return out
}
