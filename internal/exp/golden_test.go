package exp

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden tests pin the fully deterministic analytic artifacts (areas,
// delays, energies) cell by cell, guarding the calibration against
// accidental constant drift. Simulation-backed tables are checked
// behaviourally elsewhere, not pinned.

func findRow(t *testing.T, tb Table, name string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == name {
			return row
		}
	}
	t.Fatalf("%s: row %q missing", tb.ID, name)
	return nil
}

func TestGoldenTable1(t *testing.T) {
	tb := Table1()
	want := map[string][]string{
		"RC":         {"1717", "2404", "1717", "3091"},
		"SA1":        {"1008", "1411", "1008", "1814"},
		"SA2":        {"6201", "11306", "6201", "25024"},
		"VA1":        {"2016", "2822", "2016", "3629"},
		"VA2":        {"29312", "62725", "9771", "41842"},
		"Crossbar":   {"230400", "451584", "14400", "46656"},
		"Buffer":     {"162973", "228162", "40743", "73338"},
		"Total area": {"433627", "760414", "260827", "639059"},
	}
	for name, cells := range want {
		row := findRow(t, tb, name)
		for i, w := range cells {
			if row[i+1] != w {
				t.Errorf("table1 %s[%s] = %s, want %s", name, tb.Header[i+1], row[i+1], w)
			}
		}
	}
}

func TestGoldenTable3(t *testing.T) {
	tb := Table3()
	want := map[string][]string{
		"2DB":   {"378.56", "309.48", "688.04", "No"},
		"3DB":   {"599.90", "309.48", "909.38", "No"},
		"3DM":   {"142.86", "157.73", "300.59", "Yes"},
		"3DM-E": {"182.84", "315.47", "498.31", "Yes"},
	}
	for name, cells := range want {
		row := findRow(t, tb, name)
		for i, w := range cells {
			if row[i+1] != w {
				t.Errorf("table3 %s[%d] = %s, want %s", name, i, row[i+1], w)
			}
		}
	}
}

func TestGoldenFig9(t *testing.T) {
	tb := Fig9()
	want := map[string]string{
		"2DB":   "64.29",
		"3DB":   "70.47",
		"3DM":   "34.66",
		"3DM-E": "39.64",
	}
	for name, total := range want {
		row := findRow(t, tb, name)
		if row[len(row)-1] != total {
			t.Errorf("fig9 %s total = %s, want %s", name, row[len(row)-1], total)
		}
	}
}

func TestGoldenFig3(t *testing.T) {
	tb := Fig3()
	row := findRow(t, tb, "3DM")
	if row[4] != "0.26" {
		t.Errorf("fig3 3DM footprint ratio = %s, want 0.26", row[4])
	}
}

// updateGolden regenerates the scenario-port equivalence goldens:
//
//	go test ./internal/exp -run TestScenarioPortGolden -update
//
// The checked-in files were rendered by the pre-scenario drivers (each
// experiment hand-wiring its own Design/Network/Sim); the test asserts
// the scenario-based construction path reproduces them byte for byte.
var updateGolden = flag.Bool("update", false, "rewrite the scenario-port golden files")

// portGoldenOpts are the windows the equivalence goldens were rendered
// with. Deliberately small: every simulation-backed driver runs, so the
// full set has to stay test-suite cheap.
func portGoldenOpts() Options {
	return Options{Warmup: 200, Measure: 800, Drain: 3000, TraceCycles: 2000, Seed: 42}
}

// portGoldenDrivers lists every simulation-backed driver (the analytic
// tables are pinned cell-by-cell above). The adapters run each driver
// under context.Background(): the goldens pin uncanceled output.
func portGoldenDrivers() []struct {
	id  string
	run func(Options) (Table, error)
} {
	tbl := func(f func(context.Context, Options) Table) func(Options) (Table, error) {
		return func(o Options) (Table, error) { return f(context.Background(), o), nil }
	}
	tblE := func(f func(context.Context, Options) (Table, error)) func(Options) (Table, error) {
		return func(o Options) (Table, error) { return f(context.Background(), o) }
	}
	return []struct {
		id  string
		run func(Options) (Table, error)
	}{
		{"fig1", tblE(Fig1)},
		{"fig2", tblE(Fig2)},
		{"fig8", tbl(Fig8)},
		{"fig11a", tbl(Fig11a)},
		{"fig11b", tbl(Fig11b)},
		{"fig11c", tblE(Fig11c)},
		{"fig11d", tblE(Fig11d)},
		{"fig12a", tbl(Fig12a)},
		{"fig12b", tbl(Fig12b)},
		{"fig12c", tblE(Fig12c)},
		{"fig12d", tbl(Fig12d)},
		{"fig13a", tblE(Fig13a)},
		{"fig13b", tbl(Fig13b)},
		{"fig13c", tbl(Fig13c)},
		{"ablation-buf", tbl(AblationBufferDepth)},
		{"ablation-vc", tbl(AblationVCs)},
		{"ablation-express", tblE(AblationExpressInterval)},
		{"ext-leakage", tbl(ExtLeakage)},
		{"ext-cosim", tblE(ExtCosim)},
		{"ext-patterns", tblE(ExtPatterns)},
		{"ext-qos", tbl(ExtQoS)},
		{"ext-fault", tblE(ExtFault)},
		{"ext-herding", tbl(ExtHerding)},
		{"ext-protocol", tblE(ExtProtocol)},
	}
}

// TestScenarioPortGolden asserts every simulation-backed driver renders
// byte-identically to its pre-scenario-layer output (same seed, same
// windows), i.e. the scenario port changed zero simulated behaviour.
func TestScenarioPortGolden(t *testing.T) {
	o := portGoldenOpts()
	for _, d := range portGoldenDrivers() {
		d := d
		t.Run(d.id, func(t *testing.T) {
			t.Parallel()
			tb, err := d.run(o)
			if err != nil {
				t.Fatalf("%s: %v", d.id, err)
			}
			got := tb.String()
			path := filepath.Join("testdata", "port", d.id+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s diverged from the pre-scenario-port output:\n--- want ---\n%s\n--- got ---\n%s",
					d.id, want, got)
			}
		})
	}
}

func TestGoldenFig10Shape(t *testing.T) {
	s := Fig10().String()
	// 2D layout has two CPU rows of the c P P P P c shape.
	if strings.Count(s, "c P P P P c") != 2 {
		t.Errorf("fig10 2D layout wrong:\n%s", s)
	}
	// 3DB top layer ring of CPUs around a cache.
	if !strings.Contains(s, "P c P") {
		t.Errorf("fig10 3DB top layer wrong:\n%s", s)
	}
}
