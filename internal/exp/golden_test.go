package exp

import (
	"strings"
	"testing"
)

// Golden tests pin the fully deterministic analytic artifacts (areas,
// delays, energies) cell by cell, guarding the calibration against
// accidental constant drift. Simulation-backed tables are checked
// behaviourally elsewhere, not pinned.

func findRow(t *testing.T, tb Table, name string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == name {
			return row
		}
	}
	t.Fatalf("%s: row %q missing", tb.ID, name)
	return nil
}

func TestGoldenTable1(t *testing.T) {
	tb := Table1()
	want := map[string][]string{
		"RC":         {"1717", "2404", "1717", "3091"},
		"SA1":        {"1008", "1411", "1008", "1814"},
		"SA2":        {"6201", "11306", "6201", "25024"},
		"VA1":        {"2016", "2822", "2016", "3629"},
		"VA2":        {"29312", "62725", "9771", "41842"},
		"Crossbar":   {"230400", "451584", "14400", "46656"},
		"Buffer":     {"162973", "228162", "40743", "73338"},
		"Total area": {"433627", "760414", "260827", "639059"},
	}
	for name, cells := range want {
		row := findRow(t, tb, name)
		for i, w := range cells {
			if row[i+1] != w {
				t.Errorf("table1 %s[%s] = %s, want %s", name, tb.Header[i+1], row[i+1], w)
			}
		}
	}
}

func TestGoldenTable3(t *testing.T) {
	tb := Table3()
	want := map[string][]string{
		"2DB":   {"378.56", "309.48", "688.04", "No"},
		"3DB":   {"599.90", "309.48", "909.38", "No"},
		"3DM":   {"142.86", "157.73", "300.59", "Yes"},
		"3DM-E": {"182.84", "315.47", "498.31", "Yes"},
	}
	for name, cells := range want {
		row := findRow(t, tb, name)
		for i, w := range cells {
			if row[i+1] != w {
				t.Errorf("table3 %s[%d] = %s, want %s", name, i, row[i+1], w)
			}
		}
	}
}

func TestGoldenFig9(t *testing.T) {
	tb := Fig9()
	want := map[string]string{
		"2DB":   "64.29",
		"3DB":   "70.47",
		"3DM":   "34.66",
		"3DM-E": "39.64",
	}
	for name, total := range want {
		row := findRow(t, tb, name)
		if row[len(row)-1] != total {
			t.Errorf("fig9 %s total = %s, want %s", name, row[len(row)-1], total)
		}
	}
}

func TestGoldenFig3(t *testing.T) {
	tb := Fig3()
	row := findRow(t, tb, "3DM")
	if row[4] != "0.26" {
		t.Errorf("fig3 3DM footprint ratio = %s, want 0.26", row[4])
	}
}

func TestGoldenFig10Shape(t *testing.T) {
	s := Fig10().String()
	// 2D layout has two CPU rows of the c P P P P c shape.
	if strings.Count(s, "c P P P P c") != 2 {
		t.Errorf("fig10 2D layout wrong:\n%s", s)
	}
	// 3DB top layer ring of CPUs around a cache.
	if !strings.Contains(s, "P c P") {
		t.Errorf("fig10 3DB top layer wrong:\n%s", s)
	}
}
