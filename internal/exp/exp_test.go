package exp

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/thermal"
)

// tiny returns the smallest windows that still produce stable averages,
// keeping the test suite fast.
func tiny() Options {
	return Options{Warmup: 500, Measure: 2500, Drain: 8000, TraceCycles: 6000, Seed: 42}
}

func design(a core.Arch) *core.Design { return core.MustDesign(a) }

// bg is the context every behavioural test runs under; cancellation has
// its own regression tests in internal/scenario.
func bg() context.Context { return context.Background() }

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	s := tb.String()
	for _, want := range []string{"demo", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestStaticTablesNonEmpty(t *testing.T) {
	for _, tb := range []Table{Table1(), Table2(), Table3(), Fig3(), Fig9(), Fig10()} {
		if len(tb.Rows) == 0 {
			t.Errorf("%s has no rows", tb.ID)
		}
		if len(tb.Header) == 0 {
			t.Errorf("%s has no header", tb.ID)
		}
	}
}

func TestFig9HeadlineOrdering(t *testing.T) {
	e2 := corePowerFlitHop(design(core.Arch2DB)).Total()
	e3 := corePowerFlitHop(design(core.Arch3DB)).Total()
	em := corePowerFlitHop(design(core.Arch3DM)).Total()
	ee := corePowerFlitHop(design(core.Arch3DME)).Total()
	if !(em < ee && ee < e2 && e2 < e3) {
		t.Errorf("flit energy ordering: 3DM=%.1f 3DM-E=%.1f 2DB=%.1f 3DB=%.1f", em, ee, e2, e3)
	}
}

// Figure 11 (a): at moderate uniform-random load the 3DM-E design has
// the lowest latency; 3DM beats 2DB via the combined pipeline; 3DM(NC)
// behaves like 2DB (same logical network and pipeline).
func TestURLatencyOrdering(t *testing.T) {
	o := tiny()
	const rate = 0.15
	lat := map[core.Arch]float64{}
	for _, a := range core.Archs {
		r := RunUR(bg(), a, rate, 0, o)
		if r.Saturated {
			t.Fatalf("%v saturated at rate %v", a, rate)
		}
		lat[a] = r.AvgLatency
	}
	if !(lat[core.Arch3DME] < lat[core.Arch3DM] && lat[core.Arch3DM] < lat[core.Arch2DB]) {
		t.Errorf("latency ordering violated: %v", lat)
	}
	// Same logical layout and pipeline => near-identical behaviour.
	d := lat[core.Arch3DMNC]/lat[core.Arch2DB] - 1
	if d < -0.02 || d > 0.02 {
		t.Errorf("3DM(NC) should match 2DB: %.2f vs %.2f", lat[core.Arch3DMNC], lat[core.Arch2DB])
	}
	// Pipeline combination: 3DM saves one cycle per hop over 3DM(NC).
	if lat[core.Arch3DM] >= lat[core.Arch3DMNC] {
		t.Errorf("ST+LT combination should reduce latency: %.2f vs %.2f",
			lat[core.Arch3DM], lat[core.Arch3DMNC])
	}
}

// Figure 12 (a): network power ordering at equal offered load:
// 3DM-E < 3DM < 3DB < 2DB (0 % short flits, no shutdown).
func TestURPowerOrdering(t *testing.T) {
	o := tiny()
	const rate = 0.15
	pw := map[core.Arch]float64{}
	for _, a := range []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME} {
		pw[a] = NetworkPowerW(design(a), RunUR(bg(), a, rate, 0, o), false)
	}
	if !(pw[core.Arch3DME] < pw[core.Arch3DM] && pw[core.Arch3DM] < pw[core.Arch3DB] && pw[core.Arch3DB] < pw[core.Arch2DB]) {
		t.Errorf("power ordering violated: %v", pw)
	}
	// Paper: 3DM-E saves up to ~42 % over 2DB on synthetic traffic; our
	// model lands deeper (~45-50 %), but the direction and rough factor
	// must hold.
	saving := 1 - pw[core.Arch3DME]/pw[core.Arch2DB]
	if saving < 0.30 || saving > 0.65 {
		t.Errorf("3DM-E power saving = %.2f, want roughly 0.4-0.5", saving)
	}
}

// Figure 11 (c) headline: with application traces 3DM-E cuts latency by
// ~38 % vs 2DB, 3DM by ~20 %; 3DB is no better than 2DB.
func TestTraceLatencyHeadlines(t *testing.T) {
	o := tiny()
	w, _ := cmp.ByName("tpcw")
	res := map[core.Arch]float64{}
	for _, a := range []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME} {
		r, _, err := RunTrace(bg(), a, w, o)
		if err != nil {
			t.Fatal(err)
		}
		res[a] = r.AvgLatency
	}
	base := res[core.Arch2DB]
	if r := res[core.Arch3DME] / base; r < 0.5 || r > 0.75 {
		t.Errorf("3DM-E trace latency ratio = %.2f, want ~0.62 (38%% saving)", r)
	}
	if r := res[core.Arch3DM] / base; r < 0.7 || r > 0.95 {
		t.Errorf("3DM trace latency ratio = %.2f, want ~0.8", r)
	}
	if r := res[core.Arch3DB] / base; r < 0.95 {
		t.Errorf("3DB should not beat 2DB on NUCA traces: ratio %.2f", r)
	}
}

// Figure 12 (c) headline: with traces and layer shutdown, 3DM/3DM-E cut
// network power by roughly 2/3 vs a no-shutdown 2DB.
func TestTracePowerHeadlines(t *testing.T) {
	o := tiny()
	w, _ := cmp.ByName("tpcw")
	d2 := design(core.Arch2DB)
	r2, _, err := RunTrace(bg(), core.Arch2DB, w, o)
	if err != nil {
		t.Fatal(err)
	}
	base := NetworkPowerW(d2, r2, false)
	de := design(core.Arch3DME)
	re, _, err := RunTrace(bg(), core.Arch3DME, w, o)
	if err != nil {
		t.Fatal(err)
	}
	ratio := NetworkPowerW(de, re, true) / base
	if ratio < 0.15 || ratio > 0.45 {
		t.Errorf("3DM-E trace power ratio = %.2f, want ~0.3 (paper ~67%% saving)", ratio)
	}
}

// Figure 13 (b): the shutdown technique saves ~18 % at 25 % short flits
// and ~36 % at 50 %.
func TestShutdownSavings(t *testing.T) {
	o := tiny()
	d := design(core.Arch3DM)
	const rate = 0.15
	base := NetworkPowerW(d, RunUR(bg(), core.Arch3DM, rate, 0, o), true)
	s25 := 1 - NetworkPowerW(d, RunUR(bg(), core.Arch3DM, rate, 0.25, o), true)/base
	s50 := 1 - NetworkPowerW(d, RunUR(bg(), core.Arch3DM, rate, 0.50, o), true)/base
	if s25 < 0.10 || s25 > 0.25 {
		t.Errorf("25%% short saving = %.3f, want ~0.17", s25)
	}
	if s50 < 0.28 || s50 > 0.42 {
		t.Errorf("50%% short saving = %.3f, want ~0.36", s50)
	}
	if s50 <= s25 {
		t.Errorf("more short flits must save more: %.3f vs %.3f", s50, s25)
	}
}

// Figure 13 (c): temperature reduction is positive, grows with injection
// rate, and sits at the order of ~1 K.
func TestThermalReduction(t *testing.T) {
	o := tiny()
	d := design(core.Arch3DM)
	var prev float64
	for _, rate := range []float64{0.1, 0.3} {
		r0 := RunUR(bg(), core.Arch3DM, rate, 0, o)
		r50 := RunUR(bg(), core.Arch3DM, rate, 0.5, o)
		dT := thermal.Average(solveChipTemps(d, r0)) - thermal.Average(solveChipTemps(d, r50))
		if dT <= 0 || dT > 4 {
			t.Errorf("rate %v: dT = %.2f K out of (0, 4]", rate, dT)
		}
		if dT <= prev {
			t.Errorf("dT should grow with injection rate: %.2f after %.2f", dT, prev)
		}
		prev = dT
	}
}

// Figure 11 (d): hop-count relationships.
func TestHopCountTable(t *testing.T) {
	tb, err := Fig11d(bg(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(core.Archs) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(core.Archs))
	}
}

func TestAblations(t *testing.T) {
	o := tiny()
	buf := AblationBufferDepth(bg(), o)
	if len(buf.Rows) != 4 {
		t.Errorf("buffer ablation rows = %d, want 4", len(buf.Rows))
	}
	// Deeper buffers must not be slower at high load (monotone or flat
	// within noise once past the knee); depth 2 should be clearly worse
	// than depth 8 at 0.30 load.
	lat2 := parseLat(t, buf.Rows[0][2])
	lat8 := parseLat(t, buf.Rows[2][2])
	if lat8 >= lat2 {
		t.Errorf("depth-8 latency %.1f should beat depth-2 %.1f at high load", lat8, lat2)
	}

	vcs := AblationVCs(bg(), o)
	if len(vcs.Rows) != 3 {
		t.Errorf("VC ablation rows = %d", len(vcs.Rows))
	}

	ex, err := AblationExpressInterval(bg(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Rows) != 2 {
		t.Fatalf("express ablation rows = %d", len(ex.Rows))
	}
	// Interval 2 covers more distances on a 6-wide mesh: fewer hops.
	h2 := parseLat(t, ex.Rows[0][2])
	h3 := parseLat(t, ex.Rows[1][2])
	if h2 >= h3 {
		t.Errorf("interval-2 hops %.2f should undercut interval-3 %.2f", h2, h3)
	}
}

func parseLat(t *testing.T, s string) float64 {
	t.Helper()
	if len(s) > 0 && s[len(s)-1] == '*' {
		s = s[:len(s)-1]
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		t.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

// Thermal herding must strictly reduce chip temperature, and stacking
// it with router shutdown must be the coolest configuration.
func TestHerdingOrdering(t *testing.T) {
	tb := ExtHerding(bg(), tiny())
	get := func(i int) float64 { return parseLat(t, tb.Rows[i][1]) }
	evenFull, evenShort := get(0), get(1)
	herdFull, herdShort := get(2), get(3)
	if !(herdFull < evenFull) {
		t.Errorf("herding should cool the chip: %.2f vs %.2f", herdFull, evenFull)
	}
	if !(evenShort < evenFull && herdShort < herdFull) {
		t.Errorf("shutdown should cool both core distributions: %v", tb.Rows)
	}
	if !(herdShort < evenFull) {
		t.Errorf("combined should beat the baseline: %.2f vs %.2f", herdShort, evenFull)
	}
}

// Simulated results must be stable across seeds: the headline latency
// ratio's spread stays within a few percent of its mean.
func TestSeedStability(t *testing.T) {
	o := tiny()
	m := Replicate(5, 100, func(seed int64) float64 {
		oo := o
		oo.Seed = seed
		return RunUR(bg(), core.Arch3DME, 0.15, 0, oo).AvgLatency /
			RunUR(bg(), core.Arch2DB, 0.15, 0, oo).AvgLatency
	})
	if m.N() != 5 {
		t.Fatalf("replicates = %d", m.N())
	}
	cv := m.StdDev() / m.Mean()
	if cv > 0.05 {
		t.Errorf("latency ratio unstable across seeds: mean %.3f cv %.3f", m.Mean(), cv)
	}
	if m.Mean() < 0.5 || m.Mean() > 0.75 {
		t.Errorf("cross-seed mean ratio %.3f outside expectation", m.Mean())
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1,x", "he \"said\""}, {"2", "3"}},
	}
	got := tb.CSV()
	want := "a,b\n\"1,x\",\"he \"\"said\"\"\"\n2,3\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableCharts(t *testing.T) {
	sweep := Table{
		ID:     "sweep",
		Header: []string{"rate", "2DB", "3DM-E", "notes"},
		Rows: [][]string{
			{"0.1", "30.1", "19.2*", "x/y"},
			{"0.2", "33.0", "20.0", "x/y"},
		},
	}
	lc, err := sweep.LineChart("cycles")
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Series) != 2 { // "notes" column dropped
		t.Errorf("series = %d, want 2", len(lc.Series))
	}
	if lc.Series[1].Y[0] != 19.2 { // '*' stripped
		t.Errorf("saturated cell parsed as %v", lc.Series[1].Y[0])
	}
	svg, err := sweep.SVG("cycles")
	if err != nil || !strings.Contains(svg, "polyline") {
		t.Errorf("sweep should render as line chart: %v", err)
	}

	bars := Table{
		ID:     "bars",
		Header: []string{"workload", "3DM"},
		Rows:   [][]string{{"tpcw", "0.33"}, {"ocean", "0.41"}},
	}
	svg, err = bars.SVG("")
	if err != nil || strings.Contains(svg, "polyline") {
		t.Errorf("categorical table should render as bars: %v", err)
	}

	layouts := Table{ID: "x", Header: []string{"a", "b"}, Rows: [][]string{{"p", "q"}}}
	if _, err := layouts.SVG(""); err == nil {
		t.Errorf("non-numeric table should refuse to chart")
	}
}

func TestFig8PipelineFamily(t *testing.T) {
	o := tiny()
	tb := Fig8(bg(), o)
	if len(tb.Rows) != 5 {
		t.Fatalf("fig8 rows = %d, want 5", len(tb.Rows))
	}
	// Low-load latency must strictly improve from (a) to (c)+(d).
	baseline := parseLat(t, tb.Rows[0][2])
	spec := parseLat(t, tb.Rows[1][2])
	twoStage := parseLat(t, tb.Rows[2][2])
	full := parseLat(t, tb.Rows[4][2])
	if !(full < twoStage && twoStage < spec && spec < baseline) {
		t.Errorf("pipeline family not monotone: %v %v %v %v", baseline, spec, twoStage, full)
	}
}

func TestExtLeakage(t *testing.T) {
	o := tiny()
	tb := ExtLeakage(bg(), o)
	if len(tb.Rows) != 4 {
		t.Fatalf("leakage rows = %d, want 4", len(tb.Rows))
	}
	// Leakage share is small but non-zero everywhere; the 3DB router
	// (largest area) leaks the most in absolute terms.
	var leak2DB, leak3DB float64
	for _, row := range tb.Rows {
		l := parseLat(t, row[2])
		if l <= 0 {
			t.Errorf("%s: leakage %v should be positive", row[0], l)
		}
		switch row[0] {
		case "2DB":
			leak2DB = l
		case "3DB":
			leak3DB = l
		}
	}
	if leak3DB <= leak2DB {
		t.Errorf("3DB (larger router) should leak more: %v vs %v", leak3DB, leak2DB)
	}
}

// TestAllExperimentsRun exercises every table builder end to end with
// tiny windows, checking shape and (where numeric) chartability. This is
// the same inventory mirabench exposes.
func TestAllExperimentsRun(t *testing.T) {
	o := tiny()
	wrapErr := func(f func(context.Context, Options) Table) func(Options) (Table, error) {
		return func(o Options) (Table, error) { return f(bg(), o), nil }
	}
	wrapCtx := func(f func(context.Context, Options) (Table, error)) func(Options) (Table, error) {
		return func(o Options) (Table, error) { return f(bg(), o) }
	}
	static := func(f func() Table) func(Options) (Table, error) {
		return func(Options) (Table, error) { return f(), nil }
	}
	cases := []struct {
		id      string
		minRows int
		chart   bool
		run     func(Options) (Table, error)
	}{
		{"table1", 8, false, static(Table1)},
		{"table2", 5, false, static(Table2)},
		{"table3", 4, false, static(Table3)},
		{"fig3", 3, true, static(Fig3)},
		{"fig8", 5, true, wrapErr(Fig8)},
		{"fig9", 4, true, static(Fig9)},
		{"fig10", 10, false, static(Fig10)},
		{"fig11a", len(URRates), true, wrapErr(Fig11a)},
		{"fig12a", len(URRates), true, wrapErr(Fig12a)},
		{"fig12d", len(URRates), true, wrapErr(Fig12d)},
		{"fig13b", 3, true, wrapErr(Fig13b)},
		{"fig13c", 3, true, wrapErr(Fig13c)},
		{"ablation-vc", 3, true, wrapErr(AblationVCs)},
		{"ext-leakage", 4, true, wrapErr(ExtLeakage)},
		{"ext-qos", 4, true, wrapErr(ExtQoS)},
		{"ext-herding", 4, true, wrapErr(ExtHerding)},
		{"ext-protocol", 4, true, wrapCtx(ExtProtocol)},
		{"ext-fault", 3, false, wrapCtx(ExtFault)},
		{"ext-patterns", 4, true, wrapCtx(ExtPatterns)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			t.Parallel()
			tb, err := c.run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) < c.minRows {
				t.Fatalf("%s: %d rows, want >= %d", c.id, len(tb.Rows), c.minRows)
			}
			if tb.ID != c.id {
				t.Errorf("table ID %q, want %q", tb.ID, c.id)
			}
			if s := tb.String(); len(s) == 0 {
				t.Errorf("empty rendering")
			}
			if s := tb.CSV(); len(s) == 0 {
				t.Errorf("empty CSV")
			}
			if c.chart {
				if _, err := tb.SVG(""); err != nil {
					t.Errorf("%s should chart: %v", c.id, err)
				}
			}
		})
	}
}

func TestFig1Fig2Fig13a(t *testing.T) {
	o := tiny()
	f1t, err := Fig1(bg(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1t.Rows) != len(cmp.Workloads) {
		t.Errorf("fig1 rows = %d, want %d", len(f1t.Rows), len(cmp.Workloads))
	}
	f2t, err := Fig2(bg(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2t.Rows) != len(cmp.Presented) {
		t.Errorf("fig2 rows = %d", len(f2t.Rows))
	}
	f13, err := Fig13a(bg(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.Rows) != len(cmp.Presented)+1 { // + average row
		t.Errorf("fig13a rows = %d", len(f13.Rows))
	}
}
