package exp

import (
	"fmt"

	"mira/internal/area"
	"mira/internal/core"
	"mira/internal/timing"
	"mira/internal/topology"
)

// Table1 regenerates the router component area table from the analytic
// area model.
func Table1() Table {
	t := Table{
		ID:     "table1",
		Title:  "Router component area (um^2); multi-layer entries are max per layer",
		Header: []string{"Area", "2DB", "3DB", "3DM", "3DM-E"},
	}
	params := []area.Params{
		{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1},
		{Ports: 7, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1},
		{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4},
		{Ports: 9, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4},
	}
	var bs []area.Breakdown
	for _, p := range params {
		bs = append(bs, area.Model(p))
	}
	row := func(name string, get func(area.Breakdown) float64) []string {
		cells := []string{name}
		for _, b := range bs {
			cells = append(cells, fmt.Sprintf("%.0f", get(b)))
		}
		return cells
	}
	t.Rows = append(t.Rows,
		row("RC", func(b area.Breakdown) float64 { return b.RC }),
		row("SA1", func(b area.Breakdown) float64 { return b.SA1 }),
		row("SA2", func(b area.Breakdown) float64 { return b.SA2 }),
		row("VA1", func(b area.Breakdown) float64 { return b.VA1 }),
		row("VA2", func(b area.Breakdown) float64 { return b.VA2 }),
		row("Crossbar", func(b area.Breakdown) float64 { return b.Crossbar }),
		row("Buffer", func(b area.Breakdown) float64 { return b.Buffer }),
		row("Total area", func(b area.Breakdown) float64 { return b.TotalRouter }),
	)
	vias3DB, ovh3DB := area.VerticalBusVias(params[1])
	t.Rows = append(t.Rows,
		[]string{"Total vias", "0", fmt.Sprintf("%d (W)", vias3DB), fmt.Sprintf("%d", bs[2].Vias), fmt.Sprintf("%d", bs[3].Vias)},
		[]string{"Via ovh/layer %", "0", f2(ovh3DB), f2(bs[2].ViaOverheadPct), f2(bs[3].ViaOverheadPct)},
	)
	t.Notes = append(t.Notes, "SA2/VA2 arbiter areas use the synthesis-calibrated lookup (see internal/area)")
	return t
}

// Table2 echoes the physical design parameters.
func Table2() Table {
	return Table{
		ID:     "table2",
		Title:  "Design parameters",
		Header: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"Unbuffered link delay", fmt.Sprintf("%.0f ps/mm", timing.UnbufferedLinkPSPerMM)},
			{"Buffered link delay", fmt.Sprintf("%.2f ps/mm", timing.BufferedLinkPSPerMM)},
			{"Inverter delay (HSPICE)", fmt.Sprintf("%.2f ps", timing.InverterDelayPS)},
			{"2DB inter-router link", fmt.Sprintf("%.2f mm", core.Pitch2DMM)},
			{"3DM inter-router link", fmt.Sprintf("%.2f mm", core.Pitch3DMMM)},
			{"Clock", fmt.Sprintf("%.0f GHz (%.0f ps/stage)", timing.ClockGHz, timing.StageBudgetPS)},
		},
	}
}

// Table3 regenerates the ST+LT pipeline combination feasibility check.
func Table3() Table {
	t := Table{
		ID:     "table3",
		Title:  "Delay validation for pipeline combination (2 GHz, 500 ps budget)",
		Header: []string{"Design", "XBAR (ps)", "Link (ps)", "Combined (ps)", "ST+LT combined"},
	}
	cases := []struct {
		name    string
		side    float64
		linkLen float64
	}{
		{"2DB", 480, core.Pitch2DMM},
		{"3DB", 672, core.Pitch2DMM},
		{"3DM", 120, core.Pitch3DMMM},
		{"3DM-E", 216, core.Pitch3DMMM * core.ExpressInterval},
	}
	for _, c := range cases {
		d := timing.Evaluate(c.side, c.linkLen)
		yes := "No"
		if d.Combinable {
			yes = "Yes"
		}
		t.Rows = append(t.Rows, []string{c.name, f2(d.XbarPS), f2(d.LinkPS), f2(d.CombinedPS), yes})
	}
	t.Notes = append(t.Notes, "3DM-E is evaluated at its longest (express, 2-hop) link")
	return t
}

// Fig3 compares per-layer chip footprints: stacking shrinks the
// footprint by the layer count in both 3D organizations.
func Fig3() Table {
	node2D := core.Pitch2DMM * core.Pitch2DMM
	node3DM := core.Pitch3DMMM * core.Pitch3DMMM
	rows := [][]string{
		{"2DB", "1", "36", f1(36 * node2D), "1.00"},
		{"3DB", "4", "9", f1(9 * node2D), f2(9 * node2D / (36 * node2D))},
		{"3DM", "4", "36", f1(36 * node3DM), f2(36 * node3DM / (36 * node2D))},
	}
	return Table{
		ID:     "fig3",
		Title:  "Footprint comparison, 36 nodes (per-layer silicon area)",
		Header: []string{"Design", "Layers", "Nodes/layer", "Footprint (mm^2)", "vs 2DB"},
		Rows:   rows,
	}
}

// Fig9 is the per-flit energy breakdown by router component.
func Fig9() Table {
	t := Table{
		ID:     "fig9",
		Title:  "Flit energy breakdown (pJ per flit per hop)",
		Header: []string{"Design", "Buffer", "Crossbar", "Link", "Allocators", "Total"},
	}
	for _, d := range Designs() {
		if d.Arch == core.Arch3DMNC || d.Arch == core.Arch3DMENC {
			continue // same datapath energy as the combined variants
		}
		e := corePowerFlitHop(d)
		t.Rows = append(t.Rows, []string{
			d.Arch.String(), f2(e.Buffer), f2(e.Crossbar), f2(e.Link), f2(e.Allocators), f2(e.Total()),
		})
	}
	return t
}

// Fig10 prints the NUCA node layouts.
func Fig10() Table {
	t := Table{
		ID:     "fig10",
		Title:  "Node layouts for 36 cores (P = processor, c = cache)",
		Header: []string{"Design", "Layout"},
	}
	d2 := core.MustDesign(core.Arch2DB)
	d3 := core.MustDesign(core.Arch3DB)
	t.Rows = append(t.Rows,
		[]string{"2DB/3DM/3DM-E", ""},
	)
	for _, line := range splitLines(topology.LayoutString(d2.Topo)) {
		t.Rows = append(t.Rows, []string{"", line})
	}
	t.Rows = append(t.Rows, []string{"3DB (layer 3 = heat sink)", ""})
	for _, line := range splitLines(topology.LayoutString(d3.Topo)) {
		t.Rows = append(t.Rows, []string{"", line})
	}
	return t
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
