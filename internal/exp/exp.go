// Package exp contains one driver per table and figure of the MIRA
// paper's evaluation. The drivers are shared by the mirabench command
// and the root-level testing.B benchmarks, and their outputs populate
// EXPERIMENTS.md. Each experiment is deterministic given Options.Seed.
package exp

import (
	"context"
	"encoding/csv"
	"fmt"
	"strings"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/scenario"
	"mira/internal/stats"
)

// Options sizes the simulations.
type Options struct {
	Warmup  int64
	Measure int64
	Drain   int64
	// TraceCycles is the CMP generation window for the MP-trace
	// experiments.
	TraceCycles int64
	Seed        int64
	// Workers caps the RunAll worker pool that fans independent sweep
	// points across goroutines; 0 (the default) means GOMAXPROCS.
	// Results are bit-identical for every worker count — see runner.go.
	Workers int
	// Progress, when non-nil, is invoked (serialized) after each
	// completed sweep point, for per-point progress/timing reporting.
	Progress func(Progress)
	// StepMode selects the simulator's per-cycle scheduling strategy
	// (activity-driven by default). Results are bit-identical across
	// modes; fullscan/checked exist for determinism diffs and
	// debugging (mirabench -stepmode).
	StepMode noc.StepMode
	// Shards partitions each simulated mesh into contiguous router-ID
	// ranges stepped concurrently inside every cycle (noc.Config.Shards;
	// mirabench/mirasim -shards). Results are bit-identical at any
	// value. Composes with Workers: Workers parallelizes across sweep
	// points, Shards parallelizes inside each simulation.
	Shards int
	// ObserveWindow, when positive, adds an Observe block with this
	// sample window (cycles) to every scenario the options produce, so
	// each sweep point runs with an observability collector attached
	// (internal/obs). Zero leaves scenarios unobserved; results are
	// identical either way, observation only adds visibility.
	ObserveWindow int64
	// Engine attaches engine self-telemetry (obs.EngineCollector) to
	// every scenario the options produce: per-shard wall-time, pool
	// utilization, cycles/sec with ETA (mirabench -enginestats). Like
	// ObserveWindow, strictly out-of-band — results are bit-identical.
	Engine bool
}

// Default returns the full-size experiment windows.
func Default() Options {
	return Options{Warmup: 5000, Measure: 20000, Drain: 30000, TraceCycles: 30000, Seed: 42}
}

// Quick returns scaled-down windows for benchmarks and smoke tests.
func Quick() Options {
	return Options{Warmup: 1000, Measure: 4000, Drain: 10000, TraceCycles: 8000, Seed: 42}
}

// Scenario converts the options into a base run description for one
// architecture: windows, seed and step mode carried over, traffic and
// overrides left for the caller to fill in. Every simulation a driver
// runs goes Options -> Scenario -> scenario.Elaborate, so mirabench
// -stepmode/-seed reach every simulation and any driver's point can be
// reproduced standalone from its serialized scenario.
func (o Options) Scenario(a core.Arch) scenario.Scenario {
	sc := scenario.Scenario{
		Arch:     a.String(),
		Warmup:   o.Warmup,
		Measure:  o.Measure,
		Drain:    o.Drain,
		Seed:     o.Seed,
		StepMode: o.StepMode.String(),
		Shards:   o.Shards,
	}
	if o.ObserveWindow > 0 {
		sc.Observe = &scenario.Observe{Window: o.ObserveWindow}
	}
	if o.Engine {
		if sc.Observe == nil {
			sc.Observe = &scenario.Observe{}
		}
		sc.Observe.Engine = true
	}
	return sc
}

// mustElaborate builds a driver-authored scenario. The drivers'
// scenarios are statically valid, so failure here is a programming
// error, not an input error.
func mustElaborate(sc scenario.Scenario) *scenario.Elaboration {
	e, err := sc.Elaborate()
	if err != nil {
		panic(err)
	}
	return e
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry caveats (substitutions, saturated points).
	Notes []string
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as RFC 4180 CSV (header + rows; notes are
// omitted), for plotting pipelines. Cells containing commas, quotes or
// newlines are fully quoted per the RFC.
func (t Table) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write(t.Header); err != nil {
		panic(err) // strings.Builder never errors
	}
	if err := w.WriteAll(t.Rows); err != nil {
		panic(err)
	}
	w.Flush()
	return sb.String()
}

// Designs elaborates all six architectures fresh (topologies are
// mutable by node-type assignment, so experiments never share them).
func Designs() []*core.Design {
	out := make([]*core.Design, 0, len(core.Archs))
	for _, a := range core.Archs {
		out = append(out, core.MustDesign(a))
	}
	return out
}

// RunUR simulates one architecture under uniform-random traffic at the
// given injection rate (flits/node/cycle) with the given short-flit
// fraction.
func RunUR(ctx context.Context, a core.Arch, rate, shortFrac float64, o Options) noc.Result {
	sc := o.Scenario(a)
	sc.Traffic = scenario.Traffic{Kind: "ur", Rate: rate, ShortFrac: shortFrac}
	return mustElaborate(sc).Sim.Run(ctx)
}

// RunNUCAUR simulates the layout-constrained bimodal request/response
// workload (§4.2.1's "NUCA-UR").
func RunNUCAUR(ctx context.Context, a core.Arch, rate, shortFrac float64, o Options) noc.Result {
	sc := o.Scenario(a)
	sc.Traffic = scenario.Traffic{Kind: "nuca", Rate: rate, ShortFrac: shortFrac}
	return mustElaborate(sc).Sim.Run(ctx)
}

// RunTrace generates the workload's CMP coherence trace on the
// architecture's own topology and replays it through the NoC.
func RunTrace(ctx context.Context, a core.Arch, w cmp.Workload, o Options) (noc.Result, cmp.Stats, error) {
	sc := o.Scenario(a)
	sc.Traffic = scenario.Traffic{Kind: "trace", Workload: w.Name, TraceCycles: o.TraceCycles}
	e, err := sc.Elaborate()
	if err != nil {
		return noc.Result{}, cmp.Stats{}, err
	}
	return e.Sim.Run(ctx), e.Stats, nil
}

// NetworkPowerW converts a simulation result into average network power
// (W) under the design's energy model, optionally applying the
// short-flit layer-shutdown accounting.
func NetworkPowerW(d *core.Design, res noc.Result, shutdown bool) float64 {
	b := power.NetworkEnergy(d.Energy, res.Counters, shutdown)
	return power.AvgPowerW(b, res.Cycles)
}

// PerRouterPowerW returns each router's average power for the thermal
// model.
func PerRouterPowerW(d *core.Design, res noc.Result, shutdown bool) []float64 {
	out := make([]float64, len(res.PerRouter))
	for i, c := range res.PerRouter {
		b := power.NetworkEnergy(d.Energy, c, shutdown)
		out[i] = power.AvgPowerW(b, res.Cycles)
	}
	return out
}

// Replicate evaluates a metric across n seeds (base, base+1, ...) and
// returns its distribution, for confidence checks on simulated numbers.
func Replicate(n int, base int64, metric func(seed int64) float64) stats.Mean {
	var m stats.Mean
	for i := 0; i < n; i++ {
		m.Add(metric(base + int64(i)))
	}
	return m
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// latCell renders a latency with a saturation marker.
func latCell(r noc.Result) string {
	s := f1(r.AvgLatency)
	if r.Saturated {
		s += "*"
	}
	return s
}
