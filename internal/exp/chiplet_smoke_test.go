package exp

import (
	"context"
	"testing"
)

func TestChipletSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chiplet sweep is a full 8-point simulation sweep")
	}
	o := Quick()
	tb := ChipletSweep(context.Background(), o)
	if len(tb.Rows) != 8 {
		t.Fatalf("chiplet sweep: %d rows, want 8", len(tb.Rows))
	}
	t.Logf("\n%s", tb)
}
