package exp

import (
	"context"
	"reflect"
	"testing"
)

// TestShardTablesIdentical is the experiment-level half of the
// shard-determinism regression: whole rendered tables must match
// cell-for-cell between sequential stepping and sharded stepping, and
// the two parallelism axes must compose — -workers fans sweep points
// across goroutines while -shards splits each simulation — without
// perturbing a single formatted value. Fig11a covers all six
// architectures including the 3D fabrics.
func TestShardTablesIdentical(t *testing.T) {
	run := func(workers, shards int) Table {
		o := Options{
			Warmup: 200, Measure: 800, Drain: 3000, TraceCycles: 2000,
			Seed: 42, Workers: workers, Shards: shards,
		}
		return Fig11a(context.Background(), o)
	}
	ref := run(1, 1)
	if len(ref.Rows) == 0 {
		t.Fatal("empty reference table; comparison is vacuous")
	}
	for _, c := range []struct{ workers, shards int }{{1, 4}, {8, 1}, {8, 4}} {
		got := run(c.workers, c.shards)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d shards=%d: table diverges from sequential:\nsequential:\n%s\ngot:\n%s",
				c.workers, c.shards, ref.String(), got.String())
		}
	}
}
