package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		lo, hi float64
	}{
		{0, 1}, {0, 0.45}, {10, 50}, {0, 6000}, {0.05, 0.4}, {3, 3},
	}
	for _, c := range cases {
		ticks := niceTicks(c.lo, c.hi)
		if len(ticks) < 3 || len(ticks) > 10 {
			t.Errorf("ticks(%v,%v) = %v: want 3-10 ticks", c.lo, c.hi, ticks)
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("ticks(%v,%v) not increasing: %v", c.lo, c.hi, ticks)
			}
		}
	}
}

func TestNiceTicksProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		ticks := niceTicks(a, b)
		return len(ticks) >= 2 && len(ticks) <= 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{0: "0", 150: "150", 2.5: "2.5", 0.05: "0.05", 1: "1"}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}

func lineChart() *LineChart {
	return &LineChart{
		Title: "Latency vs load", XLabel: "rate", YLabel: "cycles",
		Series: []Series{
			{Name: "2DB", X: []float64{0.1, 0.2, 0.3}, Y: []float64{30, 33, 36}},
			{Name: "3DM-E", X: []float64{0.1, 0.2, 0.3}, Y: []float64{19, 20, 21}},
		},
	}
}

func TestLineChartSVG(t *testing.T) {
	svg, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "polyline", "Latency vs load", "2DB", "3DM-E", "cycles"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := (&LineChart{Title: "x"}).SVG(); err == nil {
		t.Errorf("empty chart should error")
	}
	bad := &LineChart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Errorf("mismatched series should error")
	}
}

func TestLineChartDeterministic(t *testing.T) {
	a, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lineChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("SVG output not deterministic")
	}
}

func barChart() *BarChart {
	return &BarChart{
		Title: "Normalized power", YLabel: "vs 2DB",
		Groups: []string{"tpcw", "sjbb"},
		Series: []BarSeries{
			{Name: "3DM", Values: []float64{0.33, 0.36}},
			{Name: "3DM-E", Values: []float64{0.33, 0.35}},
		},
	}
}

func TestBarChartSVG(t *testing.T) {
	svg, err := barChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "tpcw", "sjbb", "3DM-E", "Normalized power"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 2 groups x 2 series bars + 2 legend swatches + background.
	if got := strings.Count(svg, "<rect"); got != 4+2+1 {
		t.Errorf("rects = %d, want 7", got)
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (&BarChart{}).SVG(); err == nil {
		t.Errorf("empty bar chart should error")
	}
	bad := &BarChart{Groups: []string{"a"}, Series: []BarSeries{{Name: "s", Values: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Errorf("mismatched groups should error")
	}
}

func TestEscaping(t *testing.T) {
	c := &LineChart{
		Title:  `a<b & "c"`,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b`) {
		t.Errorf("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Errorf("escaped title missing")
	}
}

func TestNegativeValuesBar(t *testing.T) {
	c := &BarChart{
		Title:  "deltas",
		Groups: []string{"a"},
		Series: []BarSeries{{Name: "s", Values: []float64{-2}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<rect") {
		t.Errorf("negative bar not drawn")
	}
}
