// Package plot renders experiment results as standalone SVG figures
// (line charts for the injection-rate sweeps of Figs. 11 and 12, grouped
// bar charts for the per-workload and per-design comparisons of Figs. 1,
// 2, 9 and 13) using only the standard library. The output aims for
// "paper figure" fidelity: titled axes, tick labels, legends,
// deterministic layout. mirabench -svg routes every exp.Table with a
// numeric series through here.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Default canvas geometry (pixels).
const (
	defaultWidth  = 720
	defaultHeight = 440
	marginLeft    = 70
	marginRight   = 160
	marginTop     = 48
	marginBottom  = 56
)

// palette holds the series colors (colorblind-friendly).
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#999999",
}

// Series is one named line in a LineChart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart is an x/y chart with multiple series.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width/Height default to 720x440 when zero.
	Width, Height int
}

// BarSeries is one named bar group member.
type BarSeries struct {
	Name   string
	Values []float64
}

// BarChart is a grouped bar chart: one cluster per group, one bar per
// series within each cluster.
type BarChart struct {
	Title  string
	YLabel string
	Groups []string
	Series []BarSeries
	Width  int
	Height int
}

// niceTicks returns ~5 rounded tick values covering [lo, hi].
func niceTicks(lo, hi float64) []float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for span/step > 8 {
		step *= 2
	}
	for span/step < 3 {
		step /= 2
	}
	start := math.Floor(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/2; v += step {
		if v >= lo-step/2 {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

// fmtTick renders a tick label compactly.
func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

type svgBuilder struct {
	strings.Builder
	w, h int
}

func newSVG(w, h int) *svgBuilder {
	b := &svgBuilder{w: w, h: h}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return b
}

func (b *svgBuilder) text(x, y float64, size int, anchor, style, s string) {
	fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="Helvetica,Arial,sans-serif" text-anchor="%s"%s>%s</text>`+"\n",
		x, y, size, anchor, style, esc(s))
}

func (b *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (b *svgBuilder) finish() string {
	b.WriteString("</svg>\n")
	return b.String()
}

// frame draws the title, axes box, ticks and labels, returning the
// mapping from data space to pixel space.
func frame(b *svgBuilder, title, xlabel, ylabel string, xlo, xhi, ylo, yhi float64, xticks []float64, xtickLabels []string) (mapX, mapY func(float64) float64) {
	plotW := float64(b.w - marginLeft - marginRight)
	plotH := float64(b.h - marginTop - marginBottom)
	mapX = func(v float64) float64 {
		return marginLeft + (v-xlo)/(xhi-xlo)*plotW
	}
	mapY = func(v float64) float64 {
		return marginTop + plotH - (v-ylo)/(yhi-ylo)*plotH
	}
	b.text(float64(b.w)/2, 24, 16, "middle", ` font-weight="bold"`, title)
	// Axes box.
	b.line(marginLeft, marginTop, marginLeft, marginTop+plotH, "#333", 1)
	b.line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "#333", 1)
	// Y ticks and gridlines.
	for _, v := range niceTicks(ylo, yhi) {
		y := mapY(v)
		b.line(marginLeft-4, y, marginLeft, y, "#333", 1)
		b.line(marginLeft, y, marginLeft+plotW, y, "#e5e5e5", 0.8)
		b.text(marginLeft-8, y+4, 11, "end", "", fmtTick(v))
	}
	// X ticks.
	for i, v := range xticks {
		x := mapX(v)
		b.line(x, marginTop+plotH, x, marginTop+plotH+4, "#333", 1)
		label := fmtTick(v)
		if xtickLabels != nil {
			label = xtickLabels[i]
		}
		b.text(x, marginTop+plotH+18, 11, "middle", "", label)
	}
	b.text(marginLeft+plotW/2, float64(b.h)-12, 13, "middle", "", xlabel)
	b.text(18, marginTop+plotH/2, 13, "middle",
		fmt.Sprintf(` transform="rotate(-90 18 %.1f)"`, marginTop+plotH/2), ylabel)
	return mapX, mapY
}

func legend(b *svgBuilder, names []string) {
	x := float64(b.w - marginRight + 16)
	y := float64(marginTop + 8)
	for i, name := range names {
		c := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n", x, y-10, c)
		b.text(x+18, y, 12, "start", "", name)
		y += 20
	}
}

// SVG renders the line chart.
func (c *LineChart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: line chart %q has no series", c.Title)
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = defaultWidth
	}
	if h == 0 {
		h = defaultHeight
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xlo, xhi = math.Min(xlo, s.X[i]), math.Max(xhi, s.X[i])
			ylo, yhi = math.Min(ylo, s.Y[i]), math.Max(yhi, s.Y[i])
		}
	}
	if math.IsInf(xlo, 1) {
		return "", fmt.Errorf("plot: line chart %q has no points", c.Title)
	}
	if ylo > 0 && ylo < yhi/3 {
		ylo = 0 // anchor near-zero charts at zero
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	yhi += (yhi - ylo) * 0.05

	b := newSVG(w, h)
	mapX, mapY := frame(b, c.Title, c.XLabel, c.YLabel, xlo, xhi, ylo, yhi, niceTicks(xlo, xhi), nil)
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", mapX(s.X[j]), mapY(s.Y[j])))
		}
		fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for j := range s.X {
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				mapX(s.X[j]), mapY(s.Y[j]), color)
		}
	}
	var names []string
	for _, s := range c.Series {
		names = append(names, s.Name)
	}
	legend(b, names)
	return b.finish(), nil
}

// SVG renders the grouped bar chart.
func (c *BarChart) SVG() (string, error) {
	if len(c.Series) == 0 || len(c.Groups) == 0 {
		return "", fmt.Errorf("plot: bar chart %q is empty", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Groups) {
			return "", fmt.Errorf("plot: series %q has %d values for %d groups", s.Name, len(s.Values), len(c.Groups))
		}
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = defaultWidth
	}
	if h == 0 {
		h = defaultHeight
	}
	ylo, yhi := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			yhi = math.Max(yhi, v)
			ylo = math.Min(ylo, v)
		}
	}
	if yhi <= ylo {
		yhi = ylo + 1
	}
	yhi += (yhi - ylo) * 0.05

	nG, nS := len(c.Groups), len(c.Series)
	// Group i occupies x in [i, i+1); bars within leave 20% padding.
	b := newSVG(w, h)
	xticks := make([]float64, nG)
	for i := range xticks {
		xticks[i] = float64(i) + 0.5
	}
	mapX, mapY := frame(b, c.Title, "", c.YLabel, 0, float64(nG), ylo, yhi, xticks, c.Groups)
	y0 := mapY(math.Max(0, ylo))
	barW := 0.8 / float64(nS)
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		for gi, v := range s.Values {
			x := mapX(float64(gi) + 0.1 + barW*float64(si))
			xw := mapX(float64(gi)+0.1+barW*float64(si+1)) - x - 1
			y := mapY(v)
			top, height := y, y0-y
			if height < 0 {
				top, height = y0, -height
			}
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, top, xw, height, color)
		}
	}
	var names []string
	for _, s := range c.Series {
		names = append(names, s.Name)
	}
	legend(b, names)
	return b.finish(), nil
}

// Heatmap is a matrix chart: one colored cell per (row, column) value,
// rendered with a sequential white-to-blue ramp and a value legend. The
// observability layer's per-router congestion matrices (internal/obs
// CongestionHeatmap) render through it; rows are routers, columns are
// cycle windows.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// Rows[i][j] is the cell value at row i, column j; all rows must
	// have the same length.
	Rows      [][]float64
	RowLabels []string // one per row (optional)
	ColLabels []string // one per column (optional)
	Width     int
	Height    int
}

// rampColor maps t in [0,1] onto a white-to-deep-blue ramp.
func rampColor(t float64) string {
	if math.IsNaN(t) || t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Interpolate white (255,255,255) -> #08519c (8,81,156).
	r := int(255 + t*(8-255))
	g := int(255 + t*(81-255))
	b := int(255 + t*(156-255))
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// SVG renders the heatmap.
func (c *Heatmap) SVG() (string, error) {
	if len(c.Rows) == 0 || len(c.Rows[0]) == 0 {
		return "", fmt.Errorf("plot: heatmap %q is empty", c.Title)
	}
	nR, nC := len(c.Rows), len(c.Rows[0])
	for i, r := range c.Rows {
		if len(r) != nC {
			return "", fmt.Errorf("plot: heatmap row %d has %d cells, want %d", i, len(r), nC)
		}
	}
	if c.RowLabels != nil && len(c.RowLabels) != nR {
		return "", fmt.Errorf("plot: heatmap has %d row labels for %d rows", len(c.RowLabels), nR)
	}
	if c.ColLabels != nil && len(c.ColLabels) != nC {
		return "", fmt.Errorf("plot: heatmap has %d column labels for %d columns", len(c.ColLabels), nC)
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = defaultWidth
	}
	if h == 0 {
		h = defaultHeight
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range c.Rows {
		for _, v := range row {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if lo > 0 {
		lo = 0 // anchor the ramp at zero so "no stall" reads as white
	}
	if hi <= lo {
		hi = lo + 1
	}

	b := newSVG(w, h)
	b.text(float64(w)/2, 24, 16, "middle", ` font-weight="bold"`, c.Title)
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	cellW := plotW / float64(nC)
	cellH := plotH / float64(nR)
	for i, row := range c.Rows {
		y := float64(marginTop) + float64(i)*cellH
		for j, v := range row {
			x := float64(marginLeft) + float64(j)*cellW
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				x, y, cellW, cellH, rampColor((v-lo)/(hi-lo)))
		}
		if c.RowLabels != nil {
			b.text(float64(marginLeft)-6, y+cellH/2+4, 10, "end", "", c.RowLabels[i])
		}
	}
	// Column labels: thin to at most ~12 so they stay readable.
	if c.ColLabels != nil {
		step := (nC + 11) / 12
		for j := 0; j < nC; j += step {
			x := float64(marginLeft) + (float64(j)+0.5)*cellW
			b.text(x, float64(marginTop)+plotH+16, 10, "middle", "", c.ColLabels[j])
		}
	}
	b.text(float64(marginLeft)+plotW/2, float64(h)-12, 13, "middle", "", c.XLabel)
	b.text(18, float64(marginTop)+plotH/2, 13, "middle",
		fmt.Sprintf(` transform="rotate(-90 18 %.1f)"`, float64(marginTop)+plotH/2), c.YLabel)
	// Color legend: vertical ramp with min/max labels.
	lx := float64(w - marginRight + 24)
	steps := 24
	lh := plotH * 0.6
	ly := float64(marginTop) + (plotH-lh)/2
	for s := 0; s < steps; s++ {
		t := 1 - float64(s)/float64(steps-1)
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="14" height="%.2f" fill="%s"/>`+"\n",
			lx, ly+float64(s)*lh/float64(steps), lh/float64(steps)+0.5, rampColor(t))
	}
	b.text(lx+20, ly+8, 10, "start", "", fmtTick(hi))
	b.text(lx+20, ly+lh, 10, "start", "", fmtTick(lo))
	return b.finish(), nil
}
