package topology

import (
	"testing"
	"testing/quick"
)

func TestDirOpposite(t *testing.T) {
	for d := Dir(1); d < NumDirs; d++ {
		if got := d.Opposite().Opposite(); got != d {
			t.Errorf("Opposite(Opposite(%v)) = %v", d, got)
		}
		if d.Opposite() == d {
			t.Errorf("Opposite(%v) must differ", d)
		}
	}
	if Local.Opposite() != Local {
		t.Errorf("Local opposite should be Local")
	}
}

func TestDirPredicates(t *testing.T) {
	if !EastExp.IsExpress() || !SouthExp.IsExpress() {
		t.Errorf("express dirs misclassified")
	}
	if East.IsExpress() || Local.IsExpress() {
		t.Errorf("non-express dirs misclassified")
	}
	if !Up.IsVertical() || !Down.IsVertical() || North.IsVertical() {
		t.Errorf("vertical predicate wrong")
	}
}

func TestDirString(t *testing.T) {
	if East.String() != "east" || Local.String() != "local" {
		t.Errorf("Dir.String wrong: %v %v", East, Local)
	}
	if Dir(99).String() == "" {
		t.Errorf("out-of-range Dir.String should not be empty")
	}
}

func TestMesh2DStructure(t *testing.T) {
	m := NewMesh2D(6, 6, 3.1)
	if m.NumNodes() != 36 {
		t.Fatalf("nodes = %d, want 36", m.NumNodes())
	}
	// 2*(xd-1)*yd + 2*(yd-1)*xd unidirectional links.
	if got, want := len(m.Links()), 2*5*6+2*5*6; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	// Corner has 3 ports (local+2), edge 4, interior 5.
	if p := m.NumPorts(m.MustNodeAt(Coord{X: 0, Y: 0}).ID); p != 3 {
		t.Errorf("corner ports = %d, want 3", p)
	}
	if p := m.NumPorts(m.MustNodeAt(Coord{X: 3, Y: 0}).ID); p != 4 {
		t.Errorf("edge ports = %d, want 4", p)
	}
	if p := m.NumPorts(m.MustNodeAt(Coord{X: 2, Y: 3}).ID); p != 5 {
		t.Errorf("interior ports = %d, want 5", p)
	}
	if m.MaxPorts() != 5 {
		t.Errorf("MaxPorts = %d, want 5", m.MaxPorts())
	}
	for _, l := range m.Links() {
		if l.LengthMM != 3.1 || l.Span != 1 || l.Vertical {
			t.Fatalf("bad link %+v", l)
		}
	}
}

func TestMesh2DLinkSymmetry(t *testing.T) {
	m := NewMesh2D(4, 3, 1)
	for _, l := range m.Links() {
		back, ok := m.OutLink(l.Dst, l.SrcPort.Opposite())
		if !ok {
			t.Fatalf("no reverse link for %+v", l)
		}
		if back.Dst != l.Src {
			t.Fatalf("reverse of %+v goes to %d", l, back.Dst)
		}
	}
}

func TestMesh2DCoordRoundTrip(t *testing.T) {
	m := NewMesh2D(6, 6, 1)
	for _, n := range m.Nodes() {
		got, ok := m.NodeAt(n.Coord)
		if !ok || got.ID != n.ID {
			t.Fatalf("NodeAt(%v) = %v, want id %d", n.Coord, got.ID, n.ID)
		}
	}
}

func TestNodeAtOutOfRange(t *testing.T) {
	m := NewMesh2D(2, 2, 1)
	for _, c := range []Coord{{X: -1}, {X: 2}, {Y: 2}, {Z: 1}} {
		if _, ok := m.NodeAt(c); ok {
			t.Errorf("NodeAt(%v) should not exist", c)
		}
	}
}

func TestMesh3DStructure(t *testing.T) {
	m := NewMesh3D(3, 3, 4, 3.1, 0.02)
	if m.NumNodes() != 36 {
		t.Fatalf("nodes = %d, want 36", m.NumNodes())
	}
	if m.MaxPorts() != 7 {
		t.Errorf("MaxPorts = %d, want 7 (3DB adds up/down)", m.MaxPorts())
	}
	// Centre node of a middle layer has all 7 ports.
	c := m.MustNodeAt(Coord{X: 1, Y: 1, Z: 1})
	if p := m.NumPorts(c.ID); p != 7 {
		t.Errorf("centre ports = %d, want 7", p)
	}
	var vert, horiz int
	for _, l := range m.Links() {
		if l.Vertical {
			vert++
			if l.LengthMM != 0.02 {
				t.Fatalf("vertical link length %v", l.LengthMM)
			}
		} else {
			horiz++
			if l.LengthMM != 3.1 {
				t.Fatalf("horizontal link length %v", l.LengthMM)
			}
		}
	}
	if vert != 2*9*3 { // 9 columns x 3 layer gaps x 2 directions
		t.Errorf("vertical links = %d, want 54", vert)
	}
	if horiz != 4*24 { // per layer: 2*(2*3) + 2*(2*3) = 24; x4 layers = 96
		t.Errorf("horizontal links = %d, want 96", horiz)
	}
}

func TestExpressMeshStructure(t *testing.T) {
	m := NewExpressMesh2D(6, 6, 1.58, 2)
	if m.NumNodes() != 36 {
		t.Fatalf("nodes = %d, want 36", m.NumNodes())
	}
	if m.MaxPorts() != 9 {
		t.Errorf("MaxPorts = %d, want 9 (3DM-E radix)", m.MaxPorts())
	}
	// Express link from (0,0) east should reach (2,0) with length 3.16.
	l, ok := m.OutLink(m.MustNodeAt(Coord{}).ID, EastExp)
	if !ok {
		t.Fatalf("no east express link at origin")
	}
	if l.Span != 2 {
		t.Errorf("express span = %d, want 2", l.Span)
	}
	if got := m.Node(l.Dst).Coord; got != (Coord{X: 2}) {
		t.Errorf("express east from origin lands at %v", got)
	}
	if l.LengthMM < 3.159 || l.LengthMM > 3.161 {
		t.Errorf("express length = %v, want 3.16", l.LengthMM)
	}
	// Normal links still exist.
	if _, ok := m.OutLink(m.MustNodeAt(Coord{}).ID, East); !ok {
		t.Errorf("normal east link missing at origin")
	}
}

func TestExpressMeshInteriorRadix(t *testing.T) {
	m := NewExpressMesh2D(6, 6, 1.58, 2)
	n := m.MustNodeAt(Coord{X: 2, Y: 3})
	ports := m.Ports(n.ID)
	if len(ports) != 9 {
		t.Errorf("interior express node ports = %d (%v), want 9", len(ports), ports)
	}
}

func TestExpressIntervalValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("interval 1 should panic")
		}
	}()
	NewExpressMesh2D(6, 6, 1, 1)
}

func TestMeshDimensionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("zero-dimension mesh should panic")
		}
	}()
	NewMesh2D(0, 6, 1)
}

func TestDuplicateLinkPanics(t *testing.T) {
	m := NewMesh2D(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate link should panic")
		}
	}()
	m.addBiLink(0, 1, East, 1, 1, false)
}

func TestNUCALayout2D(t *testing.T) {
	m := NewMesh2D(6, 6, 3.1)
	if err := ApplyNUCALayout2D(m); err != nil {
		t.Fatal(err)
	}
	if got := len(m.CPUs()); got != 8 {
		t.Errorf("CPUs = %d, want 8", got)
	}
	if got := len(m.Caches()); got != 28 {
		t.Errorf("caches = %d, want 28", got)
	}
	// CPUs are in the middle rows (y = 2 or 3).
	for _, id := range m.CPUs() {
		c := m.Node(id).Coord
		if c.Y != 2 && c.Y != 3 {
			t.Errorf("CPU at %v not in middle rows", c)
		}
	}
}

func TestNUCALayout2DWrongShape(t *testing.T) {
	m := NewMesh2D(4, 4, 1)
	if err := ApplyNUCALayout2D(m); err == nil {
		t.Errorf("4x4 should be rejected")
	}
}

func TestNUCALayout3D(t *testing.T) {
	m := NewMesh3D(3, 3, 4, 3.1, 0.02)
	if err := ApplyNUCALayout3D(m); err != nil {
		t.Fatal(err)
	}
	if got := len(m.CPUs()); got != 8 {
		t.Errorf("CPUs = %d, want 8", got)
	}
	if got := len(m.Caches()); got != 28 {
		t.Errorf("caches = %d, want 28", got)
	}
	// All CPUs in top layer.
	for _, id := range m.CPUs() {
		if m.Node(id).Coord.Z != 3 {
			t.Errorf("CPU at %v not in top layer", m.Node(id).Coord)
		}
	}
}

func TestNUCALayout3DWrongShape(t *testing.T) {
	m := NewMesh3D(2, 2, 4, 1, 0.02)
	if err := ApplyNUCALayout3D(m); err == nil {
		t.Errorf("2x2x4 should be rejected")
	}
}

func TestLayoutString(t *testing.T) {
	m := NewMesh2D(6, 6, 3.1)
	if err := ApplyNUCALayout2D(m); err != nil {
		t.Fatal(err)
	}
	s := LayoutString(m)
	var cpus int
	for _, r := range s {
		if r == 'P' {
			cpus++
		}
	}
	if cpus != 8 {
		t.Errorf("layout string has %d CPUs:\n%s", cpus, s)
	}
}

// Property: every link's destination port direction is the opposite of
// its source port direction when traced back.
func TestLinkOppositeProperty(t *testing.T) {
	f := func(xd, yd uint8) bool {
		x := int(xd%5) + 2
		y := int(yd%5) + 2
		m := NewExpressMesh2D(x+2, y+2, 1, 2)
		for _, l := range m.Links() {
			back, ok := m.OutLink(l.Dst, l.SrcPort.Opposite())
			if !ok || back.Dst != l.Src || back.LengthMM != l.LengthMM {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
