package topology_test

import (
	"fmt"

	"mira/internal/topology"
)

func ExampleNewMesh2D() {
	m := topology.NewMesh2D(6, 6, 3.1)
	fmt.Println(m.Name, m.NumNodes(), "nodes, max radix", m.MaxPorts())
	// Output: mesh6x6 36 nodes, max radix 5
}

func ExampleNewExpressMesh2D() {
	m := topology.NewExpressMesh2D(6, 6, 1.58, 2)
	l, _ := m.OutLink(0, topology.EastExp)
	fmt.Printf("express link spans %d hops, %.2f mm, radix %d\n",
		l.Span, l.LengthMM, m.MaxPorts())
	// Output: express link spans 2 hops, 3.16 mm, radix 9
}

func ExampleLayoutString() {
	m := topology.NewMesh2D(6, 6, 3.1)
	if err := topology.ApplyNUCALayout2D(m); err != nil {
		panic(err)
	}
	fmt.Print(topology.LayoutString(m))
	// Output:
	// c c c c c c
	// c c c c c c
	// c P P P P c
	// c P P P P c
	// c c c c c c
	// c c c c c c
}
