// Package topology models the interconnect graphs evaluated in the MIRA
// paper: the 6x6 2D mesh (2DB, 3DM), the 3x3x4 stacked mesh (3DB), and
// the 6x6 express mesh with multi-hop links (3DM-E), together with the
// NUCA CPU/cache node layouts of Figure 10.
package topology

import "fmt"

// NodeID identifies a router/node pair in a topology.
type NodeID int

// Coord is a node position. Z is 0 for planar topologies.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Dir names a router port. Local is the NI (network interface) port;
// the *Exp directions are the multi-hop express ports of 3DM-E.
type Dir int

// Port directions.
const (
	Local Dir = iota
	East
	West
	North
	South
	Up
	Down
	EastExp
	WestExp
	NorthExp
	SouthExp
	NumDirs // sentinel
)

var dirNames = [...]string{
	"local", "east", "west", "north", "south", "up", "down",
	"east-exp", "west-exp", "north-exp", "south-exp",
}

func (d Dir) String() string {
	if d < 0 || int(d) >= len(dirNames) {
		return fmt.Sprintf("dir(%d)", int(d))
	}
	return dirNames[d]
}

// Opposite returns the port on the receiving router for a link that
// leaves through d: a flit sent east arrives on the west port.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	case Up:
		return Down
	case Down:
		return Up
	case EastExp:
		return WestExp
	case WestExp:
		return EastExp
	case NorthExp:
		return SouthExp
	case SouthExp:
		return NorthExp
	}
	return Local
}

// IsExpress reports whether d is a multi-hop express port.
func (d Dir) IsExpress() bool {
	return d >= EastExp && d <= SouthExp
}

// IsVertical reports whether d crosses silicon layers (3DB only).
func (d Dir) IsVertical() bool { return d == Up || d == Down }

// NodeType distinguishes processor from cache nodes in the NUCA layouts.
type NodeType int

// Node types.
const (
	Cache NodeType = iota
	CPU
)

func (t NodeType) String() string {
	if t == CPU {
		return "cpu"
	}
	return "cache"
}

// Node is one network endpoint with its attached router.
type Node struct {
	ID    NodeID
	Coord Coord
	Type  NodeType
}

// Link is a unidirectional channel between two routers.
type Link struct {
	Src, Dst NodeID
	// SrcPort is the output direction on the source router; the flit
	// arrives on SrcPort.Opposite() at the destination.
	SrcPort  Dir
	LengthMM float64
	// Span is the Manhattan distance covered (1 for normal links, the
	// express interval for express links).
	Span     int
	Vertical bool
}

// Topology is an immutable directed graph of routers.
type Topology struct {
	Name             string
	XDim, YDim, ZDim int
	nodes            []Node
	links            []Link
	out              [][]int // out[node][dir] = link index+1, 0 if none
}

func newTopology(name string, xd, yd, zd int) *Topology {
	n := xd * yd * zd
	t := &Topology{Name: name, XDim: xd, YDim: yd, ZDim: zd}
	t.nodes = make([]Node, n)
	t.out = make([][]int, n)
	for i := range t.nodes {
		t.nodes[i] = Node{ID: NodeID(i), Coord: t.coordOf(NodeID(i))}
		t.out[i] = make([]int, NumDirs)
	}
	return t
}

func (t *Topology) coordOf(id NodeID) Coord {
	perLayer := t.XDim * t.YDim
	z := int(id) / perLayer
	rem := int(id) % perLayer
	return Coord{X: rem % t.XDim, Y: rem / t.XDim, Z: z}
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Nodes returns all nodes. The slice must not be modified.
func (t *Topology) Nodes() []Node { return t.nodes }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// NodeAt returns the node at coordinate c and whether it exists.
func (t *Topology) NodeAt(c Coord) (Node, bool) {
	if c.X < 0 || c.X >= t.XDim || c.Y < 0 || c.Y >= t.YDim || c.Z < 0 || c.Z >= t.ZDim {
		return Node{}, false
	}
	id := NodeID(c.Z*t.XDim*t.YDim + c.Y*t.XDim + c.X)
	return t.nodes[id], true
}

// MustNodeAt returns the node at c, panicking when out of range. It is
// intended for construction-time code with statically valid coordinates.
func (t *Topology) MustNodeAt(c Coord) Node {
	n, ok := t.NodeAt(c)
	if !ok {
		panic(fmt.Sprintf("topology %s: no node at %v", t.Name, c))
	}
	return n
}

// SetType assigns a node type (used by the NUCA layouts).
func (t *Topology) SetType(id NodeID, typ NodeType) { t.nodes[id].Type = typ }

// Links returns all unidirectional links. The slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// OutLink returns the link leaving node id through port d, if any.
func (t *Topology) OutLink(id NodeID, d Dir) (Link, bool) {
	li := t.out[id][d]
	if li == 0 {
		return Link{}, false
	}
	return t.links[li-1], true
}

// Ports returns the output directions with links at node id, always
// including Local first.
func (t *Topology) Ports(id NodeID) []Dir {
	ports := []Dir{Local}
	for d := Dir(1); d < NumDirs; d++ {
		if t.out[id][d] != 0 {
			ports = append(ports, d)
		}
	}
	return ports
}

// NumPorts returns the number of physical ports (incl. Local) at node id.
func (t *Topology) NumPorts(id NodeID) int { return len(t.Ports(id)) }

// MaxPorts returns the largest router radix in the topology; this is the
// "P" used for area and power models (5 for meshes, 7 for 3DB, 9 for
// 3DM-E).
func (t *Topology) MaxPorts() int {
	max := 0
	for _, n := range t.nodes {
		if p := t.NumPorts(n.ID); p > max {
			max = p
		}
	}
	return max
}

// addBiLink installs links in both directions between a and b, leaving a
// through d.
func (t *Topology) addBiLink(a, b NodeID, d Dir, lengthMM float64, span int, vertical bool) {
	t.addLink(Link{Src: a, Dst: b, SrcPort: d, LengthMM: lengthMM, Span: span, Vertical: vertical})
	t.addLink(Link{Src: b, Dst: a, SrcPort: d.Opposite(), LengthMM: lengthMM, Span: span, Vertical: vertical})
}

func (t *Topology) addLink(l Link) {
	if t.out[l.Src][l.SrcPort] != 0 {
		panic(fmt.Sprintf("topology %s: duplicate link at node %d port %v", t.Name, l.Src, l.SrcPort))
	}
	t.links = append(t.links, l)
	t.out[l.Src][l.SrcPort] = len(t.links)
}

// CPUs returns the IDs of all CPU nodes.
func (t *Topology) CPUs() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Type == CPU {
			out = append(out, n.ID)
		}
	}
	return out
}

// Caches returns the IDs of all cache nodes.
func (t *Topology) Caches() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Type == Cache {
			out = append(out, n.ID)
		}
	}
	return out
}
