// Package topology models the interconnect graphs evaluated in the MIRA
// paper: the 6x6 2D mesh (2DB, 3DM), the 3x3x4 stacked mesh (3DB), and
// the 6x6 express mesh with multi-hop links (3DM-E), together with the
// NUCA CPU/cache node layouts of Figure 10.
package topology

import "fmt"

// NodeID identifies a router/node pair in a topology.
type NodeID int

// Coord is a node position. Z is 0 for planar topologies.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Dir names a router port. Local is the NI (network interface) port;
// the *Exp directions are the multi-hop express ports of 3DM-E.
type Dir int

// Port directions.
const (
	Local Dir = iota
	East
	West
	North
	South
	Up
	Down
	EastExp
	WestExp
	NorthExp
	SouthExp
	NumDirs // sentinel
)

var dirNames = [...]string{
	"local", "east", "west", "north", "south", "up", "down",
	"east-exp", "west-exp", "north-exp", "south-exp",
}

func (d Dir) String() string {
	if d < 0 || int(d) >= len(dirNames) {
		return fmt.Sprintf("dir(%d)", int(d))
	}
	return dirNames[d]
}

// Opposite returns the port on the receiving router for a link that
// leaves through d: a flit sent east arrives on the west port.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	case Up:
		return Down
	case Down:
		return Up
	case EastExp:
		return WestExp
	case WestExp:
		return EastExp
	case NorthExp:
		return SouthExp
	case SouthExp:
		return NorthExp
	}
	return Local
}

// IsExpress reports whether d is a multi-hop express port.
func (d Dir) IsExpress() bool {
	return d >= EastExp && d <= SouthExp
}

// IsVertical reports whether d crosses silicon layers (3DB only).
func (d Dir) IsVertical() bool { return d == Up || d == Down }

// NodeType distinguishes processor from cache nodes in the NUCA layouts.
type NodeType int

// Node types.
const (
	Cache NodeType = iota
	CPU
)

func (t NodeType) String() string {
	if t == CPU {
		return "cpu"
	}
	return "cache"
}

// Node is one network endpoint with its attached router.
type Node struct {
	ID    NodeID
	Coord Coord
	Type  NodeType
}

// LinkClass classifies a channel by the physical medium it crosses.
// On-chip wires are the MIRA baseline; the d2d classes model the
// off-chip die-to-die channels joining chips of a ChipGrid, whose
// latency and width dominate multi-chip behaviour.
type LinkClass uint8

// Link classes.
const (
	// ClassOnChip is an ordinary on-die wire: one-cycle traversal,
	// full flit width. Every pre-chiplet topology uses only this class.
	ClassOnChip LinkClass = iota
	// ClassD2DParallel is a wide die-to-die channel (e.g. silicon
	// bridge or interposer): multi-cycle latency, full flit width.
	ClassD2DParallel
	// ClassD2DSerial is a narrow serialized die-to-die channel: a flit
	// occupies the link for SerCycles cycles while it is streamed
	// across the reduced-width lanes.
	ClassD2DSerial
	// ClassChipExpress is an inter-chip express channel (MIRA's 3DM-E
	// express links reborn at chip scale): it skips a whole chip per
	// hop, crossing two die boundaries.
	ClassChipExpress
)

var classNames = [...]string{"on-chip", "d2d-parallel", "d2d-serial", "chip-express"}

func (c LinkClass) String() string {
	if int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// IsD2D reports whether the class crosses a die boundary.
func (c LinkClass) IsD2D() bool { return c != ClassOnChip }

// Link is a unidirectional channel between two routers.
type Link struct {
	Src, Dst NodeID
	// SrcPort is the output direction on the source router; the flit
	// arrives on SrcPort.Opposite() at the destination.
	SrcPort  Dir
	LengthMM float64
	// Span is the Manhattan distance covered (1 for normal links, the
	// express interval for express links).
	Span     int
	Vertical bool
	// Class is the physical link class; latency and serialization
	// below parameterize it. addLink normalizes the zero values of the
	// pre-chiplet builders to the on-chip defaults (latency 1, ser 1),
	// so every stored link carries explicit, symmetric values.
	Class LinkClass
	// Latency is the traversal time in cycles from the source router's
	// link stage to the destination buffer write (1 for on-chip wires).
	Latency int32
	// SerCycles is the number of cycles a flit occupies the link while
	// being serialized over it: ceil(flit bytes / link width bytes).
	// 1 for full-width links; > 1 only on ClassD2DSerial channels.
	SerCycles int32
}

// Topology is an immutable directed graph of routers.
type Topology struct {
	Name             string
	XDim, YDim, ZDim int
	// Chip-grid geometry (NewChipGrid): the X/Y chip counts and the
	// node dimensions of one chip. All zero for single-chip topologies;
	// when set, XDim == ChipsX*ChipNodesX and YDim == ChipsY*ChipNodesY
	// and the hierarchical (chip, node) helpers below apply.
	ChipsX, ChipsY         int
	ChipNodesX, ChipNodesY int
	nodes                  []Node
	links                  []Link
	out                    [][]int // out[node][dir] = link index+1, 0 if none
}

func newTopology(name string, xd, yd, zd int) *Topology {
	n := xd * yd * zd
	t := &Topology{Name: name, XDim: xd, YDim: yd, ZDim: zd}
	t.nodes = make([]Node, n)
	t.out = make([][]int, n)
	for i := range t.nodes {
		t.nodes[i] = Node{ID: NodeID(i), Coord: t.coordOf(NodeID(i))}
		t.out[i] = make([]int, NumDirs)
	}
	return t
}

func (t *Topology) coordOf(id NodeID) Coord {
	perLayer := t.XDim * t.YDim
	z := int(id) / perLayer
	rem := int(id) % perLayer
	return Coord{X: rem % t.XDim, Y: rem / t.XDim, Z: z}
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Nodes returns all nodes. The slice must not be modified.
func (t *Topology) Nodes() []Node { return t.nodes }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// NodeAt returns the node at coordinate c and whether it exists.
func (t *Topology) NodeAt(c Coord) (Node, bool) {
	if c.X < 0 || c.X >= t.XDim || c.Y < 0 || c.Y >= t.YDim || c.Z < 0 || c.Z >= t.ZDim {
		return Node{}, false
	}
	id := NodeID(c.Z*t.XDim*t.YDim + c.Y*t.XDim + c.X)
	return t.nodes[id], true
}

// MustNodeAt returns the node at c, panicking when out of range. It is
// intended for construction-time code with statically valid coordinates.
func (t *Topology) MustNodeAt(c Coord) Node {
	n, ok := t.NodeAt(c)
	if !ok {
		panic(fmt.Sprintf("topology %s: no node at %v", t.Name, c))
	}
	return n
}

// SetType assigns a node type (used by the NUCA layouts).
func (t *Topology) SetType(id NodeID, typ NodeType) { t.nodes[id].Type = typ }

// Links returns all unidirectional links. The slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// OutLink returns the link leaving node id through port d, if any.
func (t *Topology) OutLink(id NodeID, d Dir) (Link, bool) {
	li := t.out[id][d]
	if li == 0 {
		return Link{}, false
	}
	return t.links[li-1], true
}

// Ports returns the output directions with links at node id, always
// including Local first.
func (t *Topology) Ports(id NodeID) []Dir {
	ports := []Dir{Local}
	for d := Dir(1); d < NumDirs; d++ {
		if t.out[id][d] != 0 {
			ports = append(ports, d)
		}
	}
	return ports
}

// NumPorts returns the number of physical ports (incl. Local) at node id.
func (t *Topology) NumPorts(id NodeID) int { return len(t.Ports(id)) }

// MaxPorts returns the largest router radix in the topology; this is the
// "P" used for area and power models (5 for meshes, 7 for 3DB, 9 for
// 3DM-E).
func (t *Topology) MaxPorts() int {
	max := 0
	for _, n := range t.nodes {
		if p := t.NumPorts(n.ID); p > max {
			max = p
		}
	}
	return max
}

// addBiLink installs links in both directions between a and b, leaving a
// through d.
func (t *Topology) addBiLink(a, b NodeID, d Dir, lengthMM float64, span int, vertical bool) {
	t.addBiLinkClass(a, b, d, lengthMM, span, vertical, ClassOnChip, 1, 1)
}

// addBiLinkClass is addBiLink with an explicit link class: both
// directions carry the same class, latency and serialization, so every
// die-to-die edge is symmetric by construction (the chip-grid property
// test pins this).
func (t *Topology) addBiLinkClass(a, b NodeID, d Dir, lengthMM float64, span int, vertical bool, class LinkClass, latency, ser int32) {
	t.addLink(Link{Src: a, Dst: b, SrcPort: d, LengthMM: lengthMM, Span: span, Vertical: vertical,
		Class: class, Latency: latency, SerCycles: ser})
	t.addLink(Link{Src: b, Dst: a, SrcPort: d.Opposite(), LengthMM: lengthMM, Span: span, Vertical: vertical,
		Class: class, Latency: latency, SerCycles: ser})
}

func (t *Topology) addLink(l Link) {
	if t.out[l.Src][l.SrcPort] != 0 {
		panic(fmt.Sprintf("topology %s: duplicate link at node %d port %v", t.Name, l.Src, l.SrcPort))
	}
	// Normalize the zero values of pre-chiplet construction code to the
	// on-chip defaults, so consumers never special-case them.
	if l.Latency == 0 {
		l.Latency = 1
	}
	if l.SerCycles == 0 {
		l.SerCycles = 1
	}
	if l.Latency < 1 || l.SerCycles < 1 {
		panic(fmt.Sprintf("topology %s: link at node %d port %v has latency %d ser %d (need >= 1)",
			t.Name, l.Src, l.SrcPort, l.Latency, l.SerCycles))
	}
	t.links = append(t.links, l)
	t.out[l.Src][l.SrcPort] = len(t.links)
}

// NumChips returns the number of chips in the grid (1 for single-chip
// topologies).
func (t *Topology) NumChips() int {
	if t.ChipsX == 0 {
		return 1
	}
	return t.ChipsX * t.ChipsY
}

// ChipOf returns the chip-grid coordinate of node id's chip. Single-chip
// topologies report (0, 0) for every node.
func (t *Topology) ChipOf(id NodeID) (cx, cy int) {
	if t.ChipsX == 0 {
		return 0, 0
	}
	c := t.Node(id).Coord
	return c.X / t.ChipNodesX, c.Y / t.ChipNodesY
}

// LocalCoord returns node id's coordinate within its chip (equal to the
// global coordinate on single-chip topologies).
func (t *Topology) LocalCoord(id NodeID) Coord {
	c := t.Node(id).Coord
	if t.ChipsX == 0 {
		return c
	}
	return Coord{X: c.X % t.ChipNodesX, Y: c.Y % t.ChipNodesY, Z: c.Z}
}

// ChipNodeAt resolves hierarchical (chip, node) addressing: the node at
// within-chip coordinate local on chip (cx, cy).
func (t *Topology) ChipNodeAt(cx, cy int, local Coord) (Node, bool) {
	if t.ChipsX == 0 {
		if cx != 0 || cy != 0 {
			return Node{}, false
		}
		return t.NodeAt(local)
	}
	if cx < 0 || cx >= t.ChipsX || cy < 0 || cy >= t.ChipsY {
		return Node{}, false
	}
	if local.X < 0 || local.X >= t.ChipNodesX || local.Y < 0 || local.Y >= t.ChipNodesY {
		return Node{}, false
	}
	return t.NodeAt(Coord{X: cx*t.ChipNodesX + local.X, Y: cy*t.ChipNodesY + local.Y, Z: local.Z})
}

// IsBoundary reports whether node id terminates at least one die-to-die
// link (it sits on a chip edge facing another chip).
func (t *Topology) IsBoundary(id NodeID) bool {
	for d := Dir(1); d < NumDirs; d++ {
		if l, ok := t.OutLink(id, d); ok && l.Class.IsD2D() {
			return true
		}
	}
	return false
}

// BoundaryNodes returns the IDs of every boundary node in ascending
// order (empty for single-chip topologies).
func (t *Topology) BoundaryNodes() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if t.IsBoundary(n.ID) {
			out = append(out, n.ID)
		}
	}
	return out
}

// MaxLinkDelay returns the largest latency + SerCycles - 1 over all
// links (the longest time a flit can spend between leaving a router and
// landing downstream), or 1 for a linkless topology. The simulator sizes
// its event-ring horizon from it.
func (t *Topology) MaxLinkDelay() int {
	max := 1
	for _, l := range t.links {
		if d := int(l.Latency) + int(l.SerCycles) - 1; d > max {
			max = d
		}
	}
	return max
}

// CPUs returns the IDs of all CPU nodes.
func (t *Topology) CPUs() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Type == CPU {
			out = append(out, n.ID)
		}
	}
	return out
}

// Caches returns the IDs of all cache nodes.
func (t *Topology) Caches() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Type == Cache {
			out = append(out, n.ID)
		}
	}
	return out
}
