package topology

import "fmt"

// ChipGridSpec describes a grid of identical mesh chips joined by
// die-to-die channels. The grid tiles ChipsX x ChipsY chips, each an
// on-chip NodesX x NodesY 2D mesh; every facing boundary-node pair of
// adjacent chips is joined by a bidirectional d2d channel, so the global
// node graph stays a full (ChipsX*NodesX) x (ChipsY*NodesY) mesh and
// dimension-ordered routing remains valid — only the edge classes and
// timings differ.
type ChipGridSpec struct {
	// ChipsX, ChipsY are the chip-grid dimensions (>= 1 each, > 1 in
	// at least one for a true multi-chip system).
	ChipsX, ChipsY int
	// NodesX, NodesY are the node dimensions of one chip (>= 1 each).
	NodesX, NodesY int
	// PitchMM is the on-chip node pitch; the d2d gap is modeled as one
	// extra pitch of wire unless D2DLengthMM overrides it.
	PitchMM float64
	// D2DLengthMM is the physical die-to-die channel length; 0 means
	// 2*PitchMM (boundary node to boundary node across the gap).
	D2DLengthMM float64
	// D2DLatency is the die-to-die traversal latency in cycles
	// (0 = 1 cycle, indistinguishable from an on-chip wire).
	D2DLatency int
	// D2DSerCycles is the serialization factor of the d2d channels:
	// the cycles a flit occupies the link, ceil(flit bytes / link
	// width bytes). 0 or 1 means a full-width parallel channel
	// (ClassD2DParallel); > 1 means a narrow serial channel
	// (ClassD2DSerial).
	D2DSerCycles int
	// Express adds inter-chip express channels: every boundary node on
	// a chip's east (south) edge links to the matching boundary node
	// one whole chip ahead, skipping the interior — MIRA's 3DM-E
	// express cubes at chip scale. Express links are full width.
	Express bool
	// ExpressLatency is the express-channel latency in cycles
	// (0 = D2DLatency; the link crosses one die gap plus a chip of
	// dedicated wire).
	ExpressLatency int
}

// maxD2DLatency bounds the configurable link delays so the simulator's
// event-ring horizon (sized from MaxLinkDelay) stays modest.
const maxD2DLatency = 1024

// Validate bounds-checks the spec; NewChipGrid panics on a spec that
// fails it, so callers elaborating external input validate first.
func (s ChipGridSpec) Validate() error {
	if s.ChipsX < 1 || s.ChipsY < 1 {
		return fmt.Errorf("topology: chip grid %dx%d chips, need >= 1 each", s.ChipsX, s.ChipsY)
	}
	if s.NodesX < 1 || s.NodesY < 1 {
		return fmt.Errorf("topology: chip grid nodes %dx%d, need >= 1 each", s.NodesX, s.NodesY)
	}
	if s.D2DLatency < 0 || s.D2DLatency > maxD2DLatency {
		return fmt.Errorf("topology: d2d latency %d, need 0..%d", s.D2DLatency, maxD2DLatency)
	}
	if s.D2DSerCycles < 0 || s.D2DSerCycles > maxD2DLatency {
		return fmt.Errorf("topology: d2d serialization %d, need 0..%d", s.D2DSerCycles, maxD2DLatency)
	}
	if s.ExpressLatency < 0 || s.ExpressLatency > maxD2DLatency {
		return fmt.Errorf("topology: express latency %d, need 0..%d", s.ExpressLatency, maxD2DLatency)
	}
	return nil
}

// NewChipGrid builds a multi-chip topology from spec. It panics on an
// invalid spec; use ChipGridSpec fields within the documented ranges.
func NewChipGrid(spec ChipGridSpec) *Topology {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	lat := int32(spec.D2DLatency)
	if lat == 0 {
		lat = 1
	}
	ser := int32(spec.D2DSerCycles)
	if ser == 0 {
		ser = 1
	}
	class := ClassD2DParallel
	if ser > 1 {
		class = ClassD2DSerial
	}
	d2dLen := spec.D2DLengthMM
	if d2dLen == 0 {
		d2dLen = 2 * spec.PitchMM
	}
	xd, yd := spec.ChipsX*spec.NodesX, spec.ChipsY*spec.NodesY
	t := newTopology(fmt.Sprintf("chipgrid%dx%d/%dx%d", spec.ChipsX, spec.ChipsY, spec.NodesX, spec.NodesY), xd, yd, 1)
	t.ChipsX, t.ChipsY = spec.ChipsX, spec.ChipsY
	t.ChipNodesX, t.ChipNodesY = spec.NodesX, spec.NodesY
	for y := 0; y < yd; y++ {
		for x := 0; x < xd; x++ {
			n := t.MustNodeAt(Coord{X: x, Y: y})
			if x+1 < xd {
				e := t.MustNodeAt(Coord{X: x + 1, Y: y})
				if (x+1)%spec.NodesX == 0 {
					// The eastward edge crosses a die boundary.
					t.addBiLinkClass(n.ID, e.ID, East, d2dLen, 1, false, class, lat, ser)
				} else {
					t.addBiLink(n.ID, e.ID, East, spec.PitchMM, 1, false)
				}
			}
			if y+1 < yd {
				s := t.MustNodeAt(Coord{X: x, Y: y + 1})
				if (y+1)%spec.NodesY == 0 {
					t.addBiLinkClass(n.ID, s.ID, South, d2dLen, 1, false, class, lat, ser)
				} else {
					t.addBiLink(n.ID, s.ID, South, spec.PitchMM, 1, false)
				}
			}
		}
	}
	if spec.Express {
		elat := int32(spec.ExpressLatency)
		if elat == 0 {
			elat = lat
		}
		// An express hop runs from a chip's trailing boundary node to
		// the next chip's trailing boundary node in the same row or
		// column, spanning one whole chip of interior nodes plus one
		// die gap.
		elenX := d2dLen + float64(spec.NodesX-1)*spec.PitchMM
		elenY := d2dLen + float64(spec.NodesY-1)*spec.PitchMM
		for y := 0; y < yd; y++ {
			for x := spec.NodesX - 1; x+spec.NodesX < xd; x += spec.NodesX {
				n := t.MustNodeAt(Coord{X: x, Y: y})
				e := t.MustNodeAt(Coord{X: x + spec.NodesX, Y: y})
				t.addBiLinkClass(n.ID, e.ID, EastExp, elenX, spec.NodesX, false, ClassChipExpress, elat, 1)
			}
		}
		for x := 0; x < xd; x++ {
			for y := spec.NodesY - 1; y+spec.NodesY < yd; y += spec.NodesY {
				n := t.MustNodeAt(Coord{X: x, Y: y})
				s := t.MustNodeAt(Coord{X: x, Y: y + spec.NodesY})
				t.addBiLinkClass(n.ID, s.ID, SouthExp, elenY, spec.NodesY, false, ClassChipExpress, elat, 1)
			}
		}
	}
	return t
}
