package topology

import "testing"

// TestDirHelpers pins the Dir helper tables exhaustively: Opposite is a
// self-inverse pairing, and the express/vertical predicates partition
// the directions exactly as the router's port logic assumes.
func TestDirHelpers(t *testing.T) {
	opposite := map[Dir]Dir{
		East: West, West: East, North: South, South: North,
		Up: Down, Down: Up,
		EastExp: WestExp, WestExp: EastExp, NorthExp: SouthExp, SouthExp: NorthExp,
	}
	express := map[Dir]bool{EastExp: true, WestExp: true, NorthExp: true, SouthExp: true}
	vertical := map[Dir]bool{Up: true, Down: true}
	for d := Dir(1); d < NumDirs; d++ {
		if got, want := d.Opposite(), opposite[d]; got != want {
			t.Errorf("%v.Opposite() = %v, want %v", d, got, want)
		}
		if got := d.Opposite().Opposite(); got != d {
			t.Errorf("%v.Opposite().Opposite() = %v, want %v", d, got, d)
		}
		if got, want := d.IsExpress(), express[d]; got != want {
			t.Errorf("%v.IsExpress() = %v, want %v", d, got, want)
		}
		if got, want := d.IsVertical(), vertical[d]; got != want {
			t.Errorf("%v.IsVertical() = %v, want %v", d, got, want)
		}
	}
}

// TestLinkClassString covers the class labels and the d2d predicate.
func TestLinkClassString(t *testing.T) {
	cases := []struct {
		c    LinkClass
		name string
		d2d  bool
	}{
		{ClassOnChip, "on-chip", false},
		{ClassD2DParallel, "d2d-parallel", true},
		{ClassD2DSerial, "d2d-serial", true},
		// A chip-express channel still crosses a die gap.
		{ClassChipExpress, "chip-express", true},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.name {
			t.Errorf("class %d: name %q, want %q", c.c, got, c.name)
		}
		if got := c.c.IsD2D(); got != c.d2d {
			t.Errorf("class %v: IsD2D %v, want %v", c.c, got, c.d2d)
		}
	}
}

// TestChipGridSymmetry is the link-level property test: every edge of a
// chip grid is symmetric (the reverse link exists on the opposite port)
// and class-consistent (both directions carry the same class, latency
// and serialization factor), for parallel, serial and express specs.
func TestChipGridSymmetry(t *testing.T) {
	specs := []ChipGridSpec{
		{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, PitchMM: 3.1, D2DLatency: 4},
		{ChipsX: 3, ChipsY: 2, NodesX: 3, NodesY: 3, PitchMM: 3.1, D2DLatency: 8, D2DSerCycles: 4},
		{ChipsX: 2, ChipsY: 3, NodesX: 2, NodesY: 4, PitchMM: 1.58, D2DLatency: 2, Express: true, ExpressLatency: 6},
	}
	for _, spec := range specs {
		tp := NewChipGrid(spec)
		for _, l := range tp.Links() {
			rev, ok := tp.OutLink(l.Dst, l.SrcPort.Opposite())
			if !ok {
				t.Fatalf("%s: link %d-%v->%d has no reverse", tp.Name, l.Src, l.SrcPort, l.Dst)
			}
			if rev.Dst != l.Src {
				t.Fatalf("%s: reverse of %d-%v->%d lands on %d", tp.Name, l.Src, l.SrcPort, l.Dst, rev.Dst)
			}
			if rev.Class != l.Class || rev.Latency != l.Latency || rev.SerCycles != l.SerCycles {
				t.Fatalf("%s: link %d-%v->%d class/lat/ser %v/%d/%d, reverse %v/%d/%d",
					tp.Name, l.Src, l.SrcPort, l.Dst,
					l.Class, l.Latency, l.SerCycles, rev.Class, rev.Latency, rev.SerCycles)
			}
			crossesChip := func(a, b NodeID) bool {
				ax, ay := tp.ChipOf(a)
				bx, by := tp.ChipOf(b)
				return ax != bx || ay != by
			}(l.Src, l.Dst)
			if l.Class.IsD2D() != crossesChip {
				t.Fatalf("%s: link %d-%v->%d class %v but crosses chip = %v",
					tp.Name, l.Src, l.SrcPort, l.Dst, l.Class, crossesChip)
			}
			if l.SrcPort.IsExpress() && l.Class != ClassChipExpress {
				t.Fatalf("%s: express link %d-%v->%d has class %v", tp.Name, l.Src, l.SrcPort, l.Dst, l.Class)
			}
		}
	}
}

// TestChipGridAddressing round-trips the hierarchical (chip, local)
// addressing for every node of an asymmetric grid.
func TestChipGridAddressing(t *testing.T) {
	tp := NewChipGrid(ChipGridSpec{ChipsX: 3, ChipsY: 2, NodesX: 4, NodesY: 3, PitchMM: 3.1})
	if got := tp.NumChips(); got != 6 {
		t.Fatalf("NumChips = %d, want 6", got)
	}
	if tp.NumNodes() != 3*4*2*3 {
		t.Fatalf("NumNodes = %d, want %d", tp.NumNodes(), 3*4*2*3)
	}
	for _, n := range tp.Nodes() {
		cx, cy := tp.ChipOf(n.ID)
		local := tp.LocalCoord(n.ID)
		if cx != n.Coord.X/4 || cy != n.Coord.Y/3 {
			t.Fatalf("node %d at %v: chip (%d,%d)", n.ID, n.Coord, cx, cy)
		}
		if local.X != n.Coord.X%4 || local.Y != n.Coord.Y%3 {
			t.Fatalf("node %d at %v: local %v", n.ID, n.Coord, local)
		}
		back, ok := tp.ChipNodeAt(cx, cy, local)
		if !ok || back.ID != n.ID {
			t.Fatalf("ChipNodeAt(%d,%d,%v) = %v/%v, want node %d", cx, cy, local, back.ID, ok, n.ID)
		}
	}
	if _, ok := tp.ChipNodeAt(3, 0, Coord{}); ok {
		t.Fatal("ChipNodeAt accepted an out-of-range chip")
	}
}

// TestChipGridBoundary checks boundary enumeration against the brute
// force definition: a node is boundary iff one of its outgoing links
// crosses a die gap, which on a 2x2 grid of 4x4 chips is exactly the
// two node columns and two node rows flanking the gaps.
func TestChipGridBoundary(t *testing.T) {
	tp := NewChipGrid(ChipGridSpec{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, PitchMM: 3.1, D2DLatency: 4})
	want := map[NodeID]bool{}
	for _, n := range tp.Nodes() {
		if n.Coord.X == 3 || n.Coord.X == 4 || n.Coord.Y == 3 || n.Coord.Y == 4 {
			want[n.ID] = true
		}
	}
	for _, n := range tp.Nodes() {
		if got := tp.IsBoundary(n.ID); got != want[n.ID] {
			t.Errorf("IsBoundary(%d at %v) = %v, want %v", n.ID, n.Coord, got, want[n.ID])
		}
	}
	bn := tp.BoundaryNodes()
	if len(bn) != len(want) {
		t.Fatalf("BoundaryNodes: %d nodes, want %d", len(bn), len(want))
	}
	for _, id := range bn {
		if !want[id] {
			t.Errorf("BoundaryNodes includes non-boundary node %d", id)
		}
	}
}

// TestChipGridMaxLinkDelay pins the event-ring horizon input: the worst
// link occupies latency + ser - 1 extra cycles beyond an on-chip wire.
func TestChipGridMaxLinkDelay(t *testing.T) {
	cases := []struct {
		spec ChipGridSpec
		want int
	}{
		{ChipGridSpec{ChipsX: 2, ChipsY: 1, NodesX: 2, NodesY: 2, PitchMM: 1}, 1},
		{ChipGridSpec{ChipsX: 2, ChipsY: 1, NodesX: 2, NodesY: 2, PitchMM: 1, D2DLatency: 7}, 7},
		{ChipGridSpec{ChipsX: 2, ChipsY: 1, NodesX: 2, NodesY: 2, PitchMM: 1, D2DLatency: 7, D2DSerCycles: 4}, 10},
		{ChipGridSpec{ChipsX: 2, ChipsY: 1, NodesX: 2, NodesY: 2, PitchMM: 1, D2DLatency: 2, Express: true, ExpressLatency: 9}, 9},
	}
	for _, c := range cases {
		if got := NewChipGrid(c.spec).MaxLinkDelay(); got != c.want {
			t.Errorf("spec %+v: MaxLinkDelay = %d, want %d", c.spec, got, c.want)
		}
	}
	// A plain mesh has no multi-cycle links.
	if got := NewMesh2D(4, 4, 1).MaxLinkDelay(); got != 1 {
		t.Errorf("mesh MaxLinkDelay = %d, want 1", got)
	}
}

// TestChipGridSpecValidate rejects out-of-range specs.
func TestChipGridSpecValidate(t *testing.T) {
	good := ChipGridSpec{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, PitchMM: 3.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []ChipGridSpec{
		{ChipsX: 0, ChipsY: 2, NodesX: 4, NodesY: 4},
		{ChipsX: 2, ChipsY: 2, NodesX: 0, NodesY: 4},
		{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, D2DLatency: -1},
		{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, D2DLatency: 1 << 20},
		{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, D2DSerCycles: -2},
		{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, ExpressLatency: 1 << 20},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
}
