package topology

import "fmt"

// NewMesh2D builds an xd x yd 2D mesh with bidirectional links of the
// given node pitch (mm). This is the 2DB and 3DM(-NC) fabric; 3DM routers
// differ only in pitch (1.58 mm vs 3.1 mm) because each node's footprint
// shrinks when folded into four layers.
func NewMesh2D(xd, yd int, pitchMM float64) *Topology {
	if xd < 1 || yd < 1 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %dx%d", xd, yd))
	}
	t := newTopology(fmt.Sprintf("mesh%dx%d", xd, yd), xd, yd, 1)
	for y := 0; y < yd; y++ {
		for x := 0; x < xd; x++ {
			n := t.MustNodeAt(Coord{X: x, Y: y})
			if x+1 < xd {
				e := t.MustNodeAt(Coord{X: x + 1, Y: y})
				t.addBiLink(n.ID, e.ID, East, pitchMM, 1, false)
			}
			if y+1 < yd {
				s := t.MustNodeAt(Coord{X: x, Y: y + 1})
				t.addBiLink(n.ID, s.ID, South, pitchMM, 1, false)
			}
		}
	}
	return t
}

// NewMesh3D builds an xd x yd x zd stacked mesh: the 3DB fabric. In-plane
// links have the given horizontal pitch; vertical links are through-
// silicon vias of vertMM length (tens of micrometres per layer).
func NewMesh3D(xd, yd, zd int, pitchMM, vertMM float64) *Topology {
	if xd < 1 || yd < 1 || zd < 1 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %dx%dx%d", xd, yd, zd))
	}
	t := newTopology(fmt.Sprintf("mesh%dx%dx%d", xd, yd, zd), xd, yd, zd)
	for z := 0; z < zd; z++ {
		for y := 0; y < yd; y++ {
			for x := 0; x < xd; x++ {
				n := t.MustNodeAt(Coord{X: x, Y: y, Z: z})
				if x+1 < xd {
					e := t.MustNodeAt(Coord{X: x + 1, Y: y, Z: z})
					t.addBiLink(n.ID, e.ID, East, pitchMM, 1, false)
				}
				if y+1 < yd {
					s := t.MustNodeAt(Coord{X: x, Y: y + 1, Z: z})
					t.addBiLink(n.ID, s.ID, South, pitchMM, 1, false)
				}
				if z+1 < zd {
					u := t.MustNodeAt(Coord{X: x, Y: y, Z: z + 1})
					t.addBiLink(n.ID, u.ID, Up, vertMM, 1, true)
				}
			}
		}
	}
	return t
}

// NewExpressMesh2D builds the 3DM-E fabric: a 2D mesh plus multi-hop
// express channels (Dally's express cubes, §3.3 / Figure 7). Every node
// gains an express port per cardinal direction connecting to the node
// `interval` hops away, where one exists, for a maximum radix of 9
// (4 normal + 4 express + local). Express links are interval x pitch long.
func NewExpressMesh2D(xd, yd int, pitchMM float64, interval int) *Topology {
	if interval < 2 {
		panic(fmt.Sprintf("topology: express interval must be >= 2, got %d", interval))
	}
	t := NewMesh2D(xd, yd, pitchMM)
	t.Name = fmt.Sprintf("express%dx%d/%d", xd, yd, interval)
	elen := pitchMM * float64(interval)
	for y := 0; y < yd; y++ {
		for x := 0; x < xd; x++ {
			n := t.MustNodeAt(Coord{X: x, Y: y})
			if x+interval < xd {
				e := t.MustNodeAt(Coord{X: x + interval, Y: y})
				t.addBiLink(n.ID, e.ID, EastExp, elen, interval, false)
			}
			if y+interval < yd {
				s := t.MustNodeAt(Coord{X: x, Y: y + interval})
				t.addBiLink(n.ID, s.ID, SouthExp, elen, interval, false)
			}
		}
	}
	return t
}
