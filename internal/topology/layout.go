package topology

import "fmt"

// The MIRA evaluation uses 36 nodes: 8 Niagara-like CPUs and 28 512 KB L2
// cache banks (§4.1.1, Figure 10). This file encodes the two placements:
//
//   - 2DB / 3DM / 3DM-E: 6x6 mesh with the CPUs spread in the middle two
//     rows (Figure 10 (a), (b)).
//   - 3DB: 3x3x4 stack with all CPUs plus one cache in the top layer
//     (closest to the heat sink) and the remaining 27 caches below
//     (Figure 10 (c)).

// NumCPUs is the CPU count of the paper's 36-node configuration.
const NumCPUs = 8

// ApplyNUCALayout2D marks 8 middle nodes of a 6x6 planar topology as
// CPUs. It returns an error when the topology is not 6x6x1.
func ApplyNUCALayout2D(t *Topology) error {
	if t.XDim != 6 || t.YDim != 6 || t.ZDim != 1 {
		return fmt.Errorf("topology: NUCA 2D layout requires a 6x6 mesh, have %dx%dx%d", t.XDim, t.YDim, t.ZDim)
	}
	for _, c := range nucaCPUCoords2D {
		t.SetType(t.MustNodeAt(c).ID, CPU)
	}
	return nil
}

// nucaCPUCoords2D places the 8 CPUs in the middle of the 6x6 mesh.
var nucaCPUCoords2D = []Coord{
	{X: 1, Y: 2}, {X: 2, Y: 2}, {X: 3, Y: 2}, {X: 4, Y: 2},
	{X: 1, Y: 3}, {X: 2, Y: 3}, {X: 3, Y: 3}, {X: 4, Y: 3},
}

// ApplyNUCALayout3D marks the 8 CPUs in the top layer (z = ZDim-1) of a
// 3x3x4 topology; the ninth top-layer node stays a cache. The top layer
// is the one adjacent to the heat sink, which is why the power-hungry
// CPUs live there (§3.1).
func ApplyNUCALayout3D(t *Topology) error {
	if t.XDim != 3 || t.YDim != 3 || t.ZDim != 4 {
		return fmt.Errorf("topology: NUCA 3D layout requires a 3x3x4 mesh, have %dx%dx%d", t.XDim, t.YDim, t.ZDim)
	}
	top := t.ZDim - 1
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if x == 1 && y == 1 {
				continue // centre node of the top layer stays a cache
			}
			t.SetType(t.MustNodeAt(Coord{X: x, Y: y, Z: top}).ID, CPU)
		}
	}
	return nil
}

// LayoutString renders the CPU/cache placement layer by layer, one
// character per node ('P' for CPU, 'c' for cache), for the Figure 10
// reproduction.
func LayoutString(t *Topology) string {
	var out []byte
	for z := 0; z < t.ZDim; z++ {
		if t.ZDim > 1 {
			out = append(out, fmt.Sprintf("layer %d:\n", z)...)
		}
		for y := 0; y < t.YDim; y++ {
			for x := 0; x < t.XDim; x++ {
				n := t.MustNodeAt(Coord{X: x, Y: y, Z: z})
				if n.Type == CPU {
					out = append(out, 'P')
				} else {
					out = append(out, 'c')
				}
				if x+1 < t.XDim {
					out = append(out, ' ')
				}
			}
			out = append(out, '\n')
		}
	}
	return string(out)
}
