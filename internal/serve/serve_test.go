package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/scenario"
)

func testBatch() []scenario.Scenario {
	mk := func(seed int64, arch string) scenario.Scenario {
		return scenario.Scenario{
			Arch: arch, Warmup: 0, Measure: 1500, Drain: 6000, Seed: seed,
			Traffic: scenario.Traffic{Kind: "ur", Rate: 0.08},
			Observe: &scenario.Observe{Window: 200},
		}
	}
	return []scenario.Scenario{mk(1, "2DB"), mk(2, "3DM"), mk(3, "3DB")}
}

// promLine matches a text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9.eE+na-]+$`)

// TestServeEndpoints runs a batch under the server while concurrently
// polling every endpoint (the -race coverage for the sampler/serving
// handoff), then checks the final payloads.
func TestServeEndpoints(t *testing.T) {
	srv := New(testBatch())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Poll while the batch runs.
	done := make(chan struct{})
	var pollers sync.WaitGroup
	for _, path := range []string{"/healthz", "/metrics", "/runs"} {
		pollers.Add(1)
		go func(p string) {
			defer pollers.Done()
			for {
				select {
				case <-done:
					return
				default:
					get(p)
				}
			}
		}(path)
	}
	results := srv.Run(context.Background(), scenario.BatchOptions{Workers: 2})
	close(done)
	pollers.Wait()

	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("run %d failed: %s", r.Index, r.Err)
		}
		if r.Result.Ejected == 0 {
			t.Fatalf("run %d simulated nothing", r.Index)
		}
	}

	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok\n") {
		t.Errorf("/healthz: %d %q", code, body)
	} else if !strings.Contains(body, "done=3") {
		t.Errorf("/healthz detail missing run counts: %q", body)
	}

	code, body := get("/runs")
	if code != 200 {
		t.Fatalf("/runs: status %d", code)
	}
	var runs []RunStatus
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs does not parse: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("/runs has %d entries, want 3", len(runs))
	}
	for _, r := range runs {
		if r.State != StateDone {
			t.Errorf("run %d state %q after batch end", r.Index, r.State)
		}
		if r.Result == nil || r.Result.Ejected == 0 {
			t.Errorf("run %d missing result", r.Index)
		}
		if r.Windows == 0 {
			t.Errorf("run %d reports no sample windows", r.Index)
		}
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: status %d", code)
	}
	sawType, sawSample := false, false
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			sawType = true
			continue
		}
		if strings.HasPrefix(line, "#") { // HELP lines
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
		sawSample = true
	}
	if !sawType || !sawSample {
		t.Fatalf("exposition missing TYPE (%v) or samples (%v):\n%s", sawType, sawSample, body)
	}
	for _, want := range []string{
		`mira_runs{state="done"} 3`,
		`mira_net_occ{run="0",arch="2DB"}`,
		`mira_run_cycle{run="2",arch="3DB"}`,
		`mira_engine_cycles_total{run="0",arch="2DB"}`,
		`mira_engine_shard_busy_seconds{run="1",arch="3DM",shard="0"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
}

// TestServedResultsBitIdentical pins probe purity for the serving
// layer: running the batch under the server with concurrent scrapes
// yields byte-identical serialized results to a bare RunBatch.
func TestServedResultsBitIdentical(t *testing.T) {
	scs := testBatch()
	bare := scenario.RunBatch(context.Background(), scs, scenario.BatchOptions{Workers: 2})

	srv := New(scs)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	done := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-done:
				return
			default:
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}
	}()
	served := srv.Run(context.Background(), scenario.BatchOptions{Workers: 2})
	close(done)
	poller.Wait()

	bj, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(served)
	if err != nil {
		t.Fatal(err)
	}
	if string(bj) != string(sj) {
		t.Errorf("served batch results differ from bare run:\nbare:   %s\nserved: %s", bj, sj)
	}
}

// TestNewForcesObserve: scenarios without an Observe block get one
// with engine telemetry on, so every run exposes metrics and liveness.
func TestNewForcesObserve(t *testing.T) {
	sc := testBatch()[0]
	sc.Observe = nil
	srv := New([]scenario.Scenario{sc})
	o := srv.Scenarios()[0].Observe
	if o == nil {
		t.Fatal("New did not attach an Observe block")
	}
	if !o.Engine {
		t.Fatal("New did not enable engine telemetry")
	}
}

// TestHealthzStallDetection: a running run whose engine liveness
// timestamp stops advancing flips /healthz to 503 "stalled"; recent
// progress keeps it "ok". The progress closure is injected directly —
// the real one is EngineCollector.LastProgress, wired in Run's OnStart.
func TestHealthzStallDetection(t *testing.T) {
	srv := New(testBatch()[:1])
	srv.StallAfter = time.Second
	srv.mu.Lock()
	srv.runs[0].state = StateRunning
	srv.runs[0].progress = func() time.Time { return time.Now() }
	srv.mu.Unlock()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() (int, string) {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("live run: %d %q, want 200 ok", code, body)
	}

	srv.mu.Lock()
	srv.runs[0].progress = func() time.Time { return time.Now().Add(-time.Hour) }
	srv.mu.Unlock()
	code, body := get()
	if code != 503 || !strings.HasPrefix(body, "stalled\n") {
		t.Fatalf("stalled run: %d %q, want 503 stalled", code, body)
	}
	if !strings.Contains(body, "run 0: no cycle progress") {
		t.Fatalf("stall detail missing: %q", body)
	}

	// Done runs are never stalled, however old their timestamp.
	srv.mu.Lock()
	srv.runs[0].state = StateDone
	srv.mu.Unlock()
	if code, body := get(); code != 200 || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("done run: %d %q, want 200 ok", code, body)
	}
}
