// Package serve turns a scenario batch into a live, observable service:
// mirasim -serve runs the batch while a stdlib net/http server exposes
// the in-flight metric registries as hand-rolled Prometheus text
// exposition (/metrics), run progress and completed results as JSON
// (/runs), a liveness probe (/healthz), and the standard pprof
// endpoints (/debug/pprof/). This is the ROADMAP step from "offline
// batch tool" toward a long-running simulation service: a dashboard can
// watch an experiment sweep converge window by window instead of
// waiting for the final tables.
//
// Serving is observation-only by construction: the handlers read the
// samplers' already-snapshotted series (mutex-guarded) and the batch
// results written at run completion. No handler touches live network
// state, so a served batch produces bit-identical results to a bare
// one (pinned by TestServedResultsBitIdentical).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/scenario"
)

// state of one run in the batch.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
)

// DefaultStallAfter is the engine-liveness threshold of /healthz: a
// running run whose last observed cycle advance is older than this is
// reported stalled (a hung shard barrier keeps the process — and every
// handler — alive while cycles stop; only the engine ticker notices).
const DefaultStallAfter = 30 * time.Second

// runState tracks one scenario through the batch.
type runState struct {
	state string
	col   *obs.Collector // non-nil once running
	names []string       // registry column names, fixed at elaboration
	res   *scenario.BatchResult
	// progress reports the wall time of the run's last observed cycle
	// advance (obs.EngineCollector.LastProgress); nil when the run has
	// no engine collector. A closure so tests can inject a stalled run.
	progress func() time.Time
}

// Server owns a scenario batch and serves its live state. Create with
// New, start the batch with Run, and expose Handler over net/http.
type Server struct {
	scs []scenario.Scenario

	// StallAfter overrides the /healthz liveness threshold
	// (0 = DefaultStallAfter). Set before serving the handler.
	StallAfter time.Duration

	mu   sync.Mutex
	runs []runState
}

// New builds a server over the batch. Every scenario is given an
// Observe block if it lacks one, so each run has a metric registry to
// expose, and engine telemetry is forced on so /metrics carries the
// mira_engine_* families and /healthz can detect a stalled run. Both
// are out-of-band: served results stay bit-identical to a bare batch
// (pinned by TestServedResultsBitIdentical).
func New(scs []scenario.Scenario) *Server {
	owned := make([]scenario.Scenario, len(scs))
	copy(owned, scs)
	for i := range owned {
		if owned[i].Observe == nil {
			owned[i].Observe = &scenario.Observe{}
		}
		owned[i].Observe.Engine = true
	}
	s := &Server{scs: owned, runs: make([]runState, len(owned))}
	for i := range s.runs {
		s.runs[i].state = StatePending
	}
	return s
}

// Scenarios returns the (possibly Observe-augmented) batch.
func (s *Server) Scenarios() []scenario.Scenario { return s.scs }

// Run executes the batch, publishing per-run progress as it goes. The
// caller's OnStart/OnDone hooks in o, if any, still fire (after the
// server's own bookkeeping). Blocks until the batch completes; serve
// the Handler from another goroutine.
func (s *Server) Run(ctx context.Context, o scenario.BatchOptions) []scenario.BatchResult {
	userStart, userDone := o.OnStart, o.OnDone
	o.OnStart = func(i int, e *scenario.Elaboration) {
		s.mu.Lock()
		s.runs[i].state = StateRunning
		s.runs[i].col = e.Obs
		if e.Obs != nil {
			s.runs[i].names = e.Obs.Registry().Names()
			if ec := e.Obs.Engine(); ec != nil {
				s.runs[i].progress = ec.LastProgress
			}
		}
		s.mu.Unlock()
		if userStart != nil {
			userStart(i, e)
		}
	}
	o.OnDone = func(r scenario.BatchResult) {
		s.mu.Lock()
		res := r
		s.runs[r.Index].state = StateDone
		s.runs[r.Index].res = &res
		s.mu.Unlock()
		if userDone != nil {
			userDone(r)
		}
	}
	return scenario.RunBatch(ctx, s.scs, o)
}

// Handler returns the service mux: /healthz, /runs, /metrics and
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleHealthz is the liveness probe. The first line is "ok" or
// "stalled" (machine-checkable); detail lines follow. A run counts as
// stalled when it is running, carries an engine collector, and its last
// observed cycle advance is older than StallAfter — then the probe
// answers 503 so an orchestrator can restart a simulation whose shard
// barrier hung even though the process (and this handler) stays alive.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	stallAfter := s.StallAfter
	if stallAfter <= 0 {
		stallAfter = DefaultStallAfter
	}
	now := time.Now()
	s.mu.Lock()
	counts := map[string]int{}
	var stalled []string
	for i := range s.runs {
		r := &s.runs[i]
		counts[r.state]++
		if r.state == StateRunning && r.progress != nil {
			if age := now.Sub(r.progress()); age > stallAfter {
				stalled = append(stalled,
					fmt.Sprintf("run %d: no cycle progress for %s", i, age.Round(time.Second)))
			}
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(stalled) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "stalled")
		for _, line := range stalled {
			fmt.Fprintln(w, line)
		}
		return
	}
	fmt.Fprintln(w, "ok")
	fmt.Fprintf(w, "runs: pending=%d running=%d done=%d\n",
		counts[StatePending], counts[StateRunning], counts[StateDone])
}

// RunStatus is the JSON shape of one run on /runs.
type RunStatus struct {
	Index   int    `json:"index"`
	Arch    string `json:"arch"`
	Traffic string `json:"traffic"`
	Seed    int64  `json:"seed"`
	State   string `json:"state"`
	// Windows counts completed sample windows (live progress signal).
	Windows int `json:"windows"`
	// Cycle is the boundary cycle of the latest sample window.
	Cycle int64 `json:"cycle,omitempty"`
	// Result and Error are present once the run is done.
	Result *noc.Result `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// status snapshots one run under the lock.
func (s *Server) status(i int) RunStatus {
	sc := s.scs[i]
	r := &s.runs[i]
	st := RunStatus{
		Index:   i,
		Arch:    sc.Arch,
		Traffic: sc.Traffic.Kind,
		Seed:    sc.Seed,
		State:   r.state,
	}
	if r.col != nil {
		st.Windows = r.col.Sampler().Samples()
		if cycle, _, ok := r.col.Sampler().Latest(); ok {
			st.Cycle = cycle
		}
	}
	if r.res != nil {
		if r.res.Err != "" {
			st.Error = r.res.Err
		} else {
			res := r.res.Result
			st.Result = &res
		}
	}
	return st
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]RunStatus, len(s.runs))
	for i := range s.runs {
		out[i] = s.status(i)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	counts := map[string]int{StatePending: 0, StateRunning: 0, StateDone: 0}
	var samples []obs.PromSample
	for i := range s.runs {
		r := &s.runs[i]
		counts[r.state]++
		if r.col == nil {
			continue
		}
		labels := [][2]string{
			{"run", strconv.Itoa(i)},
			{"arch", s.scs[i].Arch},
		}
		if ec := r.col.Engine(); ec != nil {
			samples = append(samples, ec.PromSamples(labels)...)
		}
		cycle, row, ok := r.col.Sampler().Latest()
		if !ok {
			continue
		}
		samples = append(samples, obs.PromSample{
			Name: "mira_run_cycle", Labels: labels, Value: float64(cycle),
		})
		samples = append(samples, obs.PromSamples(r.names, row, labels)...)
	}
	s.mu.Unlock()
	for _, st := range []string{StateDone, StatePending, StateRunning} {
		samples = append(samples, obs.PromSample{
			Name:   "mira_runs",
			Labels: [][2]string{{"state", st}},
			Value:  float64(counts[st]),
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteProm(w, samples) //nolint:errcheck // client gone; nothing to do
}
