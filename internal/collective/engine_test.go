package collective

import (
	"testing"

	"mira/internal/noc"
	"mira/internal/topology"
)

func mesh(x, y int) *topology.Topology { return topology.NewMesh2D(x, y, 1) }

func TestSnakeOrderAdjacency(t *testing.T) {
	topo := mesh(4, 4)
	order := snakeOrder(topo)
	if len(order) != 16 {
		t.Fatalf("snake order has %d nodes, want 16", len(order))
	}
	seen := map[topology.NodeID]bool{}
	for i, id := range order {
		if seen[id] {
			t.Fatalf("node %d appears twice in snake order", id)
		}
		seen[id] = true
		if i == 0 {
			continue
		}
		a, b := topo.Node(order[i-1]).Coord, topo.Node(id).Coord
		dist := abs(a.X-b.X) + abs(a.Y-b.Y)
		if dist != 1 {
			t.Errorf("snake order %d->%d: %v -> %v is %d hops, want 1", i-1, i, a, b, dist)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestProgramShapes(t *testing.T) {
	topo := mesh(4, 4)
	cases := []struct {
		alg     Algorithm
		ranks   int
		steps   int
		msgsPer int
	}{
		{RingAllReduce, 8, 14, 112}, // 2(N-1) steps, N msgs per step
		{RingAllReduce, 16, 30, 480},
		{ReduceScatter, 8, 7, 56}, // N-1 steps
		{TreeBroadcast, 8, 3, 7},  // ceil(log2 N) steps, N-1 msgs
		{TreeBroadcast, 12, 4, 11},
		{TreeBroadcast, 2, 1, 1},
	}
	for _, c := range cases {
		e, err := New(topo, Params{Algorithm: c.alg, Participants: c.ranks, MessageFlits: 1})
		if err != nil {
			t.Fatalf("%s/%d: %v", c.alg, c.ranks, err)
		}
		if e.NumSteps() != c.steps {
			t.Errorf("%s/%d: %d steps, want %d", c.alg, c.ranks, e.NumSteps(), c.steps)
		}
		if e.MessagesPerIteration() != c.msgsPer {
			t.Errorf("%s/%d: %d msgs/iter, want %d", c.alg, c.ranks, e.MessagesPerIteration(), c.msgsPer)
		}
		// The send programs must account for every message exactly once.
		total := 0
		for _, prog := range e.prog {
			total += len(prog)
		}
		if total != c.msgsPer {
			t.Errorf("%s/%d: programs hold %d sends, want %d", c.alg, c.ranks, total, c.msgsPer)
		}
		// And every send must land on a rank's receive schedule.
		recvs := 0
		for _, rs := range e.recvSteps {
			recvs += len(rs)
		}
		if recvs != c.msgsPer {
			t.Errorf("%s/%d: schedules expect %d receives, want %d", c.alg, c.ranks, recvs, c.msgsPer)
		}
	}
}

func TestTreeShape(t *testing.T) {
	e, err := New(mesh(4, 4), Params{Algorithm: TreeBroadcast, Participants: 8, MessageFlits: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial over 8 ranks: root sends at steps 0,1,2 to ranks 1,2,4;
	// rank r receives at step floor(log2 r).
	if got := len(e.prog[0]); got != 3 {
		t.Fatalf("root has %d sends, want 3", got)
	}
	wantRecvStep := []int{-1, 0, 1, 1, 2, 2, 2, 2}
	for r, want := range wantRecvStep {
		if want == -1 {
			if len(e.recvSteps[r]) != 0 {
				t.Errorf("root expects %d receives, want 0", len(e.recvSteps[r]))
			}
			continue
		}
		if len(e.recvSteps[r]) != 1 || e.recvSteps[r][0] != want {
			t.Errorf("rank %d receive schedule %v, want [%d]", r, e.recvSteps[r], want)
		}
	}
	// Non-root sends are guarded by the single receive.
	for r, prog := range e.prog {
		for _, s := range prog {
			want := int32(1)
			if r == 0 {
				want = 0
			}
			if s.guard != want {
				t.Errorf("rank %d send guard %d, want %d", r, s.guard, want)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	topo := mesh(4, 4)
	for _, p := range []Params{
		{Algorithm: "allreduce", Participants: 4, MessageFlits: 1}, // unknown name
		{Algorithm: RingAllReduce, Participants: 1, MessageFlits: 1},
		{Algorithm: RingAllReduce, Participants: 17, MessageFlits: 1},
		{Algorithm: RingAllReduce, Participants: 4, MessageFlits: 0},
		{Algorithm: RingAllReduce, Participants: 4, MessageFlits: 1, Iterations: -1},
	} {
		if _, err := New(topo, p); err == nil {
			t.Errorf("New(%+v) accepted, want error", p)
		}
	}
	if _, err := New(topo, Params{Algorithm: TreeBroadcast, MessageFlits: 2}); err != nil {
		t.Errorf("participants=0 (all nodes) rejected: %v", err)
	}
}

// deliver simulates the network delivering every spec after the given
// flight time, in issue order, and returns the count.
func deliver(e *Engine, specs []noc.Spec, cycle, flight int64) int {
	for _, s := range specs {
		e.OnDeliver(&noc.Packet{Src: s.Src, Dst: s.Dst, CreatedAt: cycle, EjectedAt: cycle + flight})
	}
	return len(specs)
}

// TestDependencyGating drives the engine by hand — no network — and
// checks the closed-loop contract: sends beyond a rank's guard never
// issue until the receives that unlock them are observed.
func TestDependencyGating(t *testing.T) {
	e, err := New(mesh(4, 4), Params{Algorithm: RingAllReduce, Participants: 4, MessageFlits: 1, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0: exactly one send per rank (step 0); nothing else is
	// unlocked because no rank has received anything.
	specs := e.Generate(0, nil, nil)
	if len(specs) != 4 {
		t.Fatalf("cycle 0 issued %d sends, want 4 (one step-0 send per rank)", len(specs))
	}
	// Without deliveries the engine must stay silent.
	if extra := e.Generate(1, nil, nil); len(extra) != 0 {
		t.Fatalf("no deliveries yet, but %d sends issued", len(extra))
	}
	// Deliver the step-0 messages; each rank's step-1 send unlocks.
	deliver(e, specs, 0, 5)
	specs = e.Generate(6, nil, nil)
	if len(specs) != 4 {
		t.Fatalf("after step-0 delivery %d sends issued, want 4", len(specs))
	}
	// Drain the rest of iteration 1: keep delivering what was issued.
	cycle := int64(7)
	delivered := 8
	for delivered < e.MessagesPerIteration() {
		deliver(e, specs, cycle, 5)
		specs = e.Generate(cycle+5, nil, nil)
		delivered += len(specs)
		cycle += 5
		if cycle > 1000 {
			t.Fatal("iteration failed to converge")
		}
	}
	deliver(e, specs, cycle, 5)
	if e.Completed() != 1 {
		t.Fatalf("completed %d iterations, want 1", e.Completed())
	}
	if e.Done() {
		t.Fatal("Done after 1/2 iterations")
	}
	// The barrier: iteration 2 starts on the next Generate call.
	specs = e.Generate(cycle+5, nil, nil)
	if len(specs) != 4 {
		t.Fatalf("iteration 2 opened with %d sends, want 4", len(specs))
	}
	rep := e.Report()
	// Only iteration 1's deliveries are aggregated; iteration 2's first
	// sends are in flight.
	if rep.Messages.N != int64(e.MessagesPerIteration()) {
		t.Fatalf("message agg holds %d samples, want %d", rep.Messages.N, e.MessagesPerIteration())
	}
	if rep.Iteration.N != 1 {
		t.Fatalf("iteration agg holds %d samples, want 1", rep.Iteration.N)
	}
	if rep.Participant.N != 4 {
		t.Fatalf("participant agg holds %d samples, want 4 (one per rank)", rep.Participant.N)
	}
}

func TestAgg(t *testing.T) {
	var a Agg
	if a.Mean() != 0 {
		t.Fatal("empty agg mean != 0")
	}
	for _, v := range []int64{5, 1, 9} {
		a.add(v)
	}
	if a.N != 3 || a.Min != 1 || a.Max != 9 || a.Sum != 15 {
		t.Fatalf("agg = %+v, want N=3 min=1 max=9 sum=15", a)
	}
	if a.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
}
