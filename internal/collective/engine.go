package collective

import (
	"fmt"
	"math/rand"

	"mira/internal/noc"
	"mira/internal/stats"
	"mira/internal/topology"
)

// Algorithm names a collective schedule.
type Algorithm string

// The implemented schedules.
const (
	RingAllReduce Algorithm = "ring-allreduce"
	ReduceScatter Algorithm = "reduce-scatter"
	TreeBroadcast Algorithm = "tree-broadcast"
)

// Algorithms lists the implemented schedules in a stable order.
func Algorithms() []Algorithm {
	return []Algorithm{RingAllReduce, ReduceScatter, TreeBroadcast}
}

// ParseAlgorithm resolves an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("collective: unknown algorithm %q (want %s, %s or %s)",
		s, RingAllReduce, ReduceScatter, TreeBroadcast)
}

// Params configures an Engine.
type Params struct {
	Algorithm Algorithm
	// Participants is the rank count; 0 enrolls every node. Ranks are
	// the first Participants nodes of the snake traversal (see the
	// package comment), so 2 <= Participants <= NumNodes.
	Participants int
	// MessageFlits is the size of every collective message in flits.
	MessageFlits int
	// Iterations is how many back-to-back collectives to run (0 = 1).
	// Iteration i+1 starts only after iteration i fully completes.
	Iterations int
}

// send is one entry of a rank's send program: issue a MessageFlits
// packet to dst once the rank has observed at least guard deliveries.
type send struct {
	dst   topology.NodeID
	guard int32
}

// Agg accumulates min/sum/max over int64 samples; the zero value is an
// empty aggregate.
type Agg struct {
	N, Min, Max, Sum int64
}

func (a *Agg) add(v int64) {
	if a.N == 0 || v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
	a.N++
	a.Sum += v
}

// Mean returns the sample mean, 0 when empty.
func (a Agg) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.N)
}

// Engine drives one collective workload as closed-loop traffic. It
// implements noc.Generator for the send side; the delivery side must be
// wired to noc.Sim.OnEject (the scenario layer does this) so receives
// unlock dependent sends. The Engine draws nothing from the RNG, issues
// at most one message per rank per cycle in program order, and keeps
// all its mutable state on the simulation goroutine — which is what
// keeps its tables bit-identical at any shard count and step mode.
type Engine struct {
	p     Params
	ranks []topology.NodeID // rank -> node
	// rankOf maps node -> rank, -1 for non-participants.
	rankOf    []int
	prog      [][]send // rank -> ordered send program
	recvSteps [][]int  // rank -> step index of the rank's j-th receive
	steps     int
	msgsPer   int // messages per iteration

	// Per-iteration state. active is false between OnDeliver observing
	// an iteration's last message and Generate starting the next one —
	// the zero-cost barrier.
	nextSend  []int
	recvd     []int
	delivered int
	iterStart int64
	active    bool
	completed int

	// Aggregates, in cycles: per-step message latency, per-participant
	// completion (last receive - iteration start), per-iteration
	// end-to-end (all delivered - iteration start).
	stepLat     []Agg
	messages    Agg
	participant Agg
	iteration   Agg
}

// New builds the overlay and send programs for the topology.
func New(topo *topology.Topology, p Params) (*Engine, error) {
	if _, err := ParseAlgorithm(string(p.Algorithm)); err != nil {
		return nil, err
	}
	n := p.Participants
	if n == 0 {
		n = topo.NumNodes()
	}
	if n < 2 || n > topo.NumNodes() {
		return nil, fmt.Errorf("collective: %d participants, need 2..%d", n, topo.NumNodes())
	}
	if p.MessageFlits < 1 {
		return nil, fmt.Errorf("collective: message size %d flits, need >= 1", p.MessageFlits)
	}
	if p.Iterations < 0 {
		return nil, fmt.Errorf("collective: %d iterations, need >= 0 (0 = 1)", p.Iterations)
	}
	if p.Iterations == 0 {
		p.Iterations = 1
	}
	p.Participants = n

	e := &Engine{
		p:         p,
		ranks:     snakeOrder(topo)[:n],
		rankOf:    make([]int, topo.NumNodes()),
		prog:      make([][]send, n),
		recvSteps: make([][]int, n),
		nextSend:  make([]int, n),
		recvd:     make([]int, n),
	}
	for i := range e.rankOf {
		e.rankOf[i] = -1
	}
	for r, id := range e.ranks {
		e.rankOf[id] = r
	}

	switch p.Algorithm {
	case RingAllReduce:
		e.buildRing(2 * (n - 1))
	case ReduceScatter:
		e.buildRing(n - 1)
	case TreeBroadcast:
		e.buildTree()
	}
	e.stepLat = make([]Agg, e.steps)
	return e, nil
}

// snakeOrder returns every node in boustrophedon order: per Z layer,
// row 0 left-to-right, row 1 right-to-left, ... so consecutive entries
// are mesh neighbours (rows are joined at alternating ends).
func snakeOrder(topo *topology.Topology) []topology.NodeID {
	order := make([]topology.NodeID, 0, topo.NumNodes())
	for z := 0; z < topo.ZDim; z++ {
		for y := 0; y < topo.YDim; y++ {
			for i := 0; i < topo.XDim; i++ {
				x := i
				if y%2 == 1 {
					x = topo.XDim - 1 - i
				}
				node, ok := topo.NodeAt(topology.Coord{X: x, Y: y, Z: z})
				if !ok {
					panic("collective: snake order off the topology grid")
				}
				order = append(order, node.ID)
			}
		}
	}
	return order
}

// buildRing lays out the ring schedules: every rank sends to its ring
// successor at each of the given steps, and send s is guarded by the
// rank's s-th receive (from its ring predecessor).
func (e *Engine) buildRing(steps int) {
	n := len(e.ranks)
	e.steps = steps
	e.msgsPer = n * steps
	for r := 0; r < n; r++ {
		next := e.ranks[(r+1)%n]
		e.prog[r] = make([]send, steps)
		e.recvSteps[r] = make([]int, steps)
		for s := 0; s < steps; s++ {
			e.prog[r][s] = send{dst: next, guard: int32(s)}
			e.recvSteps[r][s] = s
		}
	}
}

// buildTree lays out the binomial broadcast: at step k, rank r < 2^k
// (holding the value) sends to rank r+2^k. The root's sends have guard
// 0; every other rank's sends are guarded by its single receive.
func (e *Engine) buildTree() {
	n := len(e.ranks)
	e.msgsPer = n - 1
	for k := 0; 1<<k < n; k++ {
		e.steps = k + 1
		for r := 0; r < 1<<k && r+(1<<k) < n; r++ {
			guard := int32(1)
			if r == 0 {
				guard = 0
			}
			peer := r + (1 << k)
			e.prog[r] = append(e.prog[r], send{dst: e.ranks[peer], guard: guard})
			e.recvSteps[peer] = []int{k}
		}
	}
}

// Generate implements noc.Generator: it issues every send whose guard
// is satisfied, at most one per rank per cycle in program order, and
// opens the next iteration when the barrier clears.
func (e *Engine) Generate(cycle int64, _ *rand.Rand, specs []noc.Spec) []noc.Spec {
	if !e.active {
		if e.completed >= e.p.Iterations {
			return specs
		}
		for r := range e.nextSend {
			e.nextSend[r] = 0
			e.recvd[r] = 0
		}
		e.delivered = 0
		e.iterStart = cycle
		e.active = true
	}
	for r := range e.ranks {
		i := e.nextSend[r]
		if i < len(e.prog[r]) && int32(e.recvd[r]) >= e.prog[r][i].guard {
			specs = append(specs, noc.Spec{
				Src:   e.ranks[r],
				Dst:   e.prog[r][i].dst,
				Size:  e.p.MessageFlits,
				Class: noc.Data,
			})
			e.nextSend[r] = i + 1
		}
	}
	return specs
}

// OnDeliver observes one packet delivery (wire to noc.Sim.OnEject). The
// j-th arrival at a rank is the j-th entry of the rank's receive
// schedule; counting arrivals rather than matching packet identities is
// exact for the shipped overlays (see the package comment).
func (e *Engine) OnDeliver(pkt *noc.Packet) {
	if !e.active || int(pkt.Dst) >= len(e.rankOf) {
		return
	}
	r := e.rankOf[pkt.Dst]
	if r < 0 || e.recvd[r] >= len(e.recvSteps[r]) {
		return
	}
	j := e.recvd[r]
	e.recvd[r]++
	lat := pkt.EjectedAt - pkt.CreatedAt
	e.stepLat[e.recvSteps[r][j]].add(lat)
	e.messages.add(lat)
	if e.recvd[r] == len(e.recvSteps[r]) {
		e.participant.add(pkt.EjectedAt - e.iterStart)
	}
	e.delivered++
	if e.delivered == e.msgsPer {
		e.iteration.add(pkt.EjectedAt - e.iterStart)
		e.completed++
		e.active = false
	}
}

// NumRanks returns the participant count.
func (e *Engine) NumRanks() int { return len(e.ranks) }

// NumSteps returns the schedule's step count.
func (e *Engine) NumSteps() int { return e.steps }

// MessagesPerIteration returns the message count of one collective.
func (e *Engine) MessagesPerIteration() int { return e.msgsPer }

// Completed returns how many iterations fully delivered.
func (e *Engine) Completed() int { return e.completed }

// Done reports whether every requested iteration completed.
func (e *Engine) Done() bool { return e.completed >= e.p.Iterations }

// Ranks returns the rank -> node mapping. The slice must not be
// modified.
func (e *Engine) Ranks() []topology.NodeID { return e.ranks }

// Report is the numeric summary of a finished (or partial) run.
type Report struct {
	Algorithm    Algorithm `json:"algorithm"`
	Ranks        int       `json:"ranks"`
	Steps        int       `json:"steps"`
	MessageFlits int       `json:"message_flits"`
	Iterations   int       `json:"iterations"`
	Completed    int       `json:"completed"`
	// Messages aggregates per-message latency over every delivery;
	// StepLat slices the same deliveries by schedule step. Participant
	// is per-rank completion (last receive - iteration start; the
	// broadcast root never receives and is excluded). Iteration is the
	// end-to-end time of each completed collective. All in cycles.
	Messages    Agg   `json:"messages"`
	StepLat     []Agg `json:"step_lat"`
	Participant Agg   `json:"participant"`
	Iteration   Agg   `json:"iteration"`
}

// Report returns the run summary accumulated so far.
func (e *Engine) Report() Report {
	return Report{
		Algorithm:    e.p.Algorithm,
		Ranks:        len(e.ranks),
		Steps:        e.steps,
		MessageFlits: e.p.MessageFlits,
		Iterations:   e.p.Iterations,
		Completed:    e.completed,
		Messages:     e.messages,
		StepLat:      e.stepLat,
		Participant:  e.participant,
		Iteration:    e.iteration,
	}
}

func aggRow(t *stats.Table, name string, a Agg) {
	t.AddRow(name, fmt.Sprintf("%d", a.N), fmt.Sprintf("%d", a.Min),
		fmt.Sprintf("%.1f", a.Mean()), fmt.Sprintf("%d", a.Max))
}

// Summary renders the completion-latency table: per-message latency
// over all deliveries, per-participant completion, and end-to-end
// iteration latency (min/mean/max in cycles).
func (e *Engine) Summary() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("collective %s: %d ranks, %d steps, %d-flit messages", e.p.Algorithm, len(e.ranks), e.steps, e.p.MessageFlits),
		Header: []string{"metric", "n", "min", "mean", "max"},
	}
	aggRow(t, "message latency", e.messages)
	aggRow(t, "participant completion", e.participant)
	aggRow(t, "iteration end-to-end", e.iteration)
	t.Notes = append(t.Notes, fmt.Sprintf("%d/%d iterations complete, %d messages per iteration",
		e.completed, e.p.Iterations, e.msgsPer))
	if !e.Done() {
		t.Notes = append(t.Notes, "incomplete: run canceled or measure window too short for the schedule")
	}
	return t
}

// StepTable renders per-step message latency: one row per schedule
// step, aggregated over all iterations and participants.
func (e *Engine) StepTable() *stats.Table {
	t := &stats.Table{
		Title:  fmt.Sprintf("collective %s: per-step message latency", e.p.Algorithm),
		Header: []string{"step", "n", "min", "mean", "max"},
	}
	for s, a := range e.stepLat {
		aggRow(t, fmt.Sprintf("%d", s), a)
	}
	return t
}
