// Package collective implements collective-communication workloads —
// ring AllReduce, reduce-scatter, and binomial tree broadcast — as
// closed-loop traffic for the NoC simulator. Unlike the open-loop
// synthetic kinds (internal/traffic), which inject at a fixed offered
// rate regardless of what the network delivers, a collective is
// causally dependent: every participant issues its step-(k+1) message
// only after its step-k message has arrived. The Engine is therefore a
// dependency engine driven off packet-delivery callbacks (noc.Sim's
// OnEject hook), the same closed-loop pattern as internal/cmp's
// ClosedSystem, but packaged as a plain noc.Generator so it composes
// with the scenario layer, sharded stepping, and every step mode.
//
// # Overlays and step complexity
//
// Participants are the first P nodes of a boustrophedon ("snake")
// traversal of the mesh — row 0 left-to-right, row 1 right-to-left, and
// so on, per Z layer — so consecutive ranks are mesh neighbours and the
// logical ring maps onto physical links with one hop per step on a
// monolithic mesh. For N participants:
//
//   - ring AllReduce: 2(N−1) steps. Each rank r sends to its ring
//     successor at every step; step s's send is unlocked by the rank's
//     s-th receive (the reduce-scatter phase forwards partial sums, the
//     allgather phase forwards finished chunks).
//   - reduce-scatter: the first N−1 steps of the same ring schedule.
//   - tree broadcast: ceil(log2 N) steps over a binomial tree rooted at
//     rank 0. At step k every rank r < 2^k with r+2^k < N sends to rank
//     r+2^k; a non-root rank's sends are unlocked by its single receive,
//     which arrives at step floor(log2 r).
//
// # Dependency contract
//
// The Engine keeps no packet-identity state: each rank's send program
// is guarded by the rank's running receive count, and the j-th arrival
// at a rank is attributed to the j-th entry of the rank's precomputed
// receive schedule. This is exact for the shipped overlays — every rank
// receives from a single ring predecessor (ring kinds) or receives
// exactly once (broadcast) — and it is what makes the engine
// deterministic under sharded stepping: ejections are replayed in
// canonical router order at any shard count (see noc.Sim.OnEject), link
// latency ≥ 1 means a delivery can never unlock a send in the same
// cycle it crosses a shard boundary, and the engine itself draws
// nothing from the RNG.
//
// Iterations are separated by a zero-cost barrier: iteration i+1's
// first sends are issued on the first Generate call after iteration i's
// last message is delivered. Per-step latency, per-participant
// completion (a rank's last receive minus the iteration start; the
// broadcast root, which receives nothing, is excluded), and end-to-end
// iteration latency are aggregated as min/mean/max and surfaced as a
// stats.Table.
package collective
