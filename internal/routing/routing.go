// Package routing implements the deterministic dimension-ordered routing
// used in the MIRA evaluation (§4: "X-Y deterministic routing algorithm
// in all our experiments"), extended along the Z axis for the 3DB stack
// and with express-channel awareness for 3DM-E.
//
// All algorithms are minimal and dimension-ordered (X fully, then Y, then
// Z), so the channel dependency graph is acyclic and routing is
// deadlock-free under wormhole flow control without escape VCs.
package routing

import (
	"fmt"

	"mira/internal/topology"
)

// Algorithm computes, per hop, the output port a packet should take.
type Algorithm interface {
	// Name identifies the algorithm in logs and experiment output.
	Name() string
	// NextPort returns the output direction at cur for a packet headed
	// to dst. It returns topology.Local when cur == dst.
	NextPort(t *topology.Topology, cur, dst topology.NodeID) topology.Dir
}

// XY is X-then-Y(-then-Z) dimension-ordered routing on meshes. On a 3D
// mesh it is the natural X-Y-Z extension used for the 3DB configuration.
type XY struct{}

// Name implements Algorithm.
func (XY) Name() string { return "xy" }

// NextPort implements Algorithm.
func (XY) NextPort(t *topology.Topology, cur, dst topology.NodeID) topology.Dir {
	c, d := t.Node(cur).Coord, t.Node(dst).Coord
	switch {
	case c.X < d.X:
		return topology.East
	case c.X > d.X:
		return topology.West
	case c.Y < d.Y:
		return topology.South
	case c.Y > d.Y:
		return topology.North
	case c.Z < d.Z:
		return topology.Up
	case c.Z > d.Z:
		return topology.Down
	}
	return topology.Local
}

// Express is dimension-ordered routing that prefers a multi-hop express
// channel whenever the remaining distance in the current dimension is at
// least the express span and the express link exists at the current node
// (Dally's express-cube routing). Progress within each dimension is
// monotone, so deadlock freedom is preserved.
type Express struct{}

// Name implements Algorithm.
func (Express) Name() string { return "express" }

// NextPort implements Algorithm.
func (Express) NextPort(t *topology.Topology, cur, dst topology.NodeID) topology.Dir {
	c, d := t.Node(cur).Coord, t.Node(dst).Coord
	pick := func(normal, express topology.Dir, dist int) topology.Dir {
		if l, ok := t.OutLink(cur, express); ok && dist >= l.Span {
			return express
		}
		return normal
	}
	switch {
	case c.X < d.X:
		return pick(topology.East, topology.EastExp, d.X-c.X)
	case c.X > d.X:
		return pick(topology.West, topology.WestExp, c.X-d.X)
	case c.Y < d.Y:
		return pick(topology.South, topology.SouthExp, d.Y-c.Y)
	case c.Y > d.Y:
		return pick(topology.North, topology.NorthExp, c.Y-d.Y)
	}
	return topology.Local
}

// ChipDOR is chip-boundary-aware dimension-ordered routing for chiplet
// grids (topology.NewChipGrid). Route selection is globally
// dimension-ordered — all X progress, local and die-to-die alike,
// before any Y progress — but expressed hierarchically over
// (chip, local) addresses: each hop first corrects the chip X
// coordinate, then the local X offset, then chip Y, then local Y.
// Because the grid tiles uniform meshes, chip order and local order
// agree with flat coordinate order, so the channel dependency graph is
// the mesh DOR graph plus forward-only express short-cuts and routing
// stays deadlock-free under wormhole flow control. (The tempting
// alternative — finish the whole chip-level walk before any local
// correction — is NOT used: an east-then-south chip walk followed by
// local westward correction creates Y->X turns and breaks DOR
// acyclicity.) Inter-chip express channels are preferred exactly as in
// Express routing: when the remaining distance in the dimension is at
// least the link's span.
type ChipDOR struct{}

// Name implements Algorithm.
func (ChipDOR) Name() string { return "chipdor" }

// NextPort implements Algorithm.
func (ChipDOR) NextPort(t *topology.Topology, cur, dst topology.NodeID) topology.Dir {
	ccx, ccy := t.ChipOf(cur)
	dcx, dcy := t.ChipOf(dst)
	c, d := t.Node(cur).Coord, t.Node(dst).Coord
	pick := func(normal, express topology.Dir, dist int) topology.Dir {
		if l, ok := t.OutLink(cur, express); ok && dist >= l.Span {
			return express
		}
		return normal
	}
	switch {
	// Chip-level X correction. Chip order implies coordinate order
	// (ccx < dcx forces c.X < d.X on a uniform grid), so the distance
	// passed to the express pick is always positive.
	case ccx < dcx:
		return pick(topology.East, topology.EastExp, d.X-c.X)
	case ccx > dcx:
		return pick(topology.West, topology.WestExp, c.X-d.X)
	// Local X correction within the destination chip column.
	case c.X < d.X:
		return topology.East
	case c.X > d.X:
		return topology.West
	// Chip-level, then local, Y correction.
	case ccy < dcy:
		return pick(topology.South, topology.SouthExp, d.Y-c.Y)
	case ccy > dcy:
		return pick(topology.North, topology.NorthExp, c.Y-d.Y)
	case c.Y < d.Y:
		return topology.South
	case c.Y > d.Y:
		return topology.North
	}
	return topology.Local
}

// Path returns the sequence of output ports a packet takes from src to
// dst under alg, excluding the final Local ejection. It returns an error
// if the route does not make progress (a routing bug or a link missing
// from the topology) within NumNodes hops.
func Path(t *topology.Topology, alg Algorithm, src, dst topology.NodeID) ([]topology.Dir, error) {
	var path []topology.Dir
	cur := src
	for cur != dst {
		if len(path) > t.NumNodes() {
			return nil, fmt.Errorf("routing: %s loops from %d to %d", alg.Name(), src, dst)
		}
		dir := alg.NextPort(t, cur, dst)
		if dir == topology.Local {
			return nil, fmt.Errorf("routing: %s ejects early at node %d en route %d->%d", alg.Name(), cur, src, dst)
		}
		l, ok := t.OutLink(cur, dir)
		if !ok {
			return nil, fmt.Errorf("routing: %s picked missing port %v at node %d en route %d->%d", alg.Name(), dir, cur, src, dst)
		}
		path = append(path, dir)
		cur = l.Dst
	}
	return path, nil
}

// HopCount returns the number of router-to-router traversals from src to
// dst under alg. Express hops count as one traversal: that is the whole
// point of express channels (Figure 11 (d) counts hops this way).
func HopCount(t *topology.Topology, alg Algorithm, src, dst topology.NodeID) (int, error) {
	p, err := Path(t, alg, src, dst)
	return len(p), err
}

// AverageHops returns the mean hop count over all ordered pairs drawn
// from srcs x dsts, skipping src == dst pairs. With nil slices it uses
// all nodes, giving the uniform-random average of Figure 11 (d).
func AverageHops(t *topology.Topology, alg Algorithm, srcs, dsts []topology.NodeID) (float64, error) {
	if srcs == nil {
		srcs = allNodes(t)
	}
	if dsts == nil {
		dsts = allNodes(t)
	}
	var total, pairs int
	for _, s := range srcs {
		for _, d := range dsts {
			if s == d {
				continue
			}
			h, err := HopCount(t, alg, s, d)
			if err != nil {
				return 0, err
			}
			total += h
			pairs++
		}
	}
	if pairs == 0 {
		return 0, nil
	}
	return float64(total) / float64(pairs), nil
}

func allNodes(t *topology.Topology) []topology.NodeID {
	ids := make([]topology.NodeID, t.NumNodes())
	for i := range ids {
		ids[i] = topology.NodeID(i)
	}
	return ids
}

// ForTopology returns the natural algorithm for a topology: ChipDOR for
// multi-chip grids (it subsumes express preference across chip
// boundaries), Express when a single-chip fabric has express channels,
// XY otherwise.
func ForTopology(t *topology.Topology) Algorithm {
	if t.NumChips() > 1 {
		return ChipDOR{}
	}
	for _, l := range t.Links() {
		if l.SrcPort.IsExpress() {
			return Express{}
		}
	}
	return XY{}
}
