package routing_test

import (
	"fmt"

	"mira/internal/routing"
	"mira/internal/topology"
)

func ExamplePath() {
	m := topology.NewMesh2D(6, 6, 3.1)
	src := m.MustNodeAt(topology.Coord{X: 0, Y: 0}).ID
	dst := m.MustNodeAt(topology.Coord{X: 2, Y: 1}).ID
	path, err := routing.Path(m, routing.XY{}, src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Println(path)
	// Output: [east east south]
}

func ExampleExpress() {
	m := topology.NewExpressMesh2D(6, 6, 1.58, 2)
	src := m.MustNodeAt(topology.Coord{X: 0, Y: 0}).ID
	dst := m.MustNodeAt(topology.Coord{X: 5, Y: 0}).ID
	path, err := routing.Path(m, routing.Express{}, src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Println(path)
	// Output: [east-exp east-exp east]
}

func ExampleNewWestFirst() {
	m := topology.NewMesh2D(6, 6, 3.1)
	mid := m.MustNodeAt(topology.Coord{X: 2, Y: 2}).ID
	wf, err := routing.NewWestFirst(m, []routing.LinkFault{{Src: mid, Dir: topology.East}})
	if err != nil {
		panic(err)
	}
	dst := m.MustNodeAt(topology.Coord{X: 4, Y: 2}).ID
	path, _ := routing.Path(m, wf, mid, dst)
	fmt.Println(path)
	// Output: [south east east north]
}
