package routing

import (
	"testing"

	"mira/internal/topology"
)

func TestWestFirstNoFaultsMatchesManhattan(t *testing.T) {
	m := mesh6()
	w, err := NewWestFirst(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Nodes() {
		for _, b := range m.Nodes() {
			h, err := HopCount(m, w, a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			man := abs(a.Coord.X-b.Coord.X) + abs(a.Coord.Y-b.Coord.Y)
			if h != man {
				t.Fatalf("west-first %d->%d hops %d, want %d (minimal)", a.ID, b.ID, h, man)
			}
		}
	}
}

func TestWestFirstRoutesAroundFault(t *testing.T) {
	m := mesh6()
	// Kill the east link out of (1,2); traffic from (1,2) to (4,2)
	// must detour vertically around it. (Only the east direction can
	// fail under west-first: a west fault is never routable, which
	// TestWestFirstRejectsWestFault pins down.)
	src := m.MustNodeAt(topology.Coord{X: 1, Y: 2}).ID
	faults := []LinkFault{{Src: src, Dir: topology.East}}
	w, err := NewWestFirst(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	dst := m.MustNodeAt(topology.Coord{X: 4, Y: 2}).ID
	path, err := Path(m, w, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Fault forces a first hop that is not east.
	if path[0] == topology.East {
		t.Fatalf("path starts on the faulty link: %v", path)
	}
	// The detour stays minimal only when a productive alternative
	// exists; from (1,2) to (4,2) the Y distance is 0, so the detour
	// is rejected... unless construction failed. Since it did not, the
	// route must still complete.
	if got := m.Node(pathEnd(m, src, path)).Coord; got != m.Node(dst).Coord {
		t.Fatalf("path does not reach destination")
	}
}

func TestWestFirstRejectsDisconnectingFaults(t *testing.T) {
	m := mesh6()
	// Corner (0,0): killing both outgoing links isolates it.
	c := m.MustNodeAt(topology.Coord{}).ID
	faults := []LinkFault{
		{Src: c, Dir: topology.East},
		{Src: c, Dir: topology.South},
	}
	if _, err := NewWestFirst(m, faults); err == nil {
		t.Fatalf("isolating faults should be rejected")
	}
}

func TestWestFirstRejectsWestFault(t *testing.T) {
	m := mesh6()
	// A west link fault cannot be detoured (turns into west are
	// forbidden), so any pair needing it becomes unreachable.
	src := m.MustNodeAt(topology.Coord{X: 3, Y: 3}).ID
	if _, err := NewWestFirst(m, []LinkFault{{Src: src, Dir: topology.West}}); err == nil {
		t.Fatalf("west-link fault should be rejected (unroutable under west-first)")
	}
}

func TestWestFirstValidation(t *testing.T) {
	m := mesh6()
	if _, err := NewWestFirst(m, []LinkFault{{Src: 0, Dir: topology.West}}); err == nil {
		t.Errorf("fault on non-existent link should be rejected")
	}
	m3 := mesh334()
	if _, err := NewWestFirst(m3, nil); err == nil {
		t.Errorf("3D mesh should be rejected")
	}
	me := expressM()
	if _, err := NewWestFirst(me, []LinkFault{{Src: 0, Dir: topology.EastExp}}); err == nil {
		t.Errorf("express-link fault should be rejected")
	}
}

// West-first never takes a turn into the west direction (the invariant
// behind its deadlock freedom), fault or no fault.
func TestWestFirstTurnRule(t *testing.T) {
	m := mesh6()
	// A one-way east fault (west faults are never routable under
	// west-first, so symmetric channel failures are rejected).
	mid := m.MustNodeAt(topology.Coord{X: 2, Y: 2}).ID
	w, err := NewWestFirst(m, []LinkFault{{Src: mid, Dir: topology.East}})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Nodes() {
		for _, b := range m.Nodes() {
			path, err := Path(m, w, a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			seenNonWest := false
			for _, d := range path {
				if d == topology.West {
					if seenNonWest {
						t.Fatalf("turn into west in %d->%d: %v", a.ID, b.ID, path)
					}
				} else {
					seenNonWest = true
				}
			}
		}
	}
}

// pathEnd walks a path from src and returns the final node.
func pathEnd(m *topology.Topology, src topology.NodeID, path []topology.Dir) topology.NodeID {
	cur := src
	for _, d := range path {
		l, ok := m.OutLink(cur, d)
		if !ok {
			return -1
		}
		cur = l.Dst
	}
	return cur
}
