package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mira/internal/topology"
)

func mesh6() *topology.Topology    { return topology.NewMesh2D(6, 6, 3.1) }
func mesh334() *topology.Topology  { return topology.NewMesh3D(3, 3, 4, 3.1, 0.02) }
func expressM() *topology.Topology { return topology.NewExpressMesh2D(6, 6, 1.58, 2) }
func id(t *topology.Topology, x, y int) topology.NodeID {
	return t.MustNodeAt(topology.Coord{X: x, Y: y}).ID
}

func TestXYSimplePath(t *testing.T) {
	m := mesh6()
	p, err := Path(m, XY{}, id(m, 0, 0), id(m, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := []topology.Dir{topology.East, topology.East, topology.East, topology.South, topology.South}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestXYSelf(t *testing.T) {
	m := mesh6()
	if d := (XY{}).NextPort(m, 5, 5); d != topology.Local {
		t.Errorf("NextPort(self) = %v, want local", d)
	}
	p, err := Path(m, XY{}, 5, 5)
	if err != nil || len(p) != 0 {
		t.Errorf("Path(self) = %v, %v", p, err)
	}
}

func TestXYHopsEqualManhattan(t *testing.T) {
	m := mesh6()
	for _, a := range m.Nodes() {
		for _, b := range m.Nodes() {
			h, err := HopCount(m, XY{}, a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			man := abs(a.Coord.X-b.Coord.X) + abs(a.Coord.Y-b.Coord.Y)
			if h != man {
				t.Fatalf("hops %d->%d = %d, want %d", a.ID, b.ID, h, man)
			}
		}
	}
}

func TestXYZOn3D(t *testing.T) {
	m := mesh334()
	src := m.MustNodeAt(topology.Coord{X: 0, Y: 0, Z: 0}).ID
	dst := m.MustNodeAt(topology.Coord{X: 2, Y: 2, Z: 3}).ID
	h, err := HopCount(m, XY{}, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if h != 7 { // 2+2+3
		t.Errorf("hops = %d, want 7", h)
	}
	// Z is routed last.
	p, _ := Path(m, XY{}, src, dst)
	sawZ := false
	for _, d := range p {
		if d.IsVertical() {
			sawZ = true
		} else if sawZ {
			t.Fatalf("non-vertical hop after vertical in %v", p)
		}
	}
}

func TestExpressPrefersExpress(t *testing.T) {
	m := expressM()
	// 0,0 -> 5,0: distance 5 => exp(2) + exp(2) + normal(1) = 3 hops.
	h, err := HopCount(m, Express{}, id(m, 0, 0), id(m, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Errorf("express hops = %d, want 3", h)
	}
	p, _ := Path(m, Express{}, id(m, 0, 0), id(m, 5, 0))
	if !p[0].IsExpress() || !p[1].IsExpress() || p[2].IsExpress() {
		t.Errorf("path = %v, want exp,exp,normal", p)
	}
}

func TestExpressShortDistanceUsesNormal(t *testing.T) {
	m := expressM()
	p, err := Path(m, Express{}, id(m, 0, 0), id(m, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range p {
		if d.IsExpress() {
			t.Errorf("distance-1 hops must be normal, path %v", p)
		}
	}
}

func TestExpressNeverWorseThanXY(t *testing.T) {
	m := expressM()
	for _, a := range m.Nodes() {
		for _, b := range m.Nodes() {
			he, err := HopCount(m, Express{}, a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			hx, err := HopCount(m, XY{}, a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			if he > hx {
				t.Fatalf("express %d->%d worse: %d > %d", a.ID, b.ID, he, hx)
			}
		}
	}
}

// Express routing still delivers the minimal Manhattan distance in
// physical span even when taking multi-hop links.
func TestExpressMinimalSpan(t *testing.T) {
	m := expressM()
	for _, a := range m.Nodes() {
		for _, b := range m.Nodes() {
			p, err := Path(m, Express{}, a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			span := 0
			cur := a.ID
			for _, d := range p {
				l, ok := m.OutLink(cur, d)
				if !ok {
					t.Fatalf("missing link at %d dir %v", cur, d)
				}
				span += l.Span
				cur = l.Dst
			}
			man := abs(a.Coord.X-b.Coord.X) + abs(a.Coord.Y-b.Coord.Y)
			if span != man {
				t.Fatalf("span %d->%d = %d, want %d (non-minimal)", a.ID, b.ID, span, man)
			}
		}
	}
}

func TestAverageHopsUR2D(t *testing.T) {
	m := mesh6()
	got, err := AverageHops(m, XY{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: mean 1D distance over distinct pairs is 35/15 per axis...
	// over ordered pairs incl. other axis it's 2 * (35*2/ (36*35/ (6)))...
	// Simplest closed form: E|i-j| over i!=j pairs weighted with the other
	// axis equal or not. Computed independently: 4.0 for a 6x6 mesh over
	// all ordered distinct pairs.
	if got < 3.9 || got > 4.1 {
		t.Errorf("UR avg hops 6x6 = %v, want ~4.0", got)
	}
}

func TestAverageHopsOrdering(t *testing.T) {
	// Figure 11 (d): 3DM-E < 3DB < 2DB for uniform random traffic.
	m2, m3, me := mesh6(), mesh334(), expressM()
	h2, err := AverageHops(m2, XY{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := AverageHops(m3, XY{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	he, err := AverageHops(me, Express{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(he < h3 && h3 < h2) {
		t.Errorf("hop ordering violated: express %.2f, 3D %.2f, 2D %.2f", he, h3, h2)
	}
}

func TestAverageHopsNUCA3DBWorse(t *testing.T) {
	// Figure 11 (d): with NUCA layout constraints the 3DB hop count
	// exceeds its UR hop count (CPUs pinned to the top layer).
	m3 := mesh334()
	if err := topology.ApplyNUCALayout3D(m3); err != nil {
		t.Fatal(err)
	}
	ur, err := AverageHops(m3, XY{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpus, caches := m3.CPUs(), m3.Caches()
	req, err := AverageHops(m3, XY{}, cpus, caches)
	if err != nil {
		t.Fatal(err)
	}
	if req <= ur {
		t.Errorf("3DB NUCA hops %.2f should exceed UR hops %.2f", req, ur)
	}
}

func TestAverageHopsEmpty(t *testing.T) {
	m := mesh6()
	got, err := AverageHops(m, XY{}, []topology.NodeID{3}, []topology.NodeID{3})
	if err != nil || got != 0 {
		t.Errorf("AverageHops over self pair = %v, %v; want 0, nil", got, err)
	}
}

func TestForTopology(t *testing.T) {
	if ForTopology(mesh6()).Name() != "xy" {
		t.Errorf("mesh should pick xy")
	}
	if ForTopology(expressM()).Name() != "express" {
		t.Errorf("express mesh should pick express routing")
	}
}

// Property: random src/dst pairs always route successfully with both
// algorithms on their respective topologies, and hop counts are bounded
// by the network diameter.
func TestRoutingTerminatesProperty(t *testing.T) {
	m, me := mesh334(), expressM()
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		s := topology.NodeID(rng.Intn(m.NumNodes()))
		d := topology.NodeID(rng.Intn(m.NumNodes()))
		h, err := HopCount(m, XY{}, s, d)
		if err != nil || h > 2+2+3 {
			return false
		}
		se := topology.NodeID(rng.Intn(me.NumNodes()))
		de := topology.NodeID(rng.Intn(me.NumNodes()))
		he, err := HopCount(me, Express{}, se, de)
		return err == nil && he <= 6
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
