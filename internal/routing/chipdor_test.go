package routing

import (
	"testing"

	"mira/internal/topology"
)

func chipGrid(express bool) *topology.Topology {
	return topology.NewChipGrid(topology.ChipGridSpec{
		ChipsX: 3, ChipsY: 2, NodesX: 3, NodesY: 3,
		PitchMM: 3.1, D2DLatency: 4, D2DSerCycles: 2,
		Express: express, ExpressLatency: 6,
	})
}

func isX(d topology.Dir) bool {
	return d == topology.East || d == topology.West || d == topology.EastExp || d == topology.WestExp
}

// TestChipDORReachability walks every ordered pair of a 3x2-chip grid
// (with and without express channels) and asserts the route terminates
// at the destination — the routing-level reachability and no-livelock
// guarantee — and stays globally dimension-ordered: no X move after any
// Y move, which makes the channel dependency graph acyclic and the
// network deadlock-free under wormhole flow control.
func TestChipDORReachability(t *testing.T) {
	for _, express := range []bool{false, true} {
		tp := chipGrid(express)
		alg := ChipDOR{}
		for src := 0; src < tp.NumNodes(); src++ {
			for dst := 0; dst < tp.NumNodes(); dst++ {
				if src == dst {
					continue
				}
				p, err := Path(tp, alg, topology.NodeID(src), topology.NodeID(dst))
				if err != nil {
					t.Fatalf("express=%v: %v", express, err)
				}
				seenY := false
				for _, d := range p {
					if isX(d) && seenY {
						t.Fatalf("express=%v %d->%d: X move after Y move in %v", express, src, dst, p)
					}
					if !isX(d) {
						seenY = true
					}
				}
			}
		}
	}
}

// TestChipDORMatchesXYWithoutExpress pins ChipDOR's hierarchical
// decision against flat XY on an express-free grid: the grid is one
// large mesh, so both must take identical minimal DOR paths.
func TestChipDORMatchesXYWithoutExpress(t *testing.T) {
	tp := chipGrid(false)
	for src := 0; src < tp.NumNodes(); src++ {
		for dst := 0; dst < tp.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			want := XY{}.NextPort(tp, topology.NodeID(src), topology.NodeID(dst))
			got := ChipDOR{}.NextPort(tp, topology.NodeID(src), topology.NodeID(dst))
			if got != want {
				t.Fatalf("%d->%d: ChipDOR %v, XY %v", src, dst, got, want)
			}
		}
	}
}

// TestChipDORExpressReducesHops checks express channels actually
// shorten chip-crossing routes and never lengthen any route.
func TestChipDORExpressReducesHops(t *testing.T) {
	plain, exp := chipGrid(false), chipGrid(true)
	var reduced bool
	for src := 0; src < plain.NumNodes(); src++ {
		for dst := 0; dst < plain.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			hPlain, err := HopCount(plain, ChipDOR{}, topology.NodeID(src), topology.NodeID(dst))
			if err != nil {
				t.Fatal(err)
			}
			hExp, err := HopCount(exp, ChipDOR{}, topology.NodeID(src), topology.NodeID(dst))
			if err != nil {
				t.Fatal(err)
			}
			if hExp > hPlain {
				t.Fatalf("%d->%d: express route longer (%d > %d)", src, dst, hExp, hPlain)
			}
			if hExp < hPlain {
				reduced = true
			}
		}
	}
	if !reduced {
		t.Fatal("express channels never reduced a route")
	}
}

// TestForTopologyChipGrid resolves chip grids to ChipDOR and leaves
// single-chip fabrics on their existing algorithms.
func TestForTopologyChipGrid(t *testing.T) {
	if got := ForTopology(chipGrid(false)).Name(); got != "chipdor" {
		t.Errorf("chip grid resolved to %q, want chipdor", got)
	}
	if got := ForTopology(chipGrid(true)).Name(); got != "chipdor" {
		t.Errorf("express chip grid resolved to %q, want chipdor", got)
	}
	if got := ForTopology(topology.NewMesh2D(4, 4, 1)).Name(); got != "xy" {
		t.Errorf("mesh resolved to %q, want xy", got)
	}
	if got := ForTopology(topology.NewExpressMesh2D(6, 6, 1, 2)).Name(); got != "express" {
		t.Errorf("express mesh resolved to %q, want express", got)
	}
}
