package routing

import (
	"fmt"

	"mira/internal/topology"
)

// West-first turn-model routing (Glass & Ni) with link-fault tolerance.
// §3.3 of the MIRA paper notes that the extra physical channels of the
// multi-layered design "can be used for purposes such as QoS
// provisioning, for fault-tolerance, or for express channels"; this
// algorithm is the fault-tolerance half. West-first forbids the two
// turns into the west direction, which breaks every cycle in the
// channel dependency graph, so any west-first path set is deadlock-free
// — including the detours taken around faulty links.
//
// Routing rule on a planar mesh:
//   - If the destination is to the west, the packet must travel the
//     full west distance first (no turns out of west are restricted,
//     but turns INTO west are forbidden later).
//   - Otherwise the packet may route adaptively among {east, north,
//     south} toward the destination, which is what allows it to slip
//     around faulty links.

// LinkFault identifies a unidirectional link by its source node and
// output direction.
type LinkFault struct {
	Src topology.NodeID
	Dir topology.Dir
}

// WestFirst is fault-tolerant west-first routing on a planar mesh.
type WestFirst struct {
	faults map[LinkFault]bool
}

// NewWestFirst builds the algorithm with the given faulty links (both
// directions of a failed physical channel should normally be listed).
// It returns an error when any node pair becomes unreachable under the
// west-first turn rules with those faults.
func NewWestFirst(t *topology.Topology, faults []LinkFault) (*WestFirst, error) {
	if t.ZDim != 1 {
		return nil, fmt.Errorf("routing: west-first requires a planar mesh")
	}
	w := &WestFirst{faults: make(map[LinkFault]bool, len(faults))}
	for _, f := range faults {
		if _, ok := t.OutLink(f.Src, f.Dir); !ok {
			return nil, fmt.Errorf("routing: fault on non-existent link %d/%v", f.Src, f.Dir)
		}
		if f.Dir.IsExpress() {
			return nil, fmt.Errorf("routing: west-first does not route express channels; fault %d/%v is moot", f.Src, f.Dir)
		}
		w.faults[LinkFault{f.Src, f.Dir}] = true
	}
	// Verify total reachability by walking every pair.
	for _, src := range t.Nodes() {
		for _, dst := range t.Nodes() {
			if src.ID == dst.ID {
				continue
			}
			if _, err := Path(t, w, src.ID, dst.ID); err != nil {
				return nil, fmt.Errorf("routing: faults disconnect %d -> %d under west-first: %v", src.ID, dst.ID, err)
			}
		}
	}
	return w, nil
}

// Name implements Algorithm.
func (w *WestFirst) Name() string { return "west-first" }

// alive reports whether the link out of cur through d exists and is not
// faulty.
func (w *WestFirst) alive(t *topology.Topology, cur topology.NodeID, d topology.Dir) bool {
	if w.faults[LinkFault{cur, d}] {
		return false
	}
	_, ok := t.OutLink(cur, d)
	return ok
}

// NextPort implements Algorithm. Among the admissible directions it
// prefers productive ones (reducing distance), then falls back to a
// non-productive east/north/south detour around faults; the west-first
// turn rule keeps even those detours deadlock-free.
func (w *WestFirst) NextPort(t *topology.Topology, cur, dst topology.NodeID) topology.Dir {
	c, d := t.Node(cur).Coord, t.Node(dst).Coord
	if c == d {
		return topology.Local
	}
	// Westbound distance must be covered first and west links cannot be
	// detoured (turning back into west is forbidden); a west fault on
	// the needed path is fatal, which NewWestFirst screens for by
	// walking all pairs.
	if d.X < c.X {
		if w.alive(t, cur, topology.West) {
			return topology.West
		}
		// Detour north/south while still west of the destination is
		// not allowed to return west, so reject at construction time.
		return topology.Local
	}
	// Adaptive phase: prefer productive directions.
	var productive []topology.Dir
	if d.X > c.X {
		productive = append(productive, topology.East)
	}
	if d.Y > c.Y {
		productive = append(productive, topology.South)
	}
	if d.Y < c.Y {
		productive = append(productive, topology.North)
	}
	for _, dir := range productive {
		if w.alive(t, cur, dir) {
			return dir
		}
	}
	// No productive live link: detour vertically (never east — when
	// dX == 0 an east detour would overshoot and require a forbidden
	// later turn into west; when dX > 0 east was already productive).
	// Deadlock freedom survives non-minimal vertical detours: routing
	// is memoryless, so a 180-degree reversal would revisit a node,
	// repeat its decision, loop, and be rejected by the construction-
	// time walk — accepted fault sets therefore yield reversal-free,
	// into-west-free paths, which Glass & Ni's argument proves
	// deadlock-free.
	for _, dir := range []topology.Dir{topology.South, topology.North} {
		alreadyTried := false
		for _, p := range productive {
			if p == dir {
				alreadyTried = true
			}
		}
		if !alreadyTried && w.alive(t, cur, dir) {
			return dir
		}
	}
	return topology.Local // construction-time walk rejects this state
}
