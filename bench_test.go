// Package mira_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the MIRA paper's evaluation section. Each
// benchmark regenerates its artifact via internal/exp (with shortened
// simulation windows so `go test -bench=.` stays tractable) and reports
// the headline quantity of that artifact as a custom benchmark metric.
//
// Full-length regeneration (the numbers recorded in EXPERIMENTS.md) is
// done with `go run ./cmd/mirabench all`.
package mira_test

import (
	"context"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"mira/internal/area"
	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/routing"
	"mira/internal/timing"
	"mira/internal/topology"
	"mira/internal/traffic"
)

// bg is the context all benchmarks run under (never canceled).
func bg() context.Context { return context.Background() }

// benchOpts trims the windows so each iteration is sub-second.
func benchOpts() exp.Options {
	return exp.Options{Warmup: 500, Measure: 2000, Drain: 6000, TraceCycles: 5000, Seed: 42}
}

func parseCell(b *testing.B, s string) float64 {
	b.Helper()
	if len(s) > 0 && s[len(s)-1] == '*' {
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", s, err)
	}
	return v
}

// BenchmarkTable1Area regenerates the router component area table.
func BenchmarkTable1Area(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		t := exp.Table1()
		total = parseCell(b, t.Rows[7][3]) // 3DM total
	}
	b.ReportMetric(total, "um2_3DM_total")
}

// BenchmarkTable3Delay regenerates the ST+LT combination check.
func BenchmarkTable3Delay(b *testing.B) {
	var combined float64
	for i := 0; i < b.N; i++ {
		d := timing.Evaluate(120, core.Pitch3DMMM)
		combined = d.CombinedPS
	}
	b.ReportMetric(combined, "ps_3DM_STLT")
}

// BenchmarkFig3Footprint regenerates the footprint comparison.
func BenchmarkFig3Footprint(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		t := exp.Fig3()
		ratio = parseCell(b, t.Rows[2][4])
	}
	b.ReportMetric(ratio, "footprint_3DM_vs_2DB")
}

// BenchmarkFig9Energy regenerates the per-flit energy breakdown.
func BenchmarkFig9Energy(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		p2 := power.FlitHopEnergy(area.Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 1}, core.Pitch2DMM)
		p3 := power.FlitHopEnergy(area.Params{Ports: 5, VCs: 2, FlitWidth: 128, BufDepth: 8, Layers: 4}, core.Pitch3DMMM)
		ratio = p3.Total() / p2.Total()
	}
	b.ReportMetric(ratio, "flitE_3DM_vs_2DB")
}

// BenchmarkFig1DataPatterns regenerates the data-pattern breakdown.
func BenchmarkFig1DataPatterns(b *testing.B) {
	o := benchOpts()
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig1(bg(), o)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "workloads")
}

// BenchmarkFig2PacketTypes regenerates the packet-type distribution.
func BenchmarkFig2PacketTypes(b *testing.B) {
	o := benchOpts()
	var ctrl float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig2(bg(), o)
		if err != nil {
			b.Fatal(err)
		}
		ctrl = parseCell(b, t.Rows[0][len(t.Rows[0])-1])
	}
	b.ReportMetric(ctrl, "ctrl_pkt_frac_tpcw")
}

// BenchmarkFig10Layouts regenerates the node layouts.
func BenchmarkFig10Layouts(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(exp.Fig10().Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkFig11aLatencyUR regenerates the uniform-random latency curve
// at three representative injection rates.
func BenchmarkFig11aLatencyUR(b *testing.B) {
	o := benchOpts()
	var ratio float64
	for i := 0; i < b.N; i++ {
		var r2, re float64
		for _, rate := range []float64{0.05, 0.15, 0.30} {
			r2 = exp.RunUR(bg(), core.Arch2DB, rate, 0, o).AvgLatency
			re = exp.RunUR(bg(), core.Arch3DME, rate, 0, o).AvgLatency
		}
		ratio = re / r2 // at the highest rate
	}
	b.ReportMetric(ratio, "lat_3DME_vs_2DB@0.30")
}

// BenchmarkFig11bLatencyNUCA regenerates the NUCA-UR latency comparison.
func BenchmarkFig11bLatencyNUCA(b *testing.B) {
	o := benchOpts()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r2 := exp.RunNUCAUR(bg(), core.Arch2DB, 0.10, 0, o).AvgLatency
		re := exp.RunNUCAUR(bg(), core.Arch3DME, 0.10, 0, o).AvgLatency
		ratio = re / r2
	}
	b.ReportMetric(ratio, "lat_3DME_vs_2DB")
}

// BenchmarkFig11cLatencyTraces regenerates the MP-trace latency ratio
// for one representative workload.
func BenchmarkFig11cLatencyTraces(b *testing.B) {
	o := benchOpts()
	w, _ := cmp.ByName("tpcw")
	var ratio float64
	for i := 0; i < b.N; i++ {
		r2, _, err := exp.RunTrace(bg(), core.Arch2DB, w, o)
		if err != nil {
			b.Fatal(err)
		}
		re, _, err := exp.RunTrace(bg(), core.Arch3DME, w, o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = re.AvgLatency / r2.AvgLatency
	}
	b.ReportMetric(ratio, "lat_3DME_vs_2DB")
}

// BenchmarkFig11dHops regenerates the hop-count comparison.
func BenchmarkFig11dHops(b *testing.B) {
	var hops float64
	for i := 0; i < b.N; i++ {
		de := core.MustDesign(core.Arch3DME)
		h, err := routing.AverageHops(de.Topo, de.Alg, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		hops = h
	}
	b.ReportMetric(hops, "hops_3DME_UR")
}

// BenchmarkFig12aPowerUR regenerates the uniform-random power curve.
func BenchmarkFig12aPowerUR(b *testing.B) {
	o := benchOpts()
	var saving float64
	for i := 0; i < b.N; i++ {
		d2 := core.MustDesign(core.Arch2DB)
		de := core.MustDesign(core.Arch3DME)
		p2 := exp.NetworkPowerW(d2, exp.RunUR(bg(), core.Arch2DB, 0.15, 0, o), false)
		pe := exp.NetworkPowerW(de, exp.RunUR(bg(), core.Arch3DME, 0.15, 0, o), false)
		saving = 1 - pe/p2
	}
	b.ReportMetric(saving, "power_saving_3DME")
}

// BenchmarkFig12bPowerNUCA regenerates the NUCA-UR power comparison.
func BenchmarkFig12bPowerNUCA(b *testing.B) {
	o := benchOpts()
	var saving float64
	for i := 0; i < b.N; i++ {
		d2 := core.MustDesign(core.Arch2DB)
		dm := core.MustDesign(core.Arch3DM)
		p2 := exp.NetworkPowerW(d2, exp.RunNUCAUR(bg(), core.Arch2DB, 0.10, 0, o), false)
		pm := exp.NetworkPowerW(dm, exp.RunNUCAUR(bg(), core.Arch3DM, 0.10, 0, o), false)
		saving = 1 - pm/p2
	}
	b.ReportMetric(saving, "power_saving_3DM")
}

// BenchmarkFig12cPowerTraces regenerates the trace power ratio with
// layer shutdown.
func BenchmarkFig12cPowerTraces(b *testing.B) {
	o := benchOpts()
	w, _ := cmp.ByName("tpcw")
	var ratio float64
	for i := 0; i < b.N; i++ {
		d2 := core.MustDesign(core.Arch2DB)
		de := core.MustDesign(core.Arch3DME)
		r2, _, err := exp.RunTrace(bg(), core.Arch2DB, w, o)
		if err != nil {
			b.Fatal(err)
		}
		re, _, err := exp.RunTrace(bg(), core.Arch3DME, w, o)
		if err != nil {
			b.Fatal(err)
		}
		ratio = exp.NetworkPowerW(de, re, true) / exp.NetworkPowerW(d2, r2, false)
	}
	b.ReportMetric(ratio, "power_3DME_vs_2DB")
}

// BenchmarkFig12dPDP regenerates the normalized power-delay product.
func BenchmarkFig12dPDP(b *testing.B) {
	o := benchOpts()
	var pdp float64
	for i := 0; i < b.N; i++ {
		d2 := core.MustDesign(core.Arch2DB)
		de := core.MustDesign(core.Arch3DME)
		r2 := exp.RunUR(bg(), core.Arch2DB, 0.15, 0, o)
		re := exp.RunUR(bg(), core.Arch3DME, 0.15, 0, o)
		base := exp.NetworkPowerW(d2, r2, false) * r2.AvgLatency
		pdp = exp.NetworkPowerW(de, re, false) * re.AvgLatency / base
	}
	b.ReportMetric(pdp, "pdp_3DME_vs_2DB")
}

// BenchmarkFig13aShortFlits regenerates the per-workload short-flit
// percentages.
func BenchmarkFig13aShortFlits(b *testing.B) {
	o := benchOpts()
	var avg float64
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig13a(bg(), o)
		if err != nil {
			b.Fatal(err)
		}
		avg = parseCell(b, t.Rows[len(t.Rows)-1][1])
	}
	b.ReportMetric(avg, "avg_short_flit_pct")
}

// BenchmarkFig13bShutdown regenerates the layer-shutdown power savings.
func BenchmarkFig13bShutdown(b *testing.B) {
	o := benchOpts()
	var saving float64
	for i := 0; i < b.N; i++ {
		d := core.MustDesign(core.Arch3DM)
		base := exp.NetworkPowerW(d, exp.RunUR(bg(), core.Arch3DM, 0.15, 0, o), true)
		s50 := exp.NetworkPowerW(d, exp.RunUR(bg(), core.Arch3DM, 0.15, 0.5, o), true)
		saving = 100 * (1 - s50/base)
	}
	b.ReportMetric(saving, "pct_saving_50short")
}

// BenchmarkFig13cThermal regenerates the temperature-reduction analysis
// at one injection rate.
func BenchmarkFig13cThermal(b *testing.B) {
	o := benchOpts()
	var dT float64
	for i := 0; i < b.N; i++ {
		t := exp.Fig13cAt(bg(), o, 0.2)
		dT = t
	}
	b.ReportMetric(dT, "avg_dT_K")
}

// BenchmarkFig8Pipelines regenerates the router pipeline family
// comparison.
func BenchmarkFig8Pipelines(b *testing.B) {
	o := benchOpts()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(exp.Fig8(bg(), o).Rows)
	}
	b.ReportMetric(float64(rows), "variants")
}

// BenchmarkAblationBufferDepth regenerates the buffer-depth ablation.
func BenchmarkAblationBufferDepth(b *testing.B) {
	o := benchOpts()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(exp.AblationBufferDepth(bg(), o).Rows)
	}
	b.ReportMetric(float64(rows), "depths")
}

// BenchmarkAblationExpress regenerates the express-interval ablation.
func BenchmarkAblationExpress(b *testing.B) {
	o := benchOpts()
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := exp.AblationExpressInterval(bg(), o)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "intervals")
}

// BenchmarkExtLeakage regenerates the leakage-thermal feedback table.
func BenchmarkExtLeakage(b *testing.B) {
	o := benchOpts()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(exp.ExtLeakage(bg(), o).Rows)
	}
	b.ReportMetric(float64(rows), "designs")
}

// BenchmarkExtCosim runs the closed-loop CMP/NoC co-simulation for one
// workload on 2DB vs 3DM-E and reports the miss-latency ratio.
func BenchmarkExtCosim(b *testing.B) {
	w, _ := cmp.ByName("tpcw")
	var ratio float64
	for i := 0; i < b.N; i++ {
		run := func(a core.Arch) float64 {
			d := core.MustDesign(a)
			s, err := cmp.NewClosedSystem(cmp.DefaultParams(w, d.Topo, 42), d.NoCConfig(noc.ByClass, 42))
			if err != nil {
				b.Fatal(err)
			}
			st := s.Run(6000)
			return st.MissLatency.Mean()
		}
		ratio = run(core.Arch3DME) / run(core.Arch2DB)
	}
	b.ReportMetric(ratio, "missLat_3DME_vs_2DB")
}

// BenchmarkRouterCycle measures the simulator's raw per-cycle cost on
// a loaded 6x6 mesh (engine micro-benchmark, not a paper artifact).
func BenchmarkRouterCycle(b *testing.B) {
	o := exp.Options{Warmup: 0, Measure: int64(b.N), Drain: 0, Seed: 1}
	b.ResetTimer()
	exp.RunUR(bg(), core.Arch2DB, 0.2, 0, o)
	b.ReportMetric(float64(36), "routers")
}

// benchStep measures the steady-state cost of the generate/enqueue/step
// hot path on a 6x6 mesh at the given injection rate and step mode. The
// steady state should be allocation-light: the spec buffer is reused
// across cycles and the injection queues hold values, so per-cycle
// garbage comes only from packet births.
func benchStep(b *testing.B, rate float64, mode noc.StepMode) {
	benchStepProbe(b, rate, mode, nil)
}

// benchStepProbe is benchStep with an explicit probe attachment, for
// measuring the observability layer's hot-path cost.
func benchStepProbe(b *testing.B, rate float64, mode noc.StepMode, p noc.Probe) {
	b.Helper()
	d := core.MustDesign(core.Arch2DB)
	gen := &traffic.Uniform{Topo: d.Topo, InjectionRate: rate, PacketSize: core.DataPacketFlits}
	cfg := d.NoCConfig(noc.AnyFree, 1)
	cfg.Mode = mode
	net := noc.NewNetwork(cfg)
	net.SetProbe(p)
	runStepBench(b, net, gen)
}

// runStepBench warms net up to steady state (1000 cycles) and then runs
// b.N timed cycles. Traffic generation is pure rng work whose cost is
// identical for every simulator variant, so it runs with the timer
// stopped — specs are pre-generated a chunk of cycles at a time and the
// timed region is exactly Enqueue+Step. Generation depends only on the
// cycle number, so batching it does not change the injected traffic.
func runStepBench(b *testing.B, net *noc.Network, gen *traffic.Uniform) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var specs []noc.Spec
	cycle := int64(0)
	for ; cycle < 1000; cycle++ { // reach steady state before measuring
		specs = gen.Generate(cycle, rng, specs[:0])
		for _, sp := range specs {
			if _, err := net.Enqueue(sp); err != nil {
				b.Fatal(err)
			}
		}
		net.Step()
	}
	const chunk = 4096 // cycles pre-generated per timer pause
	var (
		flat []noc.Spec // chunk's specs, concatenated in cycle order
		off  []int      // off[i]:off[i+1] bounds cycle i's specs
	)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		nc := chunk
		if rem := b.N - done; rem < nc {
			nc = rem
		}
		b.StopTimer()
		flat, off = flat[:0], off[:0]
		for i := 0; i < nc; i++ {
			off = append(off, len(flat))
			flat = gen.Generate(cycle+int64(i), rng, flat)
		}
		off = append(off, len(flat))
		b.StartTimer()
		for i := 0; i < nc; i++ {
			for _, sp := range flat[off[i]:off[i+1]] {
				if _, err := net.Enqueue(sp); err != nil {
					b.Fatal(err)
				}
			}
			net.Step()
		}
		cycle += int64(nc)
	}
}

// BenchmarkStepUR is the loaded-mesh baseline (0.2 flits/node/cycle,
// default activity-driven stepping).
func BenchmarkStepUR(b *testing.B) { benchStep(b, 0.2, noc.StepActivity) }

// BenchmarkStepURFullScan is BenchmarkStepUR on the reference full-scan
// path, for before/after comparison under load.
func BenchmarkStepURFullScan(b *testing.B) { benchStep(b, 0.2, noc.StepFullScan) }

// countingProbe is the cheapest possible live probe: one counter bump
// per event, no allocation, no indirection beyond the interface call.
type countingProbe struct{ n int64 }

func (p *countingProbe) ProbeEvent(noc.ProbeEvent) { p.n++ }

// BenchmarkStepURNilProbe is BenchmarkStepUR with the probe explicitly
// detached: the zero-overhead-when-nil contract of internal/noc's probe
// layer says this must match BenchmarkStepUR within noise (each emission
// site pays one nil check either way).
func BenchmarkStepURNilProbe(b *testing.B) { benchStepProbe(b, 0.2, noc.StepActivity, nil) }

// BenchmarkStepURProbed measures the floor cost of live observation: the
// loaded-mesh step loop with a minimal counting probe attached, i.e. the
// per-event dispatch overhead before any collector logic runs.
func BenchmarkStepURProbed(b *testing.B) { benchStepProbe(b, 0.2, noc.StepActivity, &countingProbe{}) }

// BenchmarkStepHighRate measures the near-saturation regime the SoA
// router core targets: at 0.3 flits/node/cycle most VCs hold flits most
// cycles, so activity tracking prunes little and per-cycle cost is
// dominated by the stage loops walking live VC state. This is the
// regime the fig11/fig12 sweeps spend most of their wall-clock in.
func BenchmarkStepHighRate(b *testing.B) { benchStep(b, 0.3, noc.StepActivity) }

// BenchmarkStepHighRateFullScan is the full-scan reference for
// BenchmarkStepHighRate.
func BenchmarkStepHighRateFullScan(b *testing.B) { benchStep(b, 0.3, noc.StepFullScan) }

// benchStepMeter is benchStep with the engine meter attached or
// detached, for measuring the engine-telemetry layer's hot-path cost.
func benchStepMeter(b *testing.B, rate float64, metered bool) {
	b.Helper()
	d := core.MustDesign(core.Arch2DB)
	gen := &traffic.Uniform{Topo: d.Topo, InjectionRate: rate, PacketSize: core.DataPacketFlits}
	cfg := d.NoCConfig(noc.AnyFree, 1)
	cfg.Mode = noc.StepActivity
	net := noc.NewNetwork(cfg)
	if metered {
		net.EnableEngineMeter()
	}
	runStepBench(b, net, gen)
}

// BenchmarkStepTelemetryOff is BenchmarkStepHighRate with the engine
// meter explicitly detached: the telemetry layer's
// zero-overhead-when-off contract says each metered site pays one nil
// check, so this must match BenchmarkStepHighRate within noise.
// scripts/benchguard.sh holds it against the StepHighRate baseline.
func BenchmarkStepTelemetryOff(b *testing.B) { benchStepMeter(b, 0.3, false) }

// BenchmarkStepTelemetryOn is the attached reference: the step loop
// with the engine meter collecting per-cycle wall time (two
// time.Now() calls per sequential cycle).
func BenchmarkStepTelemetryOn(b *testing.B) { benchStepMeter(b, 0.3, true) }

// benchStepLarge is benchStep on a 16x16 mesh (256 routers, ~7x the
// 6x6 fabric), pinning that per-cycle cost stays proportional to
// traffic as the flat state arrays grow. shards > 1 partitions the
// mesh into concurrently stepped router-ID ranges (noc/shard.go).
func benchStepLarge(b *testing.B, rate float64, mode noc.StepMode, shards int) {
	b.Helper()
	topo := topology.NewMesh2D(16, 16, core.Pitch2DMM)
	cfg := noc.Config{
		Topo:       topo,
		Alg:        routing.ForTopology(topo),
		VCs:        core.VCsPerPort,
		BufDepth:   core.BufDepth,
		STLTCycles: 2,
		Layers:     core.Layers,
		Policy:     noc.AnyFree,
		Seed:       1,
		Mode:       mode,
		Shards:     shards,
	}
	gen := &traffic.Uniform{Topo: topo, InjectionRate: rate, PacketSize: core.DataPacketFlits}
	net := noc.NewNetwork(cfg)
	runStepBench(b, net, gen)
}

// BenchmarkStepHighRateLargeMesh is BenchmarkStepHighRate on a 16x16
// mesh — the giant-fabric regime sharded stepping partitions, so its
// single-threaded cost is the baseline the shard sweep is read against.
func BenchmarkStepHighRateLargeMesh(b *testing.B) { benchStepLarge(b, 0.3, noc.StepActivity, 1) }

// BenchmarkStepSharded sweeps shard counts over the high-load 16x16
// mesh of BenchmarkStepHighRateLargeMesh. Results are bit-identical at
// every shard count (pinned by noc's TestShardDeterminism); what the
// sweep measures is wall-clock scaling: on a multicore host the 4-shard
// case targets >= 2x over 1 shard, while on a single hardware thread
// the sharded cases only pay the goroutine fan-out tax, bounding the
// protocol's overhead.
func BenchmarkStepSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			benchStepLarge(b, 0.3, noc.StepActivity, shards)
		})
	}
}

// BenchmarkStepChiplet measures per-cycle cost on the chiplet fabric
// the ext-chiplet sweep runs: a 2x2 grid of 4x4-node chips joined by
// 4-cycle serializing (ser=2) die-to-die channels, uniform-random
// traffic at 0.10 flits/node/cycle — about 80% of the d2d bisection
// capacity, so the serialization lanes and latency-stamped cross-chip
// events are exercised every cycle without saturating the boundary
// queues. Read against BenchmarkStepUR (same stepping mode, monolithic
// mesh) to bound the chiplet bookkeeping overhead.
func BenchmarkStepChiplet(b *testing.B) {
	topo := topology.NewChipGrid(topology.ChipGridSpec{
		ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4,
		PitchMM: core.Pitch2DMM, D2DLatency: 4, D2DSerCycles: 2,
	})
	cfg := noc.Config{
		Topo:       topo,
		Alg:        routing.ForTopology(topo),
		VCs:        core.VCsPerPort,
		BufDepth:   core.BufDepth,
		STLTCycles: 2,
		Layers:     core.Layers,
		Policy:     noc.AnyFree,
		Seed:       1,
		Mode:       noc.StepActivity,
		Shards:     1,
	}
	gen := &traffic.Uniform{Topo: topo, InjectionRate: 0.1, PacketSize: core.DataPacketFlits}
	runStepBench(b, noc.NewNetwork(cfg), gen)
}

// BenchmarkStepLowRate measures the regime activity tracking targets:
// at 0.05 flits/node/cycle most routers are idle most cycles, so the
// activity path should beat BenchmarkStepLowRateFullScan by >= 3x.
func BenchmarkStepLowRate(b *testing.B) { benchStep(b, 0.05, noc.StepActivity) }

// BenchmarkStepLowRateFullScan is the full-scan reference for
// BenchmarkStepLowRate: it pays the whole-fabric rescan every cycle
// regardless of how little traffic exists.
func BenchmarkStepLowRateFullScan(b *testing.B) { benchStep(b, 0.05, noc.StepFullScan) }

// BenchmarkStepIdle steps a completely empty network: the activity path
// reduces to four empty-set scans, so cost is O(1) per cycle and zero
// allocations regardless of fabric size.
func BenchmarkStepIdle(b *testing.B) {
	d := core.MustDesign(core.Arch2DB)
	net := noc.NewNetwork(d.NoCConfig(noc.AnyFree, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkStepIdleFullScan is the empty-network full scan: the cost
// floor the activity path removes.
func BenchmarkStepIdleFullScan(b *testing.B) {
	d := core.MustDesign(core.Arch2DB)
	cfg := d.NoCConfig(noc.AnyFree, 1)
	cfg.Mode = noc.StepFullScan
	net := noc.NewNetwork(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// sweepPoints is the parallel-engine workload: a quick fig11a-style
// (rate × arch) grid of independent uniform-random simulations.
func sweepPoints() []exp.Point[float64] {
	rates := []float64{0.05, 0.15, 0.30}
	points := make([]exp.Point[float64], 0, len(rates)*len(core.Archs))
	for _, rate := range rates {
		for _, a := range core.Archs {
			rate, a := rate, a
			points = append(points, exp.Point[float64]{
				Label: "bench sweep",
				Run: func(ctx context.Context, o exp.Options) float64 {
					return exp.RunUR(ctx, a, rate, 0, o).AvgLatency
				},
			})
		}
	}
	return points
}

func benchSweep(b *testing.B, workers int) {
	o := benchOpts()
	o.Workers = workers
	points := sweepPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.RunAll(bg(), o, points)
	}
}

// BenchmarkSweepSequential runs the quick sweep grid on one worker —
// the baseline for BenchmarkSweepParallel.
func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same grid across all CPUs; on an
// N-core machine the speedup over BenchmarkSweepSequential approaches
// min(N, points) since sweep points are fully independent.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, runtime.NumCPU()) }
