// Closed-loop example: run the MESI protocol engines directly against a
// live network (rather than replaying a pre-recorded trace) and report
// the CPU-visible L2 access latency for each router architecture — the
// end-to-end number MIRA's interconnect improvements ultimately buy.
//
// Run with: go run ./examples/closedloop [workload]
package main

import (
	"fmt"
	"os"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/noc"
)

func main() {
	name := "tpcw"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := cmp.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
		os.Exit(2)
	}

	fmt.Printf("closed-loop co-simulation, workload %s (25k cycles, 8 CPUs)\n\n", name)
	fmt.Printf("%-10s %16s %14s %12s %14s\n",
		"design", "miss lat (cyc)", "L1 miss rate", "packets", "hits/misses")

	var base float64
	for _, arch := range []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME} {
		d := core.MustDesign(arch)
		sys, err := cmp.NewClosedSystem(cmp.DefaultParams(w, d.Topo, 21), d.NoCConfig(noc.ByClass, 21))
		if err != nil {
			panic(err)
		}
		st := sys.Run(25000)
		missRate := float64(st.L1Misses) / float64(st.Accesses)
		mean := st.MissLatency.Mean()
		if arch == core.Arch2DB {
			base = mean
		}
		fmt.Printf("%-10s %16.1f %13.1f%% %12d %7d/%d\n",
			arch, mean, 100*missRate, st.NetworkPackets, st.L1Hits, st.L1Misses)
	}

	d := core.MustDesign(core.Arch3DME)
	sys, err := cmp.NewClosedSystem(cmp.DefaultParams(w, d.Topo, 21), d.NoCConfig(noc.ByClass, 21))
	if err != nil {
		panic(err)
	}
	st := sys.Run(25000)
	fmt.Printf("\n3DM-E cuts the CPU-visible L2 access time by %.0f%% vs 2DB\n",
		100*(1-st.MissLatency.Mean()/base))
}
