// Quickstart: simulate the paper's headline comparison — the planar 2DB
// baseline against the multi-layered 3DM-E router — under uniform random
// traffic, and print latency, hop count and network power for each.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"mira/internal/core"
	"mira/internal/exp"
)

func main() {
	opts := exp.Options{Warmup: 2000, Measure: 10000, Drain: 20000, Seed: 1}
	const rate = 0.20 // flits/node/cycle

	fmt.Printf("uniform random traffic at %.2f flits/node/cycle\n\n", rate)
	fmt.Printf("%-10s %10s %8s %10s %12s\n", "design", "latency", "hops", "power (W)", "saturated")

	var baseLat, baseP float64
	for _, arch := range []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME} {
		d := core.MustDesign(arch)
		res := exp.RunUR(context.Background(), arch, rate, 0, opts)
		p := exp.NetworkPowerW(d, res, false)
		if arch == core.Arch2DB {
			baseLat, baseP = res.AvgLatency, p
		}
		fmt.Printf("%-10s %10.2f %8.2f %10.3f %12v\n",
			arch, res.AvgLatency, res.AvgHops, p, res.Saturated)
	}

	d := core.MustDesign(core.Arch3DME)
	res := exp.RunUR(context.Background(), core.Arch3DME, rate, 0, opts)
	p := exp.NetworkPowerW(d, res, false)
	fmt.Printf("\n3DM-E vs 2DB: %.0f%% lower latency, %.0f%% lower power\n",
		100*(1-res.AvgLatency/baseLat), 100*(1-p/baseP))
}
