// Shutdown + thermal example: demonstrate the short-flit layer-shutdown
// technique (§3.2.1) end to end. A 3DM network runs the same load twice
// — once with full-width flits and once with 50 % short flits — and the
// example reports the dynamic power saving and the resulting drop in
// steady-state chip temperature (Figures 13 (b) and (c)).
//
// Run with: go run ./examples/shutdownthermal
package main

import (
	"context"
	"fmt"

	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/power"
	"mira/internal/thermal"
	"mira/internal/topology"
)

func main() {
	opts := exp.Options{Warmup: 2000, Measure: 10000, Drain: 20000, Seed: 3}
	d := core.MustDesign(core.Arch3DM)

	fmt.Println("3DM layer shutdown under uniform random traffic")
	fmt.Printf("%-10s %14s %14s %12s %12s\n",
		"inj rate", "P full (W)", "P 50% short", "saving", "avg dT (K)")

	for _, rate := range []float64{0.10, 0.20, 0.30} {
		full := exp.RunUR(context.Background(), core.Arch3DM, rate, 0, opts)
		short := exp.RunUR(context.Background(), core.Arch3DM, rate, 0.5, opts)
		pFull := exp.NetworkPowerW(d, full, true)
		pShort := exp.NetworkPowerW(d, short, true)
		dT := thermal.Average(chipTemps(d, full)) - thermal.Average(chipTemps(d, short))
		fmt.Printf("%-10.2f %14.3f %14.3f %11.1f%% %12.2f\n",
			rate, pFull, pShort, 100*(1-pShort/pFull), dT)
	}

	fmt.Println("\nzero-detector demo (words LSB->MSB, layers needed):")
	for _, words := range [][]uint32{
		{0x2a, 0, 0, 0},
		{0x2a, 0xffffffff, 0xffffffff, 0xffffffff},
		{0x2a, 0x1, 0, 0},
		{0xdeadbeef, 0x01234567, 0x89abcdef, 0x42},
	} {
		fmt.Printf("  %#-12x... -> %d layer(s), short=%v\n",
			words[0], core.ActiveLayers(words), core.IsShort(words))
	}
}

// chipTemps solves the 4-layer 3DM chip with the paper's static core
// powers plus the simulated router powers.
func chipTemps(d *core.Design, res noc.Result) []float64 {
	g := thermal.NewGrid(6, 6, core.Layers, core.Pitch3DMMM)
	p := make([]float64, g.NumBlocks())
	for _, n := range d.Topo.Nodes() {
		nodeW := 0.1 // cache bank
		if n.Type == topology.CPU {
			nodeW = 8.0 // Niagara-class core
		}
		rb := power.NetworkEnergy(d.Energy, res.PerRouter[n.ID], true)
		nodeW += power.AvgPowerW(rb, res.Cycles)
		for z := 0; z < core.Layers; z++ {
			p[g.Index(n.Coord.X, n.Coord.Y, z)] += nodeW / core.Layers
		}
	}
	return g.Solve(p)
}
