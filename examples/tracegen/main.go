// Tracegen example: generate a NUCA coherence trace with the CMP
// substrate (the stand-in for the paper's Simics traces), write it to
// disk in the portable text format, read it back, and replay it through
// two router architectures.
//
// Run with: go run ./examples/tracegen [workload]
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/traffic"
)

func main() {
	name := "tpcw"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := cmp.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; available:", name)
		for _, w := range cmp.Workloads {
			fmt.Fprintf(os.Stderr, " %s", w.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	d := core.MustDesign(core.Arch2DB)
	tr, stats, err := cmp.GenerateTrace(w, d.Topo, 20000, 11)
	check(err)
	fmt.Printf("generated %d packets (%d flits) over %d cycles\n",
		len(tr.Events), tr.Flits(), tr.Span())
	fmt.Printf("short flits: %.1f%%, control packets: %.0f%%\n",
		stats.ShortFlitPct(), 100*stats.ControlPacketFrac())

	path := filepath.Join(os.TempDir(), name+".trace")
	f, err := os.Create(path)
	check(err)
	_, err = tr.WriteTo(f)
	check(err)
	check(f.Close())
	fmt.Printf("wrote %s\n", path)

	f, err = os.Open(path)
	check(err)
	loaded, err := traffic.ReadTrace(f)
	check(err)
	check(f.Close())
	fmt.Printf("reloaded %d events (name %q)\n\n", len(loaded.Events), loaded.Name)

	opts := exp.Options{Warmup: 1000, Measure: 8000, Drain: 20000, Seed: 1}
	for _, arch := range []core.Arch{core.Arch2DB, core.Arch3DME} {
		dd := core.MustDesign(arch)
		// Regenerate on the design's own topology: node IDs differ
		// between planar and stacked layouts.
		trd, _, err := cmp.GenerateTrace(w, dd.Topo, 20000, 11)
		check(err)
		net := noc.NewNetwork(dd.NoCConfig(noc.ByClass, 1))
		sim := noc.NewSim(net, &traffic.Replayer{Trace: trd, Loop: true})
		sim.Params = noc.SimParams{Warmup: opts.Warmup, Measure: opts.Measure, DrainMax: opts.Drain}
		res := sim.Run(context.Background())
		fmt.Printf("%-8s replay: %s  power=%.3f W\n",
			arch, res.String(), exp.NetworkPowerW(dd, res, true))
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
