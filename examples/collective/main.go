// Collective example: run the closed-loop collective workloads — ring
// AllReduce, reduce-scatter and binomial tree broadcast — over a
// 64-node fabric, once as a monolithic 8x8 mesh and once split into a
// 2x2 chiplet grid with slow serializing die-to-die channels, and
// report how completion time stretches when every dependent step has to
// cross the package boundary.
//
// Run with: go run ./examples/collective [iterations]
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"mira/internal/collective"
	"mira/internal/scenario"
)

func run(alg collective.Algorithm, chips *scenario.Chips, iters int) collective.Report {
	sc := scenario.Scenario{
		Arch:    "2DB",
		Measure: 200000,
		Drain:   50000,
		Seed:    1,
		Chips:   chips,
		Traffic: scenario.Traffic{
			Kind: "collective",
			Collective: &scenario.Collective{
				Algorithm:  string(alg),
				Iterations: iters,
			},
		},
	}
	e, err := sc.Elaborate()
	if err != nil {
		panic(err)
	}
	e.Sim.Run(context.Background())
	return e.Collective.Report()
}

func main() {
	iters := 3
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad iteration count %q\n", os.Args[1])
			os.Exit(2)
		}
		iters = n
	}

	mono := &scenario.Chips{ChipsX: 1, ChipsY: 1, NodesX: 8, NodesY: 8}
	split := &scenario.Chips{ChipsX: 2, ChipsY: 2, NodesX: 4, NodesY: 4, D2DLatency: 8, D2DSerCycles: 4}

	fmt.Printf("closed-loop collectives, 64 ranks, 4-flit messages, %d iterations\n\n", iters)
	fmt.Printf("%-15s %6s %12s %12s %8s\n", "algorithm", "steps", "mono e2e", "chiplet e2e", "blowup")
	for _, alg := range collective.Algorithms() {
		m := run(alg, mono, iters)
		c := run(alg, split, iters)
		fmt.Printf("%-15s %6d %12.0f %12.0f %7.2fx\n",
			alg, m.Steps, m.Iteration.Mean(), c.Iteration.Mean(),
			c.Iteration.Mean()/m.Iteration.Mean())
	}
	fmt.Println("\ne2e = mean end-to-end completion per iteration, in cycles; the chiplet")
	fmt.Println("fabric is the same 64 routers behind 8-cycle, 4x-serialized d2d links.")
}
