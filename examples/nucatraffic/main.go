// NUCA traffic example: reproduce the layout-constrained request/
// response pattern of a NUCA CMP (8 CPUs querying 28 L2 banks) and show
// why the naive 3D stack (3DB) loses its hop-count advantage when all
// the CPUs must sit in the heat-sink layer, while the multi-layer
// designs keep theirs (§4.2.1, Figure 11 (b)/(d)).
//
// Run with: go run ./examples/nucatraffic
package main

import (
	"context"
	"fmt"

	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/routing"
	"mira/internal/topology"
)

func main() {
	opts := exp.Options{Warmup: 2000, Measure: 10000, Drain: 20000, Seed: 7}
	const rate = 0.10

	fmt.Println("NUCA request/response traffic (CPU -> bank -> CPU)")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %10s %10s\n", "design", "UR hops", "NUCA hops", "latency", "power (W)")

	for _, arch := range []core.Arch{core.Arch2DB, core.Arch3DB, core.Arch3DM, core.Arch3DME} {
		d := core.MustDesign(arch)
		urHops, err := routing.AverageHops(d.Topo, d.Alg, nil, nil)
		check(err)
		req, err := routing.AverageHops(d.Topo, d.Alg, d.Topo.CPUs(), d.Topo.Caches())
		check(err)
		resp, err := routing.AverageHops(d.Topo, d.Alg, d.Topo.Caches(), d.Topo.CPUs())
		check(err)
		res := exp.RunNUCAUR(context.Background(), arch, rate, 0, opts)
		fmt.Printf("%-10s %12.2f %12.2f %10.2f %10.3f\n",
			arch, urHops, (req+resp)/2, res.AvgLatency, exp.NetworkPowerW(d, res, false))
	}

	fmt.Println()
	d3 := core.MustDesign(core.Arch3DB)
	fmt.Println("3DB layout (CPUs pinned to the heat-sink layer):")
	fmt.Println(topology.LayoutString(d3.Topo))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
