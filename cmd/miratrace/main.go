// Command miratrace generates, inspects and replays NUCA coherence
// traces (the reproduction's stand-in for the paper's Simics-generated
// MP traces), and inspects JSONL flit-event traces recorded by the
// observability layer (mirasim -trace). Generation and replay both go
// through the declarative scenario layer, so a gen/replay pair is
// reproducible from the same serialized description mirasim and
// mirabench use.
//
// Usage:
//
//	miratrace gen -workload tpcw -cycles 30000 -arch 2DB -o tpcw.trace
//	miratrace stat tpcw.trace
//	miratrace replay -arch 2DB tpcw.trace
//	miratrace flits run.jsonl
//	miratrace spans run.jsonl
//	miratrace spans -perfetto run.perfetto.json run.jsonl
//	miratrace spans -heatmap congestion.csv -svg congestion.svg run.jsonl
//
// Traces are tied to the node numbering of the architecture they were
// generated for; replay an -arch trace on the same -arch.
//
// "flits" verifies a flit-event trace (parse, cycle ordering, per-flit
// inject-before-eject protocol) and recomputes the recorded run's
// per-flit latency statistics from the file alone; on an unfiltered
// trace they match the live collector's digest byte for byte. Traces
// recorded with a node/class filter fail strict verification by design
// (per-flit streams are partial); the stats then cover the matched
// inject/eject pairs only.
//
// "spans" folds an unfiltered trace into per-flit, per-hop latency
// spans and prints the stage-level attribution table (queue wait, route,
// VA stall, SA stall, ST+LT cycles by router, traffic class, hop count
// and datapath layer; the stage cycles of every flit sum exactly to its
// measured network latency). -perfetto exports the spans as a Chrome
// trace-event JSON file — open it in Perfetto (ui.perfetto.dev) or
// chrome://tracing; each router is a process track and concurrent flit
// visits occupy separate lanes. -engine FILE additionally renders an
// engine telemetry series (mirasim -enginejson) as counter tracks —
// per-shard busy time per cycle, cycles/sec, shard imbalance — on a
// dedicated process in the same export, timestamped by simulated cycle
// so host-side shard cost lines up under the flit activity that caused
// it. -heatmap writes the per-router, per-window congestion matrix
// (stalled-flit cycles) as CSV, -svg as a rendered heatmap.
//
// Diagnostics go to stderr as log/slog structured logs (-loglevel,
// -logjson after the subcommand); result output stays on stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"mira/internal/cli"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/plot"
	"mira/internal/scenario"
	"mira/internal/traffic"
)

func main() {
	if err := cli.Setup(cli.LogFlags{}); err != nil {
		fmt.Fprintf(os.Stderr, "miratrace: %v\n", err)
		os.Exit(2)
	}
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "replay":
		err = cmdReplay(ctx, os.Args[2:])
	case "flits":
		err = cmdFlits(os.Args[2:])
	case "spans":
		err = cmdSpans(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		cli.Fatal("miratrace", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  miratrace gen -workload NAME -cycles N [-arch 2DB] [-seed N] -o FILE
  miratrace stat FILE
  miratrace replay [-arch 2DB] [-measure N] FILE
  miratrace flits [-json] FILE.jsonl
  miratrace spans [-group G] [-json] [-perfetto F] [-engine F] [-heatmap F] [-svg F] FILE.jsonl`)
}

// parseWithLogging parses fs with the standard logging flags registered
// and installs the slog handler they describe.
func parseWithLogging(fs *flag.FlagSet, args []string) error {
	var logf cli.LogFlags
	cli.RegisterFlags(fs, &logf)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return cli.Setup(logf)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "tpcw", "workload name")
	cycles := fs.Int64("cycles", 30000, "CPU cycles to simulate")
	archName := fs.String("arch", "2DB", "architecture whose node numbering to use")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := parseWithLogging(fs, args); err != nil {
		return err
	}
	// Elaborating a "trace" scenario generates the trace; the windows are
	// irrelevant here (the NoC sim is never run) but must be valid.
	sc := scenario.Scenario{
		Arch:    *archName,
		Warmup:  0,
		Measure: *cycles,
		Seed:    *seed,
		Traffic: scenario.Traffic{Kind: "trace", Workload: *workload, TraceCycles: *cycles},
	}
	e, err := sc.Elaborate()
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := e.Trace.WriteTo(dst); err != nil {
		return err
	}
	slog.Info("generated trace", "packets", len(e.Trace.Events), "flits", e.Trace.Flits(),
		"short_pct", fmt.Sprintf("%.1f", e.Stats.ShortFlitPct()), "cycles", e.Trace.Span())
	return nil
}

func loadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return traffic.ReadTrace(f)
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	if err := parseWithLogging(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stat needs exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("name            : %s\n", tr.Name)
	fmt.Printf("packets         : %d\n", len(tr.Events))
	fmt.Printf("flits           : %d\n", tr.Flits())
	fmt.Printf("span            : %d cycles\n", tr.Span())
	fmt.Printf("offered load    : %.4f flits/node/cycle (36 nodes)\n", tr.InjectionRate(36))
	fmt.Printf("short flits     : %.1f%%\n", tr.ShortFlitPercent())
	for class, share := range tr.ClassShares() {
		fmt.Printf("class %-9s : %.1f%%\n", class, 100*share)
	}
	return nil
}

func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	archName := fs.String("arch", "2DB", "architecture to replay on")
	measure := fs.Int64("measure", 20000, "measurement cycles")
	seed := fs.Int64("seed", 1, "simulation seed")
	shutdown := fs.Bool("shutdown", true, "apply layer-shutdown power accounting")
	if err := parseWithLogging(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	sc := scenario.Scenario{
		Arch:    *archName,
		Warmup:  *measure / 4,
		Measure: *measure,
		Drain:   2 * *measure,
		Seed:    *seed,
		Traffic: scenario.Traffic{Kind: "replay", TraceFile: fs.Arg(0)},
	}
	e, err := sc.Elaborate()
	if err != nil {
		return err
	}
	res := e.Sim.Run(ctx)
	fmt.Printf("%s replay: %s\n", e.Design.Arch, res.String())
	fmt.Printf("network power: %.3f W\n", exp.NetworkPowerW(e.Design, res, *shutdown))
	return nil
}

// readFlitTrace loads a JSONL flit-event trace from path.
func readFlitTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadTrace(f)
}

// cmdFlits verifies and summarizes a JSONL flit-event trace recorded by
// the observability layer (mirasim -trace).
func cmdFlits(args []string) error {
	fs := flag.NewFlagSet("flits", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the recomputed latency stats as JSON")
	if err := parseWithLogging(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("flits needs exactly one trace file")
	}
	events, err := readFlitTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	var counts [noc.NumProbeKinds]int64
	for _, e := range events {
		if k, ok := noc.ParseProbeKind(e.Kind); ok {
			counts[k]++
		}
	}
	stats, verifyErr := obs.Replay(events)
	if verifyErr != nil {
		// A filtered trace is partial per flit; fall back to summarizing
		// the matched inject/eject pairs.
		stats = obs.Summarize(events)
	}
	if *asJSON {
		fmt.Printf("%s\n", stats.JSON())
	} else {
		fmt.Printf("events   : %d", len(events))
		for k := noc.ProbeKind(0); k < noc.NumProbeKinds; k++ {
			fmt.Printf("  %s=%d", k, counts[k])
		}
		fmt.Println()
		fmt.Printf("flits    : %d (lat mean %.2f, p50/p95/p99 = %d/%d/%d, max %d)\n",
			stats.Flits, stats.FlitMean, stats.FlitP50, stats.FlitP95, stats.FlitP99, stats.FlitMax)
		fmt.Printf("packets  : %d (lat mean %.2f, p99 = %d, max %d)\n",
			stats.Packets, stats.PacketMean, stats.PacketP99, stats.PacketMax)
		for class, n := range stats.PerClass {
			fmt.Printf("  %-7s: %d packets\n", class, n)
		}
	}
	if verifyErr != nil {
		slog.Warn("trace is partial; stats cover matched flits only", "err", verifyErr)
	} else {
		slog.Info("trace verified: per-flit protocol consistent, replay deterministic")
	}
	return nil
}

// cmdSpans folds a flit-event trace into per-flit spans, prints the
// stage-latency attribution and optionally exports Perfetto JSON and
// the congestion heatmap.
func cmdSpans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	group := fs.String("group", "", "print a single grouping (router, class, hops, layers) instead of the combined table")
	asJSON := fs.Bool("json", false, "emit the attribution table as JSON")
	perfetto := fs.String("perfetto", "", "write the spans as Chrome trace-event / Perfetto JSON to this file")
	engine := fs.String("engine", "", "engine telemetry JSON (mirasim -enginejson) to render as counter tracks alongside the spans in the -perfetto export")
	heatmap := fs.String("heatmap", "", "write the per-router congestion heatmap as CSV to this file")
	svgOut := fs.String("svg", "", "write the congestion heatmap as SVG to this file")
	window := fs.Int64("window", 1000, "congestion heatmap column width in cycles")
	if err := parseWithLogging(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spans needs exactly one trace file")
	}
	events, err := readFlitTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	spans, attr, err := obs.BuildSpans(events)
	if err != nil {
		return fmt.Errorf("spans: %w (span folding needs an unfiltered trace)", err)
	}
	slog.Info("spans built", "events", len(events), "flits", attr.Flits())

	var tbl = attr.CombinedTable()
	if *group != "" {
		tbl, err = attr.Table(*group)
		if err != nil {
			return err
		}
	}
	if *asJSON {
		fmt.Printf("%s\n", tbl.JSON())
	} else {
		fmt.Print(tbl.String())
	}

	if *engine != "" && *perfetto == "" {
		return fmt.Errorf("-engine needs -perfetto (engine tracks render into the trace-event export)")
	}
	if *perfetto != "" {
		doc := obs.PerfettoDoc(spans)
		if *engine != "" {
			ef, err := os.Open(*engine)
			if err != nil {
				return fmt.Errorf("engine: %w", err)
			}
			es, err := obs.ReadEngineSeries(ef)
			ef.Close()
			if err != nil {
				return fmt.Errorf("engine %s: %w", *engine, err)
			}
			doc.AppendEngineTrack(es)
			slog.Info("engine track appended", "file", *engine,
				"windows", len(es.Windows), "shards", es.Shards)
		}
		if err := writeFileWith(*perfetto, func(f *os.File) error {
			return obs.WriteTraceDoc(f, doc)
		}); err != nil {
			return fmt.Errorf("perfetto: %w", err)
		}
		slog.Info("perfetto trace written", "file", *perfetto, "spans", len(spans))
	}
	if *heatmap != "" || *svgOut != "" {
		hm := obs.CongestionHeatmap(spans, *window)
		if *heatmap != "" {
			if err := os.WriteFile(*heatmap, []byte(hm.CSV()), 0o644); err != nil {
				return fmt.Errorf("heatmap: %w", err)
			}
			slog.Info("congestion heatmap written", "file", *heatmap, "window", *window)
		}
		if *svgOut != "" {
			rows, rowLabels, colLabels := obs.HeatmapMatrix(hm)
			chart := plot.Heatmap{
				Title:     "per-router congestion (stalled-flit cycles)",
				XLabel:    fmt.Sprintf("cycle window (%d cycles)", *window),
				YLabel:    "router",
				Rows:      rows,
				RowLabels: rowLabels,
				ColLabels: colLabels,
			}
			svg, err := chart.SVG()
			if err != nil {
				return fmt.Errorf("svg: %w", err)
			}
			if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
				return fmt.Errorf("svg: %w", err)
			}
			slog.Info("congestion heatmap rendered", "file", *svgOut)
		}
	}
	return nil
}

// writeFileWith creates path, runs fn on the open file and closes it,
// reporting the first error (including the close, so short writes on a
// full disk are not silently dropped).
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
