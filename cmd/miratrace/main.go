// Command miratrace generates, inspects and replays NUCA coherence
// traces (the reproduction's stand-in for the paper's Simics-generated
// MP traces).
//
// Usage:
//
//	miratrace gen -workload tpcw -cycles 30000 -arch 2DB -o tpcw.trace
//	miratrace stat tpcw.trace
//	miratrace replay -arch 2DB tpcw.trace
//
// Traces are tied to the node numbering of the architecture they were
// generated for; replay an -arch trace on the same -arch.
package main

import (
	"flag"
	"fmt"
	"os"

	"mira/internal/cmp"
	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "miratrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  miratrace gen -workload NAME -cycles N [-arch 2DB] [-seed N] -o FILE
  miratrace stat FILE
  miratrace replay [-arch 2DB] [-measure N] FILE`)
}

func archByName(name string) (*core.Design, error) {
	for _, a := range core.Archs {
		if a.String() == name {
			return core.NewDesign(a)
		}
	}
	return nil, fmt.Errorf("unknown architecture %q", name)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "tpcw", "workload name")
	cycles := fs.Int64("cycles", 30000, "CPU cycles to simulate")
	archName := fs.String("arch", "2DB", "architecture whose node numbering to use")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, ok := cmp.ByName(*workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", *workload)
	}
	d, err := archByName(*archName)
	if err != nil {
		return err
	}
	tr, st, err := cmp.GenerateTrace(w, d.Topo, *cycles, *seed)
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := tr.WriteTo(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d packets (%d flits, %.1f%% short) over %d cycles\n",
		len(tr.Events), tr.Flits(), st.ShortFlitPct(), tr.Span())
	return nil
}

func loadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return traffic.ReadTrace(f)
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stat needs exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("name            : %s\n", tr.Name)
	fmt.Printf("packets         : %d\n", len(tr.Events))
	fmt.Printf("flits           : %d\n", tr.Flits())
	fmt.Printf("span            : %d cycles\n", tr.Span())
	fmt.Printf("offered load    : %.4f flits/node/cycle (36 nodes)\n", tr.InjectionRate(36))
	fmt.Printf("short flits     : %.1f%%\n", tr.ShortFlitPercent())
	for class, share := range tr.ClassShares() {
		fmt.Printf("class %-9s : %.1f%%\n", class, 100*share)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	archName := fs.String("arch", "2DB", "architecture to replay on")
	measure := fs.Int64("measure", 20000, "measurement cycles")
	seed := fs.Int64("seed", 1, "simulation seed")
	shutdown := fs.Bool("shutdown", true, "apply layer-shutdown power accounting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := archByName(*archName)
	if err != nil {
		return err
	}
	for _, e := range tr.Events {
		if int(e.Src) >= d.Topo.NumNodes() || int(e.Dst) >= d.Topo.NumNodes() {
			return fmt.Errorf("trace node %d outside %s's %d nodes (wrong -arch?)",
				max64(int64(e.Src), int64(e.Dst)), d.Arch, d.Topo.NumNodes())
		}
	}
	net := noc.NewNetwork(d.NoCConfig(noc.ByClass, *seed))
	sim := noc.NewSim(net, &traffic.Replayer{Trace: tr, Loop: true})
	sim.Params = noc.SimParams{Warmup: *measure / 4, Measure: *measure, DrainMax: 2 * *measure}
	res := sim.Run()
	fmt.Printf("%s replay: %s\n", d.Arch, res.String())
	fmt.Printf("network power: %.3f W\n", exp.NetworkPowerW(d, res, *shutdown))
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
