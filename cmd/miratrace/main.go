// Command miratrace generates, inspects and replays NUCA coherence
// traces (the reproduction's stand-in for the paper's Simics-generated
// MP traces), and inspects JSONL flit-event traces recorded by the
// observability layer (mirasim -trace). Generation and replay both go
// through the declarative scenario layer, so a gen/replay pair is
// reproducible from the same serialized description mirasim and
// mirabench use.
//
// Usage:
//
//	miratrace gen -workload tpcw -cycles 30000 -arch 2DB -o tpcw.trace
//	miratrace stat tpcw.trace
//	miratrace replay -arch 2DB tpcw.trace
//	miratrace flits run.jsonl
//
// Traces are tied to the node numbering of the architecture they were
// generated for; replay an -arch trace on the same -arch.
//
// "flits" verifies a flit-event trace (parse, cycle ordering, per-flit
// inject-before-eject protocol) and recomputes the recorded run's
// per-flit latency statistics from the file alone; on an unfiltered
// trace they match the live collector's digest byte for byte. Traces
// recorded with a node/class filter fail strict verification by design
// (per-flit streams are partial); the stats then cover the matched
// inject/eject pairs only.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/scenario"
	"mira/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "replay":
		err = cmdReplay(ctx, os.Args[2:])
	case "flits":
		err = cmdFlits(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "miratrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  miratrace gen -workload NAME -cycles N [-arch 2DB] [-seed N] -o FILE
  miratrace stat FILE
  miratrace replay [-arch 2DB] [-measure N] FILE
  miratrace flits FILE.jsonl`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "tpcw", "workload name")
	cycles := fs.Int64("cycles", 30000, "CPU cycles to simulate")
	archName := fs.String("arch", "2DB", "architecture whose node numbering to use")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Elaborating a "trace" scenario generates the trace; the windows are
	// irrelevant here (the NoC sim is never run) but must be valid.
	sc := scenario.Scenario{
		Arch:    *archName,
		Warmup:  0,
		Measure: *cycles,
		Seed:    *seed,
		Traffic: scenario.Traffic{Kind: "trace", Workload: *workload, TraceCycles: *cycles},
	}
	e, err := sc.Elaborate()
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := e.Trace.WriteTo(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d packets (%d flits, %.1f%% short) over %d cycles\n",
		len(e.Trace.Events), e.Trace.Flits(), e.Stats.ShortFlitPct(), e.Trace.Span())
	return nil
}

func loadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return traffic.ReadTrace(f)
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stat needs exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("name            : %s\n", tr.Name)
	fmt.Printf("packets         : %d\n", len(tr.Events))
	fmt.Printf("flits           : %d\n", tr.Flits())
	fmt.Printf("span            : %d cycles\n", tr.Span())
	fmt.Printf("offered load    : %.4f flits/node/cycle (36 nodes)\n", tr.InjectionRate(36))
	fmt.Printf("short flits     : %.1f%%\n", tr.ShortFlitPercent())
	for class, share := range tr.ClassShares() {
		fmt.Printf("class %-9s : %.1f%%\n", class, 100*share)
	}
	return nil
}

func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	archName := fs.String("arch", "2DB", "architecture to replay on")
	measure := fs.Int64("measure", 20000, "measurement cycles")
	seed := fs.Int64("seed", 1, "simulation seed")
	shutdown := fs.Bool("shutdown", true, "apply layer-shutdown power accounting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	sc := scenario.Scenario{
		Arch:    *archName,
		Warmup:  *measure / 4,
		Measure: *measure,
		Drain:   2 * *measure,
		Seed:    *seed,
		Traffic: scenario.Traffic{Kind: "replay", TraceFile: fs.Arg(0)},
	}
	e, err := sc.Elaborate()
	if err != nil {
		return err
	}
	res := e.Sim.Run(ctx)
	fmt.Printf("%s replay: %s\n", e.Design.Arch, res.String())
	fmt.Printf("network power: %.3f W\n", exp.NetworkPowerW(e.Design, res, *shutdown))
	return nil
}

// cmdFlits verifies and summarizes a JSONL flit-event trace recorded by
// the observability layer (mirasim -trace).
func cmdFlits(args []string) error {
	fs := flag.NewFlagSet("flits", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the recomputed latency stats as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("flits needs exactly one trace file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	var counts [noc.NumProbeKinds]int64
	for _, e := range events {
		if k, ok := noc.ParseProbeKind(e.Kind); ok {
			counts[k]++
		}
	}
	stats, verifyErr := obs.Replay(events)
	if verifyErr != nil {
		// A filtered trace is partial per flit; fall back to summarizing
		// the matched inject/eject pairs.
		stats = obs.Summarize(events)
	}
	if *asJSON {
		fmt.Printf("%s\n", stats.JSON())
	} else {
		fmt.Printf("events   : %d", len(events))
		for k := noc.ProbeKind(0); k < noc.NumProbeKinds; k++ {
			fmt.Printf("  %s=%d", k, counts[k])
		}
		fmt.Println()
		fmt.Printf("flits    : %d (lat mean %.2f, p50/p95/p99 = %d/%d/%d, max %d)\n",
			stats.Flits, stats.FlitMean, stats.FlitP50, stats.FlitP95, stats.FlitP99, stats.FlitMax)
		fmt.Printf("packets  : %d (lat mean %.2f, p99 = %d, max %d)\n",
			stats.Packets, stats.PacketMean, stats.PacketP99, stats.PacketMax)
		for class, n := range stats.PerClass {
			fmt.Printf("  %-7s: %d packets\n", class, n)
		}
	}
	if verifyErr != nil {
		fmt.Fprintf(os.Stderr, "miratrace: trace is partial (%v); stats cover matched flits only\n", verifyErr)
	} else {
		fmt.Fprintln(os.Stderr, "trace verified: per-flit protocol consistent, replay deterministic")
	}
	return nil
}
