// Command miratrace generates, inspects and replays NUCA coherence
// traces (the reproduction's stand-in for the paper's Simics-generated
// MP traces). Generation and replay both go through the declarative
// scenario layer, so a gen/replay pair is reproducible from the same
// serialized description mirasim and mirabench use.
//
// Usage:
//
//	miratrace gen -workload tpcw -cycles 30000 -arch 2DB -o tpcw.trace
//	miratrace stat tpcw.trace
//	miratrace replay -arch 2DB tpcw.trace
//
// Traces are tied to the node numbering of the architecture they were
// generated for; replay an -arch trace on the same -arch.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mira/internal/exp"
	"mira/internal/scenario"
	"mira/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "replay":
		err = cmdReplay(ctx, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "miratrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  miratrace gen -workload NAME -cycles N [-arch 2DB] [-seed N] -o FILE
  miratrace stat FILE
  miratrace replay [-arch 2DB] [-measure N] FILE`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "tpcw", "workload name")
	cycles := fs.Int64("cycles", 30000, "CPU cycles to simulate")
	archName := fs.String("arch", "2DB", "architecture whose node numbering to use")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Elaborating a "trace" scenario generates the trace; the windows are
	// irrelevant here (the NoC sim is never run) but must be valid.
	sc := scenario.Scenario{
		Arch:    *archName,
		Warmup:  0,
		Measure: *cycles,
		Seed:    *seed,
		Traffic: scenario.Traffic{Kind: "trace", Workload: *workload, TraceCycles: *cycles},
	}
	e, err := sc.Elaborate()
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := e.Trace.WriteTo(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d packets (%d flits, %.1f%% short) over %d cycles\n",
		len(e.Trace.Events), e.Trace.Flits(), e.Stats.ShortFlitPct(), e.Trace.Span())
	return nil
}

func loadTrace(path string) (*traffic.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return traffic.ReadTrace(f)
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stat needs exactly one trace file")
	}
	tr, err := loadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("name            : %s\n", tr.Name)
	fmt.Printf("packets         : %d\n", len(tr.Events))
	fmt.Printf("flits           : %d\n", tr.Flits())
	fmt.Printf("span            : %d cycles\n", tr.Span())
	fmt.Printf("offered load    : %.4f flits/node/cycle (36 nodes)\n", tr.InjectionRate(36))
	fmt.Printf("short flits     : %.1f%%\n", tr.ShortFlitPercent())
	for class, share := range tr.ClassShares() {
		fmt.Printf("class %-9s : %.1f%%\n", class, 100*share)
	}
	return nil
}

func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	archName := fs.String("arch", "2DB", "architecture to replay on")
	measure := fs.Int64("measure", 20000, "measurement cycles")
	seed := fs.Int64("seed", 1, "simulation seed")
	shutdown := fs.Bool("shutdown", true, "apply layer-shutdown power accounting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay needs exactly one trace file")
	}
	sc := scenario.Scenario{
		Arch:    *archName,
		Warmup:  *measure / 4,
		Measure: *measure,
		Drain:   2 * *measure,
		Seed:    *seed,
		Traffic: scenario.Traffic{Kind: "replay", TraceFile: fs.Arg(0)},
	}
	e, err := sc.Elaborate()
	if err != nil {
		return err
	}
	res := e.Sim.Run(ctx)
	fmt.Printf("%s replay: %s\n", e.Design.Arch, res.String())
	fmt.Printf("network power: %.3f W\n", exp.NetworkPowerW(e.Design, res, *shutdown))
	return nil
}
