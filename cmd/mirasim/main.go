// Command mirasim runs a single NoC simulation of one MIRA architecture
// under a chosen workload and reports latency, throughput, power and
// activity. Every run is described by a declarative scenario
// (internal/scenario); -dump prints the scenario JSON for the current
// flags instead of running it, and -scenario executes a JSON file of one
// or more stored scenarios as a batch.
//
// Usage:
//
//	mirasim -arch 3DM-E -traffic ur -rate 0.2
//	mirasim -arch 2DB -traffic nuca -rate 0.1 -short 0.5
//	mirasim -arch 3DM -traffic trace -workload tpcw
//	mirasim -arch 2DB -traffic collective -algorithm ring-allreduce -iters 4 -measure 100000
//	mirasim -arch 3DM -traffic ur -rate 0.2 -dump > run.json
//	mirasim -scenario runs.json -workers 4
//	mirasim -arch 3DM -traffic ur -rate 0.2 -trace run.jsonl -series occ.csv
//	mirasim -arch 3DM -traffic ur -rate 0.2 -attrib stages.csv
//	mirasim -scenario runs.json -serve 127.0.0.1:8080
//
// -trace records every flit pipeline event as JSONL (replayable with
// "miratrace flits"), -series writes the cycle-sampled gauge time series
// (buffer occupancy, credit stalls, layer activity) as CSV, -attrib
// writes the per-flit span latency attribution (stage cycles by router,
// traffic class, hop count and datapath layer) as CSV, and -obswindow
// sets the sample window; any of them attaches the observability
// collector (internal/obs) and prints a latency-percentile digest after
// the run. A scenario file may request the same via its "observe" block.
//
// -progress renders a live engine-telemetry line on stderr (cycles/sec,
// ETA, shard imbalance), -enginestats prints the end-of-run engine
// table (per-shard wall time, pool utilization, runtime stats) on
// stderr, and -enginejson FILE stores the sampled engine series for
// offline rendering ("miratrace spans -engine"). All three are host
// wall-clock introspection of the simulator itself and are strictly
// out-of-band: simulated results are bit-identical with or without
// them.
//
// -serve ADDR runs the batch (or the single flag-described scenario)
// under a net/http server while it executes: hand-rolled Prometheus text
// exposition of every run's metric registry at /metrics, run progress
// and results at /runs, a liveness probe at /healthz, and net/http/pprof
// at /debug/pprof/. Serving is observation-only — the simulated results
// are bit-identical to an unserved run. The process prints the batch
// results as JSON when the batch completes, then shuts the server down
// and exits.
//
// Diagnostics go to stderr as log/slog structured logs (-loglevel,
// -logjson); result output stays on stdout untouched.
//
// Ctrl-C cancels the run; a canceled simulation reports the counters it
// measured before the interrupt and marks the result canceled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mira/internal/cli"
	"mira/internal/core"
	"mira/internal/exp"
	"mira/internal/noc"
	"mira/internal/obs"
	"mira/internal/power"
	"mira/internal/scenario"
	"mira/internal/serve"
)

func main() {
	archName := flag.String("arch", "3DM", "architecture: 2DB, 3DB, 3DM, 3DM(NC), 3DM-E, 3DM-E(NC)")
	trafficKind := flag.String("traffic", "ur", "traffic kind: "+strings.Join(scenario.TrafficKinds(), ", "))
	rate := flag.Float64("rate", 0.15, "injection rate in flits/node/cycle (synthetic)")
	short := flag.Float64("short", 0, "fraction of short flits (ur, nuca)")
	workload := flag.String("workload", "tpcw", "workload name (trace)")
	traceFile := flag.String("tracefile", "", "recorded trace to replay (replay)")
	hotFrac := flag.Float64("hotfrac", 0.3, "probability a packet targets a hot node (hotspot)")
	colAlg := flag.String("algorithm", "ring-allreduce", "collective schedule: ring-allreduce, reduce-scatter or tree-broadcast (collective)")
	colRanks := flag.Int("ranks", 0, "collective participant count, 0 = every node (collective)")
	colIters := flag.Int("iters", 1, "back-to-back collective iterations (collective)")
	colFlits := flag.Int("msgflits", 0, "collective message size in flits, 0 = the 4-flit data packet (collective)")
	colSteps := flag.Bool("steptable", false, "also print the per-step latency table after a collective run")
	warmup := flag.Int64("warmup", 5000, "warm-up cycles")
	measure := flag.Int64("measure", 20000, "measurement cycles")
	seed := flag.Int64("seed", 1, "simulation seed")
	stepMode := flag.String("stepmode", "activity", "cycle-loop strategy: activity, fullscan or checked")
	shards := flag.Int("shards", 0, "concurrent router shards inside the simulation (0 or 1 = sequential, -1 = auto from mesh size and CPUs); results are identical for any value")
	chips := flag.String("chips", "", "replace the fabric with a chiplet grid, CXxCY/NXxNY (e.g. 2x2/4x4); append +express for inter-chip express channels")
	d2d := flag.String("d2d", "", "die-to-die link timing for -chips as lat[:ser] cycles (e.g. 4 or 8:4; default 1:1 = indistinguishable from on-chip wires)")
	shutdown := flag.Bool("shutdown", true, "apply layer-shutdown power accounting")
	qos := flag.Bool("qos", false, "control-over-data switch priority")
	spec := flag.Bool("spec", false, "speculative switch allocation (Figure 8 (b))")
	lookahead := flag.Bool("lookahead", false, "look-ahead routing (Figure 8 (c))")
	matrixArb := flag.Bool("matrix-arb", false, "matrix (least-recently-served) allocator arbiters")
	trace := flag.String("trace", "", "write a JSONL flit-event trace to this file (see miratrace flits)")
	series := flag.String("series", "", "write the sampled observability time series to this CSV file")
	attrib := flag.String("attrib", "", "write the span latency-attribution table to this CSV file")
	obsWindow := flag.Int64("obswindow", 0, "observability sample window in cycles (0 = default 1000; enables observation with -trace/-series/-attrib)")
	progress := flag.Bool("progress", false, "live engine progress on stderr (cycles/sec, ETA, shard imbalance); enables engine telemetry")
	engineStats := flag.Bool("enginestats", false, "print the end-of-run engine telemetry table (per-shard wall time, pool utilization) on stderr; enables engine telemetry")
	engineJSON := flag.String("enginejson", "", "write the engine telemetry series as JSON to this file (see miratrace spans -engine); enables engine telemetry")
	dump := flag.Bool("dump", false, "print the scenario JSON for these flags and exit without running")
	scenarioFile := flag.String("scenario", "", "run a JSON scenario (or array of scenarios) from this file ('-' for stdin) and print JSON results")
	workers := flag.Int("workers", 0, "batch worker goroutines for -scenario (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock limit for -scenario (0 = none)")
	serveAddr := flag.String("serve", "", "serve /metrics, /runs, /healthz and /debug/pprof on this address while the batch runs")
	var logf cli.LogFlags
	cli.RegisterFlags(flag.CommandLine, &logf)
	flag.Parse()
	if err := cli.Setup(logf); err != nil {
		fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	batchOpts := scenario.BatchOptions{Workers: *workers, Timeout: *timeout}

	chipsBlock, err := parseChips(*chips, *d2d)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mirasim: %v\n", err)
		os.Exit(2)
	}

	collectiveBlock := &scenario.Collective{
		Algorithm:    *colAlg,
		Participants: *colRanks,
		Iterations:   *colIters,
		MessageFlits: *colFlits,
	}

	flagScenario := func() scenario.Scenario {
		if *trafficKind == "collective" {
			// Collectives are closed-loop and start at cycle 0; the
			// scenario layer rejects a warm-up window for them.
			*warmup = 0
		}
		sc := scenario.Scenario{
			Arch:        *archName,
			Warmup:      *warmup,
			Measure:     *measure,
			Drain:       2 * *measure,
			Seed:        *seed,
			StepMode:    *stepMode,
			Shards:      *shards,
			QoSPriority: *qos,
			SpecSA:      *spec,
			LookaheadRC: *lookahead,
			MatrixArb:   *matrixArb,
			Traffic:     trafficFromFlags(*trafficKind, *rate, *short, *workload, *traceFile, *hotFrac, *measure, collectiveBlock),
		}
		sc.Chips = chipsBlock
		if *trace != "" || *series != "" || *attrib != "" || *obsWindow > 0 {
			sc.Observe = &scenario.Observe{Window: *obsWindow, Spans: *attrib != ""}
		}
		if *progress || *engineStats || *engineJSON != "" {
			if sc.Observe == nil {
				sc.Observe = &scenario.Observe{}
			}
			sc.Observe.Engine = true
		}
		return sc
	}

	if *progress {
		if *scenarioFile != "" || *serveAddr != "" {
			// Batch runs execute concurrently; interleave labeled lines
			// through the structured log instead of rewriting one line.
			obs.SetEngineProgressHook(func(p obs.EngineProgress) {
				slog.Info("progress", "cmd", "mirasim", "run", p.Label, "state", p.String())
			})
		} else {
			obs.SetEngineProgressHook(func(p obs.EngineProgress) {
				fmt.Fprintf(os.Stderr, "\r\x1b[K%s", p.String())
			})
		}
	}

	if *serveAddr != "" {
		scs, err := loadScenarios(*scenarioFile, flagScenario)
		if err == nil {
			err = runServe(ctx, *serveAddr, scs, batchOpts)
		}
		if err != nil {
			cli.Fatal("mirasim", err)
		}
		return
	}

	if *scenarioFile != "" {
		if err := runBatchFile(ctx, *scenarioFile, batchOpts); err != nil {
			cli.Fatal("mirasim", err)
		}
		return
	}

	sc := flagScenario()
	if err := sc.Validate(); err != nil {
		slog.Error("invalid scenario", "cmd", "mirasim", "err", err)
		os.Exit(2)
	}

	if *dump {
		data, err := sc.MarshalIndent()
		if err != nil {
			cli.Fatal("mirasim", err)
		}
		fmt.Printf("%s\n", data)
		return
	}

	e, err := sc.Elaborate()
	if err != nil {
		cli.Fatal("mirasim", err)
	}
	d := e.Design
	fmt.Printf("architecture : %s (%d ports, %d layers, %d-cycle ST+LT)\n",
		d.Arch, d.AreaParams.Ports, d.AreaParams.Layers, d.STLTCycles)
	fmt.Printf("topology     : %s, link %.2f mm\n", d.Topo.Name, d.LinkLenMM)
	fmt.Printf("router area  : %.0f um^2 total, %.0f um^2 max/layer\n",
		d.Area.TotalRouter, d.Area.MaxLayer)
	if sc.Traffic.Kind == "trace" {
		fmt.Printf("workload     : %s (%.1f%% short flits, %.0f%% control packets)\n",
			sc.Traffic.Workload, e.Stats.ShortFlitPct(), 100*e.Stats.ControlPacketFrac())
	}

	var traceOut *os.File
	if *trace != "" {
		traceOut, err = os.Create(*trace)
		if err != nil {
			cli.Fatal("mirasim", err)
		}
		e.Obs.SetTraceWriter(traceOut)
	}

	r := e.Sim.Run(ctx)
	report(d, r, exp.NetworkPowerW(d, r, *shutdown))
	if e.Collective != nil {
		fmt.Print(e.Collective.Summary().String())
		if *colSteps {
			fmt.Print(e.Collective.StepTable().String())
		}
	}

	if e.Obs != nil {
		if err := finishObs(e.Obs, traceOut, *trace, *series, *attrib); err != nil {
			cli.Fatal("mirasim", err)
		}
		if *progress {
			fmt.Fprintln(os.Stderr) // terminate the \r progress line
		}
		if ec := e.Obs.Engine(); ec != nil {
			if *engineStats {
				fmt.Fprint(os.Stderr, ec.Table().String())
			}
			if *engineJSON != "" {
				if err := writeEngineJSON(ec, *engineJSON); err != nil {
					cli.Fatal("mirasim", err)
				}
				fmt.Printf("engine       : telemetry series -> %s\n", *engineJSON)
			}
		}
	}
}

// writeEngineJSON stores the engine telemetry series (windows, final
// meter snapshot, runtime stats) for offline rendering: miratrace spans
// -engine pairs it with the flit spans of the same run.
func writeEngineJSON(ec *obs.EngineCollector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("enginejson: %w", err)
	}
	if err := ec.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("enginejson: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("enginejson %s: %w", path, err)
	}
	return nil
}

// finishObs flushes and closes the trace, writes the series and
// attribution CSVs and prints the observability digest for an observed
// run. Trace-writer failures (a disk that filled mid-run, a pipe that
// closed) surface here: the collector's Close reports the buffered
// writer's first error together with the count of events that made it
// out, and closing the file itself is checked rather than deferred away.
func finishObs(c *obs.Collector, traceOut *os.File, tracePath, seriesPath, attribPath string) error {
	closeErr := c.Close()
	if traceOut != nil {
		if err := traceOut.Close(); err != nil && closeErr == nil {
			closeErr = fmt.Errorf("trace %s: %w", tracePath, err)
		}
	}
	if closeErr != nil {
		return fmt.Errorf("trace: %w", closeErr)
	}
	sum := c.Summary()
	l := sum.Latency
	fmt.Printf("observability: %d flits, flit lat p50/p95/p99 = %d/%d/%d, pkt p99 = %d (%d windows of %d cycles)\n",
		l.Flits, l.FlitP50, l.FlitP95, l.FlitP99, l.PacketP99, sum.Windows, sum.Window)
	if tracePath != "" {
		fmt.Printf("trace        : %d events -> %s\n", sum.Traced, tracePath)
	}
	if seriesPath != "" {
		if err := os.WriteFile(seriesPath, []byte(c.SeriesTable().CSV()), 0o644); err != nil {
			return fmt.Errorf("series: %w", err)
		}
		fmt.Printf("series       : %d windows x %d metrics -> %s\n",
			sum.Windows, c.Registry().Len(), seriesPath)
	}
	if attribPath != "" {
		sb := c.Spans()
		if sb == nil {
			return fmt.Errorf("attrib: collector has no span builder (observe.spans not enabled)")
		}
		if err := sb.Err(); err != nil {
			return fmt.Errorf("attrib: %w", err)
		}
		tbl := sb.Attribution().CombinedTable()
		if err := os.WriteFile(attribPath, []byte(tbl.CSV()), 0o644); err != nil {
			return fmt.Errorf("attrib: %w", err)
		}
		fmt.Printf("attribution  : %d flit spans -> %s\n", sb.Attribution().Flits(), attribPath)
	}
	return nil
}

// parseChips converts the -chips grid spec ("CXxCY/NXxNY", optionally
// "+express") and the -d2d timing ("lat" or "lat:ser") into a scenario
// chips block. An empty -chips returns nil; -d2d without -chips is an
// error.
func parseChips(chips, d2d string) (*scenario.Chips, error) {
	if chips == "" {
		if d2d != "" {
			return nil, fmt.Errorf("-d2d needs -chips")
		}
		return nil, nil
	}
	c := &scenario.Chips{}
	if rest, ok := strings.CutSuffix(chips, "+express"); ok {
		chips = rest
		c.Express = true
	}
	if n, err := fmt.Sscanf(chips, "%dx%d/%dx%d", &c.ChipsX, &c.ChipsY, &c.NodesX, &c.NodesY); n != 4 || err != nil {
		return nil, fmt.Errorf("-chips %q: want CXxCY/NXxNY, e.g. 2x2/4x4", chips)
	}
	if d2d != "" {
		lat, ser := d2d, ""
		if l, s, ok := strings.Cut(d2d, ":"); ok {
			lat, ser = l, s
		}
		if _, err := fmt.Sscanf(lat, "%d", &c.D2DLatency); err != nil {
			return nil, fmt.Errorf("-d2d %q: want lat[:ser] cycles, e.g. 4 or 8:4", d2d)
		}
		if ser != "" {
			if _, err := fmt.Sscanf(ser, "%d", &c.D2DSerCycles); err != nil {
				return nil, fmt.Errorf("-d2d %q: want lat[:ser] cycles, e.g. 4 or 8:4", d2d)
			}
		}
	}
	return c, nil
}

// trafficFromFlags assembles the traffic description for one kind,
// carrying over only the flags that kind consumes so the dumped scenario
// JSON stays minimal.
func trafficFromFlags(kind string, rate, short float64, workload, traceFile string, hotFrac float64, measure int64, col *scenario.Collective) scenario.Traffic {
	t := scenario.Traffic{Kind: kind}
	switch kind {
	case "ur", "nuca":
		t.Rate = rate
		t.ShortFrac = short
	case "transpose", "complement", "tornado":
		t.Rate = rate
	case "hotspot":
		t.Rate = rate
		t.HotFrac = hotFrac
	case "trace":
		t.Workload = workload
		t.TraceCycles = measure
	case "replay":
		t.TraceFile = traceFile
	case "collective":
		t.Collective = col
	}
	return t
}

// loadScenarios resolves the batch to serve: the scenario file when one
// was given, otherwise the single scenario described by the flags.
func loadScenarios(path string, flagScenario func() scenario.Scenario) ([]scenario.Scenario, error) {
	if path == "" {
		sc := flagScenario()
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		return []scenario.Scenario{sc}, nil
	}
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return scenario.DecodeBatch(in)
}

// runBatchFile executes a stored scenario file through the batch runner
// and streams the JSON results to stdout.
func runBatchFile(ctx context.Context, path string, o scenario.BatchOptions) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	return scenario.RunBatchJSON(ctx, in, os.Stdout, o)
}

// runServe executes the batch under the observability HTTP server. The
// listener is bound before the batch starts so a bad address fails fast;
// the server then runs until the batch finishes (or ctx is canceled,
// which also cancels in-flight runs), the results are printed as JSON,
// and the server is drained with a short grace period.
func runServe(ctx context.Context, addr string, scs []scenario.Scenario, o scenario.BatchOptions) error {
	srv := serve.New(scs)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	slog.Info("serving", "cmd", "mirasim", "addr", ln.Addr().String(), "runs", len(scs))

	results := srv.Run(ctx, o)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		slog.Warn("server shutdown", "cmd", "mirasim", "err", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	// A signal-canceled batch is a clean exit: the partial results were
	// reported above. Only unprompted per-run failures are fatal.
	if ctx.Err() != nil {
		slog.Info("batch canceled", "cmd", "mirasim", "runs", len(results))
		return nil
	}
	for _, br := range results {
		if br.Err != "" {
			return fmt.Errorf("run %d (%s): %s", br.Index, br.Scenario.Arch, br.Err)
		}
	}
	return nil
}

func report(d *core.Design, r noc.Result, powerW float64) {
	fmt.Printf("result       : %s\n", r.String())
	if r.Canceled {
		fmt.Printf("  (canceled after %d measured cycles; counters are partial)\n", r.Cycles)
	}
	for c := noc.Class(0); c < noc.NumClasses; c++ {
		if pc := r.PerClass[c]; pc.Ejected > 0 {
			fmt.Printf("  %-10s : lat=%.2f hops=%.2f (%d pkts)\n", c, pc.AvgLatency, pc.AvgHops, pc.Ejected)
		}
	}
	fmt.Printf("network power: %.3f W (at %.0f GHz)\n", powerW, power.ClockGHz)
}
